// Package repro's root benchmarks regenerate the paper's quantitative
// artifacts under `go test -bench` — one benchmark per experiment in the
// DESIGN.md §4 index. Custom metrics carry the quantities the paper
// reports (events/s, cycles/event, counts, stretch); cmd/paperbench prints
// the same data as tables.
package repro

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/addr"
	"repro/internal/costmodel"
	"repro/internal/counting"
	"repro/internal/experiments"
	"repro/internal/fib"
	"repro/internal/netsim"
	"repro/internal/realnet"
	"repro/internal/wire"
	"repro/internal/workload"
)

// BenchmarkE1_FIBEntry measures the Figure 5 12-byte entry codec: the
// fast-path encoding a line card would hold.
func BenchmarkE1_FIBEntry(b *testing.B) {
	k := fib.Key{S: addr.MustParse("171.64.7.9"), G: addr.ExpressAddr(0xbeef)}
	e := &fib.Entry{IIF: 3, OIFs: 0x80000081}
	buf := make([]byte, 0, fib.EntrySize)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var err error
		buf, err = fib.EncodeEntry(k, e, buf[:0])
		if err != nil {
			b.Fatal(err)
		}
		if _, _, err = fib.DecodeEntry(buf); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(fib.EntrySize, "bytes/entry")
}

// BenchmarkE2_FIBCostModel evaluates the Figure 6 model and its worked
// scenarios (Section 5.1).
func BenchmarkE2_FIBCostModel(b *testing.B) {
	m := costmodel.Paper()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink = m.Conference().TotalDollars + m.StockTicker().TotalDollars
	}
	_ = sink
	b.ReportMetric(m.Conference().TotalDollars, "conference-$")
	b.ReportMetric(m.StockTicker().TotalDollars, "ticker-$/yr")
}

// BenchmarkE3_MgmtState evaluates the Section 5.2 per-channel budget.
func BenchmarkE3_MgmtState(b *testing.B) {
	m := costmodel.PaperMgmt()
	var sink int
	for i := 0; i < b.N; i++ {
		sink = m.BytesPerChannel()
	}
	_ = sink
	b.ReportMetric(float64(m.BytesPerChannel()), "bytes/channel")
}

// BenchmarkE4_EventProcessing reproduces the Section 5.3 measurement: a
// real user-level TCP ECMP router with 8 churning neighbors. The
// events/s and PII-400-cycles/event metrics correspond to the paper's
// 4,500–33,000 events/s and ≈3,500–5,200 cycles/event.
func BenchmarkE4_EventProcessing(b *testing.B) {
	rounds := b.N/32000 + 1
	res, err := experiments.RunE4Maintenance(8, 2000, rounds)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(res.EventsPerSec, "events/s")
	b.ReportMetric(res.NsPerEvent, "ns/event")
	b.ReportMetric(res.CyclesPII, "PII400-cycles/event")
}

// BenchmarkE4_SubscribeVsUnsubscribe splits the per-event cost by type,
// mirroring the paper's profile ("median event processing time was
// approximately 2700 cycles per subscribe and 3300 cycles per
// unsubscribe"). The asymmetry flips here: in this implementation the
// subscribe path dominates (it allocates the channel record and its maps)
// while unsubscribe only deletes — both remain in the low-microsecond
// band, i.e. a few thousand cycles, the paper's central claim.
func BenchmarkE4_SubscribeVsUnsubscribe(b *testing.B) {
	run := func(b *testing.B, subscribe bool) {
		r, err := realnet.NewRouter("127.0.0.1:0", "")
		if err != nil {
			b.Fatal(err)
		}
		defer r.Close()
		c, err := realnet.Dial(r.Addr())
		if err != nil {
			b.Fatal(err)
		}
		defer c.Close()
		src := addr.MustParse("171.64.1.1")
		if !subscribe {
			// Pre-populate so every measured event is an unsubscribe of
			// live state.
			for i := 0; i < b.N; i++ {
				c.Subscribe(addr.Channel{S: src, E: addr.ExpressAddr(uint32(i))})
			}
			c.Flush()
			waitEvents(b, r, uint64(b.N))
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ch := addr.Channel{S: src, E: addr.ExpressAddr(uint32(i))}
			if subscribe {
				c.Subscribe(ch)
			} else {
				c.Unsubscribe(ch)
			}
		}
		c.Flush()
		base := uint64(0)
		if !subscribe {
			base = uint64(b.N)
		}
		waitEvents(b, r, base+uint64(b.N))
	}
	b.Run("subscribe", func(b *testing.B) { run(b, true) })
	b.Run("unsubscribe", func(b *testing.B) { run(b, false) })
}

func waitEvents(b *testing.B, r *realnet.Router, want uint64) {
	b.Helper()
	deadline := time.Now().Add(120 * time.Second)
	for r.Events() < want {
		if time.Now().After(deadline) {
			b.Fatalf("router processed %d/%d events", r.Events(), want)
		}
		time.Sleep(50 * time.Microsecond)
	}
}

// BenchmarkE5_ControlBandwidth measures the Count batching of Section 5.3:
// 92 16-byte Counts per maximum-sized segment.
func BenchmarkE5_ControlBandwidth(b *testing.B) {
	batch := wire.NewBatch()
	msgs := make([]*wire.Count, wire.CountsPerSegment)
	for i := range msgs {
		msgs[i] = &wire.Count{
			Channel: addr.Channel{S: addr.MustParse("10.0.0.1"), E: addr.ExpressAddr(uint32(i))},
			CountID: wire.CountSubscribers, Value: 1,
		}
	}
	b.ReportAllocs()
	var packed int
	for i := 0; i < b.N; i++ {
		batch.Reset()
		packed = 0
		for _, m := range msgs {
			if batch.Add(m) {
				packed++
			}
		}
	}
	b.ReportMetric(float64(packed), "counts/segment")
	segsPerSec, bps := costmodel.PaperMaintenance().ControlBandwidth()
	b.ReportMetric(segsPerSec, "segments/s@1Mchan")
	b.ReportMetric(bps/1000, "kbit/s@1Mchan")
}

// BenchmarkE6_ToleranceCurves evaluates the Figure 7 curve.
func BenchmarkE6_ToleranceCurves(b *testing.B) {
	c := counting.Curve{EMax: 0.25, Alpha: 4, Tau: 120}
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += c.Eval(float64(i%70) + 0.5)
	}
	_ = sink
}

// BenchmarkE7_ProactiveCounting runs the Figure 8 scenario end to end over
// the router tree for α=4 and reports the tracking error and message
// counts ("tracks the actual size very closely").
func BenchmarkE7_ProactiveCounting(b *testing.B) {
	var s experiments.E7Series
	for i := 0; i < b.N; i++ {
		s = experiments.RunE7(4, 99)
	}
	b.ReportMetric(float64(s.FinalCounts), "counts-to-source")
	b.ReportMetric(s.MeanAbsErr, "mean-abs-err")
	b.ReportMetric(float64(s.TotalCounts), "network-counts")
}

// BenchmarkE7_ProactiveAlpha25 is the α=2.5 point of Figure 8 ("lags
// behind the actual size after the large burst").
func BenchmarkE7_ProactiveAlpha25(b *testing.B) {
	var s experiments.E7Series
	for i := 0; i < b.N; i++ {
		s = experiments.RunE7(2.5, 99)
	}
	b.ReportMetric(float64(s.FinalCounts), "counts-to-source")
	b.ReportMetric(s.MeanAbsErr, "mean-abs-err")
}

// BenchmarkE8_AccessControl measures the counted-and-dropped fast path of
// Section 3.4: an EXPRESS packet matching no (S,E) entry.
func BenchmarkE8_AccessControl(b *testing.B) {
	t := fib.New()
	// A populated table so the miss is a real hash miss.
	for i := 0; i < 1024; i++ {
		e := fib.Entry{IIF: 0}
		e.SetOIF(1)
		t.Set(fib.Key{S: addr.MustParse("10.0.0.1"), G: addr.ExpressAddr(uint32(i))}, e)
	}
	rogue := addr.MustParse("10.9.9.9")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, disp := t.ForwardMask(rogue, addr.ExpressAddr(uint32(i%1024)), 0)
		if disp != fib.DropUnmatched {
			b.Fatal("rogue packet was forwarded")
		}
	}
	b.ReportMetric(float64(t.Stats().UnmatchedDrops), "drops")
}

// BenchmarkE9_ProtocolComparison runs the EXPRESS-vs-baselines grid
// scenario; sub-benchmarks report each protocol's state and stretch.
func BenchmarkE9_ProtocolComparison(b *testing.B) {
	b.Run("EXPRESS", func(b *testing.B) {
		var r experiments.E9Row
		for i := 0; i < b.N; i++ {
			r = experiments.RunE9Express()
		}
		reportE9(b, r, r)
	})
	b.Run("PIM-SM-shared", func(b *testing.B) {
		base := experiments.RunE9Express()
		var r experiments.E9Row
		for i := 0; i < b.N; i++ {
			r = experiments.RunE9PIM(-1, "PIM-SM shared")
		}
		reportE9(b, r, base)
	})
	b.Run("PIM-SM-SPT", func(b *testing.B) {
		base := experiments.RunE9Express()
		var r experiments.E9Row
		for i := 0; i < b.N; i++ {
			r = experiments.RunE9PIM(0, "PIM-SM +SPT")
		}
		reportE9(b, r, base)
	})
	b.Run("CBT", func(b *testing.B) {
		base := experiments.RunE9Express()
		var r experiments.E9Row
		for i := 0; i < b.N; i++ {
			r = experiments.RunE9CBT()
		}
		reportE9(b, r, base)
	})
	b.Run("DVMRP", func(b *testing.B) {
		base := experiments.RunE9Express()
		var r experiments.E9Row
		for i := 0; i < b.N; i++ {
			r = experiments.RunE9DVMRP()
		}
		reportE9(b, r, base)
	})
}

func reportE9(b *testing.B, r, base experiments.E9Row) {
	b.ReportMetric(float64(r.StateEntries), "state-entries")
	b.ReportMetric(float64(r.FirstPktLinkTx), "firstpkt-linktx")
	b.ReportMetric(float64(r.SteadyLinkTx), "steady-linktx")
	if base.MeanDelayMs > 0 {
		b.ReportMetric(r.MeanDelayMs/base.MeanDelayMs, "stretch")
	}
}

// BenchmarkE10_RelayDelay runs the Section 4.5 relay-delay measurement.
func BenchmarkE10_RelayDelay(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := experiments.E10Relay()
		if len(t.Rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

// BenchmarkE10_RelayThroughput measures SR forwarding capacity (Section
// 4.5: a PC forwarding >100 Mbit/s serves "dozens of compressed
// broadcast-quality video streams"). It drives the relay engine directly
// and reports the implied stream capacity at 4 Mbit/s per stream.
func BenchmarkE10_RelayThroughput(b *testing.B) {
	th := experiments.RelayThroughput(b.N)
	b.ReportMetric(th.RelaysPerSec, "relays/s")
	b.ReportMetric(th.MbitPerSec, "Mbit/s")
	b.ReportMetric(th.MbitPerSec/4, "4Mbit-streams")
}

// BenchmarkE11_CountingSchemes runs each counting scheme at 10^5
// subscribers.
func BenchmarkE11_CountingSchemes(b *testing.B) {
	b.Run("ECMP", func(b *testing.B) {
		var msgs int
		for i := 0; i < b.N; i++ {
			msgs, _ = counting.ECMPCountCost(100_000/8, 100_000, 2)
		}
		b.ReportMetric(float64(msgs), "msgs")
		b.ReportMetric(2, "msgs-at-source")
	})
	b.Run("suppression", func(b *testing.B) {
		rng := rand.New(rand.NewSource(7))
		p := counting.SuppressionParams{N: 100_000, P: 0.001, Branches: 64, ImplosionThreshold: 1000}
		var r counting.SuppressionResult
		for i := 0; i < b.N; i++ {
			r = counting.RunSuppression(p, rng)
		}
		b.ReportMetric(float64(r.Responses), "msgs-at-source")
	})
	b.Run("multiround", func(b *testing.B) {
		rng := rand.New(rand.NewSource(7))
		var r counting.MultiRoundResult
		for i := 0; i < b.N; i++ {
			r = counting.RunMultiRound(100_000, 50, rng)
		}
		b.ReportMetric(float64(r.Rounds), "rounds")
		b.ReportMetric(float64(r.Responses), "msgs-at-source")
	})
}

// BenchmarkE12_AddrAllocation measures local channel allocation (Section
// 2.2.1): no coordination, constant time.
func BenchmarkE12_AddrAllocation(b *testing.B) {
	al := addr.NewAllocator(addr.MustParse("10.0.0.1"))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ch, err := al.Allocate()
		if err != nil {
			b.Fatal(err)
		}
		if err := al.Release(ch); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSim_EventThroughput is a substrate microbenchmark: raw
// simulator event dispatch rate (the cost floor of every experiment).
func BenchmarkSim_EventThroughput(b *testing.B) {
	s := netsim.New(1)
	n := 0
	var tick func()
	tick = func() {
		n++
		if n < b.N {
			s.After(netsim.Microsecond, tick)
		}
	}
	s.After(netsim.Microsecond, tick)
	b.ResetTimer()
	s.Run()
}

// BenchmarkWorkload_Figure8Script measures scenario generation.
func BenchmarkWorkload_Figure8Script(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	p := workload.DefaultFigure8()
	for i := 0; i < b.N; i++ {
		if evs := workload.Figure8Script(p, rng); len(evs) != 2*p.Total() {
			b.Fatal("bad script length")
		}
	}
}
