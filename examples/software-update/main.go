// Software update: "wide-area multicast file updates" (Section 8) using
// the reliable transport built on the counting facility — sequence-numbered
// blocks, NACK-counting repair rounds with probes, and subcast-localised
// retransmission. This is the library-level counterpart of the
// file-distribution example, which hand-rolls the same mechanism.
//
//	go run ./examples/software-update
package main

import (
	"fmt"

	"repro/internal/ecmp"
	"repro/internal/netsim"
	"repro/internal/reliable"
	"repro/internal/testutil"
)

func main() {
	// A distribution tree: vendor at the root, 8 mirror sites at the
	// leaves; one regional link is flaky during the push.
	net := testutil.TreeNet(2027, 3, ecmp.DefaultConfig())
	vendor := net.AddSource(net.Routers[0])
	channel, err := vendor.CreateChannel()
	if err != nil {
		panic(err)
	}
	sender := reliable.NewSender(vendor, channel)

	mirrors := make([]*reliable.Receiver, 0, 8)
	for _, leaf := range net.Routers[len(net.Routers)-8:] {
		mirrors = append(mirrors, reliable.NewReceiver(net.AddSubscriber(leaf), channel))
	}
	net.Start()
	net.Sim.RunUntil(500 * netsim.Millisecond)

	// Flaky regional link: drops every 4th packet during the initial push.
	var flaky *netsim.Link
	for _, l := range net.Sim.Links() {
		a, _, b, _ := l.Ends()
		if a == net.Routers[1].Node() && b == net.Routers[3].Node() {
			flaky = l
		}
	}
	flaky.LossEvery = 4

	const blocks = 24
	net.Sim.After(0, func() {
		for i := 0; i < blocks; i++ {
			if _, err := sender.Send(1400, fmt.Sprintf("update-block-%d", i)); err != nil {
				panic(err)
			}
		}
	})
	net.Sim.RunUntil(net.Sim.Now() + 2*netsim.Second)
	flaky.LossEvery = 0

	fmt.Printf("pushed %d blocks; outstanding (unconfirmed) = %d\n", blocks, sender.Outstanding())
	for i, m := range mirrors {
		fmt.Printf("  mirror %d: %d blocks before repair\n", i, m.Metrics.Delivered)
	}

	// Repair rounds: each queries NACK counts per outstanding block and
	// subcasts retransmissions through the router above the flaky region,
	// so the healthy subtree sees no repair traffic.
	via := net.Routers[1].Node().Addr
	round := 0
	for sender.Outstanding() > 0 && round < 6 {
		round++
		net.Sim.After(0, func() { sender.RepairRound(2*netsim.Second, via, nil) })
		net.Sim.RunUntil(net.Sim.Now() + 8*netsim.Second)
		fmt.Printf("repair round %d: outstanding = %d, retransmitted so far = %d\n",
			round, sender.Outstanding(), sender.Metrics.Retransmitted)
	}

	complete := 0
	for _, m := range mirrors {
		if m.Metrics.Delivered >= blocks {
			complete++
		}
	}
	fmt.Printf("\nmirrors with the complete update: %d/%d (NACK queries: %d, subcast repairs: %d)\n",
		complete, len(mirrors), sender.Metrics.NACKQueries, sender.Metrics.Subcasts)
}
