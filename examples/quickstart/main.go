// Quickstart: build a small EXPRESS internetwork, create a channel,
// subscribe two hosts, send a datagram, and count the subscribers.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"repro/internal/addr"
	"repro/internal/ecmp"
	"repro/internal/netsim"
	"repro/internal/testutil"
	"repro/internal/wire"
)

func main() {
	// Three routers in a line, ECMP on each, unicast routes computed.
	net := testutil.LineNet(42, 3, ecmp.DefaultConfig())

	// A source host behind the first router, two subscribers behind the
	// last.
	source := net.AddSource(net.Routers[0])
	alice := net.AddSubscriber(net.Routers[2])
	bob := net.AddSubscriber(net.Routers[2])
	net.Start()

	// The source allocates a channel from its private 2^24 space — no
	// global address coordination (Section 2.2.1).
	channel, err := source.CreateChannel()
	if err != nil {
		panic(err)
	}
	fmt.Printf("channel %v allocated locally by the source\n", channel)

	// newSubscription(channel): an unsolicited Count routed toward the
	// source by RPF builds the distribution tree (Section 3.2).
	alice.OnData = func(ch addr.Channel, pkt *netsim.Packet) {
		fmt.Printf("alice received %q on %v at t=%v\n", pkt.Payload, ch, net.Sim.Now())
	}
	bob.OnData = func(ch addr.Channel, pkt *netsim.Packet) {
		fmt.Printf("bob   received %q on %v at t=%v\n", pkt.Payload, ch, net.Sim.Now())
	}
	net.Sim.At(0, func() {
		alice.Subscribe(channel, nil, nil)
		bob.Subscribe(channel, nil, nil)
	})
	net.Sim.RunUntil(netsim.Second)

	// Only the designated source may send to (S,E).
	net.Sim.After(0, func() { _ = source.Send(channel, 1000, "hello, subscribers") })
	net.Sim.RunUntil(2 * netsim.Second)

	// CountQuery aggregates the subscriber count up the tree (Section 3.1).
	net.Sim.After(0, func() {
		source.CountQuery(channel, wire.CountSubscribers, netsim.Second, false,
			func(count uint32, ok bool) {
				fmt.Printf("CountQuery: %d subscribers (replied=%v)\n", count, ok)
			})
	})
	net.Sim.RunUntil(4 * netsim.Second)

	fmt.Printf("FIB entries network-wide: %d (one per on-tree router)\n", net.TotalFIBEntries())
}
