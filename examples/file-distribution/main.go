// File distribution: reliable wide-area multicast file updates (Sections 1,
// 2.2.1). The source multicasts file blocks on a channel, then uses the
// counting facility to "efficiently collect positive acknowledgements or
// negative acknowledgments to determine how many subscribers missed a
// particular packet" — and subcasts the repair through the router closest
// to the lossy branch (Section 2.1).
//
//	go run ./examples/file-distribution
package main

import (
	"fmt"

	"repro/internal/addr"
	"repro/internal/ecmp"
	"repro/internal/express"
	"repro/internal/netsim"
	"repro/internal/testutil"
	"repro/internal/wire"
)

// nackBase: application-defined countIds, one per block — a subscriber
// answers 1 if it is missing that block.
const nackBase = wire.AppCountBase + 0x100

type block struct {
	Seq  int
	Data string
}

func main() {
	net := testutil.TreeNet(3, 3, ecmp.DefaultConfig()) // 15 routers, 8 leaves
	src := net.AddSource(net.Routers[0])
	leaves := net.Routers[len(net.Routers)-8:]

	const nReceivers = 16
	const nBlocks = 8
	received := make([]map[int]bool, nReceivers)
	receivers := make([]*express.Subscriber, nReceivers)
	for i := range receivers {
		receivers[i] = net.AddSubscriber(leaves[i%len(leaves)])
		received[i] = make(map[int]bool, nBlocks)
		idx, r := i, receivers[i]
		r.OnData = func(_ addr.Channel, pkt *netsim.Packet) {
			if b, ok := pkt.Payload.(*block); ok {
				received[idx][b.Seq] = true
			}
		}
		r.OnAppCount = func(_ addr.Channel, id wire.CountID) uint32 {
			seq := int(id - nackBase)
			if seq >= 0 && seq < nBlocks && !received[idx][seq] {
				return 1 // NACK: this block is missing
			}
			return 0
		}
	}
	net.Start()

	channel, err := src.CreateChannel()
	if err != nil {
		panic(err)
	}
	net.Sim.At(0, func() {
		for _, r := range receivers {
			r.Subscribe(channel, nil, nil)
		}
	})
	net.Sim.RunUntil(netsim.Second)

	// Inject loss on one subtree link (router 1 → router 3): every packet
	// on that branch is dropped during the first transmission round.
	var lossy *netsim.Link
	for _, l := range net.Sim.Links() {
		a, _, b, _ := l.Ends()
		if a == net.Routers[1].Node() && b == net.Routers[3].Node() {
			lossy = l
			break
		}
	}
	lossy.LossEvery = 1 // drop everything on that branch for now

	for i := 0; i < nBlocks; i++ {
		seq := i
		net.Sim.After(0, func() { _ = src.Send(channel, 1400, &block{Seq: seq, Data: "chunk"}) })
		net.Sim.RunUntil(net.Sim.Now() + 50*netsim.Millisecond)
	}
	lossy.LossEvery = 0 // branch heals

	// NACK collection: one CountQuery per block counts how many receivers
	// missed it, without any feedback implosion.
	fmt.Println("NACK counts per block after first pass:")
	missing := make([]uint32, nBlocks)
	for i := 0; i < nBlocks; i++ {
		seq := i
		net.Sim.After(0, func() {
			src.CountQuery(channel, nackBase+wire.CountID(seq), 2*netsim.Second, false,
				func(count uint32, ok bool) {
					missing[seq] = count
					fmt.Printf("  block %d: %d receivers missing (replied=%v)\n", seq, count, ok)
				})
		})
	}
	net.Sim.RunUntil(net.Sim.Now() + 5*netsim.Second)

	// Repair pass: subcast the missing blocks through the router above the
	// lossy branch so only that subtree sees the retransmission.
	repairVia := net.Routers[1].Node().Addr
	for seq, n := range missing {
		if n == 0 {
			continue
		}
		s := seq
		net.Sim.After(0, func() { _ = src.Subcast(channel, repairVia, 1400, &block{Seq: s, Data: "chunk"}) })
	}
	net.Sim.RunUntil(net.Sim.Now() + 2*netsim.Second)

	// Verify every receiver now has the whole file.
	complete := 0
	for i := range receivers {
		if len(received[i]) == nBlocks {
			complete++
		}
	}
	fmt.Printf("receivers with the complete file after subcast repair: %d/%d\n", complete, nReceivers)
}
