// Distance learning: the paper's canonical almost-single-source application
// (Section 4). A lecturer multicasts over a session-relay channel; students
// ask questions through the SR's floor control ("an intelligent audience
// microphone"); a long-talking guest speaker switches to a direct channel
// of their own.
//
//	go run ./examples/distance-learning
package main

import (
	"fmt"

	"repro/internal/ecmp"
	"repro/internal/netsim"
	"repro/internal/relay"
	"repro/internal/testutil"
)

func main() {
	// Campus network: hub router with six department POPs. The SR host is
	// placed at the hub — application-selected placement, unlike a
	// network-chosen PIM rendezvous point (Section 4.2).
	net := testutil.StarNet(7, 6, ecmp.DefaultConfig())
	srHost, _, hubIf := netsim.AttachHost(net.Sim, net.Routers[0].Node(), 50, netsim.DefaultLAN)
	net.Routers[0].SetIfaceMode(hubIf, ecmp.ModeUDP)

	sr, lecture, err := relay.New(srHost, relay.FloorPolicy{MaxQuestionsPerMember: 2})
	if err != nil {
		panic(err)
	}
	sr.Lecturer = srHost.Addr
	fmt.Printf("lecture channel %v, session relay at %v\n", lecture, srHost.Addr)

	var students []*relay.Participant
	for i := 1; i <= 6; i++ {
		h, _, rIf := netsim.AttachHost(net.Sim, net.Routers[i].Node(), 100+i, netsim.DefaultLAN)
		net.Routers[i].SetIfaceMode(rIf, ecmp.ModeUDP)
		p := relay.Join(h, srHost.Addr, lecture)
		name := fmt.Sprintf("student-%d", i)
		p.OnContent = func(rp *relay.RelayedPacket) {
			if s, ok := rp.Payload.(string); ok {
				fmt.Printf("  [%s] heard seq=%d from %v: %q\n", name, rp.Seq, rp.From, s)
			}
		}
		students = append(students, p)
	}
	net.Start() // recompute unicast routes over the attached hosts
	net.Sim.RunUntil(500 * netsim.Millisecond)

	// The lecture begins.
	net.Sim.After(0, func() { sr.SendPrimary(1200, "Welcome to CS144: today, multicast channels.") })
	net.Sim.RunUntil(net.Sim.Now() + netsim.Second)

	// Two students want to ask questions; the SR serialises them.
	net.Sim.After(0, func() {
		students[0].RequestFloor()
		students[3].RequestFloor()
	})
	net.Sim.RunUntil(net.Sim.Now() + netsim.Second)
	net.Sim.After(0, func() { students[0].Say(400, "Why exactly one source per channel?") })
	net.Sim.RunUntil(net.Sim.Now() + netsim.Second)
	net.Sim.After(0, func() { sr.SendPrimary(800, "Because it gives charging, access control and RPF-only routing.") })
	net.Sim.RunUntil(net.Sim.Now() + netsim.Second)
	net.Sim.After(0, func() { students[0].ReleaseFloor() })
	net.Sim.RunUntil(net.Sim.Now() + netsim.Second)
	net.Sim.After(0, func() { students[3].Say(400, "How do session relays differ from rendezvous points?") })
	net.Sim.RunUntil(net.Sim.Now() + netsim.Second)

	// A guest speaker will talk for an hour: switch them to a direct
	// channel instead of relaying (Section 4.1's alternative).
	guest := students[5]
	direct, err := guest.Subscriber().NodeChannel(1)
	if err != nil {
		panic(err)
	}
	net.Sim.After(0, func() { sr.AnnounceNewSource(direct) })
	net.Sim.RunUntil(net.Sim.Now() + netsim.Second)
	net.Sim.After(0, func() { _ = guest.Subscriber().SendOn(direct, 1200, "guest lecture, streamed directly") })
	net.Sim.RunUntil(net.Sim.Now() + netsim.Second)

	fmt.Printf("\nSR relayed %d packets, refused %d floor-less sends, granted the floor %d times\n",
		sr.Metrics.Relayed, sr.Metrics.RefusedNoFloor, sr.Metrics.FloorGrants)

	// RTCP-style session size without multi-sender multicast (Section 4.5).
	net.Sim.After(0, func() {
		sr.SessionSize(2*netsim.Second, func(n uint32, ok bool) {
			fmt.Printf("session size via CountQuery: %d participants (replied=%v)\n", n, ok)
		})
	})
	net.Sim.RunUntil(net.Sim.Now() + 5*netsim.Second)
}
