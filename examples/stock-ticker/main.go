// Stock ticker: the long-running large-scale channel of Section 5.1,
// priced with the Figure 6 cost model, with proactive counting (Section 6)
// keeping a live subscriber estimate at the source without polling.
//
//	go run ./examples/stock-ticker
package main

import (
	"fmt"

	"repro/internal/addr"
	"repro/internal/costmodel"
	"repro/internal/ecmp"
	"repro/internal/express"
	"repro/internal/netsim"
	"repro/internal/testutil"
)

func main() {
	// Price the paper's 100,000-subscriber scenario with its own constants.
	model := costmodel.Paper()
	tick := model.StockTicker()
	fmt.Println("Figure 6 cost model, stock-ticker scenario:")
	fmt.Printf("  tree links:        %d\n", tick.Entries)
	fmt.Printf("  yearly FIB cost:   $%.2f\n", tick.TotalDollars)
	fmt.Printf("  per subscriber-yr: %.3f cents\n", tick.PerMemberCents)
	lease, _ := costmodel.CableTVComparison()
	fmt.Printf("  (a community cable channel leases for ~$%.2f per potential viewer per MONTH)\n\n", lease)

	// A scaled-down live run: subscribers churn while the ticker streams;
	// proactive counting keeps the source's estimate fresh for far less
	// than continuous polling would cost.
	cfg := ecmp.DefaultConfig()
	cfg.Propagation = ecmp.PropagateProactive
	cfg.Proactive = ecmp.ProactiveParams{EMax: 0.05, Alpha: 4, Tau: 30 * netsim.Second}
	net := testutil.TreeNet(11, 4, cfg)
	src := net.AddSource(net.Routers[0])
	leaves := net.Routers[len(net.Routers)-16:]

	const pop = 96
	subs := make([]*express.Subscriber, pop)
	for i := range subs {
		subs[i] = net.AddSubscriber(leaves[i%len(leaves)])
	}
	net.Start()
	channel, err := src.CreateChannelAt(0x71C) // "TIC"
	if err != nil {
		panic(err)
	}
	src.OnEstimate = func(_ addr.Channel, est uint32, at netsim.Time) {
		fmt.Printf("  t=%-8v live subscriber estimate: %d\n", at, est)
	}

	// Morning: traders pile in; midday churn; close: most leave.
	for i, s := range subs {
		ss, d := s, netsim.Time(i)*200*netsim.Millisecond
		net.Sim.At(d, func() { ss.Subscribe(channel, nil, nil) })
		if i%3 == 0 {
			net.Sim.At(60*netsim.Second+d, func() { ss.Unsubscribe(channel) })
		}
	}
	// The ticker streams a quote every 500 ms throughout.
	for i := 0; i < 200; i++ {
		net.Sim.At(netsim.Time(i)*500*netsim.Millisecond, func() { _ = src.Send(channel, 128, "AAPL 207.12") })
	}
	fmt.Println("running the trading day:")
	net.Sim.RunUntil(120 * netsim.Second)

	delivered := uint64(0)
	for _, s := range subs {
		delivered += s.Delivered
	}
	fmt.Printf("\nquotes delivered: %d; final estimate at source: %d; Counts received by source: %d\n",
		delivered, src.SubscriberEstimate(channel), src.CountsReceived)
	fmt.Println("(an eager implementation would send the source one Count per membership change — " +
		"proactive counting batches them under the Section 6 tolerance curve)")
}
