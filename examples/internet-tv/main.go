// Internet TV: the paper's motivating "sports-tv.net" scenario (Section 1).
// A content provider runs an authenticated channel to a large audience,
// polls viewers during the broadcast with an application-defined countId,
// and a third party's attempt to inject traffic at "the moment of the
// crucial touchdown" is counted-and-dropped by the network.
//
//	go run ./examples/internet-tv
package main

import (
	"fmt"

	"repro/internal/addr"
	"repro/internal/ecmp"
	"repro/internal/express"
	"repro/internal/netsim"
	"repro/internal/testutil"
	"repro/internal/wire"
)

// voteID is an application-defined countId: "an Internet TV station can
// conduct a poll of votes on some topical interest" (Section 2.2.1).
const voteID = wire.AppCountBase + 1

func main() {
	// A tree of 31 routers; viewers at the 16 leaf POPs.
	cfg := ecmp.DefaultConfig()
	net := testutil.TreeNet(2026, 4, cfg)
	station := net.AddSource(net.Routers[0])
	leaves := net.Routers[len(net.Routers)-16:]

	const audience = 64
	viewers := make([]*express.Subscriber, audience)
	voted := make(map[int]uint32, audience)
	for i := range viewers {
		viewers[i] = net.AddSubscriber(leaves[i%len(leaves)])
		// Each viewer's set-top box answers the poll; 0 or 1 per viewer.
		v, idx := viewers[i], i
		voted[i] = uint32(i % 3 % 2) // a third of the audience votes "yes"
		v.OnAppCount = func(_ addr.Channel, id wire.CountID) uint32 {
			if id == voteID {
				return voted[idx]
			}
			return 0
		}
	}
	pirate := net.AddSource(net.Routers[3]) // attacker host mid-network
	net.Start()

	// The Super Bowl channel, protected by K(S,E) so only paying
	// subscribers can join.
	channel, err := station.CreateChannelAt(0x5B) // "SB"
	if err != nil {
		panic(err)
	}
	key := wire.Key{'s', 'p', 'o', 'r', 't', 's', 't', 'v'}
	net.Sim.At(0, func() {
		if err := station.ChannelKey(channel, key); err != nil {
			panic(err)
		}
	})
	net.Sim.At(100*netsim.Millisecond, func() {
		for _, v := range viewers {
			v.Subscribe(channel, &key, nil)
		}
	})
	net.Sim.RunUntil(3 * netsim.Second)

	// Broadcast a few MPEG-2-sized frames.
	for i := 0; i < 5; i++ {
		net.Sim.After(0, func() { _ = station.Send(channel, 1316, "frame") })
		net.Sim.RunUntil(net.Sim.Now() + 40*netsim.Millisecond)
	}

	// The pirate transmits a high-rate stream to the same destination
	// address at the moment of the touchdown...
	net.Sim.After(0, func() {
		for i := 0; i < 10; i++ {
			pirate.Node().SendAll(-1, &netsim.Packet{
				Src: pirate.Node().Addr, Dst: channel.E, Proto: netsim.ProtoData,
				TTL: netsim.DefaultTTL, Size: 1316, Payload: "pirate-stream",
			})
		}
	})
	net.Sim.RunUntil(net.Sim.Now() + netsim.Second)

	delivered, pirated := uint64(0), 0
	for _, v := range viewers {
		delivered += v.Delivered
	}
	var drops uint64
	for _, r := range net.Routers {
		drops += r.FIB().Stats().UnmatchedDrops
	}
	fmt.Printf("audience %d: %d legitimate frames delivered (%d each)\n",
		audience, delivered, delivered/audience)
	fmt.Printf("pirate packets delivered: %d; counted-and-dropped at routers: %d\n", pirated, drops)

	// Halftime poll: one CountQuery reaches the whole audience and returns
	// the aggregated vote.
	var want uint32
	for _, v := range voted {
		want += v
	}
	net.Sim.After(0, func() {
		station.CountQuery(channel, voteID, 2*netsim.Second, false, func(count uint32, ok bool) {
			fmt.Printf("halftime poll: %d yes votes (replied=%v, expected %d)\n", count, ok, want)
		})
	})
	// And a subscriber count for ad pricing — the ISP's charging basis
	// (Section 2.2.3).
	net.Sim.After(0, func() {
		station.CountQuery(channel, wire.CountSubscribers, 2*netsim.Second, false, func(count uint32, ok bool) {
			fmt.Printf("subscriber count for charging: %d (replied=%v)\n", count, ok)
		})
	})
	net.Sim.RunUntil(net.Sim.Now() + 5*netsim.Second)
}
