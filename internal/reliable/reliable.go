// Package reliable is a NACK-based reliable multicast transport over
// EXPRESS channels, the application the paper motivates in Sections 1 and
// 2.2.1: "counting ... can be used to efficiently collect positive
// acknowledgements or negative acknowledgments to determine how many
// subscribers missed a particular packet" — wide-area multicast file
// updates without the feedback implosion that plagues unicast-ACK schemes.
//
// The sender stamps datagrams with sequence numbers, then runs repair
// rounds: one CountQuery per suspect sequence number counts the receivers
// still missing it (the NACK count), and any block with a non-zero count
// is retransmitted — to the whole channel, or via subcast through a relay
// router when the losses cluster in one subtree (Section 2.1). Receivers
// buffer out-of-order arrivals and deliver in order.
package reliable

import (
	"fmt"

	"repro/internal/addr"
	"repro/internal/express"
	"repro/internal/netsim"
	"repro/internal/wire"
)

// Window is how many outstanding sequence numbers map onto the
// application-defined countId space at once. NACK queries for sequence s
// use countId nackBase + s mod Window, so the *span* of unrepaired
// sequences (newest − oldest) must stay below Window: two live sequences
// that are Window apart would share a countId, and a NACK for one would
// be indistinguishable from a NACK for the other. (Bounding the count of
// outstanding sequences is not enough — 2 outstanding sequences can still
// be Window apart.)
const Window = 512

// nackBase is the first application-defined countId used for NACK counts.
const nackBase = wire.AppCountBase + 0x200

// nackID maps a sequence number to its NACK countId.
func nackID(seq uint32) wire.CountID {
	return nackBase + wire.CountID(seq%Window)
}

// Datagram is the transport's wire unit.
type Datagram struct {
	Seq     uint32
	Payload any
	Retx    bool // retransmission marker (for stats; semantics identical)
}

// Sender is the reliable source side.
type Sender struct {
	src *express.Source
	ch  addr.Channel

	nextSeq uint32
	// unrepaired holds sent datagrams not yet confirmed hole-free.
	unrepaired map[uint32]*sentRecord

	Metrics SenderMetrics
}

type sentRecord struct {
	size    int
	payload any
}

// SenderMetrics counts transport activity.
type SenderMetrics struct {
	Sent          uint64
	RepairRounds  uint64
	NACKQueries   uint64
	Retransmitted uint64
	Subcasts      uint64
	// Probes counts high-water probes on the real transport (the netsim
	// sender's probes consume sequence numbers and count under Sent).
	Probes uint64
}

// NewSender wraps an EXPRESS source and channel.
func NewSender(src *express.Source, ch addr.Channel) *Sender {
	return &Sender{src: src, ch: ch, unrepaired: make(map[uint32]*sentRecord)}
}

// windowFull reports whether sending nextSeq would alias an unrepaired
// sequence's NACK countId: the serial span from the oldest unrepaired
// sequence through nextSeq inclusive would reach Window.
func (s *Sender) windowFull() bool {
	if len(s.unrepaired) == 0 {
		return false
	}
	oldest := s.nextSeq
	for seq := range s.unrepaired {
		if wire.SeqBefore(seq, oldest) {
			oldest = seq
		}
	}
	return wire.SeqDelta(s.nextSeq, oldest) >= Window
}

// Send transmits the next in-sequence datagram and returns its sequence
// number.
func (s *Sender) Send(size int, payload any) (uint32, error) {
	if s.windowFull() {
		return 0, fmt.Errorf("reliable: repair window full (span %d)", Window)
	}
	seq := s.nextSeq
	s.nextSeq++
	if err := s.src.Send(s.ch, size, &Datagram{Seq: seq, Payload: payload}); err != nil {
		return 0, err
	}
	s.unrepaired[seq] = &sentRecord{size: size, payload: payload}
	s.Metrics.Sent++
	return seq, nil
}

// Outstanding returns the number of sequences not yet confirmed repaired.
func (s *Sender) Outstanding() int { return len(s.unrepaired) }

// RepairRound queries the NACK count for every outstanding sequence and
// retransmits those still missing somewhere. via, when non-zero, subcasts
// the repairs through that on-tree router instead of re-multicasting to
// the whole channel. done is called when the round completes, with the
// number of sequences that needed repair.
//
// NACKs can only report holes *below* a receiver's high-water mark, so the
// round first multicasts a probe datagram (consuming one sequence number):
// any tail loss becomes a detectable hole beneath the probe. A lost probe
// is covered by the next round's probe.
func (s *Sender) RepairRound(timeout netsim.Time, via addr.Addr, done func(repaired int)) {
	s.Metrics.RepairRounds++
	if len(s.unrepaired) == 0 {
		if done != nil {
			done(0)
		}
		return
	}
	if _, err := s.Send(1, probePayload{}); err == nil {
		// The probe needs no reliability of its own: receivers that got it
		// answer 0 and it clears; receivers that lost it are re-probed by
		// the next round.
	}
	pending := len(s.unrepaired)
	repaired := 0
	for seq, rec := range s.unrepaired {
		seq, rec := seq, rec
		s.Metrics.NACKQueries++
		s.src.CountQuery(s.ch, nackID(seq), timeout, false, func(missing uint32, ok bool) {
			if ok && missing == 0 {
				delete(s.unrepaired, seq) // everyone has it
			} else {
				repaired++
				s.retransmit(seq, rec, via)
			}
			pending--
			if pending == 0 && done != nil {
				done(repaired)
			}
		})
	}
}

// probePayload marks repair-round probe datagrams; receivers deliver them
// like any datagram (applications see Datagram.Payload of this type and
// may ignore it).
type probePayload struct{}

// IsProbe reports whether a delivered datagram is a repair-round probe.
func IsProbe(d *Datagram) bool {
	_, ok := d.Payload.(probePayload)
	return ok
}

func (s *Sender) retransmit(seq uint32, rec *sentRecord, via addr.Addr) {
	d := &Datagram{Seq: seq, Payload: rec.payload, Retx: true}
	s.Metrics.Retransmitted++
	if via != 0 {
		s.Metrics.Subcasts++
		_ = s.src.Subcast(s.ch, via, rec.size, d)
		return
	}
	_ = s.src.Send(s.ch, rec.size, d)
}

// Receiver is the reliable subscriber side: it answers NACK queries for
// the holes in its sequence space and delivers datagrams in order.
type Receiver struct {
	sub *express.Subscriber
	ch  addr.Channel

	// next is the lowest sequence not yet delivered to the application.
	next   uint32
	buffer map[uint32]*Datagram
	seen   map[uint32]bool

	// OnDeliver receives datagrams in sequence order.
	OnDeliver func(d *Datagram)

	Metrics ReceiverMetrics
}

// ReceiverMetrics counts receiver activity.
type ReceiverMetrics struct {
	Received   uint64
	Duplicates uint64
	Delivered  uint64
	NACKsSent  uint64 // non-zero answers to NACK queries
}

// NewReceiver subscribes sub to the channel and installs the transport's
// data and count handlers. The subscriber must not be otherwise in use.
func NewReceiver(sub *express.Subscriber, ch addr.Channel) *Receiver {
	r := &Receiver{
		sub:    sub,
		ch:     ch,
		buffer: make(map[uint32]*Datagram),
		seen:   make(map[uint32]bool),
	}
	sub.OnData = func(c addr.Channel, pkt *netsim.Packet) {
		if c != ch {
			return
		}
		if d, ok := pkt.Payload.(*Datagram); ok {
			r.onDatagram(d)
		}
	}
	sub.OnAppCount = r.answerNACK
	sub.Subscribe(ch, nil, nil)
	return r
}

// Next returns the lowest undelivered sequence number.
func (r *Receiver) Next() uint32 { return r.next }

// Missing reports whether seq is a known hole: some serially higher
// sequence has arrived but seq has not. All comparisons are serial
// (RFC 1982 style), so streams crossing the uint32 rollover keep exact
// hole accounting.
func (r *Receiver) Missing(seq uint32) bool {
	return wire.SeqBefore(seq, r.highestSeen()) && !r.seen[seq] && !wire.SeqBefore(seq, r.next)
}

func (r *Receiver) highestSeen() uint32 {
	hi := r.next
	for s := range r.buffer {
		if !wire.SeqBefore(s, hi) {
			hi = s + 1
		}
	}
	return hi
}

func (r *Receiver) onDatagram(d *Datagram) {
	if r.seen[d.Seq] || wire.SeqBefore(d.Seq, r.next) {
		r.Metrics.Duplicates++
		return
	}
	r.Metrics.Received++
	r.seen[d.Seq] = true
	r.buffer[d.Seq] = d
	for {
		nd, ok := r.buffer[r.next]
		if !ok {
			break
		}
		delete(r.buffer, r.next)
		r.next++
		r.Metrics.Delivered++
		if r.OnDeliver != nil {
			r.OnDeliver(nd)
		}
	}
}

// answerNACK responds to a per-sequence NACK query: 1 if the receiver has
// an unseen sequence congruent to the queried slot below its high-water
// mark — a hole it can prove. Sequences it has never heard of (at or above
// the high-water mark) are not NACKable, the standard limitation of pure
// NACK schemes; the sender's repair-round probe converts tail losses into
// holes so they become reportable.
func (r *Receiver) answerNACK(_ addr.Channel, id wire.CountID) uint32 {
	if id < nackBase || id >= nackBase+Window {
		return 0
	}
	slot := uint32(id - nackBase)
	hi := r.highestSeen()
	for seq := r.next; wire.SeqBefore(seq, hi); seq++ {
		if seq%Window == slot && !r.seen[seq] {
			r.Metrics.NACKsSent++
			return 1
		}
	}
	return 0
}
