package reliable

// Real-socket port of the NACK-count transport: the same Section 2.2.1
// protocol as the netsim Sender/Receiver, but over internal/dataplane UDP
// channel packets and the router's real ECMP counting path. Receivers
// *push* their hole state as application-defined Counts on their neighbor
// session (the proactive counting of Section 6); the router aggregates
// them per channel, and the sender's CountQuery reads the aggregate — one
// query returns how many receivers still miss a sequence, with no
// per-receiver feedback traffic at all.

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/addr"
	"repro/internal/dataplane"
	"repro/internal/realnet"
	"repro/internal/wire"
)

// realRecord is one unrepaired datagram on the real sender: a private copy
// of the payload (the caller's buffer is reused) plus the retirement
// streak. A sequence retires only after two consecutive rounds report a
// zero NACK count: a receiver that lost both the datagram and that round's
// probe cannot NACK yet, and retiring on the first clean query would
// orphan its hole forever (the sender stops querying a slot it no longer
// tracks). Two rounds with a fresh probe between them give the hole a
// second chance to surface.
type realRecord struct {
	payload     []byte
	cleanRounds int
}

// RealSender is the reliable source over a real data plane: it owns the
// channel's sequence counter (sends go through Source.SendSeq, so
// retransmissions never consume fresh sequence numbers) and uses the
// neighbor session's CountQuery as the NACK-count read path.
type RealSender struct {
	src  *dataplane.Source
	sess *realnet.Session
	ch   addr.Channel

	mu         sync.Mutex
	nextSeq    uint32
	unrepaired map[uint32]*realRecord

	Metrics SenderMetrics
}

// NewRealSender wraps a channel source and the neighbor session used for
// NACK-count queries. The sender continues the source's sequence space.
func NewRealSender(src *dataplane.Source, sess *realnet.Session) *RealSender {
	return &RealSender{
		src:        src,
		sess:       sess,
		ch:         src.Channel(),
		nextSeq:    src.Seq() + 1,
		unrepaired: make(map[uint32]*realRecord),
	}
}

// windowFull reports whether sending nextSeq would alias an unrepaired
// sequence's NACK countId — the same serial span bound as the netsim
// sender. Callers hold s.mu.
func (s *RealSender) windowFull() bool {
	if len(s.unrepaired) == 0 {
		return false
	}
	oldest := s.nextSeq
	for seq := range s.unrepaired {
		if wire.SeqBefore(seq, oldest) {
			oldest = seq
		}
	}
	return wire.SeqDelta(s.nextSeq, oldest) >= Window
}

// Send transmits the next in-sequence datagram and returns its sequence
// number. The payload is copied; the caller's buffer may be reused.
func (s *RealSender) Send(payload []byte) (uint32, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.windowFull() {
		return 0, fmt.Errorf("reliable: repair window full (span %d)", Window)
	}
	seq := s.nextSeq
	if err := s.src.SendSeq(seq, payload, 0); err != nil {
		return 0, err
	}
	s.nextSeq++
	s.unrepaired[seq] = &realRecord{payload: append([]byte(nil), payload...)}
	s.Metrics.Sent++
	return seq, nil
}

// Outstanding returns the number of sequences not yet confirmed repaired.
func (s *RealSender) Outstanding() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.unrepaired)
}

// RepairRound multicasts a probe (tail losses must become holes before
// they are NACKable), waits settle for receivers' pushed hole counts to
// reach the router, then queries the NACK count for every outstanding
// sequence and retransmits those still missing somewhere. Returns how many
// sequences needed repair.
//
// The probe is a high-water marker outside the ordered stream: it re-
// stamps the newest data sequence with DataFlagProbe, consumes no sequence
// number, and is never tracked — receivers use it only to learn how far
// the stream extends, so a dropped probe costs nothing but one round of
// detection latency (the next round carries a fresh one).
func (s *RealSender) RepairRound(settle, timeout time.Duration) (int, error) {
	s.mu.Lock()
	s.Metrics.RepairRounds++
	if len(s.unrepaired) == 0 {
		s.mu.Unlock()
		return 0, nil
	}
	if err := s.src.SendSeq(s.nextSeq-1, nil, wire.DataFlagProbe); err == nil {
		s.Metrics.Probes++
	}
	suspects := make(map[uint32]*realRecord, len(s.unrepaired))
	for seq, rec := range s.unrepaired {
		suspects[seq] = rec
	}
	s.mu.Unlock()

	if settle > 0 {
		time.Sleep(settle)
	}
	repaired := 0
	var firstErr error
	for seq, rec := range suspects {
		s.mu.Lock()
		s.Metrics.NACKQueries++
		s.mu.Unlock()
		missing, err := s.sess.Query(s.ch, nackID(seq), timeout)
		if err != nil {
			// A flapped session surfaces as a timeout; the sequence stays
			// outstanding for the next round.
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		s.mu.Lock()
		if missing == 0 {
			rec.cleanRounds++
			if rec.cleanRounds >= 2 {
				delete(s.unrepaired, seq) // everyone provably has it
			}
		} else {
			rec.cleanRounds = 0
			repaired++
			s.Metrics.Retransmitted++
			s.src.SendSeq(seq, rec.payload, wire.DataFlagRetx)
		}
		s.mu.Unlock()
	}
	return repaired, firstErr
}

// RealReceiver is the reliable subscriber over a real data plane: it
// buffers out-of-order channel packets, delivers in order, and pushes its
// hole state to the router as application-defined NACK counts — raised
// when a hole opens, cleared the moment a repair fills it.
type RealReceiver struct {
	recv *dataplane.Receiver
	sess *realnet.Session
	ch   addr.Channel

	mu      sync.Mutex
	started bool
	next    uint32
	buffer  map[uint32]*bufferedPkt
	seen    map[uint32]bool
	raised  map[wire.CountID]bool
	// probeHi is the exclusive high-water a probe advertised (valid when
	// probeHiSet): the stream extends at least this far, so every unseen
	// sequence below it is a NACKable hole even when the arrivals that
	// would prove it were themselves lost.
	probeHi    uint32
	probeHiSet bool
	metrics    ReceiverMetrics

	// onDeliver receives datagrams in sequence order; the payload is a
	// private copy.
	onDeliver func(seq uint32, payload []byte, flags uint8)

	wg sync.WaitGroup
}

type bufferedPkt struct {
	payload []byte
	flags   uint8
}

// NewRealReceiver subscribes sess to ch and consumes recv until the
// receiver socket is closed, handing in-order datagrams to onDeliver (the
// payload is a private copy; nil discards). recv must be the data endpoint
// the session's Hello advertises (directly or through a loss-injecting
// proxy).
func NewRealReceiver(recv *dataplane.Receiver, sess *realnet.Session, ch addr.Channel,
	onDeliver func(seq uint32, payload []byte, flags uint8)) *RealReceiver {
	r := &RealReceiver{
		recv:      recv,
		sess:      sess,
		ch:        ch,
		buffer:    make(map[uint32]*bufferedPkt),
		seen:      make(map[uint32]bool),
		raised:    make(map[wire.CountID]bool),
		onDeliver: onDeliver,
	}
	sess.Subscribe(ch)
	sess.Flush()
	r.wg.Add(1)
	go r.loop()
	return r
}

// Stats snapshots the receiver's metrics.
func (r *RealReceiver) Stats() ReceiverMetrics {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.metrics
}

// Next returns the lowest undelivered sequence number.
func (r *RealReceiver) Next() uint32 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.next
}

// Close closes the data socket, stopping the receive loop.
func (r *RealReceiver) Close() error {
	err := r.recv.Close()
	r.wg.Wait()
	return err
}

func (r *RealReceiver) loop() {
	defer r.wg.Done()
	for {
		pkt, err := r.recv.Recv()
		if err != nil {
			return
		}
		if pkt.Channel != r.ch {
			continue
		}
		r.onPacket(&pkt)
	}
}

func (r *RealReceiver) onPacket(pkt *wire.DataPacket) {
	type delivery struct {
		seq     uint32
		payload []byte
		flags   uint8
	}
	var out []delivery

	r.mu.Lock()
	if pkt.Flags&wire.DataFlagProbe != 0 {
		// A probe is a high-water marker, not stream content: it re-stamps
		// an existing sequence and is never buffered or delivered. Before
		// the first data arrival it is also ignored — there is no anchor
		// to measure holes against yet.
		if r.started {
			if hi := pkt.Seq + 1; !r.probeHiSet || wire.SeqAfter(hi, r.probeHi) {
				r.probeHi = hi
				r.probeHiSet = true
			}
			r.syncNACKsLocked()
		}
		r.mu.Unlock()
		return
	}
	if !r.started {
		r.started = true
		r.next = pkt.Seq
	}
	if r.seen[pkt.Seq] || wire.SeqBefore(pkt.Seq, r.next) {
		r.metrics.Duplicates++
		r.mu.Unlock()
		return
	}
	r.metrics.Received++
	r.seen[pkt.Seq] = true
	r.buffer[pkt.Seq] = &bufferedPkt{payload: append([]byte(nil), pkt.Payload...), flags: pkt.Flags}
	for {
		bp, ok := r.buffer[r.next]
		if !ok {
			break
		}
		delete(r.buffer, r.next)
		delete(r.seen, r.next) // below next, SeqBefore guards duplicates
		out = append(out, delivery{seq: r.next, payload: bp.payload, flags: bp.flags})
		r.next++
		r.metrics.Delivered++
	}
	r.syncNACKsLocked()
	cb := r.onDeliver
	r.mu.Unlock()

	if cb != nil {
		for _, d := range out {
			cb(d.seq, d.payload, d.flags)
		}
	}
}

// syncNACKsLocked pushes the receiver's hole state to the router: one
// application-defined count per NACK slot, raised while the congruent
// sequence below the high-water mark is missing and cleared once it
// arrives. The sender's span bound (Window) guarantees at most one live
// sequence per slot, so a slot is unambiguous. Callers hold r.mu.
func (r *RealReceiver) syncNACKsLocked() {
	hi := r.next
	for s := range r.buffer {
		if !wire.SeqBefore(s, hi) {
			hi = s + 1
		}
	}
	if r.probeHiSet && wire.SeqAfter(r.probeHi, hi) {
		hi = r.probeHi
	}
	holes := make(map[wire.CountID]bool)
	for seq := r.next; wire.SeqBefore(seq, hi); seq++ {
		if !r.seen[seq] {
			holes[nackID(seq)] = true
		}
	}
	changed := false
	for id := range holes {
		if !r.raised[id] {
			r.raised[id] = true
			r.sess.SendAppCount(r.ch, id, 1)
			r.metrics.NACKsSent++
			changed = true
		}
	}
	for id := range r.raised {
		if !holes[id] {
			delete(r.raised, id)
			r.sess.SendAppCount(r.ch, id, 0)
			changed = true
		}
	}
	if changed {
		r.sess.Flush()
	}
}
