package reliable_test

import (
	"testing"

	"repro/internal/addr"
	"repro/internal/ecmp"
	"repro/internal/netsim"
	"repro/internal/reliable"
	"repro/internal/testutil"
)

// session builds a sender behind the tree root and one receiver per leaf,
// and locates the link into the left subtree for loss injection.
func session(t *testing.T, seed int64) (*testutil.Net, *reliable.Sender, []*reliable.Receiver, *netsim.Link, addr.Channel) {
	t.Helper()
	n := testutil.TreeNet(seed, 2, ecmp.DefaultConfig())
	src := n.AddSource(n.Routers[0])
	ch := testutil.MustChannel(src)
	sender := reliable.NewSender(src, ch)
	var recvs []*reliable.Receiver
	for _, leaf := range n.Routers[3:] {
		recvs = append(recvs, reliable.NewReceiver(n.AddSubscriber(leaf), ch))
	}
	n.Start()
	n.Sim.RunUntil(500 * netsim.Millisecond)

	var lossy *netsim.Link
	for _, l := range n.Sim.Links() {
		a, _, b, _ := l.Ends()
		if a == n.Routers[1].Node() && b == n.Routers[3].Node() {
			lossy = l
		}
	}
	if lossy == nil {
		t.Fatal("lossy link not found")
	}
	return n, sender, recvs, lossy, ch
}

func TestLosslessDelivery(t *testing.T) {
	n, sender, recvs, _, _ := session(t, 1)
	const blocks = 20
	n.Sim.After(0, func() {
		for i := 0; i < blocks; i++ {
			if _, err := sender.Send(1000, i); err != nil {
				t.Errorf("Send: %v", err)
			}
		}
	})
	n.Sim.RunUntil(n.Sim.Now() + 2*netsim.Second)
	for i, r := range recvs {
		if r.Metrics.Delivered != blocks {
			t.Errorf("receiver %d delivered %d, want %d", i, r.Metrics.Delivered, blocks)
		}
	}

	// A repair round on a clean session retransmits nothing but confirms
	// everything (via the probe).
	var repaired = -1
	n.Sim.After(0, func() {
		sender.RepairRound(2*netsim.Second, 0, func(n int) { repaired = n })
	})
	n.Sim.RunUntil(n.Sim.Now() + 10*netsim.Second)
	if repaired != 0 {
		t.Errorf("repaired = %d on a lossless session, want 0", repaired)
	}
	if sender.Outstanding() != 0 {
		t.Errorf("outstanding = %d after clean repair round, want 0", sender.Outstanding())
	}
}

func TestRepairFillsHoles(t *testing.T) {
	n, sender, recvs, lossy, _ := session(t, 2)
	const blocks = 12

	lossy.LossEvery = 3 // left subtree loses every 3rd packet
	n.Sim.After(0, func() {
		for i := 0; i < blocks; i++ {
			if _, err := sender.Send(1000, i); err != nil {
				t.Errorf("Send: %v", err)
			}
		}
	})
	n.Sim.RunUntil(n.Sim.Now() + 2*netsim.Second)
	lossy.LossEvery = 0

	// The lossy-branch receivers have holes; right-branch receivers are
	// complete.
	if recvs[0].Metrics.Delivered == blocks {
		t.Fatal("loss injection had no effect")
	}
	if recvs[2].Metrics.Delivered != blocks {
		t.Fatalf("lossless branch delivered %d, want %d", recvs[2].Metrics.Delivered, blocks)
	}

	// Repair rounds until the sender confirms everything (bounded).
	for round := 0; round < 6 && sender.Outstanding() > 0; round++ {
		n.Sim.After(0, func() { sender.RepairRound(2*netsim.Second, 0, nil) })
		n.Sim.RunUntil(n.Sim.Now() + 8*netsim.Second)
	}
	if sender.Outstanding() != 0 {
		t.Fatalf("outstanding = %d after repair rounds", sender.Outstanding())
	}
	for i, r := range recvs {
		if r.Metrics.Delivered < blocks {
			t.Errorf("receiver %d delivered %d data blocks, want >= %d", i, r.Metrics.Delivered, blocks)
		}
	}
	if sender.Metrics.Retransmitted == 0 {
		t.Error("no retransmissions recorded despite injected loss")
	}
}

func TestOrderedDelivery(t *testing.T) {
	n, sender, recvs, lossy, _ := session(t, 3)
	const blocks = 10

	var order []int
	recvs[0].OnDeliver = func(d *reliable.Datagram) {
		if reliable.IsProbe(d) {
			return
		}
		order = append(order, d.Payload.(int))
	}

	lossy.LossEvery = 4
	n.Sim.After(0, func() {
		for i := 0; i < blocks; i++ {
			_, _ = sender.Send(500, i)
		}
	})
	n.Sim.RunUntil(n.Sim.Now() + 2*netsim.Second)
	lossy.LossEvery = 0
	for round := 0; round < 6 && sender.Outstanding() > 0; round++ {
		n.Sim.After(0, func() { sender.RepairRound(2*netsim.Second, 0, nil) })
		n.Sim.RunUntil(n.Sim.Now() + 8*netsim.Second)
	}

	if len(order) != blocks {
		t.Fatalf("delivered %d blocks, want %d", len(order), blocks)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("out-of-order delivery: position %d got block %d (full: %v)", i, v, order)
		}
	}
}

// TestSubcastRepairLocalises verifies the §2.1 repair pattern: retransmit
// through the router above the lossy branch, so the healthy subtree never
// sees the repair traffic.
func TestSubcastRepairLocalises(t *testing.T) {
	n, sender, recvs, lossy, _ := session(t, 4)
	const blocks = 9

	lossy.LossEvery = 3
	n.Sim.After(0, func() {
		for i := 0; i < blocks; i++ {
			_, _ = sender.Send(1000, i)
		}
	})
	n.Sim.RunUntil(n.Sim.Now() + 2*netsim.Second)
	lossy.LossEvery = 0

	rightBefore := recvs[2].Metrics.Received + recvs[2].Metrics.Duplicates
	via := n.Routers[1].Node().Addr // head of the lossy subtree
	for round := 0; round < 6 && sender.Outstanding() > 0; round++ {
		n.Sim.After(0, func() { sender.RepairRound(2*netsim.Second, via, nil) })
		n.Sim.RunUntil(n.Sim.Now() + 8*netsim.Second)
	}

	if sender.Outstanding() != 0 {
		t.Fatalf("outstanding = %d after subcast repair", sender.Outstanding())
	}
	for i := 0; i < 2; i++ { // lossy-branch receivers healed
		if recvs[i].Metrics.Delivered < blocks {
			t.Errorf("receiver %d delivered %d, want >= %d", i, recvs[i].Metrics.Delivered, blocks)
		}
	}
	// The healthy branch saw probes but no block retransmissions: its
	// received+duplicate count grows only by the probes.
	rightAfter := recvs[2].Metrics.Received + recvs[2].Metrics.Duplicates
	probes := sender.Metrics.RepairRounds
	if rightAfter-rightBefore > probes {
		t.Errorf("healthy branch absorbed %d packets during repair, want <= %d probes (subcast localisation)",
			rightAfter-rightBefore, probes)
	}
	if sender.Metrics.Subcasts == 0 {
		t.Error("no subcast repairs recorded")
	}
}

func TestWindowLimit(t *testing.T) {
	n, sender, _, _, _ := session(t, 5)
	n.Sim.After(0, func() {
		for i := 0; i < reliable.Window; i++ {
			if _, err := sender.Send(10, i); err != nil {
				t.Errorf("Send %d within window: %v", i, err)
				return
			}
		}
		if _, err := sender.Send(10, "overflow"); err == nil {
			t.Error("send beyond the repair window succeeded")
		}
	})
	n.Sim.RunUntil(n.Sim.Now() + netsim.Second)
}
