package reliable_test

// NACK-count repair against the real ECMP counting path (ISSUE 8): a
// router with a live data plane, a receiver behind a deterministic loss
// proxy, and a sender whose repair rounds read the router-aggregated NACK
// counts. Every dropped datagram must be detected, retransmitted, and
// delivered in order.

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/addr"
	"repro/internal/dataplane"
	"repro/internal/realnet"
	"repro/internal/reliable"
	"repro/internal/relaynet"
	"repro/internal/wire"
)

func waitCond(t *testing.T, d time.Duration, cond func() bool, what string) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestRealRepairUnderLoss drives the transport over a proxy that drops
// every 4th datagram on the router→receiver path until repair converges.
func TestRealRepairUnderLoss(t *testing.T) {
	router, err := realnet.NewRouterOpts("127.0.0.1:0", realnet.Options{
		DataListen:    "127.0.0.1:0",
		FlushInterval: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer router.Close()

	ch := addr.Channel{S: addr.MustParse("171.64.7.1"), E: addr.ExpressAddr(0x701)}

	// Receiver behind the lossy hop: the session advertises the proxy's
	// port, the proxy forwards (minus every 4th datagram) to the real
	// receiver socket.
	recv, err := dataplane.NewReceiver()
	if err != nil {
		t.Fatal(err)
	}
	proxy, err := relaynet.NewLossProxy(recv.Addr(), 4)
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()
	rsess, err := realnet.DialSession(router.Addr(), realnet.SessionOptions{DataPort: proxy.Port()})
	if err != nil {
		t.Fatal(err)
	}
	defer rsess.Close()

	var mu sync.Mutex
	var delivered []uint32
	rr := reliable.NewRealReceiver(recv, rsess, ch, func(seq uint32, _ []byte, _ uint8) {
		mu.Lock()
		delivered = append(delivered, seq)
		mu.Unlock()
	})
	defer rr.Close()

	waitCond(t, 10*time.Second, func() bool {
		_, ok := router.DataPlane().Route(ch)
		return ok
	}, "subscription to program the data plane")

	// Sender: source plus a query session at the same router.
	src, err := dataplane.NewSource(router.DataAddr(), ch, dataplane.SourceOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	ssess, err := realnet.DialSession(router.Addr(), realnet.SessionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer ssess.Close()
	s := reliable.NewRealSender(src, ssess)

	const n = 40
	for i := 0; i < n; i++ {
		if _, err := s.Send([]byte(fmt.Sprintf("d-%d", i))); err != nil {
			t.Fatal(err)
		}
	}

	// Repair until the window drains. The proxy keeps dropping every 4th
	// datagram — including retransmissions — so multiple rounds are the
	// expected shape, not a failure.
	rounds := 0
	for ; rounds < 40 && s.Outstanding() > 0; rounds++ {
		if _, err := s.RepairRound(50*time.Millisecond, 2*time.Second); err != nil {
			t.Fatalf("round %d: %v", rounds, err)
		}
	}
	if out := s.Outstanding(); out != 0 {
		t.Fatalf("%d sequences still unrepaired after %d rounds", out, rounds)
	}

	// Every data sequence must arrive, in order, exactly once. Probes are
	// high-water markers outside the stream and are never delivered.
	total := n
	waitCond(t, 10*time.Second, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(delivered) >= total
	}, "all repaired datagrams to deliver")
	mu.Lock()
	defer mu.Unlock()
	if len(delivered) != total {
		t.Fatalf("delivered %d datagrams, want %d", len(delivered), total)
	}
	for i, seq := range delivered {
		if seq != uint32(i+1) {
			t.Fatalf("delivery %d has seq %d, want %d (order broken)", i, seq, i+1)
		}
	}

	if proxy.Dropped() == 0 {
		t.Fatal("proxy dropped nothing: the test exercised no loss")
	}
	if s.Metrics.Retransmitted == 0 {
		t.Fatal("no retransmissions despite injected loss")
	}
	st := rr.Stats()
	if st.NACKsSent == 0 {
		t.Fatal("receiver never raised a NACK count")
	}
	t.Logf("sent=%d dropped=%d retransmitted=%d rounds=%d nacks=%d",
		s.Metrics.Sent, proxy.Dropped(), s.Metrics.Retransmitted, rounds, st.NACKsSent)
}

// TestRealProbeConvertsTailLoss: when the *last* datagrams of a burst are
// lost, no later arrival exists to expose the hole — only the repair
// round's probe raises the receiver's high-water mark and makes the tail
// NACKable (the netsim transport's probe semantics, on real sockets).
func TestRealProbeConvertsTailLoss(t *testing.T) {
	router, err := realnet.NewRouterOpts("127.0.0.1:0", realnet.Options{
		DataListen:    "127.0.0.1:0",
		FlushInterval: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer router.Close()

	ch := addr.Channel{S: addr.MustParse("171.64.7.2"), E: addr.ExpressAddr(0x702)}
	recv, err := dataplane.NewReceiver()
	if err != nil {
		t.Fatal(err)
	}
	// Drop exactly datagram 3 — the tail of a 3-packet burst.
	proxy, err := relaynet.NewLossProxy(recv.Addr(), 3)
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()
	rsess, err := realnet.DialSession(router.Addr(), realnet.SessionOptions{DataPort: proxy.Port()})
	if err != nil {
		t.Fatal(err)
	}
	defer rsess.Close()

	var mu sync.Mutex
	var seqs []uint32
	var flagSeen uint8
	rr := reliable.NewRealReceiver(recv, rsess, ch, func(seq uint32, _ []byte, flags uint8) {
		mu.Lock()
		seqs = append(seqs, seq)
		flagSeen |= flags
		mu.Unlock()
	})
	defer rr.Close()
	waitCond(t, 10*time.Second, func() bool {
		_, ok := router.DataPlane().Route(ch)
		return ok
	}, "subscription to program the data plane")

	src, err := dataplane.NewSource(router.DataAddr(), ch, dataplane.SourceOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	ssess, err := realnet.DialSession(router.Addr(), realnet.SessionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer ssess.Close()
	s := reliable.NewRealSender(src, ssess)

	for i := 0; i < 3; i++ {
		if _, err := s.Send([]byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	// Datagram 3 (seq 3) is gone. The receiver has 1,2 and no idea 3
	// exists; without a probe it would never NACK.
	waitCond(t, 5*time.Second, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(seqs) == 2
	}, "the surviving head of the burst")

	rounds := 0
	for ; rounds < 10 && s.Outstanding() > 0; rounds++ {
		if _, err := s.RepairRound(50*time.Millisecond, 2*time.Second); err != nil {
			t.Fatalf("round %d: %v", rounds, err)
		}
	}
	if out := s.Outstanding(); out != 0 {
		t.Fatalf("%d sequences unrepaired after %d rounds", out, rounds)
	}
	waitCond(t, 5*time.Second, func() bool {
		mu.Lock()
		defer mu.Unlock()
		for _, q := range seqs {
			if q == 3 {
				return true
			}
		}
		return false
	}, "the probed-and-repaired tail")
	if s.Metrics.Retransmitted == 0 {
		t.Fatal("tail loss repaired without a retransmission?")
	}
	// The tail hole was only detectable through probes: none were sent
	// before the repair rounds, so at least one round's probe did the work.
	if s.Metrics.Probes == 0 {
		t.Error("no probes sent; tail loss cannot have been NACKable")
	}
	mu.Lock()
	defer mu.Unlock()
	if flagSeen&wire.DataFlagProbe != 0 {
		t.Error("a probe leaked into the delivered stream")
	}
	if flagSeen&wire.DataFlagRetx == 0 {
		t.Error("no delivered datagram carried the retransmission flag")
	}
}
