package reliable

import (
	"math"
	"testing"
)

// TestWindowBoundsSpanNotCount is the countId-aliasing regression: with
// sequence s unrepaired, sequence s+Window maps to the same nackID, so a
// receiver's NACK for one is indistinguishable from a NACK for the other.
// The guard must refuse the send on *span*, which a bound on the count of
// outstanding sequences (here: just one) would happily let through.
func TestWindowBoundsSpanNotCount(t *testing.T) {
	s := &Sender{unrepaired: map[uint32]*sentRecord{0: {}}}
	s.nextSeq = Window // next send would be seq Window: nackID(Window) == nackID(0)
	if nackID(Window) != nackID(0) {
		t.Fatalf("test premise broken: nackID(%d)=%v, nackID(0)=%v", Window, nackID(Window), nackID(0))
	}
	if !s.windowFull() {
		t.Fatal("span of Window with 1 outstanding not refused: countId aliasing possible")
	}
	if _, err := s.Send(1, "x"); err == nil {
		t.Fatal("Send succeeded into an aliasing window")
	}

	// A dense window one short of the span limit is still fine.
	s2 := &Sender{unrepaired: make(map[uint32]*sentRecord)}
	for i := uint32(0); i < Window-1; i++ {
		s2.unrepaired[i] = &sentRecord{}
	}
	s2.nextSeq = Window - 1
	if s2.windowFull() {
		t.Fatal("span < Window refused")
	}
}

// TestWindowSpanAcrossWraparound checks the span guard with sequence
// numbers straddling the uint32 rollover: the true span is small, so the
// window must not read as full.
func TestWindowSpanAcrossWraparound(t *testing.T) {
	s := &Sender{unrepaired: map[uint32]*sentRecord{math.MaxUint32 - 1: {}, math.MaxUint32: {}, 0: {}}}
	s.nextSeq = 1
	if s.windowFull() {
		t.Fatal("span 3 across rollover read as full")
	}
	s.unrepaired[1] = &sentRecord{}
	oldest := uint32(math.MaxUint32 - 1)
	s.nextSeq = oldest + Window // span exactly Window from oldest, wrapped
	if !s.windowFull() {
		t.Fatal("span Window across rollover not refused")
	}
}

// TestReceiverWraparound drives the in-order buffer across 2^32−1 → 0 with
// a StartSeq just below the boundary: out-of-order arrival, hole tracking,
// and NACK answering must all use serial comparisons.
func TestReceiverWraparound(t *testing.T) {
	start := uint32(math.MaxUint32 - 2)
	var delivered []uint32
	r := &Receiver{
		next:   start,
		buffer: make(map[uint32]*Datagram),
		seen:   make(map[uint32]bool),
	}
	r.OnDeliver = func(d *Datagram) { delivered = append(delivered, d.Seq) }

	// Arrivals: start, start+1, then a hole at start+2 (== MaxUint32), then
	// post-wrap sequences 0 and 1.
	for _, seq := range []uint32{start, start + 1, 0, 1} {
		r.onDatagram(&Datagram{Seq: seq})
	}
	if len(delivered) != 2 {
		t.Fatalf("delivered %v before hole filled, want just the first two", delivered)
	}
	if !r.Missing(math.MaxUint32) {
		t.Fatal("hole at MaxUint32 not reported missing")
	}
	if r.Missing(0) || r.Missing(1) {
		t.Fatal("buffered post-wrap sequences reported missing")
	}
	if got := r.answerNACK(r.ch, nackID(math.MaxUint32)); got != 1 {
		t.Fatalf("answerNACK(hole slot) = %d, want 1", got)
	}
	if got := r.answerNACK(r.ch, nackID(0)); got != 0 {
		t.Fatalf("answerNACK(seen slot) = %d, want 0", got)
	}

	// The repair arrives: everything through seq 1 delivers in order.
	r.onDatagram(&Datagram{Seq: math.MaxUint32})
	want := []uint32{start, start + 1, math.MaxUint32, 0, 1}
	if len(delivered) != len(want) {
		t.Fatalf("delivered %v, want %v", delivered, want)
	}
	for i := range want {
		if delivered[i] != want[i] {
			t.Fatalf("delivered %v, want %v", delivered, want)
		}
	}
	if r.next != 2 {
		t.Fatalf("next = %d, want 2 (wrapped)", r.next)
	}
	if r.Metrics.NACKsSent != 1 {
		t.Fatalf("NACKsSent = %d, want 1", r.Metrics.NACKsSent)
	}
}
