// Package core is the front door to the paper's primary contribution: the
// EXPRESS multicast channel model and its management protocol ECMP.
//
// The implementation lives in focused packages — internal/ecmp (the router
// engine), internal/express (the host service interface of Section 2.1),
// internal/fib (Section 3.4 forwarding), internal/wire (the message
// encodings) — and this package re-exports the types a user composes so
// that the library reads as one API:
//
//	net := testutil.LineNet(1, 3, core.DefaultConfig())
//	src := net.AddSource(net.Routers[0])
//	sub := net.AddSubscriber(net.Routers[2])
//	net.Start()
//
//	ch, _ := src.CreateChannel()
//	sub.Subscribe(ch, nil, nil)
//	...
//
// The model in one paragraph (Section 2): a channel is (S,E) — exactly one
// explicitly designated source S and a destination E from the 232/8
// single-source range. Only S may send; subscribers request (S,E)
// explicitly; two channels sharing E but not S are unrelated. One protocol
// (ECMP, three messages) both maintains the distribution tree —
// subscription is an unsolicited subscriber Count routed toward S by
// reverse-path forwarding — and aggregates counts and votes back up the
// same tree.
package core

import (
	"repro/internal/addr"
	"repro/internal/ecmp"
	"repro/internal/express"
	"repro/internal/netsim"
	"repro/internal/unicast"
	"repro/internal/wire"
)

// Channel identifies an EXPRESS channel (S,E).
type Channel = addr.Channel

// Addr is an IPv4-style address.
type Addr = addr.Addr

// Key is the channel authenticator K(S,E).
type Key = wire.Key

// CountID selects the attribute a CountQuery aggregates.
type CountID = wire.CountID

// Reserved and range-marker count identifiers (Sections 3.1–3.3).
const (
	CountSubscribers = wire.CountSubscribers
	CountNeighbors   = wire.CountNeighbors
	CountLinks       = wire.CountLinks
	AppCountBase     = wire.AppCountBase
)

// Router is an EXPRESS/ECMP router.
type Router = ecmp.Router

// Config tunes a Router.
type Config = ecmp.Config

// Source and Subscriber are the host-side stacks of Section 2.1.
type (
	Source     = express.Source
	Subscriber = express.Subscriber
)

// DefaultConfig returns the production-flavoured router defaults.
func DefaultConfig() Config { return ecmp.DefaultConfig() }

// NewRouter attaches an ECMP router to a simulator node.
func NewRouter(node *netsim.Node, rt *unicast.Routing, cfg Config) *Router {
	return ecmp.NewRouter(node, rt, cfg)
}

// NewSource attaches a source host stack to a node.
func NewSource(node *netsim.Node) *Source { return express.NewSource(node) }

// NewSubscriber attaches a subscriber host stack to a node.
func NewSubscriber(node *netsim.Node) *Subscriber { return express.NewSubscriber(node) }
