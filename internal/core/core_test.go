package core_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/testutil"
)

// TestFacadeEndToEnd drives the whole stack through the core facade alone.
func TestFacadeEndToEnd(t *testing.T) {
	net := testutil.LineNet(80, 3, core.DefaultConfig())
	src := net.AddSource(net.Routers[0])
	sub := net.AddSubscriber(net.Routers[2])
	net.Start()

	ch, err := src.CreateChannel()
	if err != nil {
		t.Fatal(err)
	}
	var c core.Channel = ch // the facade aliases the real types
	if !c.Valid() {
		t.Fatal("allocated channel invalid")
	}

	net.Sim.At(0, func() { sub.Subscribe(ch, nil, nil) })
	net.Sim.RunUntil(netsim.Second)
	net.Sim.After(0, func() { _ = src.Send(ch, 256, "payload") })

	var count uint32
	net.Sim.After(0, func() {
		src.CountQuery(ch, core.CountSubscribers, netsim.Second, false,
			func(n uint32, ok bool) { count = n })
	})
	net.Sim.RunUntil(5 * netsim.Second)

	if sub.Delivered != 1 {
		t.Errorf("delivered = %d, want 1", sub.Delivered)
	}
	if count != 1 {
		t.Errorf("count = %d, want 1", count)
	}
}
