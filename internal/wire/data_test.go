package wire

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/addr"
)

func TestDataPacketRoundTrip(t *testing.T) {
	in := DataPacket{
		Channel: addr.Channel{S: addr.MustParse("171.64.1.1"), E: addr.ExpressAddr(0x00a1b2c3)},
		Seq:     0xdeadbeef,
		Flags:   DataFlagFin,
		Payload: []byte("express channel payload"),
	}
	b := in.AppendTo(nil)
	if len(b) != in.Size() || len(b) != DataHeaderSize+len(in.Payload) {
		t.Fatalf("encoded size = %d, want %d", len(b), in.Size())
	}
	var out DataPacket
	n, err := out.DecodeFromBytes(b)
	if err != nil || n != len(b) {
		t.Fatalf("decode = (%d, %v), want (%d, nil)", n, err, len(b))
	}
	if out.Channel != in.Channel || out.Seq != in.Seq || out.Flags != in.Flags ||
		!bytes.Equal(out.Payload, in.Payload) {
		t.Errorf("round trip = %+v, want %+v", out, in)
	}
}

func TestDataPacketEmptyPayload(t *testing.T) {
	in := DataPacket{Channel: addr.Channel{S: 1, E: addr.ExpressBase}, Seq: 7}
	b := in.AppendTo(nil)
	if len(b) != DataHeaderSize {
		t.Fatalf("encoded size = %d, want %d", len(b), DataHeaderSize)
	}
	var out DataPacket
	if _, err := out.DecodeFromBytes(b); err != nil {
		t.Fatal(err)
	}
	if len(out.Payload) != 0 || out.Seq != 7 {
		t.Errorf("decode = %+v", out)
	}
}

func TestDataPacketShort(t *testing.T) {
	var p DataPacket
	for n := 0; n < DataHeaderSize; n++ {
		if _, err := p.DecodeFromBytes(make([]byte, n)); !errors.Is(err, ErrShort) {
			t.Errorf("len %d: err = %v, want ErrShort", n, err)
		}
	}
}

// TestDataPacketProperty drives random (S, suffix, seq, flags, payload)
// tuples through encode→decode and checks the identity; the E suffix is
// masked to 24 bits because the 232/8 prefix is implicit on the wire.
func TestDataPacketProperty(t *testing.T) {
	f := func(s uint32, suffix uint32, seq uint32, flags uint8, payload []byte) bool {
		in := DataPacket{
			Channel: addr.Channel{S: addr.Addr(s), E: addr.ExpressAddr(suffix & 0x00ffffff)},
			Seq:     seq,
			Flags:   flags,
			Payload: payload,
		}
		b := in.AppendTo(nil)
		var out DataPacket
		n, err := out.DecodeFromBytes(b)
		return err == nil && n == len(b) &&
			out.Channel == in.Channel && out.Seq == in.Seq && out.Flags == in.Flags &&
			bytes.Equal(out.Payload, in.Payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestDecodeDataPacketNoAlloc pins the ingest-side decode at zero
// allocations: the payload borrows from the datagram buffer.
func TestDecodeDataPacketNoAlloc(t *testing.T) {
	in := DataPacket{
		Channel: addr.Channel{S: addr.MustParse("10.0.0.1"), E: addr.ExpressAddr(9)},
		Seq:     3,
		Payload: bytes.Repeat([]byte{0xab}, 256),
	}
	b := in.AppendTo(nil)
	var out DataPacket
	allocs := testing.AllocsPerRun(1000, func() {
		if _, err := out.DecodeFromBytes(b); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("DecodeFromBytes allocates %.1f/op, want 0", allocs)
	}
}

// FuzzDecodeDataPacket feeds arbitrary bytes to the decoder: it must never
// panic, and any input it accepts must re-encode to the identical bytes
// (decode∘encode is the identity on the accepted language).
func FuzzDecodeDataPacket(f *testing.F) {
	f.Add([]byte{})
	f.Add(make([]byte, DataHeaderSize-1))
	f.Add(make([]byte, DataHeaderSize))
	valid := DataPacket{
		Channel: addr.Channel{S: addr.MustParse("171.64.1.1"), E: addr.ExpressAddr(5)},
		Seq:     42,
		Flags:   DataFlagFin,
		Payload: []byte("payload"),
	}
	f.Add(valid.AppendTo(nil))
	f.Fuzz(func(t *testing.T, b []byte) {
		var p DataPacket
		n, err := p.DecodeFromBytes(b)
		if err != nil {
			return
		}
		if n != len(b) {
			t.Fatalf("consumed %d of %d bytes", n, len(b))
		}
		if !p.Channel.E.IsExpress() {
			t.Fatalf("decoded destination %v outside 232/8", p.Channel.E)
		}
		out := p.AppendTo(nil)
		if !bytes.Equal(out, b[:n]) {
			t.Fatalf("re-encode mismatch:\n in  %x\n out %x", b[:n], out)
		}
	})
}
