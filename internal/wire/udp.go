package wire

import "encoding/binary"

// UDPHeader is the 8-byte UDP header used when ECMP runs in UDP mode
// ("ECMP is implemented on top of UDP and TCP", Section 3.6) and by the
// realnet framing. The checksum is carried but, as UDP permits, may be 0
// (unset); VerifyUDP only rejects a non-zero mismatch.
type UDPHeader struct {
	SrcPort, DstPort uint16
	Length           uint16 // header + payload
	Checksum         uint16
}

// UDPHeaderSize is the encoded size.
const UDPHeaderSize = 8

// ECMPPort is the well-known port ECMP listens on in this implementation.
const ECMPPort = 4701

// AppendTo appends the encoded header.
func (h *UDPHeader) AppendTo(b []byte) []byte {
	b = binary.BigEndian.AppendUint16(b, h.SrcPort)
	b = binary.BigEndian.AppendUint16(b, h.DstPort)
	b = binary.BigEndian.AppendUint16(b, h.Length)
	return binary.BigEndian.AppendUint16(b, h.Checksum)
}

// DecodeFromBytes parses the header and returns the bytes consumed.
func (h *UDPHeader) DecodeFromBytes(b []byte) (int, error) {
	if len(b) < UDPHeaderSize {
		return 0, ErrShort
	}
	h.SrcPort = binary.BigEndian.Uint16(b[0:2])
	h.DstPort = binary.BigEndian.Uint16(b[2:4])
	h.Length = binary.BigEndian.Uint16(b[4:6])
	h.Checksum = binary.BigEndian.Uint16(b[6:8])
	return UDPHeaderSize, nil
}

// UDPDatagram frames a payload with a UDP header, computing the checksum
// over the header-with-zero-checksum plus payload (the pseudo-header is
// omitted — the simulator's IPv4 header has its own checksum).
func UDPDatagram(srcPort, dstPort uint16, payload []byte) []byte {
	h := UDPHeader{SrcPort: srcPort, DstPort: dstPort, Length: uint16(UDPHeaderSize + len(payload))}
	out := make([]byte, 0, UDPHeaderSize+len(payload))
	out = h.AppendTo(out)
	out = append(out, payload...)
	sum := ipChecksum(out)
	if sum == 0 {
		sum = 0xffff // 0 means "no checksum" in UDP; transmit all-ones
	}
	binary.BigEndian.PutUint16(out[6:8], sum)
	return out
}

// VerifyUDP checks a framed datagram's length and checksum, returning the
// payload.
func VerifyUDP(b []byte) ([]byte, error) {
	var h UDPHeader
	if _, err := h.DecodeFromBytes(b); err != nil {
		return nil, err
	}
	if int(h.Length) != len(b) {
		return nil, ErrShort
	}
	if h.Checksum != 0 {
		// Recompute with the checksum field zeroed.
		tmp := make([]byte, len(b))
		copy(tmp, b)
		tmp[6], tmp[7] = 0, 0
		sum := ipChecksum(tmp)
		if sum == 0 {
			sum = 0xffff
		}
		if sum != h.Checksum {
			return nil, ErrChecksum
		}
	}
	return b[UDPHeaderSize:], nil
}
