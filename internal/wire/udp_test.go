package wire

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestUDPRoundTripProperty(t *testing.T) {
	f := func(srcPort, dstPort uint16, payload []byte) bool {
		if len(payload) > MaxSegment {
			payload = payload[:MaxSegment]
		}
		dg := UDPDatagram(srcPort, dstPort, payload)
		got, err := VerifyUDP(dg)
		if err != nil {
			return false
		}
		var h UDPHeader
		if _, err := h.DecodeFromBytes(dg); err != nil {
			return false
		}
		return h.SrcPort == srcPort && h.DstPort == dstPort && bytes.Equal(got, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestUDPChecksumDetectsCorruption(t *testing.T) {
	dg := UDPDatagram(ECMPPort, ECMPPort, []byte("count message payload"))
	for i := range dg {
		corrupt := bytes.Clone(dg)
		corrupt[i] ^= 0x10
		if _, err := VerifyUDP(corrupt); err == nil {
			// Flipping a length byte may still parse if it matches... it
			// cannot here: length participates in the checksum.
			t.Fatalf("corruption at byte %d undetected", i)
		}
	}
}

func TestUDPZeroChecksumAccepted(t *testing.T) {
	dg := UDPDatagram(1, 2, []byte("x"))
	dg[6], dg[7] = 0, 0 // sender opted out of checksumming
	if _, err := VerifyUDP(dg); err != nil {
		t.Fatalf("zero checksum rejected: %v", err)
	}
}

func TestUDPTruncated(t *testing.T) {
	dg := UDPDatagram(1, 2, []byte("hello"))
	if _, err := VerifyUDP(dg[:len(dg)-1]); err == nil {
		t.Fatal("truncated datagram accepted")
	}
	if _, err := VerifyUDP(dg[:4]); err == nil {
		t.Fatal("sub-header datagram accepted")
	}
}
