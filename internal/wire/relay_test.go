package wire

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/addr"
)

func TestRelayMsgRoundTrip(t *testing.T) {
	in := RelayMsg{
		Kind:    RelayData,
		Flags:   3,
		From:    0x1122334455667788,
		Token:   0xcafebabe,
		Channel: addr.Channel{S: addr.MustParse("171.64.9.9"), E: addr.ExpressAddr(0x00abcdef)},
		Payload: []byte("who holds the floor"),
	}
	b := in.AppendTo(nil)
	if len(b) != in.Size() || len(b) != RelayHeaderSize+len(in.Payload) {
		t.Fatalf("encoded size = %d, want %d", len(b), in.Size())
	}
	var out RelayMsg
	n, err := out.DecodeFromBytes(b)
	if err != nil || n != len(b) {
		t.Fatalf("decode = (%d, %v), want (%d, nil)", n, err, len(b))
	}
	if out.Kind != in.Kind || out.Flags != in.Flags || out.From != in.From ||
		out.Token != in.Token || out.Channel != in.Channel ||
		!bytes.Equal(out.Payload, in.Payload) {
		t.Errorf("round trip = %+v, want %+v", out, in)
	}
}

func TestRelayMsgRejects(t *testing.T) {
	var m RelayMsg
	for n := 0; n < RelayHeaderSize; n++ {
		if _, err := m.DecodeFromBytes(make([]byte, n)); !errors.Is(err, ErrShort) {
			t.Errorf("len %d: err = %v, want ErrShort", n, err)
		}
	}
	good := (&RelayMsg{Kind: RelayBeacon}).AppendTo(nil)

	bad := append([]byte(nil), good...)
	bad[0] = TypeCount
	if _, err := m.DecodeFromBytes(bad); !errors.Is(err, ErrBadType) {
		t.Errorf("wrong type byte: err = %v, want ErrBadType", err)
	}
	bad = append([]byte(nil), good...)
	bad[1] = relayVersion + 1
	if _, err := m.DecodeFromBytes(bad); !errors.Is(err, ErrBadType) {
		t.Errorf("wrong version: err = %v, want ErrBadType", err)
	}
	bad = append([]byte(nil), good...)
	bad[2] = 0
	if _, err := m.DecodeFromBytes(bad); !errors.Is(err, ErrBadKind) {
		t.Errorf("kind 0: err = %v, want ErrBadKind", err)
	}
	bad = append([]byte(nil), good...)
	bad[2] = uint8(relayKindMax) + 1
	if _, err := m.DecodeFromBytes(bad); !errors.Is(err, ErrBadKind) {
		t.Errorf("kind out of range: err = %v, want ErrBadKind", err)
	}
	bad = append([]byte(nil), good...)
	bad[23] = 1
	if _, err := m.DecodeFromBytes(bad); err == nil {
		t.Error("non-zero reserved byte accepted")
	}
}

// TestRelayMsgProperty drives random field tuples through encode→decode and
// checks the identity; the E suffix is masked to 24 bits because the 232/8
// prefix is implicit on the wire.
func TestRelayMsgProperty(t *testing.T) {
	f := func(kind uint8, flags uint8, from uint64, token uint32, s uint32, suffix uint32, payload []byte) bool {
		k := RelayKind(kind%uint8(relayKindMax)) + 1
		in := RelayMsg{
			Kind:    k,
			Flags:   flags,
			From:    from,
			Token:   token,
			Channel: addr.Channel{S: addr.Addr(s), E: addr.ExpressAddr(suffix & 0x00ffffff)},
			Payload: payload,
		}
		b := in.AppendTo(nil)
		var out RelayMsg
		n, err := out.DecodeFromBytes(b)
		return err == nil && n == len(b) &&
			out.Kind == in.Kind && out.Flags == in.Flags && out.From == in.From &&
			out.Token == in.Token && out.Channel == in.Channel &&
			bytes.Equal(out.Payload, in.Payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// FuzzDecodeRelayMsg mirrors FuzzDecodeDataPacket for the relay control
// framing: the decoder must never panic, must consume the whole datagram,
// must only accept in-range kinds, and decode∘encode must be the identity
// on the accepted language.
func FuzzDecodeRelayMsg(f *testing.F) {
	f.Add([]byte{})
	f.Add(make([]byte, RelayHeaderSize-1))
	f.Add(make([]byte, RelayHeaderSize))
	for _, k := range []RelayKind{RelayJoin, RelayFloorGrant, RelayData, RelayBeacon, RelayAnnounce} {
		m := RelayMsg{
			Kind:    k,
			From:    77,
			Token:   5,
			Channel: addr.Channel{S: addr.MustParse("171.64.1.1"), E: addr.ExpressAddr(9)},
			Payload: []byte("seed"),
		}
		f.Add(m.AppendTo(nil))
	}
	f.Fuzz(func(t *testing.T, b []byte) {
		var m RelayMsg
		n, err := m.DecodeFromBytes(b)
		if err != nil {
			return
		}
		if n != len(b) {
			t.Fatalf("consumed %d of %d bytes", n, len(b))
		}
		if m.Kind == 0 || m.Kind > relayKindMax {
			t.Fatalf("accepted out-of-range kind %d", m.Kind)
		}
		if !m.Channel.E.IsExpress() {
			t.Fatalf("decoded destination %v outside 232/8", m.Channel.E)
		}
		out := m.AppendTo(nil)
		if !bytes.Equal(out, b[:n]) {
			t.Fatalf("re-encode mismatch:\n in  %x\n out %x", b[:n], out)
		}
	})
}
