package wire

import (
	"encoding/binary"

	"repro/internal/addr"
)

// Data-plane packet framing. An EXPRESS channel packet carries the full
// (S,E) channel identity in its header — Section 2's model makes forwarding
// an exact (S,E) lookup, so the header is exactly what the Figure 5 FIB
// entry keys on, in the same 12-byte economy: S (4 bytes), the 24-bit E
// suffix (the 232/8 prefix is implicit), a flags byte packed into the byte
// the suffix leaves free, and a 32-bit per-channel sequence number stamped
// by the source (only S may send, so one counter suffices and receivers can
// detect loss and reordering without any per-sender demux).
//
// Layout (big endian):
//
//	0..3   S
//	4..6   E suffix (24 bits)
//	7      flags
//	8..11  sequence number
//	12..   payload
//
// Data packets are datagram-delimited (one packet per UDP datagram), so no
// type byte or length field is needed: the header is fixed-size and the
// payload is the rest of the datagram.

const (
	// DataHeaderSize is the fixed header size, mirroring the 12-byte FIB
	// entry of Figure 5.
	DataHeaderSize = 12
	// MaxDataPacket is the largest framed packet: a 1500-byte Ethernet
	// frame minus the 20-byte IPv4 and 8-byte UDP headers.
	MaxDataPacket = 1500 - 20 - 8
	// MaxDataPayload is the largest payload that fits in one packet.
	MaxDataPayload = MaxDataPacket - DataHeaderSize
)

// Data packet flags.
const (
	// DataFlagFin marks the last packet of a stream; loadgen uses it so
	// receivers can stop counting without waiting out a timeout.
	DataFlagFin uint8 = 1 << 0
	// DataFlagProbe marks a reliable-transport repair-round probe: a
	// sequence-consuming packet whose only job is to raise receivers'
	// high-water marks so tail losses become NACKable holes.
	DataFlagProbe uint8 = 1 << 1
	// DataFlagRetx marks a retransmission. Semantics are identical to the
	// original send (receivers slot it by Seq); the flag exists for stats.
	DataFlagRetx uint8 = 1 << 2
)

// DataPacket is one channel data packet. Decoding borrows Payload from the
// input buffer and never allocates.
type DataPacket struct {
	Channel addr.Channel
	Seq     uint32
	Flags   uint8
	Payload []byte
}

// PutDataHeader writes the 12-byte header into b in place. b must have at
// least DataHeaderSize bytes; sources write the header once into a reused
// send buffer and append the payload after it.
func PutDataHeader(b []byte, ch addr.Channel, seq uint32, flags uint8) {
	binary.BigEndian.PutUint32(b[0:4], uint32(ch.S))
	suffix := ch.E.ExpressSuffix()
	b[4] = byte(suffix >> 16)
	b[5] = byte(suffix >> 8)
	b[6] = byte(suffix)
	b[7] = flags
	binary.BigEndian.PutUint32(b[8:12], seq)
}

// AppendTo appends the encoded packet (header + payload) and returns the
// extended buffer.
func (p *DataPacket) AppendTo(b []byte) []byte {
	var hdr [DataHeaderSize]byte
	PutDataHeader(hdr[:], p.Channel, p.Seq, p.Flags)
	b = append(b, hdr[:]...)
	return append(b, p.Payload...)
}

// Size returns the encoded size of the packet.
func (p *DataPacket) Size() int { return DataHeaderSize + len(p.Payload) }

// DecodeFromBytes parses one datagram-delimited packet. The payload borrows
// from b; the whole buffer is consumed.
func (p *DataPacket) DecodeFromBytes(b []byte) (int, error) {
	if len(b) < DataHeaderSize {
		return 0, ErrShort
	}
	s := addr.Addr(binary.BigEndian.Uint32(b[0:4]))
	suffix := uint32(b[4])<<16 | uint32(b[5])<<8 | uint32(b[6])
	p.Channel = addr.Channel{S: s, E: addr.ExpressAddr(suffix)}
	p.Flags = b[7]
	p.Seq = binary.BigEndian.Uint32(b[8:12])
	p.Payload = b[DataHeaderSize:]
	return len(b), nil
}
