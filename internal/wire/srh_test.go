package wire

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
)

func mustExtHeader(t *testing.T, groups [][]HopEntry) []byte {
	t.Helper()
	b, err := AppendExtHeader(nil, groups)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestExtHeaderRoundTrip(t *testing.T) {
	in := [][]HopEntry{
		{{Hop: 1, OIFs: 0b1010}},
		{{Hop: 2, OIFs: 1}, {Hop: 3, OIFs: 0xffffffff}},
		{{Hop: 10, OIFs: 0}, {Hop: 11, OIFs: 7}, {Hop: 12, OIFs: 1 << 31}},
	}
	b := mustExtHeader(t, in)
	if want := ExtHeaderSize(in); len(b) != want {
		t.Fatalf("encoded %d bytes, ExtHeaderSize says %d", len(b), want)
	}
	h, rest, err := ParseExtHeader(b)
	if err != nil || len(rest) != 0 {
		t.Fatalf("parse = (%v, %d trailing), want clean", err, len(rest))
	}
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
	groups, popped, err := h.Groups()
	if err != nil || popped != 0 {
		t.Fatalf("Groups = (popped %d, %v)", popped, err)
	}
	if len(groups) != len(in) {
		t.Fatalf("decoded %d groups, want %d", len(groups), len(in))
	}
	for i := range in {
		if len(groups[i]) != len(in[i]) {
			t.Fatalf("group %d: %d entries, want %d", i, len(groups[i]), len(in[i]))
		}
		for j := range in[i] {
			if groups[i][j] != in[i][j] {
				t.Fatalf("group %d entry %d = %+v, want %+v", i, j, groups[i][j], in[i][j])
			}
		}
	}
}

func TestExtHeaderPopOnForward(t *testing.T) {
	in := [][]HopEntry{
		{{Hop: 1, OIFs: 0b0110}},
		{{Hop: 2, OIFs: 0b0001}, {Hop: 3, OIFs: 0b1000}},
	}
	b := mustExtHeader(t, in)
	app := []byte("app payload")
	payload := append(append([]byte(nil), b...), app...)

	h, rest, err := ParseExtHeader(payload)
	if err != nil || !bytes.Equal(rest, app) {
		t.Fatalf("parse = (%v, %q)", err, rest)
	}
	// Depth 0: hop 1 pops its group.
	if mask, st := h.PopMask(1); st != SRFound || mask != 0b0110 {
		t.Fatalf("depth-0 pop = (%#b, %v)", mask, st)
	}
	// The same (now popped) buffer reaches both depth-1 routers; each sees
	// only its own entry in the shared group.
	for _, tc := range []struct {
		hop  uint16
		mask uint32
	}{{2, 0b0001}, {3, 0b1000}} {
		child := append([]byte(nil), payload...)
		hc, _, err := ParseExtHeader(child)
		if err != nil {
			t.Fatal(err)
		}
		mask, st := hc.PopMask(tc.hop)
		if st != SRFound || mask != tc.mask {
			t.Fatalf("hop %d pop = (%#b, %v), want (%#b, SRFound)", tc.hop, mask, st, tc.mask)
		}
		if !hc.Exhausted() {
			t.Fatalf("hop %d: stack not exhausted after last group", tc.hop)
		}
		// Past the tree: receivers and deeper hops fall back to the FIB.
		if _, st := hc.PopMask(tc.hop); st != SRExhausted {
			t.Fatalf("pop past end = %v, want SRExhausted", st)
		}
	}
	// A depth-1 hop that is not in the group (e.g. a rerouted path) falls
	// back without popping.
	other := append([]byte(nil), payload...)
	ho, _, _ := ParseExtHeader(other)
	if _, st := ho.PopMask(99); st != SRNotFound {
		t.Fatalf("unknown hop = %v, want SRNotFound", st)
	}
	if ho.Exhausted() {
		t.Fatal("SRNotFound must not advance the cursor")
	}
}

func TestExtHeaderPoppedEncoding(t *testing.T) {
	in := [][]HopEntry{
		{{Hop: 1, OIFs: 2}},
		{{Hop: 2, OIFs: 4}},
	}
	for popped := 0; popped <= 2; popped++ {
		b, err := AppendExtHeaderPopped(nil, in, popped)
		if err != nil {
			t.Fatalf("popped=%d: %v", popped, err)
		}
		h, _, err := ParseExtHeader(b)
		if err != nil {
			t.Fatalf("popped=%d: %v", popped, err)
		}
		if _, got, err := h.Groups(); err != nil || got != popped {
			t.Fatalf("popped=%d: Groups = (%d, %v)", popped, got, err)
		}
		if h.Exhausted() != (popped == 2) {
			t.Fatalf("popped=%d: Exhausted = %v", popped, h.Exhausted())
		}
	}
	if _, err := AppendExtHeaderPopped(nil, in, 3); err == nil {
		t.Fatal("popped past group count must fail")
	}
}

func TestExtHeaderEncodeErrors(t *testing.T) {
	if _, err := AppendExtHeader(nil, nil); !errors.Is(err, ErrExtHeader) {
		t.Errorf("empty tree: err = %v", err)
	}
	if _, err := AppendExtHeader(nil, [][]HopEntry{{}, {}}); !errors.Is(err, ErrExtHeader) {
		t.Errorf("all-empty groups: err = %v", err)
	}
	if _, err := AppendExtHeader(nil, [][]HopEntry{{{Hop: 0, OIFs: 1}}}); !errors.Is(err, ErrExtHeader) {
		t.Errorf("zero hop ID: err = %v", err)
	}
	// 43 entries × 6 + 1 group byte + 2 fixed = 261 > 255.
	big := make([]HopEntry, 43)
	for i := range big {
		big[i] = HopEntry{Hop: uint16(i + 1)}
	}
	if _, err := AppendExtHeader(nil, [][]HopEntry{big}); !errors.Is(err, ErrExtHeader) {
		t.Errorf("over budget: err = %v", err)
	}
	// Largest header that fits must encode.
	fits := big[:42]
	if b, err := AppendExtHeader(nil, [][]HopEntry{fits}); err != nil || len(b) != 255 {
		t.Errorf("max-size header: (%d bytes, %v)", len(b), err)
	}
}

func TestParseExtHeaderErrors(t *testing.T) {
	for _, tc := range []struct {
		name string
		b    []byte
	}{
		{"empty", nil},
		{"one byte", []byte{5}},
		{"length under fixed", []byte{1, 2, 0}},
		{"length past buffer", []byte{9, 2, 1, 0, 1, 0, 0, 0}},
	} {
		if _, _, err := ParseExtHeader(tc.b); !errors.Is(err, ErrExtHeader) {
			t.Errorf("%s: err = %v, want ErrExtHeader", tc.name, err)
		}
	}
	// Structurally broken but parseable headers: PopMask reports
	// SRMalformed, Validate rejects.
	for _, tc := range []struct {
		name string
		b    []byte
	}{
		{"zero count group", []byte{4, 2, 0, 0}},
		{"group overruns", []byte{9, 2, 2, 0, 1, 0, 0, 0, 0}},
		{"cursor off boundary", []byte{9, 3, 1, 0, 1, 0, 0, 0, 1}},
		{"cursor under fixed", []byte{9, 1, 1, 0, 1, 0, 0, 0, 1}},
		{"no groups at all", []byte{2, 2}},
	} {
		h, _, err := ParseExtHeader(tc.b)
		if err != nil {
			if tc.name == "no groups at all" || tc.name == "cursor under fixed" {
				continue // rejected even by the light parse is fine too
			}
			t.Errorf("%s: light parse rejected: %v", tc.name, err)
			continue
		}
		if err := h.Validate(); err == nil {
			t.Errorf("%s: Validate accepted", tc.name)
		}
		if tc.name == "cursor off boundary" || tc.name == "no groups at all" {
			continue // PopMask can legally read a mid-entry "group" there
		}
		if _, st := h.PopMask(1); st != SRMalformed && st != SRNotFound {
			t.Errorf("%s: PopMask = %v", tc.name, st)
		}
	}
}

// TestExtHeaderNoAlloc pins encode-into-reused-buffer, parse, and pop at
// zero allocations: the data plane runs parse+pop per packet, and sources
// re-encode per tree push into a reused buffer.
func TestExtHeaderNoAlloc(t *testing.T) {
	groups := [][]HopEntry{
		{{Hop: 1, OIFs: 3}},
		{{Hop: 2, OIFs: 1}, {Hop: 3, OIFs: 8}},
	}
	buf := make([]byte, 0, MaxExtHeader)
	allocs := testing.AllocsPerRun(1000, func() {
		var err error
		if _, err = AppendExtHeader(buf[:0], groups); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("AppendExtHeader allocates %.1f/op, want 0", allocs)
	}
	enc := mustExtHeader(t, groups)
	payload := append(enc, []byte("data")...)
	allocs = testing.AllocsPerRun(1000, func() {
		h, _, err := ParseExtHeader(payload)
		if err != nil {
			t.Fatal(err)
		}
		if _, st := h.PopMask(1); st != SRFound {
			t.Fatal(st)
		}
		payload[1] = ExtHeaderFixed // rewind the cursor for the next run
	})
	if allocs != 0 {
		t.Errorf("ParseExtHeader+PopMask allocates %.1f/op, want 0", allocs)
	}
}

// TestExtHeaderPropertyRandomTrees drives random bounded trees through
// encode → parse → pop-at-every-depth and checks each hop recovers exactly
// its own bitmap.
func TestExtHeaderPropertyRandomTrees(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for iter := 0; iter < 500; iter++ {
		depth := 1 + rng.Intn(4)
		groups := make([][]HopEntry, depth)
		hop := uint16(1)
		for d := range groups {
			n := 1 + rng.Intn(5)
			for i := 0; i < n; i++ {
				groups[d] = append(groups[d], HopEntry{Hop: hop, OIFs: rng.Uint32()})
				hop++
			}
		}
		if ExtHeaderSize(groups) < 0 {
			continue
		}
		b := mustExtHeader(t, groups)
		for d := range groups {
			pick := groups[d][rng.Intn(len(groups[d]))]
			cp := append([]byte(nil), b...)
			cp[1] = byte(ExtHeaderSize(groups[:d])) // cursor at depth d
			h, _, err := ParseExtHeader(cp)
			if err != nil {
				t.Fatal(err)
			}
			mask, st := h.PopMask(pick.Hop)
			if st != SRFound || mask != pick.OIFs {
				t.Fatalf("iter %d depth %d hop %d: (%#x, %v), want (%#x, SRFound)",
					iter, d, pick.Hop, mask, st, pick.OIFs)
			}
		}
	}
}

// FuzzDecodeExtHeader feeds arbitrary bytes to the extension-header parser:
// it must never panic, any accepted header must consume exactly its length
// byte, structurally valid headers must re-encode to identical bytes
// (decode∘encode identity), and every group must stay inside the ≤255-byte
// bounded-bitmap budget.
func FuzzDecodeExtHeader(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{2, 2})
	f.Add([]byte{0, 0, 0})
	seed, _ := AppendExtHeader(nil, [][]HopEntry{
		{{Hop: 1, OIFs: 6}},
		{{Hop: 2, OIFs: 1}, {Hop: 3, OIFs: 8}},
	})
	f.Add(seed)
	popped, _ := AppendExtHeaderPopped(nil, [][]HopEntry{{{Hop: 9, OIFs: 0xff}}}, 1)
	f.Add(popped)
	f.Fuzz(func(t *testing.T, b []byte) {
		h, rest, err := ParseExtHeader(b)
		if err != nil {
			return
		}
		if h.Len() < ExtHeaderFixed || h.Len() > MaxExtHeader || h.Len()+len(rest) != len(b) {
			t.Fatalf("parse split %d+%d of %d bytes", h.Len(), len(rest), len(b))
		}
		groups, np, gerr := h.Groups()
		if (h.Validate() == nil) != (gerr == nil) {
			t.Fatalf("Validate and Groups disagree: %v vs %v", h.Validate(), gerr)
		}
		if gerr != nil {
			// Light parse accepted, structure invalid: PopMask must still
			// be safe on it (no panic) for any hop.
			h.PopMask(0)
			h.PopMask(1)
			return
		}
		total := ExtHeaderFixed
		for _, g := range groups {
			if len(g) == 0 {
				t.Fatal("valid header decoded an empty group")
			}
			total += 1 + HopEntrySize*len(g)
			for _, e := range g {
				if e.Hop == 0 {
					t.Fatal("valid header decoded hop ID 0")
				}
			}
		}
		if total != h.Len() {
			t.Fatalf("groups cover %d of %d bytes", total, h.Len())
		}
		out, err := AppendExtHeaderPopped(nil, groups, np)
		if err != nil {
			t.Fatalf("re-encode of valid header failed: %v", err)
		}
		if !bytes.Equal(out, b[:h.Len()]) {
			t.Fatalf("re-encode mismatch:\n in  %x\n out %x", b[:h.Len()], out)
		}
	})
}
