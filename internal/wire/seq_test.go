package wire

import (
	"math"
	"testing"
)

func TestSeqSerialArithmetic(t *testing.T) {
	cases := []struct {
		a, b  uint32
		delta int32
	}{
		{0, 0, 0},
		{1, 0, 1},
		{0, 1, -1},
		{100, 50, 50},
		// The rollover: 2^32−1 → 0 is a distance of 1, not −(2^32−1).
		{0, math.MaxUint32, 1},
		{math.MaxUint32, 0, -1},
		{2, math.MaxUint32 - 2, 5},
		{math.MaxUint32 - 2, 2, -5},
	}
	for _, c := range cases {
		if got := SeqDelta(c.a, c.b); got != c.delta {
			t.Errorf("SeqDelta(%d,%d) = %d, want %d", c.a, c.b, got, c.delta)
		}
		if got := SeqBefore(c.a, c.b); got != (c.delta < 0) {
			t.Errorf("SeqBefore(%d,%d) = %v, want %v", c.a, c.b, got, c.delta < 0)
		}
		if got := SeqAfter(c.a, c.b); got != (c.delta > 0) {
			t.Errorf("SeqAfter(%d,%d) = %v, want %v", c.a, c.b, got, c.delta > 0)
		}
	}
}

func TestSeqMaxAcrossRollover(t *testing.T) {
	if got := SeqMax(math.MaxUint32, 3); got != 3 {
		t.Fatalf("SeqMax(MaxUint32, 3) = %d, want 3 (3 is serially later)", got)
	}
	if got := SeqMax(3, math.MaxUint32); got != 3 {
		t.Fatalf("SeqMax(3, MaxUint32) = %d, want 3", got)
	}
	if got := SeqMax(7, 9); got != 9 {
		t.Fatalf("SeqMax(7,9) = %d, want 9", got)
	}
}
