package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Source-routed replication header (Elmo-style). When DataFlagSrcRoute is
// set, an extension header sits between the 12-byte data header and the
// payload, carrying the whole replication tree as a stack of per-hop output
// bitmaps. Core routers forward off their bitmap with zero FIB state; only
// the source (or first-hop router) knows the tree.
//
// Layout (big endian), ≤ 255 bytes total:
//
//	0        total ext-header length in bytes (includes these two bytes)
//	1        cursor: offset of the current hop group from ext-header start;
//	         == length once every group has been consumed
//	2..len-1 hop groups, back to back, each:
//	           count byte n (≥ 1)
//	           n × 6-byte entries: hop ID (uint16), OIF bitmap (uint32)
//
// Groups are ordered by tree depth: group d holds the (hop, bitmap) entry
// of every router at depth d, so a packet popped d times presents exactly
// the group its receivers belong to. Pop-on-forward is a single in-place
// byte write (the cursor advances past the consumed group); since every
// router at one depth shares the group, a hop pops only after matching its
// own ID, and a hop that finds the cursor exhausted, the header malformed,
// or its ID absent falls back to the packed FIB. P³FA's low-egress-diversity
// observation is what makes the 255-byte budget workable: real per-hop
// fan-out is small, so trees of useful depth fit.

const (
	// DataFlagSrcRoute marks a packet carrying a source-route extension
	// header between the data header and the payload.
	DataFlagSrcRoute uint8 = 1 << 3

	// ExtHeaderFixed is the fixed prefix: length byte + cursor byte.
	ExtHeaderFixed = 2
	// HopEntrySize is one (hop ID, OIF bitmap) entry.
	HopEntrySize = 6
	// MaxExtHeader bounds the whole extension header; the one-byte length
	// field makes the bound structural, not advisory.
	MaxExtHeader = 255
)

// ErrExtHeader is returned for any malformed extension header.
var ErrExtHeader = errors.New("wire: malformed source-route extension header")

// HopEntry is one router's slice of the replication tree: the OIF bitmap it
// should replicate to, keyed by its hop ID (0 is reserved for
// header-unaware hops and never appears in a valid header).
type HopEntry struct {
	Hop  uint16
	OIFs uint32
}

// ExtHeaderSize returns the encoded size of a header holding groups, or -1
// if it exceeds MaxExtHeader. Tree computation uses it to price a tree
// against the header budget without encoding.
func ExtHeaderSize(groups [][]HopEntry) int {
	n := ExtHeaderFixed
	for _, g := range groups {
		if len(g) == 0 {
			continue
		}
		n += 1 + HopEntrySize*len(g)
	}
	if n > MaxExtHeader {
		return -1
	}
	return n
}

// AppendExtHeader appends an encoded extension header with the cursor at
// the first group. Empty groups are elided; at least one non-empty group is
// required, entries must have nonzero hop IDs, and the result must fit
// MaxExtHeader.
func AppendExtHeader(dst []byte, groups [][]HopEntry) ([]byte, error) {
	return AppendExtHeaderPopped(dst, groups, 0)
}

// AppendExtHeaderPopped is AppendExtHeader with the cursor already advanced
// past the first popped non-empty groups — the state of a header that has
// traversed that many tree levels. popped may equal the group count
// (exhausted header). It exists so decode→re-encode is an identity for any
// valid header, which the fuzzer leans on.
func AppendExtHeaderPopped(dst []byte, groups [][]HopEntry, popped int) ([]byte, error) {
	size := ExtHeaderSize(groups)
	if size < 0 {
		return dst, fmt.Errorf("%w: %d groups exceed %d-byte budget", ErrExtHeader, len(groups), MaxExtHeader)
	}
	if size == ExtHeaderFixed {
		return dst, fmt.Errorf("%w: no non-empty groups", ErrExtHeader)
	}
	cursor := ExtHeaderFixed
	seen := 0
	dst = append(dst, byte(size), 0)
	base := len(dst) - ExtHeaderFixed
	for _, g := range groups {
		if len(g) == 0 {
			continue
		}
		if seen < popped {
			cursor += 1 + HopEntrySize*len(g)
		}
		seen++
		if len(g) > MaxExtHeader/HopEntrySize {
			return dst[:base], fmt.Errorf("%w: group of %d entries", ErrExtHeader, len(g))
		}
		dst = append(dst, byte(len(g)))
		for _, e := range g {
			if e.Hop == 0 {
				return dst[:base], fmt.Errorf("%w: zero hop ID", ErrExtHeader)
			}
			var ent [HopEntrySize]byte
			binary.BigEndian.PutUint16(ent[0:2], e.Hop)
			binary.BigEndian.PutUint32(ent[2:6], e.OIFs)
			dst = append(dst, ent[:]...)
		}
	}
	if popped < 0 || popped > seen {
		return dst[:base], fmt.Errorf("%w: popped %d of %d groups", ErrExtHeader, popped, seen)
	}
	if popped == seen {
		cursor = size
	}
	dst[base+1] = byte(cursor)
	return dst, nil
}

// ExtHeader is a zero-copy view over an encoded extension header. The
// fast-path constructor only checks the bounds needed to index safely;
// structural validation is Validate's job.
type ExtHeader struct {
	b []byte
}

// ParseExtHeader splits a data-packet payload into the extension-header
// view and the application payload that follows it. It never allocates.
func ParseExtHeader(payload []byte) (ExtHeader, []byte, error) {
	if len(payload) < ExtHeaderFixed {
		return ExtHeader{}, nil, ErrExtHeader
	}
	n := int(payload[0])
	if n < ExtHeaderFixed || n > len(payload) {
		return ExtHeader{}, nil, ErrExtHeader
	}
	return ExtHeader{b: payload[:n]}, payload[n:], nil
}

// Len returns the total encoded length in bytes.
func (h ExtHeader) Len() int { return len(h.b) }

// Exhausted reports whether every hop group has been consumed.
func (h ExtHeader) Exhausted() bool { return int(h.b[1]) >= len(h.b) }

// SRStatus is the outcome of a PopMask lookup.
type SRStatus uint8

const (
	// SRFound: the hop owns an entry in the current group; the mask was
	// returned and the cursor advanced past the group.
	SRFound SRStatus = iota
	// SRExhausted: the stack has no groups left (the packet is past the
	// encoded tree); forward off the FIB.
	SRExhausted
	// SRNotFound: the current group has no entry for this hop (the hop is
	// not part of the encoded tree level); forward off the FIB.
	SRNotFound
	// SRMalformed: the group structure is inconsistent; forward off the
	// FIB and count the packet as bad.
	SRMalformed
)

// PopMask looks up hop in the current group. On a hit it advances the
// cursor past the group in place — the caller replicates the mutated
// buffer, so children at the next tree depth see their own group — and
// returns the hop's OIF bitmap. It only inspects the current group, costs
// O(group entries), and never allocates.
func (h ExtHeader) PopMask(hop uint16) (uint32, SRStatus) {
	cur := int(h.b[1])
	if cur >= len(h.b) {
		if cur == len(h.b) {
			return 0, SRExhausted
		}
		return 0, SRMalformed
	}
	if cur < ExtHeaderFixed {
		return 0, SRMalformed
	}
	n := int(h.b[cur])
	end := cur + 1 + HopEntrySize*n
	if n == 0 || end > len(h.b) {
		return 0, SRMalformed
	}
	for off := cur + 1; off < end; off += HopEntrySize {
		if binary.BigEndian.Uint16(h.b[off:off+2]) == hop {
			h.b[1] = byte(end)
			return binary.BigEndian.Uint32(h.b[off+2 : off+6]), SRFound
		}
	}
	return 0, SRNotFound
}

// Validate walks the whole structure: groups must exactly tile the region
// after the fixed prefix, every group must be non-empty with nonzero hop
// IDs, and the cursor must land on a group boundary or the end.
func (h ExtHeader) Validate() error {
	_, _, err := h.decode(false)
	return err
}

// Groups decodes the header into structured form plus the number of groups
// already popped. It allocates and exists for tests, fuzzing, and tree
// computation — the data plane uses PopMask.
func (h ExtHeader) Groups() ([][]HopEntry, int, error) {
	return h.decode(true)
}

func (h ExtHeader) decode(build bool) ([][]HopEntry, int, error) {
	cur := int(h.b[1])
	if cur < ExtHeaderFixed || cur > len(h.b) {
		return nil, 0, fmt.Errorf("%w: cursor %d outside [%d,%d]", ErrExtHeader, cur, ExtHeaderFixed, len(h.b))
	}
	var groups [][]HopEntry
	popped := -1
	off := ExtHeaderFixed
	if off == len(h.b) {
		return nil, 0, fmt.Errorf("%w: no groups", ErrExtHeader)
	}
	for off < len(h.b) {
		if off == cur {
			popped = len(groups)
		}
		n := int(h.b[off])
		end := off + 1 + HopEntrySize*n
		if n == 0 || end > len(h.b) {
			return nil, 0, fmt.Errorf("%w: group at %d (count %d) overruns length %d", ErrExtHeader, off, n, len(h.b))
		}
		if build {
			g := make([]HopEntry, 0, n)
			for p := off + 1; p < end; p += HopEntrySize {
				hop := binary.BigEndian.Uint16(h.b[p : p+2])
				if hop == 0 {
					return nil, 0, fmt.Errorf("%w: zero hop ID at %d", ErrExtHeader, p)
				}
				g = append(g, HopEntry{Hop: hop, OIFs: binary.BigEndian.Uint32(h.b[p+2 : p+6])})
			}
			groups = append(groups, g)
		} else {
			for p := off + 1; p < end; p += HopEntrySize {
				if h.b[p] == 0 && h.b[p+1] == 0 {
					return nil, 0, fmt.Errorf("%w: zero hop ID at %d", ErrExtHeader, p)
				}
			}
			groups = append(groups, nil)
		}
		off = end
	}
	if cur == len(h.b) {
		popped = len(groups)
	}
	if popped < 0 {
		return nil, 0, fmt.Errorf("%w: cursor %d not on a group boundary", ErrExtHeader, cur)
	}
	if !build {
		return nil, popped, nil
	}
	return groups, popped, nil
}
