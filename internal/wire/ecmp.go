// Package wire defines the on-the-wire encodings for the EXPRESS
// reproduction: the three ECMP messages of Section 3 (CountQuery, Count,
// CountResponse), message batching into transport segments, a minimal IPv4
// header, and the 12-byte FIB entry encoding of Figure 5 (the latter is
// re-exported through internal/fib).
//
// Codecs follow the DecodeFromBytes/AppendTo convention: decoding borrows
// from the input buffer and never allocates; encoding appends to a caller
// buffer so batches can be built without copies.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/addr"
)

// Message type identifiers. ECMP consists of exactly three messages
// (Section 3): CountQuery, Count, and CountResponse.
const (
	TypeCountQuery    uint8 = 1
	TypeCount         uint8 = 2
	TypeCountResponse uint8 = 3
	// TypeCountAuth is the authenticated Count variant: the same layout
	// with the 8-byte K(S,E) appended. A distinct type byte keeps the
	// encoding self-delimiting so batches parse without per-message length
	// prefixes.
	TypeCountAuth uint8 = 4
)

// CountID identifies the attribute being counted. A reserved id designates
// subscribers (tree maintenance), others designate neighbor discovery and
// network-layer resources; a sub-range has application-defined semantics
// (Sections 3.1–3.3).
type CountID uint16

const (
	// CountSubscribers is the reserved subscriberId: the number of
	// subscribers in a subtree. An unsolicited Count with this id is a
	// subscription; a zero Count is an unsubscription (Section 3.2).
	CountSubscribers CountID = 0x0001
	// CountNeighbors designates neighboring EXPRESS routers; periodic
	// multicast queries with this id implement neighbor discovery
	// (Section 3.3).
	CountNeighbors CountID = 0x0002
	// CountAllChannels solicits Count retransmissions for all channels,
	// analogous to an IGMP general query (Section 3.3).
	CountAllChannels CountID = 0x0003

	// AppCountBase..AppCountLast have application-defined semantics and are
	// forwarded all the way to subscribing applications (e.g. votes,
	// positive/negative acknowledgement collection; Section 2.2.1).
	AppCountBase CountID = 0x0100
	AppCountLast CountID = 0x3fff

	// LocalCountBase..LocalCountLast are designated for locally-defined use
	// by transit domains (Section 3.1).
	LocalCountBase CountID = 0x4000
	LocalCountLast CountID = 0x7fff

	// NetCountBase and above are network-layer resource counts that are
	// answered by routers and not propagated to leaf hosts (Section 3.1
	// footnote). CountLinks counts distribution-tree links within a domain,
	// CountTreeWeight is a weighted tree-size measure (Section 2.1).
	NetCountBase    CountID = 0x8000
	CountLinks      CountID = 0x8001
	CountTreeWeight CountID = 0x8002
	// CountRelayAddr4 and CountRelayPort discover the Section 4 session
	// relay serving a channel: a router answers with the relay's IPv4
	// address (as the count value) and its unicast control port. Zero means
	// no relay is registered for the channel.
	CountRelayAddr4 CountID = 0x8003
	CountRelayPort  CountID = 0x8005
)

// IsNetworkLayer reports whether the id is answered by routers rather than
// being forwarded to leaf hosts.
func (c CountID) IsNetworkLayer() bool { return c >= NetCountBase }

// IsApplication reports whether the id carries application-defined
// semantics (delivered to the subscribing application, not the OS).
func (c CountID) IsApplication() bool { return c >= AppCountBase && c <= AppCountLast }

// IsLocal reports whether the id lies in the locally-defined transit-domain
// range (Section 3.1). Like network-layer ids, these are answered by
// routers and never forwarded to leaf hosts.
func (c CountID) IsLocal() bool { return c >= LocalCountBase && c <= LocalCountLast }

// Status codes carried in CountResponse.
const (
	StatusOK               uint8 = 0
	StatusBadKey           uint8 = 1 // invalid authenticator (Section 3.1)
	StatusUnsupportedCount uint8 = 2 // unsupported countId (Section 3.1)
	StatusNotOnChannel     uint8 = 3
)

// KeySize is the size of the channel authenticator K(S,E). Section 5.2
// budgets "another eight bytes to store K(S,E)".
const KeySize = 8

// Key is the channel authenticator. It is an opaque capability, not
// cryptographic material; key distribution is explicitly out of ECMP's
// scope (Section 3.2).
type Key [KeySize]byte

// IsZero reports whether the key is unset.
func (k Key) IsZero() bool { return k == Key{} }

// Wire sizes. CountSize is the paper's constant: "approximately 92 16-byte
// Count messages fit in a 1480-byte maximum-sized TCP segment" (Section
// 5.3); the authenticated form appends a 1-byte flag and the 8-byte key.
const (
	CountSize         = 16
	CountAuthSize     = CountSize + KeySize
	CountQuerySize    = 18
	CountResponseSize = 13
	MaxSegment        = 1480 // maximum-sized TCP segment payload on Ethernet
)

// CountsPerSegment is how many unauthenticated Counts batch into one
// maximum-sized segment: 92, matching Section 5.3.
const CountsPerSegment = MaxSegment / CountSize

var (
	ErrShort      = errors.New("wire: buffer too short")
	ErrBadType    = errors.New("wire: unexpected message type")
	ErrBadChannel = errors.New("wire: destination not in 232/8")
)

// CountQuery asks for a count of the attribute identified by CountID over
// the channel subtree below the receiver. TimeoutMs is decremented at each
// hop by a small multiple of the measured upstream RTT so children time out
// before parents (Section 3.1). Proactive requests that proactive counting
// be enabled for this countId (Section 6).
type CountQuery struct {
	Channel   addr.Channel
	CountID   CountID
	Seq       uint16
	TimeoutMs uint32
	Proactive bool
}

// Count carries a count value upstream. An unsolicited Count (Seq 0) with
// CountSubscribers is a subscription when Value > 0 and an unsubscription
// when Value == 0 (Section 3.2). HasKey/Key carry the authenticator for
// restricted channels.
type Count struct {
	Channel addr.Channel
	CountID CountID
	Seq     uint16
	Value   uint32
	HasKey  bool
	Key     Key
}

// CountResponse acknowledges or rejects a Count (Section 3.1): an upstream
// router uses it to validate or deny an authenticated subscription.
type CountResponse struct {
	Channel addr.Channel
	CountID CountID
	Seq     uint16
	Status  uint8
}

// putChannel encodes S (4 bytes) plus the 24-bit E suffix (the 232/8 prefix
// is implicit, as in the Figure 5 FIB entry).
func putChannel(b []byte, c addr.Channel) {
	binary.BigEndian.PutUint32(b, uint32(c.S))
	suffix := c.E.ExpressSuffix()
	b[4] = byte(suffix >> 16)
	b[5] = byte(suffix >> 8)
	b[6] = byte(suffix)
}

func getChannel(b []byte) addr.Channel {
	s := addr.Addr(binary.BigEndian.Uint32(b))
	suffix := uint32(b[4])<<16 | uint32(b[5])<<8 | uint32(b[6])
	return addr.Channel{S: s, E: addr.ExpressAddr(suffix)}
}

// AppendTo appends the encoded message and returns the extended buffer.
func (m *CountQuery) AppendTo(b []byte) []byte {
	var flags byte
	if m.Proactive {
		flags |= 1
	}
	b = append(b, TypeCountQuery)
	var ch [7]byte
	putChannel(ch[:], m.Channel)
	b = append(b, ch[:]...)
	b = binary.BigEndian.AppendUint16(b, uint16(m.CountID))
	b = binary.BigEndian.AppendUint16(b, m.Seq)
	b = binary.BigEndian.AppendUint32(b, m.TimeoutMs)
	return append(b, flags, 0) // flags + reserved pad
}

// DecodeFromBytes parses the message and returns the number of bytes
// consumed.
func (m *CountQuery) DecodeFromBytes(b []byte) (int, error) {
	if len(b) < CountQuerySize {
		return 0, ErrShort
	}
	if b[0] != TypeCountQuery {
		return 0, ErrBadType
	}
	m.Channel = getChannel(b[1:8])
	m.CountID = CountID(binary.BigEndian.Uint16(b[8:10]))
	m.Seq = binary.BigEndian.Uint16(b[10:12])
	m.TimeoutMs = binary.BigEndian.Uint32(b[12:16])
	m.Proactive = b[16]&1 != 0
	_ = b[17] // reserved
	return CountQuerySize, nil
}

// AppendTo appends the encoded message and returns the extended buffer. The
// unauthenticated form is exactly 16 bytes, matching Section 5.3's packing.
func (m *Count) AppendTo(b []byte) []byte {
	typ := TypeCount
	if m.HasKey {
		typ = TypeCountAuth
	}
	b = append(b, typ)
	var ch [7]byte
	putChannel(ch[:], m.Channel)
	b = append(b, ch[:]...)
	b = binary.BigEndian.AppendUint16(b, uint16(m.CountID))
	b = binary.BigEndian.AppendUint16(b, m.Seq)
	b = binary.BigEndian.AppendUint32(b, m.Value)
	if m.HasKey {
		b = append(b, m.Key[:]...)
	}
	return b
}

// Size returns the encoded size of the message.
func (m *Count) Size() int {
	if m.HasKey {
		return CountAuthSize
	}
	return CountSize
}

// DecodeFromBytes parses the message and returns the bytes consumed.
func (m *Count) DecodeFromBytes(b []byte) (int, error) {
	if len(b) < CountSize {
		return 0, ErrShort
	}
	if b[0] != TypeCount && b[0] != TypeCountAuth {
		return 0, ErrBadType
	}
	m.Channel = getChannel(b[1:8])
	m.CountID = CountID(binary.BigEndian.Uint16(b[8:10]))
	m.Seq = binary.BigEndian.Uint16(b[10:12])
	m.Value = binary.BigEndian.Uint32(b[12:16])
	m.HasKey = false
	m.Key = Key{}
	if b[0] == TypeCountAuth {
		if len(b) < CountAuthSize {
			return 0, ErrShort
		}
		m.HasKey = true
		copy(m.Key[:], b[16:16+KeySize])
		return CountAuthSize, nil
	}
	return CountSize, nil
}

// AppendTo appends the encoded message and returns the extended buffer.
func (m *CountResponse) AppendTo(b []byte) []byte {
	b = append(b, TypeCountResponse)
	var ch [7]byte
	putChannel(ch[:], m.Channel)
	b = append(b, ch[:]...)
	b = binary.BigEndian.AppendUint16(b, uint16(m.CountID))
	b = binary.BigEndian.AppendUint16(b, m.Seq)
	return append(b, m.Status)
}

// DecodeFromBytes parses the message and returns the bytes consumed.
func (m *CountResponse) DecodeFromBytes(b []byte) (int, error) {
	if len(b) < CountResponseSize {
		return 0, ErrShort
	}
	if b[0] != TypeCountResponse {
		return 0, ErrBadType
	}
	m.Channel = getChannel(b[1:8])
	m.CountID = CountID(binary.BigEndian.Uint16(b[8:10]))
	m.Seq = binary.BigEndian.Uint16(b[10:12])
	m.Status = b[12]
	return CountResponseSize, nil
}

// Message is any of the three ECMP messages.
type Message interface {
	AppendTo([]byte) []byte
	DecodeFromBytes([]byte) (int, error)
}

// Decode parses the next message in b by its leading type byte.
func Decode(b []byte) (Message, int, error) {
	if len(b) == 0 {
		return nil, 0, ErrShort
	}
	var m Message
	switch b[0] {
	case TypeCountQuery:
		m = &CountQuery{}
	case TypeCount, TypeCountAuth:
		m = &Count{}
	case TypeCountResponse:
		m = &CountResponse{}
	case TypeHello:
		m = &Hello{}
	default:
		return nil, 0, fmt.Errorf("%w: %d", ErrBadType, b[0])
	}
	n, err := m.DecodeFromBytes(b)
	return m, n, err
}
