package wire

import (
	"errors"
	"testing"

	"repro/internal/addr"
)

func TestHelloRoundTrip(t *testing.T) {
	in := Hello{
		SessionID: 0xdeadbeefcafe0001,
		Epoch:     42,
		DataPort:  4801,
		RelayPort: 4950,
		RelayChannel: addr.Channel{
			S: addr.MustParse("171.64.9.9"),
			E: addr.ExpressAddr(0x00abcdef),
		},
	}
	b := in.AppendTo(nil)
	if len(b) != HelloSize {
		t.Fatalf("encoded size = %d, want %d", len(b), HelloSize)
	}
	var out Hello
	n, err := out.DecodeFromBytes(b)
	if err != nil || n != HelloSize {
		t.Fatalf("decode = (%d, %v), want (%d, nil)", n, err, HelloSize)
	}
	if out != in {
		t.Errorf("round trip = %+v, want %+v", out, in)
	}

	// Hello participates in the generic type-dispatched decoder.
	m, n, err := Decode(b)
	if err != nil || n != HelloSize {
		t.Fatalf("Decode = (%d, %v), want (%d, nil)", n, err, HelloSize)
	}
	if h, ok := m.(*Hello); !ok || *h != in {
		t.Errorf("Decode message = %#v, want %+v", m, in)
	}
}

func TestHelloDecodeErrors(t *testing.T) {
	var h Hello
	if _, err := h.DecodeFromBytes(make([]byte, HelloSize-1)); !errors.Is(err, ErrShort) {
		t.Errorf("short buffer error = %v, want ErrShort", err)
	}
	b := (&Hello{SessionID: 1, Epoch: 1}).AppendTo(nil)
	b[1] = helloVersion + 1
	if _, err := h.DecodeFromBytes(b); !errors.Is(err, ErrBadType) {
		t.Errorf("bad version error = %v, want ErrBadType", err)
	}
}
