package wire

import (
	"encoding/binary"

	"repro/internal/addr"
)

// IPv4Header is the subset of the IPv4 header the reproduction needs: the
// real 20-byte layout with no options. The simulator carries structured
// payloads for speed, but the real-socket router (internal/realnet), the
// encapsulation paths (subcast, session relay, PIM register), and the size
// accounting all use this encoding.
type IPv4Header struct {
	TotalLen uint16
	TTL      uint8
	Protocol uint8
	Src, Dst addr.Addr
	ID       uint16
}

// IPv4HeaderSize is the encoded size (no options).
const IPv4HeaderSize = 20

// AppendTo appends the 20-byte header. The checksum is computed over the
// header as the real protocol requires.
func (h *IPv4Header) AppendTo(b []byte) []byte {
	start := len(b)
	b = append(b,
		0x45, 0, // version 4, IHL 5, DSCP/ECN 0
		byte(h.TotalLen>>8), byte(h.TotalLen),
		byte(h.ID>>8), byte(h.ID),
		0, 0, // flags/fragment offset
		h.TTL, h.Protocol,
		0, 0, // checksum placeholder
	)
	b = binary.BigEndian.AppendUint32(b, uint32(h.Src))
	b = binary.BigEndian.AppendUint32(b, uint32(h.Dst))
	sum := ipChecksum(b[start : start+IPv4HeaderSize])
	b[start+10] = byte(sum >> 8)
	b[start+11] = byte(sum)
	return b
}

// DecodeFromBytes parses the header, verifying version, length and checksum.
func (h *IPv4Header) DecodeFromBytes(b []byte) (int, error) {
	if len(b) < IPv4HeaderSize {
		return 0, ErrShort
	}
	if b[0] != 0x45 {
		return 0, ErrBadType
	}
	if ipChecksum(b[:IPv4HeaderSize]) != 0 {
		return 0, ErrChecksum
	}
	h.TotalLen = binary.BigEndian.Uint16(b[2:4])
	h.ID = binary.BigEndian.Uint16(b[4:6])
	h.TTL = b[8]
	h.Protocol = b[9]
	h.Src = addr.Addr(binary.BigEndian.Uint32(b[12:16]))
	h.Dst = addr.Addr(binary.BigEndian.Uint32(b[16:20]))
	return IPv4HeaderSize, nil
}

// ErrChecksum reports a corrupted IPv4 header.
var ErrChecksum = errChecksum{}

type errChecksum struct{}

func (errChecksum) Error() string { return "wire: bad IPv4 header checksum" }

// ipChecksum is the standard internet checksum (RFC 1071) over b. Computing
// it over a header whose checksum field holds the correct value yields 0.
func ipChecksum(b []byte) uint16 {
	var sum uint32
	for i := 0; i+1 < len(b); i += 2 {
		sum += uint32(b[i])<<8 | uint32(b[i+1])
	}
	if len(b)%2 == 1 {
		sum += uint32(b[len(b)-1]) << 8
	}
	for sum>>16 != 0 {
		sum = (sum & 0xffff) + sum>>16
	}
	return ^uint16(sum)
}

// EncapOverhead is the per-packet cost of IP-in-IP encapsulation used by
// subcast (Section 2.1) and session relaying (Section 4.1).
const EncapOverhead = IPv4HeaderSize

// EncapPacket wraps an already-encoded inner IPv4 packet with an outer
// header addressed to the relay point.
func EncapPacket(outerSrc, outerDst addr.Addr, ttl uint8, proto uint8, inner []byte) []byte {
	h := IPv4Header{
		TotalLen: uint16(IPv4HeaderSize + len(inner)),
		TTL:      ttl,
		Protocol: proto,
		Src:      outerSrc,
		Dst:      outerDst,
	}
	out := make([]byte, 0, IPv4HeaderSize+len(inner))
	out = h.AppendTo(out)
	return append(out, inner...)
}
