package wire

// Batch packs ECMP messages into transport segments of at most MaxSegment
// bytes. Section 5.3's bandwidth arithmetic depends on this packing:
// "approximately 92 16-byte Count messages fit in a 1480-byte maximum-sized
// TCP segment", giving ~424 kbit/s of control traffic at 3,333 events/s.
//
// Messages are self-delimiting (each starts with a type byte that fixes its
// length), so the batch is just concatenated encodings.
type Batch struct {
	buf  []byte
	msgs int
}

// NewBatch returns a batch with capacity for one full segment.
func NewBatch() *Batch {
	return &Batch{buf: make([]byte, 0, MaxSegment)}
}

// Add appends a message. It reports false when the message does not fit in
// the current segment, in which case the caller flushes and retries.
func (b *Batch) Add(m Message) bool {
	before := len(b.buf)
	b.buf = m.AppendTo(b.buf)
	if len(b.buf) > MaxSegment {
		b.buf = b.buf[:before]
		return false
	}
	b.msgs++
	return true
}

// Len returns the number of messages in the batch; Size the encoded bytes.
func (b *Batch) Len() int  { return b.msgs }
func (b *Batch) Size() int { return len(b.buf) }

// Bytes returns the encoded segment. The slice is invalidated by Reset.
func (b *Batch) Bytes() []byte { return b.buf }

// Reset empties the batch for reuse.
func (b *Batch) Reset() { b.buf = b.buf[:0]; b.msgs = 0 }

// DecodeBatch parses a concatenated segment into messages.
func DecodeBatch(seg []byte) ([]Message, error) {
	var out []Message
	for len(seg) > 0 {
		m, n, err := Decode(seg)
		if err != nil {
			return out, err
		}
		out = append(out, m)
		seg = seg[n:]
	}
	return out, nil
}
