package wire

import "fmt"

// Batch packs ECMP messages into transport segments of at most MaxSegment
// bytes. Section 5.3's bandwidth arithmetic depends on this packing:
// "approximately 92 16-byte Count messages fit in a 1480-byte maximum-sized
// TCP segment", giving ~424 kbit/s of control traffic at 3,333 events/s.
//
// Messages are self-delimiting (each starts with a type byte that fixes its
// length), so the batch is just concatenated encodings.
type Batch struct {
	buf  []byte
	msgs int
}

// NewBatch returns a batch with capacity for one full segment.
func NewBatch() *Batch {
	return &Batch{buf: make([]byte, 0, MaxSegment)}
}

// Add appends a message. It reports false when the message does not fit in
// the current segment, in which case the caller flushes and retries.
func (b *Batch) Add(m Message) bool {
	before := len(b.buf)
	b.buf = m.AppendTo(b.buf)
	if len(b.buf) > MaxSegment {
		b.buf = b.buf[:before]
		return false
	}
	b.msgs++
	return true
}

// Len returns the number of messages in the batch; Size the encoded bytes.
func (b *Batch) Len() int  { return b.msgs }
func (b *Batch) Size() int { return len(b.buf) }

// Bytes returns the encoded segment. The slice is invalidated by Reset.
func (b *Batch) Bytes() []byte { return b.buf }

// Reset empties the batch for reuse.
func (b *Batch) Reset() { b.buf = b.buf[:0]; b.msgs = 0 }

// DecodeBatch parses a concatenated segment into messages. It allocates one
// Message per entry; hot paths that only care about Counts should use
// WalkCounts, which decodes the same segment without allocating.
func DecodeBatch(seg []byte) ([]Message, error) {
	var out []Message
	for len(seg) > 0 {
		m, n, err := Decode(seg)
		if err != nil {
			return out, err
		}
		out = append(out, m)
		seg = seg[n:]
	}
	return out, nil
}

// WalkCounts decodes a concatenated segment in place, invoking fn once per
// Count (authenticated or not) and silently skipping interleaved queries and
// responses. The Count is passed by value into fn — a pointer would escape
// to the heap — so a full 92-Count segment decodes with zero allocations.
// It returns the number of Counts delivered; on a malformed segment the
// Counts preceding the error are still delivered.
func WalkCounts(seg []byte, fn func(m Count)) (int, error) {
	var (
		cnt  Count
		q    CountQuery
		resp CountResponse
		done int
	)
	for len(seg) > 0 {
		var (
			n   int
			err error
		)
		switch seg[0] {
		case TypeCount, TypeCountAuth:
			if n, err = cnt.DecodeFromBytes(seg); err == nil {
				fn(cnt)
				done++
			}
		case TypeCountQuery:
			n, err = q.DecodeFromBytes(seg)
		case TypeCountResponse:
			n, err = resp.DecodeFromBytes(seg)
		default:
			err = fmt.Errorf("%w: %d", ErrBadType, seg[0])
		}
		if err != nil {
			return done, err
		}
		seg = seg[n:]
	}
	return done, nil
}
