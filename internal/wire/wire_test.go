package wire

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/addr"
)

// genChannel draws a valid channel.
func genChannel(rng *rand.Rand) addr.Channel {
	return addr.Channel{
		S: addr.Addr(rng.Uint32()&0x7fffffff | 0x01000000), // non-multicast, non-zero
		E: addr.ExpressAddr(rng.Uint32()),
	}
}

func TestCountRoundTripProperty(t *testing.T) {
	f := func(s uint32, suffix uint32, id uint16, seq uint16, value uint32, hasKey bool, key [KeySize]byte) bool {
		in := Count{
			Channel: addr.Channel{S: addr.Addr(s&0x7fffffff | 1), E: addr.ExpressAddr(suffix)},
			CountID: CountID(id), Seq: seq, Value: value,
			HasKey: hasKey, Key: key,
		}
		if !hasKey {
			in.Key = Key{}
		}
		buf := in.AppendTo(nil)
		if want := in.Size(); len(buf) != want {
			t.Logf("encoded size %d, want %d", len(buf), want)
			return false
		}
		var out Count
		n, err := out.DecodeFromBytes(buf)
		if err != nil || n != len(buf) {
			return false
		}
		return reflect.DeepEqual(in, out)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestCountQueryRoundTripProperty(t *testing.T) {
	f := func(s uint32, suffix uint32, id uint16, seq uint16, timeout uint32, proactive bool) bool {
		in := CountQuery{
			Channel: addr.Channel{S: addr.Addr(s | 1), E: addr.ExpressAddr(suffix)},
			CountID: CountID(id), Seq: seq, TimeoutMs: timeout, Proactive: proactive,
		}
		buf := in.AppendTo(nil)
		if len(buf) != CountQuerySize {
			return false
		}
		var out CountQuery
		n, err := out.DecodeFromBytes(buf)
		return err == nil && n == CountQuerySize && reflect.DeepEqual(in, out)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestCountResponseRoundTripProperty(t *testing.T) {
	f := func(s uint32, suffix uint32, id uint16, seq uint16, status uint8) bool {
		in := CountResponse{
			Channel: addr.Channel{S: addr.Addr(s | 1), E: addr.ExpressAddr(suffix)},
			CountID: CountID(id), Seq: seq, Status: status,
		}
		buf := in.AppendTo(nil)
		var out CountResponse
		n, err := out.DecodeFromBytes(buf)
		return err == nil && n == CountResponseSize && reflect.DeepEqual(in, out)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestWireSizes(t *testing.T) {
	// The Section 5.3 packing arithmetic depends on these constants.
	if CountSize != 16 {
		t.Errorf("CountSize = %d, want 16 (the paper's 16-byte Count)", CountSize)
	}
	if CountsPerSegment != 92 {
		t.Errorf("CountsPerSegment = %d, want 92", CountsPerSegment)
	}
	c := Count{Channel: addr.Channel{S: 1, E: addr.ExpressBase}, Value: 1}
	if got := len(c.AppendTo(nil)); got != 16 {
		t.Errorf("encoded unauthenticated Count = %d bytes, want 16", got)
	}
	c.HasKey = true
	if got := len(c.AppendTo(nil)); got != CountAuthSize {
		t.Errorf("encoded authenticated Count = %d bytes, want %d", got, CountAuthSize)
	}
}

func TestDecodeErrors(t *testing.T) {
	var c Count
	if _, err := c.DecodeFromBytes(nil); err != ErrShort {
		t.Errorf("nil buffer: err = %v, want ErrShort", err)
	}
	if _, err := c.DecodeFromBytes(make([]byte, 15)); err != ErrShort {
		t.Errorf("15-byte buffer: err = %v, want ErrShort", err)
	}
	bad := make([]byte, 32)
	bad[0] = 0x7f
	if _, err := c.DecodeFromBytes(bad); err != ErrBadType {
		t.Errorf("bad type: err = %v, want ErrBadType", err)
	}
	// Authenticated type byte but truncated key.
	authMsg := Count{Channel: addr.Channel{S: 1, E: addr.ExpressBase}, HasKey: true}
	auth := authMsg.AppendTo(nil)
	if _, err := c.DecodeFromBytes(auth[:20]); err != ErrShort {
		t.Errorf("truncated auth Count: err = %v, want ErrShort", err)
	}
	var q CountQuery
	if _, err := q.DecodeFromBytes(make([]byte, CountQuerySize-1)); err != ErrShort {
		t.Errorf("short query: err = %v, want ErrShort", err)
	}
}

func TestBatchPackingAndDecode(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	b := NewBatch()
	var sent []Message
	for {
		m := &Count{Channel: genChannel(rng), CountID: CountSubscribers, Value: rng.Uint32()}
		if rng.Intn(4) == 0 {
			m.HasKey = true
			rng.Read(m.Key[:])
		}
		if !b.Add(m) {
			break
		}
		sent = append(sent, m)
	}
	if b.Size() > MaxSegment {
		t.Fatalf("batch size %d exceeds segment", b.Size())
	}
	if b.Len() != len(sent) {
		t.Fatalf("batch len %d, want %d", b.Len(), len(sent))
	}
	got, err := DecodeBatch(b.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(sent) {
		t.Fatalf("decoded %d messages, want %d", len(got), len(sent))
	}
	for i := range got {
		if !reflect.DeepEqual(got[i], sent[i]) {
			t.Fatalf("message %d mismatch: %+v vs %+v", i, got[i], sent[i])
		}
	}
}

func TestBatchMixedTypes(t *testing.T) {
	b := NewBatch()
	ch := addr.Channel{S: addr.MustParse("10.0.0.1"), E: addr.ExpressAddr(9)}
	msgs := []Message{
		&CountQuery{Channel: ch, CountID: CountSubscribers, Seq: 1, TimeoutMs: 500},
		&Count{Channel: ch, CountID: CountSubscribers, Seq: 1, Value: 17},
		&CountResponse{Channel: ch, CountID: CountSubscribers, Seq: 1, Status: StatusOK},
		&Count{Channel: ch, CountID: CountSubscribers, Value: 1, HasKey: true, Key: Key{1, 2, 3, 4, 5, 6, 7, 8}},
	}
	for _, m := range msgs {
		if !b.Add(m) {
			t.Fatal("batch refused a message that fits")
		}
	}
	got, err := DecodeBatch(b.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	for i := range msgs {
		if !reflect.DeepEqual(got[i], msgs[i]) {
			t.Errorf("message %d: got %+v want %+v", i, got[i], msgs[i])
		}
	}
}

func TestIPv4HeaderRoundTripAndChecksum(t *testing.T) {
	h := IPv4Header{TotalLen: 1048, TTL: 63, Protocol: 103, Src: addr.MustParse("171.64.7.9"), Dst: addr.MustParse("232.0.1.2"), ID: 777}
	buf := h.AppendTo(nil)
	if len(buf) != IPv4HeaderSize {
		t.Fatalf("header size %d, want %d", len(buf), IPv4HeaderSize)
	}
	var out IPv4Header
	if _, err := out.DecodeFromBytes(buf); err != nil {
		t.Fatal(err)
	}
	if out != h {
		t.Fatalf("round trip: %+v vs %+v", out, h)
	}
	// Corrupt one byte: the checksum must catch it.
	for i := 0; i < IPv4HeaderSize; i++ {
		corrupt := bytes.Clone(buf)
		corrupt[i] ^= 0x40
		if _, err := out.DecodeFromBytes(corrupt); err == nil {
			t.Fatalf("corruption at byte %d went undetected", i)
		}
	}
}

func TestEncapPacket(t *testing.T) {
	inner := []byte{0xde, 0xad, 0xbe, 0xef}
	pkt := EncapPacket(addr.MustParse("10.0.0.1"), addr.MustParse("10.0.0.9"), 64, 4, inner)
	var h IPv4Header
	n, err := h.DecodeFromBytes(pkt)
	if err != nil {
		t.Fatal(err)
	}
	if h.Protocol != 4 || int(h.TotalLen) != len(pkt) {
		t.Errorf("outer header: %+v", h)
	}
	if !bytes.Equal(pkt[n:], inner) {
		t.Error("inner payload corrupted")
	}
}

func TestCountIDRanges(t *testing.T) {
	cases := []struct {
		id  CountID
		net bool
		app bool
	}{
		{CountSubscribers, false, false},
		{CountNeighbors, false, false},
		{AppCountBase, false, true},
		{AppCountLast, false, true},
		{LocalCountBase, false, false},
		{CountLinks, true, false},
		{CountTreeWeight, true, false},
	}
	for _, c := range cases {
		if c.id.IsNetworkLayer() != c.net {
			t.Errorf("%#x IsNetworkLayer = %v, want %v", c.id, c.id.IsNetworkLayer(), c.net)
		}
		if c.id.IsApplication() != c.app {
			t.Errorf("%#x IsApplication = %v, want %v", c.id, c.id.IsApplication(), c.app)
		}
	}
}
