package wire

import (
	"testing"

	"repro/internal/addr"
)

func BenchmarkCountEncode(b *testing.B) {
	m := Count{
		Channel: addr.Channel{S: addr.MustParse("171.64.7.9"), E: addr.ExpressAddr(0xbeef)},
		CountID: CountSubscribers, Value: 12345,
	}
	buf := make([]byte, 0, CountSize)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = m.AppendTo(buf[:0])
	}
	if len(buf) != CountSize {
		b.Fatal("bad encoding")
	}
}

func BenchmarkCountDecode(b *testing.B) {
	m := Count{
		Channel: addr.Channel{S: addr.MustParse("171.64.7.9"), E: addr.ExpressAddr(0xbeef)},
		CountID: CountSubscribers, Value: 12345,
	}
	buf := m.AppendTo(nil)
	var out Count
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := out.DecodeFromBytes(buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBatchSegment(b *testing.B) {
	// Pack and parse one full 92-Count segment per op.
	msgs := make([]*Count, CountsPerSegment)
	for i := range msgs {
		msgs[i] = &Count{
			Channel: addr.Channel{S: addr.MustParse("10.0.0.1"), E: addr.ExpressAddr(uint32(i))},
			CountID: CountSubscribers, Value: 1,
		}
	}
	batch := NewBatch()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		batch.Reset()
		for _, m := range msgs {
			if !batch.Add(m) {
				b.Fatal("segment overflow")
			}
		}
	}
	b.ReportMetric(float64(batch.Len()), "counts/segment")
}

func BenchmarkIPv4Checksum(b *testing.B) {
	h := IPv4Header{TotalLen: 1500, TTL: 64, Protocol: 103,
		Src: addr.MustParse("10.0.0.1"), Dst: addr.MustParse("232.0.0.1")}
	buf := make([]byte, 0, IPv4HeaderSize)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = h.AppendTo(buf[:0])
	}
}
