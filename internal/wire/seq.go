package wire

// Serial sequence-number arithmetic (RFC 1982 style) over the 32-bit
// DataPacket.Seq space. A channel source stamps an ever-increasing counter
// that wraps at 2^32; receivers comparing raw integers would see the
// rollover from 2^32−1 to 0 as a ~4-billion-packet gap and poison every
// loss/gap statistic downstream. These comparisons interpret the unsigned
// difference as a signed distance instead, so they are correct whenever the
// true distance between the two sequence numbers is less than 2^31 — far
// beyond any real reorder window or repair horizon.

// SeqDelta returns the signed serial distance a−b: positive when a is
// ahead of b, negative when behind, 0 when equal. Valid while the true
// distance is < 2^31.
func SeqDelta(a, b uint32) int32 { return int32(a - b) }

// SeqBefore reports whether a is serially earlier than b.
func SeqBefore(a, b uint32) bool { return int32(a-b) < 0 }

// SeqAfter reports whether a is serially later than b.
func SeqAfter(a, b uint32) bool { return int32(a-b) > 0 }

// SeqMax returns the serially later of a and b.
func SeqMax(a, b uint32) uint32 {
	if SeqBefore(a, b) {
		return b
	}
	return a
}
