package wire

import (
	"encoding/binary"
	"fmt"

	"repro/internal/addr"
)

// Session-relay control framing. The Section 4 relay tier runs two packet
// flows beside the raw channel data path:
//
//   - participant ↔ relay unicast control (join, floor request/release,
//     data-to-relay) on the relay's UDP control socket, and
//   - relay → session framing inside DataPacket payloads on the channel
//     (relayed content, beacons, secondary-source announcements).
//
// Both use the same RelayMsg codec, so one decoder (and one fuzz target)
// covers every relay-tier packet. Like data packets, relay messages are
// datagram-delimited: fixed 24-byte header, payload is the rest.
//
// Layout (big endian):
//
//	0       type (TypeRelayMsg)
//	1       version
//	2       kind
//	3       flags
//	4..11   participant id (From)
//	12..15  token (grant tokens, refusal reasons, mode bits — per kind)
//	16..19  channel S
//	20..22  channel E suffix (24 bits)
//	23      reserved (must be zero)
//	24..    payload

// TypeRelayMsg extends the message vocabulary; it never appears on the TCP
// count stream, but a distinct type byte keeps every codec self-identifying.
const TypeRelayMsg uint8 = 6

// relayVersion guards the layout; bump on incompatible change.
const relayVersion uint8 = 1

const (
	// RelayHeaderSize is the fixed relay-message header size.
	RelayHeaderSize = 24
	// MaxRelayPacket matches the data plane's Ethernet-frame budget.
	MaxRelayPacket = 1500 - 20 - 8
	// MaxRelayPayload is the largest payload that fits in one message.
	MaxRelayPayload = MaxRelayPacket - RelayHeaderSize
)

// RelayKind discriminates relay-tier messages.
type RelayKind uint8

const (
	// RelayJoin registers a participant with the relay (unicast, to relay).
	RelayJoin RelayKind = 1 + iota
	// RelayJoinAck confirms a join; Channel carries the session channel.
	RelayJoinAck
	// RelayLeave deregisters a participant.
	RelayLeave
	// RelayFloorRequest asks for the floor (unicast, to relay).
	RelayFloorRequest
	// RelayFloorRelease returns the floor (unicast, to relay).
	RelayFloorRelease
	// RelayFloorGrant notifies the participant it holds the floor.
	RelayFloorGrant
	// RelayFloorDeny refuses a floor request (policy limit).
	RelayFloorDeny
	// RelayData is content: participant→relay unicast on the control
	// socket, and relay→session on the channel (From = original speaker).
	RelayData
	// RelayRefused tells a non-holder its RelayData was not relayed.
	RelayRefused
	// RelayBeacon is the relay's periodic liveness signal on the channel;
	// participants and standby relays feed their fail-over watchdogs
	// exclusively from channel arrivals, so an idle-but-healthy session
	// still proves its relay is alive.
	RelayBeacon
	// RelayAnnounce tells the session a secondary source switched to the
	// direct channel carried in Channel (Section 4.1).
	RelayAnnounce

	relayKindMax = RelayAnnounce
)

// String names the kind for logs and metrics.
func (k RelayKind) String() string {
	switch k {
	case RelayJoin:
		return "join"
	case RelayJoinAck:
		return "join-ack"
	case RelayLeave:
		return "leave"
	case RelayFloorRequest:
		return "floor-request"
	case RelayFloorRelease:
		return "floor-release"
	case RelayFloorGrant:
		return "floor-grant"
	case RelayFloorDeny:
		return "floor-deny"
	case RelayData:
		return "data"
	case RelayRefused:
		return "refused"
	case RelayBeacon:
		return "beacon"
	case RelayAnnounce:
		return "announce"
	}
	return fmt.Sprintf("relay-kind-%d", uint8(k))
}

// ErrBadKind reports an out-of-range relay message kind.
var ErrBadKind = fmt.Errorf("wire: unknown relay message kind")

// RelayMsg is one relay-tier message. Decoding borrows Payload from the
// input buffer and never allocates.
type RelayMsg struct {
	Kind  RelayKind
	Flags uint8
	// From identifies the participant: the requester on unicast control
	// messages, the original speaker on relayed channel content.
	From uint64
	// Token carries per-kind scalar context (grant token, deny reason).
	Token uint32
	// Channel is the session channel (join acks, announces); zero when a
	// kind does not need it.
	Channel addr.Channel
	Payload []byte
}

// AppendTo appends the encoded message and returns the extended buffer.
func (m *RelayMsg) AppendTo(b []byte) []byte {
	var hdr [RelayHeaderSize]byte
	hdr[0] = TypeRelayMsg
	hdr[1] = relayVersion
	hdr[2] = uint8(m.Kind)
	hdr[3] = m.Flags
	binary.BigEndian.PutUint64(hdr[4:12], m.From)
	binary.BigEndian.PutUint32(hdr[12:16], m.Token)
	binary.BigEndian.PutUint32(hdr[16:20], uint32(m.Channel.S))
	suffix := m.Channel.E.ExpressSuffix()
	hdr[20] = byte(suffix >> 16)
	hdr[21] = byte(suffix >> 8)
	hdr[22] = byte(suffix)
	hdr[23] = 0
	b = append(b, hdr[:]...)
	return append(b, m.Payload...)
}

// Size returns the encoded size of the message.
func (m *RelayMsg) Size() int { return RelayHeaderSize + len(m.Payload) }

// DecodeFromBytes parses one datagram-delimited relay message. The payload
// borrows from b; the whole buffer is consumed.
func (m *RelayMsg) DecodeFromBytes(b []byte) (int, error) {
	if len(b) < RelayHeaderSize {
		return 0, ErrShort
	}
	if b[0] != TypeRelayMsg || b[1] != relayVersion {
		return 0, ErrBadType
	}
	k := RelayKind(b[2])
	if k == 0 || k > relayKindMax {
		return 0, ErrBadKind
	}
	if b[23] != 0 {
		return 0, fmt.Errorf("%w: non-zero reserved byte", ErrBadType)
	}
	m.Kind = k
	m.Flags = b[3]
	m.From = binary.BigEndian.Uint64(b[4:12])
	m.Token = binary.BigEndian.Uint32(b[12:16])
	s := addr.Addr(binary.BigEndian.Uint32(b[16:20]))
	suffix := uint32(b[20])<<16 | uint32(b[21])<<8 | uint32(b[22])
	m.Channel = addr.Channel{S: s, E: addr.ExpressAddr(suffix)}
	m.Payload = b[RelayHeaderSize:]
	return len(b), nil
}
