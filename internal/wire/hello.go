package wire

import (
	"encoding/binary"

	"repro/internal/addr"
)

// Hello opens (or re-opens) a resilient neighbor session on a TCP-mode ECMP
// connection. It is not one of the paper's three ECMP messages; it is the
// control-plane hardening that Section 3.2's failure semantics assume: "the
// count is subtracted from the sum provided upstream if the connection
// fails" and re-added on recovery. The downstream side sends a Hello as the
// first message of every connection, identifying itself with a stable
// SessionID and a strictly increasing Epoch. The upstream side uses the
// pair to tell a reconnect from a new neighbor: a known SessionID with a
// higher Epoch supersedes the previous connection, so any state the old
// (possibly half-open) connection contributed is withdrawn before the
// replayed per-channel counts of the new epoch are applied. A Hello with a
// stale or duplicate Epoch is rejected — it can only come from a connection
// that predates the one already accepted.
type Hello struct {
	// SessionID identifies the downstream neighbor across reconnects.
	// Zero is invalid (it would alias anonymous connections).
	SessionID uint64
	// Epoch increases by one on every connection attempt of the session.
	Epoch uint64
	// DataPort is the UDP port of the sender's data plane, on the same host
	// as the TCP connection's source address. A non-zero port asks the
	// receiving router to replicate channel data packets for this neighbor's
	// subscriptions to that address — this is how the data plane's egress
	// table is programmed by the same session machinery that carries Counts,
	// so a session reconnect reprograms it and a session failure clears it.
	// Zero means the neighbor has no data plane (control-only sessions).
	DataPort uint16
	// RelayPort, when non-zero, advertises that this session's host runs a
	// session relay (Section 4) reachable for participant unicast control
	// on that UDP port, serving the channel in RelayChannel. The router
	// records the advertisement in its relay registry, keyed by channel,
	// and answers CountRelayAddr4/CountRelayPort queries from it — relay
	// discovery rides the same session machinery as DataPort, so a
	// reconnect re-advertises and a session failure withdraws the entry.
	RelayPort    uint16
	RelayChannel addr.Channel
}

// TypeHello extends the self-delimiting message vocabulary; see Hello.
const TypeHello uint8 = 5

// helloVersion guards the layout; bump on incompatible change.
// Version 2 added DataPort; version 3 added RelayPort and RelayChannel.
const helloVersion uint8 = 3

// HelloSize is the encoded size: type, version, SessionID, Epoch, DataPort,
// RelayPort, RelayChannel (S + 24-bit E suffix).
const HelloSize = 2 + 8 + 8 + 2 + 2 + 7

// CountKeepalive is the TCP-mode per-neighbor keepalive, encoded as a
// network-layer Count so no extra message type is needed (Section 3.2: "a
// single per-neighbor keepalive is sufficient to detect a connection
// failure"). Routers refresh the sender's liveness and do not propagate it.
const CountKeepalive CountID = 0x8004

// AppendTo appends the encoded message and returns the extended buffer.
func (m *Hello) AppendTo(b []byte) []byte {
	b = append(b, TypeHello, helloVersion)
	b = binary.BigEndian.AppendUint64(b, m.SessionID)
	b = binary.BigEndian.AppendUint64(b, m.Epoch)
	b = binary.BigEndian.AppendUint16(b, m.DataPort)
	b = binary.BigEndian.AppendUint16(b, m.RelayPort)
	var ch [7]byte
	putChannel(ch[:], m.RelayChannel)
	return append(b, ch[:]...)
}

// DecodeFromBytes parses the message and returns the bytes consumed.
func (m *Hello) DecodeFromBytes(b []byte) (int, error) {
	if len(b) < HelloSize {
		return 0, ErrShort
	}
	if b[0] != TypeHello || b[1] != helloVersion {
		return 0, ErrBadType
	}
	m.SessionID = binary.BigEndian.Uint64(b[2:10])
	m.Epoch = binary.BigEndian.Uint64(b[10:18])
	m.DataPort = binary.BigEndian.Uint16(b[18:20])
	m.RelayPort = binary.BigEndian.Uint16(b[20:22])
	m.RelayChannel = getChannel(b[22:29])
	return HelloSize, nil
}
