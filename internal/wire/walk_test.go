package wire

import (
	"errors"
	"testing"

	"repro/internal/addr"
)

// fullSegment packs CountsPerSegment (92) Counts into one maximum-sized
// segment, the Section 5.3 unit the batcher ships upstream.
func fullSegment(tb testing.TB) []byte {
	tb.Helper()
	b := NewBatch()
	for i := 0; i < CountsPerSegment; i++ {
		m := Count{
			Channel: addr.Channel{S: addr.Addr(0x0a000001 + i), E: addr.ExpressAddr(uint32(i + 1))},
			CountID: CountSubscribers,
			Seq:     uint16(i),
			Value:   uint32(i * 3),
		}
		if !b.Add(&m) {
			tb.Fatalf("segment full after %d counts, want %d", i, CountsPerSegment)
		}
	}
	seg := make([]byte, len(b.Bytes()))
	copy(seg, b.Bytes())
	return seg
}

func TestWalkCountsMatchesDecodeBatch(t *testing.T) {
	seg := fullSegment(t)

	want, err := DecodeBatch(seg)
	if err != nil {
		t.Fatal(err)
	}
	var got []Count
	n, err := WalkCounts(seg, func(m Count) { got = append(got, m) })
	if err != nil {
		t.Fatal(err)
	}
	if n != len(want) || len(got) != len(want) {
		t.Fatalf("WalkCounts delivered %d (collected %d), DecodeBatch %d", n, len(got), len(want))
	}
	for i, m := range want {
		if *m.(*Count) != got[i] {
			t.Fatalf("count %d: walk %+v != batch %+v", i, got[i], *m.(*Count))
		}
	}
}

func TestWalkCountsSkipsNonCounts(t *testing.T) {
	var seg []byte
	seg = (&CountQuery{Channel: addr.Channel{S: 1, E: addr.ExpressAddr(2)}, CountID: CountSubscribers, Seq: 9}).AppendTo(seg)
	seg = (&Count{Channel: addr.Channel{S: 1, E: addr.ExpressAddr(2)}, CountID: CountSubscribers, Value: 5}).AppendTo(seg)
	seg = (&CountResponse{Channel: addr.Channel{S: 1, E: addr.ExpressAddr(2)}, Status: StatusOK}).AppendTo(seg)
	seg = (&Count{Channel: addr.Channel{S: 3, E: addr.ExpressAddr(4)}, CountID: CountSubscribers, Value: 7, HasKey: true, Key: Key{1, 2, 3}}).AppendTo(seg)

	var vals []uint32
	n, err := WalkCounts(seg, func(m Count) { vals = append(vals, m.Value) })
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 || len(vals) != 2 || vals[0] != 5 || vals[1] != 7 {
		t.Fatalf("got %d counts %v, want values [5 7]", n, vals)
	}
}

func TestWalkCountsMalformed(t *testing.T) {
	seg := (&Count{Channel: addr.Channel{S: 1, E: addr.ExpressAddr(2)}, Value: 1}).AppendTo(nil)

	// Unknown type byte after one valid Count: the valid prefix is delivered.
	bad := append(append([]byte{}, seg...), 0xff)
	n, err := WalkCounts(bad, func(Count) {})
	if !errors.Is(err, ErrBadType) || n != 1 {
		t.Fatalf("n=%d err=%v, want 1 ErrBadType", n, err)
	}

	// Truncated trailing Count.
	trunc := append(append([]byte{}, seg...), seg[:CountSize-1]...)
	n, err = WalkCounts(trunc, func(Count) {})
	if !errors.Is(err, ErrShort) || n != 1 {
		t.Fatalf("n=%d err=%v, want 1 ErrShort", n, err)
	}
}

// TestWalkCountsZeroAlloc is the acceptance check: decoding a full 92-Count
// segment through WalkCounts must not allocate.
func TestWalkCountsZeroAlloc(t *testing.T) {
	seg := fullSegment(t)
	var sum uint64
	allocs := testing.AllocsPerRun(100, func() {
		n, err := WalkCounts(seg, func(m Count) { sum += uint64(m.Value) })
		if err != nil || n != CountsPerSegment {
			t.Fatalf("n=%d err=%v", n, err)
		}
	})
	if allocs != 0 {
		t.Fatalf("WalkCounts allocated %.1f/op, want 0", allocs)
	}
	_ = sum
}

func BenchmarkWalkCountsSegment(b *testing.B) {
	seg := fullSegment(b)
	b.SetBytes(int64(len(seg)))
	b.ReportAllocs()
	var sum uint64
	for i := 0; i < b.N; i++ {
		WalkCounts(seg, func(m Count) { sum += uint64(m.Value) })
	}
	_ = sum
}

func BenchmarkDecodeBatchSegment(b *testing.B) {
	seg := fullSegment(b)
	b.SetBytes(int64(len(seg)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		DecodeBatch(seg)
	}
}
