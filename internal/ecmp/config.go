// Package ecmp implements the EXPRESS Count Management Protocol of Section
// 3: the single protocol that maintains per-channel distribution trees and
// supports source-directed counting and voting. Distribution-tree
// construction is the restricted case of counting subscribers per subtree.
//
// A Router is attached to a netsim.Node and speaks ECMP on every interface.
// Subscriptions are unsolicited Count messages routed toward the source by
// reverse-path forwarding over the unicast tables (internal/unicast);
// queries fan down the tree with per-hop timeout decrement; answers
// aggregate back up. TCP mode (core interfaces) uses keepalives instead of
// periodic refresh; UDP mode (edge interfaces) issues periodic queries like
// IGMP, with no report suppression (Section 3.2).
package ecmp

import (
	"repro/internal/netsim"
	"repro/internal/wire"
)

// Mode selects per-interface transport behaviour (Section 3.2: "A router
// can select either TCP or UDP mode for ECMP on each interface").
type Mode uint8

const (
	// ModeTCP keeps a reliable connection per neighbor: no per-channel
	// refresh, one keepalive per neighbor; counts are withdrawn when the
	// connection fails. Intended for core routers with few neighbors and
	// many channels.
	ModeTCP Mode = iota
	// ModeUDP periodically multicasts a CountQuery (analogous to an IGMP
	// query) and expires memberships that are not refreshed. Intended for
	// edge routers with many neighboring end hosts but fewer channels.
	ModeUDP
)

func (m Mode) String() string {
	if m == ModeUDP {
		return "udp"
	}
	return "tcp"
}

// Propagation selects how subscriber-count changes travel upstream.
type Propagation uint8

const (
	// PropagateTree sends upstream only the zero/non-zero transitions
	// needed for tree maintenance — the paper's minimum ("at a minimum, it
	// must record whether the count is zero or non-zero").
	PropagateTree Propagation = iota
	// PropagateEager sends every change of the subtree sum upstream;
	// maximal accuracy, maximal message cost. Used as the accuracy
	// reference in experiment E7.
	PropagateEager
	// PropagateProactive throttles updates with the Section 6 error
	// tolerance curve (see ProactiveParams).
	PropagateProactive
)

// ProactiveParams are the error-tolerance curve parameters of Section 6.
// A change is sent upstream when the relative error between the current
// subtree sum and the last advertised value exceeds
//
//	e(dt) = clamp(EMax · (−ln(dt/Tau)) / Alpha, 0, EMax)
//
// where dt is the time since the last upstream update. Tau is the
// x-intercept — the maximum delay until any change is transmitted upstream —
// and Alpha controls the rate of decay without changing the maximum
// tolerance. (The printed formula in the paper is OCR-mangled; this
// reconstruction matches every stated property — see DESIGN.md §2.)
type ProactiveParams struct {
	EMax  float64
	Alpha float64
	Tau   netsim.Time
}

// Tolerance evaluates the curve at elapsed time dt.
func (p ProactiveParams) Tolerance(dt netsim.Time) float64 {
	return toleranceCurve(p.EMax, p.Alpha, dt.Seconds(), p.Tau.Seconds())
}

// Config tunes a Router. The zero value is unusable; use DefaultConfig.
type Config struct {
	// QueryInterval is the UDP-mode general query period (Section 3.3's
	// all-channels query) and the neighbor-discovery period.
	QueryInterval netsim.Time
	// HoldTime is how long a UDP-mode membership survives without refresh.
	HoldTime netsim.Time
	// KeepaliveInterval is the TCP-mode per-neighbor keepalive period.
	KeepaliveInterval netsim.Time
	// KeepaliveMisses is how many missed keepalives declare a neighbor dead.
	KeepaliveMisses int
	// Hysteresis delays switching to a new upstream after a route change,
	// preventing route oscillation (Section 3.2). A failed upstream link
	// switches immediately.
	Hysteresis netsim.Time
	// HopRTT estimates the round-trip to the upstream neighbor; each hop
	// decrements a query's timeout by TimeoutRTTMult×HopRTT so children
	// time out and send partial replies before their parents (Section 3.1).
	HopRTT netsim.Time
	// TimeoutRTTMult is the "small multiple" of the RTT above.
	TimeoutRTTMult int
	// Propagation selects upstream count-update behaviour.
	Propagation Propagation
	// Proactive parameterises PropagateProactive.
	Proactive ProactiveParams
	// EnableNeighborDiscovery turns on the periodic CountNeighbors query of
	// Section 3.3.
	EnableNeighborDiscovery bool
}

// DefaultConfig returns production-flavoured defaults: 60 s query interval
// with a 150 s hold time (IGMP-like), 30 s keepalives with 3 misses, 500 ms
// route-change hysteresis, 10 ms per-hop RTT estimate with a 2× decrement.
func DefaultConfig() Config {
	return Config{
		QueryInterval:     60 * netsim.Second,
		HoldTime:          150 * netsim.Second,
		KeepaliveInterval: 30 * netsim.Second,
		KeepaliveMisses:   3,
		Hysteresis:        500 * netsim.Millisecond,
		HopRTT:            10 * netsim.Millisecond,
		TimeoutRTTMult:    2,
		Propagation:       PropagateTree,
		Proactive:         ProactiveParams{EMax: 0.25, Alpha: 4, Tau: 120 * netsim.Second},
	}
}

// Metrics counts protocol activity for the cost experiments.
type Metrics struct {
	CountsSent, CountsRecv           uint64
	QueriesSent, QueriesRecv         uint64
	ResponsesSent, ResponsesRecv     uint64
	Subscribes, Unsubscribes         uint64 // membership events processed
	AuthDenied                       uint64
	UpstreamSwitches                 uint64
	ProactiveSent                    uint64 // Counts sent due to tolerance breach
	KeepalivesSent, NeighborFailures uint64
}

// ControlMessages returns all control messages sent.
func (m *Metrics) ControlMessages() uint64 {
	return m.CountsSent + m.QueriesSent + m.ResponsesSent + m.KeepalivesSent
}

// reserved network-layer countId used to implement the ChannelKey service
// interface (Section 2.1) within ECMP's three-message vocabulary: a Count
// with this id and an attached key installs (Value=1) or removes (Value=0)
// the authoritative authenticator at the source's first-hop router.
const countKeyInstall wire.CountID = 0x8003

// keepaliveCountID is the TCP-mode per-neighbor keepalive, encoded as a
// network-layer Count so no fourth message type is needed. It aliases the
// shared wire constant so the simulated routers and the realnet sessions
// speak the same id.
const keepaliveCountID = wire.CountKeepalive
