package ecmp

import (
	"repro/internal/addr"
	"repro/internal/netsim"
	"repro/internal/wire"
)

// handleQuery processes a CountQuery (Section 3.1). Queries with Seq != 0
// are aggregation queries that fan down the tree and collect a summed
// Count; queries with Seq == 0 are membership-refresh solicitations (the
// UDP-mode periodic query and group-specific re-query of Section 3.2) that
// are answered with unsolicited Count retransmissions.
func (r *Router) handleQuery(ifindex int, from addr.Addr, q *wire.CountQuery) {
	switch q.CountID {
	case wire.CountNeighbors:
		// Neighbor discovery (Section 3.3): respond so the querier learns
		// we are an EXPRESS router, and learn the querier symmetrically.
		r.noteRouterNeighbor(ifindex, from)
		r.sendMsg(ifindex, from, &wire.Count{
			Channel: q.Channel, CountID: wire.CountNeighbors, Seq: q.Seq, Value: 1,
		})
		return
	case wire.CountAllChannels:
		// General query: retransmit membership for every channel we have
		// going upstream through this interface (Section 3.3).
		for _, c := range r.channels {
			if c.upIf != ifindex {
				continue
			}
			cs := c.counts[wire.CountSubscribers]
			if cs == nil || cs.total() == 0 {
				continue
			}
			r.sendMsg(ifindex, from, &wire.Count{
				Channel: c.id, CountID: wire.CountSubscribers, Value: cs.total(),
			})
		}
		return
	case keepaliveCountID, countKeyInstall:
		return
	}

	if q.Seq == 0 {
		// Channel-specific membership re-query: retransmit our Count if we
		// subscribe through this interface.
		c := r.channels[q.Channel]
		if c == nil || c.upIf != ifindex {
			return
		}
		cs := c.counts[wire.CountSubscribers]
		if cs == nil || cs.total() == 0 {
			return
		}
		r.sendMsg(ifindex, from, &wire.Count{
			Channel: c.id, CountID: wire.CountSubscribers, Value: cs.total(),
		})
		return
	}

	r.runAggregation(ifindex, from, q, nil)
}

// InitiateQuery originates an aggregation query at this router. Any router
// on the distribution tree may initiate a query without source cooperation
// (Section 3.1) — e.g. a transit-domain ingress counting the links used
// within its domain. cb receives the (best-efforts) total.
func (r *Router) InitiateQuery(ch addr.Channel, id wire.CountID, timeout netsim.Time, proactive bool, cb func(uint32)) {
	r.querySeq++
	if r.querySeq == 0 {
		r.querySeq = 1
	}
	q := &wire.CountQuery{
		Channel:   ch,
		CountID:   id,
		Seq:       r.querySeq,
		TimeoutMs: uint32(timeout / netsim.Millisecond),
		Proactive: proactive,
	}
	r.runAggregation(-1, 0, q, cb)
}

// runAggregation fans a query down the channel subtree and arranges to
// aggregate the replies.
func (r *Router) runAggregation(originIf int, originNbr addr.Addr, q *wire.CountQuery, cb func(uint32)) {
	c := r.channels[q.Channel]
	if q.Proactive && c != nil {
		c.proactive[q.CountID] = true
	}
	self := r.selfContribution(c, q.CountID)
	if c == nil {
		r.replyQuery(originIf, originNbr, q, self, cb)
		return
	}
	pk := pendKey{id: q.CountID, seq: q.Seq}
	if pq, dup := c.pending[pk]; dup {
		// A retransmitted query while the aggregation is still in flight:
		// the origin re-asked because our reply hasn't arrived. Dropping
		// the duplicate silently would starve the re-querying parent —
		// instead the origin is re-attached, and finalizeQuery sends the
		// eventual total to every attached origin.
		pq.extraOrigins = append(pq.extraOrigins, queryOrigin{
			ifindex: originIf, nbr: originNbr, cb: cb,
		})
		return
	}

	// The subscriber membership defines the subtree; network-layer counts
	// fan only to router neighbors (hosts never see them, Section 3.1).
	sub := c.counts[wire.CountSubscribers]
	targets := make(map[addr.Addr]int)
	if sub != nil {
		routersOnly := q.CountID.IsNetworkLayer() || q.CountID.IsLocal()
		for ifi, nbrs := range sub.vals {
			for nbr := range nbrs {
				if routersOnly && !r.isRouterNeighbor(ifi, nbr) {
					continue
				}
				targets[nbr] = ifi
			}
		}
	}

	dec := uint32(r.cfg.TimeoutRTTMult) * uint32(r.cfg.HopRTT/netsim.Millisecond)
	if q.TimeoutMs <= dec || len(targets) == 0 {
		r.replyQuery(originIf, originNbr, q, self, cb)
		return
	}
	fwdTimeout := q.TimeoutMs - dec

	pq := &pendingQuery{
		originIf:  originIf,
		originNbr: originNbr,
		cb:        cb,
		remaining: make(map[addr.Addr]bool, len(targets)),
		sum:       self,
		selfAdded: true,
		startedAt: r.node.Sim().Now(),
	}
	c.pending[pk] = pq
	r.queryFanout.Observe(uint64(len(targets)))
	for nbr, ifi := range targets {
		pq.remaining[nbr] = true
		r.sendMsg(ifi, nbr, &wire.CountQuery{
			Channel: q.Channel, CountID: q.CountID, Seq: q.Seq,
			TimeoutMs: fwdTimeout, Proactive: q.Proactive,
		})
	}
	cc, qq := c, *q
	pq.timer = r.node.Sim().After(netsim.Time(fwdTimeout)*netsim.Millisecond, func() {
		r.finalizeQuery(cc, pk, &qq) // partial reply before the parent times out
	})
}

// handleQueryReply accumulates a child's Count for an outstanding query.
func (r *Router) handleQueryReply(ifindex int, from addr.Addr, m *wire.Count) {
	if m.CountID == wire.CountNeighbors {
		r.noteRouterNeighbor(ifindex, from)
		return
	}
	c := r.channels[m.Channel]
	if c == nil {
		return
	}
	pk := pendKey{id: m.CountID, seq: m.Seq}
	pq := c.pending[pk]
	if pq == nil || pq.done || !pq.remaining[from] {
		return // late, duplicate, or unknown reply
	}
	delete(pq.remaining, from)
	pq.sum += m.Value
	if len(pq.remaining) == 0 {
		q := &wire.CountQuery{Channel: m.Channel, CountID: m.CountID, Seq: m.Seq}
		r.finalizeQuery(c, pk, q)
	}
}

// finalizeQuery sends the aggregated total to the query's origin.
func (r *Router) finalizeQuery(c *channel, pk pendKey, q *wire.CountQuery) {
	pq := c.pending[pk]
	if pq == nil || pq.done {
		return
	}
	pq.done = true
	if pq.timer != nil {
		pq.timer.Stop()
	}
	delete(c.pending, pk)
	if rtt := r.node.Sim().Now() - pq.startedAt; rtt >= 0 {
		r.queryRTT.Observe(uint64(rtt))
	}
	r.replyQuery(pq.originIf, pq.originNbr, q, pq.sum, pq.cb)
	for _, o := range pq.extraOrigins {
		r.replyQuery(o.ifindex, o.nbr, q, pq.sum, o.cb)
	}
	r.maybeDeleteChannel(c)
}

// replyQuery delivers a query result to its origin: upstream as a Count, or
// locally via callback.
func (r *Router) replyQuery(originIf int, originNbr addr.Addr, q *wire.CountQuery, total uint32, cb func(uint32)) {
	if originIf < 0 {
		if cb != nil {
			cb(total)
		}
		return
	}
	r.sendMsg(originIf, originNbr, &wire.Count{
		Channel: q.Channel, CountID: q.CountID, Seq: q.Seq, Value: total,
	})
}

// selfContribution is this router's own addend for a countId: local
// subscriptions for membership/application counts, tree resources for
// network-layer counts (Section 3.1: counting links used within a domain).
func (r *Router) selfContribution(c *channel, id wire.CountID) uint32 {
	if c == nil {
		return 0
	}
	if v, ok := r.domainLinksContribution(c, id); ok {
		return v
	}
	switch id {
	case wire.CountLinks:
		sub := c.counts[wire.CountSubscribers]
		if sub == nil {
			return 0
		}
		var links uint32
		for _, nbrs := range sub.vals {
			if len(nbrs) > 0 {
				links++ // one downstream tree link per populated interface
			}
		}
		return links
	case wire.CountTreeWeight:
		return 1 // one on-tree router
	default:
		if cs := c.counts[id]; cs != nil {
			return cs.local
		}
		return 0
	}
}

// sendChannelQuery issues a membership re-query on one interface after a
// leave, the IGMPv2-style behaviour of Section 3.2.
func (r *Router) sendChannelQuery(ifindex int, ch addr.Channel) {
	r.sendMsg(ifindex, addr.WellKnownECMP, &wire.CountQuery{
		Channel: ch, CountID: wire.CountSubscribers,
		TimeoutMs: uint32(r.cfg.HopRTT / netsim.Millisecond),
	})
}

// routerNeighborRounds is how many discovery rounds a router neighbor may
// miss before its entry expires: entries were timestamped but never aged, so
// a router that moved away (or a renumbered interface) stayed a "router
// neighbor" forever and kept receiving forwarded queries.
const routerNeighborRounds = 3

// routerNeighborTTL is the entry lifetime; 0 (no periodic queries) disables
// expiry, since nothing would ever refresh the entries.
func (r *Router) routerNeighborTTL() netsim.Time {
	if r.cfg.QueryInterval <= 0 {
		return 0
	}
	return routerNeighborRounds * r.cfg.QueryInterval
}

func (r *Router) noteRouterNeighbor(ifindex int, nbr addr.Addr) {
	m := r.nbrRouters[ifindex]
	if m == nil {
		m = make(map[addr.Addr]netsim.Time)
		r.nbrRouters[ifindex] = m
	}
	m[nbr] = r.node.Sim().Now()
}

func (r *Router) isRouterNeighbor(ifindex int, nbr addr.Addr) bool {
	seen, ok := r.nbrRouters[ifindex][nbr]
	if !ok {
		return false
	}
	if ttl := r.routerNeighborTTL(); ttl > 0 && r.node.Sim().Now()-seen > ttl {
		delete(r.nbrRouters[ifindex], nbr)
		return false
	}
	return true
}

// pruneRouterNeighbors drops entries that outlived the TTL; called from the
// discovery tick so departed routers also age out of interfaces nothing
// queries through anymore.
func (r *Router) pruneRouterNeighbors() {
	ttl := r.routerNeighborTTL()
	if ttl <= 0 {
		return
	}
	now := r.node.Sim().Now()
	for _, m := range r.nbrRouters {
		for nbr, seen := range m {
			if now-seen > ttl {
				delete(m, nbr)
			}
		}
	}
}

// RouterNeighbors returns the discovered router neighbors per interface,
// excluding entries past their TTL.
func (r *Router) RouterNeighbors() map[int][]addr.Addr {
	ttl := r.routerNeighborTTL()
	now := r.node.Sim().Now()
	out := make(map[int][]addr.Addr, len(r.nbrRouters))
	for ifi, m := range r.nbrRouters {
		for a, seen := range m {
			if ttl > 0 && now-seen > ttl {
				continue
			}
			out[ifi] = append(out[ifi], a)
		}
	}
	return out
}
