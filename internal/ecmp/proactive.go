package ecmp

import (
	"math"

	"repro/internal/netsim"
	"repro/internal/wire"
)

// Proactive counting (Section 6): rather than requiring the source to poll,
// routers push Count updates upstream whenever the relative error between
// the current subtree sum and the last advertised value exceeds a
// time-decaying tolerance. The curve is chosen "to allow fast convergence
// during periods of large change while using little bandwidth during
// periods of little change".

// toleranceCurve evaluates e(dt) = clamp(eMax·(−ln(dt/τ))/α, 0, eMax).
// See ProactiveParams for the provenance of this reconstruction.
func toleranceCurve(eMax, alpha, dt, tau float64) float64 {
	if dt <= 0 {
		return eMax
	}
	if tau <= 0 || alpha <= 0 {
		return 0
	}
	e := eMax * (-math.Log(dt / tau)) / alpha
	if e <= 0 {
		return 0 // includes the negative zero at dt == τ exactly
	}
	if e > eMax {
		return eMax
	}
	return e
}

// toleranceDeadline inverts the curve: the dt at which the tolerance decays
// to err, i.e. the latest moment an error of magnitude err may be held back.
func toleranceDeadline(eMax, alpha, err, tau float64) float64 {
	if err >= eMax {
		return 0
	}
	if err <= 0 {
		return tau
	}
	return tau * math.Exp(-alpha*err/eMax)
}

// relError is the symmetric relative error between the current sum and the
// advertised value: max(cur,adv)/min(cur,adv) − 1 (the paper's
// e_rel = max(c_adv/c_cur, c_cur/c_adv) form). A zero on one side only is
// an unbounded error.
func relError(cur, adv uint32) float64 {
	if cur == adv {
		return 0
	}
	if cur == 0 || adv == 0 {
		return math.Inf(1)
	}
	hi, lo := cur, adv
	if hi < lo {
		hi, lo = lo, hi
	}
	return float64(hi)/float64(lo) - 1
}

// proactiveEnabled reports whether (c, id) is under proactive maintenance:
// either requested by a Proactive CountQuery or, for the subscriber count,
// by router-wide configuration.
func (r *Router) proactiveEnabled(c *channel, id wire.CountID) bool {
	if c.proactive[id] {
		return true
	}
	return id == wire.CountSubscribers && r.cfg.Propagation == PropagateProactive
}

// maybeAdvertise applies the tolerance curve to the current sum for (c, id)
// and either sends an update upstream now or schedules a re-check for the
// moment the tolerance will have decayed to the current error.
func (r *Router) maybeAdvertise(c *channel, id wire.CountID) {
	if !r.proactiveEnabled(c, id) {
		return
	}
	if c.upIf < 0 {
		return
	}
	cs := c.count(id)
	total := cs.total()
	if cs.everAdv && total == cs.advertised {
		if cs.checkTimer != nil {
			cs.checkTimer.Stop()
			cs.checkTimer = nil
		}
		return
	}

	// Zero/non-zero transitions are tree-structure changes and always
	// propagate immediately: joins must reach the source for data to flow.
	p := r.cfg.Proactive
	err := math.Inf(1)
	if cs.everAdv {
		err = relError(total, cs.advertised)
	}
	now := r.node.Sim().Now()
	dt := now - cs.lastAdvAt
	if !cs.everAdv {
		dt = 0
	}
	if err > p.Tolerance(dt) {
		r.sendProactive(c, id, total)
		return
	}

	// Within tolerance: hold back, but re-check when the curve decays to
	// the current error (and in any case by τ, the x-intercept — "the
	// maximum delay until any change is transmitted upstream").
	deadline := cs.lastAdvAt + netsim.Time(toleranceDeadline(p.EMax, p.Alpha, err, p.Tau.Seconds())*float64(netsim.Second))
	if deadline <= now {
		r.sendProactive(c, id, total)
		return
	}
	if cs.checkTimer != nil {
		cs.checkTimer.Stop()
	}
	cc := c
	cs.checkTimer = r.node.Sim().At(deadline, func() {
		cs.checkTimer = nil
		r.maybeAdvertise(cc, id)
	})
}

func (r *Router) sendProactive(c *channel, id wire.CountID, total uint32) {
	cs := c.count(id)
	if cs.checkTimer != nil {
		cs.checkTimer.Stop()
		cs.checkTimer = nil
	}
	cs.advertised = total
	cs.everAdv = true
	cs.lastAdvAt = r.node.Sim().Now()
	r.metrics.ProactiveSent++
	r.sendMsg(c.upIf, c.upNbr, &wire.Count{Channel: c.id, CountID: id, Value: total})
}
