package ecmp

// Regression test for aggregation-query retransmission: a duplicate
// CountQuery (same pendKey) arriving while the aggregation is still in
// flight used to be dropped silently, so a parent that re-queried after
// losing the first reply never got an answer. The duplicate's origin is now
// re-attached and receives the eventual total. (testutil cannot be used
// here — it imports ecmp — so the topology is built by hand.)

import (
	"testing"

	"repro/internal/addr"
	"repro/internal/netsim"
	"repro/internal/unicast"
	"repro/internal/wire"
)

// captureHandler records ECMP payloads delivered to a bare node.
type captureHandler struct {
	counts []wire.Count
}

func (h *captureHandler) Receive(ifindex int, pkt *netsim.Packet) {
	if m, ok := pkt.Payload.(*wire.Count); ok {
		h.counts = append(h.counts, *m)
	}
}

// retransmitNet builds parent — router — child, with the router holding one
// channel whose only subscriber neighbor is the child, so an aggregation
// query from the parent fans exactly to the child.
func retransmitNet(t *testing.T) (sim *netsim.Sim, r *Router, parent, child *captureHandler, ifP, ifC int, pAddr, cAddr addr.Addr, ch addr.Channel) {
	t.Helper()
	sim = netsim.New(7)
	rn := sim.AddNode(addr.MustParse("10.0.0.1"), "r")
	pn := sim.AddNode(addr.MustParse("10.0.0.2"), "parent")
	cn := sim.AddNode(addr.MustParse("10.0.0.3"), "child")
	_, ifP, _ = sim.Connect(rn, pn, netsim.Millisecond, 0, 1)
	_, ifC, _ = sim.Connect(rn, cn, netsim.Millisecond, 0, 1)
	parent, child = &captureHandler{}, &captureHandler{}
	pn.Handler = parent
	cn.Handler = child

	rt := unicast.Compute(sim)
	r = NewRouter(rn, rt, DefaultConfig())

	ch = addr.Channel{S: addr.MustParse("171.64.1.1"), E: addr.ExpressAddr(9)}
	c := &channel{
		id:        ch,
		upIf:      ifP,
		upNbr:     pn.Addr,
		counts:    make(map[wire.CountID]*countState),
		pending:   make(map[pendKey]*pendingQuery),
		proactive: make(map[wire.CountID]bool),
	}
	c.counts[wire.CountSubscribers] = &countState{
		vals: map[int]map[addr.Addr]uint32{ifC: {cn.Addr: 3}},
	}
	r.channels[ch] = c
	return sim, r, parent, child, ifP, ifC, pn.Addr, cn.Addr, ch
}

func aggQuery(ch addr.Channel, seq uint16) *wire.CountQuery {
	return &wire.CountQuery{
		Channel: ch, CountID: wire.CountSubscribers, Seq: seq, TimeoutMs: 1000,
	}
}

// TestQueryRetransmissionGetsReply is the bugfix acceptance test: the
// parent's retransmitted query joins the in-flight aggregation and the
// final total is sent for both copies.
func TestQueryRetransmissionGetsReply(t *testing.T) {
	sim, r, parent, _, ifP, ifC, pAddr, cAddr, ch := retransmitNet(t)

	r.handleQuery(ifP, pAddr, aggQuery(ch, 7))
	if len(r.channels[ch].pending) != 1 {
		t.Fatal("aggregation did not pend")
	}
	// The retransmission arrives while the child's answer is outstanding.
	r.handleQuery(ifP, pAddr, aggQuery(ch, 7))
	if got := len(r.channels[ch].pending); got != 1 {
		t.Fatalf("pending aggregations = %d, want 1 (dup must join, not fork)", got)
	}

	// The child answers; the aggregation completes.
	r.handleQueryReply(ifC, cAddr, &wire.Count{
		Channel: ch, CountID: wire.CountSubscribers, Seq: 7, Value: 5,
	})
	sim.Run()

	if len(parent.counts) != 2 {
		t.Fatalf("parent received %d replies, want 2 (original + retransmission)", len(parent.counts))
	}
	for i, m := range parent.counts {
		if m.Seq != 7 || m.Value != 5 {
			t.Errorf("reply %d = seq %d value %d, want seq 7 value 5", i, m.Seq, m.Value)
		}
	}
	if rtt := r.queryRTT.Snapshot(); rtt.Count != 1 {
		t.Errorf("query RTT observations = %d, want 1", rtt.Count)
	}
	if fo := r.queryFanout.Snapshot(); fo.Count != 1 || fo.Max != 1 {
		t.Errorf("fanout histogram = %+v, want one observation of 1", fo)
	}
}

// TestQueryRetransmissionAfterFinalize: a duplicate arriving after the
// aggregation completed is a fresh aggregation (the pending entry is gone),
// not a stale re-reply — both copies still get answers.
func TestQueryRetransmissionAfterFinalize(t *testing.T) {
	sim, r, parent, _, ifP, ifC, pAddr, cAddr, ch := retransmitNet(t)

	r.handleQuery(ifP, pAddr, aggQuery(ch, 9))
	r.handleQueryReply(ifC, cAddr, &wire.Count{
		Channel: ch, CountID: wire.CountSubscribers, Seq: 9, Value: 4,
	})
	// Retransmission after the first aggregation finished.
	r.handleQuery(ifP, pAddr, aggQuery(ch, 9))
	r.handleQueryReply(ifC, cAddr, &wire.Count{
		Channel: ch, CountID: wire.CountSubscribers, Seq: 9, Value: 4,
	})
	sim.Run()

	if len(parent.counts) != 2 {
		t.Fatalf("parent received %d replies, want 2", len(parent.counts))
	}
}

// TestLocalQueryRetransmissionCallback covers the locally-originated form:
// a second InitiateQuery colliding on the same pendKey must still fire its
// callback with the aggregated total.
func TestLocalQueryRetransmissionCallback(t *testing.T) {
	sim, r, _, _, _, ifC, _, cAddr, ch := retransmitNet(t)

	var got []uint32
	q := aggQuery(ch, 11)
	r.runAggregation(-1, 0, q, func(v uint32) { got = append(got, v) })
	r.runAggregation(-1, 0, q, func(v uint32) { got = append(got, v) })
	r.handleQueryReply(ifC, cAddr, &wire.Count{
		Channel: ch, CountID: wire.CountSubscribers, Seq: 11, Value: 6,
	})
	sim.Run()

	if len(got) != 2 || got[0] != 6 || got[1] != 6 {
		t.Fatalf("callbacks fired with %v, want [6 6]", got)
	}
}
