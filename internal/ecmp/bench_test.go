package ecmp_test

import (
	"testing"

	"repro/internal/ecmp"
	"repro/internal/express"
	"repro/internal/netsim"
	"repro/internal/testutil"
	"repro/internal/wire"
)

func quietConfig() ecmp.Config {
	cfg := ecmp.DefaultConfig()
	cfg.QueryInterval = 3600 * netsim.Second
	cfg.KeepaliveInterval = 3600 * netsim.Second
	return cfg
}

// BenchmarkSubscribeUnsubscribe measures a full membership cycle across a
// 3-router path: host Count, per-hop processing, FIB updates, teardown.
func BenchmarkSubscribeUnsubscribe(b *testing.B) {
	n := testutil.LineNet(90, 3, quietConfig())
	defer n.Close()
	src := n.AddSource(n.Routers[0])
	sub := n.AddSubscriber(n.Routers[2])
	n.Start()
	ch := testutil.MustChannel(src)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sub.Subscribe(ch, nil, nil)
		sub.Unsubscribe(ch)
		n.Sim.RunUntil(n.Sim.Now() + 200*netsim.Millisecond)
	}
	if n.TotalFIBEntries() != 0 {
		b.Fatal("state left behind")
	}
}

// BenchmarkTreeDelivery measures one datagram delivered through a depth-3
// tree to 8 subscribers, end to end in the simulator.
func BenchmarkTreeDelivery(b *testing.B) {
	n := testutil.TreeNet(92, 3, quietConfig())
	defer n.Close()
	src := n.AddSource(n.Routers[0])
	leaves := n.Routers[len(n.Routers)-8:]
	subs := make([]*express.Subscriber, 0, 8)
	for _, leaf := range leaves {
		subs = append(subs, n.AddSubscriber(leaf))
	}
	n.Start()
	ch := testutil.MustChannel(src)
	n.Sim.At(0, func() {
		for _, s := range subs {
			s.Subscribe(ch, nil, nil)
		}
	})
	n.Sim.RunUntil(netsim.Second)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = src.Send(ch, 1316, nil)
		n.Sim.RunUntil(n.Sim.Now() + 100*netsim.Millisecond)
	}
	b.StopTimer()
	var delivered uint64
	for _, s := range subs {
		delivered += s.Delivered
	}
	if delivered != uint64(8*b.N) {
		b.Fatalf("delivered %d, want %d", delivered, 8*b.N)
	}
	b.ReportMetric(8, "deliveries/op")
}

// BenchmarkCountQueryTree measures one full CountQuery aggregation round
// over a depth-4 tree with 16 subscribers.
func BenchmarkCountQueryTree(b *testing.B) {
	n := testutil.TreeNet(94, 4, quietConfig())
	defer n.Close()
	src := n.AddSource(n.Routers[0])
	leaves := n.Routers[len(n.Routers)-16:]
	subs := make([]*express.Subscriber, 0, 16)
	for _, leaf := range leaves {
		subs = append(subs, n.AddSubscriber(leaf))
	}
	n.Start()
	ch := testutil.MustChannel(src)
	n.Sim.At(0, func() {
		for _, s := range subs {
			s.Subscribe(ch, nil, nil)
		}
	})
	n.Sim.RunUntil(netsim.Second)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var got uint32
		src.CountQuery(ch, wire.CountSubscribers, 2*netsim.Second, false,
			func(v uint32, ok bool) { got = v })
		n.Sim.RunUntil(n.Sim.Now() + 3*netsim.Second)
		if got != 16 {
			b.Fatalf("count = %d, want 16", got)
		}
	}
}

// BenchmarkChannelScale measures router state growth with channel count:
// the Section 5 claim that "it appears feasible for a router to support
// millions of multicast channels", in miniature.
func BenchmarkChannelScale(b *testing.B) {
	n := testutil.LineNet(95, 2, quietConfig())
	defer n.Close()
	src := n.AddSource(n.Routers[0])
	sub := n.AddSubscriber(n.Routers[1])
	n.Start()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ch := testutil.MustChannel(src)
		sub.Subscribe(ch, nil, nil)
		if i%256 == 0 {
			n.Sim.RunUntil(n.Sim.Now() + 10*netsim.Millisecond)
		}
	}
	n.Sim.RunUntil(n.Sim.Now() + netsim.Second)
	b.StopTimer()
	b.ReportMetric(float64(n.Routers[1].FIB().MemoryBytes())/float64(b.N), "FIB-bytes/channel")
}
