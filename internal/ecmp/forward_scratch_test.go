package ecmp

// Internal-package tests for the data-forwarding fast path: the oifScratch
// buffer must retain its capacity across packets. (testutil cannot be used
// here — it imports ecmp — so the topology is built by hand.)

import (
	"testing"

	"repro/internal/addr"
	"repro/internal/fib"
	"repro/internal/netsim"
	"repro/internal/unicast"
)

// scratchNet builds one router with an upstream interface and two
// downstream interfaces, and a FIB entry fanning a channel out both.
func scratchNet() (*netsim.Sim, *Router, int, *netsim.Packet, []*netsim.Node) {
	sim := netsim.New(1)
	rn := sim.AddNode(addr.MustParse("10.0.0.1"), "r")
	up := sim.AddNode(addr.MustParse("10.0.0.2"), "up")
	d1 := sim.AddNode(addr.MustParse("10.0.0.3"), "d1")
	d2 := sim.AddNode(addr.MustParse("10.0.0.4"), "d2")
	_, _, iif := sim.Connect(up, rn, netsim.Millisecond, 0, 1)
	_, oif1, _ := sim.Connect(rn, d1, netsim.Millisecond, 0, 1)
	_, oif2, _ := sim.Connect(rn, d2, netsim.Millisecond, 0, 1)

	rt := unicast.Compute(sim)
	r := NewRouter(rn, rt, DefaultConfig())

	src := addr.MustParse("171.64.1.1")
	e := addr.ExpressAddr(9)
	fe := r.fib.Ensure(fib.Key{S: src, G: e})
	fe.IIF = iif
	fe.SetOIF(oif1)
	fe.SetOIF(oif2)

	pkt := &netsim.Packet{Src: src, Dst: e, Proto: netsim.ProtoData, TTL: 64, Size: 1316}
	return sim, r, iif, pkt, []*netsim.Node{d1, d2}
}

// TestForwardDataScratchRetained is the regression test for the
// forwarding-path allocation bug: fib.Forward grows the scratch slice, but
// the result was never stored back into r.oifScratch, so the buffer stayed
// nil forever and every multi-interface forward reallocated.
func TestForwardDataScratchRetained(t *testing.T) {
	sim, r, iif, pkt, dsts := scratchNet()

	r.forwardData(iif, pkt)
	if cap(r.oifScratch) == 0 {
		t.Fatal("oifScratch capacity is 0 after a multi-interface forward; grown slice not stored back")
	}
	c0 := cap(r.oifScratch)
	for i := 0; i < 100; i++ {
		r.forwardData(iif, pkt)
	}
	if cap(r.oifScratch) != c0 {
		t.Errorf("oifScratch capacity changed %d -> %d across identical forwards", c0, cap(r.oifScratch))
	}

	// The allocs-per-op assertion: forwarding with a warm scratch must
	// allocate strictly less than the buggy behaviour (scratch lost every
	// packet), which pays one slice allocation per forward.
	warm := testing.AllocsPerRun(100, func() { r.forwardData(iif, pkt) })
	cold := testing.AllocsPerRun(100, func() {
		r.oifScratch = nil // simulate the bug: capacity never retained
		r.forwardData(iif, pkt)
	})
	if warm >= cold {
		t.Errorf("warm-scratch forward allocates %.1f/op, not less than cold %.1f/op", warm, cold)
	}

	sim.Run()
	for _, d := range dsts {
		if d.Delivered == 0 {
			t.Errorf("downstream node %s received nothing", d.Name)
		}
	}
}

// BenchmarkForwardDataAllocs reports allocations on the per-packet
// forwarding path (scratch reuse keeps the oif expansion allocation-free;
// the remaining allocs are the packet clone and simulator events).
func BenchmarkForwardDataAllocs(b *testing.B) {
	sim, r, iif, pkt, _ := scratchNet()
	r.forwardData(iif, pkt) // warm the scratch
	sim.Run()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.forwardData(iif, pkt)
	}
}
