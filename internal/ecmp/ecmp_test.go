package ecmp_test

import (
	"testing"

	"repro/internal/ecmp"
	"repro/internal/express"
	"repro/internal/netsim"
	"repro/internal/testutil"
	"repro/internal/wire"
)

// TestTCPKeepaliveFailureWithdrawsCounts verifies Section 3.2: "The
// associated count is subtracted from the sum provided upstream if the
// connection fails ... a single per-neighbor keepalive is sufficient to
// detect a connection failure."
func TestTCPKeepaliveFailureWithdrawsCounts(t *testing.T) {
	cfg := ecmp.DefaultConfig()
	cfg.KeepaliveInterval = 1 * netsim.Second
	cfg.KeepaliveMisses = 2
	cfg.Propagation = ecmp.PropagateEager
	cfg.QueryInterval = 3600 * netsim.Second // isolate the keepalive path
	cfg.HoldTime = 3600 * netsim.Second
	n := testutil.LineNet(61, 3, cfg)
	src := n.AddSource(n.Routers[0])
	sub := n.AddSubscriber(n.Routers[2])
	n.Start()

	ch := testutil.MustChannel(src)
	n.Sim.At(0, func() { sub.Subscribe(ch, nil, nil) })
	n.Sim.RunUntil(2 * netsim.Second)
	if got := n.Routers[0].SubscriberCount(ch); got != 1 {
		t.Fatalf("subscriber count before failure = %d, want 1", got)
	}

	// Sever r1–r2 *silently*: the link black-holes everything but no
	// LinkChange fires. Only r1's missed keepalives can detect the
	// failure.
	var l *netsim.Link
	for _, link := range n.Sim.Links() {
		a, _, b, _ := link.Ends()
		if a == n.Routers[1].Node() && b == n.Routers[2].Node() {
			l = link
		}
	}
	l.SetSilentFailure(true)
	n.Sim.RunUntil(30 * netsim.Second)

	if got := n.Routers[1].Metrics().NeighborFailures; got == 0 {
		t.Error("router 1 never declared its silent neighbor dead")
	}
	if got := n.Routers[0].SubscriberCount(ch); got != 0 {
		t.Errorf("subscriber count after neighbor failure = %d, want 0 (withdrawn upstream)", got)
	}
	if n.Routers[1].NumChannels() != 0 {
		t.Errorf("router 1 still holds channel state after withdrawal")
	}
}

// TestUDPMembershipExpiry verifies the IGMP-like UDP mode: membership not
// refreshed by general-query responses times out.
func TestUDPMembershipExpiry(t *testing.T) {
	cfg := ecmp.DefaultConfig()
	cfg.QueryInterval = 2 * netsim.Second
	cfg.HoldTime = 5 * netsim.Second
	n := testutil.LineNet(62, 2, cfg)
	src := n.AddSource(n.Routers[0])
	sub := n.AddSubscriber(n.Routers[1])
	n.Start()

	ch := testutil.MustChannel(src)
	n.Sim.At(0, func() { sub.Subscribe(ch, nil, nil) })
	n.Sim.RunUntil(20 * netsim.Second)
	// The host answers the periodic general queries, so membership lives.
	if n.Routers[1].SubscriberCount(ch) != 1 {
		t.Fatal("membership expired despite refreshes")
	}

	// Silence the host by dropping its edge link: no more refresh
	// responses; the membership must expire within HoldTime + interval.
	for _, l := range n.Sim.Links() {
		a, _, b, _ := l.Ends()
		if a == sub.Node() || b == sub.Node() {
			l.SetUp(false)
		}
	}
	n.Sim.RunUntil(40 * netsim.Second)
	if got := n.Routers[1].SubscriberCount(ch); got != 0 {
		t.Errorf("membership = %d after host went silent, want 0", got)
	}
}

// TestTopologyChangeMovesUpstream verifies Section 3.2: "When a topology
// change causes a router to select a different upstream router for a
// channel, it sends a current Count message to the new upstream router and
// a zero Count message to the old upstream router."
func TestTopologyChangeMovesUpstream(t *testing.T) {
	cfg := ecmp.DefaultConfig()
	cfg.Propagation = ecmp.PropagateEager
	// Square: r0-r1-r3 and r0-r2-r3; r1 preferred by tie-break.
	sim := netsim.New(63)
	rs := netsim.AddRouters(sim, 4)
	l01, _, _ := sim.Connect(rs[0], rs[1], netsim.DefaultWAN.Delay, netsim.DefaultWAN.Bps, 1)
	sim.Connect(rs[1], rs[3], netsim.DefaultWAN.Delay, netsim.DefaultWAN.Bps, 1)
	sim.Connect(rs[0], rs[2], netsim.DefaultWAN.Delay, netsim.DefaultWAN.Bps, 1)
	sim.Connect(rs[2], rs[3], netsim.DefaultWAN.Delay, netsim.DefaultWAN.Bps, 1)
	n := testutil.NewNet(sim, rs, cfg)
	src := n.AddSource(n.RouterOf[rs[0].ID])
	sub := n.AddSubscriber(n.RouterOf[rs[3].ID])
	n.Start()

	ch := testutil.MustChannel(src)
	n.Sim.At(0, func() { sub.Subscribe(ch, nil, nil) })
	n.Sim.RunUntil(2 * netsim.Second)

	// Tree should run r3→r1→r0 (r1 wins the tie-break).
	if n.RouterOf[rs[1].ID].NumChannels() != 1 {
		t.Fatal("expected the tree to pass through r1")
	}

	// Kill r0–r1: r1's path to the source now detours; r3 re-selects r2
	// as its upstream; data must still flow.
	l01.SetUp(false)
	n.Sim.RunUntil(10 * netsim.Second)

	n.Sim.After(0, func() { _ = src.Send(ch, 500, nil) })
	n.Sim.RunUntil(n.Sim.Now() + 2*netsim.Second)
	if sub.Delivered != 1 {
		t.Errorf("delivered after reroute = %d, want 1", sub.Delivered)
	}
	switches := n.RouterOf[rs[3].ID].Metrics().UpstreamSwitches
	if switches == 0 {
		t.Error("r3 never switched upstream after the topology change")
	}
	if got := n.RouterOf[rs[0].ID].SubscriberCount(ch); got != 1 {
		t.Errorf("first-hop count after reroute = %d, want 1", got)
	}
}

// TestHysteresisDampsRouteFlap verifies the Section 3.2 hysteresis: a
// link that flaps down and up within the damping window causes no
// upstream switch.
func TestHysteresisDampsRouteFlap(t *testing.T) {
	cfg := ecmp.DefaultConfig()
	cfg.Hysteresis = 2 * netsim.Second
	sim := netsim.New(64)
	rs := netsim.AddRouters(sim, 4)
	sim.Connect(rs[0], rs[1], netsim.DefaultWAN.Delay, netsim.DefaultWAN.Bps, 1)
	l13, _, _ := sim.Connect(rs[1], rs[3], netsim.DefaultWAN.Delay, netsim.DefaultWAN.Bps, 1)
	sim.Connect(rs[0], rs[2], netsim.DefaultWAN.Delay, netsim.DefaultWAN.Bps, 1)
	sim.Connect(rs[2], rs[3], netsim.DefaultWAN.Delay, netsim.DefaultWAN.Bps, 1)
	n := testutil.NewNet(sim, rs, cfg)
	src := n.AddSource(n.RouterOf[rs[0].ID])
	sub := n.AddSubscriber(n.RouterOf[rs[3].ID])
	n.Start()

	ch := testutil.MustChannel(src)
	n.Sim.At(0, func() { sub.Subscribe(ch, nil, nil) })
	n.Sim.RunUntil(2 * netsim.Second)

	// Flap a link r3 does NOT depend on for its current upstream (r1–r3
	// is its upstream link — flapping it forces an immediate switch, so
	// flap the alternative instead: r2–r3 going down/up must cause no
	// switch at all).
	var l23 *netsim.Link
	for _, l := range sim.Links() {
		a, _, b, _ := l.Ends()
		if a == rs[2] && b == rs[3] {
			l23 = l
		}
	}
	l23.SetUp(false)
	n.Sim.RunUntil(n.Sim.Now() + 500*netsim.Millisecond)
	l23.SetUp(true)
	n.Sim.RunUntil(n.Sim.Now() + 5*netsim.Second)
	if got := n.RouterOf[rs[3].ID].Metrics().UpstreamSwitches; got != 0 {
		t.Errorf("switches after irrelevant flap = %d, want 0", got)
	}

	// Now flap r1–r3 down/up quickly: the immediate down-switch is
	// unavoidable (the link died), but the flap back must be damped — no
	// second switch before hysteresis expires, and the tree must settle.
	l13.SetUp(false)
	n.Sim.RunUntil(n.Sim.Now() + 100*netsim.Millisecond)
	l13.SetUp(true)
	n.Sim.RunUntil(n.Sim.Now() + 10*netsim.Second)

	n.Sim.After(0, func() { _ = src.Send(ch, 500, nil) })
	n.Sim.RunUntil(n.Sim.Now() + 2*netsim.Second)
	if sub.Delivered != 1 {
		t.Errorf("delivered after flap = %d, want 1", sub.Delivered)
	}
}

// TestNetworkLayerLinkCount verifies the Section 3.1 transit-domain use:
// any on-tree router can count the distribution-tree links below it, and
// the query is never forwarded to leaf hosts.
func TestNetworkLayerLinkCount(t *testing.T) {
	cfg := ecmp.DefaultConfig()
	cfg.EnableNeighborDiscovery = true
	cfg.QueryInterval = netsim.Second // discover neighbors quickly
	n := testutil.TreeNet(65, 2, cfg) // 7 routers, 4 leaves
	src := n.AddSource(n.Routers[0])
	leaves := n.Routers[3:]
	var subs []*express.Subscriber
	for _, leaf := range leaves {
		subs = append(subs, n.AddSubscriber(leaf))
	}
	n.Start()

	ch := testutil.MustChannel(src)
	n.Sim.At(0, func() {
		for _, s := range subs {
			s.Subscribe(ch, nil, nil)
		}
	})
	n.Sim.RunUntil(5 * netsim.Second) // let neighbor discovery run

	// The root router counts tree links: itself (2 downstream) + two mid
	// routers (2 each) = 6 router-to-router/host links... links here are
	// "downstream interfaces with subscribers" per on-tree router, but
	// host edges are excluded because hosts are not discovered routers.
	var got uint32
	var replied bool
	n.Sim.After(0, func() {
		n.Routers[0].InitiateQuery(ch, wire.CountLinks, 2*netsim.Second, false, func(v uint32) {
			got, replied = v, true
		})
	})
	n.Sim.RunUntil(n.Sim.Now() + 5*netsim.Second)
	if !replied {
		t.Fatal("link-count query never completed")
	}
	// Root: 2 links down; r1, r2: host edges each with subscribers count
	// as downstream interfaces at the leaf routers... the exact expected
	// value: root contributes 2 (toward r1, r2); r1 and r2 contribute 2
	// each (toward their leaf routers); leaf routers contribute 1 each
	// (their host edge) but are only queried if they are *router*
	// neighbors — they are. Total = 2 + 2 + 2 + 4×1 = 10.
	if got != 10 {
		t.Errorf("link count = %d, want 10", got)
	}
}

// TestTreeVsEagerControlCost is the propagation-mode ablation: tree-only
// propagation sends strictly fewer Counts than eager under churn beyond
// the first member.
func TestTreeVsEagerControlCost(t *testing.T) {
	run := func(p ecmp.Propagation) uint64 {
		cfg := ecmp.DefaultConfig()
		cfg.Propagation = p
		cfg.QueryInterval = 3600 * netsim.Second
		cfg.KeepaliveInterval = 3600 * netsim.Second
		n := testutil.LineNet(66, 4, cfg)
		defer n.Close()
		src := n.AddSource(n.Routers[0])
		subs := make([]*express.Subscriber, 8)
		for i := range subs {
			subs[i] = n.AddSubscriber(n.Routers[3])
		}
		n.Start()
		ch := testutil.MustChannel(src)
		for i, s := range subs {
			ss, d := s, netsim.Time(i)*100*netsim.Millisecond
			n.Sim.At(d, func() { ss.Subscribe(ch, nil, nil) })
		}
		n.Sim.RunUntil(5 * netsim.Second)
		return n.TotalControlMessages()
	}
	tree, eager := run(ecmp.PropagateTree), run(ecmp.PropagateEager)
	if tree >= eager {
		t.Errorf("tree-only control (%d) not cheaper than eager (%d)", tree, eager)
	}
	// Tree-only: 8 host Counts reach r3, but only the first propagates the
	// 3 hops to the source.
	if tree > 8 {
		t.Errorf("tree-only sent %d router messages, want <= 8", tree)
	}
}

// TestAllChannelsGeneralQuery verifies Section 3.3: a downstream router
// answers the general query by retransmitting Counts for every channel it
// has going upstream through that interface.
func TestAllChannelsGeneralQuery(t *testing.T) {
	cfg := ecmp.DefaultConfig()
	cfg.QueryInterval = 2 * netsim.Second
	cfg.HoldTime = 5 * netsim.Second
	// Make the router-router iface UDP mode so refresh flows between
	// routers, exercising the router-side general-query answer.
	n := testutil.LineNet(67, 3, cfg)
	for _, r := range n.Routers {
		for i := 0; i < r.Node().NumIfaces(); i++ {
			r.SetIfaceMode(i, ecmp.ModeUDP)
		}
	}
	src := n.AddSource(n.Routers[0])
	sub := n.AddSubscriber(n.Routers[2])
	n.Start()

	ch := testutil.MustChannel(src)
	n.Sim.At(0, func() { sub.Subscribe(ch, nil, nil) })
	// Run far past several hold times: the membership must persist only
	// because of general-query refreshes at every level.
	n.Sim.RunUntil(30 * netsim.Second)
	if n.Routers[0].SubscriberCount(ch) != 1 {
		t.Error("membership expired despite general-query refresh chain")
	}
	n.Sim.After(0, func() { _ = src.Send(ch, 500, nil) })
	n.Sim.RunUntil(n.Sim.Now() + netsim.Second)
	if sub.Delivered != 1 {
		t.Errorf("delivered = %d, want 1", sub.Delivered)
	}
}
