package ecmp

import "repro/internal/wire"

// Transit-domain accounting (Section 3.1): "in a large-scale channel that
// spans many administrative domains, the ingress router for transit domain
// D might initiate a query to count the number of links used within D.
// This information could be used to make inter-domain settlements or for
// resource planning. A sub-range of CountIds is designated for
// locally-defined use."
//
// The locally-defined sub-range is carved as LocalCountBase+domainID:
// a query with that countId counts distribution-tree links only at routers
// whose configured domain matches. The query still traverses the whole
// subtree (links of other domains contribute zero), so one query from the
// ingress yields exactly D's share of the tree.

// SetDomain assigns the router to an administrative domain (0 = none).
func (r *Router) SetDomain(id uint16) { r.domain = id }

// Domain returns the router's administrative domain.
func (r *Router) Domain() uint16 { return r.domain }

// DomainLinksCountID returns the locally-defined countId that counts tree
// links within the given domain.
func DomainLinksCountID(domain uint16) wire.CountID {
	return wire.LocalCountBase + wire.CountID(domain)
}

// domainLinksContribution answers a domain-scoped link count: this
// router's downstream tree links if it belongs to the queried domain,
// zero otherwise.
func (r *Router) domainLinksContribution(c *channel, id wire.CountID) (uint32, bool) {
	if id < wire.LocalCountBase || id > wire.LocalCountLast {
		return 0, false
	}
	if uint16(id-wire.LocalCountBase) != r.domain || r.domain == 0 {
		return 0, true // locally-defined id, but not our domain
	}
	sub := c.counts[wire.CountSubscribers]
	if sub == nil {
		return 0, true
	}
	var links uint32
	for _, nbrs := range sub.vals {
		if len(nbrs) > 0 {
			links++
		}
	}
	return links, true
}
