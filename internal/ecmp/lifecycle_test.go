package ecmp

// Internal-package tests for the router lifecycle fixes: Close must stop the
// periodic reschedule chains (they used to fire forever, bloating any
// long-lived simulation that built many routers), and discovered router
// neighbors must age out instead of living forever on a stale timestamp.

import (
	"testing"

	"repro/internal/addr"
	"repro/internal/netsim"
	"repro/internal/unicast"
)

// tickNet builds two connected ECMP routers with periodic machinery armed:
// a UDP-mode interface (query tick), TCP keepalives, and neighbor discovery.
func tickNet(cfg Config) (*netsim.Sim, *Router, *Router) {
	sim := netsim.New(1)
	an := sim.AddNode(addr.MustParse("10.0.0.1"), "a")
	bn := sim.AddNode(addr.MustParse("10.0.0.2"), "b")
	_, aIf, _ := sim.Connect(an, bn, netsim.Millisecond, 0, 1)
	rt := unicast.Compute(sim)
	a := NewRouter(an, rt, cfg)
	b := NewRouter(bn, rt, cfg)
	a.SetIfaceMode(aIf, ModeUDP)
	return sim, a, b
}

// TestRouterCloseStopsTimers verifies Close freezes a router: no more
// periodic queries or keepalives, and — once every router on the simulator
// is closed — the event queue drains completely instead of rescheduling to
// the end of time.
func TestRouterCloseStopsTimers(t *testing.T) {
	cfg := DefaultConfig()
	cfg.EnableNeighborDiscovery = true
	sim, a, b := tickNet(cfg)
	a.Start()
	b.Start()

	sim.RunUntil(5 * cfg.QueryInterval)
	// a's interface runs UDP mode (periodic queries); b's runs the TCP
	// default (keepalives).
	before, beforeB := a.Metrics(), b.Metrics()
	if before.QueriesSent == 0 {
		t.Fatal("no periodic queries before Close; the fixture is wrong")
	}
	if beforeB.KeepalivesSent == 0 {
		t.Fatal("no keepalives before Close; the fixture is wrong")
	}

	a.Close()
	b.Close()
	sim.RunUntil(50 * cfg.QueryInterval)
	after, afterB := a.Metrics(), b.Metrics()
	if after.QueriesSent != before.QueriesSent {
		t.Errorf("queries kept flowing after Close: %d -> %d", before.QueriesSent, after.QueriesSent)
	}
	if afterB.KeepalivesSent != beforeB.KeepalivesSent {
		t.Errorf("keepalives kept flowing after Close: %d -> %d", beforeB.KeepalivesSent, afterB.KeepalivesSent)
	}
	if p := sim.Pending(); p != 0 {
		t.Errorf("%d events still pending after all routers closed, want 0", p)
	}
	a.Close() // idempotent
}

// TestRouterNeighborAging verifies discovered router neighbors expire after
// routerNeighborRounds missed discovery intervals — both lazily on lookup
// and via the periodic prune — and that a refresh restarts the clock.
func TestRouterNeighborAging(t *testing.T) {
	cfg := DefaultConfig()
	sim, a, _ := tickNet(cfg)
	nbr := addr.MustParse("10.0.0.2")
	ttl := routerNeighborRounds * cfg.QueryInterval

	a.noteRouterNeighbor(0, nbr)
	if !a.isRouterNeighbor(0, nbr) {
		t.Fatal("fresh entry not recognized")
	}
	if got := a.RouterNeighbors()[0]; len(got) != 1 {
		t.Fatalf("RouterNeighbors = %v, want one entry", got)
	}

	// A refresh inside the TTL keeps the entry alive past the original
	// deadline.
	sim.RunUntil(ttl / 2)
	a.noteRouterNeighbor(0, nbr)
	sim.RunUntil(ttl)
	if !a.isRouterNeighbor(0, nbr) {
		t.Error("refreshed entry expired on the original clock")
	}

	// Past the refreshed TTL the entry is gone: filtered from the exported
	// view and lazily deleted on lookup.
	sim.RunUntil(ttl/2 + ttl + netsim.Millisecond)
	if got := a.RouterNeighbors()[0]; len(got) != 0 {
		t.Errorf("RouterNeighbors = %v after TTL, want none", got)
	}
	if a.isRouterNeighbor(0, nbr) {
		t.Error("expired entry still recognized")
	}
	if _, ok := a.nbrRouters[0][nbr]; ok {
		t.Error("lazy lookup did not delete the expired entry")
	}

	// The discovery tick prunes entries on interfaces nothing queries
	// through anymore.
	a.noteRouterNeighbor(1, nbr)
	sim.RunUntil(sim.Now() + ttl + netsim.Millisecond)
	a.pruneRouterNeighbors()
	if len(a.nbrRouters[1]) != 0 {
		t.Error("prune left an expired entry behind")
	}
}

// TestRouterNeighborAgingDisabled pins the QueryInterval<=0 escape hatch:
// with no periodic queries nothing would ever refresh an entry, so expiry
// must be off.
func TestRouterNeighborAgingDisabled(t *testing.T) {
	cfg := DefaultConfig()
	cfg.QueryInterval = 0
	sim, a, _ := tickNet(cfg)
	nbr := addr.MustParse("10.0.0.2")

	a.noteRouterNeighbor(0, nbr)
	sim.RunUntil(1000 * netsim.Second)
	if !a.isRouterNeighbor(0, nbr) {
		t.Error("entry expired with aging disabled")
	}
}
