package ecmp_test

import (
	"testing"

	"repro/internal/ecmp"
	"repro/internal/netsim"
	"repro/internal/testutil"
)

// TestDomainScopedLinkCount reproduces the Section 3.1 inter-domain
// settlement scenario: a channel spans two transit domains; each domain's
// ingress router counts only the tree links inside its own domain with a
// locally-defined countId.
func TestDomainScopedLinkCount(t *testing.T) {
	cfg := ecmp.DefaultConfig()
	cfg.EnableNeighborDiscovery = true
	cfg.QueryInterval = netsim.Second
	// Line of 6 routers: r0..r2 in domain 1, r3..r5 in domain 2.
	n := testutil.LineNet(101, 6, cfg)
	for i, r := range n.Routers {
		if i < 3 {
			r.SetDomain(1)
		} else {
			r.SetDomain(2)
		}
	}
	src := n.AddSource(n.Routers[0])
	subA := n.AddSubscriber(n.Routers[5])
	subB := n.AddSubscriber(n.Routers[5])
	n.Start()

	ch := testutil.MustChannel(src)
	n.Sim.At(0, func() {
		subA.Subscribe(ch, nil, nil)
		subB.Subscribe(ch, nil, nil)
	})
	n.Sim.RunUntil(5 * netsim.Second) // tree built, neighbors discovered

	query := func(domain uint16) uint32 {
		var got uint32
		done := false
		n.Sim.After(0, func() {
			n.Routers[0].InitiateQuery(ch, ecmp.DomainLinksCountID(domain),
				2*netsim.Second, false, func(v uint32) { got, done = v, true })
		})
		n.Sim.RunUntil(n.Sim.Now() + 5*netsim.Second)
		if !done {
			t.Fatalf("domain-%d query never completed", domain)
		}
		return got
	}

	// Tree: src—r0—r1—r2—r3—r4—r5—{subA,subB}. Each on-tree router has one
	// downstream interface with subscribers (r5's host edges count as one
	// populated interface per host... r5 has two host edges = 2 links).
	// Domain 1 (r0,r1,r2): 3 links. Domain 2 (r3,r4): 2 + r5: 2 = 4.
	d1, d2 := query(1), query(2)
	if d1 != 3 {
		t.Errorf("domain-1 links = %d, want 3", d1)
	}
	if d2 != 4 {
		t.Errorf("domain-2 links = %d, want 4", d2)
	}

	// An unassigned domain sees zero links.
	if d9 := query(9); d9 != 0 {
		t.Errorf("domain-9 links = %d, want 0", d9)
	}

	// The mid-path ingress of domain 2 can initiate the same settlement
	// query without source cooperation.
	var got uint32
	done := false
	n.Sim.After(0, func() {
		n.Routers[3].InitiateQuery(ch, ecmp.DomainLinksCountID(2),
			2*netsim.Second, false, func(v uint32) { got, done = v, true })
	})
	n.Sim.RunUntil(n.Sim.Now() + 5*netsim.Second)
	if !done || got != 4 {
		t.Errorf("ingress-initiated domain-2 count = %d (done=%v), want 4", got, done)
	}
}
