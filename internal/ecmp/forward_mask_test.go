package ecmp

// Internal-package tests for the data-forwarding fast path: forwarding
// iterates the FIB's outgoing-interface bitmask directly, so the per-packet
// cost is one lock-free lookup plus the packet clone — no scratch slices,
// no per-interface expansion. (testutil cannot be used here — it imports
// ecmp — so the topology is built by hand.)

import (
	"testing"

	"repro/internal/addr"
	"repro/internal/fib"
	"repro/internal/netsim"
	"repro/internal/unicast"
)

// maskNet builds one router with an upstream interface and two downstream
// interfaces, and a FIB entry fanning a channel out both.
func maskNet() (*netsim.Sim, *Router, int, *netsim.Packet, []*netsim.Node) {
	sim := netsim.New(1)
	rn := sim.AddNode(addr.MustParse("10.0.0.1"), "r")
	up := sim.AddNode(addr.MustParse("10.0.0.2"), "up")
	d1 := sim.AddNode(addr.MustParse("10.0.0.3"), "d1")
	d2 := sim.AddNode(addr.MustParse("10.0.0.4"), "d2")
	_, _, iif := sim.Connect(up, rn, netsim.Millisecond, 0, 1)
	_, oif1, _ := sim.Connect(rn, d1, netsim.Millisecond, 0, 1)
	_, oif2, _ := sim.Connect(rn, d2, netsim.Millisecond, 0, 1)

	rt := unicast.Compute(sim)
	r := NewRouter(rn, rt, DefaultConfig())

	src := addr.MustParse("171.64.1.1")
	e := addr.ExpressAddr(9)
	fe := fib.Entry{IIF: iif}
	fe.SetOIF(oif1)
	fe.SetOIF(oif2)
	r.fib.Set(fib.Key{S: src, G: e}, fe)

	pkt := &netsim.Packet{Src: src, Dst: e, Proto: netsim.ProtoData, TTL: 64, Size: 1316}
	return sim, r, iif, pkt, []*netsim.Node{d1, d2}
}

// TestForwardDataMaskDelivery verifies the mask-iterating forward path
// fans out to every outgoing interface and respects the IIF check.
func TestForwardDataMaskDelivery(t *testing.T) {
	sim, r, iif, pkt, dsts := maskNet()

	for i := 0; i < 3; i++ {
		r.forwardData(iif, pkt)
	}
	// Wrong arrival interface: counted and dropped, nothing sent.
	r.forwardData(iif+1, pkt)

	sim.Run()
	for _, d := range dsts {
		if d.Delivered != 3 {
			t.Errorf("downstream node %s delivered %d packets, want 3", d.Name, d.Delivered)
		}
	}
	st := r.fib.Stats()
	if st.IIFDrops != 1 {
		t.Errorf("IIFDrops = %d, want 1", st.IIFDrops)
	}
	if st.Matched != 3 {
		t.Errorf("Matched = %d, want 3", st.Matched)
	}
}

// TestForwardDataLookupZeroAlloc pins the allocation contract of the router
// fast path: the FIB decision itself (lookup + mask) allocates nothing.
// forwardData's residual allocations are the packet clone and simulator
// event bookkeeping — the network-stack analogue of the NIC DMA — so the
// whole-path assertion is a fixed small bound, not zero.
func TestForwardDataLookupZeroAlloc(t *testing.T) {
	_, r, iif, pkt, _ := maskNet()

	if a := testing.AllocsPerRun(500, func() {
		if _, disp := r.fib.ForwardMask(pkt.Src, pkt.Dst, iif); disp != fib.Forwarded {
			t.Fatal("lookup missed")
		}
	}); a != 0 {
		t.Errorf("FIB decision allocates %.1f/op, want 0", a)
	}

	// A wrong-IIF packet takes the drop path before any clone: fully free.
	if a := testing.AllocsPerRun(500, func() {
		r.forwardData(iif+1, pkt)
	}); a != 0 {
		t.Errorf("drop path allocates %.1f/op, want 0", a)
	}
}

// BenchmarkForwardDataAllocs reports allocations on the per-packet
// forwarding path (mask iteration keeps the oif fan-out allocation-free;
// the remaining allocs are the packet clone and simulator events).
func BenchmarkForwardDataAllocs(b *testing.B) {
	sim, r, iif, pkt, _ := maskNet()
	r.forwardData(iif, pkt)
	sim.Run()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.forwardData(iif, pkt)
	}
}
