package ecmp_test

import (
	"testing"

	"repro/internal/ecmp"
	"repro/internal/netsim"
	"repro/internal/testutil"
)

// TestRouterLocalSubscription covers the host-stack-on-router path: a
// router subscribes locally (no separate host node) and receives channel
// data via OnLocalDeliver — the deployment where the last-hop box is both
// router and receiver.
func TestRouterLocalSubscription(t *testing.T) {
	cfg := ecmp.DefaultConfig()
	cfg.Propagation = ecmp.PropagateEager
	n := testutil.LineNet(111, 3, cfg)
	src := n.AddSource(n.Routers[0])
	n.Start()
	ch := testutil.MustChannel(src)

	last := n.Routers[2]
	delivered := 0
	last.OnLocalDeliver = func(pkt *netsim.Packet) { delivered++ }

	n.Sim.At(0, func() { last.Subscribe(ch, nil) })
	n.Sim.RunUntil(netsim.Second)
	if got := n.Routers[0].SubscriberCount(ch); got != 1 {
		t.Fatalf("first-hop count = %d, want 1 (local router subscription)", got)
	}

	n.Sim.After(0, func() { _ = src.Send(ch, 700, nil) })
	n.Sim.RunUntil(2 * netsim.Second)
	if delivered != 1 {
		t.Errorf("locally delivered = %d, want 1", delivered)
	}

	// Subcast through this router also reaches its local subscriber.
	n.Sim.After(0, func() { _ = src.Subcast(ch, last.Node().Addr, 700, nil) })
	n.Sim.RunUntil(3 * netsim.Second)
	if delivered != 2 {
		t.Errorf("after subcast delivered = %d, want 2", delivered)
	}

	n.Sim.After(0, func() { last.Unsubscribe(ch) })
	n.Sim.RunUntil(4 * netsim.Second)
	if got := n.TotalFIBEntries(); got != 0 {
		t.Errorf("FIB entries after local unsubscribe = %d, want 0", got)
	}
	// Double unsubscribe is a no-op.
	n.Sim.After(0, func() { last.Unsubscribe(ch) })
	n.Sim.RunUntil(5 * netsim.Second)
}

// TestRouterNeighborsDiscovered covers the Section 3.3 discovery output:
// after discovery ticks, each router knows its router neighbors per
// interface, and the modes are readable.
func TestRouterNeighborsDiscovered(t *testing.T) {
	cfg := ecmp.DefaultConfig()
	cfg.EnableNeighborDiscovery = true
	cfg.QueryInterval = netsim.Second
	n := testutil.LineNet(112, 3, cfg)
	n.Start()
	n.Sim.RunUntil(5 * netsim.Second)

	mid := n.Routers[1]
	nbrs := mid.RouterNeighbors()
	total := 0
	for _, as := range nbrs {
		total += len(as)
	}
	if total != 2 {
		t.Errorf("middle router discovered %d router neighbors, want 2 (%v)", total, nbrs)
	}
	if mid.IfaceMode(0) != ecmp.ModeTCP {
		t.Errorf("default iface mode = %v, want tcp", mid.IfaceMode(0))
	}
	if ecmp.ModeUDP.String() != "udp" || ecmp.ModeTCP.String() != "tcp" {
		t.Error("Mode.String broken")
	}
}
