package ecmp

import (
	"fmt"
	"math/bits"

	"repro/internal/addr"
	"repro/internal/fib"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/unicast"
	"repro/internal/wire"
)

// Router is an EXPRESS/ECMP router attached to one simulator node. It
// forwards EXPRESS data packets via an exact-match (S,E) FIB (Section 3.4)
// and runs ECMP on every interface to maintain the per-channel distribution
// trees and answer counting queries (Sections 3.1–3.3).
type Router struct {
	node *netsim.Node
	rt   *unicast.Routing
	fib  *fib.Table
	cfg  Config

	channels map[addr.Channel]*channel
	ifmode   map[int]Mode

	// nbrRouters tracks ECMP routers discovered per interface via the
	// CountNeighbors query (Section 3.3).
	nbrRouters map[int]map[addr.Addr]netsim.Time
	// nbrAlive is the last time each TCP-mode neighbor proved liveness.
	nbrAlive map[addr.Addr]netsim.Time

	metrics  Metrics
	querySeq uint16
	routeVer uint64
	// obsReg exposes the router's histograms (aggregation-query RTT and
	// fan-out width, in simulated time) plus its FIB's rebuild/load
	// metrics; scraped by tests and by cost-experiment reporting.
	obsReg      *obs.Registry
	queryRTT    *obs.Histogram // simulated ns, initiation → final total
	queryFanout *obs.Histogram // downstream neighbors queried per aggregation
	// stopped halts the periodic reschedule chains; set by Close.
	stopped bool
	// The live periodic timers, held so Close can cancel them (each tick
	// replaces its own entry when it reschedules).
	qTimer, kaTimer, ndTimer *netsim.Timer
	// domain is the administrative domain for transit accounting
	// (Section 3.1's locally-defined countIds); 0 means unassigned.
	domain uint16

	// OnLocalDeliver, when set, receives EXPRESS data packets addressed to
	// channels this node itself subscribes to (routers normally have none;
	// the express host stack reuses Router for first-hop duties in tests).
	OnLocalDeliver func(pkt *netsim.Packet)
}

// channel is the per-(S,E) management state of Section 5.2: roughly
// [channel, countId, count] records per count activity plus the cached
// authenticator.
type channel struct {
	id addr.Channel

	upIf  int       // interface toward the source; -1 when unresolved
	upNbr addr.Addr // upstream neighbor on that interface

	counts  map[wire.CountID]*countState
	pending map[pendKey]*pendingQuery

	restricted bool     // a key is known to protect this channel
	key        wire.Key // authoritative or cached authenticator
	keyKnown   bool     // key field is meaningful
	keyAuthor  bool     // this router is authoritative (source's first hop)
	// pendingAuth holds subscriptions forwarded upstream for validation
	// (Section 3.2): each is confirmed or denied by a CountResponse.
	pendingAuth []pendingAuth

	// proactive tracks which countIds have proactive counting enabled
	// (Section 6) on this subtree.
	proactive map[wire.CountID]bool

	// upstream-switch hysteresis state (Section 3.2).
	switchTimer *netsim.Timer
	pendUpIf    int
	pendUpNbr   addr.Addr
}

// countState aggregates one countId over the channel's downstream
// interfaces (the paper's per-interface, per-channel counts).
type countState struct {
	// vals[ifindex][neighbor] is the last value advertised by that
	// neighbor. Zero values are deleted.
	vals map[int]map[addr.Addr]uint32
	// expiry[neighbor] is the UDP-mode refresh deadline.
	expiry map[addr.Addr]netsim.Time
	// local is this node's own contribution (hosts: their subscription;
	// routers: network-layer resources such as link counts).
	local uint32

	advertised uint32      // last value sent upstream
	lastAdvAt  netsim.Time // when it was sent (proactive curve clock)
	everAdv    bool
	checkTimer *netsim.Timer // pending proactive re-evaluation
}

type pendKey struct {
	id  wire.CountID
	seq uint16
}

type pendingQuery struct {
	originIf  int // -1 for locally originated queries
	originNbr addr.Addr
	cb        func(uint32) // local originator's callback

	// extraOrigins holds the origins of retransmitted copies of this query
	// (a parent re-asking before the aggregation completed): each receives
	// the eventual total too, instead of the duplicate being dropped and
	// the re-querying parent starving.
	extraOrigins []queryOrigin

	remaining map[addr.Addr]bool // neighbors yet to answer
	sum       uint32
	selfAdded bool
	startedAt netsim.Time // aggregation start, for the RTT histogram
	timer     *netsim.Timer
	done      bool
}

// queryOrigin identifies one requester of an aggregation's total.
type queryOrigin struct {
	ifindex int
	nbr     addr.Addr
	cb      func(uint32)
}

type pendingAuth struct {
	ifindex int
	nbr     addr.Addr
	key     wire.Key
	value   uint32
}

// NewRouter attaches an ECMP router to node, using the shared unicast
// routing state rt.
func NewRouter(node *netsim.Node, rt *unicast.Routing, cfg Config) *Router {
	r := &Router{
		node:       node,
		rt:         rt,
		fib:        fib.New(),
		cfg:        cfg,
		channels:   make(map[addr.Channel]*channel),
		ifmode:     make(map[int]Mode),
		nbrRouters: make(map[int]map[addr.Addr]netsim.Time),
		nbrAlive:   make(map[addr.Addr]netsim.Time),
		obsReg:     obs.NewRegistry(),
	}
	r.queryRTT = r.obsReg.NewHistogram("ecmp_query_rtt_ns", "aggregation-query round trip, initiation to final total (simulated ns)")
	r.queryFanout = r.obsReg.NewHistogram("ecmp_query_fanout", "downstream neighbors queried per aggregation")
	r.fib.RegisterMetrics(r.obsReg, "fib_")
	node.Handler = r
	r.routeVer = rt.Version()
	// Re-evaluate channel upstreams whenever the IGP converges on a new
	// topology, even when the changed link is elsewhere in the network.
	rt.OnChange(func() { r.reconcileUpstreams(false, -1) })
	return r
}

// Start launches the router's periodic activity (UDP-mode queries,
// TCP-mode keepalives, neighbor discovery). Call after interface modes are
// configured.
func (r *Router) Start() {
	if r.cfg.QueryInterval > 0 {
		r.qTimer = r.node.Sim().After(r.jitter(r.cfg.QueryInterval), r.udpQueryTick)
	}
	if r.cfg.KeepaliveInterval > 0 {
		r.kaTimer = r.node.Sim().After(r.jitter(r.cfg.KeepaliveInterval), r.keepaliveTick)
	}
	if r.cfg.EnableNeighborDiscovery {
		r.ndTimer = r.node.Sim().After(r.jitter(r.cfg.QueryInterval), r.neighborDiscoveryTick)
	}
}

// Close stops the router's periodic activity and cancels every outstanding
// per-channel timer. Before it existed, the tick chains rescheduled forever:
// a test (or experiment sweep) building hundreds of routers on one simulator
// kept every dead router's queries and keepalives firing to the end of the
// run. Close is idempotent; a closed router still forwards and answers, it
// just originates nothing on its own.
func (r *Router) Close() {
	if r.stopped {
		return
	}
	r.stopped = true
	r.qTimer.Stop()
	r.kaTimer.Stop()
	r.ndTimer.Stop()
	for _, c := range r.channels {
		c.switchTimer.Stop()
		for _, pq := range c.pending {
			pq.timer.Stop()
		}
		for _, cs := range c.counts {
			cs.checkTimer.Stop()
		}
	}
}

// jitter staggers periodic timers across routers (deterministically, via
// the sim's seeded generator) so the simulation does not synchronise every
// router's query on the same instant.
func (r *Router) jitter(d netsim.Time) netsim.Time {
	return d/2 + netsim.Time(r.node.Sim().Rand().Int63n(int64(d)))
}

// Node returns the underlying simulator node.
func (r *Router) Node() *netsim.Node { return r.node }

// FIB exposes the forwarding table for metrics and tests.
func (r *Router) FIB() *fib.Table { return r.fib }

// Metrics returns a copy of the protocol counters.
func (r *Router) Metrics() Metrics { return r.metrics }

// Obs returns the router's metric registry: aggregation-query RTT and
// fan-out histograms plus the FIB's rebuild-duration and load metrics.
func (r *Router) Obs() *obs.Registry { return r.obsReg }

// SetIfaceMode configures TCP or UDP mode for an interface (Section 3.2).
// The default for unconfigured interfaces is TCP.
func (r *Router) SetIfaceMode(ifindex int, m Mode) { r.ifmode[ifindex] = m }

// IfaceMode returns the mode of an interface.
func (r *Router) IfaceMode(ifindex int) Mode { return r.ifmode[ifindex] }

// NumChannels returns how many channels have state at this router.
func (r *Router) NumChannels() int { return len(r.channels) }

// SubscriberCount returns the router's current subtree subscriber sum for a
// channel (0 if the channel is unknown).
func (r *Router) SubscriberCount(ch addr.Channel) uint32 {
	c := r.channels[ch]
	if c == nil {
		return 0
	}
	cs := c.counts[wire.CountSubscribers]
	if cs == nil {
		return 0
	}
	return cs.total()
}

// Receive implements netsim.Handler.
func (r *Router) Receive(ifindex int, pkt *netsim.Packet) {
	switch pkt.Proto {
	case netsim.ProtoECMP:
		r.receiveControl(ifindex, pkt)
	case netsim.ProtoData:
		r.forwardData(ifindex, pkt)
	case netsim.ProtoEncap:
		r.receiveEncap(ifindex, pkt)
	default:
		// Unknown protocol: forward as plain unicast if not for us.
		if pkt.Dst != r.node.Addr {
			r.forwardUnicast(pkt)
		}
	}
}

// LinkChange implements netsim.LinkWatcher: topology changes invalidate the
// unicast tables and may move channel upstreams (Section 3.2). A link that
// went down is a failed connection: every count contributed over it is
// withdrawn immediately, the TCP-mode semantics of Section 3.2.
func (r *Router) LinkChange(ifindex int, up bool) {
	r.rt.Invalidate()
	if !up {
		r.dropInterface(ifindex)
	}
	r.reconcileUpstreams(!up, ifindex)
}

// dropInterface withdraws all downstream counts recorded on a failed
// interface.
func (r *Router) dropInterface(ifindex int) {
	for _, c := range r.channels {
		changed := false
		for id, cs := range c.counts {
			if len(cs.vals[ifindex]) == 0 {
				continue
			}
			for nbr := range cs.vals[ifindex] {
				if id == wire.CountSubscribers {
					r.metrics.Unsubscribes++
				}
				delete(cs.expiry, nbr)
			}
			delete(cs.vals, ifindex)
			changed = true
		}
		if changed {
			r.syncFIB(c)
			r.propagateMembership(c, nil)
			r.maybeDeleteChannel(c)
		}
	}
}

// forwardData implements the Section 3.4 forwarding procedure for EXPRESS
// data packets, and plain unicast forwarding for everything else.
func (r *Router) forwardData(ifindex int, pkt *netsim.Packet) {
	if !pkt.Dst.IsExpress() {
		if pkt.Dst == r.node.Addr {
			if r.OnLocalDeliver != nil {
				r.OnLocalDeliver(pkt)
			}
			return
		}
		r.forwardUnicast(pkt)
		return
	}
	if pkt.TTL <= 1 {
		return
	}
	// Lock-free mask lookup, iterated bit by bit: no scratch slice, no
	// allocation between the packet and the output interfaces.
	mask, disp := r.fib.ForwardMask(pkt.Src, pkt.Dst, ifindex)
	if disp != fib.Forwarded {
		return // counted and dropped (Section 3.4)
	}
	if mask != 0 {
		fwd := pkt.Clone()
		fwd.TTL--
		for m := mask; m != 0; m &= m - 1 {
			r.node.Send(bits.TrailingZeros32(m), fwd)
		}
	}
	if r.OnLocalDeliver != nil && r.isLocalSubscriber(addr.Channel{S: pkt.Src, E: pkt.Dst}) {
		r.OnLocalDeliver(pkt)
	}
}

func (r *Router) isLocalSubscriber(ch addr.Channel) bool {
	c := r.channels[ch]
	if c == nil {
		return false
	}
	cs := c.counts[wire.CountSubscribers]
	return cs != nil && cs.local > 0
}

// forwardUnicast relays a packet along the unicast tables (hosts reach
// session relays and subcast points through routers this way).
func (r *Router) forwardUnicast(pkt *netsim.Packet) {
	if pkt.TTL <= 1 {
		return
	}
	route, ok := r.rt.NextHop(r.node.ID, pkt.Dst)
	if !ok || route.Ifindex < 0 {
		return
	}
	fwd := pkt.Clone()
	fwd.TTL--
	r.node.Send(route.Ifindex, fwd)
}

// receiveEncap handles subcast (Section 2.1): the source unicasts an
// encapsulated packet to an on-channel router; the router decapsulates and
// forwards the inner packet toward all downstream channel receivers. Only
// the channel source may subcast — the single-source property is preserved
// by checking the inner source and the outer source match.
func (r *Router) receiveEncap(ifindex int, pkt *netsim.Packet) {
	if pkt.Dst != r.node.Addr {
		r.forwardUnicast(pkt)
		return
	}
	enc, ok := pkt.Payload.(*netsim.Encap)
	if !ok || enc.Inner == nil {
		return
	}
	inner := enc.Inner
	if !inner.Dst.IsExpress() {
		return
	}
	if inner.Src != pkt.Src {
		return // only the channel source may subcast on its channel
	}
	ch := addr.Channel{S: inner.Src, E: inner.Dst}
	e, ok := r.fib.Get(fib.Key{S: ch.S, G: ch.E})
	if !ok {
		return // not on this channel's tree
	}
	fwd := inner.Clone()
	if fwd.TTL <= 1 {
		return
	}
	fwd.TTL--
	for m := e.OIFs; m != 0; m &= m - 1 {
		r.node.Send(bits.TrailingZeros32(m), fwd)
	}
	if r.OnLocalDeliver != nil && r.isLocalSubscriber(ch) {
		r.OnLocalDeliver(inner)
	}
}

// receiveControl dispatches an ECMP message.
func (r *Router) receiveControl(ifindex int, pkt *netsim.Packet) {
	switch m := pkt.Payload.(type) {
	case *wire.Count:
		r.metrics.CountsRecv++
		r.nbrAlive[pkt.Src] = r.node.Sim().Now()
		if m.Seq != 0 {
			r.handleQueryReply(ifindex, pkt.Src, m)
			return
		}
		r.handleUnsolicitedCount(ifindex, pkt.Src, m)
	case *wire.CountQuery:
		r.metrics.QueriesRecv++
		r.handleQuery(ifindex, pkt.Src, m)
	case *wire.CountResponse:
		r.metrics.ResponsesRecv++
		r.handleResponse(ifindex, pkt.Src, m)
	default:
		panic(fmt.Sprintf("ecmp: unknown control payload %T", pkt.Payload))
	}
}

// sendMsg transmits one ECMP message to a specific neighbor out ifindex.
func (r *Router) sendMsg(ifindex int, to addr.Addr, m wire.Message) {
	size := wire.IPv4HeaderSize
	switch mm := m.(type) {
	case *wire.Count:
		size += mm.Size()
		r.metrics.CountsSent++
	case *wire.CountQuery:
		size += wire.CountQuerySize
		r.metrics.QueriesSent++
	case *wire.CountResponse:
		size += wire.CountResponseSize
		r.metrics.ResponsesSent++
	}
	r.node.Send(ifindex, &netsim.Packet{
		Src: r.node.Addr, Dst: to, Proto: netsim.ProtoECMP,
		TTL: 1, Size: size, Payload: m,
	})
}

// channelFor returns (creating if create is set) the state for ch, wiring
// the upstream interface via RPF.
func (r *Router) channelFor(ch addr.Channel, create bool) *channel {
	c := r.channels[ch]
	if c == nil && create {
		c = &channel{
			id:        ch,
			upIf:      -1,
			counts:    make(map[wire.CountID]*countState),
			pending:   make(map[pendKey]*pendingQuery),
			proactive: make(map[wire.CountID]bool),
		}
		if route, ok := r.rt.RPFInterface(r.node.ID, ch.S); ok && route.Ifindex >= 0 {
			c.upIf = route.Ifindex
			c.upNbr = r.nodeAddr(route.NextHop)
		}
		r.channels[ch] = c
	}
	return c
}

func (r *Router) nodeAddr(id netsim.NodeID) addr.Addr {
	return r.node.Sim().Node(id).Addr
}

func (c *channel) count(id wire.CountID) *countState {
	cs := c.counts[id]
	if cs == nil {
		cs = &countState{
			vals:   make(map[int]map[addr.Addr]uint32),
			expiry: make(map[addr.Addr]netsim.Time),
		}
		c.counts[id] = cs
	}
	return cs
}

// set records a neighbor's value, returning true if the iface's zero/
// non-zero status may have changed.
func (cs *countState) set(ifindex int, nbr addr.Addr, v uint32) {
	m := cs.vals[ifindex]
	if v == 0 {
		if m != nil {
			delete(m, nbr)
			if len(m) == 0 {
				delete(cs.vals, ifindex)
			}
		}
		delete(cs.expiry, nbr)
		return
	}
	if m == nil {
		m = make(map[addr.Addr]uint32)
		cs.vals[ifindex] = m
	}
	m[nbr] = v
}

// get returns nbr's recorded value on ifindex.
func (cs *countState) get(ifindex int, nbr addr.Addr) uint32 {
	return cs.vals[ifindex][nbr]
}

// total sums all downstream values plus the local contribution.
func (cs *countState) total() uint32 {
	t := cs.local
	for _, m := range cs.vals {
		for _, v := range m {
			t += v
		}
	}
	return t
}
