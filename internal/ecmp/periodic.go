package ecmp

import (
	"repro/internal/addr"
	"repro/internal/netsim"
	"repro/internal/wire"
)

// udpQueryTick is the UDP-mode periodic cycle (Section 3.2): multicast a
// general CountQuery on each UDP interface (soliciting Count
// retransmissions from all hosts for all channels, like an IGMP general
// query) and expire memberships that were not refreshed.
func (r *Router) udpQueryTick() {
	if r.stopped {
		return
	}
	now := r.node.Sim().Now()
	for i := 0; i < r.node.NumIfaces(); i++ {
		if r.ifmode[i] != ModeUDP || !r.node.IfaceUp(i) {
			continue
		}
		r.sendMsg(i, addr.WellKnownECMP, &wire.CountQuery{
			Channel: addr.Channel{S: addr.LocalhostSource, E: addr.ExpressBase},
			CountID: wire.CountAllChannels,
		})
	}
	r.expireMemberships(now)
	r.qTimer = r.node.Sim().After(r.cfg.QueryInterval, r.udpQueryTick)
}

// expireMemberships drops UDP-mode neighbors whose refresh deadline passed.
func (r *Router) expireMemberships(now netsim.Time) {
	for _, c := range r.channels {
		cs := c.counts[wire.CountSubscribers]
		if cs == nil {
			continue
		}
		var stale []addr.Addr
		for nbr, dl := range cs.expiry {
			if dl <= now {
				stale = append(stale, nbr)
			}
		}
		if len(stale) == 0 {
			continue
		}
		for _, nbr := range stale {
			for ifi := range cs.vals {
				if _, ok := cs.vals[ifi][nbr]; ok {
					cs.set(ifi, nbr, 0)
					r.metrics.Unsubscribes++
				}
			}
			delete(cs.expiry, nbr)
		}
		r.syncFIB(c)
		r.propagateMembership(c, nil)
		r.maybeDeleteChannel(c)
	}
}

// keepaliveTick is the TCP-mode liveness cycle (Section 3.2): one keepalive
// per neighbor per interval — "a single per-neighbor keepalive is
// sufficient to detect a connection failure" — and withdrawal of the counts
// of neighbors that went silent.
func (r *Router) keepaliveTick() {
	if r.stopped {
		return
	}
	now := r.node.Sim().Now()
	deadAfter := netsim.Time(r.cfg.KeepaliveMisses) * r.cfg.KeepaliveInterval

	seen := make(map[addr.Addr]bool)
	for ifi, peers := range r.node.Neighbors() {
		if r.ifmode[ifi] != ModeTCP || !r.node.IfaceUp(ifi) {
			continue
		}
		for _, p := range peers {
			nbr := r.nodeAddr(p.Node)
			if seen[nbr] {
				continue
			}
			seen[nbr] = true
			r.metrics.KeepalivesSent++
			r.sendMsg(ifi, nbr, &wire.Count{
				Channel: addr.Channel{S: addr.LocalhostSource, E: addr.ExpressBase},
				CountID: keepaliveCountID, Value: 1,
			})
		}
	}

	// Withdraw counts from neighbors that stopped proving liveness. The
	// count is "subtracted from the sum provided upstream if the connection
	// fails" (Section 3.2).
	for nbr, last := range r.nbrAlive {
		if now-last <= deadAfter {
			continue
		}
		delete(r.nbrAlive, nbr)
		r.dropNeighbor(nbr)
	}
	r.kaTimer = r.node.Sim().After(r.cfg.KeepaliveInterval, r.keepaliveTick)
}

// dropNeighbor withdraws every count contributed by a failed neighbor.
func (r *Router) dropNeighbor(nbr addr.Addr) {
	failed := false
	for _, c := range r.channels {
		changed := false
		for id, cs := range c.counts {
			for ifi := range cs.vals {
				if _, ok := cs.vals[ifi][nbr]; !ok {
					continue
				}
				if !r.ifaceOnTCP(ifi) {
					continue // UDP memberships expire by timeout instead
				}
				cs.set(ifi, nbr, 0)
				changed = true
				failed = true
				if id == wire.CountSubscribers {
					r.metrics.Unsubscribes++
				}
			}
		}
		if changed {
			r.syncFIB(c)
			r.propagateMembership(c, nil)
			r.maybeDeleteChannel(c)
		}
	}
	if failed {
		r.metrics.NeighborFailures++
	}
}

func (r *Router) ifaceOnTCP(ifindex int) bool { return r.ifmode[ifindex] == ModeTCP }

// neighborDiscoveryTick periodically multicasts the reserved neighbors
// CountQuery (Section 3.3), letting routers find each other and establish
// connections.
func (r *Router) neighborDiscoveryTick() {
	if r.stopped {
		return
	}
	r.pruneRouterNeighbors()
	for i := 0; i < r.node.NumIfaces(); i++ {
		if !r.node.IfaceUp(i) {
			continue
		}
		r.sendMsg(i, addr.WellKnownECMP, &wire.CountQuery{
			Channel: addr.Channel{S: addr.LocalhostSource, E: addr.ExpressBase},
			CountID: wire.CountNeighbors,
		})
	}
	r.ndTimer = r.node.Sim().After(r.cfg.QueryInterval, r.neighborDiscoveryTick)
}
