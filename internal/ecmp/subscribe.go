package ecmp

import (
	"crypto/subtle"

	"repro/internal/addr"
	"repro/internal/fib"
	"repro/internal/wire"
)

// handleUnsolicitedCount processes a Count with Seq == 0: a subscription,
// unsubscription, proactive count update, keepalive, or key installation.
func (r *Router) handleUnsolicitedCount(ifindex int, from addr.Addr, m *wire.Count) {
	switch m.CountID {
	case keepaliveCountID:
		return // liveness already recorded by the caller
	case countKeyInstall:
		r.handleKeyInstall(ifindex, from, m)
		return
	case wire.CountNeighbors:
		r.noteRouterNeighbor(ifindex, from)
		return
	}
	if !m.Channel.Valid() {
		return
	}

	if m.CountID == wire.CountSubscribers {
		r.handleMembership(ifindex, from, m)
		return
	}
	// Proactive update for a non-membership countId: record and re-evaluate
	// our own upstream advertisement.
	c := r.channelFor(m.Channel, false)
	if c == nil {
		return
	}
	cs := c.count(m.CountID)
	cs.set(ifindex, from, m.Value)
	r.maybeAdvertise(c, m.CountID)
}

// handleMembership is the Section 3.2 tree-maintenance path: an unsolicited
// subscriberId Count subscribes (Value > 0) or unsubscribes (Value == 0)
// the sending neighbor's subtree.
func (r *Router) handleMembership(ifindex int, from addr.Addr, m *wire.Count) {
	c := r.channelFor(m.Channel, m.Value > 0)
	if c == nil {
		return
	}
	cs := c.count(wire.CountSubscribers)
	prev := cs.get(ifindex, from)

	if m.Value > 0 && ifindex == c.upIf && from == c.upNbr {
		// Counts only flow from leaves toward the source; a "subscription"
		// arriving on the upstream interface would create a loop and is a
		// protocol violation. Drop it.
		return
	}

	// Authenticated access (Sections 3.1–3.2, 3.5): validate locally if we
	// hold the key (authoritative or cached), otherwise forward upstream
	// and hold the subscription pending.
	if m.Value > 0 {
		if c.restricted || m.HasKey {
			switch {
			case c.keyKnown:
				if !m.HasKey || subtle.ConstantTimeCompare(m.Key[:], c.key[:]) != 1 {
					r.metrics.AuthDenied++
					r.sendMsg(ifindex, from, &wire.CountResponse{
						Channel: m.Channel, CountID: m.CountID, Status: wire.StatusBadKey,
					})
					return
				}
				r.sendMsg(ifindex, from, &wire.CountResponse{
					Channel: m.Channel, CountID: m.CountID, Status: wire.StatusOK,
				})
			case c.upIf >= 0:
				// Unknown key: record as pending; the upstream CountResponse
				// will confirm (caching the key) or deny.
				c.pendingAuth = append(c.pendingAuth, pendingAuth{
					ifindex: ifindex, nbr: from, key: m.Key, value: m.Value,
				})
			}
		}
	}

	if m.Value > 0 {
		r.metrics.Subscribes++
	} else if prev > 0 {
		r.metrics.Unsubscribes++
	}
	cs.set(ifindex, from, m.Value)
	if m.Value > 0 && r.ifmode[ifindex] == ModeUDP {
		cs.expiry[from] = r.node.Sim().Now() + r.cfg.HoldTime
	}

	r.syncFIB(c)
	r.propagateMembership(c, m)

	// UDP mode, like IGMPv2: a zero Count triggers a re-query on that
	// interface to catch other members that were sharing it (Section 3.2).
	if m.Value == 0 && prev > 0 && r.ifmode[ifindex] == ModeUDP {
		r.sendChannelQuery(ifindex, m.Channel)
	}

	r.maybeDeleteChannel(c)
}

// syncFIB reconciles the FIB entry for c with the per-interface membership
// state: an interface is an outgoing interface iff its subscriber sum is
// non-zero; the incoming interface is the RPF interface toward the source.
func (r *Router) syncFIB(c *channel) {
	cs := c.counts[wire.CountSubscribers]
	key := fib.Key{S: c.id.S, G: c.id.E}
	var oifs uint32
	if cs != nil {
		for i, m := range cs.vals {
			if len(m) > 0 && i < fib.MaxInterfaces {
				oifs |= 1 << uint(i)
			}
		}
	}
	if oifs == 0 && (cs == nil || cs.local == 0) {
		r.fib.Delete(key)
		return
	}
	// One atomic publication: concurrent forwards see the old entry or the
	// new one, never a half-updated IIF/OIF pair.
	r.fib.Set(key, fib.Entry{IIF: c.upIf, OIFs: oifs})
}

// propagateMembership pushes the membership change toward the source
// according to the configured propagation policy.
func (r *Router) propagateMembership(c *channel, trigger *wire.Count) {
	if c.upIf < 0 {
		return // we are the source's node or the source is unreachable
	}
	cs := c.count(wire.CountSubscribers)
	total := cs.total()

	switch r.cfg.Propagation {
	case PropagateTree:
		// Only zero/non-zero transitions travel upstream; a join reaching a
		// router already on the tree stops here (Section 3.2, Figure 3).
		wasOn := cs.everAdv && cs.advertised > 0
		isOn := total > 0
		if wasOn == isOn && cs.everAdv {
			return
		}
		v := uint32(0)
		if isOn {
			v = total // first join carries the current sum
		}
		r.advertiseUpstream(c, wire.CountSubscribers, v, trigger)
	case PropagateEager:
		if cs.everAdv && cs.advertised == total {
			return
		}
		r.advertiseUpstream(c, wire.CountSubscribers, total, trigger)
	case PropagateProactive:
		r.maybeAdvertise(c, wire.CountSubscribers)
	}
}

// advertiseUpstream sends a Count for (c, id) with value v to the upstream
// neighbor. The trigger, when carrying a key, is forwarded for validation.
func (r *Router) advertiseUpstream(c *channel, id wire.CountID, v uint32, trigger *wire.Count) {
	cs := c.count(id)
	cs.advertised = v
	cs.everAdv = true
	cs.lastAdvAt = r.node.Sim().Now()
	out := &wire.Count{Channel: c.id, CountID: id, Value: v}
	if trigger != nil && trigger.HasKey {
		out.HasKey, out.Key = true, trigger.Key
	}
	r.sendMsg(c.upIf, c.upNbr, out)
}

// maybeDeleteChannel garbage-collects a channel with no members, no local
// state and no pending activity.
func (r *Router) maybeDeleteChannel(c *channel) {
	cs := c.counts[wire.CountSubscribers]
	if cs != nil && (cs.total() > 0 || len(cs.vals) > 0) {
		return
	}
	if len(c.pending) > 0 || len(c.pendingAuth) > 0 || c.keyAuthor {
		return
	}
	if c.switchTimer != nil {
		c.switchTimer.Stop()
	}
	for _, s := range c.counts {
		if s.checkTimer != nil {
			s.checkTimer.Stop()
		}
	}
	r.fib.Delete(fib.Key{S: c.id.S, G: c.id.E})
	delete(r.channels, c.id)
}

// handleKeyInstall installs or removes the authoritative channel key. Only
// the channel's source host may do so, and only over the RPF interface
// toward itself — the first-hop router trust model of Section 3.5.
func (r *Router) handleKeyInstall(ifindex int, from addr.Addr, m *wire.Count) {
	if from != m.Channel.S {
		return
	}
	route, ok := r.rt.RPFInterface(r.node.ID, m.Channel.S)
	if !ok || route.Ifindex != ifindex {
		return
	}
	c := r.channelFor(m.Channel, true)
	if m.Value > 0 && m.HasKey {
		c.restricted = true
		c.key = m.Key
		c.keyKnown = true
		c.keyAuthor = true
		r.sendMsg(ifindex, from, &wire.CountResponse{
			Channel: m.Channel, CountID: countKeyInstall, Status: wire.StatusOK,
		})
	} else {
		c.restricted = false
		c.keyKnown = false
		c.keyAuthor = false
		c.key = wire.Key{}
		r.maybeDeleteChannel(c)
	}
}

// handleResponse processes a CountResponse from upstream: the validation or
// denial of previously forwarded authenticated subscriptions (Section 3.2).
func (r *Router) handleResponse(ifindex int, from addr.Addr, m *wire.CountResponse) {
	c := r.channels[m.Channel]
	if c == nil {
		return
	}
	if ifindex != c.upIf || from != c.upNbr {
		return // responses are only authoritative from our upstream
	}
	if m.CountID != wire.CountSubscribers {
		return
	}
	pend := c.pendingAuth
	c.pendingAuth = nil
	switch m.Status {
	case wire.StatusOK:
		// The key that went upstream — the first pending entry's, since that
		// is the Count our upstream advertisement carried — is now
		// validated; cache it so further authenticated requests are decided
		// locally (Section 3.2). Other pending entries are checked against
		// the cached key: matching ones confirm, the rest are denied.
		if len(pend) > 0 && !c.keyKnown {
			c.restricted = true
			c.keyKnown = true
			c.key = pend[0].key
		}
		changed := false
		for _, p := range pend {
			if subtle.ConstantTimeCompare(p.key[:], c.key[:]) == 1 {
				r.sendMsg(p.ifindex, p.nbr, &wire.CountResponse{
					Channel: m.Channel, CountID: m.CountID, Status: wire.StatusOK,
				})
				continue
			}
			r.metrics.AuthDenied++
			c.count(wire.CountSubscribers).set(p.ifindex, p.nbr, 0)
			changed = true
			r.sendMsg(p.ifindex, p.nbr, &wire.CountResponse{
				Channel: m.Channel, CountID: m.CountID, Status: wire.StatusBadKey,
			})
		}
		if changed {
			r.syncFIB(c)
			r.propagateMembership(c, nil)
			r.maybeDeleteChannel(c)
		}
	case wire.StatusBadKey:
		c.restricted = true
		for _, p := range pend {
			r.metrics.AuthDenied++
			cs := c.count(wire.CountSubscribers)
			cs.set(p.ifindex, p.nbr, 0)
			r.sendMsg(p.ifindex, p.nbr, &wire.CountResponse{
				Channel: m.Channel, CountID: m.CountID, Status: wire.StatusBadKey,
			})
		}
		r.syncFIB(c)
		r.propagateMembership(c, nil)
		r.maybeDeleteChannel(c)
	}
}

// reconcileUpstreams re-evaluates every channel's RPF interface after a
// topology change. When the upstream moves, the router sends its current
// Count to the new upstream and a zero Count to the old one, with
// hysteresis against route oscillation (Section 3.2). If the old upstream
// interface is the one that failed, the switch is immediate.
func (r *Router) reconcileUpstreams(linkDown bool, ifindex int) {
	v := r.rt.Version()
	if v == r.routeVer && !linkDown {
		return
	}
	r.routeVer = v
	for _, c := range r.channels {
		route, ok := r.rt.RPFInterface(r.node.ID, c.id.S)
		if !ok || route.Ifindex < 0 {
			continue // source unreachable; keep state until it expires
		}
		newIf, newNbr := route.Ifindex, r.nodeAddr(route.NextHop)
		if newIf == c.upIf && newNbr == c.upNbr {
			if c.switchTimer != nil { // route flapped back: cancel pending switch
				c.switchTimer.Stop()
				c.switchTimer = nil
			}
			continue
		}
		immediate := linkDown && c.upIf == ifindex
		c.pendUpIf, c.pendUpNbr = newIf, newNbr
		if immediate {
			r.switchUpstream(c)
			continue
		}
		if c.switchTimer != nil {
			c.switchTimer.Stop()
		}
		cc := c
		c.switchTimer = r.node.Sim().After(r.cfg.Hysteresis, func() {
			cc.switchTimer = nil
			r.switchUpstream(cc)
		})
	}
}

// switchUpstream moves the channel to the pending upstream neighbor.
func (r *Router) switchUpstream(c *channel) {
	if c.pendUpIf == c.upIf && c.pendUpNbr == c.upNbr {
		return
	}
	oldIf, oldNbr := c.upIf, c.upNbr
	c.upIf, c.upNbr = c.pendUpIf, c.pendUpNbr
	r.metrics.UpstreamSwitches++

	cs := c.count(wire.CountSubscribers)
	total := cs.total()
	if total > 0 && c.upIf >= 0 {
		r.sendMsg(c.upIf, c.upNbr, &wire.Count{
			Channel: c.id, CountID: wire.CountSubscribers, Value: total,
		})
		cs.advertised = total
		cs.everAdv = true
		cs.lastAdvAt = r.node.Sim().Now()
	}
	if oldIf >= 0 && r.node.IfaceUp(oldIf) {
		r.sendMsg(oldIf, oldNbr, &wire.Count{
			Channel: c.id, CountID: wire.CountSubscribers, Value: 0,
		})
	}
	r.syncFIB(c)
}

// Subscribe performs a local subscription at this node (used when a host
// stack runs directly on the router, and by tests). value is normally 1.
func (r *Router) Subscribe(ch addr.Channel, key *wire.Key) {
	c := r.channelFor(ch, true)
	cs := c.count(wire.CountSubscribers)
	cs.local = 1
	r.metrics.Subscribes++
	var trigger *wire.Count
	if key != nil {
		trigger = &wire.Count{HasKey: true, Key: *key}
	}
	r.syncFIB(c)
	r.propagateMembership(c, trigger)
}

// Unsubscribe removes a local subscription.
func (r *Router) Unsubscribe(ch addr.Channel) {
	c := r.channels[ch]
	if c == nil {
		return
	}
	cs := c.count(wire.CountSubscribers)
	if cs.local == 0 {
		return
	}
	cs.local = 0
	r.metrics.Unsubscribes++
	r.syncFIB(c)
	r.propagateMembership(c, nil)
	r.maybeDeleteChannel(c)
}
