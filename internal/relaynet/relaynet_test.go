package relaynet_test

// End-to-end acceptance for the session-relay tier (ISSUE 8): a real
// router carries the session channel; a primary relay and a hot/cold
// standby serve participants over real sockets; the primary is killed and
// the tier fails over — watchdog-driven, measured, and race-clean.

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/addr"
	"repro/internal/realnet"
	"repro/internal/relaynet"
	"repro/internal/wire"
)

func waitCond(t *testing.T, d time.Duration, cond func() bool, what string) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// inbox collects delivered content per participant, keyed by payload.
type inbox struct {
	mu    sync.Mutex
	from  map[string]uint64
	count int
}

func newInbox() *inbox { return &inbox{from: make(map[string]uint64)} }

func (ib *inbox) deliver(from uint64, _ uint32, payload []byte) {
	ib.mu.Lock()
	defer ib.mu.Unlock()
	ib.from[string(payload)] = from
	ib.count++
}

func (ib *inbox) has(payload string) (uint64, bool) {
	ib.mu.Lock()
	defer ib.mu.Unlock()
	f, ok := ib.from[payload]
	return f, ok
}

func dataRouter(t *testing.T) *realnet.Router {
	t.Helper()
	r, err := realnet.NewRouterOpts("127.0.0.1:0", realnet.Options{
		DataListen:    "127.0.0.1:0",
		FlushInterval: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { r.Close() })
	return r
}

var (
	chPrimary = addr.Channel{S: addr.MustParse("171.64.9.1"), E: addr.ExpressAddr(0x101)}
	chBackup  = addr.Channel{S: addr.MustParse("171.64.9.2"), E: addr.ExpressAddr(0x102)}
)

// TestRelaySessionEndToEnd is the acceptance path: join through registry
// discovery, floor grant, relayed delivery at every participant, kill the
// primary, standby fail-over, delivery resumes on the backup channel.
func TestRelaySessionEndToEnd(t *testing.T) {
	router := dataRouter(t)
	const beacon = 20 * time.Millisecond

	pri, err := relaynet.New(relaynet.Options{
		Router: router.Addr(), DataTarget: router.DataAddr(),
		Channel: chPrimary, Beacon: beacon,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer pri.Close()
	bak, err := relaynet.New(relaynet.Options{
		Router: router.Addr(), DataTarget: router.DataAddr(),
		Channel: chBackup, Beacon: beacon,
		Standby: &relaynet.StandbyOptions{PrimaryChannel: chPrimary, Watchdog: 8 * beacon},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer bak.Close()
	if bak.Active() {
		t.Fatal("standby active before promotion")
	}

	// Three participants, all discovering the primary relay through the
	// router registry (no Control configured), all hot standby.
	const nPart = 3
	parts := make([]*relaynet.Participant, nPart)
	boxes := make([]*inbox, nPart)
	for i := range parts {
		boxes[i] = newInbox()
		p, err := relaynet.Join(relaynet.ParticipantOptions{
			Router:    router.Addr(),
			Channel:   chPrimary,
			ID:        uint64(100 + i),
			OnContent: boxes[i].deliver,
			Standby: &relaynet.ParticipantStandby{
				Mode: relaynet.Hot, BackupChannel: chBackup, Watchdog: 10 * beacon,
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		defer p.Close()
		parts[i] = p
		if err := p.WaitJoined(5 * time.Second); err != nil {
			t.Fatal(err)
		}
	}
	waitCond(t, 10*time.Second, func() bool {
		return router.SubscriberCount(chPrimary) >= nPart && router.SubscriberCount(chBackup) >= nPart
	}, "subscriptions to converge")

	// Floor grant, then relayed delivery at every participant.
	parts[0].RequestFloor()
	if _, err := parts[0].WaitGrant(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		parts[0].Say([]byte(fmt.Sprintf("pri-%d", i)))
	}
	for pi, ib := range boxes {
		waitCond(t, 5*time.Second, func() bool {
			_, ok := ib.has("pri-4")
			return ok
		}, fmt.Sprintf("participant %d to receive relayed content", pi))
		if from, _ := ib.has("pri-0"); from != parts[0].ID() {
			t.Errorf("participant %d: content attributed to %d, want speaker %d", pi, from, parts[0].ID())
		}
	}

	// A non-holder's Say must be refused, not relayed.
	parts[1].Say([]byte("stolen-floor"))
	waitCond(t, 5*time.Second, func() bool { return parts[1].Stats().Refused >= 1 }, "refusal of non-holder data")
	if _, ok := boxes[2].has("stolen-floor"); ok {
		t.Fatal("non-holder content was relayed")
	}

	// Kill the primary. The standby's watchdog must promote it, and every
	// participant must fail over and see backup-channel data.
	pri.Close()
	waitCond(t, 15*time.Second, func() bool { return bak.Active() }, "standby promotion")
	if bak.PromotedAt().IsZero() {
		t.Fatal("promoted standby has no promotion stamp")
	}
	for pi, p := range parts {
		waitCond(t, 15*time.Second, func() bool { return p.FailedOver() }, fmt.Sprintf("participant %d fail-over", pi))
	}
	for pi, p := range parts {
		waitCond(t, 15*time.Second, func() bool { return !p.Stats().FirstBackupData.IsZero() },
			fmt.Sprintf("participant %d first backup data", pi))
		st := p.Stats()
		if st.FirstBackupData.Before(st.FailedOverAt) {
			t.Errorf("participant %d: backup data at %v precedes fail-over at %v", pi, st.FirstBackupData, st.FailedOverAt)
		}
	}

	// Delivery resumes through the backup relay.
	parts[0].RequestFloor()
	if _, err := parts[0].WaitGrant(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		parts[0].Say([]byte(fmt.Sprintf("bak-%d", i)))
	}
	for pi, ib := range boxes {
		waitCond(t, 5*time.Second, func() bool {
			_, ok := ib.has("bak-4")
			return ok
		}, fmt.Sprintf("participant %d post-fail-over delivery", pi))
	}
	if st := bak.Stats(); st.Promotions != 1 || st.Relayed < 5 {
		t.Errorf("backup stats = %+v, want 1 promotion and >=5 relayed", st)
	}
}

// killSwitch injects the primary-relay failure deterministically: it holds
// the relay's live upstream FaultConn, and once thrown it resets the
// connection and fails every redial — the relay's split-brain guard then
// silences its beacons without the process "crashing".
type killSwitch struct {
	mu   sync.Mutex
	fc   *realnet.FaultConn
	dead bool
}

var errKilled = errors.New("relaynet_test: dial refused by kill switch")

func (ks *killSwitch) dial(target string) (net.Conn, error) {
	ks.mu.Lock()
	dead := ks.dead
	ks.mu.Unlock()
	if dead {
		return nil, errKilled
	}
	conn, err := net.Dial("tcp", target)
	if err != nil {
		return nil, err
	}
	fc := realnet.NewFaultConn(conn)
	ks.mu.Lock()
	ks.fc = fc
	ks.mu.Unlock()
	return fc, nil
}

func (ks *killSwitch) kill() {
	ks.mu.Lock()
	ks.dead = true
	fc := ks.fc
	ks.mu.Unlock()
	if fc != nil {
		fc.Reset()
	}
}

// TestRelayFailOverHotAndCold covers both Section 4.2 modes against the
// injected-fault primary: the watchdog must hold while beacons flow, fire
// only on genuine silence, and the cold participant must build its backup
// branch only at fail-over.
func TestRelayFailOverHotAndCold(t *testing.T) {
	for _, mode := range []relaynet.StandbyMode{relaynet.Hot, relaynet.Cold} {
		t.Run(mode.String(), func(t *testing.T) {
			router := dataRouter(t)
			const beacon = 20 * time.Millisecond
			const watchdog = 8 * beacon

			ks := &killSwitch{}
			pri, err := relaynet.New(relaynet.Options{
				Router: router.Addr(), DataTarget: router.DataAddr(),
				Channel: chPrimary, Beacon: beacon,
				Keepalive: 10 * time.Millisecond,
				Dial:      ks.dial,
			})
			if err != nil {
				t.Fatal(err)
			}
			defer pri.Close()
			bak, err := relaynet.New(relaynet.Options{
				Router: router.Addr(), DataTarget: router.DataAddr(),
				Channel: chBackup, Beacon: beacon,
				Standby: &relaynet.StandbyOptions{PrimaryChannel: chPrimary, Watchdog: watchdog},
			})
			if err != nil {
				t.Fatal(err)
			}
			defer bak.Close()

			ib := newInbox()
			p, err := relaynet.Join(relaynet.ParticipantOptions{
				Router: router.Addr(), Channel: chPrimary, ID: 7, OnContent: ib.deliver,
				Standby: &relaynet.ParticipantStandby{
					Mode: mode, BackupChannel: chBackup,
					Control: bak.ControlAddr(), Watchdog: watchdog,
				},
			})
			if err != nil {
				t.Fatal(err)
			}
			defer p.Close()
			if err := p.WaitJoined(5 * time.Second); err != nil {
				t.Fatal(err)
			}
			wantPre := 0 // cold: nobody on the backup channel yet
			if mode == relaynet.Hot {
				wantPre = 1 // hot: the participant pre-subscribed
			}
			if n := router.SubscriberCount(chBackup); int(n) != wantPre {
				t.Fatalf("%v backup-channel subscribers = %d pre-fail-over, want %d", mode, n, wantPre)
			}

			// The watchdog regression: an idle-but-beaconing primary must
			// hold off fail-over across many watchdog intervals.
			time.Sleep(4 * watchdog)
			if p.FailedOver() || bak.Active() {
				t.Fatal("failed over while the primary was beaconing")
			}

			ks.kill()
			waitCond(t, 15*time.Second, func() bool { return bak.Active() }, "standby promotion")
			waitCond(t, 15*time.Second, func() bool { return p.FailedOver() }, "participant fail-over")
			waitCond(t, 15*time.Second, func() bool { return !p.Stats().FirstBackupData.IsZero() }, "first backup data")

			st := p.Stats()
			gap := st.FirstBackupData.Sub(st.LastPrimaryData)
			if gap <= 0 {
				t.Fatalf("fail-over gap %v, want > 0 (last primary %v, first backup %v)",
					gap, st.LastPrimaryData, st.FirstBackupData)
			}
			// The gap is at least the watchdog (silence must accumulate
			// before anyone moves); it is the headline E16 measurement.
			if gap < watchdog {
				t.Errorf("gap %v shorter than the watchdog %v: fail-over before proven silence", gap, watchdog)
			}
			t.Logf("%v fail-over gap: %v (%.1f flush windows)", mode, gap, float64(gap)/float64(beacon))

			// Delivery resumes through the promoted standby.
			p.RequestFloor()
			if _, err := p.WaitGrant(5 * time.Second); err != nil {
				t.Fatal(err)
			}
			p.Say([]byte("after-failover"))
			waitCond(t, 5*time.Second, func() bool {
				_, ok := ib.has("after-failover")
				return ok
			}, "post-fail-over delivery")
		})
	}
}

// TestAnnounceFollowsSecondarySource: a RelayAnnounce on the session
// channel makes participants subscribe to the announced direct channel and
// deliver its raw (unframed) traffic.
func TestAnnounceFollowsSecondarySource(t *testing.T) {
	router := dataRouter(t)
	pri, err := relaynet.New(relaynet.Options{
		Router: router.Addr(), DataTarget: router.DataAddr(),
		Channel: chPrimary, Beacon: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer pri.Close()

	ib := newInbox()
	p, err := relaynet.Join(relaynet.ParticipantOptions{
		Router: router.Addr(), Channel: chPrimary, ID: 9, OnContent: ib.deliver,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if err := p.WaitJoined(5 * time.Second); err != nil {
		t.Fatal(err)
	}

	direct := addr.Channel{S: addr.MustParse("171.64.9.3"), E: addr.ExpressAddr(0x103)}
	if err := pri.Announce(42, direct); err != nil {
		t.Fatal(err)
	}
	waitCond(t, 10*time.Second, func() bool { return router.SubscriberCount(direct) == 1 }, "announce-driven subscription")

	// The secondary source sends raw payloads on its direct channel.
	src, err := newDirectSource(router.DataAddr(), direct)
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	waitCond(t, 10*time.Second, func() bool {
		src.Send([]byte("direct-content"))
		_, ok := ib.has("direct-content")
		return ok
	}, "direct-channel delivery")
	if from, _ := ib.has("direct-content"); from != 0 {
		t.Errorf("direct content attributed to %d, want 0", from)
	}
}

// newDirectSource is a bare data-plane source for the secondary-speaker
// side of the announce test.
func newDirectSource(dataAddr string, ch addr.Channel) (*directSource, error) {
	ua, err := net.ResolveUDPAddr("udp", dataAddr)
	if err != nil {
		return nil, err
	}
	conn, err := net.DialUDP("udp", nil, ua)
	if err != nil {
		return nil, err
	}
	return &directSource{conn: conn, ch: ch, seq: 1}, nil
}

type directSource struct {
	conn *net.UDPConn
	ch   addr.Channel
	seq  uint32
}

func (s *directSource) Send(payload []byte) error {
	pkt := wire.DataPacket{Channel: s.ch, Seq: s.seq, Payload: payload}
	s.seq++
	_, err := s.conn.Write(pkt.AppendTo(nil))
	return err
}

func (s *directSource) Close() error { return s.conn.Close() }
