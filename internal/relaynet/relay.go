// Package relaynet is the Section 4 session-relay tier on the real data
// plane: the production counterpart of the netsim internal/relay package.
//
// A Relay is the single EXPRESS source of its session channel (S = the
// relay host, only S may send). Participants unicast control traffic —
// join, floor request/release, and content to be relayed — to the relay's
// UDP control socket using the wire.RelayMsg framing; the relay stamps
// relayed content onto the channel through the router's data plane, so
// every subscriber receives it over ordinary (S,E) replication.
//
// The relay's TCP neighbor session advertises the control endpoint
// (SessionOptions.RelayPort/RelayChannel), so participants can discover it
// from any on-tree router with CountRelayAddr4/CountRelayPort queries
// instead of out-of-band configuration.
//
// Fail-over (Section 4.2): a standby Relay subscribes to the primary's
// channel and feeds a deadline watchdog exclusively from channel arrivals —
// the primary beacons every flush window, so an idle-but-healthy session
// still proves liveness. Genuine silence of a full watchdog interval
// promotes the standby: it starts beaconing and relaying on its own
// channel, where hot participants are already subscribed and cold ones
// join on their own watchdog expiry. A relay never beacons while its
// neighbor session is down: a promoted standby and a partitioned old
// primary cannot both claim a live channel (split-brain guard).
package relaynet

import (
	"fmt"
	"net"
	"net/netip"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/addr"
	"repro/internal/dataplane"
	"repro/internal/obs"
	"repro/internal/realnet"
	"repro/internal/wire"
)

// Refusal reasons carried in RelayFloorDeny / RelayRefused tokens.
const (
	// RefuseNotHolder: RelayData from a participant that does not hold the
	// floor (and is not the relay itself).
	RefuseNotHolder uint32 = 1
	// RefuseQueueFull: the floor queue is at its policy limit.
	RefuseQueueFull uint32 = 2
	// RefuseStandby: the relay is a standby that has not been promoted.
	RefuseStandby uint32 = 3
)

// FloorPolicy bounds the Section 4.4 floor-control state.
type FloorPolicy struct {
	// MaxQueue is how many floor requests may wait behind the holder before
	// further requests are denied. Default 8.
	MaxQueue int
}

// StandbyOptions turns a Relay into a Section 4.2 backup: it watches the
// primary's channel and promotes itself after Watchdog of silence.
type StandbyOptions struct {
	// PrimaryChannel is the channel whose silence triggers promotion.
	PrimaryChannel addr.Channel
	// Watchdog is how long primary silence is tolerated. Default 5 beacon
	// intervals.
	Watchdog time.Duration
}

// Options configures a Relay.
type Options struct {
	// Router is the edge router's TCP control address.
	Router string
	// DataTarget is the router's data-plane UDP address (Router.DataAddr())
	// where the relay injects channel packets.
	DataTarget string
	// Channel is the session channel this relay sources.
	Channel addr.Channel
	// Control is the UDP listen address for participant unicast control.
	// Default "127.0.0.1:0".
	Control string
	// Beacon is the liveness-beacon interval — the relay tier's flush
	// window, the unit fail-over gaps are measured in. Default 50ms.
	Beacon time.Duration
	// Floor is the floor-control policy.
	Floor FloorPolicy
	// Standby, when non-nil, starts the relay as a backup for another
	// relay's channel instead of an active primary.
	Standby *StandbyOptions
	// SessionID pins the neighbor-session id (0 picks a random one).
	SessionID uint64
	// Keepalive overrides the neighbor session's keepalive interval.
	Keepalive time.Duration
	// PacePPS paces the channel source (0 = unpaced).
	PacePPS int
	// Dial overrides session dialing; tests inject fault-wrapped
	// connections here.
	Dial func(string) (net.Conn, error)
	// Reg, when non-nil, receives the relay_* metrics.
	Reg *obs.Registry
}

func (o Options) withDefaults() Options {
	if o.Control == "" {
		o.Control = "127.0.0.1:0"
	}
	if o.Beacon <= 0 {
		o.Beacon = 50 * time.Millisecond
	}
	if o.Floor.MaxQueue <= 0 {
		o.Floor.MaxQueue = 8
	}
	if o.Standby != nil && o.Standby.Watchdog <= 0 {
		o.Standby.Watchdog = 5 * o.Beacon
	}
	return o
}

// RelayStats is a snapshot of the relay's counters.
type RelayStats struct {
	Participants int
	Joins        uint64
	Relayed      uint64
	Beacons      uint64
	FloorGrants  uint64
	FloorDenies  uint64
	Refused      uint64
	Promotions   uint64
	Announces    uint64
}

// Relay is one session relay: primary (active from the start) or standby
// (active after promotion).
type Relay struct {
	opts Options

	ctrl *net.UDPConn
	src  *dataplane.Source
	sess *realnet.Session
	recv *dataplane.Receiver // standby primary-channel watch; nil on a primary

	// active gates beaconing and relaying: a standby refuses work until the
	// watchdog promotes it.
	active atomic.Bool
	// lastPrimary is the UnixNano arrival stamp of the most recent
	// primary-channel packet — the deadline watchdog's liveness evidence.
	lastPrimary atomic.Int64
	promotedAt  atomic.Int64
	nextToken   atomic.Uint32

	mu     sync.Mutex
	parts  map[uint64]netip.AddrPort
	holder uint64
	queue  []uint64
	cbuf   []byte // control-reply encode buffer

	sendMu sync.Mutex
	sbuf   []byte // channel-send encode buffer

	joins, relayed, beacons   atomic.Uint64
	grants, denies, refusedN  atomic.Uint64
	promotions, announces     atomic.Uint64

	closed atomic.Bool
	quit   chan struct{}
	wg     sync.WaitGroup
}

// New starts a relay. A primary begins beaconing immediately; a standby
// (opts.Standby non-nil) subscribes to the primary channel and waits.
func New(opts Options) (*Relay, error) {
	opts = opts.withDefaults()
	if !opts.Channel.Valid() {
		return nil, fmt.Errorf("relaynet: invalid channel %v", opts.Channel)
	}
	ua, err := net.ResolveUDPAddr("udp", opts.Control)
	if err != nil {
		return nil, err
	}
	ctrl, err := net.ListenUDP("udp", ua)
	if err != nil {
		return nil, err
	}
	r := &Relay{
		opts:  opts,
		ctrl:  ctrl,
		parts: make(map[uint64]netip.AddrPort),
		cbuf:  make([]byte, 0, wire.MaxRelayPacket),
		sbuf:  make([]byte, 0, wire.MaxRelayPacket),
		quit:  make(chan struct{}),
	}
	r.src, err = dataplane.NewSource(opts.DataTarget, opts.Channel, dataplane.SourceOptions{PacePPS: opts.PacePPS})
	if err != nil {
		ctrl.Close()
		return nil, err
	}
	var dataPort uint16
	if opts.Standby != nil {
		r.recv, err = dataplane.NewReceiver()
		if err != nil {
			ctrl.Close()
			r.src.Close()
			return nil, err
		}
		dataPort = r.recv.Port()
	}
	r.sess, err = realnet.DialSession(opts.Router, realnet.SessionOptions{
		SessionID:         opts.SessionID,
		DataPort:          dataPort,
		RelayPort:         uint16(ctrl.LocalAddr().(*net.UDPAddr).Port),
		RelayChannel:      opts.Channel,
		KeepaliveInterval: opts.Keepalive,
		Dial:              opts.Dial,
	})
	if err != nil {
		ctrl.Close()
		r.src.Close()
		if r.recv != nil {
			r.recv.Close()
		}
		return nil, err
	}
	if opts.Standby != nil {
		r.lastPrimary.Store(time.Now().UnixNano())
		if err := r.sess.Subscribe(opts.Standby.PrimaryChannel); err == nil {
			r.sess.Flush()
		}
		r.wg.Add(2)
		go r.watchLoop()
		go r.watchdog()
	} else {
		r.active.Store(true)
	}
	r.registerMetrics()
	r.wg.Add(2)
	go r.ctrlLoop()
	go r.beaconLoop()
	return r, nil
}

// ControlAddr returns the relay's UDP control address — what participants
// unicast to, and what the router registry advertises.
func (r *Relay) ControlAddr() string { return r.ctrl.LocalAddr().String() }

// Channel returns the channel this relay sources.
func (r *Relay) Channel() addr.Channel { return r.opts.Channel }

// Session exposes the relay's neighbor session.
func (r *Relay) Session() *realnet.Session { return r.sess }

// Active reports whether the relay is sourcing its channel (a primary, or
// a promoted standby).
func (r *Relay) Active() bool { return r.active.Load() }

// PromotedAt returns when a standby promoted itself (zero time if never).
func (r *Relay) PromotedAt() time.Time {
	n := r.promotedAt.Load()
	if n == 0 {
		return time.Time{}
	}
	return time.Unix(0, n)
}

// Holder returns the participant currently holding the floor (0 = none).
func (r *Relay) Holder() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.holder
}

// Stats snapshots the relay's counters.
func (r *Relay) Stats() RelayStats {
	r.mu.Lock()
	n := len(r.parts)
	r.mu.Unlock()
	return RelayStats{
		Participants: n,
		Joins:        r.joins.Load(),
		Relayed:      r.relayed.Load(),
		Beacons:      r.beacons.Load(),
		FloorGrants:  r.grants.Load(),
		FloorDenies:  r.denies.Load(),
		Refused:      r.refusedN.Load(),
		Promotions:   r.promotions.Load(),
		Announces:    r.announces.Load(),
	}
}

// Send relays content originated by the relay host itself (the Section 4.3
// lecturer case: the lecture site is also the SR). From is 0 on the wire.
func (r *Relay) Send(payload []byte) error {
	if !r.active.Load() {
		return fmt.Errorf("relaynet: standby relay is not active")
	}
	r.relayed.Add(1)
	return r.sendChannel(&wire.RelayMsg{Kind: wire.RelayData, Payload: payload})
}

// Announce tells the session a secondary source switched to its direct
// channel (Section 4.1): participants that hear it subscribe to direct and
// receive that source without the relay hop.
func (r *Relay) Announce(from uint64, direct addr.Channel) error {
	if !r.active.Load() {
		return fmt.Errorf("relaynet: standby relay is not active")
	}
	r.announces.Add(1)
	return r.sendChannel(&wire.RelayMsg{Kind: wire.RelayAnnounce, From: from, Channel: direct})
}

// Close shuts the relay down: control socket, channel source, watch
// receiver, and neighbor session.
func (r *Relay) Close() error {
	if r.closed.Swap(true) {
		return nil
	}
	close(r.quit)
	r.ctrl.Close()
	if r.recv != nil {
		r.recv.Close()
	}
	r.src.Close()
	err := r.sess.Close()
	r.wg.Wait()
	return err
}

// sendChannel encodes m as a DataPacket payload and injects it on the
// channel. Serialized: the source is single-sender.
func (r *Relay) sendChannel(m *wire.RelayMsg) error {
	r.sendMu.Lock()
	defer r.sendMu.Unlock()
	r.sbuf = m.AppendTo(r.sbuf[:0])
	return r.src.Send(r.sbuf)
}

// ctrlLoop serves participant unicast: every datagram is one RelayMsg.
func (r *Relay) ctrlLoop() {
	defer r.wg.Done()
	buf := make([]byte, wire.MaxRelayPacket)
	for {
		n, from, err := r.ctrl.ReadFromUDPAddrPort(buf)
		if err != nil {
			return // socket closed
		}
		var m wire.RelayMsg
		if _, err := m.DecodeFromBytes(buf[:n]); err != nil {
			continue // malformed datagram: drop, never crash the daemon
		}
		r.handleCtrl(&m, from)
	}
}

func (r *Relay) handleCtrl(m *wire.RelayMsg, from netip.AddrPort) {
	r.mu.Lock()
	defer r.mu.Unlock()
	switch m.Kind {
	case wire.RelayJoin:
		r.parts[m.From] = from
		r.joins.Add(1)
		r.replyLocked(from, &wire.RelayMsg{Kind: wire.RelayJoinAck, From: m.From, Channel: r.opts.Channel})
	case wire.RelayLeave:
		delete(r.parts, m.From)
		if r.holder == m.From {
			r.releaseLocked()
		}
		r.dequeue(m.From)
	case wire.RelayFloorRequest:
		r.parts[m.From] = from // a floor request is an implicit join
		r.floorRequestLocked(m.From, from)
	case wire.RelayFloorRelease:
		if r.holder == m.From {
			r.releaseLocked()
		}
	case wire.RelayData:
		if !r.active.Load() {
			r.refusedN.Add(1)
			r.replyLocked(from, &wire.RelayMsg{Kind: wire.RelayRefused, From: m.From, Token: RefuseStandby})
			return
		}
		if r.holder != m.From {
			r.refusedN.Add(1)
			r.replyLocked(from, &wire.RelayMsg{Kind: wire.RelayRefused, From: m.From, Token: RefuseNotHolder})
			return
		}
		r.relayed.Add(1)
		r.sendChannel(&wire.RelayMsg{Kind: wire.RelayData, From: m.From, Payload: m.Payload})
	}
}

// floorRequestLocked grants, queues, or denies. Callers hold r.mu.
func (r *Relay) floorRequestLocked(id uint64, at netip.AddrPort) {
	if r.holder == 0 || r.holder == id {
		r.grantLocked(id, at)
		return
	}
	for _, q := range r.queue {
		if q == id {
			return // already waiting
		}
	}
	if len(r.queue) >= r.opts.Floor.MaxQueue {
		r.denies.Add(1)
		r.replyLocked(at, &wire.RelayMsg{Kind: wire.RelayFloorDeny, From: id, Token: RefuseQueueFull})
		return
	}
	r.queue = append(r.queue, id)
}

// releaseLocked frees the floor and promotes the next queued requester.
// Callers hold r.mu.
func (r *Relay) releaseLocked() {
	r.holder = 0
	for len(r.queue) > 0 {
		next := r.queue[0]
		r.queue = r.queue[1:]
		if at, ok := r.parts[next]; ok {
			r.grantLocked(next, at)
			return
		}
	}
}

func (r *Relay) grantLocked(id uint64, at netip.AddrPort) {
	r.holder = id
	r.grants.Add(1)
	r.replyLocked(at, &wire.RelayMsg{Kind: wire.RelayFloorGrant, From: id, Token: r.nextToken.Add(1)})
}

func (r *Relay) dequeue(id uint64) {
	for i, q := range r.queue {
		if q == id {
			r.queue = append(r.queue[:i], r.queue[i+1:]...)
			return
		}
	}
}

// replyLocked unicasts m to a participant. Callers hold r.mu (which also
// serializes cbuf).
func (r *Relay) replyLocked(to netip.AddrPort, m *wire.RelayMsg) {
	r.cbuf = m.AppendTo(r.cbuf[:0])
	r.ctrl.WriteToUDPAddrPort(r.cbuf, to)
}

// beaconLoop proves the relay alive on the channel every Beacon interval —
// the signal every fail-over watchdog in the tier (standby relays, hot and
// cold participants) feeds on. An inactive standby stays silent, and so
// does a relay whose neighbor session is down: beaconing while partitioned
// from the router would let a zombie primary fight a promoted standby for
// the session (split brain) the moment the partition heals.
func (r *Relay) beaconLoop() {
	defer r.wg.Done()
	t := time.NewTicker(r.opts.Beacon)
	defer t.Stop()
	for {
		select {
		case <-r.quit:
			return
		case <-t.C:
			if !r.active.Load() || !r.sess.Connected() {
				continue
			}
			if err := r.sendChannel(&wire.RelayMsg{Kind: wire.RelayBeacon}); err == nil {
				r.beacons.Add(1)
			}
		}
	}
}

// watchLoop (standby only) stamps lastPrimary on every primary-channel
// arrival. Beacons count: the watchdog watches relay liveness, not session
// chatter.
func (r *Relay) watchLoop() {
	defer r.wg.Done()
	for {
		pkt, err := r.recv.Recv()
		if err != nil {
			return // receiver closed
		}
		if pkt.Channel == r.opts.Standby.PrimaryChannel {
			r.lastPrimary.Store(time.Now().UnixNano())
		}
	}
}

// watchdog (standby only) runs the deadline check: one timer per watchdog
// window, re-armed for the remainder whenever the primary proved alive
// inside it. Only genuine silence of a full Watchdog interval promotes.
func (r *Relay) watchdog() {
	defer r.wg.Done()
	wd := r.opts.Standby.Watchdog
	t := time.NewTimer(wd)
	defer t.Stop()
	for {
		select {
		case <-r.quit:
			return
		case <-t.C:
			idle := time.Since(time.Unix(0, r.lastPrimary.Load()))
			if idle < wd {
				t.Reset(wd - idle)
				continue
			}
			r.promote()
			return
		}
	}
}

// promote activates a standby: it starts beaconing and accepting relay
// work on its own channel, where hot participants are already subscribed.
func (r *Relay) promote() {
	r.promotions.Add(1)
	r.promotedAt.Store(time.Now().UnixNano())
	r.active.Store(true)
}

// registerMetrics publishes the relay_* family on the configured registry.
func (r *Relay) registerMetrics() {
	reg := r.opts.Reg
	if reg == nil {
		return
	}
	reg.NewGaugeFunc("relay_participants", "registered session participants", func() float64 {
		r.mu.Lock()
		defer r.mu.Unlock()
		return float64(len(r.parts))
	})
	reg.NewGaugeFunc("relay_active", "1 while sourcing the channel (primary or promoted standby)", func() float64 {
		if r.active.Load() {
			return 1
		}
		return 0
	})
	reg.NewCounterFunc("relay_joins_total", "participant joins accepted", r.joins.Load)
	reg.NewCounterFunc("relay_relayed_total", "content packets relayed onto the channel", r.relayed.Load)
	reg.NewCounterFunc("relay_beacons_total", "liveness beacons sent", r.beacons.Load)
	reg.NewCounterFunc("relay_floor_grants_total", "floor grants issued", r.grants.Load)
	reg.NewCounterFunc("relay_floor_denies_total", "floor requests denied by policy", r.denies.Load)
	reg.NewCounterFunc("relay_refused_total", "RelayData refused (not holder / standby)", r.refusedN.Load)
	reg.NewCounterFunc("relay_promotions_total", "standby promotions (fail-overs)", r.promotions.Load)
	reg.NewCounterFunc("relay_announces_total", "secondary-source announcements sent", r.announces.Load)
}
