package relaynet

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"net/netip"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/addr"
	"repro/internal/dataplane"
	"repro/internal/realnet"
	"repro/internal/wire"
)

// StandbyMode selects the Section 4.2 fail-over flavour.
type StandbyMode uint8

const (
	// Hot pre-subscribes to the backup channel, paying its state cost up
	// front for a faster resume after fail-over.
	Hot StandbyMode = iota
	// Cold joins the backup channel only after the primary fails.
	Cold
)

func (m StandbyMode) String() string {
	if m == Hot {
		return "hot"
	}
	return "cold"
}

// ParticipantStandby wires a participant to a backup relay.
type ParticipantStandby struct {
	Mode StandbyMode
	// BackupChannel is the standby relay's channel.
	BackupChannel addr.Channel
	// Control is the backup relay's control address; empty discovers it
	// through the router's relay registry after fail-over.
	Control string
	// Watchdog is how long primary silence is tolerated before fail-over.
	// Default 5 beacon intervals at the default beacon rate (250ms).
	Watchdog time.Duration
}

// ParticipantOptions configures Join.
type ParticipantOptions struct {
	// Router is the participant's edge router TCP address.
	Router string
	// Channel is the primary session channel.
	Channel addr.Channel
	// Control is the primary relay's UDP control address; empty discovers
	// it through the router's relay registry (CountRelayAddr4/Port).
	Control string
	// ID is the participant identity carried in RelayMsg.From (0 picks a
	// random one).
	ID uint64
	// SessionID pins the neighbor-session id (0 picks a random one).
	SessionID uint64
	// Standby, when non-nil, arms fail-over to a backup relay.
	Standby *ParticipantStandby
	// OnContent receives relayed session content: the original speaker's
	// id (0 = the relay itself or a direct secondary source), the channel
	// sequence number, and the payload (borrowed; copy to retain).
	OnContent func(from uint64, seq uint32, payload []byte)
}

// ParticipantStats snapshots delivery and fail-over accounting.
type ParticipantStats struct {
	Received uint64 // content packets delivered
	Missed   uint64 // sequence-gap slots on the current channel
	Refused  uint64 // RelayRefused replies (spoke without the floor)
	Denied   uint64 // RelayFloorDeny replies

	FailedOver bool
	// LastPrimaryData is the arrival time of the last primary-channel
	// packet; FirstBackupData − LastPrimaryData is the total outage the
	// fail-over gap measures (in flush windows: divide by the beacon
	// interval).
	LastPrimaryData time.Time
	FailedOverAt    time.Time
	FirstBackupData time.Time
}

// Participant is one session member on the real data plane: an EXPRESS
// subscriber to the session channel plus a unicast control leg to the
// relay.
type Participant struct {
	opts ParticipantOptions
	id   uint64

	recv *dataplane.Receiver
	sess *realnet.Session
	ctrl *net.UDPConn

	relayAddr atomic.Value // netip.AddrPort: current relay control endpoint

	lastPrimary  atomic.Int64 // UnixNano of last primary-channel arrival
	failedOverAt atomic.Int64
	firstBackup  atomic.Int64
	failedOver   atomic.Bool

	mu         sync.Mutex
	seqStarted bool
	nextSeq    uint32
	received   uint64
	missed     uint64
	direct     map[addr.Channel]bool

	joinOnce sync.Once
	joined   chan struct{}
	grants   chan uint32
	refused  atomic.Uint64
	denied   atomic.Uint64

	sendMu sync.Mutex
	sbuf   []byte

	closed atomic.Bool
	quit   chan struct{}
	wg     sync.WaitGroup
}

// ErrNoRelay reports that relay discovery found no registered relay.
var ErrNoRelay = errors.New("relaynet: no relay registered for channel")

// Join connects a participant: subscribe to the session channel (and the
// backup channel when hot standby is configured), locate the relay, and
// register with it.
func Join(opts ParticipantOptions) (*Participant, error) {
	for opts.ID == 0 {
		opts.ID = rand.Uint64()
	}
	if opts.Standby != nil && opts.Standby.Watchdog <= 0 {
		opts.Standby.Watchdog = 250 * time.Millisecond
	}
	p := &Participant{
		opts:   opts,
		id:     opts.ID,
		direct: make(map[addr.Channel]bool),
		joined: make(chan struct{}),
		grants: make(chan uint32, 4),
		sbuf:   make([]byte, 0, wire.MaxRelayPacket),
		quit:   make(chan struct{}),
	}
	var err error
	p.recv, err = dataplane.NewReceiver()
	if err != nil {
		return nil, err
	}
	p.sess, err = realnet.DialSession(opts.Router, realnet.SessionOptions{
		SessionID: opts.SessionID,
		DataPort:  p.recv.Port(),
	})
	if err != nil {
		p.recv.Close()
		return nil, err
	}
	p.sess.Subscribe(opts.Channel)
	if opts.Standby != nil && opts.Standby.Mode == Hot {
		p.sess.Subscribe(opts.Standby.BackupChannel)
	}
	p.sess.Flush()

	ua, err := net.ResolveUDPAddr("udp", "127.0.0.1:0")
	if err == nil {
		p.ctrl, err = net.ListenUDP("udp", ua)
	}
	if err != nil {
		p.sess.Close()
		p.recv.Close()
		return nil, err
	}

	ap, err := p.locateRelay(opts.Control, opts.Channel)
	if err != nil {
		p.Close()
		return nil, err
	}
	p.relayAddr.Store(ap)
	p.lastPrimary.Store(time.Now().UnixNano())

	p.wg.Add(2)
	go p.dataLoop()
	go p.ctrlLoop()
	if opts.Standby != nil {
		p.wg.Add(1)
		go p.watchdog()
	}
	p.sendCtrl(&wire.RelayMsg{Kind: wire.RelayJoin, From: p.id})
	return p, nil
}

// locateRelay resolves the relay control endpoint: an explicit address
// when configured, the router's relay registry otherwise. Discovery
// retries briefly — the relay's Hello may still be in flight.
func (p *Participant) locateRelay(control string, ch addr.Channel) (netip.AddrPort, error) {
	if control != "" {
		return netip.ParseAddrPort(control)
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		a, err1 := p.sess.Query(ch, wire.CountRelayAddr4, 250*time.Millisecond)
		port, err2 := p.sess.Query(ch, wire.CountRelayPort, 250*time.Millisecond)
		if err1 == nil && err2 == nil && a != 0 && port != 0 {
			ip := netip.AddrFrom4([4]byte{byte(a >> 24), byte(a >> 16), byte(a >> 8), byte(a)})
			return netip.AddrPortFrom(ip, uint16(port)), nil
		}
		time.Sleep(20 * time.Millisecond)
	}
	return netip.AddrPort{}, ErrNoRelay
}

// ID returns the participant's identity.
func (p *Participant) ID() uint64 { return p.id }

// Session exposes the participant's neighbor session.
func (p *Participant) Session() *realnet.Session { return p.sess }

// RequestFloor asks the current relay for the floor.
func (p *Participant) RequestFloor() { p.sendCtrl(&wire.RelayMsg{Kind: wire.RelayFloorRequest, From: p.id}) }

// ReleaseFloor returns the floor.
func (p *Participant) ReleaseFloor() { p.sendCtrl(&wire.RelayMsg{Kind: wire.RelayFloorRelease, From: p.id}) }

// Say relays content through the relay; it reaches the session only while
// this participant holds the floor.
func (p *Participant) Say(payload []byte) {
	p.sendCtrl(&wire.RelayMsg{Kind: wire.RelayData, From: p.id, Payload: payload})
}

// WaitJoined blocks until the relay acknowledged the join.
func (p *Participant) WaitJoined(timeout time.Duration) error {
	select {
	case <-p.joined:
		return nil
	case <-time.After(timeout):
		return fmt.Errorf("relaynet: join not acknowledged within %v", timeout)
	}
}

// WaitGrant blocks until a floor grant arrives and returns its token.
func (p *Participant) WaitGrant(timeout time.Duration) (uint32, error) {
	select {
	case tok := <-p.grants:
		return tok, nil
	case <-time.After(timeout):
		return 0, fmt.Errorf("relaynet: no floor grant within %v", timeout)
	}
}

// FailedOver reports whether the participant switched to the backup relay.
func (p *Participant) FailedOver() bool { return p.failedOver.Load() }

// Stats snapshots delivery and fail-over accounting.
func (p *Participant) Stats() ParticipantStats {
	p.mu.Lock()
	received, missed := p.received, p.missed
	p.mu.Unlock()
	return ParticipantStats{
		Received:        received,
		Missed:          missed,
		Refused:         p.refused.Load(),
		Denied:          p.denied.Load(),
		FailedOver:      p.failedOver.Load(),
		LastPrimaryData: nanoTime(p.lastPrimary.Load()),
		FailedOverAt:    nanoTime(p.failedOverAt.Load()),
		FirstBackupData: nanoTime(p.firstBackup.Load()),
	}
}

func nanoTime(n int64) time.Time {
	if n == 0 {
		return time.Time{}
	}
	return time.Unix(0, n)
}

// Close leaves the session and releases every socket.
func (p *Participant) Close() error {
	if p.closed.Swap(true) {
		return nil
	}
	close(p.quit)
	if p.ctrl != nil {
		p.sendCtrl(&wire.RelayMsg{Kind: wire.RelayLeave, From: p.id})
		p.ctrl.Close()
	}
	p.recv.Close()
	err := p.sess.Close()
	p.wg.Wait()
	return err
}

// sendCtrl unicasts one control message to the current relay.
func (p *Participant) sendCtrl(m *wire.RelayMsg) {
	ap, _ := p.relayAddr.Load().(netip.AddrPort)
	if !ap.IsValid() {
		return
	}
	p.sendMu.Lock()
	defer p.sendMu.Unlock()
	p.sbuf = m.AppendTo(p.sbuf[:0])
	p.ctrl.WriteToUDPAddrPort(p.sbuf, ap)
}

// ctrlLoop consumes unicast replies from the relay.
func (p *Participant) ctrlLoop() {
	defer p.wg.Done()
	buf := make([]byte, wire.MaxRelayPacket)
	for {
		n, _, err := p.ctrl.ReadFromUDPAddrPort(buf)
		if err != nil {
			return
		}
		var m wire.RelayMsg
		if _, err := m.DecodeFromBytes(buf[:n]); err != nil {
			continue
		}
		switch m.Kind {
		case wire.RelayJoinAck:
			p.joinOnce.Do(func() { close(p.joined) })
		case wire.RelayFloorGrant:
			select {
			case p.grants <- m.Token:
			default:
			}
		case wire.RelayFloorDeny:
			p.denied.Add(1)
		case wire.RelayRefused:
			p.refused.Add(1)
		}
	}
}

// dataLoop consumes channel traffic from the data plane.
func (p *Participant) dataLoop() {
	defer p.wg.Done()
	for {
		pkt, err := p.recv.Recv()
		if err != nil {
			return
		}
		p.onChannel(&pkt)
	}
}

// onChannel dispatches one channel packet by its (S,E) identity: relay
// framing on the session and backup channels, raw payloads on direct
// channels joined via announcements.
func (p *Participant) onChannel(pkt *wire.DataPacket) {
	p.mu.Lock()
	isDirect := p.direct[pkt.Channel]
	p.mu.Unlock()
	if isDirect {
		p.deliver(0, pkt.Seq, pkt.Payload, false)
		return
	}

	var m wire.RelayMsg
	if _, err := m.DecodeFromBytes(pkt.Payload); err != nil {
		return
	}

	switch {
	case pkt.Channel == p.opts.Channel:
		if p.failedOver.Load() {
			return // a zombie primary's traffic after fail-over
		}
		p.lastPrimary.Store(time.Now().UnixNano())
	case p.opts.Standby != nil && pkt.Channel == p.opts.Standby.BackupChannel:
		if !p.failedOver.Load() {
			return // hot pre-subscription; never feeds the watchdog
		}
		p.firstBackup.CompareAndSwap(0, time.Now().UnixNano())
	default:
		return
	}

	switch m.Kind {
	case wire.RelayBeacon:
		// Liveness only; already stamped above.
	case wire.RelayData:
		p.deliver(m.From, pkt.Seq, m.Payload, true)
	case wire.RelayAnnounce:
		p.mu.Lock()
		follow := !p.direct[m.Channel]
		if follow {
			p.direct[m.Channel] = true
		}
		p.mu.Unlock()
		if follow {
			p.sess.Subscribe(m.Channel)
			p.sess.Flush()
		}
	}
}

// deliver runs the serial sequence-gap accounting and hands content to the
// application. tracked distinguishes the relay-framed session stream
// (single source, gaps meaningful) from direct channels (their own
// counters, tracked by the aggregate receiver stats only).
func (p *Participant) deliver(from uint64, seq uint32, payload []byte, tracked bool) {
	p.mu.Lock()
	if tracked {
		if !p.seqStarted {
			p.seqStarted = true
			p.nextSeq = seq + 1
		} else {
			if wire.SeqAfter(seq, p.nextSeq) {
				p.missed += uint64(wire.SeqDelta(seq, p.nextSeq))
			}
			// A serially late packet (reorder or repair) must not drag the
			// expectation backwards and double-count the gap it fills.
			p.nextSeq = wire.SeqMax(p.nextSeq, seq+1)
		}
	}
	p.received++
	cb := p.opts.OnContent
	p.mu.Unlock()
	if cb != nil {
		cb(from, seq, payload)
	}
}

// watchdog runs the participant's deadline check, mirroring the standby
// relay's: one timer per watchdog window, re-armed for the remainder when
// the primary proved alive inside it.
func (p *Participant) watchdog() {
	defer p.wg.Done()
	wd := p.opts.Standby.Watchdog
	t := time.NewTimer(wd)
	defer t.Stop()
	for {
		select {
		case <-p.quit:
			return
		case <-t.C:
			idle := time.Since(time.Unix(0, p.lastPrimary.Load()))
			if idle < wd {
				t.Reset(wd - idle)
				continue
			}
			p.failOver()
			return
		}
	}
}

// failOver switches to the backup relay: hot standby already holds the
// subscription; cold standby builds the branch now. The sequence tracker
// restarts — the backup relay owns its own channel counter.
func (p *Participant) failOver() {
	if p.failedOver.Swap(true) {
		return
	}
	p.failedOverAt.Store(time.Now().UnixNano())
	sb := p.opts.Standby
	p.mu.Lock()
	p.seqStarted = false
	p.mu.Unlock()
	if sb.Mode == Cold {
		p.sess.Subscribe(sb.BackupChannel)
	}
	p.sess.Unsubscribe(p.opts.Channel)
	p.sess.Flush()
	if ap, err := p.locateRelay(sb.Control, sb.BackupChannel); err == nil {
		p.relayAddr.Store(ap)
		p.sendCtrl(&wire.RelayMsg{Kind: wire.RelayJoin, From: p.id})
	}
}
