package relaynet

import (
	"net"
	"sync/atomic"
)

// LossProxy is a deterministic lossy UDP hop for repair testing: it
// forwards datagrams to a fixed target, dropping every Nth. Interpose it
// on the router→receiver path by advertising the proxy's port as the
// session DataPort and pointing the proxy at the real receiver — loss then
// lands exactly where NACK-based repair must detect it, with a drop
// pattern tests can predict packet-for-packet.
type LossProxy struct {
	conn   *net.UDPConn
	target *net.UDPAddr
	every  uint64 // drop datagrams where count % every == 0; 0 = lossless

	count     atomic.Uint64
	dropped   atomic.Uint64
	forwarded atomic.Uint64

	closed atomic.Bool
	done   chan struct{}
}

// NewLossProxy listens on an ephemeral localhost port and forwards to
// target, dropping every Nth datagram (1-based: with every=4, datagrams
// 4, 8, 12, ... are dropped). every <= 0 forwards everything.
func NewLossProxy(target string, every int) (*LossProxy, error) {
	ta, err := net.ResolveUDPAddr("udp", target)
	if err != nil {
		return nil, err
	}
	la, err := net.ResolveUDPAddr("udp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	conn, err := net.ListenUDP("udp", la)
	if err != nil {
		return nil, err
	}
	p := &LossProxy{conn: conn, target: ta, done: make(chan struct{})}
	if every > 0 {
		p.every = uint64(every)
	}
	go p.run()
	return p, nil
}

// Addr returns the proxy's listen address — what to advertise in place of
// the real destination.
func (p *LossProxy) Addr() string { return p.conn.LocalAddr().String() }

// Port returns the proxy's UDP port.
func (p *LossProxy) Port() uint16 { return uint16(p.conn.LocalAddr().(*net.UDPAddr).Port) }

// Dropped returns how many datagrams the proxy has discarded.
func (p *LossProxy) Dropped() uint64 { return p.dropped.Load() }

// Forwarded returns how many datagrams the proxy has passed through.
func (p *LossProxy) Forwarded() uint64 { return p.forwarded.Load() }

// Close stops the proxy.
func (p *LossProxy) Close() error {
	if p.closed.Swap(true) {
		return nil
	}
	err := p.conn.Close()
	<-p.done
	return err
}

func (p *LossProxy) run() {
	defer close(p.done)
	buf := make([]byte, 64<<10)
	for {
		n, _, err := p.conn.ReadFromUDPAddrPort(buf)
		if err != nil {
			return
		}
		c := p.count.Add(1)
		if p.every > 0 && c%p.every == 0 {
			p.dropped.Add(1)
			continue
		}
		if _, err := p.conn.WriteToUDP(buf[:n], p.target); err == nil {
			p.forwarded.Add(1)
		}
	}
}
