package realnet

import (
	"errors"
	"math/rand"
	"net"
	"os"
	"sync"
	"testing"
	"time"

	"repro/internal/addr"
	"repro/internal/wire"
)

// discardListener accepts connections and drains them, standing in for a
// router when a test only needs a live TCP peer.
func discardListener(t *testing.T) net.Listener {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				buf := make([]byte, 4096)
				for {
					if _, err := c.Read(buf); err != nil {
						c.Close()
						return
					}
				}
			}()
		}
	}()
	t.Cleanup(func() { ln.Close() })
	return ln
}

// tcpPair returns the two ends of a loopback TCP connection.
func tcpPair(t *testing.T) (client, server net.Conn) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	type res struct {
		c   net.Conn
		err error
	}
	ch := make(chan res, 1)
	go func() {
		c, err := ln.Accept()
		ch <- res{c, err}
	}()
	client, err = net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	r := <-ch
	if r.err != nil {
		client.Close()
		t.Fatal(r.err)
	}
	t.Cleanup(func() { client.Close(); r.c.Close() })
	return client, r.c
}

// TestClientCloseReturnsFlushError is the regression test for the swallowed
// flush error: Close used to discard the Flush result, so a client whose
// final buffered events never reached the router reported a clean shutdown.
func TestClientCloseReturnsFlushError(t *testing.T) {
	ln := discardListener(t)

	// Failure path: the connection dies before the final flush, so the
	// buffered Subscribe is lost and Close must say so.
	raw, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	fc := NewFaultConn(raw)
	c := newClient(fc)
	ch := addr.Channel{S: addr.MustParse("10.0.0.1"), E: addr.ExpressAddr(1)}
	if err := c.Subscribe(ch); err != nil {
		t.Fatal(err) // buffered, must not touch the socket yet
	}
	fc.FailAfterWrites(0)
	if err := c.Close(); !errors.Is(err, ErrInjectedReset) {
		t.Errorf("Close = %v, want the flush error (%v)", err, ErrInjectedReset)
	}

	// Success path unchanged: a healthy connection closes clean.
	c2, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	if err := c2.Subscribe(ch); err != nil {
		t.Fatal(err)
	}
	if err := c2.Close(); err != nil {
		t.Errorf("Close = %v, want nil on a healthy connection", err)
	}
}

// TestBackoffSchedule pins the reconnect schedule: exponential growth from
// base, capped at max, jittered into [delay/2, delay].
func TestBackoffSchedule(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	base, max := 10*time.Millisecond, 2*time.Second
	for attempt := 0; attempt <= 12; attempt++ {
		want := base << attempt
		if want > max || want <= 0 {
			want = max
		}
		for trial := 0; trial < 100; trial++ {
			got := backoffDelay(rng, base, max, attempt)
			if got < want/2 || got > want {
				t.Fatalf("attempt %d: delay %v outside [%v, %v]", attempt, got, want/2, want)
			}
		}
	}
	// Defaults: non-positive base falls back to 10ms; max below base is
	// raised to base.
	if d := backoffDelay(rng, 0, 0, 0); d < 5*time.Millisecond || d > 10*time.Millisecond {
		t.Errorf("default backoff = %v, want within [5ms, 10ms]", d)
	}
	if d := backoffDelay(rng, time.Second, time.Millisecond, 0); d < 500*time.Millisecond || d > time.Second {
		t.Errorf("max<base backoff = %v, want within [500ms, 1s]", d)
	}
}

// TestFaultConn exercises the injection harness itself: transparent
// passthrough, truncated writes, stalls honouring write deadlines, and
// reset semantics including the idempotent Close.
func TestFaultConn(t *testing.T) {
	a, b := tcpPair(t)
	fc := NewFaultConn(a)

	// Transparent until a knob is flipped.
	if _, err := fc.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 16)
	n, err := b.Read(buf)
	if err != nil || string(buf[:n]) != "hello" {
		t.Fatalf("peer read %q, %v", buf[:n], err)
	}

	// Partial write: first 3 bytes land, then the write fails.
	fc.LimitWrites(3)
	n, err = fc.Write([]byte("abcdef"))
	if n != 3 || !errors.Is(err, ErrInjectedPartial) {
		t.Fatalf("limited write = (%d, %v), want (3, ErrInjectedPartial)", n, err)
	}
	if n, _ := b.Read(buf); string(buf[:n]) != "abc" {
		t.Fatalf("peer read %q, want abc", buf[:n])
	}
	fc.LimitWrites(0)

	// Stall blocks the write until Unstall.
	fc.Stall()
	wrote := make(chan error, 1)
	go func() {
		_, err := fc.Write([]byte("x"))
		wrote <- err
	}()
	select {
	case err := <-wrote:
		t.Fatalf("stalled write returned early: %v", err)
	case <-time.After(20 * time.Millisecond):
	}
	fc.Unstall()
	if err := <-wrote; err != nil {
		t.Fatalf("unstalled write = %v", err)
	}
	if n, _ := b.Read(buf); string(buf[:n]) != "x" {
		t.Fatalf("peer read %q after unstall, want x", buf[:n])
	}

	// A stalled write with a deadline fails like a real socket would.
	fc.Stall()
	fc.SetWriteDeadline(time.Now().Add(30 * time.Millisecond))
	if _, err := fc.Write([]byte("y")); !errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatalf("stalled+deadline write = %v, want deadline exceeded", err)
	}
	fc.Unstall()
	fc.SetWriteDeadline(time.Time{})

	// Reset kills both directions and the peer observes the close; Close
	// afterwards still reports success.
	fc.Reset()
	if _, err := fc.Write([]byte("z")); !errors.Is(err, ErrInjectedReset) {
		t.Fatalf("post-reset write = %v", err)
	}
	if _, err := fc.Read(buf); !errors.Is(err, ErrInjectedReset) {
		t.Fatalf("post-reset read = %v", err)
	}
	if _, err := b.Read(buf); err == nil {
		t.Fatal("peer did not observe the reset")
	}
	if err := fc.Close(); err != nil {
		t.Fatalf("Close after Reset = %v, want nil", err)
	}
}

// TestDisconnectWithdrawsCounts is the basic Section 3.2 failure semantics:
// when a neighbor's connection drops, "the count is subtracted from the sum
// provided upstream" — the edge withdraws and the core re-aggregates to 0.
func TestDisconnectWithdrawsCounts(t *testing.T) {
	core, err := NewRouter("127.0.0.1:0", "")
	if err != nil {
		t.Fatal(err)
	}
	defer core.Close()
	edge, err := NewRouter("127.0.0.1:0", core.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer edge.Close()

	c, err := Dial(edge.Addr())
	if err != nil {
		t.Fatal(err)
	}
	ch := addr.Channel{S: addr.MustParse("10.0.0.1"), E: addr.ExpressAddr(3)}
	c.SendCount(ch, 3)
	c.Flush()
	waitFor(t, 5*time.Second, func() bool { return core.SubscriberCount(ch) == 3 })

	c.Close() // the neighbor goes away without unsubscribing
	waitFor(t, 5*time.Second, func() bool {
		return core.SubscriberCount(ch) == 0 && edge.Channels() == 0
	})
	st := edge.Stats()
	if st.NeighborFailures != 1 || st.WithdrawnCounts != 1 {
		t.Errorf("edge failures/withdrawn = %d/%d, want 1/1", st.NeighborFailures, st.WithdrawnCounts)
	}
}

// faultTap captures the most recent connection produced by a FaultDialer so
// the test can inject faults into whichever link is currently live.
type faultTap struct {
	mu sync.Mutex
	fc *FaultConn
	n  int
}

func (ft *faultTap) hook(fc *FaultConn) {
	ft.mu.Lock()
	ft.fc = fc
	ft.n++
	ft.mu.Unlock()
}

func (ft *faultTap) current() *FaultConn {
	ft.mu.Lock()
	defer ft.mu.Unlock()
	return ft.fc
}

// TestSessionReconnectResync kills a client session's connection mid-stream,
// mutates the desired state during the partition, and verifies the router
// converges to exactly the new state after the reconnect: the withdrawn old
// counts are replaced by the replay, nothing stale and nothing doubled.
func TestSessionReconnectResync(t *testing.T) {
	r, err := NewRouter("127.0.0.1:0", "")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	var tap faultTap
	s, err := DialSession(r.Addr(), SessionOptions{
		KeepaliveInterval: 20 * time.Millisecond,
		ReconnectBase:     5 * time.Millisecond,
		Dial:              FaultDialer(tap.hook),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	src := addr.MustParse("10.0.0.1")
	chA := addr.Channel{S: src, E: addr.ExpressAddr(1)}
	chB := addr.Channel{S: src, E: addr.ExpressAddr(2)}
	chC := addr.Channel{S: src, E: addr.ExpressAddr(3)}
	s.SendCount(chA, 3)
	s.SendCount(chB, 5)
	s.Flush()
	waitFor(t, 5*time.Second, func() bool {
		return r.SubscriberCount(chA) == 3 && r.SubscriberCount(chB) == 5
	})

	// Kill the connection, then change the desired state while down: A moves
	// 3→7 and C appears. The session records both; the resync must deliver
	// the final state, not the pre-partition one.
	tap.current().Reset()
	s.SendCount(chA, 7)
	s.SendCount(chC, 2)

	waitFor(t, 5*time.Second, func() bool {
		return r.SubscriberCount(chA) == 7 &&
			r.SubscriberCount(chB) == 5 &&
			r.SubscriberCount(chC) == 2
	})
	if got := s.Reconnects(); got != 1 {
		t.Errorf("session reconnects = %d, want 1", got)
	}
	if got := s.Epoch(); got != 2 {
		t.Errorf("session epoch = %d, want 2", got)
	}
	st := r.Stats()
	if st.SessionResyncs != 1 {
		t.Errorf("router resyncs = %d, want 1", st.SessionResyncs)
	}
	if st.WithdrawnCounts != 2 {
		t.Errorf("router withdrawn = %d, want 2 (A and B from the dead connection)", st.WithdrawnCounts)
	}
}

// TestRouterUpstreamReconnectResync is the acceptance scenario for the
// fault-tolerant session layer, on the router-to-router link: kill the
// edge→core connection mid-stream, watch the core's aggregate drop to zero
// (the Section 3.2 subtraction), change the subtree state during the
// partition, then watch the edge reconnect under backoff and resync the core
// to exactly the new aggregates.
func TestRouterUpstreamReconnectResync(t *testing.T) {
	core, err := NewRouter("127.0.0.1:0", "")
	if err != nil {
		t.Fatal(err)
	}
	defer core.Close()

	var tap faultTap
	edge, err := NewRouterOpts("127.0.0.1:0", Options{
		Upstream:          core.Addr(),
		KeepaliveInterval: 50 * time.Millisecond,
		ReconnectBase:     40 * time.Millisecond,
		Dial:              FaultDialer(tap.hook),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer edge.Close()

	// The downstream neighbor is itself a session (it must keepalive, since
	// the edge's reaper is armed).
	s, err := DialSession(edge.Addr(), SessionOptions{KeepaliveInterval: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	src := addr.MustParse("10.0.0.1")
	ch1 := addr.Channel{S: src, E: addr.ExpressAddr(10)}
	ch2 := addr.Channel{S: src, E: addr.ExpressAddr(11)}
	s.SendCount(ch1, 4)
	s.SendCount(ch2, 9)
	s.Flush()
	waitFor(t, 5*time.Second, func() bool {
		return core.SubscriberCount(ch1) == 4 && core.SubscriberCount(ch2) == 9
	})

	// Partition: the core withdraws the edge's whole contribution well before
	// the edge's recovery completes (keepalive failure + backoff).
	tap.current().Reset()
	waitFor(t, 5*time.Second, func() bool {
		return core.SubscriberCount(ch1) == 0 && core.SubscriberCount(ch2) == 0
	})

	// The subtree changes while the link is down; the resync must carry the
	// new aggregate, not the pre-partition one.
	s.SendCount(ch1, 6)
	s.Flush()

	waitFor(t, 5*time.Second, func() bool {
		return core.SubscriberCount(ch1) == 6 && core.SubscriberCount(ch2) == 9
	})
	if got := edge.Stats().UpstreamReconnects; got != 1 {
		t.Errorf("edge upstream reconnects = %d, want 1", got)
	}
	cst := core.Stats()
	if cst.SessionResyncs != 1 {
		t.Errorf("core session resyncs = %d, want 1", cst.SessionResyncs)
	}
	if cst.WithdrawnCounts != 2 {
		t.Errorf("core withdrawn = %d, want 2", cst.WithdrawnCounts)
	}
	if cst.NeighborFailures != 1 {
		t.Errorf("core neighbor failures = %d, want 1", cst.NeighborFailures)
	}
}

// TestStallPartitionKeepaliveBudget is the silent-partition case: the link
// stalls without closing, so only the keepalive machinery can detect it. The
// core's reaper must declare the edge dead within the miss budget and
// withdraw; the edge's stalled writer must hit its write deadline, tear the
// connection down, and recover on a fresh one.
func TestStallPartitionKeepaliveBudget(t *testing.T) {
	core, err := NewRouterOpts("127.0.0.1:0", Options{
		KeepaliveInterval: 25 * time.Millisecond,
		KeepaliveMisses:   3,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer core.Close()

	var tap faultTap
	edge, err := NewRouterOpts("127.0.0.1:0", Options{
		Upstream:          core.Addr(),
		KeepaliveInterval: 20 * time.Millisecond,
		WriteDeadline:     150 * time.Millisecond,
		ReconnectBase:     5 * time.Millisecond,
		Dial:              FaultDialer(tap.hook),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer edge.Close()

	s, err := DialSession(edge.Addr(), SessionOptions{KeepaliveInterval: 15 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	ch := addr.Channel{S: addr.MustParse("10.0.0.1"), E: addr.ExpressAddr(20)}
	s.SendCount(ch, 5)
	s.Flush()
	waitFor(t, 5*time.Second, func() bool { return core.SubscriberCount(ch) == 5 })

	// Stall: bytes stop flowing but the socket stays open. The core hears
	// nothing for KeepaliveMisses×KeepaliveInterval and reaps the neighbor,
	// withdrawing its counts.
	start := time.Now()
	tap.current().Stall()
	waitFor(t, 5*time.Second, func() bool { return core.SubscriberCount(ch) == 0 })
	if detect := time.Since(start); detect > 2*time.Second {
		t.Errorf("withdrawal took %v, far beyond the keepalive miss budget", detect)
	}
	if core.Stats().NeighborFailures != 1 {
		t.Errorf("core neighbor failures = %d, want 1", core.Stats().NeighborFailures)
	}

	// The edge's stalled writer times out, fails the connection, and the
	// session recovers on a fresh (unstalled) one: exact resync to 5.
	waitFor(t, 5*time.Second, func() bool { return core.SubscriberCount(ch) == 5 })
	if got := edge.Stats().UpstreamReconnects; got < 1 {
		t.Errorf("edge upstream reconnects = %d, want >= 1", got)
	}
	if got := core.Stats().SessionResyncs; got < 1 {
		t.Errorf("core session resyncs = %d, want >= 1", got)
	}
}

// TestStaleEpochRejected covers the partition-healing corner: a connection
// presenting an old (or merely equal) epoch is a leftover from before the
// partition and must be dropped, never allowed to overwrite the state of the
// session's current epoch.
func TestStaleEpochRejected(t *testing.T) {
	r, err := NewRouter("127.0.0.1:0", "")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	ch := addr.Channel{S: addr.MustParse("10.0.0.1"), E: addr.ExpressAddr(30)}
	send := func(t *testing.T, conn net.Conn, msgs ...wire.Message) {
		t.Helper()
		var buf []byte
		for _, m := range msgs {
			buf = m.AppendTo(buf)
		}
		if _, err := conn.Write(buf); err != nil {
			t.Fatal(err)
		}
	}
	expectDropped := func(t *testing.T, conn net.Conn) {
		t.Helper()
		conn.SetReadDeadline(time.Now().Add(5 * time.Second))
		if _, err := conn.Read(make([]byte, 1)); err == nil {
			t.Fatal("router kept a connection it should have dropped")
		}
	}

	// Epoch 5 establishes the session with count 3.
	c1, err := net.Dial("tcp", r.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	send(t, c1, &wire.Hello{SessionID: 42, Epoch: 5},
		&wire.Count{Channel: ch, CountID: wire.CountSubscribers, Value: 3})
	waitFor(t, 5*time.Second, func() bool { return r.SubscriberCount(ch) == 3 })

	// A duplicate epoch is rejected and its counts never land.
	c2, err := net.Dial("tcp", r.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	send(t, c2, &wire.Hello{SessionID: 42, Epoch: 5},
		&wire.Count{Channel: ch, CountID: wire.CountSubscribers, Value: 100})
	expectDropped(t, c2)

	// So is an older epoch.
	c3, err := net.Dial("tcp", r.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c3.Close()
	send(t, c3, &wire.Hello{SessionID: 42, Epoch: 4})
	expectDropped(t, c3)

	if got := r.SubscriberCount(ch); got != 3 {
		t.Fatalf("count = %d after stale connections, want 3", got)
	}
	if got := r.Stats().SessionResyncs; got != 0 {
		t.Fatalf("resyncs = %d after stale connections, want 0", got)
	}

	// A newer epoch supersedes: the old connection's count is withdrawn and
	// the replayed value stands alone — 7, not 10.
	c4, err := net.Dial("tcp", r.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c4.Close()
	send(t, c4, &wire.Hello{SessionID: 42, Epoch: 6},
		&wire.Count{Channel: ch, CountID: wire.CountSubscribers, Value: 7})
	waitFor(t, 5*time.Second, func() bool { return r.SubscriberCount(ch) == 7 })
	expectDropped(t, c1)
	if got := r.Stats().SessionResyncs; got != 1 {
		t.Errorf("resyncs = %d, want 1", got)
	}
}

// TestSessionCloseReportsFlushError propagates the satellite fix through the
// session layer: a session whose final flush cannot reach the router must
// not report a clean close.
func TestSessionCloseReportsFlushError(t *testing.T) {
	ln := discardListener(t)
	var tap faultTap
	s, err := DialSession(ln.Addr().String(), SessionOptions{
		KeepaliveInterval: -1, // no keepalives: the buffered event stays put
		Dial:              FaultDialer(tap.hook),
	})
	if err != nil {
		t.Fatal(err)
	}
	ch := addr.Channel{S: addr.MustParse("10.0.0.1"), E: addr.ExpressAddr(40)}
	s.SendCount(ch, 1)
	tap.current().FailAfterWrites(0)
	if err := s.Close(); !errors.Is(err, ErrInjectedReset) {
		t.Errorf("Close = %v, want the flush error (%v)", err, ErrInjectedReset)
	}
}
