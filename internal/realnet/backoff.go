package realnet

import (
	"math/rand"
	"time"
)

// backoffDelay returns the pause before reconnect attempt (0-based):
// exponential growth base·2^attempt capped at max, then jittered uniformly
// into [delay/2, delay] so a whole subtree of neighbors cut off by one link
// failure cannot synchronize their dial storms against the recovering
// upstream. The lower bound keeps the schedule testable and guarantees the
// cap is still an effective floor of max/2 between attempts.
func backoffDelay(rng *rand.Rand, base, max time.Duration, attempt int) time.Duration {
	if base <= 0 {
		base = 10 * time.Millisecond
	}
	if max < base {
		max = base
	}
	d := base
	for i := 0; i < attempt && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	half := d / 2
	return half + time.Duration(rng.Int63n(int64(half)+1))
}
