package realnet

import (
	"bufio"
	"errors"
	"io"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/addr"
	"repro/internal/wire"
)

// SessionOptions tunes a resilient client session. The zero value of every
// field selects a sensible default.
type SessionOptions struct {
	// SessionID identifies this neighbor to the router across reconnects.
	// 0 picks a random id.
	SessionID uint64
	// DataPort, when non-zero, is advertised in every Hello: the UDP port
	// (on this host) where the router should replicate data packets for the
	// channels this session subscribes to — a dataplane.Receiver's Port(),
	// typically. Reconnects re-advertise it, so the registration survives
	// session flaps the same way the counts do.
	DataPort uint16
	// RelayPort and RelayChannel, when RelayPort is non-zero, advertise a
	// Section 4 session relay running on this host: the router records
	// (RelayChannel → this host, RelayPort) in its relay registry and
	// answers CountRelayAddr4/CountRelayPort discovery queries from it.
	// Like DataPort, the advertisement rides every Hello, so reconnects
	// re-register the relay and a session failure withdraws it.
	RelayPort    uint16
	RelayChannel addr.Channel
	// KeepaliveInterval is how often the session proves liveness and
	// flushes buffered events. Default 500ms; negative disables (then only
	// explicit Flush calls and full buffers touch the socket).
	KeepaliveInterval time.Duration
	// WriteDeadline bounds every socket write, so a stalled (partitioned)
	// connection turns into a detectable error instead of a hung session.
	// Default 5s.
	WriteDeadline time.Duration
	// ReconnectBase and ReconnectMax bound the jittered exponential
	// backoff between reconnect attempts. Defaults 10ms and 2s.
	ReconnectBase time.Duration
	ReconnectMax  time.Duration
	// Dial overrides how connections are established; tests and loadgen
	// inject fault-wrapped connections here. Default net.Dial tcp.
	Dial func(addr string) (net.Conn, error)
}

func (o SessionOptions) withDefaults() SessionOptions {
	for o.SessionID == 0 {
		o.SessionID = rand.Uint64()
	}
	if o.KeepaliveInterval == 0 {
		o.KeepaliveInterval = 500 * time.Millisecond
	}
	if o.WriteDeadline <= 0 {
		o.WriteDeadline = 5 * time.Second
	}
	if o.ReconnectBase <= 0 {
		o.ReconnectBase = 10 * time.Millisecond
	}
	if o.ReconnectMax <= 0 {
		o.ReconnectMax = 2 * time.Second
	}
	if o.Dial == nil {
		o.Dial = dialTCP
	}
	return o
}

// Session is a fault-tolerant neighbor link: a Client wrapped with the
// Section 3.2 failure semantics. It tracks the desired per-channel counts,
// so a send never fails — while the connection is down the state is merely
// recorded, and on reconnection (capped exponential backoff with jitter)
// the session opens a new epoch with a Hello and replays the entire state.
// The router withdraws the old epoch's counts when it accepts the new one,
// so after resync the upstream aggregate is exact: nothing stale, nothing
// doubled.
type Session struct {
	target string
	opts   SessionOptions

	mu    sync.Mutex
	c     *Client // nil while disconnected
	state map[addr.Channel]uint32
	// appState is the desired application-defined count image, replayed on
	// resync exactly like the subscriber counts: what the router must hold
	// for this session once the link is connected and drained.
	appState map[appCountKey]uint32
	epoch    uint64
	down     chan struct{} // 1-buffered signal to the monitor

	closed     atomic.Bool
	reconnects atomic.Uint64

	// Query plumbing: outstanding queries wait on 1-buffered channels keyed
	// by the CountQuery.Seq they sent; each connection's reader goroutine
	// routes solicited Counts (Seq != 0) back by that key.
	qmu     sync.Mutex
	pending map[uint16]chan uint32
	qseq    atomic.Uint32

	rng  *rand.Rand // monitor goroutine only
	quit chan struct{}
	done chan struct{}
}

// DialSession connects a resilient neighbor session to a router. The
// initial connection is synchronous so an unreachable router fails fast;
// every later failure is handled by reconnection instead of errors.
func DialSession(routerAddr string, opts SessionOptions) (*Session, error) {
	opts = opts.withDefaults()
	s := &Session{
		target:   routerAddr,
		opts:     opts,
		state:    make(map[addr.Channel]uint32),
		appState: make(map[appCountKey]uint32),
		pending:  make(map[uint16]chan uint32),
		down:     make(chan struct{}, 1),
		rng:      rand.New(rand.NewSource(int64(opts.SessionID) ^ time.Now().UnixNano())),
		quit:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	conn, err := opts.Dial(routerAddr)
	if err != nil {
		return nil, err
	}
	if !s.resync(conn) {
		return nil, ErrClosed // first hello/flush failed on a fresh conn
	}
	go s.run()
	return s, nil
}

// Subscribe records and sends a single subscription for ch.
func (s *Session) Subscribe(ch addr.Channel) error { return s.SendCount(ch, 1) }

// Unsubscribe records and sends a zero count for ch.
func (s *Session) Unsubscribe(ch addr.Channel) error { return s.SendCount(ch, 0) }

// SendCount sets the desired aggregate count for ch. The update is sent on
// the live connection when there is one and replayed after the next
// reconnect otherwise; the only error is using a closed session.
func (s *Session) SendCount(ch addr.Channel, v uint32) error {
	if s.closed.Load() {
		return ErrClosed
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if v == 0 {
		delete(s.state, ch)
	} else {
		s.state[ch] = v
	}
	if s.c != nil {
		if err := s.c.sendCount(ch, v); err != nil {
			s.markDownLocked()
		}
	}
	return nil
}

// appCountKey identifies one application-defined count slot of the session.
type appCountKey struct {
	ch addr.Channel
	id wire.CountID
}

// SendAppCount sets the desired application-defined count (wire.AppCountBase
// range) for (ch, id); zero clears it. Like SendCount, the value is sent on
// the live connection when there is one and replayed after the next
// reconnect otherwise.
func (s *Session) SendAppCount(ch addr.Channel, id wire.CountID, v uint32) error {
	if s.closed.Load() {
		return ErrClosed
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	k := appCountKey{ch: ch, id: id}
	if v == 0 {
		delete(s.appState, k)
	} else {
		s.appState[k] = v
	}
	if s.c != nil {
		if err := s.c.SendAppCount(ch, id, v); err != nil {
			s.markDownLocked()
		}
	}
	return nil
}

// Flush pushes buffered events to the router; a failure marks the link
// down (the resync will repair it) rather than surfacing an error.
func (s *Session) Flush() error {
	if s.closed.Load() {
		return ErrClosed
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.c != nil {
		if err := s.c.Flush(); err != nil {
			s.markDownLocked()
		}
	}
	return nil
}

// State returns a copy of the desired per-channel counts — what the router
// must converge to once the session is connected and drained.
func (s *Session) State() map[addr.Channel]uint32 {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[addr.Channel]uint32, len(s.state))
	for ch, v := range s.state {
		out[ch] = v
	}
	return out
}

// Connected reports whether the session currently holds a live connection.
func (s *Session) Connected() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.c != nil
}

// Reconnects returns how many times the session re-established its link.
func (s *Session) Reconnects() uint64 { return s.reconnects.Load() }

// Epoch returns the session's current epoch (1 on the initial connection,
// +1 per reconnect).
func (s *Session) Epoch() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.epoch
}

// Close stops the monitor and closes the connection. The final flush error
// is reported as Client.Close does.
func (s *Session) Close() error {
	if s.closed.Swap(true) {
		return nil
	}
	close(s.quit)
	<-s.done
	s.mu.Lock()
	c := s.c
	s.c = nil
	s.mu.Unlock()
	if c != nil {
		return c.Close()
	}
	return nil
}

// markDownLocked drops the dead connection and wakes the monitor. Callers
// hold s.mu.
func (s *Session) markDownLocked() {
	if s.c == nil {
		return
	}
	s.c.conn.Close()
	s.c = nil
	select {
	case s.down <- struct{}{}:
	default:
	}
}

// run is the monitor goroutine: reconnect on failure, keepalive on a timer.
func (s *Session) run() {
	defer close(s.done)
	var kaC <-chan time.Time
	if s.opts.KeepaliveInterval > 0 {
		t := time.NewTicker(s.opts.KeepaliveInterval)
		defer t.Stop()
		kaC = t.C
	}
	for {
		select {
		case <-s.quit:
			return
		case <-s.down:
			s.reconnect()
		case <-kaC:
			s.keepalive()
		}
	}
}

// reconnect redials under the backoff schedule until resync succeeds or
// the session is closed.
func (s *Session) reconnect() {
	for attempt := 0; ; attempt++ {
		delay := backoffDelay(s.rng, s.opts.ReconnectBase, s.opts.ReconnectMax, attempt)
		select {
		case <-s.quit:
			return
		case <-time.After(delay):
		}
		conn, err := s.opts.Dial(s.target)
		if err != nil {
			continue
		}
		if s.resync(conn) {
			s.reconnects.Add(1)
			return
		}
	}
}

// resync installs conn as the live link: the next epoch's Hello, then a
// replay of the entire desired state, flushed before any new send can
// interleave (the session lock is held throughout, so resync is atomic
// with respect to senders). Returns false if the fresh connection already
// failed — the caller retries with the next backoff step.
func (s *Session) resync(conn net.Conn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed.Load() {
		conn.Close()
		return true // stop the reconnect loop; Close won the race
	}
	c := newClient(deadlineConn{Conn: conn, d: s.opts.WriteDeadline})
	h := wire.Hello{
		SessionID:    s.opts.SessionID,
		Epoch:        s.epoch + 1,
		DataPort:     s.opts.DataPort,
		RelayPort:    s.opts.RelayPort,
		RelayChannel: s.opts.RelayChannel,
	}
	if err := c.sendHello(&h); err != nil {
		conn.Close()
		return false
	}
	for ch, v := range s.state {
		if err := c.sendCount(ch, v); err != nil {
			conn.Close()
			return false
		}
	}
	for k, v := range s.appState {
		if err := c.SendAppCount(k.ch, k.id, v); err != nil {
			conn.Close()
			return false
		}
	}
	if err := c.Flush(); err != nil {
		conn.Close()
		return false
	}
	s.epoch++
	s.c = c
	go s.readLoop(c)
	return true
}

// readLoop drains router→client messages from one connection: solicited
// Counts (Seq != 0) answer outstanding queries; everything else is consumed
// so the socket never backs up. When the read side dies while the
// connection is still current, the link is marked down — a half-open
// connection is detected by its silence, not only by a failed write.
func (s *Session) readLoop(c *Client) {
	br := readerPool.Get().(*bufio.Reader)
	br.Reset(c.conn)
	defer func() {
		br.Reset(nil)
		readerPool.Put(br)
	}()
	var hdr [1]byte
	buf := make([]byte, maxInboundMsg)
	for {
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			break
		}
		need, ok := inboundMsgSize(hdr[0])
		if !ok {
			break // protocol error: drop the connection
		}
		buf[0] = hdr[0]
		if _, err := io.ReadFull(br, buf[1:need]); err != nil {
			break
		}
		if hdr[0] != wire.TypeCount && hdr[0] != wire.TypeCountAuth {
			continue
		}
		var m wire.Count
		if _, err := m.DecodeFromBytes(buf[:need]); err != nil {
			break
		}
		if m.Seq == 0 {
			continue // unsolicited; only query answers route anywhere
		}
		s.qmu.Lock()
		if ch, ok := s.pending[m.Seq]; ok {
			delete(s.pending, m.Seq)
			ch <- m.Value // 1-buffered, never blocks
		}
		s.qmu.Unlock()
	}
	s.mu.Lock()
	if s.c == c {
		s.markDownLocked()
	}
	s.mu.Unlock()
}

// ErrQueryTimeout reports that a Query got no answer within its timeout.
var ErrQueryTimeout = errors.New("realnet: count query timed out")

// Query sends an ECMP CountQuery for (ch, id) to the router and waits for
// the answering Count, up to timeout. This is the sender-side counting
// primitive of Section 2.2: subscriber counts (wire.CountSubscribers),
// application-defined counts in the wire.AppCountBase range (the NACK-count
// reliable transport), and relay discovery (wire.CountRelayAddr4 /
// wire.CountRelayPort) all ride it. A session flap while waiting surfaces
// as a timeout; callers retry, and the resync machinery repairs the link
// underneath them.
func (s *Session) Query(ch addr.Channel, id wire.CountID, timeout time.Duration) (uint32, error) {
	if s.closed.Load() {
		return 0, ErrClosed
	}
	var seq uint16
	for seq == 0 {
		seq = uint16(s.qseq.Add(1))
	}
	reply := make(chan uint32, 1)
	s.qmu.Lock()
	s.pending[seq] = reply
	s.qmu.Unlock()
	defer func() {
		s.qmu.Lock()
		delete(s.pending, seq)
		s.qmu.Unlock()
	}()

	q := wire.CountQuery{Channel: ch, CountID: id, Seq: seq, TimeoutMs: uint32(timeout / time.Millisecond)}
	s.mu.Lock()
	if s.c == nil {
		s.mu.Unlock()
		return 0, ErrQueryTimeout
	}
	if err := s.c.sendQuery(&q); err != nil {
		s.markDownLocked()
		s.mu.Unlock()
		return 0, ErrQueryTimeout
	}
	if err := s.c.Flush(); err != nil {
		s.markDownLocked()
		s.mu.Unlock()
		return 0, ErrQueryTimeout
	}
	s.mu.Unlock()

	t := time.NewTimer(timeout)
	defer t.Stop()
	select {
	case v := <-reply:
		return v, nil
	case <-t.C:
		return 0, ErrQueryTimeout
	}
}

// keepalive proves liveness and flushes anything buffered; a failure marks
// the link down so the monitor reconnects.
func (s *Session) keepalive() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.c == nil {
		return
	}
	if err := s.c.sendKeepalive(); err != nil {
		s.markDownLocked()
		return
	}
	if err := s.c.Flush(); err != nil {
		s.markDownLocked()
	}
}

// deadlineConn arms a fresh write deadline before every socket write, so a
// stalled connection fails the writer within d instead of blocking the
// session forever. (An absolute deadline set once would either go stale or
// spuriously expire on an idle-but-healthy connection.)
type deadlineConn struct {
	net.Conn
	d time.Duration
}

func (c deadlineConn) Write(b []byte) (int, error) {
	if c.d > 0 {
		c.Conn.SetWriteDeadline(time.Now().Add(c.d))
	}
	return c.Conn.Write(b)
}
