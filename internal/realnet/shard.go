package realnet

import (
	"sync"
	"sync/atomic"

	"repro/internal/addr"
	"repro/internal/fib"
)

// table is the sharded channel table: the single global mutex of the first
// implementation serialized every membership event, so the table is split
// into power-of-two shards selected by hash(S,E). Each shard carries its
// own lock, its own per-type event counters, and its own dirty-channel set
// for the upstream batcher, so neighbors whose events land on different
// shards never contend.
type table struct {
	shards []*shard
	mask   uint32
}

// shard is one independently locked slice of the channel table.
type shard struct {
	mu       sync.Mutex
	channels map[addr.Channel]*chanState
	// dirty holds channels whose aggregate changed since the last batcher
	// flush, with the latest total. Guarded by mu; swapped out wholesale by
	// the batcher so marking stays on the shard's own lock.
	dirty map[addr.Channel]uint32
	// dirtyAt is when the current dirty window opened (unix nanoseconds of
	// the first mark since the last sweep) — the ingest end of the
	// propagation-latency measurement. Guarded by mu.
	dirtyAt int64

	events       atomic.Uint64
	subscribes   atomic.Uint64
	unsubscribes atomic.Uint64
}

// newTable builds a table with n shards, rounded up to a power of two.
func newTable(n int) *table {
	if n < 1 {
		n = 1
	}
	size := 1
	for size < n {
		size <<= 1
	}
	t := &table{shards: make([]*shard, size), mask: uint32(size - 1)}
	for i := range t.shards {
		t.shards[i] = &shard{
			channels: make(map[addr.Channel]*chanState),
			dirty:    make(map[addr.Channel]uint32),
		}
	}
	return t
}

// hashChannel mixes (S,E) so that consecutive channel suffixes spread
// across shards (Fibonacci-style multiplicative hashing).
func hashChannel(ch addr.Channel) uint32 {
	h := uint32(ch.S) * 2654435761
	h ^= uint32(ch.E) * 2246822519
	h ^= h >> 16
	return h
}

// shardFor returns the shard owning ch.
func (t *table) shardFor(ch addr.Channel) *shard {
	return t.shards[hashChannel(ch)&t.mask]
}

// numChannels sums live channels across shards.
func (t *table) numChannels() int {
	n := 0
	for _, sh := range t.shards {
		sh.mu.Lock()
		n += len(sh.channels)
		sh.mu.Unlock()
	}
	return n
}

// events sums processed membership events across shards.
func (t *table) totalEvents() uint64 {
	var n uint64
	for _, sh := range t.shards {
		n += sh.events.Load()
	}
	return n
}

func (t *table) eventsByType() (subs, unsubs uint64) {
	for _, sh := range t.shards {
		subs += sh.subscribes.Load()
		unsubs += sh.unsubscribes.Load()
	}
	return subs, unsubs
}

// total sums the channel's per-neighbor downstream counts — the aggregate
// advertised upstream. Callers must hold the owning shard's lock.
func (cs *chanState) total() uint32 {
	var t uint32
	for _, v := range cs.downCounts {
		t += v
	}
	return t
}

// setOIF and clearOIF maintain the channel's FIB outgoing-interface image.
// Both sides apply the identical range guard: an interface beyond the
// entry's 32-bit mask (Figure 5's "32 interfaces per router") simply has no
// bit — it is tracked in downCounts but cannot appear in the fast-path
// image. The first implementation guarded only the clear side while the set
// side aliased id%32, so neighbor 33's subscribe permanently lit bit 1.

func (cs *chanState) setOIF(id int) {
	if id >= 0 && id < fib.MaxInterfaces {
		cs.oifs |= 1 << uint(id)
	}
}

func (cs *chanState) clearOIF(id int) {
	if id >= 0 && id < fib.MaxInterfaces {
		cs.oifs &^= 1 << uint(id)
	}
}
