package realnet

import (
	"bufio"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/wire"
)

// neighbor is one TCP peer of the router: a downstream neighbor that
// streams membership events to us, or the upstream neighbor we forward
// aggregate Counts to. Output goes through a bounded queue drained by a
// dedicated writer goroutine, so a slow or dead peer can never stall event
// processing: when the queue is full the segment is dropped and accounted
// instead of blocking the control plane (TCP itself provides reliability
// for what does get queued; a dropped aggregate is repaired by the next
// value change on the same channel, or by the full-state resync after a
// session reconnect).
type neighbor struct {
	id   int
	conn net.Conn

	// out carries pooled segment buffers (see segPool); ownership passes to
	// the writer, which returns each buffer to the pool after the socket
	// write (or on drop).
	out      chan *[]byte
	deadline time.Duration

	segs  atomic.Uint64 // segments accepted into the queue
	drops atomic.Uint64 // segments dropped: queue full or dead peer

	// lastSeen is when the last complete inbound message arrived (unix
	// nanoseconds), the liveness evidence consumed by the keepalive reaper.
	lastSeen atomic.Int64
	// superseded is set when a session reconnect replaced this connection:
	// any counts still in flight on it are stale and must not be applied.
	superseded atomic.Bool
	// gone is set when the read loop exited; the reaper skips dead entries.
	gone atomic.Bool

	closeOnce sync.Once
	done      chan struct{} // writer goroutine exited

	failOnce sync.Once
	failed   chan struct{} // closed on the writer's first socket error

	// retireOnce serializes count withdrawal for this connection between
	// its own read loop (socket died) and a session rebind superseding it;
	// sync.Once blocks the second caller until the first finished, so a
	// rebind never replays state while the old withdrawal still sweeps.
	retireOnce sync.Once
}

func newNeighbor(id int, conn net.Conn, queueLen int, deadline time.Duration) *neighbor {
	n := &neighbor{
		id:       id,
		conn:     conn,
		out:      make(chan *[]byte, queueLen),
		deadline: deadline,
		done:     make(chan struct{}),
		failed:   make(chan struct{}),
	}
	n.lastSeen.Store(time.Now().UnixNano())
	go n.writer()
	return n
}

// enqueue offers a pooled segment to the output queue without ever
// blocking. On acceptance the writer owns the buffer; on drop it returns to
// the pool immediately.
func (n *neighbor) enqueue(seg *[]byte) {
	select {
	case n.out <- seg:
		n.segs.Add(1)
	default:
		n.drops.Add(1)
		putSeg(seg)
	}
}

// closeOutput stops the writer after it drains the queue. Safe to call
// more than once; callers wait on n.done for the final flush.
func (n *neighbor) closeOutput() {
	n.closeOnce.Do(func() { close(n.out) })
}

// fail marks the peer dead exactly once; the upstream session selects on
// n.failed to trigger reconnection.
func (n *neighbor) fail() {
	n.failOnce.Do(func() { close(n.failed) })
}

// writer drains the output queue onto the socket under a write deadline.
// After a write error the peer is considered dead: the failure is signalled
// on n.failed and remaining segments are drained and counted as drops so
// enqueuers and shutdown never stall.
func (n *neighbor) writer() {
	defer close(n.done)
	w := bufio.NewWriterSize(n.conn, wire.MaxSegment)
	dead := false
	for seg := range n.out {
		if dead {
			n.drops.Add(1)
			putSeg(seg)
			continue
		}
		if n.deadline > 0 {
			n.conn.SetWriteDeadline(time.Now().Add(n.deadline))
		}
		_, err := w.Write(*seg)
		putSeg(seg)
		if err != nil {
			n.drops.Add(1)
			dead = true
			n.fail()
			continue
		}
		// Flush when the queue momentarily empties: batches stay intact
		// under load, latency stays low when idle.
		if len(n.out) == 0 {
			if err := w.Flush(); err != nil {
				dead = true
				n.fail()
			}
		}
	}
	if !dead {
		if err := w.Flush(); err != nil {
			n.fail()
		}
	}
}
