package realnet

import (
	"bufio"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/wire"
)

// neighbor is one TCP peer of the router: a downstream neighbor that
// streams membership events to us, or the upstream neighbor we forward
// aggregate Counts to. Output goes through a bounded queue drained by a
// dedicated writer goroutine, so a slow or dead peer can never stall event
// processing: when the queue is full the segment is dropped and accounted
// instead of blocking the control plane (TCP itself provides reliability
// for what does get queued; a dropped aggregate is repaired by the next
// value change on the same channel).
type neighbor struct {
	id   int
	conn net.Conn

	// out carries pooled segment buffers (see segPool); ownership passes to
	// the writer, which returns each buffer to the pool after the socket
	// write (or on drop).
	out      chan *[]byte
	deadline time.Duration

	segs  atomic.Uint64 // segments accepted into the queue
	drops atomic.Uint64 // segments dropped: queue full or dead peer

	closeOnce sync.Once
	done      chan struct{} // writer goroutine exited
}

func newNeighbor(id int, conn net.Conn, queueLen int, deadline time.Duration) *neighbor {
	n := &neighbor{
		id:       id,
		conn:     conn,
		out:      make(chan *[]byte, queueLen),
		deadline: deadline,
		done:     make(chan struct{}),
	}
	go n.writer()
	return n
}

// enqueue offers a pooled segment to the output queue without ever
// blocking. On acceptance the writer owns the buffer; on drop it returns to
// the pool immediately.
func (n *neighbor) enqueue(seg *[]byte) {
	select {
	case n.out <- seg:
		n.segs.Add(1)
	default:
		n.drops.Add(1)
		putSeg(seg)
	}
}

// closeOutput stops the writer after it drains the queue. Safe to call
// more than once; callers wait on n.done for the final flush.
func (n *neighbor) closeOutput() {
	n.closeOnce.Do(func() { close(n.out) })
}

// writer drains the output queue onto the socket under a write deadline.
// After a write error the peer is considered dead: remaining segments are
// drained and counted as drops so enqueuers and shutdown never stall.
func (n *neighbor) writer() {
	defer close(n.done)
	w := bufio.NewWriterSize(n.conn, wire.MaxSegment)
	dead := false
	for seg := range n.out {
		if dead {
			n.drops.Add(1)
			putSeg(seg)
			continue
		}
		if n.deadline > 0 {
			n.conn.SetWriteDeadline(time.Now().Add(n.deadline))
		}
		_, err := w.Write(*seg)
		putSeg(seg)
		if err != nil {
			n.drops.Add(1)
			dead = true
			continue
		}
		// Flush when the queue momentarily empties: batches stay intact
		// under load, latency stays low when idle.
		if len(n.out) == 0 {
			if err := w.Flush(); err != nil {
				dead = true
			}
		}
	}
	if !dead {
		w.Flush()
	}
}
