package realnet

import (
	"math/rand"
	"net"
	"sync/atomic"
	"time"

	"repro/internal/addr"
	"repro/internal/wire"
)

// upSession is the router's resilient link to its upstream neighbor: it
// owns the current connection (wrapped in a neighbor writer), detects write
// failure, redials with capped exponential backoff plus jitter, and on
// every reconnect performs the Section 3.2 recovery handshake — a Hello
// carrying the session's next epoch, followed by a full-state replay of all
// current aggregates (batcher.markAll), so the upstream ends with exactly
// this subtree's contribution and nothing stale from before the partition.
type upSession struct {
	r      *Router
	target string
	id     uint64
	epoch  atomic.Uint64

	cur     atomic.Pointer[neighbor] // nil while the link is down
	batcher *batcher                 // set once, right after construction

	reconnects atomic.Uint64
	segsPrev   atomic.Uint64 // segments accounted on torn-down connections
	dropsPrev  atomic.Uint64 // drops accounted on torn-down connections
	rng        *rand.Rand    // monitor-goroutine only

	quit chan struct{}
	done chan struct{}
}

// newUpSession dials the upstream synchronously (construction still fails
// fast when the upstream is unreachable at startup) and sends the opening
// Hello. Call start after wiring the batcher.
func newUpSession(r *Router, target string) (*upSession, error) {
	conn, err := r.opts.Dial(target)
	if err != nil {
		return nil, err
	}
	s := &upSession{
		r:      r,
		target: target,
		id:     r.opts.SessionID,
		rng:    rand.New(rand.NewSource(int64(r.opts.SessionID) ^ time.Now().UnixNano())),
		quit:   make(chan struct{}),
		done:   make(chan struct{}),
	}
	n := newNeighbor(-1, conn, r.opts.QueueLen, r.opts.WriteDeadline)
	s.hello(n)
	s.cur.Store(n)
	return s, nil
}

// start launches the monitor goroutine; the batcher must be wired first.
func (s *upSession) start() { go s.run() }

// hello enqueues the session-opening Hello with the next epoch as the first
// segment of a new connection (the queue is FIFO, so it precedes any
// aggregate the batcher emits afterwards).
func (s *upSession) hello(n *neighbor) {
	seg := getSeg()
	// The Hello also advertises this router's data-plane port, so the
	// upstream replicates subscribed channels' packets down to it.
	h := wire.Hello{SessionID: s.id, Epoch: s.epoch.Add(1), DataPort: s.r.dataPort()}
	*seg = h.AppendTo(*seg)
	n.enqueue(seg)
}

// enqueue routes a segment to the live connection, or accounts a drop while
// the link is down (resync repairs the loss once it is back). The queue
// depth is sampled on every enqueue — backpressure toward the upstream
// shows up as a right-shifting depth histogram long before drops start.
func (s *upSession) enqueue(seg *[]byte) {
	if n := s.cur.Load(); n != nil {
		s.r.obs.queueDepth.ObserveInt(len(n.out))
		n.enqueue(seg)
		return
	}
	s.dropsPrev.Add(1)
	putSeg(seg)
}

// run watches the live connection for write failure and drives recovery;
// it also sends periodic keepalives so a quiet link still proves liveness
// to the upstream's reaper.
func (s *upSession) run() {
	defer close(s.done)
	var kaC <-chan time.Time
	if s.r.opts.KeepaliveInterval > 0 {
		t := time.NewTicker(s.r.opts.KeepaliveInterval)
		defer t.Stop()
		kaC = t.C
	}
	for {
		n := s.cur.Load()
		if n == nil {
			// Only reachable when a reconnect was aborted by quit.
			<-s.quit
			return
		}
		select {
		case <-s.quit:
			return
		case <-n.failed:
			s.reconnect(n)
		case <-kaC:
			s.keepalive()
		}
	}
}

// keepalive enqueues one liveness Count (Section 3.2: "a single
// per-neighbor keepalive is sufficient to detect a connection failure").
func (s *upSession) keepalive() {
	n := s.cur.Load()
	if n == nil {
		return
	}
	seg := getSeg()
	m := wire.Count{
		Channel: addr.Channel{S: addr.LocalhostSource, E: addr.ExpressBase},
		CountID: wire.CountKeepalive,
		Value:   1,
	}
	*seg = m.AppendTo(*seg)
	n.enqueue(seg)
}

// reconnect tears down the failed connection and redials under the backoff
// schedule until it succeeds or the router shuts down. On success the new
// epoch's Hello goes out first, then every channel is marked dirty so the
// batcher replays the full state.
func (s *upSession) reconnect(old *neighbor) {
	s.cur.Store(nil)
	old.closeOutput()
	old.conn.Close()
	<-old.done // writer drained; its counters are final
	s.segsPrev.Add(old.segs.Load())
	s.dropsPrev.Add(old.drops.Load())

	for attempt := 0; ; attempt++ {
		delay := backoffDelay(s.rng, s.r.opts.ReconnectBase, s.r.opts.ReconnectMax, attempt)
		select {
		case <-s.quit:
			return
		case <-time.After(delay):
		}
		conn, err := s.r.opts.Dial(s.target)
		if err != nil {
			continue
		}
		select {
		case <-s.quit:
			conn.Close()
			return
		default:
		}
		n := newNeighbor(-1, conn, s.r.opts.QueueLen, s.r.opts.WriteDeadline)
		s.hello(n)
		s.cur.Store(n)
		s.reconnects.Add(1)
		s.batcher.markAll() // full-state resync rides the normal flush path
		return
	}
}

// stop ends the monitor and drains the live connection (if any) so segments
// already queued — including the final shutdown flush — reach the socket.
func (s *upSession) stop() {
	close(s.quit)
	<-s.done
	if n := s.cur.Load(); n != nil {
		n.closeOutput()
		<-n.done
		n.conn.Close()
	}
}

// segsTotal and dropsTotal aggregate accounting across reconnects.
func (s *upSession) segsTotal() uint64 {
	t := s.segsPrev.Load()
	if n := s.cur.Load(); n != nil {
		t += n.segs.Load()
	}
	return t
}

func (s *upSession) dropsTotal() uint64 {
	t := s.dropsPrev.Load()
	if n := s.cur.Load(); n != nil {
		t += n.drops.Load()
	}
	return t
}

// dialTCP is the default Options.Dial.
func dialTCP(addr string) (net.Conn, error) { return net.Dial("tcp", addr) }
