package realnet

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/addr"
	"repro/internal/dataplane"
	"repro/internal/wire"
)

// srPlaneReady reports whether p holds a route for ch and every interface in
// its mask has a registered destination port — the deterministic "delivery
// will work" predicate (same shape as the dataplane e2e tests).
func srPlaneReady(p *dataplane.Plane, ch addr.Channel, wantFanout int) bool {
	mask, ok := p.Route(ch)
	if !ok {
		return false
	}
	fanout := 0
	for i := 0; i < 32; i++ {
		if mask&(1<<i) == 0 {
			continue
		}
		if _, ok := p.PortAddr(i); !ok {
			return false
		}
		fanout++
	}
	return fanout == wantFanout
}

func srRecvOrdered(t *testing.T, name string, r *dataplane.Receiver, first uint32, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		want := first + uint32(i)
		pkt, err := r.RecvTimeout(5 * time.Second)
		if err != nil {
			t.Fatalf("%s: waiting for seq %d: %v", name, want, err)
		}
		if pkt.Seq != want {
			t.Fatalf("%s: seq = %d, want %d", name, pkt.Seq, want)
		}
		if wantPayload := fmt.Sprintf("pkt-%d", want); string(pkt.Payload) != wantPayload {
			t.Fatalf("%s: payload = %q, want %q", name, pkt.Payload, wantPayload)
		}
	}
}

// srTopo is the two-hop line used by the source-routing e2e tests: a core
// and an edge router with data planes, one receiver subscribed at the edge.
type srTopo struct {
	core, edge *Router
	recv       *dataplane.Receiver
	ch         addr.Channel
}

func newSRTopo(t *testing.T, suffix uint32) *srTopo {
	t.Helper()
	core, err := NewRouterOpts("127.0.0.1:0", Options{
		DataListen:    "127.0.0.1:0",
		FlushInterval: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { core.Close() })
	edge, err := NewRouterOpts("127.0.0.1:0", Options{
		Upstream:      core.Addr(),
		DataListen:    "127.0.0.1:0",
		FlushInterval: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { edge.Close() })

	ch := addr.Channel{S: addr.MustParse("10.2.0.1"), E: addr.ExpressAddr(suffix)}
	recv, err := dataplane.NewReceiver()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { recv.Close() })
	sess, err := DialSession(edge.Addr(), SessionOptions{DataPort: recv.Port()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sess.Close() })
	if err := sess.Subscribe(ch); err != nil {
		t.Fatal(err)
	}
	if err := sess.Flush(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 10*time.Second, func() bool {
		return srPlaneReady(edge.DataPlane(), ch, 1) && srPlaneReady(core.DataPlane(), ch, 1)
	})
	return &srTopo{core: core, edge: edge, recv: recv, ch: ch}
}

// TestSRTreeHeaderModeParity is the tentpole e2e: the SRTree folds the live
// Count tree into a two-group bitmap stack, pushes it to the source, and the
// stamped packets traverse core and edge entirely off the header — zero FIB
// lookups at either hop — with delivery identical to FIB mode, to which the
// source then reverts mid-stream.
func TestSRTreeHeaderModeParity(t *testing.T) {
	tp := newSRTopo(t, 21)
	tree := NewSRTree(0)
	defer tree.Close()
	tree.AddRouter(tp.core, 1, 0)
	tree.AddRouter(tp.edge, 2, 1)

	src, err := dataplane.NewSource(tp.core.DataAddr(), tp.ch, dataplane.SourceOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	tree.Serve(tp.ch, func(h []byte) { src.SetSourceRoute(h) })
	tree.Recompute()
	if !src.SourceRouted() {
		t.Fatal("source not routed after synchronous recompute")
	}

	const batch = 50
	for i := 0; i < batch; i++ {
		if err := src.Send([]byte(fmt.Sprintf("pkt-%d", src.Seq()+1))); err != nil {
			t.Fatal(err)
		}
	}
	srRecvOrdered(t, "header-mode", tp.recv, 1, batch)

	for _, hop := range []struct {
		name string
		p    *dataplane.Plane
	}{{"core", tp.core.DataPlane()}, {"edge", tp.edge.DataPlane()}} {
		st := hop.p.Stats()
		if st.SRForwarded != batch {
			t.Errorf("%s: SRForwarded = %d, want %d", hop.name, st.SRForwarded, batch)
		}
		if st.FIB.Lookups != 0 {
			t.Errorf("%s: FIB lookups = %d in header mode, want 0", hop.name, st.FIB.Lookups)
		}
		if st.SRFallback != 0 || st.SRBad != 0 {
			t.Errorf("%s: SR fallback/bad = %d/%d, want 0/0", hop.name, st.SRFallback, st.SRBad)
		}
	}

	// Revert to FIB mode mid-stream: unserve and clear the source's header.
	tree.Stop(tp.ch)
	if err := src.SetSourceRoute(nil); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < batch; i++ {
		if err := src.Send([]byte(fmt.Sprintf("pkt-%d", src.Seq()+1))); err != nil {
			t.Fatal(err)
		}
	}
	srRecvOrdered(t, "fib-mode", tp.recv, batch+1, batch)
	st := tp.core.DataPlane().Stats()
	if st.FIB.Matched != batch {
		t.Errorf("core: FIB matched = %d after reverting, want %d", st.FIB.Matched, batch)
	}
	if st.SRForwarded != batch {
		t.Errorf("core: SRForwarded = %d after reverting, want %d (unchanged)", st.SRForwarded, batch)
	}
	ts := tree.Stats()
	if ts.Pushes == 0 || ts.Overflows != 0 {
		t.Errorf("tree stats = %+v, want pushes > 0 and no overflows", ts)
	}
}

// TestSRTreeOverflowFallsBackToFIB pins the overflow→FIB rule end to end: a
// budget too small for even one entry makes the SRTree push nil, the source
// sends plain packets, and delivery proceeds identically off the packed FIB
// with the SR fast path never taken.
func TestSRTreeOverflowFallsBackToFIB(t *testing.T) {
	tp := newSRTopo(t, 22)
	// Minimum non-empty stack is fixed(2) + count(1) + entry(6) = 9 bytes;
	// a budget of 8 overflows any subscribed tree.
	tree := NewSRTree(8)
	defer tree.Close()
	tree.AddRouter(tp.core, 1, 0)
	tree.AddRouter(tp.edge, 2, 1)

	src, err := dataplane.NewSource(tp.core.DataAddr(), tp.ch, dataplane.SourceOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	tree.Serve(tp.ch, func(h []byte) { src.SetSourceRoute(h) })
	tree.Recompute()
	if src.SourceRouted() {
		t.Fatal("source routed despite overflow; want nil push")
	}
	if ts := tree.Stats(); ts.Overflows == 0 {
		t.Fatalf("tree stats = %+v, want overflows > 0", ts)
	}

	const batch = 20
	for i := 0; i < batch; i++ {
		if err := src.Send([]byte(fmt.Sprintf("pkt-%d", src.Seq()+1))); err != nil {
			t.Fatal(err)
		}
	}
	srRecvOrdered(t, "overflow-fallback", tp.recv, 1, batch)
	st := tp.core.DataPlane().Stats()
	if st.SRForwarded != 0 || st.FIB.Matched != batch {
		t.Errorf("core: SRForwarded/FIB.Matched = %d/%d, want 0/%d", st.SRForwarded, st.FIB.Matched, batch)
	}
}

// TestSRTreeUnawareHopFallsBack pins the header-unaware cascade: when the
// first hop has no hop ID it cannot pop its group, so it FIB-forwards with
// the header intact; the next hop then finds a foreign group under the
// cursor and falls back too. Delivery is unharmed — every hop lands on the
// same OIFs the FIB would have chosen.
func TestSRTreeUnawareHopFallsBack(t *testing.T) {
	tp := newSRTopo(t, 23)
	tree := NewSRTree(0)
	defer tree.Close()
	tree.AddRouter(tp.core, 1, 0)
	tree.AddRouter(tp.edge, 2, 1)
	// Simulate a legacy core: header-unaware, but still in the stack that
	// the (stale) controller image keeps encoding.
	tp.core.DataPlane().SetHopID(0)

	src, err := dataplane.NewSource(tp.core.DataAddr(), tp.ch, dataplane.SourceOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	tree.Serve(tp.ch, func(h []byte) { src.SetSourceRoute(h) })
	tree.Recompute()
	if !src.SourceRouted() {
		t.Fatal("source not routed after recompute")
	}

	const batch = 20
	for i := 0; i < batch; i++ {
		if err := src.Send([]byte(fmt.Sprintf("pkt-%d", src.Seq()+1))); err != nil {
			t.Fatal(err)
		}
	}
	srRecvOrdered(t, "unaware-fallback", tp.recv, 1, batch)

	coreSt := tp.core.DataPlane().Stats()
	if coreSt.SRFallback != batch || coreSt.FIB.Matched != batch {
		t.Errorf("core: SRFallback/FIB.Matched = %d/%d, want %d/%d",
			coreSt.SRFallback, coreSt.FIB.Matched, batch, batch)
	}
	edgeSt := tp.edge.DataPlane().Stats()
	if edgeSt.SRFallback != batch || edgeSt.FIB.Matched != batch {
		t.Errorf("edge: SRFallback/FIB.Matched = %d/%d, want %d/%d (cursor cascade)",
			edgeSt.SRFallback, edgeSt.FIB.Matched, batch, batch)
	}
}

// TestSRTreeFoldUnit exercises the fold itself without data planes: headers
// reflect live OIF images, refold on membership change, and go nil when the
// last subscriber leaves.
func TestSRTreeFoldUnit(t *testing.T) {
	r, err := NewRouter("127.0.0.1:0", "")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	ch := addr.Channel{S: addr.MustParse("10.2.0.2"), E: addr.ExpressAddr(5)}

	tree := NewSRTree(0)
	defer tree.Close()
	tree.AddRouter(r, 7, 0)

	var mu sync.Mutex
	var last []byte
	gotNil := false
	tree.Serve(ch, func(h []byte) {
		mu.Lock()
		defer mu.Unlock()
		if h == nil {
			gotNil = true
			last = nil
			return
		}
		last = append(last[:0], h...)
	})
	tree.Recompute()
	mu.Lock()
	if !gotNil || last != nil {
		t.Fatalf("initial fold: gotNil=%v last=%v, want nil push (no subscribers)", gotNil, last)
	}
	gotNil = false
	mu.Unlock()

	c, err := Dial(r.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.Subscribe(ch)
	c.Flush()
	// The OIF change fires the route observer, which refolds on the worker.
	waitFor(t, 5*time.Second, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return last != nil
	})
	mu.Lock()
	h, rest, err := wire.ParseExtHeader(last)
	mu.Unlock()
	if err != nil || len(rest) != 0 {
		t.Fatalf("ParseExtHeader(pushed) = rest %d, %v", len(rest), err)
	}
	groups, _, err := h.Groups()
	if err != nil || len(groups) != 1 || len(groups[0]) != 1 {
		t.Fatalf("Groups() = %v, %v; want one group of one entry", groups, err)
	}
	if groups[0][0].Hop != 7 || groups[0][0].OIFs != r.OIFMask(ch) {
		t.Errorf("entry = %+v, want hop 7 mask %#x", groups[0][0], r.OIFMask(ch))
	}

	// Last subscriber leaves: the refold must push nil (back to FIB mode —
	// where the missing FIB entry drops, exactly as it should).
	c.Unsubscribe(ch)
	c.Flush()
	waitFor(t, 5*time.Second, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return gotNil
	})
}
