package realnet

import (
	"sync"
	"sync/atomic"

	"repro/internal/addr"
	"repro/internal/wire"
)

// SRTree is the tree-computation service of the source-routed forwarding
// mode (Elmo-style): it watches the Count tree's OIF images across a set of
// routers and folds them, per channel, into a per-hop bitmap stack — the
// wire extension header a source stamps on every packet so core routers
// replicate with zero per-channel FIB state.
//
// The service is controller-shaped: it is configured with the topology
// image (which router sits at which tree depth, under which hop ID — the
// same global view an SDN controller holds in Elmo), subscribes to each
// router's OIF changes through SetRouteObserver, and on any change marks
// the channel dirty and refolds it on a background worker. The folded
// header is pushed to the channel's registered sink (normally the channel
// source's SetSourceRoute). When a channel's tree exceeds the header budget
// the push is nil — the source reverts to plain packets and the path
// forwards off the packed FIB, the overflow→FIB fallback rule — and the
// overflow is counted. P³FA's low-egress-diversity observation is the bet
// that overflow stays rare: real per-hop fan-out is small.
type SRTree struct {
	budget int

	mu      sync.Mutex
	nodes   []srNode
	sinks   map[addr.Channel]func([]byte)
	dirty   map[addr.Channel]struct{}
	closed  bool
	kick    chan struct{}
	quit    chan struct{}
	done    chan struct{}
	encBuf []byte
	groups [][]wire.HopEntry

	recomputes atomic.Uint64
	pushes     atomic.Uint64
	overflows  atomic.Uint64
	empties    atomic.Uint64
}

// srNode is one router's place in the replication topology.
type srNode struct {
	r     *Router
	hop   uint16
	depth int
}

// SRTreeStats is a snapshot of the service's counters.
type SRTreeStats struct {
	Recomputes uint64 // channel refolds performed
	Pushes     uint64 // headers pushed to sinks (including nil fallbacks)
	Overflows  uint64 // refolds that exceeded the header budget (→ FIB fallback)
	Empties    uint64 // refolds with no subscribed hops anywhere (→ nil push)
}

// NewSRTree starts the service. budget bounds the encoded header size in
// bytes; 0 (or anything past the wire format's 255-byte cap) selects
// wire.MaxExtHeader. Smaller budgets model links with tighter headroom and
// are how tests exercise the overflow→FIB fallback.
func NewSRTree(budget int) *SRTree {
	if budget <= 0 || budget > wire.MaxExtHeader {
		budget = wire.MaxExtHeader
	}
	t := &SRTree{
		budget: budget,
		sinks:  make(map[addr.Channel]func([]byte)),
		dirty:  make(map[addr.Channel]struct{}),
		kick:   make(chan struct{}, 1),
		quit:   make(chan struct{}),
		done:   make(chan struct{}),
		encBuf: make([]byte, 0, wire.MaxExtHeader),
	}
	go t.worker()
	return t
}

// AddRouter places r in the topology image at the given tree depth (0 =
// first hop below the source) under the given hop ID, makes the router's
// data plane header-aware under that ID, and subscribes to its OIF changes.
// hop must be nonzero (0 is the wire format's header-unaware reservation).
func (t *SRTree) AddRouter(r *Router, hop uint16, depth int) {
	if hop == 0 || depth < 0 {
		return
	}
	t.mu.Lock()
	t.nodes = append(t.nodes, srNode{r: r, hop: hop, depth: depth})
	t.mu.Unlock()
	if dp := r.DataPlane(); dp != nil {
		dp.SetHopID(hop)
	}
	// The observer runs under the router's shard lock: mark and kick only.
	r.SetRouteObserver(func(ch addr.Channel, _ uint32) { t.markDirty(ch) })
}

// Serve registers the sink for ch's headers — normally the channel source's
// SetSourceRoute, wrapped to taste — and schedules an initial fold. The
// sink receives nil when the channel has no tree or its stack exceeds the
// budget (the caller should then send plain, FIB-forwarded packets). The
// header bytes are only valid for the duration of the call — copy to keep
// (dataplane.Source.SetSourceRoute already does).
func (t *SRTree) Serve(ch addr.Channel, sink func([]byte)) {
	t.mu.Lock()
	t.sinks[ch] = sink
	t.mu.Unlock()
	t.markDirty(ch)
}

// Stop unregisters ch; no further pushes will arrive at its sink.
func (t *SRTree) Stop(ch addr.Channel) {
	t.mu.Lock()
	delete(t.sinks, ch)
	delete(t.dirty, ch)
	t.mu.Unlock()
}

// markDirty schedules ch for a refold. Fast and non-blocking: it is called
// from route observers holding shard locks.
func (t *SRTree) markDirty(ch addr.Channel) {
	t.mu.Lock()
	if !t.closed {
		t.dirty[ch] = struct{}{}
	}
	t.mu.Unlock()
	select {
	case t.kick <- struct{}{}:
	default:
	}
}

// Stats returns a snapshot of the service's counters.
func (t *SRTree) Stats() SRTreeStats {
	return SRTreeStats{
		Recomputes: t.recomputes.Load(),
		Pushes:     t.pushes.Load(),
		Overflows:  t.overflows.Load(),
		Empties:    t.empties.Load(),
	}
}

// Recompute folds every registered channel now, synchronously — tests and
// callers that just built a topology use it to avoid waiting on the worker.
func (t *SRTree) Recompute() {
	t.mu.Lock()
	for ch := range t.sinks {
		t.dirty[ch] = struct{}{}
	}
	t.mu.Unlock()
	t.drain()
}

// Close stops the worker. Registered routers keep their observers; they
// mark into a closed service harmlessly.
func (t *SRTree) Close() {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return
	}
	t.closed = true
	t.mu.Unlock()
	close(t.quit)
	<-t.done
}

func (t *SRTree) worker() {
	defer close(t.done)
	for {
		select {
		case <-t.quit:
			return
		case <-t.kick:
		}
		t.drain()
	}
}

// drain refolds every dirty channel. The dirty set and topology are copied
// under t.mu; the folds themselves run unlocked — OIFMask takes shard locks
// and must never nest inside t.mu (the observers run under those same shard
// locks and take t.mu).
func (t *SRTree) drain() {
	for {
		t.mu.Lock()
		if len(t.dirty) == 0 || t.closed {
			t.mu.Unlock()
			return
		}
		var ch addr.Channel
		for ch = range t.dirty {
			break
		}
		delete(t.dirty, ch)
		sink := t.sinks[ch]
		nodes := t.nodes
		t.mu.Unlock()

		if sink == nil {
			continue // OIF churn on a channel nobody serves
		}
		hdr := t.fold(ch, nodes)
		t.pushes.Add(1)
		sink(hdr)
	}
}

// fold computes ch's bitmap stack from the live OIF images: one group per
// tree depth holding every router at that depth with a nonzero mask.
// Returns nil when the channel has no subscribed hops or the encoding
// exceeds the budget — the FIB-fallback signal.
func (t *SRTree) fold(ch addr.Channel, nodes []srNode) []byte {
	t.recomputes.Add(1)
	maxDepth := -1
	for _, n := range nodes {
		if n.depth > maxDepth {
			maxDepth = n.depth
		}
	}
	if cap(t.groups) < maxDepth+1 {
		t.groups = make([][]wire.HopEntry, maxDepth+1)
	}
	groups := t.groups[:maxDepth+1]
	for i := range groups {
		groups[i] = nil
	}
	total := 0
	for _, n := range nodes {
		if mask := n.r.OIFMask(ch); mask != 0 {
			groups[n.depth] = append(groups[n.depth], wire.HopEntry{Hop: n.hop, OIFs: mask})
			total++
		}
	}
	if total == 0 {
		t.empties.Add(1)
		return nil
	}
	if size := wire.ExtHeaderSize(groups); size < 0 || size > t.budget {
		t.overflows.Add(1)
		return nil
	}
	enc, err := wire.AppendExtHeader(t.encBuf[:0], groups)
	if err != nil {
		t.overflows.Add(1)
		return nil
	}
	t.encBuf = enc
	return enc
}
