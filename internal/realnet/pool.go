package realnet

import (
	"bufio"
	"sync"

	"repro/internal/wire"
)

// Buffer recycling for the wire path. The decode side already borrows from
// the read buffer (wire codecs never allocate per message); these pools make
// the remaining per-segment and per-connection buffers recycle too, so the
// steady-state control plane neither allocates per event nor per flush.

// segPool recycles encoded upstream segments between the batcher (producer)
// and the neighbor writer goroutine (consumer). Capacity is one full
// maximum-sized TCP segment — Section 5.3's packing unit — so a pooled
// buffer always fits any batch the batcher emits.
var segPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, wire.MaxSegment)
		return &b
	},
}

func getSeg() *[]byte  { return segPool.Get().(*[]byte) }
func putSeg(b *[]byte) { *b = (*b)[:0]; segPool.Put(b) }

// readerPool recycles the 64 KiB per-connection read buffers: neighbor
// churn (benchmarks dial hundreds of short-lived connections) reuses
// buffers instead of growing the heap by 64 KiB per accept.
var readerPool = sync.Pool{
	New: func() any { return bufio.NewReaderSize(nil, 64<<10) },
}
