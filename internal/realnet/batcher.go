package realnet

import (
	"sync/atomic"
	"time"

	"repro/internal/addr"
	"repro/internal/wire"
)

// batcher coalesces upstream Count advertisements. The first implementation
// wrote one Count per membership event straight to the upstream socket; the
// batcher instead records dirty channels (latest aggregate per channel) in
// per-shard sets and flushes them as packed wire segments — Section 5.3's
// "approximately 92 16-byte Count messages fit in a 1480-byte maximum-sized
// TCP segment" — on a size or age trigger. Coalescing means a channel that
// changes many times between flushes costs one Count carrying the final
// value, which is what makes advertising every value change (not just
// zero↔non-zero transitions) affordable.
type batcher struct {
	table    *table
	up       *upSession
	interval time.Duration
	trigger  int

	// pending counts dirty channels across all shards; crossing trigger
	// kicks an immediate flush instead of waiting for the age ticker.
	pending atomic.Int64
	kick    chan struct{}
	quit    chan struct{}
	done    chan struct{}

	counts  atomic.Uint64 // Count messages flushed upstream (post-coalescing)
	flushes atomic.Uint64 // flush passes that emitted at least one segment

	obs *routerObs

	// flusher-goroutine state: the segment under construction and one spare
	// dirty map per shard, swapped in while the taken map is drained;
	// emitted segments travel in pooled buffers (segPool), so steady-state
	// flushing is allocation-free. ageScratch carries the swept shards'
	// dirty-window open times to the post-emit latency observation, and
	// lastEmit is when the previous emitting pass finished.
	batch      *wire.Batch
	spares     []map[addr.Channel]uint32
	ageScratch []int64
	lastEmit   int64
}

func newBatcher(t *table, up *upSession, interval time.Duration, trigger int, o *routerObs) *batcher {
	b := &batcher{
		table:      t,
		up:         up,
		interval:   interval,
		trigger:    trigger,
		obs:        o,
		kick:       make(chan struct{}, 1),
		quit:       make(chan struct{}),
		done:       make(chan struct{}),
		batch:      wire.NewBatch(),
		spares:     make([]map[addr.Channel]uint32, len(t.shards)),
		ageScratch: make([]int64, 0, len(t.shards)),
	}
	for i := range b.spares {
		b.spares[i] = make(map[addr.Channel]uint32)
	}
	go b.run()
	return b
}

// markLocked records a changed aggregate for ch. The caller MUST hold
// sh.mu; marking under the shard lock keeps per-channel dirty values in
// event order (an unlocked mark could let a stale total overwrite a newer
// zero after the channel was deleted).
func (b *batcher) markLocked(sh *shard, ch addr.Channel, total uint32) {
	if _, ok := sh.dirty[ch]; !ok {
		if len(sh.dirty) == 0 {
			// First mark of the shard's flush window: the ingest end of
			// the propagation-latency measurement. One clock read per
			// window, amortized over every event it coalesces.
			sh.dirtyAt = time.Now().UnixNano()
		}
		if b.pending.Add(1) >= int64(b.trigger) {
			select {
			case b.kick <- struct{}{}:
			default:
			}
		}
	}
	sh.dirty[ch] = total
}

// run is the flusher goroutine: age trigger via ticker, size trigger via
// kick, and a final drain on shutdown.
func (b *batcher) run() {
	defer close(b.done)
	tick := time.NewTicker(b.interval)
	defer tick.Stop()
	for {
		select {
		case <-b.kick:
			b.flush()
		case <-tick.C:
			b.flush()
		case <-b.quit:
			b.flush()
			return
		}
	}
}

// stop drains the batcher: every dirty channel marked before stop returns
// is flushed to the upstream queue.
func (b *batcher) stop() {
	close(b.quit)
	<-b.done
}

// flush sweeps every shard's dirty set into packed segments. Shard locks
// are held only for the map swap, never across encoding or socket work.
func (b *batcher) flush() {
	if b.pending.Load() == 0 {
		return
	}
	total := 0
	b.ageScratch = b.ageScratch[:0]
	var msg wire.Count
	for i, sh := range b.table.shards {
		sh.mu.Lock()
		if len(sh.dirty) == 0 {
			sh.mu.Unlock()
			continue
		}
		taken := sh.dirty
		sh.dirty = b.spares[i]
		openedAt := sh.dirtyAt
		sh.mu.Unlock()
		b.pending.Add(-int64(len(taken)))
		b.ageScratch = append(b.ageScratch, openedAt)
		for ch, v := range taken {
			msg = wire.Count{Channel: ch, CountID: wire.CountSubscribers, Value: v}
			if !b.batch.Add(&msg) {
				b.emit()
				b.batch.Add(&msg)
			}
			b.counts.Add(1)
			total++
		}
		clear(taken)
		b.spares[i] = taken
	}
	b.emit()
	if total > 0 {
		b.flushes.Add(1)
		// Everything swept this pass now sits in the upstream queue:
		// observe the ingest→flush latency per swept shard, the pass's
		// coalesced size, and the spacing since the previous emitting pass.
		now := time.Now().UnixNano()
		for _, openedAt := range b.ageScratch {
			if d := now - openedAt; d > 0 {
				b.obs.propLatency.Observe(uint64(d))
			}
		}
		b.obs.flushSize.ObserveInt(total)
		if b.lastEmit > 0 {
			if d := now - b.lastEmit; d > 0 {
				b.obs.flushInterval.Observe(uint64(d))
			}
		}
		b.lastEmit = now
	}
}

// emit hands the segment under construction to the upstream session's
// current connection in a pooled buffer, recycled by the writer after the
// socket write — steady-state flushing allocates nothing. While the
// upstream link is down the segment is dropped and accounted; the
// full-state resync after reconnection repairs whatever was lost.
func (b *batcher) emit() {
	if b.batch.Len() == 0 {
		return
	}
	seg := getSeg()
	*seg = append(*seg, b.batch.Bytes()...)
	b.up.enqueue(seg)
	b.batch.Reset()
}

// markAll marks every live channel dirty with its current aggregate — the
// full-state replay sent after the upstream session reconnects (Section
// 3.2's count re-addition on recovery). Channels that went to zero while
// the link was down need no tombstone: the upstream withdrew this whole
// session's contribution when it accepted the new epoch, so absence from
// the replay already means zero there.
func (b *batcher) markAll() {
	for _, sh := range b.table.shards {
		sh.mu.Lock()
		for ch, cs := range sh.channels {
			total := cs.total()
			cs.advertised = total
			cs.everAdv = true
			b.markLocked(sh, ch, total)
		}
		sh.mu.Unlock()
	}
}
