// Package realnet is the user-level ECMP router of Section 5.3, over real
// TCP sockets: "We implemented TCP-based ECMP as a user-level process on a
// workstation and measured the costs of channel maintenance."
//
// The processing path matches the paper's description per event: a hashed
// lookup of the channel data structure, allocating a new channel structure
// when needed, determining the physical interface (connection) of the
// request, computing the necessary FIB manipulation, looking up and sending
// a message to the next-hop upstream neighbor, and recording the unicast
// route used — plus a simulated RPF neighbor calculation of approximately
// 400 cycles, exactly as the paper's measurement did.
//
// Beyond the paper's single-threaded measurement, the router is built in
// production shape: the channel table is sharded by hash(S,E) so concurrent
// neighbor connections process events in parallel, upstream advertisements
// are coalesced by a batcher into packed Count segments (Section 5.3's
// 92-Counts-per-segment arithmetic), and neighbor links carry the Section
// 3.2 failure semantics for real networks — a failed connection's counts
// are withdrawn from every shard (driving zero re-aggregation upstream),
// sessions reconnect with capped exponential backoff, and a Hello/epoch
// handshake plus full-state replay resynchronizes exactly on recovery.
package realnet

import (
	"bufio"
	"encoding/binary"
	"errors"
	"io"
	"math/rand"
	"net"
	"net/netip"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/addr"
	"repro/internal/dataplane"
	"repro/internal/wire"
)

// Options tunes the router's control plane. The zero value of every field
// selects a sensible default, so Options{} behaves like the original
// single-lock, write-per-event router did — just faster.
type Options struct {
	// Upstream is the address of the upstream neighbor to forward
	// aggregate Counts to; empty at the tree root.
	Upstream string
	// Shards is the number of channel-table shards (rounded up to a power
	// of two). Default 8.
	Shards int
	// FlushInterval is the age trigger of the upstream batcher: the
	// longest a changed aggregate waits before it is flushed. Default
	// 500µs.
	FlushInterval time.Duration
	// FlushBatch is the size trigger: when this many channels are dirty an
	// immediate flush is kicked. Default wire.CountsPerSegment (92), one
	// full segment.
	FlushBatch int
	// WriteDeadline bounds each segment write to a neighbor socket.
	// Default 5s.
	WriteDeadline time.Duration
	// QueueLen is the per-neighbor bounded output queue length, in
	// segments. When a queue is full, segments are dropped and accounted
	// rather than stalling event processing. Default 256.
	QueueLen int

	// KeepaliveInterval enables liveness probing when > 0. Downstream, a
	// reaper closes neighbor connections that have been silent for
	// KeepaliveMisses×KeepaliveInterval, withdrawing their counts (Section
	// 3.2's failure subtraction). Upstream, the router sends one keepalive
	// Count per interval so a quiet link still proves liveness to its
	// parent's reaper. 0 (the default) disables both — anonymous Clients
	// do not send keepalives and must not be reaped. Enable symmetrically
	// on both ends of router-to-router links.
	KeepaliveInterval time.Duration
	// KeepaliveMisses is the probe miss budget before a silent neighbor is
	// declared dead. Default 3.
	KeepaliveMisses int
	// ReconnectBase and ReconnectMax bound the jittered exponential
	// backoff between upstream reconnect attempts. Defaults 10ms and 2s.
	ReconnectBase time.Duration
	ReconnectMax  time.Duration
	// SessionID identifies this router to its upstream across reconnects
	// (carried in the Hello handshake). 0 picks a random id.
	SessionID uint64
	// Dial overrides how the upstream connection is established; tests and
	// loadgen inject fault-wrapped connections here. Default net.Dial tcp.
	Dial func(addr string) (net.Conn, error)

	// DataListen enables the UDP data plane when non-empty: the router
	// ingests channel data packets on this address, forwards them by
	// lock-free FIB lookup, and replicates to the data ports its neighbors
	// advertised in their Hellos. The membership machinery programs the
	// plane: every OIF change reprograms the (S,E) route, and the neighbor
	// withdrawal path clears both routes and ports. Empty (the default)
	// runs the router control-plane-only, exactly as before.
	DataListen string
	// DataQueues and DataQueueLen tune the plane's ingest queue count
	// (SO_REUSEPORT sockets with dedicated recvmmsg workers on linux) and
	// per-destination egress queue length (see dataplane.Options). 0 picks
	// the defaults.
	DataQueues   int
	DataQueueLen int
	// DataHopID is the data plane's identity in source-routed extension
	// headers: packets carrying a per-hop bitmap stack are forwarded off
	// the entry keyed by this ID with zero FIB lookups (see SRTree). 0
	// (the default) leaves the plane header-unaware — source-routed
	// packets fall back to the packed FIB like any other.
	DataHopID uint16
}

func (o Options) withDefaults() Options {
	if o.Shards <= 0 {
		o.Shards = 8
	}
	if o.FlushInterval <= 0 {
		o.FlushInterval = 500 * time.Microsecond
	}
	if o.FlushBatch <= 0 {
		o.FlushBatch = wire.CountsPerSegment
	}
	if o.WriteDeadline <= 0 {
		o.WriteDeadline = 5 * time.Second
	}
	if o.QueueLen <= 0 {
		o.QueueLen = 256
	}
	if o.KeepaliveMisses <= 0 {
		o.KeepaliveMisses = 3
	}
	if o.ReconnectBase <= 0 {
		o.ReconnectBase = 10 * time.Millisecond
	}
	if o.ReconnectMax <= 0 {
		o.ReconnectMax = 2 * time.Second
	}
	for o.SessionID == 0 {
		o.SessionID = rand.Uint64()
	}
	if o.Dial == nil {
		o.Dial = dialTCP
	}
	return o
}

// Stats is a snapshot of the router's counters.
type Stats struct {
	Events       uint64 // membership events processed
	Subscribes   uint64
	Unsubscribes uint64
	Channels     int // channels currently holding state
	Shards       int

	UpstreamCounts   uint64 // coalesced Count messages flushed upstream
	UpstreamSegments uint64 // segments accepted into the upstream queue
	UpstreamDrops    uint64 // segments dropped (queue full or dead upstream)
	Flushes          uint64 // batcher flush passes that emitted data

	NeighborFailures   uint64 // downstream connections whose counts were withdrawn
	WithdrawnCounts    uint64 // per-channel contributions withdrawn on failure
	SessionResyncs     uint64 // session reconnects accepted (Hello with a newer epoch)
	UpstreamReconnects uint64 // times the upstream link was re-established
}

// Router is a TCP-mode ECMP router. Neighbors connect over TCP and stream
// batched Count messages; the router maintains per-channel per-neighbor
// subscriber counts, a FIB image, and forwards coalesced aggregate Counts
// to its upstream neighbor (if any).
type Router struct {
	ln      net.Listener
	opts    Options
	table   *table
	obs     *routerObs
	upSess  *upSession       // nil at the tree root
	batcher *batcher         // nil at the tree root
	dp      *dataplane.Plane // nil when Options.DataListen is empty

	mu       sync.Mutex
	conns    []*neighbor
	sessions map[uint64]*sessionRecord
	relays   map[addr.Channel]relayReg
	closed   bool

	failures  atomic.Uint64 // neighbor connections retired with live counts
	withdrawn atomic.Uint64 // per-channel contributions withdrawn
	resyncs   atomic.Uint64 // accepted session rebinds

	appEvents    atomic.Uint64 // application-defined Counts applied
	queries      atomic.Uint64 // CountQuery messages received
	queryReplies atomic.Uint64 // solicited Counts enqueued back downstream

	// routeObs, when set, observes every OIF-image change (see
	// SetRouteObserver). Called under the owning shard's lock.
	routeObs atomic.Pointer[func(addr.Channel, uint32)]

	// rpfSink absorbs the simulated RPF calculation so the compiler cannot
	// elide it.
	rpfSink atomic.Uint32

	readWG     sync.WaitGroup // accept loop + per-neighbor read loops
	reaperQuit chan struct{}
	reaperDone chan struct{}
}

// sessionRecord tracks one downstream neighbor session across reconnects:
// the epoch of its newest accepted Hello and the connection bound to it.
type sessionRecord struct {
	epoch uint64
	n     *neighbor
}

// chanState is the per-channel management record (Section 5.2's budget).
type chanState struct {
	downCounts map[int]uint32 // per-neighbor (interface) subscriber counts
	// appCounts holds per-neighbor values for application-defined count ids
	// (wire.AppCountBase..AppCountLast) — the proactive counting state of
	// Section 6 that the NACK-based reliable transport (Section 2.2.1)
	// queries. Lazily allocated; withdrawn with the neighbor like
	// downCounts.
	appCounts  map[wire.CountID]map[int]uint32
	oifs       uint32 // FIB outgoing-interface image
	advertised uint32 // last aggregate handed to the batcher
	everAdv    bool
	route      int // recorded unicast route (upstream neighbor id)
}

// empty reports whether the channel holds no state at all and can be
// dropped from its shard. Callers hold the shard lock.
func (cs *chanState) empty() bool {
	return len(cs.downCounts) == 0 && len(cs.appCounts) == 0
}

// relayReg is one entry of the router's Section 4 relay registry: the
// unicast control endpoint a neighbor's Hello advertised for a channel,
// plus the connection that owns it (so the withdrawal sweep can find it).
type relayReg struct {
	ap    netip.AddrPort
	owner *neighbor
}

// inboundMsgSize maps a message type byte to its fixed encoded size; false
// rejects the type (protocol error, the connection is dropped).
func inboundMsgSize(t uint8) (int, bool) {
	switch t {
	case wire.TypeCount:
		return wire.CountSize, true
	case wire.TypeCountAuth:
		return wire.CountAuthSize, true
	case wire.TypeCountQuery:
		return wire.CountQuerySize, true
	case wire.TypeCountResponse:
		return wire.CountResponseSize, true
	case wire.TypeHello:
		return wire.HelloSize, true
	}
	return 0, false
}

// maxInboundMsg sizes per-connection read buffers: the largest fixed-size
// message on the TCP stream.
const maxInboundMsg = max(wire.CountSize, wire.CountAuthSize, wire.CountQuerySize,
	wire.CountResponseSize, wire.HelloSize)

// NewRouter listens on listenAddr ("127.0.0.1:0" for an ephemeral port).
// If upstreamAddr is non-empty the router connects to its upstream neighbor
// there and forwards aggregate Counts to it. Default Options otherwise.
func NewRouter(listenAddr, upstreamAddr string) (*Router, error) {
	return NewRouterOpts(listenAddr, Options{Upstream: upstreamAddr})
}

// NewRouterOpts is NewRouter with explicit tuning.
func NewRouterOpts(listenAddr string, opts Options) (*Router, error) {
	opts = opts.withDefaults()
	ln, err := net.Listen("tcp", listenAddr)
	if err != nil {
		return nil, err
	}
	r := &Router{
		ln:       ln,
		opts:     opts,
		table:    newTable(opts.Shards),
		obs:      newRouterObs(),
		sessions: make(map[uint64]*sessionRecord),
		relays:   make(map[addr.Channel]relayReg),
	}
	if opts.DataListen != "" {
		dp, err := dataplane.NewPlane(dataplane.Options{
			Listen:   opts.DataListen,
			Queues:   opts.DataQueues,
			QueueLen: opts.DataQueueLen,
			HopID:    opts.DataHopID,
		})
		if err != nil {
			ln.Close()
			return nil, err
		}
		r.dp = dp
	}
	if opts.Upstream != "" {
		// The plane exists first: the upstream Hello advertises its port.
		s, err := newUpSession(r, opts.Upstream)
		if err != nil {
			ln.Close()
			if r.dp != nil {
				r.dp.Close()
			}
			return nil, err
		}
		r.upSess = s
		r.batcher = newBatcher(r.table, s, opts.FlushInterval, opts.FlushBatch, r.obs)
		s.batcher = r.batcher
		s.start()
	}
	r.registerMetrics()
	if opts.KeepaliveInterval > 0 {
		r.reaperQuit = make(chan struct{})
		r.reaperDone = make(chan struct{})
		go r.reaper()
	}
	r.readWG.Add(1)
	go r.acceptLoop()
	return r, nil
}

// Addr returns the router's listen address.
func (r *Router) Addr() string { return r.ln.Addr().String() }

// DataPlane returns the router's UDP data plane, or nil when disabled.
func (r *Router) DataPlane() *dataplane.Plane { return r.dp }

// DataAddr returns the data plane's UDP listen address ("" when disabled) —
// where a source injects the channel's packets.
func (r *Router) DataAddr() string {
	if r.dp == nil {
		return ""
	}
	return r.dp.Addr()
}

// dataPort is the port advertised in the router's upstream Hello (0 when
// the data plane is disabled, meaning "do not replicate data to me").
func (r *Router) dataPort() uint16 {
	if r.dp == nil {
		return 0
	}
	return r.dp.Port()
}

// registerHello installs a Hello's advertisements — the neighbor's data
// port into the plane's egress table and its relay endpoint into the relay
// registry — under r.mu, which makes registration mutually exclusive with
// the withdrawal sweep. The gone/superseded checks inside the lock close
// the registration/withdrawal race: both flags are set before retire runs,
// so either this registration lands first and the sweep (which also holds
// r.mu) removes it, or the flag is already observable here and the stale
// registration is skipped. Without the lock, a reconnect racing this
// connection's late registration could leave a retired neighbor's port and
// relay entry installed forever — its retireOnce is already spent, so no
// future sweep would ever remove them.
func (r *Router) registerHello(n *neighbor, h *wire.Hello) {
	if h.DataPort == 0 && h.RelayPort == 0 {
		return
	}
	ta, ok := n.conn.RemoteAddr().(*net.TCPAddr)
	if !ok {
		return
	}
	ip := ta.AddrPort().Addr().Unmap()
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed || n.gone.Load() || n.superseded.Load() {
		return
	}
	if r.dp != nil && h.DataPort != 0 {
		r.dp.SetPort(n.id, netip.AddrPortFrom(ip, h.DataPort))
	}
	if h.RelayPort != 0 {
		// Last writer wins per channel — a standby promoting itself
		// re-advertises and takes over the registration.
		r.relays[h.RelayChannel] = relayReg{ap: netip.AddrPortFrom(ip, h.RelayPort), owner: n}
	}
}

// Events returns the number of membership events processed.
func (r *Router) Events() uint64 { return r.table.totalEvents() }

// EventsByType returns (subscribes, unsubscribes) processed.
func (r *Router) EventsByType() (uint64, uint64) { return r.table.eventsByType() }

// Channels returns the number of channels with state.
func (r *Router) Channels() int { return r.table.numChannels() }

// SetRouteObserver installs fn to be called on every OIF-image change —
// both membership events and neighbor withdrawals — with the channel and
// its new mask. The tree-computation service (SRTree) uses it to track
// which channels need their source-route headers refolded. fn runs under
// the owning shard's lock: it must be fast, must not block, and must not
// call back into the router (mark-and-kick, recompute elsewhere). nil
// uninstalls.
func (r *Router) SetRouteObserver(fn func(addr.Channel, uint32)) {
	if fn == nil {
		r.routeObs.Store(nil)
		return
	}
	r.routeObs.Store(&fn)
}

// notifyRoute invokes the route observer, if any. Callers hold the shard
// lock, so observations for one channel arrive in event order.
func (r *Router) notifyRoute(ch addr.Channel, oifs uint32) {
	if fn := r.routeObs.Load(); fn != nil {
		(*fn)(ch, oifs)
	}
}

// OIFMask returns the FIB outgoing-interface image for ch — the bitmask a
// line card would hold for the channel. Interfaces ≥ fib.MaxInterfaces have
// no bit (they are still counted in SubscriberCount).
func (r *Router) OIFMask(ch addr.Channel) uint32 {
	sh := r.table.shardFor(ch)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if cs := sh.channels[ch]; cs != nil {
		return cs.oifs
	}
	return 0
}

// NumNeighbors returns how many downstream neighbor connections have been
// accepted, including connections later retired or superseded by a session
// reconnect. Neighbor ids are assigned in acceptance order, so tests can
// dial sequentially and wait on this to pin a connection to an id.
func (r *Router) NumNeighbors() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.conns)
}

// SubscriberCount returns the current aggregate subscriber count for ch
// across all downstream neighbors (0 when the channel has no state).
func (r *Router) SubscriberCount(ch addr.Channel) uint32 {
	sh := r.table.shardFor(ch)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	cs := sh.channels[ch]
	if cs == nil {
		return 0
	}
	return cs.total()
}

// Stats returns a snapshot of the router's counters.
func (r *Router) Stats() Stats {
	subs, unsubs := r.table.eventsByType()
	s := Stats{
		Events:           subs + unsubs,
		Subscribes:       subs,
		Unsubscribes:     unsubs,
		Channels:         r.table.numChannels(),
		Shards:           len(r.table.shards),
		NeighborFailures: r.failures.Load(),
		WithdrawnCounts:  r.withdrawn.Load(),
		SessionResyncs:   r.resyncs.Load(),
	}
	if r.batcher != nil {
		s.UpstreamCounts = r.batcher.counts.Load()
		s.Flushes = r.batcher.flushes.Load()
	}
	if r.upSess != nil {
		s.UpstreamSegments = r.upSess.segsTotal()
		s.UpstreamDrops = r.upSess.dropsTotal()
		s.UpstreamReconnects = r.upSess.reconnects.Load()
	}
	return s
}

// Close shuts the router down: stop accepting, stop the reaper, sever
// downstream neighbors, wait for their read loops, drain the batcher so
// every advertised change reaches the upstream queue, then flush and close
// the writers. Shutdown does not withdraw counts — the read loops observe
// the closed flag and skip retirement, so the final drain carries the last
// real aggregates, not zeros.
func (r *Router) Close() error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil
	}
	r.closed = true
	conns := append([]*neighbor(nil), r.conns...)
	r.mu.Unlock()

	err := r.ln.Close()
	if r.reaperQuit != nil {
		close(r.reaperQuit)
		<-r.reaperDone
	}
	for _, n := range conns {
		n.conn.Close()
	}
	// All read loops done: no further marks can reach the batcher.
	r.readWG.Wait()
	if r.batcher != nil {
		r.batcher.stop() // final flush of every dirty channel
	}
	for _, n := range conns {
		n.closeOutput()
		<-n.done
	}
	if r.upSess != nil {
		r.upSess.stop()
	}
	if r.dp != nil {
		r.dp.Close()
	}
	return err
}

func (r *Router) acceptLoop() {
	defer r.readWG.Done()
	for {
		c, err := r.ln.Accept()
		if err != nil {
			return
		}
		r.mu.Lock()
		if r.closed {
			r.mu.Unlock()
			c.Close()
			return
		}
		n := newNeighbor(len(r.conns), c, r.opts.QueueLen, r.opts.WriteDeadline)
		r.conns = append(r.conns, n)
		r.mu.Unlock()
		r.readWG.Add(1)
		go r.readLoop(n)
	}
}

// reaper enforces the keepalive miss budget: a downstream connection that
// produced no complete message for KeepaliveMisses×KeepaliveInterval is
// declared dead and closed, which routes it through the normal read-loop
// retirement (count withdrawal + upstream re-aggregation).
func (r *Router) reaper() {
	defer close(r.reaperDone)
	tick := time.NewTicker(r.opts.KeepaliveInterval)
	defer tick.Stop()
	budget := time.Duration(r.opts.KeepaliveMisses) * r.opts.KeepaliveInterval
	for {
		select {
		case <-r.reaperQuit:
			return
		case <-tick.C:
		}
		now := time.Now()
		r.mu.Lock()
		conns := append([]*neighbor(nil), r.conns...)
		r.mu.Unlock()
		for _, n := range conns {
			if n.gone.Load() || n.superseded.Load() {
				continue
			}
			if now.Sub(time.Unix(0, n.lastSeen.Load())) > budget {
				n.conn.Close()
			}
		}
	}
}

// readLoop parses the self-delimiting ECMP message stream from one
// neighbor, then retires the connection when the stream ends: unless the
// router itself is shutting down, every count the neighbor contributed is
// withdrawn (Section 3.2 — "the count is subtracted from the sum provided
// upstream if the connection fails").
func (r *Router) readLoop(n *neighbor) {
	defer r.readWG.Done()
	r.serveConn(n)
	n.gone.Store(true)
	n.conn.Close()
	r.mu.Lock()
	closed := r.closed
	r.mu.Unlock()
	if !closed {
		r.retire(n)
	}
}

func (r *Router) serveConn(n *neighbor) {
	br := readerPool.Get().(*bufio.Reader)
	br.Reset(n.conn)
	defer func() {
		br.Reset(nil)
		readerPool.Put(br)
	}()
	var hdr [1]byte
	buf := make([]byte, maxInboundMsg)
	for {
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			return
		}
		need, ok := inboundMsgSize(hdr[0])
		if !ok {
			return // protocol error: drop the connection
		}
		buf[0] = hdr[0]
		if _, err := io.ReadFull(br, buf[1:need]); err != nil {
			return
		}
		// Any complete message proves liveness (keepalives included).
		n.lastSeen.Store(time.Now().UnixNano())
		switch hdr[0] {
		case wire.TypeHello:
			var h wire.Hello
			if _, err := h.DecodeFromBytes(buf[:need]); err != nil {
				return
			}
			if !r.bindSession(n, &h) {
				return // stale epoch or shutdown: drop the connection
			}
		case wire.TypeCount, wire.TypeCountAuth:
			var m wire.Count
			if _, err := m.DecodeFromBytes(buf[:need]); err != nil {
				return
			}
			r.processCount(n, &m)
		case wire.TypeCountQuery:
			var q wire.CountQuery
			if _, err := q.DecodeFromBytes(buf[:need]); err != nil {
				return
			}
			r.answerQuery(n, &q)
		}
		// CountResponses are accepted for protocol completeness.
	}
}

// answerQuery serves the ECMP query side of Section 2.2 over a neighbor
// session: the answering Count echoes the query's Seq so the asking client
// can correlate it, and rides the neighbor's bounded egress queue like any
// other downstream traffic (a slow asker drops its own answers, never
// stalls event processing). Unanswerable count ids get silence — the
// paper's queries time out rather than error.
func (r *Router) answerQuery(n *neighbor, q *wire.CountQuery) {
	r.queries.Add(1)
	if q.Seq == 0 {
		return // nothing for the asker to correlate the answer with
	}
	var v uint32
	switch {
	case q.CountID == wire.CountSubscribers:
		v = r.SubscriberCount(q.Channel)
	case q.CountID >= wire.AppCountBase && q.CountID <= wire.AppCountLast:
		v = r.AppCount(q.Channel, q.CountID)
	case q.CountID == wire.CountRelayAddr4:
		ap, ok := r.RelayFor(q.Channel)
		if ok && ap.Addr().Is4() {
			v = binary.BigEndian.Uint32(ap.Addr().AsSlice())
		}
	case q.CountID == wire.CountRelayPort:
		if ap, ok := r.RelayFor(q.Channel); ok {
			v = uint32(ap.Port())
		}
	default:
		return
	}
	m := wire.Count{Channel: q.Channel, CountID: q.CountID, Seq: q.Seq, Value: v}
	seg := getSeg()
	*seg = m.AppendTo(*seg)
	n.enqueue(seg)
	r.queryReplies.Add(1)
}

// AppCount returns the aggregate value of an application-defined count for
// ch across downstream neighbors (0 when nothing was pushed).
func (r *Router) AppCount(ch addr.Channel, id wire.CountID) uint32 {
	sh := r.table.shardFor(ch)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	cs := sh.channels[ch]
	if cs == nil {
		return 0
	}
	var v uint32
	for _, per := range cs.appCounts[id] {
		v += per
	}
	return v
}

// RelayFor returns the registered Section 4 relay control endpoint for ch.
func (r *Router) RelayFor(ch addr.Channel) (netip.AddrPort, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.relays[ch]
	return e.ap, ok
}

// bindSession processes a Hello. First contact registers the session; a
// reconnect (same SessionID, strictly higher epoch) supersedes the previous
// connection — its counts are withdrawn before this read loop goes on to
// apply the replayed state, and the neighbor id is inherited so the
// channel's OIF bit stays stable across flaps. A stale or duplicate epoch
// rejects the connection: it can only come from a connection that predates
// the one already accepted.
func (r *Router) bindSession(n *neighbor, h *wire.Hello) bool {
	if h.SessionID == 0 {
		return false
	}
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return false
	}
	rec := r.sessions[h.SessionID]
	if rec == nil {
		r.sessions[h.SessionID] = &sessionRecord{epoch: h.Epoch, n: n}
		r.mu.Unlock()
		r.registerHello(n, h)
		return true
	}
	if h.Epoch <= rec.epoch || rec.n == n {
		r.mu.Unlock()
		return false
	}
	old := rec.n
	rec.epoch = h.Epoch
	rec.n = n
	n.id = old.id // written before any Count of the new epoch is processed
	r.mu.Unlock()

	// Mark the old connection stale before sweeping, so a count of the old
	// epoch still in flight can no longer land after the withdrawal; then
	// close it and withdraw synchronously — retire blocks until the sweep
	// completed, even if the old read loop started it first.
	old.superseded.Store(true)
	old.conn.Close()
	r.retire(old)
	// The withdrawal above cleared the id's data port and relay entry;
	// re-register from the fresh Hello before this read loop applies the
	// replayed counts. registerHello re-checks this connection's own flags
	// under r.mu, so an even newer epoch superseding *this* connection in
	// the window after retire cannot be overwritten by a stale entry.
	r.registerHello(n, h)
	r.resyncs.Add(1)
	return true
}

// retire withdraws every count contributed by a neighbor connection exactly
// once. Concurrent callers — the connection's own read loop noticing the
// dead socket, and a session rebind superseding it — serialize on the
// sync.Once: the second caller blocks until the withdrawal completed, so a
// rebind never replays state while the old sweep is still running.
func (r *Router) retire(n *neighbor) {
	n.retireOnce.Do(func() { r.withdrawNeighbor(n) })
}

// withdrawNeighbor removes n's contribution from every shard, driving the
// same re-aggregation upstream as explicit zero Counts would (Section 3.2).
// It also unprograms the data plane: every route that loses the neighbor's
// OIF bit is rewritten (or deleted), and the neighbor's data port is
// cleared, so packet replication toward a failed neighbor stops on the same
// sync.Once withdrawal sweep that repairs the counts.
func (r *Router) withdrawNeighbor(n *neighbor) {
	var withdrawn uint64
	for _, sh := range r.table.shards {
		sh.mu.Lock()
		for ch, cs := range sh.channels {
			had := false
			if _, ok := cs.downCounts[n.id]; ok {
				had = true
				delete(cs.downCounts, n.id)
				oldOIFs := cs.oifs
				cs.clearOIF(n.id)
				if cs.oifs != oldOIFs {
					if r.dp != nil {
						r.dp.SetRoute(ch, cs.oifs)
					}
					r.notifyRoute(ch, cs.oifs)
				}
				total := cs.total()
				if r.batcher != nil && (!cs.everAdv || cs.advertised != total) {
					cs.advertised = total
					cs.everAdv = true
					r.batcher.markLocked(sh, ch, total)
				}
			}
			// Application-defined counts (NACK state and the like) withdraw
			// with the neighbor exactly like subscriber counts do.
			for id, per := range cs.appCounts {
				if _, ok := per[n.id]; ok {
					had = true
					delete(per, n.id)
					if len(per) == 0 {
						delete(cs.appCounts, id)
					}
				}
			}
			if cs.empty() {
				delete(sh.channels, ch)
			}
			if had {
				withdrawn++
			}
		}
		sh.mu.Unlock()
	}
	// Port and relay-registry teardown under r.mu, the same critical
	// section registerHello installs into: after this block releases the
	// lock, any later registration attempt from this neighbor observes its
	// gone/superseded flag and is refused, so the sweep's effect is final.
	r.mu.Lock()
	if r.dp != nil {
		r.dp.ClearPort(n.id)
	}
	for ch, e := range r.relays {
		if e.owner == n {
			delete(r.relays, ch)
		}
	}
	r.mu.Unlock()
	if withdrawn > 0 {
		r.withdrawn.Add(withdrawn)
		r.failures.Add(1)
	}
}

// processCount is the measured per-event path. Only the owning shard is
// locked, so events from different neighbors proceed in parallel whenever
// they touch different shards.
func (r *Router) processCount(n *neighbor, m *wire.Count) {
	if m.Seq != 0 {
		return // solicited answers route to query clients, not into routers
	}
	if m.CountID >= wire.AppCountBase && m.CountID <= wire.AppCountLast {
		r.processAppCount(n, m)
		return
	}
	if m.CountID != wire.CountSubscribers {
		return // keepalives and net-layer counts only prove liveness
	}
	// Simulated RPF neighbor calculation (~400 cycles), as in the paper's
	// measurement ("Our implementation simulated an RPF neighbor
	// calculation of approximately 400 cycles").
	r.rpfSink.Store(simulateRPF(uint32(m.Channel.S), uint32(m.Channel.E)))

	sh := r.table.shardFor(m.Channel)
	sh.mu.Lock()
	// A superseded connection's counts predate the session's current epoch
	// and must not land; checked under the shard lock so the check orders
	// against the rebind's withdrawal sweep.
	if n.superseded.Load() {
		sh.mu.Unlock()
		return
	}
	// Hashed lookup of the channel data structure; allocate when needed.
	cs := sh.channels[m.Channel]
	if cs == nil {
		if m.Value == 0 {
			sh.mu.Unlock()
			sh.unsubscribes.Add(1)
			sh.events.Add(1)
			return
		}
		cs = &chanState{downCounts: make(map[int]uint32), route: -1}
		sh.channels[m.Channel] = cs
	}
	// Determine the physical interface of the request and compute the FIB
	// manipulation.
	oldOIFs := cs.oifs
	if m.Value == 0 {
		delete(cs.downCounts, n.id)
		cs.clearOIF(n.id)
	} else {
		cs.downCounts[n.id] = m.Value
		cs.setOIF(n.id)
	}
	// Program the data plane under the shard lock, so concurrent events on
	// the same channel install their route updates in event order.
	if cs.oifs != oldOIFs {
		if r.dp != nil {
			r.dp.SetRoute(m.Channel, cs.oifs)
		}
		r.notifyRoute(m.Channel, cs.oifs)
	}
	total := cs.total()
	// Record the unicast route used (the upstream neighbor).
	cs.route = -1
	// TCP-mode semantics (Section 3.2): a router "sends a count update when
	// its count changes" — any value change is advertised, not just the
	// zero↔non-zero transitions tree maintenance strictly needs. The
	// batcher coalesces runs of changes, so this costs at most one Count
	// per channel per flush.
	if r.batcher != nil && (!cs.everAdv || cs.advertised != total) {
		cs.advertised = total
		cs.everAdv = true
		r.batcher.markLocked(sh, m.Channel, total)
	}
	if cs.empty() {
		delete(sh.channels, m.Channel)
	}
	sh.mu.Unlock()

	if m.Value == 0 {
		sh.unsubscribes.Add(1)
	} else {
		sh.subscribes.Add(1)
	}
	sh.events.Add(1)
}

// processAppCount applies an application-defined count push (Section 6's
// proactive counting): the neighbor's latest value for (channel, id) is
// recorded per interface, zero removes it, and AppCount/answerQuery
// aggregate across interfaces on demand. App counts share the channel's
// shard entry and the neighbor-withdrawal sweep, but never touch the FIB
// or the upstream subscriber aggregate.
func (r *Router) processAppCount(n *neighbor, m *wire.Count) {
	sh := r.table.shardFor(m.Channel)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if n.superseded.Load() {
		return
	}
	cs := sh.channels[m.Channel]
	if cs == nil {
		if m.Value == 0 {
			return
		}
		cs = &chanState{downCounts: make(map[int]uint32), route: -1}
		sh.channels[m.Channel] = cs
	}
	if m.Value == 0 {
		if per := cs.appCounts[m.CountID]; per != nil {
			delete(per, n.id)
			if len(per) == 0 {
				delete(cs.appCounts, m.CountID)
			}
		}
		if cs.empty() {
			delete(sh.channels, m.Channel)
		}
	} else {
		if cs.appCounts == nil {
			cs.appCounts = make(map[wire.CountID]map[int]uint32)
		}
		per := cs.appCounts[m.CountID]
		if per == nil {
			per = make(map[int]uint32)
			cs.appCounts[m.CountID] = per
		}
		per[n.id] = m.Value
	}
	r.appEvents.Add(1)
}

// simulateRPF burns approximately 400 cycles of integer work, standing in
// for the RPF next-hop computation of a software forwarding table.
func simulateRPF(s, e uint32) uint32 {
	h := s ^ e
	for i := 0; i < 100; i++ {
		h = h*2654435761 + e
		h ^= h >> 13
	}
	return h
}

// ErrClosed is returned by operations on a closed router or session.
var ErrClosed = errors.New("realnet: router closed")
