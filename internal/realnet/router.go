// Package realnet is the user-level ECMP router of Section 5.3, over real
// TCP sockets: "We implemented TCP-based ECMP as a user-level process on a
// workstation and measured the costs of channel maintenance."
//
// The processing path matches the paper's description per event: a hashed
// lookup of the channel data structure, allocating a new channel structure
// when needed, determining the physical interface (connection) of the
// request, computing the necessary FIB manipulation, looking up and sending
// a message to the next-hop upstream neighbor, and recording the unicast
// route used — plus a simulated RPF neighbor calculation of approximately
// 400 cycles, exactly as the paper's measurement did.
//
// Beyond the paper's single-threaded measurement, the router is built in
// production shape: the channel table is sharded by hash(S,E) so concurrent
// neighbor connections process events in parallel, and upstream
// advertisements are coalesced by a batcher into packed Count segments
// (Section 5.3's 92-Counts-per-segment arithmetic) instead of one write per
// event. Experiment E4 drives this router with churning neighbors over
// loopback and reports events/second and ns/event; the shard-scaling
// benchmarks extend E4 with a 1/4/16-shard curve.
package realnet

import (
	"bufio"
	"errors"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/addr"
	"repro/internal/wire"
)

// Options tunes the router's control plane. The zero value of every field
// selects a sensible default, so Options{} behaves like the original
// single-lock, write-per-event router did — just faster.
type Options struct {
	// Upstream is the address of the upstream neighbor to forward
	// aggregate Counts to; empty at the tree root.
	Upstream string
	// Shards is the number of channel-table shards (rounded up to a power
	// of two). Default 8.
	Shards int
	// FlushInterval is the age trigger of the upstream batcher: the
	// longest a changed aggregate waits before it is flushed. Default
	// 500µs.
	FlushInterval time.Duration
	// FlushBatch is the size trigger: when this many channels are dirty an
	// immediate flush is kicked. Default wire.CountsPerSegment (92), one
	// full segment.
	FlushBatch int
	// WriteDeadline bounds each segment write to a neighbor socket.
	// Default 5s.
	WriteDeadline time.Duration
	// QueueLen is the per-neighbor bounded output queue length, in
	// segments. When a queue is full, segments are dropped and accounted
	// rather than stalling event processing. Default 256.
	QueueLen int
}

func (o Options) withDefaults() Options {
	if o.Shards <= 0 {
		o.Shards = 8
	}
	if o.FlushInterval <= 0 {
		o.FlushInterval = 500 * time.Microsecond
	}
	if o.FlushBatch <= 0 {
		o.FlushBatch = wire.CountsPerSegment
	}
	if o.WriteDeadline <= 0 {
		o.WriteDeadline = 5 * time.Second
	}
	if o.QueueLen <= 0 {
		o.QueueLen = 256
	}
	return o
}

// Stats is a snapshot of the router's counters.
type Stats struct {
	Events       uint64 // membership events processed
	Subscribes   uint64
	Unsubscribes uint64
	Channels     int // channels currently holding state
	Shards       int

	UpstreamCounts   uint64 // coalesced Count messages flushed upstream
	UpstreamSegments uint64 // segments accepted into the upstream queue
	UpstreamDrops    uint64 // segments dropped (queue full or dead upstream)
	Flushes          uint64 // batcher flush passes that emitted data
}

// Router is a TCP-mode ECMP router. Neighbors connect over TCP and stream
// batched Count messages; the router maintains per-channel per-neighbor
// subscriber counts, a FIB image, and forwards coalesced aggregate Counts
// to its upstream neighbor (if any).
type Router struct {
	ln       net.Listener
	opts     Options
	table    *table
	upstream *neighbor // nil at the tree root
	batcher  *batcher  // nil at the tree root

	mu     sync.Mutex
	conns  []*neighbor
	closed bool

	// rpfSink absorbs the simulated RPF calculation so the compiler cannot
	// elide it.
	rpfSink atomic.Uint32

	readWG sync.WaitGroup // accept loop + per-neighbor read loops
}

// chanState is the per-channel management record (Section 5.2's budget).
type chanState struct {
	downCounts map[int]uint32 // per-neighbor (interface) subscriber counts
	oifs       uint32         // FIB outgoing-interface image
	advertised uint32         // last aggregate handed to the batcher
	everAdv    bool
	route      int // recorded unicast route (upstream neighbor id)
}

// NewRouter listens on listenAddr ("127.0.0.1:0" for an ephemeral port).
// If upstreamAddr is non-empty the router connects to its upstream neighbor
// there and forwards aggregate Counts to it. Default Options otherwise.
func NewRouter(listenAddr, upstreamAddr string) (*Router, error) {
	return NewRouterOpts(listenAddr, Options{Upstream: upstreamAddr})
}

// NewRouterOpts is NewRouter with explicit tuning.
func NewRouterOpts(listenAddr string, opts Options) (*Router, error) {
	opts = opts.withDefaults()
	ln, err := net.Listen("tcp", listenAddr)
	if err != nil {
		return nil, err
	}
	r := &Router{ln: ln, opts: opts, table: newTable(opts.Shards)}
	if opts.Upstream != "" {
		c, err := net.Dial("tcp", opts.Upstream)
		if err != nil {
			ln.Close()
			return nil, err
		}
		r.upstream = newNeighbor(-1, c, opts.QueueLen, opts.WriteDeadline)
		r.batcher = newBatcher(r.table, r.upstream, opts.FlushInterval, opts.FlushBatch)
	}
	r.readWG.Add(1)
	go r.acceptLoop()
	return r, nil
}

// Addr returns the router's listen address.
func (r *Router) Addr() string { return r.ln.Addr().String() }

// Events returns the number of membership events processed.
func (r *Router) Events() uint64 { return r.table.totalEvents() }

// EventsByType returns (subscribes, unsubscribes) processed.
func (r *Router) EventsByType() (uint64, uint64) { return r.table.eventsByType() }

// Channels returns the number of channels with state.
func (r *Router) Channels() int { return r.table.numChannels() }

// OIFMask returns the FIB outgoing-interface image for ch — the bitmask a
// line card would hold for the channel. Interfaces ≥ fib.MaxInterfaces have
// no bit (they are still counted in SubscriberCount).
func (r *Router) OIFMask(ch addr.Channel) uint32 {
	sh := r.table.shardFor(ch)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if cs := sh.channels[ch]; cs != nil {
		return cs.oifs
	}
	return 0
}

// NumNeighbors returns how many downstream neighbor connections have been
// accepted. Neighbor ids are assigned in acceptance order, so tests can
// dial sequentially and wait on this to pin a connection to an id.
func (r *Router) NumNeighbors() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.conns)
}

// SubscriberCount returns the current aggregate subscriber count for ch
// across all downstream neighbors (0 when the channel has no state).
func (r *Router) SubscriberCount(ch addr.Channel) uint32 {
	sh := r.table.shardFor(ch)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	cs := sh.channels[ch]
	if cs == nil {
		return 0
	}
	var total uint32
	for _, v := range cs.downCounts {
		total += v
	}
	return total
}

// Stats returns a snapshot of the router's counters.
func (r *Router) Stats() Stats {
	subs, unsubs := r.table.eventsByType()
	s := Stats{
		Events:       subs + unsubs,
		Subscribes:   subs,
		Unsubscribes: unsubs,
		Channels:     r.table.numChannels(),
		Shards:       len(r.table.shards),
	}
	if r.batcher != nil {
		s.UpstreamCounts = r.batcher.counts.Load()
		s.Flushes = r.batcher.flushes.Load()
	}
	if r.upstream != nil {
		s.UpstreamSegments = r.upstream.segs.Load()
		s.UpstreamDrops = r.upstream.drops.Load()
	}
	return s
}

// Close shuts the router down: stop accepting, sever downstream neighbors,
// wait for their read loops, drain the batcher so every advertised change
// reaches the upstream queue, then flush and close the writers.
func (r *Router) Close() error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil
	}
	r.closed = true
	conns := append([]*neighbor(nil), r.conns...)
	r.mu.Unlock()

	err := r.ln.Close()
	for _, n := range conns {
		n.conn.Close()
	}
	// All read loops done: no further marks can reach the batcher.
	r.readWG.Wait()
	if r.batcher != nil {
		r.batcher.stop() // final flush of every dirty channel
	}
	for _, n := range conns {
		n.closeOutput()
		<-n.done
	}
	if r.upstream != nil {
		r.upstream.closeOutput()
		<-r.upstream.done
		r.upstream.conn.Close()
	}
	return err
}

func (r *Router) acceptLoop() {
	defer r.readWG.Done()
	for {
		c, err := r.ln.Accept()
		if err != nil {
			return
		}
		r.mu.Lock()
		if r.closed {
			r.mu.Unlock()
			c.Close()
			return
		}
		n := newNeighbor(len(r.conns), c, r.opts.QueueLen, r.opts.WriteDeadline)
		r.conns = append(r.conns, n)
		r.mu.Unlock()
		r.readWG.Add(1)
		go r.readLoop(n)
	}
}

// readLoop parses the self-delimiting ECMP message stream from one
// neighbor and processes each message.
func (r *Router) readLoop(n *neighbor) {
	defer r.readWG.Done()
	br := readerPool.Get().(*bufio.Reader)
	br.Reset(n.conn)
	defer func() {
		br.Reset(nil)
		readerPool.Put(br)
	}()
	var hdr [1]byte
	buf := make([]byte, wire.CountAuthSize)
	for {
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			return
		}
		var need int
		switch hdr[0] {
		case wire.TypeCount:
			need = wire.CountSize
		case wire.TypeCountAuth:
			need = wire.CountAuthSize
		case wire.TypeCountQuery:
			need = wire.CountQuerySize
		case wire.TypeCountResponse:
			need = wire.CountResponseSize
		default:
			return // protocol error: drop the connection
		}
		buf[0] = hdr[0]
		if _, err := io.ReadFull(br, buf[1:need]); err != nil {
			return
		}
		var m wire.Count
		if hdr[0] == wire.TypeCount || hdr[0] == wire.TypeCountAuth {
			if _, err := m.DecodeFromBytes(buf[:need]); err != nil {
				return
			}
			r.processCount(n, &m)
		}
		// Queries/responses are accepted for protocol completeness; the
		// Section 5.3 experiment exercises the membership path.
	}
}

// processCount is the measured per-event path. Only the owning shard is
// locked, so events from different neighbors proceed in parallel whenever
// they touch different shards.
func (r *Router) processCount(n *neighbor, m *wire.Count) {
	if m.CountID != wire.CountSubscribers || m.Seq != 0 {
		return
	}
	// Simulated RPF neighbor calculation (~400 cycles), as in the paper's
	// measurement ("Our implementation simulated an RPF neighbor
	// calculation of approximately 400 cycles").
	r.rpfSink.Store(simulateRPF(uint32(m.Channel.S), uint32(m.Channel.E)))

	sh := r.table.shardFor(m.Channel)
	sh.mu.Lock()
	// Hashed lookup of the channel data structure; allocate when needed.
	cs := sh.channels[m.Channel]
	if cs == nil {
		if m.Value == 0 {
			sh.mu.Unlock()
			sh.unsubscribes.Add(1)
			sh.events.Add(1)
			return
		}
		cs = &chanState{downCounts: make(map[int]uint32), route: -1}
		sh.channels[m.Channel] = cs
	}
	// Determine the physical interface of the request and compute the FIB
	// manipulation.
	if m.Value == 0 {
		delete(cs.downCounts, n.id)
		cs.clearOIF(n.id)
	} else {
		cs.downCounts[n.id] = m.Value
		cs.setOIF(n.id)
	}
	var total uint32
	for _, v := range cs.downCounts {
		total += v
	}
	// Record the unicast route used (the upstream neighbor).
	cs.route = -1
	if r.upstream != nil {
		cs.route = r.upstream.id
	}
	// TCP-mode semantics (Section 3.2): a router "sends a count update when
	// its count changes" — any value change is advertised, not just the
	// zero↔non-zero transitions tree maintenance strictly needs. The
	// batcher coalesces runs of changes, so this costs at most one Count
	// per channel per flush.
	if r.batcher != nil && (!cs.everAdv || cs.advertised != total) {
		cs.advertised = total
		cs.everAdv = true
		r.batcher.markLocked(sh, m.Channel, total)
	}
	if total == 0 {
		delete(sh.channels, m.Channel)
	}
	sh.mu.Unlock()

	if m.Value == 0 {
		sh.unsubscribes.Add(1)
	} else {
		sh.subscribes.Add(1)
	}
	sh.events.Add(1)
}

// simulateRPF burns approximately 400 cycles of integer work, standing in
// for the RPF next-hop computation of a software forwarding table.
func simulateRPF(s, e uint32) uint32 {
	h := s ^ e
	for i := 0; i < 100; i++ {
		h = h*2654435761 + e
		h ^= h >> 13
	}
	return h
}

// ErrClosed is returned by operations on a closed router.
var ErrClosed = errors.New("realnet: router closed")
