// Package realnet is the user-level ECMP router of Section 5.3, over real
// TCP sockets: "We implemented TCP-based ECMP as a user-level process on a
// workstation and measured the costs of channel maintenance."
//
// The processing path matches the paper's description per event: a hashed
// lookup of the channel data structure, allocating a new channel structure
// when needed, determining the physical interface (connection) of the
// request, computing the necessary FIB manipulation, looking up and sending
// a message to the next-hop upstream neighbor, and recording the unicast
// route used — plus a simulated RPF neighbor calculation of approximately
// 400 cycles, exactly as the paper's measurement did.
//
// Experiment E4 drives this router with churning neighbors over loopback
// and reports events/second and ns/event (converted to cycles at a stated
// clock for comparison with the paper's 400 MHz Pentium-II numbers).
package realnet

import (
	"bufio"
	"errors"
	"io"
	"net"
	"sync"
	"sync/atomic"

	"repro/internal/addr"
	"repro/internal/fib"
	"repro/internal/wire"
)

// Router is a TCP-mode ECMP router. Neighbors connect over TCP and stream
// batched Count messages; the router maintains per-channel per-neighbor
// subscriber counts, a FIB image, and forwards aggregate Counts to its
// upstream neighbor (if any).
type Router struct {
	ln       net.Listener
	upstream *neighbor // nil at the tree root

	mu       sync.Mutex
	channels map[addr.Channel]*chanState
	conns    []*neighbor
	closed   bool

	// events counts processed membership events (subscribe+unsubscribe).
	events atomic.Uint64
	// subscribes and unsubscribes split the total for the per-type cost
	// profile of Section 5.3.
	subscribes   atomic.Uint64
	unsubscribes atomic.Uint64

	// rpfSink absorbs the simulated RPF calculation so the compiler cannot
	// elide it.
	rpfSink atomic.Uint32

	wg sync.WaitGroup
}

// chanState is the per-channel management record (Section 5.2's budget).
type chanState struct {
	downCounts map[int]uint32 // per-neighbor (interface) subscriber counts
	oifs       uint32         // FIB outgoing-interface image
	advertised uint32
	everAdv    bool
	route      int // recorded unicast route (upstream neighbor id)
}

type neighbor struct {
	id   int
	conn net.Conn
	wmu  sync.Mutex
	w    *bufio.Writer
}

// NewRouter listens on listenAddr ("127.0.0.1:0" for an ephemeral port).
// If upstreamAddr is non-empty the router connects to its upstream neighbor
// there and forwards aggregate Counts to it.
func NewRouter(listenAddr, upstreamAddr string) (*Router, error) {
	ln, err := net.Listen("tcp", listenAddr)
	if err != nil {
		return nil, err
	}
	r := &Router{ln: ln, channels: make(map[addr.Channel]*chanState)}
	if upstreamAddr != "" {
		c, err := net.Dial("tcp", upstreamAddr)
		if err != nil {
			ln.Close()
			return nil, err
		}
		r.upstream = &neighbor{id: -1, conn: c, w: bufio.NewWriterSize(c, wire.MaxSegment)}
	}
	r.wg.Add(1)
	go r.acceptLoop()
	return r, nil
}

// Addr returns the router's listen address.
func (r *Router) Addr() string { return r.ln.Addr().String() }

// Events returns the number of membership events processed.
func (r *Router) Events() uint64 { return r.events.Load() }

// EventsByType returns (subscribes, unsubscribes) processed.
func (r *Router) EventsByType() (uint64, uint64) {
	return r.subscribes.Load(), r.unsubscribes.Load()
}

// Channels returns the number of channels with state.
func (r *Router) Channels() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.channels)
}

// Close shuts the router down and waits for its goroutines.
func (r *Router) Close() error {
	r.mu.Lock()
	r.closed = true
	conns := append([]*neighbor(nil), r.conns...)
	r.mu.Unlock()
	err := r.ln.Close()
	for _, n := range conns {
		n.conn.Close()
	}
	if r.upstream != nil {
		r.upstream.conn.Close()
	}
	r.wg.Wait()
	return err
}

func (r *Router) acceptLoop() {
	defer r.wg.Done()
	for {
		c, err := r.ln.Accept()
		if err != nil {
			return
		}
		r.mu.Lock()
		if r.closed {
			r.mu.Unlock()
			c.Close()
			return
		}
		n := &neighbor{id: len(r.conns), conn: c, w: bufio.NewWriterSize(c, wire.MaxSegment)}
		r.conns = append(r.conns, n)
		r.mu.Unlock()
		r.wg.Add(1)
		go r.readLoop(n)
	}
}

// readLoop parses the self-delimiting ECMP message stream from one
// neighbor and processes each message.
func (r *Router) readLoop(n *neighbor) {
	defer r.wg.Done()
	br := bufio.NewReaderSize(n.conn, 64<<10)
	var hdr [1]byte
	buf := make([]byte, wire.CountAuthSize)
	for {
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			return
		}
		var need int
		switch hdr[0] {
		case wire.TypeCount:
			need = wire.CountSize
		case wire.TypeCountAuth:
			need = wire.CountAuthSize
		case wire.TypeCountQuery:
			need = wire.CountQuerySize
		case wire.TypeCountResponse:
			need = wire.CountResponseSize
		default:
			return // protocol error: drop the connection
		}
		buf[0] = hdr[0]
		if _, err := io.ReadFull(br, buf[1:need]); err != nil {
			return
		}
		var m wire.Count
		if hdr[0] == wire.TypeCount || hdr[0] == wire.TypeCountAuth {
			if _, err := m.DecodeFromBytes(buf[:need]); err != nil {
				return
			}
			r.processCount(n, &m)
		}
		// Queries/responses are accepted for protocol completeness; the
		// Section 5.3 experiment exercises the membership path.
	}
}

// processCount is the measured per-event path.
func (r *Router) processCount(n *neighbor, m *wire.Count) {
	if m.CountID != wire.CountSubscribers || m.Seq != 0 {
		return
	}
	// Simulated RPF neighbor calculation (~400 cycles), as in the paper's
	// measurement ("Our implementation simulated an RPF neighbor
	// calculation of approximately 400 cycles").
	r.rpfSink.Store(simulateRPF(uint32(m.Channel.S), uint32(m.Channel.E)))

	r.mu.Lock()
	// Hashed lookup of the channel data structure; allocate when needed.
	cs := r.channels[m.Channel]
	if cs == nil {
		if m.Value == 0 {
			r.mu.Unlock()
			r.unsubscribes.Add(1)
			r.events.Add(1)
			return
		}
		cs = &chanState{downCounts: make(map[int]uint32), route: -1}
		r.channels[m.Channel] = cs
	}
	// Determine the physical interface of the request and compute the FIB
	// manipulation.
	if m.Value == 0 {
		delete(cs.downCounts, n.id)
		if n.id < fib.MaxInterfaces {
			cs.oifs &^= 1 << uint(n.id%fib.MaxInterfaces)
		}
	} else {
		cs.downCounts[n.id] = m.Value
		cs.oifs |= 1 << uint(n.id%fib.MaxInterfaces)
	}
	var total uint32
	for _, v := range cs.downCounts {
		total += v
	}
	// Record the unicast route used (the upstream neighbor).
	cs.route = -1
	if r.upstream != nil {
		cs.route = r.upstream.id
	}
	sendUp := false
	var upVal uint32
	if r.upstream != nil {
		wasOn := cs.everAdv && cs.advertised > 0
		isOn := total > 0
		if wasOn != isOn || !cs.everAdv {
			cs.advertised = total
			cs.everAdv = true
			sendUp = true
			upVal = total
		}
	}
	if total == 0 {
		delete(r.channels, m.Channel)
	}
	r.mu.Unlock()

	if m.Value == 0 {
		r.unsubscribes.Add(1)
	} else {
		r.subscribes.Add(1)
	}
	r.events.Add(1)

	if sendUp {
		out := wire.Count{Channel: m.Channel, CountID: wire.CountSubscribers, Value: upVal}
		r.upstream.send(&out)
	}
}

// simulateRPF burns approximately 400 cycles of integer work, standing in
// for the RPF next-hop computation of a software forwarding table.
func simulateRPF(s, e uint32) uint32 {
	h := s ^ e
	for i := 0; i < 100; i++ {
		h = h*2654435761 + e
		h ^= h >> 13
	}
	return h
}

func (n *neighbor) send(m *wire.Count) {
	n.wmu.Lock()
	defer n.wmu.Unlock()
	var buf [wire.CountAuthSize]byte
	b := m.AppendTo(buf[:0])
	n.w.Write(b)
	n.w.Flush()
}

// ErrClosed is returned by operations on a closed router.
var ErrClosed = errors.New("realnet: router closed")
