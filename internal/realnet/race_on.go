//go:build race

package realnet

// raceEnabled reports whether the race detector is compiled in.
const raceEnabled = true
