package realnet

import "repro/internal/obs"

// routerObs is the router's observability surface: the histograms fed from
// the hot paths plus the registry that exposes them (and the pre-existing
// atomic counters) to the admin endpoint. Recording is lock-free and
// allocation-free, so instrumentation does not perturb the §5.3 per-event
// cost it exists to measure.
type routerObs struct {
	reg *obs.Registry

	// propLatency is the ingest→upstream-flush propagation latency: the
	// time from a shard's first dirty mark of a flush window until the
	// window's counts were handed to the upstream queue. One observation
	// per swept shard per flush pass.
	propLatency *obs.Histogram
	// flushSize is the number of coalesced Counts emitted per flush pass.
	flushSize *obs.Histogram
	// flushInterval is the spacing between flush passes that emitted data.
	flushInterval *obs.Histogram
	// queueDepth samples the upstream output queue depth at every enqueue.
	queueDepth *obs.Histogram
}

func newRouterObs() *routerObs {
	reg := obs.NewRegistry()
	return &routerObs{
		reg:           reg,
		propLatency:   reg.NewHistogram("router_prop_latency_ns", "ingest to upstream-flush propagation latency (ns)"),
		flushSize:     reg.NewHistogram("router_flush_size_counts", "coalesced Counts per batcher flush pass"),
		flushInterval: reg.NewHistogram("router_flush_interval_ns", "spacing between emitting flush passes (ns)"),
		queueDepth:    reg.NewHistogram("router_upstream_queue_depth", "upstream output queue depth at enqueue"),
	}
}

// Obs returns the router's metric registry, ready to serve on an obs.Admin
// endpoint or snapshot directly (loadgen's server-side percentiles).
func (r *Router) Obs() *obs.Registry { return r.obs.reg }

// registerMetrics bridges the router's existing atomic counters into the
// registry as scrape-time funcs; nothing new is counted, the same words
// that feed Stats() feed /metrics.
func (r *Router) registerMetrics() {
	reg := r.obs.reg
	reg.NewCounterFunc("router_events_total", "membership events processed", r.table.totalEvents)
	reg.NewCounterFunc("router_subscribes_total", "subscribe events processed", func() uint64 {
		s, _ := r.table.eventsByType()
		return s
	})
	reg.NewCounterFunc("router_unsubscribes_total", "unsubscribe events processed", func() uint64 {
		_, u := r.table.eventsByType()
		return u
	})
	reg.NewCounterFunc("router_neighbor_failures_total", "downstream connections whose counts were withdrawn", r.failures.Load)
	reg.NewCounterFunc("router_withdrawn_counts_total", "per-channel contributions withdrawn on failure", r.withdrawn.Load)
	reg.NewCounterFunc("router_session_resyncs_total", "session reconnects accepted (Hello with a newer epoch)", r.resyncs.Load)
	reg.NewCounterFunc("router_app_counts_total", "application-defined Counts applied", r.appEvents.Load)
	reg.NewCounterFunc("router_queries_total", "CountQuery messages received", r.queries.Load)
	reg.NewCounterFunc("router_query_replies_total", "solicited Counts enqueued back downstream", r.queryReplies.Load)
	reg.NewGaugeFunc("router_relays", "session relays registered for channels", func() float64 {
		r.mu.Lock()
		defer r.mu.Unlock()
		return float64(len(r.relays))
	})
	reg.NewGaugeFunc("router_channels", "channels currently holding state", func() float64 {
		return float64(r.table.numChannels())
	})
	reg.NewGaugeFunc("router_shards", "channel-table shards", func() float64 {
		return float64(len(r.table.shards))
	})
	reg.NewGaugeFunc("router_neighbors", "downstream neighbor connections accepted", func() float64 {
		return float64(r.NumNeighbors())
	})
	reg.NewCounterFunc("router_neighbor_drops_total", "segments dropped toward downstream neighbors", func() uint64 {
		r.mu.Lock()
		defer r.mu.Unlock()
		var n uint64
		for _, c := range r.conns {
			n += c.drops.Load()
		}
		return n
	})
	if r.batcher != nil {
		reg.NewCounterFunc("router_upstream_counts_total", "coalesced Count messages flushed upstream", r.batcher.counts.Load)
		reg.NewCounterFunc("router_flushes_total", "batcher flush passes that emitted data", r.batcher.flushes.Load)
	}
	if r.upSess != nil {
		reg.NewCounterFunc("router_upstream_segments_total", "segments accepted into the upstream queue", r.upSess.segsTotal)
		reg.NewCounterFunc("router_upstream_drops_total", "segments dropped (queue full or dead upstream)", r.upSess.dropsTotal)
		reg.NewCounterFunc("router_upstream_reconnects_total", "times the upstream link was re-established", r.upSess.reconnects.Load)
	}
	if r.dp != nil {
		r.dp.RegisterMetrics(reg)
	}
}
