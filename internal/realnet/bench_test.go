package realnet

import (
	"testing"
	"time"

	"repro/internal/addr"
)

// BenchmarkRouterEventProcessing is the package-local form of experiment
// E4: one router, 8 churning TCP neighbors over loopback, measured per
// membership event.
func BenchmarkRouterEventProcessing(b *testing.B) {
	r, err := NewRouter("127.0.0.1:0", "")
	if err != nil {
		b.Fatal(err)
	}
	defer r.Close()
	const neighbors = 8
	clients := make([]*Client, neighbors)
	for i := range clients {
		c, err := Dial(r.Addr())
		if err != nil {
			b.Fatal(err)
		}
		defer c.Close()
		clients[i] = c
	}
	src := addr.MustParse("171.64.1.1")
	b.ResetTimer()
	perClient := b.N/neighbors + 1
	for i, c := range clients {
		for j := 0; j < perClient; j++ {
			ch := addr.Channel{S: src, E: addr.ExpressAddr(uint32(i*perClient + j))}
			c.Subscribe(ch)
			c.Unsubscribe(ch)
		}
		c.Flush()
	}
	want := uint64(neighbors * perClient * 2)
	deadline := time.Now().Add(120 * time.Second)
	for r.Events() < want {
		if time.Now().After(deadline) {
			b.Fatalf("processed %d/%d", r.Events(), want)
		}
		time.Sleep(100 * time.Microsecond)
	}
	b.StopTimer()
	b.ReportMetric(float64(r.Events()), "events-total")
}

// BenchmarkTwoLevelAggregation measures the edge→core forwarding path:
// only zero/non-zero transitions propagate upstream. The two clients'
// streams interleave arbitrarily at the edge, so the core sees between 2
// events per channel (both members overlap) and 4 (they never overlap) —
// always bounded by transitions, never by the edge's raw event count.
func BenchmarkTwoLevelAggregation(b *testing.B) {
	core, err := NewRouter("127.0.0.1:0", "")
	if err != nil {
		b.Fatal(err)
	}
	defer core.Close()
	edge, err := NewRouter("127.0.0.1:0", core.Addr())
	if err != nil {
		b.Fatal(err)
	}
	defer edge.Close()
	c1, err := Dial(edge.Addr())
	if err != nil {
		b.Fatal(err)
	}
	defer c1.Close()
	c2, err := Dial(edge.Addr())
	if err != nil {
		b.Fatal(err)
	}
	defer c2.Close()

	src := addr.MustParse("171.64.1.1")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ch := addr.Channel{S: src, E: addr.ExpressAddr(uint32(i))}
		// Two subscribers at the edge, two unsubscribes: 4 edge events,
		// exactly 2 core events (join, leave).
		c1.Subscribe(ch)
		c2.Subscribe(ch)
		c1.Unsubscribe(ch)
		c2.Unsubscribe(ch)
	}
	c1.Flush()
	c2.Flush()
	wantEdge := uint64(4 * b.N)
	deadline := time.Now().Add(120 * time.Second)
	for edge.Events() < wantEdge {
		if time.Now().After(deadline) {
			b.Fatalf("edge processed %d/%d", edge.Events(), wantEdge)
		}
		time.Sleep(100 * time.Microsecond)
	}
	b.StopTimer()
	coreEv := core.Events()
	b.ReportMetric(float64(coreEv)/float64(b.N), "core-events/channel")
}
