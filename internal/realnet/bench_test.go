package realnet

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/addr"
)

// BenchmarkRouterEventProcessing is the package-local form of experiment
// E4: one router, 8 churning TCP neighbors over loopback, measured per
// membership event.
func BenchmarkRouterEventProcessing(b *testing.B) {
	r, err := NewRouter("127.0.0.1:0", "")
	if err != nil {
		b.Fatal(err)
	}
	defer r.Close()
	const neighbors = 8
	clients := make([]*Client, neighbors)
	for i := range clients {
		c, err := Dial(r.Addr())
		if err != nil {
			b.Fatal(err)
		}
		defer c.Close()
		clients[i] = c
	}
	src := addr.MustParse("171.64.1.1")
	b.ResetTimer()
	perClient := b.N/neighbors + 1
	for i, c := range clients {
		for j := 0; j < perClient; j++ {
			ch := addr.Channel{S: src, E: addr.ExpressAddr(uint32(i*perClient + j))}
			c.Subscribe(ch)
			c.Unsubscribe(ch)
		}
		c.Flush()
	}
	want := uint64(neighbors * perClient * 2)
	deadline := time.Now().Add(120 * time.Second)
	for r.Events() < want {
		if time.Now().After(deadline) {
			b.Fatalf("processed %d/%d", r.Events(), want)
		}
		time.Sleep(100 * time.Microsecond)
	}
	b.StopTimer()
	b.ReportMetric(float64(r.Events()), "events-total")
}

// benchmarkShardChurn measures sustained events/sec with conns concurrent
// neighbor connections churning disjoint channel spaces against one router
// with the given shard count — the E4 scaling curve. Each connection's
// read loop is an independent goroutine inside the router, so shard count
// directly sets how much of the event path can run in parallel.
func benchmarkShardChurn(b *testing.B, shards, conns int) {
	r, err := NewRouterOpts("127.0.0.1:0", Options{Shards: shards})
	if err != nil {
		b.Fatal(err)
	}
	defer r.Close()
	clients := make([]*Client, conns)
	for i := range clients {
		c, err := Dial(r.Addr())
		if err != nil {
			b.Fatal(err)
		}
		defer c.Close()
		clients[i] = c
	}
	src := addr.MustParse("171.64.1.1")
	per := b.N/(conns*2) + 1
	b.ResetTimer()
	start := time.Now()
	var wg sync.WaitGroup
	for i, c := range clients {
		wg.Add(1)
		go func(i int, c *Client) {
			defer wg.Done()
			for j := 0; j < per; j++ {
				ch := addr.Channel{S: src, E: addr.ExpressAddr(uint32(i*per + j))}
				c.Subscribe(ch)
				c.Unsubscribe(ch)
				if j%512 == 511 {
					c.Flush()
				}
			}
			c.Flush()
		}(i, c)
	}
	wg.Wait()
	want := uint64(conns*per) * 2
	deadline := time.Now().Add(120 * time.Second)
	for r.Events() < want {
		if time.Now().After(deadline) {
			b.Fatalf("processed %d/%d", r.Events(), want)
		}
		time.Sleep(100 * time.Microsecond)
	}
	elapsed := time.Since(start)
	b.StopTimer()
	b.ReportMetric(float64(r.Events())/elapsed.Seconds(), "events/s")
	b.ReportMetric(float64(shards), "shards")
}

// BenchmarkShardScaling is the E4 scaling curve: identical multi-connection
// churn at 1, 4, and 16 shards. On multicore hardware the single-shard
// point serializes every connection on one mutex while 16 shards let the
// per-connection read loops proceed in parallel; compare the events/s
// metric across sub-benchmarks (GOMAXPROCS must exceed 1 for the curve to
// separate).
func BenchmarkShardScaling(b *testing.B) {
	for _, shards := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			benchmarkShardChurn(b, shards, 8)
		})
	}
}

// BenchmarkTwoLevelAggregation measures the edge→core forwarding path with
// the coalescing batcher: every aggregate value change is advertised
// upstream (Section 3.2), but changes landing within one flush window
// collapse into a single Count carrying the final value, so the core sees
// at most the number of distinct flushed values per channel — never the
// edge's raw event count.
func BenchmarkTwoLevelAggregation(b *testing.B) {
	core, err := NewRouter("127.0.0.1:0", "")
	if err != nil {
		b.Fatal(err)
	}
	defer core.Close()
	edge, err := NewRouter("127.0.0.1:0", core.Addr())
	if err != nil {
		b.Fatal(err)
	}
	defer edge.Close()
	c1, err := Dial(edge.Addr())
	if err != nil {
		b.Fatal(err)
	}
	defer c1.Close()
	c2, err := Dial(edge.Addr())
	if err != nil {
		b.Fatal(err)
	}
	defer c2.Close()

	src := addr.MustParse("171.64.1.1")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ch := addr.Channel{S: src, E: addr.ExpressAddr(uint32(i))}
		// Two subscribers at the edge, two unsubscribes: 4 edge events,
		// ≤4 coalesced core events per channel.
		c1.Subscribe(ch)
		c2.Subscribe(ch)
		c1.Unsubscribe(ch)
		c2.Unsubscribe(ch)
	}
	c1.Flush()
	c2.Flush()
	wantEdge := uint64(4 * b.N)
	deadline := time.Now().Add(120 * time.Second)
	for edge.Events() < wantEdge {
		if time.Now().After(deadline) {
			b.Fatalf("edge processed %d/%d", edge.Events(), wantEdge)
		}
		time.Sleep(100 * time.Microsecond)
	}
	b.StopTimer()
	st := edge.Stats()
	b.ReportMetric(float64(core.Events())/float64(b.N), "core-events/channel")
	b.ReportMetric(float64(st.UpstreamCounts)/float64(b.N), "upstream-counts/channel")
	b.ReportMetric(float64(st.UpstreamSegments), "upstream-segments")
}
