package realnet

import (
	"errors"
	"net"
	"os"
	"sync"
	"time"
)

// Fault-injection errors, distinguishable from real socket errors in tests.
var (
	// ErrInjectedReset is returned by a FaultConn after Reset: the
	// connection behaves as if the peer sent RST.
	ErrInjectedReset = errors.New("realnet: injected connection reset")
	// ErrInjectedPartial is returned by a FaultConn write truncated by
	// LimitWrites: some bytes were written, then the socket "failed".
	ErrInjectedPartial = errors.New("realnet: injected partial write")
)

// FaultConn wraps a net.Conn and injects failures deterministically, so the
// partition/reconnect/flap tests can exercise every failure mode of the
// session layer without depending on kernel timing:
//
//   - Reset() makes all subsequent I/O fail immediately (and closes the
//     underlying socket, so the peer observes the failure too) — a crashed
//     or RST-ing neighbor.
//   - Stall() blocks writes without failing them — a partition or a
//     wedged peer; the data simply never leaves. Writes unblock when
//     Unstall or Reset is called, or when the recorded write deadline
//     passes (returning os.ErrDeadlineExceeded like a real socket).
//   - FailAfterWrites(n) lets n more writes succeed, then resets — a
//     connection dying mid-stream at a byte position of the test's choosing.
//   - LimitWrites(n) truncates every write to at most n bytes and fails it —
//     a partial write, the hardest case for framed-stream senders.
//
// All knobs may be flipped concurrently with I/O.
type FaultConn struct {
	inner net.Conn

	mu              sync.Mutex
	reset           bool
	resetCh         chan struct{} // closed by Reset; releases stalled writers
	stallCh         chan struct{} // non-nil while stalled; closed by Unstall
	failAfterWrites int           // -1 disabled; 0 means the next write resets
	writeLimit      int           // >0: truncate-and-fail writes beyond this
	writeDeadline   time.Time
	closeOnce       sync.Once
	closeErr        error
}

// NewFaultConn wraps inner. The zero configuration injects nothing: the
// wrapper is transparent until a fault knob is flipped.
func NewFaultConn(inner net.Conn) *FaultConn {
	return &FaultConn{inner: inner, resetCh: make(chan struct{}), failAfterWrites: -1}
}

// Reset makes the connection fail: all subsequent reads and writes return
// ErrInjectedReset, stalled writers are released, and the underlying socket
// is closed so the peer sees the failure.
func (c *FaultConn) Reset() {
	c.mu.Lock()
	if !c.reset {
		c.reset = true
		close(c.resetCh)
	}
	c.mu.Unlock()
	c.inner.Close()
}

// Stall blocks subsequent writes until Unstall, Reset, or the write
// deadline. Reads are unaffected (a stalled peer's silence is already
// indistinguishable from an idle one).
func (c *FaultConn) Stall() {
	c.mu.Lock()
	if c.stallCh == nil {
		c.stallCh = make(chan struct{})
	}
	c.mu.Unlock()
}

// Unstall releases writers blocked by Stall.
func (c *FaultConn) Unstall() {
	c.mu.Lock()
	if c.stallCh != nil {
		close(c.stallCh)
		c.stallCh = nil
	}
	c.mu.Unlock()
}

// FailAfterWrites lets n more writes succeed and then resets the
// connection. n = 0 resets on the very next write.
func (c *FaultConn) FailAfterWrites(n int) {
	c.mu.Lock()
	c.failAfterWrites = n
	c.mu.Unlock()
}

// LimitWrites truncates every write longer than n bytes: the first n bytes
// reach the socket, then the write fails with ErrInjectedPartial. n <= 0
// disables the limit.
func (c *FaultConn) LimitWrites(n int) {
	c.mu.Lock()
	c.writeLimit = n
	c.mu.Unlock()
}

func (c *FaultConn) Read(b []byte) (int, error) {
	c.mu.Lock()
	dead := c.reset
	c.mu.Unlock()
	if dead {
		return 0, ErrInjectedReset
	}
	return c.inner.Read(b)
}

func (c *FaultConn) Write(b []byte) (int, error) {
	c.mu.Lock()
	if c.reset {
		c.mu.Unlock()
		return 0, ErrInjectedReset
	}
	stall := c.stallCh
	deadline := c.writeDeadline
	c.mu.Unlock()

	if stall != nil {
		var dlC <-chan time.Time
		if !deadline.IsZero() {
			t := time.NewTimer(time.Until(deadline))
			defer t.Stop()
			dlC = t.C
		}
		select {
		case <-stall:
		case <-c.resetCh:
			return 0, ErrInjectedReset
		case <-dlC:
			return 0, os.ErrDeadlineExceeded
		}
	}

	c.mu.Lock()
	if c.reset {
		c.mu.Unlock()
		return 0, ErrInjectedReset
	}
	if c.failAfterWrites >= 0 {
		if c.failAfterWrites == 0 {
			c.mu.Unlock()
			c.Reset()
			return 0, ErrInjectedReset
		}
		c.failAfterWrites--
	}
	limit := c.writeLimit
	c.mu.Unlock()

	if limit > 0 && len(b) > limit {
		n, err := c.inner.Write(b[:limit])
		if err != nil {
			return n, err
		}
		return n, ErrInjectedPartial
	}
	return c.inner.Write(b)
}

// Close closes the underlying connection once; repeated closes are no-ops
// so a clean Close after an injected failure still reports success.
func (c *FaultConn) Close() error {
	c.closeOnce.Do(func() { c.closeErr = c.inner.Close() })
	c.mu.Lock()
	reset := c.reset
	c.mu.Unlock()
	if reset {
		return nil // the injected failure already "closed" the socket
	}
	return c.closeErr
}

func (c *FaultConn) LocalAddr() net.Addr  { return c.inner.LocalAddr() }
func (c *FaultConn) RemoteAddr() net.Addr { return c.inner.RemoteAddr() }

func (c *FaultConn) SetDeadline(t time.Time) error {
	c.SetWriteDeadline(t)
	return c.inner.SetDeadline(t)
}

func (c *FaultConn) SetReadDeadline(t time.Time) error { return c.inner.SetReadDeadline(t) }

// SetWriteDeadline records the deadline locally (so stalled writes honour
// it) and passes it to the underlying socket.
func (c *FaultConn) SetWriteDeadline(t time.Time) error {
	c.mu.Lock()
	c.writeDeadline = t
	c.mu.Unlock()
	return c.inner.SetWriteDeadline(t)
}

// FaultDialer adapts net.Dial into a session Dial hook that wraps every new
// connection in a FaultConn and hands it to cb before any bytes flow, so a
// test (or loadgen's -flap mode) can hold the handle and inject faults into
// whichever connection is currently live.
func FaultDialer(cb func(*FaultConn)) func(addr string) (net.Conn, error) {
	return func(addr string) (net.Conn, error) {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			return nil, err
		}
		fc := NewFaultConn(conn)
		if cb != nil {
			cb(fc)
		}
		return fc, nil
	}
}
