package realnet

import (
	"testing"
	"time"

	"repro/internal/addr"
	"repro/internal/wire"
)

// TestSessionQueryRoundTrip exercises the sender-side counting primitive:
// a receiver session subscribes and pushes an application count, a sender
// session queries the router for both and gets the aggregates back on the
// answering Counts.
func TestSessionQueryRoundTrip(t *testing.T) {
	r, err := NewRouter("127.0.0.1:0", "")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	ch := addr.Channel{S: addr.MustParse("10.1.0.1"), E: addr.ExpressAddr(7)}
	nack := wire.AppCountBase + 12

	recv, err := DialSession(r.Addr(), SessionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer recv.Close()
	recv.Subscribe(ch)
	recv.SendCount(ch, 3) // downstream-router style aggregate
	recv.Flush()
	waitFor(t, 2*time.Second, func() bool { return r.SubscriberCount(ch) == 3 })

	// Proactive app-count push on the same session (a NACK slot).
	if err := recv.SendAppCount(ch, nack, 1); err != nil {
		t.Fatal(err)
	}
	recv.Flush()
	waitFor(t, 2*time.Second, func() bool { return r.AppCount(ch, nack) == 1 })

	sender, err := DialSession(r.Addr(), SessionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer sender.Close()
	if v, err := sender.Query(ch, wire.CountSubscribers, time.Second); err != nil || v != 3 {
		t.Errorf("Query(subscribers) = (%d, %v), want (3, nil)", v, err)
	}
	if v, err := sender.Query(ch, nack, time.Second); err != nil || v != 1 {
		t.Errorf("Query(nack) = (%d, %v), want (1, nil)", v, err)
	}
	// An id nobody answers times out instead of erroring the session.
	if _, err := sender.Query(ch, wire.CountLinks, 50*time.Millisecond); err != ErrQueryTimeout {
		t.Errorf("Query(unanswerable) err = %v, want ErrQueryTimeout", err)
	}

	// Clearing the app count removes it from the aggregate.
	recv.SendAppCount(ch, nack, 0)
	recv.Flush()
	waitFor(t, 2*time.Second, func() bool { return r.AppCount(ch, nack) == 0 })
}

// TestAppCountWithdrawnWithNeighbor verifies that application counts are
// swept by the same Section 3.2 withdrawal as subscriber counts when the
// contributing connection dies.
func TestAppCountWithdrawnWithNeighbor(t *testing.T) {
	r, err := NewRouter("127.0.0.1:0", "")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	ch := addr.Channel{S: addr.MustParse("10.1.0.2"), E: addr.ExpressAddr(9)}
	nack := wire.AppCountBase + 1

	c, err := Dial(r.Addr())
	if err != nil {
		t.Fatal(err)
	}
	c.Subscribe(ch)
	c.SendCount(ch, 1)
	if err := c.SendAppCount(ch, nack, 2); err != nil {
		t.Fatal(err)
	}
	c.Flush()
	waitFor(t, 2*time.Second, func() bool { return r.AppCount(ch, nack) == 2 })

	c.Close()
	waitFor(t, 2*time.Second, func() bool { return r.AppCount(ch, nack) == 0 })
	if got := r.SubscriberCount(ch); got != 0 {
		t.Errorf("subscriber count after withdrawal = %d, want 0", got)
	}
}

// TestRelayRegistry verifies Hello v3 relay advertisement: registration on
// bind, discovery via CountRelayAddr4/CountRelayPort queries, and removal
// when the advertising session dies.
func TestRelayRegistry(t *testing.T) {
	r, err := NewRouter("127.0.0.1:0", "")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	ch := addr.Channel{S: addr.MustParse("10.1.0.3"), E: addr.ExpressAddr(11)}

	relay, err := DialSession(r.Addr(), SessionOptions{RelayPort: 4950, RelayChannel: ch})
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, 2*time.Second, func() bool { _, ok := r.RelayFor(ch); return ok })
	ap, _ := r.RelayFor(ch)
	if ap.Port() != 4950 || !ap.Addr().IsLoopback() {
		t.Errorf("RelayFor = %v, want loopback:4950", ap)
	}

	// Wire-level discovery from another session.
	part, err := DialSession(r.Addr(), SessionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer part.Close()
	if v, err := part.Query(ch, wire.CountRelayPort, time.Second); err != nil || v != 4950 {
		t.Errorf("Query(relay port) = (%d, %v), want (4950, nil)", v, err)
	}
	if v, err := part.Query(ch, wire.CountRelayAddr4, time.Second); err != nil || v != 0x7f000001 {
		t.Errorf("Query(relay addr) = (%#x, %v), want (0x7f000001, nil)", v, err)
	}

	relay.Close()
	waitFor(t, 2*time.Second, func() bool { _, ok := r.RelayFor(ch); return !ok })
	if v, err := part.Query(ch, wire.CountRelayPort, time.Second); err != nil || v != 0 {
		t.Errorf("Query(relay port after withdrawal) = (%d, %v), want (0, nil)", v, err)
	}
}

// TestRelayRegistryFlapResync pins the relay-registry lifecycle across
// session flaps (ISSUE 9 satellite): every flap's rebind withdraws the dead
// connection's registration in the same exactly-once sweep as its counts
// and re-registers from the resync Hello, so discovery keeps answering
// through flaps; and when the session dies for good the entry goes with it
// — the regression being that a superseded connection's late registration,
// racing the rebind, left a stale entry owned by an already-retired
// neighbor (its retireOnce spent), answering CountRelayAddr4 forever.
func TestRelayRegistryFlapResync(t *testing.T) {
	r, err := NewRouter("127.0.0.1:0", "")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	ch := addr.Channel{S: addr.MustParse("10.1.0.4"), E: addr.ExpressAddr(13)}

	var tap faultTap
	relay, err := DialSession(r.Addr(), SessionOptions{
		RelayPort:         4960,
		RelayChannel:      ch,
		KeepaliveInterval: 20 * time.Millisecond,
		ReconnectBase:     5 * time.Millisecond,
		Dial:              FaultDialer(tap.hook),
	})
	if err != nil {
		t.Fatal(err)
	}
	relay.Subscribe(ch)
	relay.Flush()
	waitFor(t, 2*time.Second, func() bool { _, ok := r.RelayFor(ch); return ok })

	part, err := DialSession(r.Addr(), SessionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer part.Close()

	const flaps = 3
	for i := 0; i < flaps; i++ {
		tap.current().Reset()
		want := uint64(i + 1)
		waitFor(t, 5*time.Second, func() bool {
			return relay.Reconnects() >= want && r.Stats().SessionResyncs >= want
		})
		// Re-registered by the resync Hello, and discoverable on the wire.
		waitFor(t, 2*time.Second, func() bool { _, ok := r.RelayFor(ch); return ok })
		if v, err := part.Query(ch, wire.CountRelayAddr4, time.Second); err != nil || v != 0x7f000001 {
			t.Fatalf("flap %d: Query(relay addr) = (%#x, %v), want (0x7f000001, nil)", i+1, v, err)
		}
		if v, err := part.Query(ch, wire.CountRelayPort, time.Second); err != nil || v != 4960 {
			t.Fatalf("flap %d: Query(relay port) = (%d, %v), want (4960, nil)", i+1, v, err)
		}
	}

	// The session dies for good: the current connection's sweep must remove
	// the registration — a stale owner from any of the flapped connections
	// must not keep answering discovery.
	relay.Close()
	waitFor(t, 2*time.Second, func() bool { _, ok := r.RelayFor(ch); return !ok })
	if v, err := part.Query(ch, wire.CountRelayAddr4, time.Second); err != nil || v != 0 {
		t.Errorf("Query(relay addr after death) = (%#x, %v), want (0, nil)", v, err)
	}
	if v, err := part.Query(ch, wire.CountRelayPort, time.Second); err != nil || v != 0 {
		t.Errorf("Query(relay port after death) = (%d, %v), want (0, nil)", v, err)
	}
	if got := r.SubscriberCount(ch); got != 0 {
		t.Errorf("subscriber count after death = %d, want 0", got)
	}
}
