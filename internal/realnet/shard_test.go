package realnet

import (
	"testing"
	"time"

	"repro/internal/addr"
	"repro/internal/fib"
)

// TestChanStateOIFGuardSymmetry is the unit regression for the OIF-bit
// aliasing bug: the subscribe path applied id%32 unguarded while the
// unsubscribe path was guarded by id<32, so neighbor id 33 subscribing lit
// bit 1 (33%32) and nothing ever cleared it. Both sides must now apply the
// identical range guard.
func TestChanStateOIFGuardSymmetry(t *testing.T) {
	cs := &chanState{downCounts: make(map[int]uint32)}

	// In-range ids behave like a plain bitmask.
	cs.setOIF(0)
	cs.setOIF(31)
	if cs.oifs != 1|1<<31 {
		t.Fatalf("oifs = %#x, want bits 0 and 31", cs.oifs)
	}
	cs.clearOIF(31)
	if cs.oifs != 1 {
		t.Fatalf("oifs = %#x after clear(31), want bit 0 only", cs.oifs)
	}

	// Out-of-range ids must be no-ops on BOTH sides: no aliasing on set, no
	// aliasing on clear.
	for _, id := range []int{fib.MaxInterfaces, 33, 64, 65, -1} {
		before := cs.oifs
		cs.setOIF(id)
		if cs.oifs != before {
			t.Errorf("setOIF(%d) changed mask %#x -> %#x (aliased)", id, before, cs.oifs)
		}
		cs.clearOIF(id)
		if cs.oifs != before {
			t.Errorf("clearOIF(%d) changed mask %#x -> %#x (aliased)", id, before, cs.oifs)
		}
	}
	// Specifically the historical failure: id 33 must not touch bit 1.
	cs.setOIF(1)
	cs.setOIF(33)
	cs.clearOIF(33)
	if cs.oifs&(1<<1) == 0 {
		t.Error("clearOIF(33) cleared bit 1 (33%32 aliasing)")
	}
	if cs.oifs != 1|1<<1 {
		t.Errorf("oifs = %#x, want bits 0 and 1 only", cs.oifs)
	}
}

// dialSequential connects n clients one at a time, waiting for the router
// to accept each before dialing the next, so client i is neighbor id i.
func dialSequential(t *testing.T, r *Router, n int) []*Client {
	t.Helper()
	clients := make([]*Client, n)
	for i := range clients {
		c, err := Dial(r.Addr())
		if err != nil {
			t.Fatalf("dial %d: %v", i, err)
		}
		t.Cleanup(func() { c.Close() })
		clients[i] = c
		deadline := time.Now().Add(5 * time.Second)
		for r.NumNeighbors() < i+1 {
			if time.Now().After(deadline) {
				t.Fatalf("router accepted %d/%d connections", r.NumNeighbors(), i+1)
			}
			time.Sleep(100 * time.Microsecond)
		}
	}
	return clients
}

func waitEvents(t *testing.T, r *Router, want uint64) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for r.Events() < want {
		if time.Now().After(deadline) {
			t.Fatalf("router processed %d/%d events", r.Events(), want)
		}
		time.Sleep(100 * time.Microsecond)
	}
}

// TestOIFMaskBeyond32Neighbors drives the aliasing scenario over real
// sockets: a router with 33 downstream neighbors. Neighbor 32's membership
// is counted but can never appear in (or corrupt) the 32-bit FIB image.
func TestOIFMaskBeyond32Neighbors(t *testing.T) {
	r, err := NewRouter("127.0.0.1:0", "")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	clients := dialSequential(t, r, 33)
	ch := addr.Channel{S: addr.MustParse("10.0.0.1"), E: addr.ExpressAddr(7)}

	// Neighbor 32 subscribes: under the old code this aliased onto bit 0.
	clients[32].Subscribe(ch)
	clients[32].Flush()
	waitEvents(t, r, 1)
	if got := r.OIFMask(ch); got != 0 {
		t.Fatalf("OIFMask = %#x after id-32 subscribe, want 0 (no alias)", got)
	}
	if got := r.SubscriberCount(ch); got != 1 {
		t.Fatalf("SubscriberCount = %d, want 1 (still counted)", got)
	}

	// An in-range neighbor joins: exactly its bit appears.
	clients[1].Subscribe(ch)
	clients[1].Flush()
	waitEvents(t, r, 2)
	if got := r.OIFMask(ch); got != 1<<1 {
		t.Fatalf("OIFMask = %#x, want bit 1 only", got)
	}

	// Neighbor 32 leaves: bit 1 must survive (the old clear guard happened
	// to be correct, but the set-side alias it paired with is gone).
	clients[32].Unsubscribe(ch)
	clients[32].Flush()
	waitEvents(t, r, 3)
	if got := r.OIFMask(ch); got != 1<<1 {
		t.Fatalf("OIFMask = %#x after id-32 unsubscribe, want bit 1 intact", got)
	}
	if got := r.SubscriberCount(ch); got != 1 {
		t.Fatalf("SubscriberCount = %d, want 1", got)
	}

	clients[1].Unsubscribe(ch)
	clients[1].Flush()
	waitEvents(t, r, 4)
	if got := r.OIFMask(ch); got != 0 {
		t.Fatalf("OIFMask = %#x after all leave, want 0", got)
	}
}
