package realnet

import (
	"testing"
	"time"

	"repro/internal/addr"
)

func waitFor(t *testing.T, deadline time.Duration, cond func() bool) {
	t.Helper()
	stop := time.Now().Add(deadline)
	for time.Now().Before(stop) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("condition not reached before deadline")
}

func TestSubscribeUnsubscribeOverTCP(t *testing.T) {
	r, err := NewRouter("127.0.0.1:0", "")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	c, err := Dial(r.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	ch := addr.Channel{S: addr.MustParse("10.0.0.1"), E: addr.ExpressAddr(1)}
	if err := c.Subscribe(ch); err != nil {
		t.Fatal(err)
	}
	c.Flush()
	waitFor(t, 2*time.Second, func() bool { return r.Events() == 1 })
	if r.Channels() != 1 {
		t.Errorf("channels = %d, want 1", r.Channels())
	}

	if err := c.Unsubscribe(ch); err != nil {
		t.Fatal(err)
	}
	c.Flush()
	waitFor(t, 2*time.Second, func() bool { return r.Events() == 2 })
	if r.Channels() != 0 {
		t.Errorf("channels = %d, want 0 after unsubscribe", r.Channels())
	}
	subs, unsubs := r.EventsByType()
	if subs != 1 || unsubs != 1 {
		t.Errorf("events by type = %d/%d, want 1/1", subs, unsubs)
	}
}

func TestAggregateForwardsUpstream(t *testing.T) {
	core, err := NewRouter("127.0.0.1:0", "")
	if err != nil {
		t.Fatal(err)
	}
	defer core.Close()
	edge, err := NewRouter("127.0.0.1:0", core.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer edge.Close()

	// Two neighbors subscribe to the same channel at the edge: exactly one
	// aggregate subscription must reach the core (tree-mode propagation).
	c1, err := Dial(edge.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	c2, err := Dial(edge.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()

	ch := addr.Channel{S: addr.MustParse("10.0.0.1"), E: addr.ExpressAddr(7)}
	c1.Subscribe(ch)
	c1.Flush()
	c2.Subscribe(ch)
	c2.Flush()

	waitFor(t, 2*time.Second, func() bool { return edge.Events() == 2 })
	waitFor(t, 2*time.Second, func() bool { return core.Events() == 1 })
	if core.Channels() != 1 {
		t.Errorf("core channels = %d, want 1", core.Channels())
	}

	// Both unsubscribe: the edge withdraws once upstream.
	c1.Unsubscribe(ch)
	c1.Flush()
	c2.Unsubscribe(ch)
	c2.Flush()
	waitFor(t, 2*time.Second, func() bool { return edge.Events() == 4 })
	waitFor(t, 2*time.Second, func() bool { return core.Events() == 2 && core.Channels() == 0 })
}

func TestManyChannelsManyEvents(t *testing.T) {
	r, err := NewRouter("127.0.0.1:0", "")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	const neighbors = 8
	const perNeighbor = 2000
	clients := make([]*Client, neighbors)
	for i := range clients {
		c, err := Dial(r.Addr())
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		clients[i] = c
	}
	src := addr.MustParse("10.0.0.1")
	for i, c := range clients {
		for j := 0; j < perNeighbor; j++ {
			ch := addr.Channel{S: src, E: addr.ExpressAddr(uint32(i*perNeighbor + j))}
			c.Subscribe(ch)
			c.Unsubscribe(ch)
		}
		c.Flush()
	}
	want := uint64(neighbors * perNeighbor * 2)
	waitFor(t, 10*time.Second, func() bool { return r.Events() == want })
	if r.Channels() != 0 {
		t.Errorf("channels = %d, want 0 after balanced churn", r.Channels())
	}
}
