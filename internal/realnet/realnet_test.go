package realnet

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/addr"
)

func waitFor(t *testing.T, deadline time.Duration, cond func() bool) {
	t.Helper()
	stop := time.Now().Add(deadline)
	for time.Now().Before(stop) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("condition not reached before deadline")
}

func TestSubscribeUnsubscribeOverTCP(t *testing.T) {
	r, err := NewRouter("127.0.0.1:0", "")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	c, err := Dial(r.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	ch := addr.Channel{S: addr.MustParse("10.0.0.1"), E: addr.ExpressAddr(1)}
	if err := c.Subscribe(ch); err != nil {
		t.Fatal(err)
	}
	c.Flush()
	waitFor(t, 2*time.Second, func() bool { return r.Events() == 1 })
	if r.Channels() != 1 {
		t.Errorf("channels = %d, want 1", r.Channels())
	}
	if got := r.SubscriberCount(ch); got != 1 {
		t.Errorf("subscriber count = %d, want 1", got)
	}

	if err := c.Unsubscribe(ch); err != nil {
		t.Fatal(err)
	}
	c.Flush()
	waitFor(t, 2*time.Second, func() bool { return r.Events() == 2 })
	if r.Channels() != 0 {
		t.Errorf("channels = %d, want 0 after unsubscribe", r.Channels())
	}
	subs, unsubs := r.EventsByType()
	if subs != 1 || unsubs != 1 {
		t.Errorf("events by type = %d/%d, want 1/1", subs, unsubs)
	}
}

func TestAggregateForwardsUpstream(t *testing.T) {
	core, err := NewRouter("127.0.0.1:0", "")
	if err != nil {
		t.Fatal(err)
	}
	defer core.Close()
	edge, err := NewRouter("127.0.0.1:0", core.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer edge.Close()

	// Two neighbors subscribe to the same channel at the edge: the core
	// must converge on the aggregate subtree count (the batcher may
	// coalesce the two changes into a single Count carrying 2).
	c1, err := Dial(edge.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	c2, err := Dial(edge.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()

	ch := addr.Channel{S: addr.MustParse("10.0.0.1"), E: addr.ExpressAddr(7)}
	c1.Subscribe(ch)
	c1.Flush()
	c2.Subscribe(ch)
	c2.Flush()

	waitFor(t, 2*time.Second, func() bool { return edge.Events() == 2 })
	waitFor(t, 2*time.Second, func() bool { return core.SubscriberCount(ch) == 2 })
	if core.Channels() != 1 {
		t.Errorf("core channels = %d, want 1", core.Channels())
	}

	// Both unsubscribe: the core converges back to zero and deletes the
	// channel.
	c1.Unsubscribe(ch)
	c1.Flush()
	c2.Unsubscribe(ch)
	c2.Flush()
	waitFor(t, 2*time.Second, func() bool { return edge.Events() == 4 })
	waitFor(t, 2*time.Second, func() bool {
		return core.SubscriberCount(ch) == 0 && core.Channels() == 0
	})
}

// TestIntermediateCountChangesPropagate is the regression test for the
// transition-only advertisement bug: the old router only forwarded
// zero↔non-zero transitions upstream, so a downstream subtree going from 3
// to 7 subscribers never updated the ancestor's total, contradicting
// Section 3.2's "sends a count update when its count changes".
func TestIntermediateCountChangesPropagate(t *testing.T) {
	core, err := NewRouter("127.0.0.1:0", "")
	if err != nil {
		t.Fatal(err)
	}
	defer core.Close()
	edge, err := NewRouter("127.0.0.1:0", core.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer edge.Close()

	c1, err := Dial(edge.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	c2, err := Dial(edge.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()

	ch := addr.Channel{S: addr.MustParse("10.0.0.1"), E: addr.ExpressAddr(42)}

	c1.SendCount(ch, 3)
	c1.Flush()
	waitFor(t, 2*time.Second, func() bool { return core.SubscriberCount(ch) == 3 })

	// 3 → 7 with no zero transition: exactly the change the old router
	// swallowed.
	c1.SendCount(ch, 7)
	c1.Flush()
	waitFor(t, 2*time.Second, func() bool { return core.SubscriberCount(ch) == 7 })

	// A second subtree adds 5: ancestor total 12.
	c2.SendCount(ch, 5)
	c2.Flush()
	waitFor(t, 2*time.Second, func() bool { return core.SubscriberCount(ch) == 12 })

	// First subtree withdraws entirely: 12 → 5, still non-zero.
	c1.SendCount(ch, 0)
	c1.Flush()
	waitFor(t, 2*time.Second, func() bool { return core.SubscriberCount(ch) == 5 })

	c2.SendCount(ch, 0)
	c2.Flush()
	waitFor(t, 2*time.Second, func() bool {
		return core.SubscriberCount(ch) == 0 && core.Channels() == 0 && edge.Channels() == 0
	})
}

func TestManyChannelsManyEvents(t *testing.T) {
	r, err := NewRouter("127.0.0.1:0", "")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	const neighbors = 8
	const perNeighbor = 2000
	clients := make([]*Client, neighbors)
	for i := range clients {
		c, err := Dial(r.Addr())
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		clients[i] = c
	}
	src := addr.MustParse("10.0.0.1")
	for i, c := range clients {
		for j := 0; j < perNeighbor; j++ {
			ch := addr.Channel{S: src, E: addr.ExpressAddr(uint32(i*perNeighbor + j))}
			c.Subscribe(ch)
			c.Unsubscribe(ch)
		}
		c.Flush()
	}
	want := uint64(neighbors * perNeighbor * 2)
	waitFor(t, 10*time.Second, func() bool { return r.Events() == want })
	if r.Channels() != 0 {
		t.Errorf("channels = %d, want 0 after balanced churn", r.Channels())
	}
}

// TestShardCountsConsistent churns disjoint channel spaces from concurrent
// connections and checks the sharded table converges to the exact final
// state, for several shard counts (including 1, the degenerate case).
func TestShardCountsConsistent(t *testing.T) {
	for _, shards := range []int{1, 4, 16} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			r, err := NewRouterOpts("127.0.0.1:0", Options{Shards: shards})
			if err != nil {
				t.Fatal(err)
			}
			defer r.Close()

			const conns = 6
			const perConn = 500
			src := addr.MustParse("10.0.0.1")
			var wg sync.WaitGroup
			for i := 0; i < conns; i++ {
				c, err := Dial(r.Addr())
				if err != nil {
					t.Fatal(err)
				}
				defer c.Close()
				wg.Add(1)
				go func(i int, c *Client) {
					defer wg.Done()
					for j := 0; j < perConn; j++ {
						ch := addr.Channel{S: src, E: addr.ExpressAddr(uint32(i*perConn + j))}
						c.Subscribe(ch)
						c.Unsubscribe(ch)
						c.Subscribe(ch) // leave every channel subscribed once
					}
					c.Flush()
				}(i, c)
			}
			wg.Wait()
			want := uint64(conns * perConn * 3)
			waitFor(t, 10*time.Second, func() bool { return r.Events() == want })
			if got := r.Channels(); got != conns*perConn {
				t.Errorf("channels = %d, want %d", got, conns*perConn)
			}
			ch := addr.Channel{S: src, E: addr.ExpressAddr(0)}
			if got := r.SubscriberCount(ch); got != 1 {
				t.Errorf("subscriber count = %d, want 1", got)
			}
		})
	}
}

// TestBatcherCoalesces verifies the upstream batcher aggregates a run of
// changes on one channel into far fewer Counts than events, while the
// final value still converges.
func TestBatcherCoalesces(t *testing.T) {
	core, err := NewRouter("127.0.0.1:0", "")
	if err != nil {
		t.Fatal(err)
	}
	defer core.Close()
	edge, err := NewRouterOpts("127.0.0.1:0", Options{
		Upstream:      core.Addr(),
		FlushInterval: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer edge.Close()

	c, err := Dial(edge.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	ch := addr.Channel{S: addr.MustParse("10.0.0.1"), E: addr.ExpressAddr(9)}
	const steps = 1000
	for v := uint32(1); v <= steps; v++ {
		c.SendCount(ch, v)
	}
	c.Flush()
	waitFor(t, 5*time.Second, func() bool { return edge.Events() == steps })
	waitFor(t, 5*time.Second, func() bool { return core.SubscriberCount(ch) == steps })
	st := edge.Stats()
	if st.UpstreamCounts >= steps {
		t.Errorf("upstream counts = %d for %d events; batcher did not coalesce", st.UpstreamCounts, steps)
	}
	if st.UpstreamDrops != 0 {
		t.Errorf("upstream drops = %d, want 0", st.UpstreamDrops)
	}
}
