package realnet

import (
	"io"
	"sync"
	"testing"
	"time"

	"repro/internal/addr"
	"repro/internal/wire"
)

// TestProcessCountZeroAlloc pins the acceptance contract for the
// instrumented count-ingest path: with the channel and neighbor entries
// warm, processing a Count — including the batcher dirty-mark and its
// propagation-latency timestamping — allocates nothing.
func TestProcessCountZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("alloc accounting is not meaningful under -race")
	}
	core, err := NewRouter("127.0.0.1:0", "")
	if err != nil {
		t.Fatal(err)
	}
	defer core.Close()
	edge, err := NewRouter("127.0.0.1:0", core.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer edge.Close()

	c, err := Dial(edge.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	src := addr.MustParse("171.64.1.1")
	ch := addr.Channel{S: src, E: addr.ExpressAddr(42)}
	if err := c.Subscribe(ch); err != nil {
		t.Fatal(err)
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	waitEvents(t, edge, 1)

	edge.mu.Lock()
	n := edge.conns[0]
	edge.mu.Unlock()

	// Warm the dirty map and both count values, then measure. The client's
	// read loop is parked on its socket, so driving processCount directly
	// from here matches the read loop's calling context exactly.
	m := wire.Count{Channel: ch, CountID: wire.CountSubscribers, Value: 2}
	edge.processCount(n, &m)
	v := uint32(1)
	if a := testing.AllocsPerRun(5000, func() {
		m := wire.Count{Channel: ch, CountID: wire.CountSubscribers, Value: v}
		edge.processCount(n, &m)
		v ^= 3 // alternate 1 and 2 so every event changes the aggregate
	}); a != 0 {
		t.Errorf("instrumented count-ingest allocates %.2f/op, want 0", a)
	}
}

// TestStatsScrapeVsChurnRace is the Router.Stats() consistency check:
// neighbors churn subscriptions while concurrent scrapers pull Stats(),
// registry snapshots, and the text exposition. Run under -race in CI.
func TestStatsScrapeVsChurnRace(t *testing.T) {
	core, err := NewRouter("127.0.0.1:0", "")
	if err != nil {
		t.Fatal(err)
	}
	edge, err := NewRouterOpts("127.0.0.1:0", Options{
		Upstream:      core.Addr(),
		FlushInterval: 200 * time.Microsecond,
	})
	if err != nil {
		core.Close()
		t.Fatal(err)
	}

	const conns, perConn = 4, 400
	stop := make(chan struct{})
	var scrapers sync.WaitGroup
	for i := 0; i < 2; i++ {
		scrapers.Add(1)
		go func() {
			defer scrapers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				st := edge.Stats()
				if st.Subscribes+st.Unsubscribes != st.Events {
					t.Errorf("inconsistent stats: subs %d + unsubs %d != events %d",
						st.Subscribes, st.Unsubscribes, st.Events)
					return
				}
				edge.Obs().Snapshot()
				edge.Obs().WriteText(io.Discard)
				core.Obs().Snapshot()
			}
		}()
	}

	var churn sync.WaitGroup
	src := addr.MustParse("171.64.1.1")
	for i := 0; i < conns; i++ {
		churn.Add(1)
		go func(i int) {
			defer churn.Done()
			c, err := Dial(edge.Addr())
			if err != nil {
				t.Error(err)
				return
			}
			defer c.Close()
			for j := 0; j < perConn; j++ {
				ch := addr.Channel{S: src, E: addr.ExpressAddr(uint32(i)<<16 | uint32(j%64))}
				c.Subscribe(ch)
				c.Unsubscribe(ch)
				if j%32 == 31 {
					c.Flush()
				}
			}
			c.Flush()
		}(i)
	}
	churn.Wait()
	waitEvents(t, edge, conns*perConn*2)
	close(stop)
	scrapers.Wait()

	// Scrape one more time after the dust settles: the batcher must have
	// recorded real flushes and latencies from the churn.
	snap := edge.Obs().Snapshot()
	if snap.Histograms["router_flush_size_counts"].Count == 0 {
		t.Error("no batcher flushes recorded during churn")
	}
	if snap.Histograms["router_prop_latency_ns"].Count == 0 {
		t.Error("no propagation latencies recorded during churn")
	}
	if snap.Counters["router_events_total"] != conns*perConn*2 {
		t.Errorf("events_total = %d, want %d", snap.Counters["router_events_total"], conns*perConn*2)
	}
	if err := edge.Close(); err != nil {
		t.Fatal(err)
	}
	if err := core.Close(); err != nil {
		t.Fatal(err)
	}
}
