package realnet

import (
	"sync"
	"testing"
	"time"

	"repro/internal/addr"
)

// churnUntil streams subscribe/unsubscribe churn on c until stop is closed
// or the connection dies (expected once the router shuts down).
func churnUntil(c *Client, id int, stop <-chan struct{}) {
	src := addr.MustParse("10.0.0.1")
	for j := 0; ; j++ {
		select {
		case <-stop:
			return
		default:
		}
		ch := addr.Channel{S: src, E: addr.ExpressAddr(uint32(id)<<16 | uint32(j%4096))}
		if c.Subscribe(ch) != nil {
			return
		}
		if c.Unsubscribe(ch) != nil {
			return
		}
		if j%256 == 255 {
			if c.Flush() != nil {
				return
			}
		}
	}
}

// TestConcurrentChurnUnderRace drives one router from 6 concurrent
// neighbor connections — the shard locks, per-shard counters, batcher
// marking, and upstream writer all under load at once. Run with -race in
// CI; the final state must still be exact.
func TestConcurrentChurnUnderRace(t *testing.T) {
	core, err := NewRouter("127.0.0.1:0", "")
	if err != nil {
		t.Fatal(err)
	}
	defer core.Close()
	r, err := NewRouterOpts("127.0.0.1:0", Options{Upstream: core.Addr(), Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	const conns = 6
	const perConn = 1000
	src := addr.MustParse("10.0.0.1")
	var wg sync.WaitGroup
	for i := 0; i < conns; i++ {
		c, err := Dial(r.Addr())
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		wg.Add(1)
		go func(i int, c *Client) {
			defer wg.Done()
			for j := 0; j < perConn; j++ {
				ch := addr.Channel{S: src, E: addr.ExpressAddr(uint32(i*perConn + j))}
				c.Subscribe(ch)
				c.Unsubscribe(ch)
			}
			c.Flush()
		}(i, c)
	}
	wg.Wait()
	want := uint64(conns * perConn * 2)
	deadline := time.Now().Add(10 * time.Second)
	for r.Events() < want {
		if time.Now().After(deadline) {
			t.Fatalf("processed %d/%d events", r.Events(), want)
		}
		time.Sleep(time.Millisecond)
	}
	if r.Channels() != 0 {
		t.Errorf("channels = %d, want 0 after balanced churn", r.Channels())
	}
}

// TestShutdownDuringTraffic closes a router while ≥4 neighbors are still
// streaming events at full rate — the shutdown path (listener close,
// connection teardown, batcher drain, writer flush) racing live
// processCount calls and live upstream sends. The old single-lock router
// never covered Close racing the post-unlock upstream write.
func TestShutdownDuringTraffic(t *testing.T) {
	core, err := NewRouter("127.0.0.1:0", "")
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRouterOpts("127.0.0.1:0", Options{Upstream: core.Addr(), Shards: 4})
	if err != nil {
		t.Fatal(err)
	}

	const conns = 5
	stop := make(chan struct{})
	var wg sync.WaitGroup
	clients := make([]*Client, conns)
	for i := 0; i < conns; i++ {
		c, err := Dial(r.Addr())
		if err != nil {
			t.Fatal(err)
		}
		clients[i] = c
		wg.Add(1)
		go func(i int, c *Client) {
			defer wg.Done()
			churnUntil(c, i, stop)
		}(i, c)
	}

	// Let traffic build, then shut down mid-stream. Close must return
	// without deadlock and without tripping the race detector.
	time.Sleep(50 * time.Millisecond)
	if err := r.Close(); err != nil {
		t.Logf("close returned %v (listener close error is acceptable)", err)
	}
	close(stop)
	wg.Wait()
	for _, c := range clients {
		c.Close()
	}
	// A second Close must be a no-op.
	if err := r.Close(); err != nil {
		t.Errorf("second Close = %v, want nil", err)
	}
	core.Close()
}

// TestShutdownDrainsBatcher verifies Close flushes every advertised change
// to the upstream socket before tearing the writer down. Under the Section
// 3.2 failure semantics the core then withdraws the departed edge's counts,
// so the proof of delivery is cumulative: the core must have processed the
// drained subscribe (TCP orders the data before the FIN), after which its
// aggregate drops back to zero via withdrawal, not via an explicit zero.
func TestShutdownDrainsBatcher(t *testing.T) {
	core, err := NewRouter("127.0.0.1:0", "")
	if err != nil {
		t.Fatal(err)
	}
	defer core.Close()
	// A long flush interval: only the shutdown drain can deliver in time.
	edge, err := NewRouterOpts("127.0.0.1:0", Options{
		Upstream:      core.Addr(),
		FlushInterval: time.Hour,
		FlushBatch:    1 << 30,
	})
	if err != nil {
		t.Fatal(err)
	}

	c, err := Dial(edge.Addr())
	if err != nil {
		t.Fatal(err)
	}
	// The client stays open across edge.Close: closing it first would make
	// the (still-running) edge withdraw its count and drain a zero instead.
	defer c.Close()
	ch := addr.Channel{S: addr.MustParse("10.0.0.1"), E: addr.ExpressAddr(5)}
	c.SendCount(ch, 31)
	c.Flush()
	deadline := time.Now().Add(5 * time.Second)
	for edge.Events() < 1 {
		if time.Now().After(deadline) {
			t.Fatal("edge never processed the event")
		}
		time.Sleep(time.Millisecond)
	}
	if err := edge.Close(); err != nil {
		t.Fatalf("edge close: %v", err)
	}
	// The drained Count{31} must have reached the core before the edge's
	// connection closed...
	for core.Stats().Subscribes < 1 {
		if time.Now().After(deadline) {
			t.Fatal("core never processed the drained count")
		}
		time.Sleep(time.Millisecond)
	}
	// ...after which the core withdraws the dead edge session's contribution.
	for {
		st := core.Stats()
		if core.SubscriberCount(ch) == 0 && st.WithdrawnCounts == 1 && st.NeighborFailures == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("core count = %d, withdrawn = %d, failures = %d; want 0/1/1 after edge departure",
				core.SubscriberCount(ch), st.WithdrawnCounts, st.NeighborFailures)
		}
		time.Sleep(time.Millisecond)
	}
}
