package realnet

import (
	"bufio"
	"net"

	"repro/internal/addr"
	"repro/internal/wire"
)

// Client is a neighbor that streams membership events to a Router — the
// "eight active Ethernet neighbors continuously sending subscribe and
// unsubscribe events" of the Section 5.3 measurement.
type Client struct {
	conn net.Conn
	w    *bufio.Writer
	buf  []byte
	sent uint64
}

// Dial connects a client neighbor to a router.
func Dial(routerAddr string) (*Client, error) {
	c, err := net.Dial("tcp", routerAddr)
	if err != nil {
		return nil, err
	}
	if tc, ok := c.(*net.TCPConn); ok {
		tc.SetNoDelay(false) // allow batching, as TCP-mode ECMP intends
	}
	return &Client{
		conn: c,
		w:    bufio.NewWriterSize(c, wire.MaxSegment),
		buf:  make([]byte, 0, wire.CountAuthSize),
	}, nil
}

// Subscribe sends a subscription Count for ch.
func (c *Client) Subscribe(ch addr.Channel) error { return c.sendCount(ch, 1) }

// Unsubscribe sends a zero Count for ch.
func (c *Client) Unsubscribe(ch addr.Channel) error { return c.sendCount(ch, 0) }

// SendCount advertises an arbitrary aggregate subscriber count for ch, as
// a downstream router forwarding its subtree sum would (Section 3.2's
// value-change propagation).
func (c *Client) SendCount(ch addr.Channel, v uint32) error { return c.sendCount(ch, v) }

func (c *Client) sendCount(ch addr.Channel, v uint32) error {
	m := wire.Count{Channel: ch, CountID: wire.CountSubscribers, Value: v}
	c.buf = m.AppendTo(c.buf[:0])
	if _, err := c.w.Write(c.buf); err != nil {
		return err
	}
	c.sent++
	return nil
}

// Flush pushes buffered events to the router.
func (c *Client) Flush() error { return c.w.Flush() }

// Sent returns the number of events written.
func (c *Client) Sent() uint64 { return c.sent }

// Close flushes and closes the connection.
func (c *Client) Close() error {
	c.w.Flush()
	return c.conn.Close()
}
