package realnet

import (
	"bufio"
	"net"

	"repro/internal/addr"
	"repro/internal/wire"
)

// Client is a neighbor that streams membership events to a Router — the
// "eight active Ethernet neighbors continuously sending subscribe and
// unsubscribe events" of the Section 5.3 measurement. A Client is a bare
// connection: when it drops, the router withdraws its counts and nothing
// reconnects. Wrap the link in a Session for the fault-tolerant behaviour
// of Section 3.2 (reconnect, resync, keepalives).
type Client struct {
	conn net.Conn
	w    *bufio.Writer
	buf  []byte
	sent uint64
}

// Dial connects a client neighbor to a router.
func Dial(routerAddr string) (*Client, error) {
	c, err := net.Dial("tcp", routerAddr)
	if err != nil {
		return nil, err
	}
	return newClient(c), nil
}

// newClient wraps an established connection (the Session reconnect path
// reuses this with fault-injected or deadline-wrapped conns).
func newClient(conn net.Conn) *Client {
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetNoDelay(false) // allow batching, as TCP-mode ECMP intends
	}
	return &Client{
		conn: conn,
		w:    bufio.NewWriterSize(conn, wire.MaxSegment),
		buf:  make([]byte, 0, wire.CountAuthSize),
	}
}

// Subscribe sends a subscription Count for ch.
func (c *Client) Subscribe(ch addr.Channel) error { return c.sendCount(ch, 1) }

// Unsubscribe sends a zero Count for ch.
func (c *Client) Unsubscribe(ch addr.Channel) error { return c.sendCount(ch, 0) }

// SendCount advertises an arbitrary aggregate subscriber count for ch, as
// a downstream router forwarding its subtree sum would (Section 3.2's
// value-change propagation).
func (c *Client) SendCount(ch addr.Channel, v uint32) error { return c.sendCount(ch, v) }

func (c *Client) sendCount(ch addr.Channel, v uint32) error {
	return c.sendCountID(ch, wire.CountSubscribers, v)
}

// SendAppCount pushes an application-defined count (wire.AppCountBase
// range) for ch — Section 6's proactive counting, and the vehicle of the
// Section 2.2.1 NACK-count reliable transport. Zero clears the slot.
func (c *Client) SendAppCount(ch addr.Channel, id wire.CountID, v uint32) error {
	return c.sendCountID(ch, id, v)
}

func (c *Client) sendCountID(ch addr.Channel, id wire.CountID, v uint32) error {
	m := wire.Count{Channel: ch, CountID: id, Value: v}
	c.buf = m.AppendTo(c.buf[:0])
	if _, err := c.w.Write(c.buf); err != nil {
		return err
	}
	c.sent++
	return nil
}

// sendQuery writes an ECMP CountQuery on the stream. The router answers
// with a Count carrying the echoed Seq; the Session's reader goroutine
// routes it back to the waiting Query call.
func (c *Client) sendQuery(q *wire.CountQuery) error {
	c.buf = q.AppendTo(c.buf[:0])
	_, err := c.w.Write(c.buf)
	return err
}

// sendHello opens a session on the connection; it must precede any Count.
func (c *Client) sendHello(h *wire.Hello) error {
	c.buf = h.AppendTo(c.buf[:0])
	_, err := c.w.Write(c.buf)
	return err
}

// sendKeepalive proves liveness to the router's reaper without touching
// any channel state.
func (c *Client) sendKeepalive() error {
	m := wire.Count{
		Channel: addr.Channel{S: addr.LocalhostSource, E: addr.ExpressBase},
		CountID: wire.CountKeepalive,
		Value:   1,
	}
	c.buf = m.AppendTo(c.buf[:0])
	_, err := c.w.Write(c.buf)
	return err
}

// Flush pushes buffered events to the router.
func (c *Client) Flush() error { return c.w.Flush() }

// Sent returns the number of events written.
func (c *Client) Sent() uint64 { return c.sent }

// Close flushes and closes the connection. A flush failure is reported —
// buffered membership events never reached the router — but a failed close
// takes precedence, since then the connection's fate itself is unknown.
func (c *Client) Close() error {
	ferr := c.w.Flush()
	if cerr := c.conn.Close(); cerr != nil {
		return cerr
	}
	return ferr
}
