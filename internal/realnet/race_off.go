//go:build !race

package realnet

// raceEnabled reports whether the race detector is compiled in; alloc
// regression tests skip their strict zero assertions under -race.
const raceEnabled = false
