package unicast

import (
	"testing"

	"repro/internal/netsim"
)

func TestLineShortestPaths(t *testing.T) {
	sim := netsim.New(1)
	rs := netsim.Line(sim, 5, netsim.DefaultWAN)
	rt := Compute(sim)

	r, ok := rt.NextHopTo(rs[0].ID, rs[4].ID)
	if !ok || r.Cost != 4 || r.NextHop != rs[1].ID {
		t.Fatalf("r0→r4: %+v ok=%v, want cost 4 via r1", r, ok)
	}
	path := rt.Path(rs[0].ID, rs[4].ID)
	if len(path) != 5 {
		t.Fatalf("path = %v, want 5 nodes", path)
	}
	for i, n := range path {
		if n != rs[i].ID {
			t.Fatalf("path[%d] = %v, want %v", i, n, rs[i].ID)
		}
	}
}

func TestRPFInterface(t *testing.T) {
	sim := netsim.New(1)
	rs := netsim.Line(sim, 3, netsim.DefaultWAN)
	host, _, _ := netsim.AttachHost(sim, rs[0], 0, netsim.DefaultLAN)
	rt := Compute(sim)

	// From r2, the RPF interface toward the host points at r1.
	r, ok := rt.RPFInterface(rs[2].ID, host.Addr)
	if !ok || r.NextHop != rs[1].ID {
		t.Fatalf("RPF from r2 toward host: %+v ok=%v", r, ok)
	}
	// From r0 it points at the host itself.
	r, ok = rt.RPFInterface(rs[0].ID, host.Addr)
	if !ok || r.NextHop != host.ID {
		t.Fatalf("RPF from r0 toward host: %+v ok=%v", r, ok)
	}
}

func TestGridDistances(t *testing.T) {
	sim := netsim.New(1)
	rs := netsim.Grid(sim, 4, 4, netsim.DefaultWAN)
	rt := Compute(sim)
	// Manhattan distance on a grid with unit costs.
	if c := rt.PathCost(rs[0].ID, rs[15].ID); c != 6 {
		t.Errorf("corner-to-corner cost = %d, want 6", c)
	}
	if c := rt.PathCost(rs[5].ID, rs[6].ID); c != 1 {
		t.Errorf("adjacent cost = %d, want 1", c)
	}
	if c := rt.PathCost(rs[3].ID, rs[3].ID); c != 0 {
		t.Errorf("self cost = %d, want 0", c)
	}
}

func TestRecomputeOnLinkFailure(t *testing.T) {
	sim := netsim.New(1)
	// Square: r0-r1, r1-r3, r0-r2, r2-r3.
	rs := netsim.AddRouters(sim, 4)
	l01, _, _ := sim.Connect(rs[0], rs[1], netsim.Millisecond, 0, 1)
	sim.Connect(rs[1], rs[3], netsim.Millisecond, 0, 1)
	sim.Connect(rs[0], rs[2], netsim.Millisecond, 0, 1)
	sim.Connect(rs[2], rs[3], netsim.Millisecond, 0, 1)
	rt := Compute(sim)

	r, _ := rt.NextHopTo(rs[0].ID, rs[3].ID)
	firstHop := r.NextHop
	if firstHop != rs[1].ID {
		t.Fatalf("tie-break chose %v, want r1 (lower id)", firstHop)
	}
	v1 := rt.Version()

	l01.SetUp(false)
	rt.Invalidate()
	if rt.Version() == v1 {
		t.Fatal("version did not change after invalidation")
	}
	r, ok := rt.NextHopTo(rs[0].ID, rs[3].ID)
	if !ok || r.NextHop != rs[2].ID || r.Cost != 2 {
		t.Fatalf("after failure: %+v, want via r2 cost 2", r)
	}

	// Partition: no route at all.
	for _, l := range sim.Links() {
		l.SetUp(false)
	}
	rt.Invalidate()
	if _, ok := rt.NextHopTo(rs[0].ID, rs[3].ID); ok {
		t.Fatal("route survived a full partition")
	}
}

func TestDeterministicTieBreak(t *testing.T) {
	// Two equal-cost paths: the chosen first hop must be identical across
	// repeated computations.
	var first netsim.NodeID = -1
	for i := 0; i < 5; i++ {
		sim := netsim.New(9)
		rs := netsim.AddRouters(sim, 4)
		sim.Connect(rs[0], rs[1], netsim.Millisecond, 0, 1)
		sim.Connect(rs[0], rs[2], netsim.Millisecond, 0, 1)
		sim.Connect(rs[1], rs[3], netsim.Millisecond, 0, 1)
		sim.Connect(rs[2], rs[3], netsim.Millisecond, 0, 1)
		rt := Compute(sim)
		r, _ := rt.NextHopTo(rs[0].ID, rs[3].ID)
		if first == -1 {
			first = r.NextHop
		} else if r.NextHop != first {
			t.Fatalf("tie-break not deterministic: %v vs %v", r.NextHop, first)
		}
	}
}

func TestNodeByAddr(t *testing.T) {
	sim := netsim.New(1)
	rs := netsim.Line(sim, 2, netsim.DefaultWAN)
	rt := Compute(sim)
	id, ok := rt.NodeByAddr(rs[1].Addr)
	if !ok || id != rs[1].ID {
		t.Fatalf("NodeByAddr: %v %v", id, ok)
	}
	if _, ok := rt.NodeByAddr(0xdeadbeef); ok {
		t.Fatal("unknown address resolved")
	}
}

func TestPathUnreachableReturnsNil(t *testing.T) {
	sim := netsim.New(1)
	rs := netsim.AddRouters(sim, 2) // disconnected
	rt := Compute(sim)
	if p := rt.Path(rs[0].ID, rs[1].ID); p != nil {
		t.Fatalf("path across partition = %v, want nil", p)
	}
	if c := rt.PathCost(rs[0].ID, rs[1].ID); c != -1 {
		t.Fatalf("cost across partition = %d, want -1", c)
	}
}
