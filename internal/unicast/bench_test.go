package unicast

import (
	"testing"

	"repro/internal/netsim"
)

// BenchmarkSPFGrid measures a full all-pairs recompute on a 10×10 grid —
// the convergence cost after every topology change.
func BenchmarkSPFGrid(b *testing.B) {
	sim := netsim.New(1)
	netsim.Grid(sim, 10, 10, netsim.DefaultWAN)
	rt := Compute(sim)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rt.Invalidate()
		rt.Version() // forces the recompute
	}
	b.ReportMetric(100, "routers")
}

// BenchmarkNextHop measures the per-packet route lookup.
func BenchmarkNextHop(b *testing.B) {
	sim := netsim.New(1)
	rs := netsim.Grid(sim, 8, 8, netsim.DefaultWAN)
	rt := Compute(sim)
	dst := rs[63].Addr
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := rt.NextHop(rs[0].ID, dst); !ok {
			b.Fatal("unroutable")
		}
	}
}
