// Package unicast computes the unicast routing tables that ECMP's
// reverse-path forwarding relies on (Section 3: "The RPF routing component
// of ECMP relies on, and scales with, existing unicast topology
// information").
//
// It is a link-state protocol in the small: the link-state database is the
// simulator topology itself, and a Dijkstra SPF run per node produces
// next-hop tables. Recomputation is lazy — topology changes mark the tables
// dirty, and the next query recomputes — which models routers converging
// after an IGP flood without simulating the flood itself.
package unicast

import (
	"container/heap"
	"math"

	"repro/internal/addr"
	"repro/internal/netsim"
)

// Route is one next-hop entry.
type Route struct {
	Ifindex int           // outgoing interface toward the destination
	NextHop netsim.NodeID // neighbor on that interface
	Cost    int           // total path metric
}

// Table holds one node's routes to every reachable node.
type Table struct {
	routes map[netsim.NodeID]Route
}

// Lookup returns the route toward dst and whether one exists. Looking up
// the node itself returns a zero route with ok=true and Ifindex -1.
func (t *Table) Lookup(dst netsim.NodeID) (Route, bool) {
	r, ok := t.routes[dst]
	return r, ok
}

// Routing is the set of tables for every node plus the change tracking that
// keeps them current.
type Routing struct {
	sim     *netsim.Sim
	tables  map[netsim.NodeID]*Table
	byAddr  map[addr.Addr]netsim.NodeID
	dirty   bool
	version uint64
	// watchers are notified once per clean→dirty transition — the stand-in
	// for the IGP flooding a topology change to every router.
	watchers []func()
}

// Compute builds routing state for the simulation's current topology.
func Compute(s *netsim.Sim) *Routing {
	r := &Routing{sim: s, dirty: true}
	r.refresh()
	return r
}

// Invalidate marks the tables stale; the next query recomputes. Protocol
// engines call this from their LinkChange hooks. Watchers registered with
// OnChange are notified on the clean→dirty transition, as if the IGP had
// flooded the change network-wide.
func (r *Routing) Invalidate() {
	if r.dirty {
		return
	}
	r.dirty = true
	for _, w := range r.watchers {
		w()
	}
}

// OnChange registers a callback invoked whenever the topology becomes
// stale. ECMP routers use it to re-evaluate channel upstreams (Section
// 3.2's topology-change handling) even when the changed link is not
// directly attached.
func (r *Routing) OnChange(fn func()) { r.watchers = append(r.watchers, fn) }

// Version increments on every recompute; engines use it to detect that
// routes may have moved (topology-change re-subscription, Section 3.2).
func (r *Routing) Version() uint64 {
	r.refresh()
	return r.version
}

func (r *Routing) refresh() {
	if !r.dirty {
		return
	}
	r.dirty = false
	r.version++
	nodes := r.sim.Nodes()
	r.byAddr = make(map[addr.Addr]netsim.NodeID, len(nodes))
	for _, n := range nodes {
		r.byAddr[n.Addr] = n.ID
	}
	r.tables = make(map[netsim.NodeID]*Table, len(nodes))
	for _, n := range nodes {
		r.tables[n.ID] = dijkstra(n, nodes)
	}
}

// NodeByAddr resolves a unicast address to a node id.
func (r *Routing) NodeByAddr(a addr.Addr) (netsim.NodeID, bool) {
	r.refresh()
	id, ok := r.byAddr[a]
	return id, ok
}

// NextHop returns the route from node `from` toward the node owning address
// dst. ok is false when dst is unknown or unreachable.
func (r *Routing) NextHop(from netsim.NodeID, dst addr.Addr) (Route, bool) {
	r.refresh()
	id, ok := r.byAddr[dst]
	if !ok {
		return Route{}, false
	}
	return r.NextHopTo(from, id)
}

// NextHopTo is NextHop with the destination given as a node id.
func (r *Routing) NextHopTo(from, to netsim.NodeID) (Route, bool) {
	r.refresh()
	t, ok := r.tables[from]
	if !ok {
		return Route{}, false
	}
	return t.Lookup(to)
}

// RPFInterface returns the interface on node `at` that unicast routing uses
// to reach source src — the reverse-path-forwarding check interface. An
// EXPRESS packet for (S,E) is accepted only if it arrives here (Section
// 3.4), and subscriptions for (S,E) are forwarded out of it (Section 3.2).
func (r *Routing) RPFInterface(at netsim.NodeID, src addr.Addr) (Route, bool) {
	return r.NextHop(at, src)
}

// PathCost returns the total metric between two nodes, or -1 if unreachable.
func (r *Routing) PathCost(from, to netsim.NodeID) int {
	rt, ok := r.NextHopTo(from, to)
	if !ok {
		return -1
	}
	return rt.Cost
}

// Path returns the node sequence from→…→to following next hops, inclusive.
// It returns nil if unreachable. Useful for verifying that multicast flows
// only along source→subscriber unicast paths (Section 3.6).
func (r *Routing) Path(from, to netsim.NodeID) []netsim.NodeID {
	r.refresh()
	path := []netsim.NodeID{from}
	cur := from
	for cur != to {
		rt, ok := r.NextHopTo(cur, to)
		if !ok || rt.Ifindex < 0 {
			if cur == to {
				break
			}
			return nil
		}
		cur = rt.NextHop
		path = append(path, cur)
		if len(path) > len(r.tables)+1 {
			return nil // loop guard; cannot happen with consistent tables
		}
	}
	return path
}

// dijkstra runs SPF from src over the up links/LANs, with deterministic
// tie-breaking (lower node id wins) so simulations are reproducible.
func dijkstra(src *netsim.Node, nodes []*netsim.Node) *Table {
	const inf = math.MaxInt32
	dist := make([]int, len(nodes))
	first := make([]Route, len(nodes)) // first hop from src toward each node
	done := make([]bool, len(nodes))
	for i := range dist {
		dist[i] = inf
		first[i] = Route{Ifindex: -1, NextHop: -1}
	}
	dist[src.ID] = 0

	pq := &routeHeap{{id: src.ID, cost: 0}}
	for pq.Len() > 0 {
		item := heap.Pop(pq).(routeItem)
		u := item.id
		if done[u] {
			continue
		}
		done[u] = true
		un := nodes[u]
		for ifidx, peers := range un.Neighbors() {
			for _, p := range peers {
				if !p.Up {
					continue
				}
				nd := dist[u] + p.Cost
				v := p.Node
				better := nd < dist[v]
				// Deterministic tie-break: equal cost prefers the path whose
				// first hop has the lower neighbor id, then lower ifindex.
				if nd == dist[v] && !done[v] {
					nf := firstHopFor(u, src.ID, first, ifidx, un, p)
					of := first[v]
					if nf.NextHop < of.NextHop || (nf.NextHop == of.NextHop && nf.Ifindex < of.Ifindex) {
						better = true
					}
				}
				if better {
					dist[v] = nd
					first[v] = firstHopFor(u, src.ID, first, ifidx, un, p)
					first[v].Cost = nd
					heap.Push(pq, routeItem{id: v, cost: nd})
				}
			}
		}
	}

	t := &Table{routes: make(map[netsim.NodeID]Route, len(nodes))}
	for _, n := range nodes {
		if dist[n.ID] == inf {
			continue
		}
		if n.ID == src.ID {
			t.routes[n.ID] = Route{Ifindex: -1, NextHop: n.ID, Cost: 0}
			continue
		}
		t.routes[n.ID] = first[n.ID]
	}
	return t
}

// firstHopFor determines the first-hop route for a node reached through u.
func firstHopFor(u, srcID netsim.NodeID, first []Route, ifidx int, un *netsim.Node, p netsim.PeerInfo) Route {
	if u == srcID {
		return Route{Ifindex: ifidx, NextHop: p.Node}
	}
	return Route{Ifindex: first[u].Ifindex, NextHop: first[u].NextHop}
}

type routeItem struct {
	id   netsim.NodeID
	cost int
}

type routeHeap []routeItem

func (h routeHeap) Len() int { return len(h) }
func (h routeHeap) Less(i, j int) bool {
	if h[i].cost != h[j].cost {
		return h[i].cost < h[j].cost
	}
	return h[i].id < h[j].id
}
func (h routeHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *routeHeap) Push(x any)   { *h = append(*h, x.(routeItem)) }
func (h *routeHeap) Pop() (popped any) {
	old := *h
	n := len(old)
	popped = old[n-1]
	*h = old[:n-1]
	return
}
