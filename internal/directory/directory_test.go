package directory_test

import (
	"testing"

	"repro/internal/addr"
	"repro/internal/directory"
	"repro/internal/ecmp"
	"repro/internal/netsim"
	"repro/internal/testutil"
)

func TestPushDirectory(t *testing.T) {
	n := testutil.LineNet(55, 3, ecmp.DefaultConfig())
	dirHost := n.AddSource(n.Routers[0])
	svc, err := directory.NewService(dirHost, 0x00D1, 2*netsim.Second)
	if err != nil {
		t.Fatal(err)
	}
	listener := directory.Listen(n.AddSubscriber(n.Routers[2]), svc.Channel())
	n.Start()

	sessionCh := addr.Channel{S: addr.MustParse("10.0.0.5"), E: addr.ExpressAddr(7)}
	n.Sim.At(0, func() {
		svc.Publish(directory.Announcement{
			Name: "sigcomm-keynote", Channel: sessionCh,
			Relay: addr.MustParse("10.0.0.5"), Starts: 100 * netsim.Second,
		})
		svc.Start()
	})
	n.Sim.RunUntil(5 * netsim.Second)

	a, ok := listener.Lookup("sigcomm-keynote")
	if !ok {
		t.Fatal("listener never learned the session")
	}
	if a.Channel != sessionCh {
		t.Errorf("channel = %v, want %v", a.Channel, sessionCh)
	}

	// A second session appears; the next push carries both.
	n.Sim.After(0, func() {
		svc.Publish(directory.Announcement{Name: "lecture-2", Channel: sessionCh, Restricted: true})
	})
	n.Sim.RunUntil(10 * netsim.Second)
	if got := len(listener.Sessions()); got != 2 {
		t.Fatalf("sessions = %d, want 2", got)
	}

	// Withdrawal propagates on the next push.
	n.Sim.After(0, func() { svc.Withdraw("sigcomm-keynote") })
	n.Sim.RunUntil(15 * netsim.Second)
	if _, ok := listener.Lookup("sigcomm-keynote"); ok {
		t.Error("withdrawn session still listed")
	}
	if got := len(listener.Sessions()); got != 1 {
		t.Errorf("sessions after withdrawal = %d, want 1", got)
	}
}

// TestLateJoinerCatchesUp verifies the push model's point: no fetch
// protocol — a listener that joins late learns the listing on the next
// periodic push.
func TestLateJoinerCatchesUp(t *testing.T) {
	n := testutil.LineNet(56, 3, ecmp.DefaultConfig())
	dirHost := n.AddSource(n.Routers[0])
	svc, err := directory.NewService(dirHost, 0x00D1, 2*netsim.Second)
	if err != nil {
		t.Fatal(err)
	}
	n.Start()
	n.Sim.At(0, func() {
		svc.Publish(directory.Announcement{Name: "always-on-tv"})
		svc.Start()
	})
	n.Sim.RunUntil(10 * netsim.Second)

	late := directory.Listen(n.AddSubscriber(n.Routers[1]), svc.Channel())
	n.Sim.RunUntil(20 * netsim.Second)
	if _, ok := late.Lookup("always-on-tv"); !ok {
		t.Error("late joiner never caught up from the periodic push")
	}
}
