// Package directory implements session advertisement over a "push" EXPRESS
// channel, the paper's replacement for multicast-based discovery: "Event
// advertisement can use web page, a 'push' EXPRESS channel from one or more
// directory services, email, or other means" (Section 4.1). EXPRESS
// deliberately does not support wide-area multicast discovery ("these
// techniques are fundamentally not scalable to the wide area", Section 8);
// instead, a directory service — itself just a single-source channel —
// carries announcements of upcoming sessions, including their session-relay
// channel addresses.
package directory

import (
	"sort"

	"repro/internal/addr"
	"repro/internal/express"
	"repro/internal/netsim"
)

// Announcement advertises one upcoming or live session.
type Announcement struct {
	Name    string
	Channel addr.Channel // the session's (SR,E)
	Relay   addr.Addr    // the session-relay host, for secondary senders
	Starts  netsim.Time
	Ends    netsim.Time
	// Key distribution is out of ECMP's scope (Section 3.2); restricted
	// sessions say so and distribute K(S,E) out of band.
	Restricted bool
}

// announceBatch is the datagram payload: the directory pushes its full
// listing periodically so late joiners catch up without a fetch protocol.
type announceBatch struct {
	Sessions []Announcement
}

// Service is a directory provider: it owns the well-known directory
// channel and re-announces its listing on a fixed period.
type Service struct {
	src    *express.Source
	ch     addr.Channel
	period netsim.Time

	sessions map[string]Announcement
	started  bool

	AnnouncementsSent uint64
}

// NewService creates a directory on host, publishing on the given
// well-known channel suffix.
func NewService(host *express.Source, suffix uint32, period netsim.Time) (*Service, error) {
	ch, err := host.CreateChannelAt(suffix)
	if err != nil {
		return nil, err
	}
	return &Service{
		src:      host,
		ch:       ch,
		period:   period,
		sessions: make(map[string]Announcement),
	}, nil
}

// Channel returns the directory's channel — the one address users must
// learn out of band (a web page, in the paper's framing).
func (s *Service) Channel() addr.Channel { return s.ch }

// Publish adds or updates a session listing. The next push carries it.
func (s *Service) Publish(a Announcement) { s.sessions[a.Name] = a }

// Withdraw removes a listing.
func (s *Service) Withdraw(name string) { delete(s.sessions, name) }

// Start begins the periodic push.
func (s *Service) Start() {
	if s.started {
		return
	}
	s.started = true
	s.push()
}

func (s *Service) push() {
	if len(s.sessions) > 0 {
		batch := &announceBatch{}
		for _, a := range s.sessions {
			batch.Sessions = append(batch.Sessions, a)
		}
		sort.Slice(batch.Sessions, func(i, j int) bool {
			return batch.Sessions[i].Name < batch.Sessions[j].Name
		})
		size := 64 * len(batch.Sessions)
		if err := s.src.Send(s.ch, size, batch); err == nil {
			s.AnnouncementsSent++
		}
	}
	s.src.Node().Sim().After(s.period, s.push)
}

// Listener subscribes to a directory channel and maintains the session
// table it hears.
type Listener struct {
	sub *express.Subscriber

	sessions map[string]Announcement
	// OnUpdate fires whenever a push changes the listener's table.
	OnUpdate func()
}

// Listen subscribes sub to the directory channel.
func Listen(sub *express.Subscriber, directoryCh addr.Channel) *Listener {
	l := &Listener{sub: sub, sessions: make(map[string]Announcement)}
	sub.OnData = func(ch addr.Channel, pkt *netsim.Packet) {
		if ch != directoryCh {
			return
		}
		batch, ok := pkt.Payload.(*announceBatch)
		if !ok {
			return
		}
		changed := len(batch.Sessions) != len(l.sessions)
		next := make(map[string]Announcement, len(batch.Sessions))
		for _, a := range batch.Sessions {
			if old, ok := l.sessions[a.Name]; !ok || old != a {
				changed = true
			}
			next[a.Name] = a
		}
		l.sessions = next
		if changed && l.OnUpdate != nil {
			l.OnUpdate()
		}
	}
	sub.Subscribe(directoryCh, nil, nil)
	return l
}

// Lookup returns a session by name.
func (l *Listener) Lookup(name string) (Announcement, bool) {
	a, ok := l.sessions[name]
	return a, ok
}

// Sessions returns the current listing, sorted by name.
func (l *Listener) Sessions() []Announcement {
	out := make([]Announcement, 0, len(l.sessions))
	for _, a := range l.sessions {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
