package relay

import (
	"repro/internal/addr"
	"repro/internal/express"
	"repro/internal/netsim"
	"repro/internal/wire"
)

// Participant is a session member: an EXPRESS subscriber to the session
// channel that relays its own transmissions through the SR by unicast and
// follows secondary-source announcements onto direct channels.
type Participant struct {
	sub *express.Subscriber
	sr  addr.Addr
	ch  addr.Channel

	// OnContent receives relayed session content in sequence-number order
	// awareness: gaps are counted in Missed.
	OnContent func(rp *RelayedPacket)
	// nextSeq is the expected next sequence once seqStarted; comparisons
	// are serial (wraparound-safe), and a separate flag marks the stream
	// anchored so sequence 0 needs no sentinel meaning.
	nextSeq    uint32
	seqStarted bool
	Missed     uint64
	Received   uint64

	// direct channels joined via announcements.
	directChannels map[addr.Channel]bool

	// LastHeard is the arrival time of the most recent session packet; the
	// standby machinery uses it as a primary-liveness watchdog.
	LastHeard netsim.Time
}

// Join creates a participant on host, subscribed to the session channel.
func Join(host *netsim.Node, srAddr addr.Addr, ch addr.Channel) *Participant {
	p := &Participant{
		sr:             srAddr,
		ch:             ch,
		directChannels: make(map[addr.Channel]bool),
	}
	p.sub = express.NewSubscriber(host)
	p.sub.OnData = p.onData
	p.sub.Subscribe(ch, nil, nil)
	return p
}

// Subscriber exposes the underlying EXPRESS subscriber.
func (p *Participant) Subscriber() *express.Subscriber { return p.sub }

// Node returns the participant's host node.
func (p *Participant) Node() *netsim.Node { return p.sub.Node() }

// RequestFloor asks the SR for the floor.
func (p *Participant) RequestFloor() { p.send(&Request{Kind: FloorRequest}, 32) }

// ReleaseFloor returns the floor.
func (p *Participant) ReleaseFloor() { p.send(&Request{Kind: FloorRelease}, 32) }

// Say relays content through the SR (honoured only while holding the floor
// or as lecturer).
func (p *Participant) Say(size int, payload any) {
	p.send(&Request{Kind: Data, Payload: payload, Size: size}, size+32)
}

func (p *Participant) send(req *Request, size int) {
	req.From = p.sub.Node().Addr
	p.sub.Node().SendAll(-1, &netsim.Packet{
		Src: p.sub.Node().Addr, Dst: p.sr, Proto: netsim.ProtoData,
		TTL: netsim.DefaultTTL, Size: wire.IPv4HeaderSize + size, Payload: req,
	})
}

// onData handles channel traffic: sequence tracking, announcements, and
// content delivery.
func (p *Participant) onData(ch addr.Channel, pkt *netsim.Packet) {
	p.LastHeard = p.sub.Node().Sim().Now()
	rp, ok := pkt.Payload.(*RelayedPacket)
	if !ok {
		// Direct-channel traffic from a switched secondary source.
		p.Received++
		if p.OnContent != nil {
			p.OnContent(&RelayedPacket{From: pkt.Src, Payload: pkt.Payload})
		}
		return
	}
	if ann, ok := rp.Payload.(*Announcement); ok {
		// Follow the secondary source onto its direct channel.
		if !p.directChannels[ann.NewChannel] {
			p.directChannels[ann.NewChannel] = true
			p.sub.Subscribe(ann.NewChannel, nil, nil)
		}
		return
	}
	if !p.seqStarted {
		p.seqStarted = true
		p.nextSeq = rp.Seq + 1
	} else {
		if wire.SeqAfter(rp.Seq, p.nextSeq) {
			p.Missed += uint64(wire.SeqDelta(rp.Seq, p.nextSeq))
		}
		// A serially late packet (reorder or repair) must not drag the
		// expectation backwards and double-count the gap it fills.
		p.nextSeq = wire.SeqMax(p.nextSeq, rp.Seq+1)
	}
	p.Received++
	if p.OnContent != nil {
		p.OnContent(rp)
	}
}
