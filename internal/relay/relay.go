// Package relay implements the session-relay (SR) middleware of Section 4:
// almost-single-source applications (distance learning, conferences) built
// on EXPRESS channels. The SR host is the source of the session's channel;
// participants subscribe to (SR,E) and relay their transmissions through
// the SR by unicast. The SR provides the application-level control the
// paper contrasts with network-layer rendezvous points: floor control
// ("an intelligent audience microphone"), sequence numbering for reliable
// relays, standby fail-over, and secondary-source switchover to a direct
// channel.
package relay

import (
	"fmt"

	"repro/internal/addr"
	"repro/internal/express"
	"repro/internal/netsim"
	"repro/internal/wire"
)

// Request is what a participant unicasts to the SR.
type Request struct {
	From addr.Addr
	Kind RequestKind
	// Data payload for Kind == Data.
	Payload any
	Size    int
}

// RequestKind discriminates participant→SR messages.
type RequestKind uint8

const (
	// FloorRequest asks to be granted the floor.
	FloorRequest RequestKind = iota
	// FloorRelease returns the floor.
	FloorRelease
	// Data is content to relay onto the session channel (only honoured
	// for the lecturer or the current floor holder).
	Data
)

// Announcement is relayed on the channel when a secondary source switches
// to a direct channel of its own (Section 4.1): participants subscribe to
// the new channel on receipt.
type Announcement struct {
	NewChannel addr.Channel
}

// RelayedPacket wraps relayed data with the SR's sequence number — the
// per-session sequencing that reliable multicast protocols need
// (Section 4.2).
type RelayedPacket struct {
	Seq     uint32
	From    addr.Addr
	Payload any
}

// FloorPolicy tunes the "audience microphone" of Section 4.2.
type FloorPolicy struct {
	// MaxQuestionsPerMember caps how often one member may hold the floor
	// ("no member disrupts the session with excessive questions"). 0 means
	// unlimited.
	MaxQuestionsPerMember int
	// MaxFloorTime bounds one turn; 0 means unbounded.
	MaxFloorTime netsim.Time
}

// SR is a session relay.
type SR struct {
	src *express.Source
	ch  addr.Channel

	// Lecturer is the primary source; its Data requests bypass floor
	// control and may also originate locally via SendPrimary.
	Lecturer addr.Addr

	policy FloorPolicy

	floorHolder addr.Addr
	floorQueue  []addr.Addr
	granted     map[addr.Addr]int
	floorTimer  *netsim.Timer

	seq uint32

	Metrics Metrics

	// OnRelay observes every packet relayed onto the channel.
	OnRelay func(rp *RelayedPacket)
}

// Metrics counts SR activity.
type Metrics struct {
	Relayed        uint64
	RefusedNoFloor uint64
	FloorGrants    uint64
	FloorDenials   uint64
}

// New creates a session relay on host (which becomes the channel source).
// The returned SR owns the node's handler; ECMP control continues to flow
// to the underlying express.Source.
func New(host *netsim.Node, policy FloorPolicy) (*SR, addr.Channel, error) {
	src := express.NewSource(host)
	ch, err := src.CreateChannel()
	if err != nil {
		return nil, addr.Channel{}, err
	}
	sr := &SR{
		src:     src,
		ch:      ch,
		policy:  policy,
		granted: make(map[addr.Addr]int),
	}
	host.Handler = sr
	return sr, ch, nil
}

// Channel returns the session channel (SR,E).
func (sr *SR) Channel() addr.Channel { return sr.ch }

// Source exposes the underlying EXPRESS source (for CountQuery etc.).
func (sr *SR) Source() *express.Source { return sr.src }

// SendPrimary relays lecturer content originating at the SR host itself.
func (sr *SR) SendPrimary(size int, payload any) {
	sr.relay(sr.Lecturer, size, payload)
}

// AnnounceNewSource tells all participants that a secondary source moved to
// its own direct channel (Section 4.1's alternative to pure relaying).
func (sr *SR) AnnounceNewSource(newCh addr.Channel) {
	sr.seq++
	rp := &RelayedPacket{Seq: sr.seq, From: sr.src.Node().Addr, Payload: &Announcement{NewChannel: newCh}}
	_ = sr.src.Send(sr.ch, 64, rp)
}

// SessionSize polls the subscriber count — the RTCP-style session
// measurement of Section 4.5, implemented with CountQuery instead of
// multi-sender RTCP.
func (sr *SR) SessionSize(timeout netsim.Time, cb func(uint32, bool)) {
	sr.src.CountQuery(sr.ch, wire.CountSubscribers, timeout, false, cb)
}

// Receive implements netsim.Handler: unicast relay requests are processed
// here; everything else (ECMP control) is delegated to the source stack.
func (sr *SR) Receive(ifindex int, pkt *netsim.Packet) {
	if req, ok := pkt.Payload.(*Request); ok && pkt.Dst == sr.src.Node().Addr {
		sr.handleRequest(req)
		return
	}
	sr.src.Receive(ifindex, pkt)
}

func (sr *SR) handleRequest(req *Request) {
	switch req.Kind {
	case FloorRequest:
		sr.requestFloor(req.From)
	case FloorRelease:
		if req.From == sr.floorHolder {
			sr.releaseFloor()
		}
	case Data:
		if req.From != sr.Lecturer && req.From != sr.floorHolder {
			// Strict monitoring and control of the traffic over the
			// channel (Section 4.1): non-holders are refused.
			sr.Metrics.RefusedNoFloor++
			return
		}
		sr.relay(req.From, req.Size, req.Payload)
	}
}

// requestFloor queues the member and grants when the floor is free ("the
// SR can ensure that one question is transmitted to the audience at a
// time").
func (sr *SR) requestFloor(m addr.Addr) {
	if sr.policy.MaxQuestionsPerMember > 0 && sr.granted[m] >= sr.policy.MaxQuestionsPerMember {
		sr.Metrics.FloorDenials++
		return
	}
	for _, q := range sr.floorQueue {
		if q == m {
			return // already queued
		}
	}
	if sr.floorHolder == m {
		return
	}
	sr.floorQueue = append(sr.floorQueue, m)
	sr.grantNext()
}

func (sr *SR) grantNext() {
	if sr.floorHolder != 0 || len(sr.floorQueue) == 0 {
		return
	}
	sr.floorHolder = sr.floorQueue[0]
	sr.floorQueue = sr.floorQueue[1:]
	sr.granted[sr.floorHolder]++
	sr.Metrics.FloorGrants++
	if sr.policy.MaxFloorTime > 0 {
		holder := sr.floorHolder
		sr.floorTimer = sr.src.Node().Sim().After(sr.policy.MaxFloorTime, func() {
			if sr.floorHolder == holder {
				sr.releaseFloor()
			}
		})
	}
}

func (sr *SR) releaseFloor() {
	if sr.floorTimer != nil {
		sr.floorTimer.Stop()
		sr.floorTimer = nil
	}
	sr.floorHolder = 0
	sr.grantNext()
}

// FloorHolder returns the member currently holding the floor (0 if none).
func (sr *SR) FloorHolder() addr.Addr { return sr.floorHolder }

// relay stamps and multicasts content on the session channel.
func (sr *SR) relay(from addr.Addr, size int, payload any) {
	sr.seq++
	rp := &RelayedPacket{Seq: sr.seq, From: from, Payload: payload}
	if err := sr.src.Send(sr.ch, size, rp); err != nil {
		panic(fmt.Sprintf("relay: SR cannot send on own channel: %v", err))
	}
	sr.Metrics.Relayed++
	if sr.OnRelay != nil {
		sr.OnRelay(rp)
	}
}
