package relay

import (
	"testing"

	"repro/internal/ecmp"
	"repro/internal/netsim"
	"repro/internal/testutil"
)

// lecture builds a session: SR host on the hub of a star, participants on
// the spokes.
func lecture(t *testing.T, spokes int, policy FloorPolicy) (*testutil.Net, *SR, []*Participant) {
	t.Helper()
	n := testutil.StarNet(41, spokes, ecmp.DefaultConfig())
	srHost, _, hubIf := netsim.AttachHost(n.Sim, n.Routers[0].Node(), 90, netsim.DefaultLAN)
	n.Routers[0].SetIfaceMode(hubIf, ecmp.ModeUDP)
	sr, ch, err := New(srHost, policy)
	if err != nil {
		t.Fatal(err)
	}
	sr.Lecturer = srHost.Addr

	var parts []*Participant
	for i := 1; i <= spokes; i++ {
		h, _, rIf := netsim.AttachHost(n.Sim, n.Routers[i].Node(), 100+i, netsim.DefaultLAN)
		n.Routers[i].SetIfaceMode(rIf, ecmp.ModeUDP)
		parts = append(parts, Join(h, srHost.Addr, ch))
	}
	n.Start()
	n.Sim.RunUntil(500 * netsim.Millisecond) // let subscriptions settle
	return n, sr, parts
}

func TestLecturerBroadcast(t *testing.T) {
	n, sr, parts := lecture(t, 4, FloorPolicy{})
	n.Sim.After(0, func() { sr.SendPrimary(1200, "slide-1") })
	n.Sim.RunUntil(n.Sim.Now() + netsim.Second)

	for i, p := range parts {
		if p.Received != 1 {
			t.Errorf("participant %d received = %d, want 1", i, p.Received)
		}
	}
	if sr.Metrics.Relayed != 1 {
		t.Errorf("relayed = %d, want 1", sr.Metrics.Relayed)
	}
}

func TestFloorControl(t *testing.T) {
	n, sr, parts := lecture(t, 3, FloorPolicy{MaxQuestionsPerMember: 1})

	// Without the floor, a participant's data is refused.
	n.Sim.After(0, func() { parts[0].Say(500, "heckle") })
	n.Sim.RunUntil(n.Sim.Now() + netsim.Second)
	if sr.Metrics.RefusedNoFloor != 1 {
		t.Errorf("refused = %d, want 1", sr.Metrics.RefusedNoFloor)
	}
	if parts[1].Received != 0 {
		t.Errorf("heckle was relayed to participant 1")
	}

	// Two participants request the floor; only the first speaks, and the
	// second gets it after release — one question at a time.
	n.Sim.After(0, func() {
		parts[0].RequestFloor()
		parts[1].RequestFloor()
	})
	n.Sim.RunUntil(n.Sim.Now() + netsim.Second)
	if got := sr.FloorHolder(); got != parts[0].Node().Addr {
		t.Fatalf("floor holder = %v, want participant 0", got)
	}

	n.Sim.After(0, func() { parts[1].Say(500, "out-of-turn") })
	n.Sim.RunUntil(n.Sim.Now() + netsim.Second)
	if sr.Metrics.RefusedNoFloor != 2 {
		t.Errorf("queued (non-holder) participant's data was relayed")
	}

	n.Sim.After(0, func() { parts[0].Say(500, "question-1") })
	n.Sim.RunUntil(n.Sim.Now() + netsim.Second)
	if parts[2].Received != 1 {
		t.Errorf("floor holder's question not relayed: received = %d", parts[2].Received)
	}

	n.Sim.After(0, func() { parts[0].ReleaseFloor() })
	n.Sim.RunUntil(n.Sim.Now() + netsim.Second)
	if got := sr.FloorHolder(); got != parts[1].Node().Addr {
		t.Errorf("floor holder after release = %v, want participant 1", got)
	}

	// Quota: participant 0 already used its one question.
	n.Sim.After(0, func() { parts[0].RequestFloor() })
	n.Sim.RunUntil(n.Sim.Now() + netsim.Second)
	if sr.Metrics.FloorDenials != 1 {
		t.Errorf("quota not enforced: denials = %d, want 1", sr.Metrics.FloorDenials)
	}
}

func TestSequenceNumbersDetectLoss(t *testing.T) {
	n, sr, parts := lecture(t, 2, FloorPolicy{})

	// Drop every 3rd packet on participant 0's spoke link.
	link := findEdgeLink(n, parts[0].Node())
	if link == nil {
		t.Fatal("no edge link found")
	}
	link.LossEvery = 3

	for i := 0; i < 9; i++ {
		d := netsim.Time(i+1) * 50 * netsim.Millisecond
		n.Sim.After(d, func() { sr.SendPrimary(800, "frame") })
	}
	n.Sim.RunUntil(n.Sim.Now() + 5*netsim.Second)

	if parts[0].Missed == 0 {
		t.Error("sequence numbers detected no loss on the lossy branch")
	}
	if parts[1].Missed != 0 {
		t.Errorf("lossless participant missed %d", parts[1].Missed)
	}
	if parts[1].Received != 9 {
		t.Errorf("lossless participant received %d, want 9", parts[1].Received)
	}
}

// findEdgeLink locates the host's access link.
func findEdgeLink(n *testutil.Net, host *netsim.Node) *netsim.Link {
	for _, l := range n.Sim.Links() {
		a, _, b, _ := l.Ends()
		if a == host || b == host {
			return l
		}
	}
	return nil
}

func TestSecondarySourceSwitchover(t *testing.T) {
	n, sr, parts := lecture(t, 3, FloorPolicy{})

	// A long-talking secondary source creates its own channel and the SR
	// announces it; participants subscribe and receive directly.
	secondary := parts[0]
	// Reuse the participant's host as an EXPRESS source for its direct
	// channel: channels are (host, E), so any host can source one.
	directCh, err := secondary.Subscriber().NodeChannel(7)
	if err != nil {
		t.Fatal(err)
	}
	n.Sim.After(0, func() { sr.AnnounceNewSource(directCh) })
	n.Sim.RunUntil(n.Sim.Now() + netsim.Second)

	for i, p := range parts {
		if !p.Subscriber().Subscribed(directCh) {
			t.Errorf("participant %d did not follow the announcement", i)
		}
	}

	// The secondary sends on its direct channel; others receive without SR
	// relaying.
	before := sr.Metrics.Relayed
	n.Sim.After(0, func() { secondary.Subscriber().SendOn(directCh, 900, "long-talk") })
	n.Sim.RunUntil(n.Sim.Now() + netsim.Second)
	if parts[1].Received == 0 || parts[2].Received == 0 {
		t.Errorf("direct-channel data not received: %d/%d", parts[1].Received, parts[2].Received)
	}
	if sr.Metrics.Relayed != before {
		t.Error("direct-channel data passed through the SR")
	}
}

func TestSessionSizeCount(t *testing.T) {
	n, sr, parts := lecture(t, 5, FloorPolicy{})
	var got uint32
	var ok bool
	n.Sim.After(0, func() {
		sr.SessionSize(2*netsim.Second, func(v uint32, replied bool) { got, ok = v, replied })
	})
	n.Sim.RunUntil(n.Sim.Now() + 5*netsim.Second)
	if !ok {
		t.Fatal("SessionSize query timed out")
	}
	if got != uint32(len(parts)) {
		t.Errorf("session size = %d, want %d", got, len(parts))
	}
}
