package relay

import (
	"testing"

	"repro/internal/ecmp"
	"repro/internal/netsim"
	"repro/internal/testutil"
)

// TestServiceReservations verifies the §4.3 ISP-service model: windows on
// one relay cannot overlap, overlapping demand spills to another relay,
// and a full fleet rejects further bookings.
func TestServiceReservations(t *testing.T) {
	n := testutil.StarNet(45, 2, ecmp.DefaultConfig())
	h1, _, i1 := netsim.AttachHost(n.Sim, n.Routers[0].Node(), 80, netsim.DefaultLAN)
	n.Routers[0].SetIfaceMode(i1, ecmp.ModeUDP)
	h2, _, i2 := netsim.AttachHost(n.Sim, n.Routers[1].Node(), 81, netsim.DefaultLAN)
	n.Routers[1].SetIfaceMode(i2, ecmp.ModeUDP)
	svc := NewService(n.Sim, []*netsim.Node{h1, h2}, FloorPolicy{})

	a, err := svc.Reserve(0, 10*netsim.Second)
	if err != nil {
		t.Fatal(err)
	}
	b, err := svc.Reserve(5*netsim.Second, 15*netsim.Second) // overlaps a
	if err != nil {
		t.Fatal(err)
	}
	if a.Relay == b.Relay {
		t.Fatal("overlapping leases booked onto the same relay")
	}
	if _, err := svc.Reserve(7*netsim.Second, 9*netsim.Second); err == nil {
		t.Fatal("triple-booked a two-relay fleet")
	}
	// A disjoint window reuses relay 1.
	c, err := svc.Reserve(20*netsim.Second, 30*netsim.Second)
	if err != nil {
		t.Fatal(err)
	}
	if c.Relay != a.Relay {
		t.Errorf("disjoint lease went to %v, expected reuse of %v", c.Relay, a.Relay)
	}
}

// TestServiceLeaseLifecycle verifies activation and expiry on the clock:
// the SR relays only inside the contracted window.
func TestServiceLeaseLifecycle(t *testing.T) {
	n := testutil.StarNet(46, 3, ecmp.DefaultConfig())
	srHost, _, hubIf := netsim.AttachHost(n.Sim, n.Routers[0].Node(), 80, netsim.DefaultLAN)
	n.Routers[0].SetIfaceMode(hubIf, ecmp.ModeUDP)
	svc := NewService(n.Sim, []*netsim.Node{srHost}, FloorPolicy{})

	lease, err := svc.Reserve(2*netsim.Second, 6*netsim.Second)
	if err != nil {
		t.Fatal(err)
	}
	// A participant subscribes ahead of the event (the channel address was
	// advertised with the booking).
	pHost, _, rIf := netsim.AttachHost(n.Sim, n.Routers[1].Node(), 81, netsim.DefaultLAN)
	n.Routers[1].SetIfaceMode(rIf, ecmp.ModeUDP)
	p := Join(pHost, lease.Relay, lease.Channel)
	n.Start()

	// Before the window: the SR refuses to relay (no lecturer configured).
	n.Sim.At(netsim.Second, func() { p.Say(100, "early") })
	// Inside the window: relaying works.
	n.Sim.At(3*netsim.Second, func() {
		if !lease.Active() {
			t.Error("lease not active inside its window")
		}
		lease.SR().SendPrimary(100, "on-time")
	})
	n.Sim.RunUntil(5 * netsim.Second)
	if p.Received != 1 {
		t.Errorf("received = %d, want 1 (only the in-window packet)", p.Received)
	}
	n.Sim.RunUntil(8 * netsim.Second)
	if lease.Active() {
		t.Error("lease still active after expiry")
	}
	if svc.ActiveLeases() != 0 {
		t.Errorf("active leases = %d after expiry", svc.ActiveLeases())
	}
}
