package relay

import (
	"testing"

	"repro/internal/ecmp"
	"repro/internal/netsim"
	"repro/internal/testutil"
)

// standbySession builds a primary and a backup SR on a line topology with
// one standby participant at the far end.
func standbySession(t *testing.T, seed int64, mode StandbyMode, watchdog netsim.Time) (*testutil.Net, *SR, *SR, *StandbyParticipant) {
	t.Helper()
	n := testutil.LineNet(seed, 6, ecmp.DefaultConfig())
	priHost, _, i0 := netsim.AttachHost(n.Sim, n.Routers[0].Node(), 90, netsim.DefaultLAN)
	n.Routers[0].SetIfaceMode(i0, ecmp.ModeUDP)
	bakHost, _, i1 := netsim.AttachHost(n.Sim, n.Routers[1].Node(), 91, netsim.DefaultLAN)
	n.Routers[1].SetIfaceMode(i1, ecmp.ModeUDP)

	pri, priCh, err := New(priHost, FloorPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	bak, bakCh, err := New(bakHost, FloorPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	subHost, _, i2 := netsim.AttachHost(n.Sim, n.Routers[5].Node(), 92, netsim.DefaultLAN)
	n.Routers[5].SetIfaceMode(i2, ecmp.ModeUDP)
	sp := JoinWithStandby(subHost, priHost.Addr, priCh, StandbyConfig{
		Mode: mode, BackupAddr: bakHost.Addr, BackupChannel: bakCh, Watchdog: watchdog,
	})
	n.Start()
	n.Sim.RunUntil(500 * netsim.Millisecond)
	return n, pri, bak, sp
}

// TestWatchdogRearmsOnEveryArrival is the standby regression: a primary
// streaming steadily at a cadence well inside the watchdog interval must
// keep re-arming it indefinitely — across many multiples of the watchdog —
// and fail-over must happen only after genuine primary silence.
func TestWatchdogRearmsOnEveryArrival(t *testing.T) {
	const watchdog = 2 * netsim.Second
	n, pri, bak, sp := standbySession(t, 57, Hot, watchdog)

	// Primary ticks every 500 ms for 20 s — ten watchdog intervals.
	const ticks = 40
	for i := 0; i < ticks; i++ {
		n.Sim.At(netsim.Time(i)*500*netsim.Millisecond+netsim.Second, func() { pri.SendPrimary(500, "tick") })
	}
	// Backup streams throughout: its traffic must never feed the watchdog.
	for i := 0; i < 400; i++ {
		n.Sim.At(netsim.Time(i)*100*netsim.Millisecond+netsim.Second, func() { bak.SendPrimary(500, "bak") })
	}
	lastPrimaryAt := netsim.Time(ticks-1)*500*netsim.Millisecond + netsim.Second

	n.Sim.RunUntil(lastPrimaryAt)
	if sp.FailedOver() {
		t.Fatalf("failed over at %v while the primary was streaming", sp.FailedOverAt)
	}
	n.Sim.RunUntil(lastPrimaryAt + 4*watchdog)
	if !sp.FailedOver() {
		t.Fatal("never failed over after primary fell silent")
	}
	// Fail-over must come one watchdog interval after the LAST primary
	// packet, not after join: the deadline re-arms on every arrival.
	if sp.FailedOverAt < lastPrimaryAt+watchdog {
		t.Errorf("failed over at %v, before silence reached the watchdog (last primary %v + %v)",
			sp.FailedOverAt, lastPrimaryAt, watchdog)
	}
	if sp.FailedOverAt > lastPrimaryAt+2*watchdog {
		t.Errorf("failed over at %v, more than 2 watchdog intervals after last primary %v",
			sp.FailedOverAt, lastPrimaryAt)
	}
	if sp.FirstBackupData == 0 {
		t.Fatal("no backup data after hot fail-over")
	}
}

// TestStandbyFailOverHotAndCold checks both Section 4.2 modes end to end
// and the expected ordering: hot (pre-subscribed) resumes no slower than
// cold (join-after-failure) on the same topology and cadence.
func TestStandbyFailOverHotAndCold(t *testing.T) {
	gaps := map[StandbyMode]netsim.Time{}
	for _, mode := range []StandbyMode{Hot, Cold} {
		const watchdog = 2 * netsim.Second
		n, pri, bak, sp := standbySession(t, 58, mode, watchdog)
		for i := 0; i < 5; i++ {
			n.Sim.At(netsim.Time(i)*500*netsim.Millisecond+netsim.Second, func() { pri.SendPrimary(500, "tick") })
		}
		for i := 0; i < 2000; i++ {
			n.Sim.At(netsim.Time(i)*20*netsim.Millisecond+netsim.Second, func() { bak.SendPrimary(500, "tick") })
		}
		n.Sim.RunUntil(60 * netsim.Second)
		if !sp.FailedOver() {
			t.Fatalf("%v standby never failed over", mode)
		}
		if sp.FirstBackupData == 0 {
			t.Fatalf("%v standby got no backup data", mode)
		}
		if sp.FirstBackupData < sp.FailedOverAt {
			t.Fatalf("%v: backup data at %v precedes fail-over at %v", mode, sp.FirstBackupData, sp.FailedOverAt)
		}
		gaps[mode] = sp.FirstBackupData - sp.FailedOverAt
	}
	if gaps[Cold] < gaps[Hot] {
		t.Errorf("cold gap %v < hot gap %v; pre-subscription should not lose", gaps[Cold], gaps[Hot])
	}
}
