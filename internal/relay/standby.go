package relay

import (
	"repro/internal/addr"
	"repro/internal/netsim"
)

// Standby implements the backup-SR fail-over of Section 4.2: the
// application controls the number, placement and switch-over policy of
// backup relays, and chooses between "hot" standby (participants
// pre-subscribe to the backup channel for faster fail-over) and "cold"
// standby (the backup channel is only joined after the primary fails,
// saving on expected channel charging).
type StandbyMode uint8

const (
	Hot StandbyMode = iota
	Cold
)

func (m StandbyMode) String() string {
	if m == Hot {
		return "hot"
	}
	return "cold"
}

// StandbyConfig wires a participant to a backup SR.
type StandbyConfig struct {
	Mode StandbyMode
	// BackupAddr and BackupChannel identify the backup relay.
	BackupAddr    addr.Addr
	BackupChannel addr.Channel
	// Watchdog is how long primary silence is tolerated before fail-over.
	Watchdog netsim.Time
}

// StandbyParticipant extends Participant with fail-over.
type StandbyParticipant struct {
	*Participant
	cfg StandbyConfig

	// FailedOverAt is when the participant switched to the backup (0 if
	// the primary never failed).
	FailedOverAt netsim.Time
	// FirstBackupData is when the first packet arrived via the backup
	// channel; FirstBackupData − FailedOverAt is the fail-over gap the
	// hot/cold choice trades against channel cost.
	FirstBackupData netsim.Time

	failedOver bool
	// lastPrimary is the arrival time of the most recent primary-channel
	// packet — the deadline watchdog's liveness evidence. Every arrival
	// re-arms the watchdog by refreshing this stamp; the single timer
	// checks it on expiry and re-schedules for the remainder when the
	// primary proved alive in the meantime. One timer per watchdog window
	// instead of one per packet, and no Stop calls on fired timers.
	lastPrimary netsim.Time
}

// JoinWithStandby joins a session with a configured backup relay.
func JoinWithStandby(host *netsim.Node, srAddr addr.Addr, ch addr.Channel, cfg StandbyConfig) *StandbyParticipant {
	sp := &StandbyParticipant{cfg: cfg}
	sp.Participant = Join(host, srAddr, ch)
	if cfg.Mode == Hot {
		// Hot standby: pre-subscribe to the backup channel now, paying its
		// state cost up front.
		sp.sub.Subscribe(cfg.BackupChannel, nil, nil)
	}
	inner := sp.Participant.sub.OnData
	sp.sub.OnData = func(c addr.Channel, pkt *netsim.Packet) {
		if c == cfg.BackupChannel {
			if sp.failedOver && sp.FirstBackupData == 0 {
				sp.FirstBackupData = host.Sim().Now()
			}
			if sp.failedOver {
				inner(c, pkt)
			}
			return // backup traffic is ignored until fail-over, and it
			// never feeds the watchdog: only primary arrivals prove the
			// primary alive
		}
		sp.lastPrimary = host.Sim().Now()
		inner(c, pkt)
	}
	sp.lastPrimary = host.Sim().Now()
	sp.armWatchdog(cfg.Watchdog)
	return sp
}

// FailedOver reports whether the participant switched to the backup.
func (sp *StandbyParticipant) FailedOver() bool { return sp.failedOver }

// armWatchdog schedules the single liveness check d from now. On expiry,
// if a primary packet arrived inside the window the timer re-arms for the
// remainder of that packet's Watchdog allowance; only genuine silence of a
// full Watchdog interval fails over. Data arrivals just stamp lastPrimary,
// so a bursty primary costs no timer churn at all.
func (sp *StandbyParticipant) armWatchdog(d netsim.Time) {
	if sp.failedOver || sp.cfg.Watchdog <= 0 {
		return
	}
	sim := sp.sub.Node().Sim()
	sim.After(d, func() {
		if sp.failedOver {
			return
		}
		idle := sim.Now() - sp.lastPrimary
		if idle < sp.cfg.Watchdog {
			sp.armWatchdog(sp.cfg.Watchdog - idle)
			return
		}
		sp.failOver()
	})
}

// failOver switches to the backup relay: hot standby already has the
// subscription in place; cold standby must build the branch now.
func (sp *StandbyParticipant) failOver() {
	if sp.failedOver {
		return
	}
	sp.failedOver = true
	sp.FailedOverAt = sp.sub.Node().Sim().Now()
	sp.sr = sp.cfg.BackupAddr
	if sp.cfg.Mode == Cold {
		sp.sub.Subscribe(sp.cfg.BackupChannel, nil, nil)
	}
	sp.sub.Unsubscribe(sp.ch)
	sp.ch = sp.cfg.BackupChannel
}
