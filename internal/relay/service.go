package relay

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/addr"
	"repro/internal/netsim"
)

// Service implements Section 4.3, "Session Relaying as an ISP Service":
// an ISP provides well-positioned session-relay servers and applications
// contract for an SR channel for a given period of time, "similar to the
// way that conventional satellite time is reserved or purchased".
//
// The service manages a fleet of SR hosts and a reservation book: a
// customer leases one relay for a time window; overlapping leases go to
// different relays; the lease activates and expires automatically on the
// simulation clock.
type Service struct {
	sim    *netsim.Sim
	relays []*serviceRelay
	nextID int
}

type serviceRelay struct {
	host   *netsim.Node
	policy FloorPolicy
	leases []*Lease
}

// Lease is one reservation of a relay for a time window.
type Lease struct {
	ID       int
	Relay    addr.Addr
	Channel  addr.Channel
	From, To netsim.Time
	sr       *SR
	active   bool
}

// SR returns the live relay while the lease is active, nil otherwise.
func (l *Lease) SR() *SR { return l.sr }

// Active reports whether the lease window is open.
func (l *Lease) Active() bool { return l.active }

// ErrNoCapacity is returned when every relay is booked for the window.
var ErrNoCapacity = errors.New("relay: no relay available for the requested window")

// NewService builds a relay service over the given SR hosts (the ISP
// places them "near the topological center" of its network, Section 4.2).
func NewService(sim *netsim.Sim, hosts []*netsim.Node, policy FloorPolicy) *Service {
	s := &Service{sim: sim}
	for _, h := range hosts {
		s.relays = append(s.relays, &serviceRelay{host: h, policy: policy})
	}
	return s
}

// Reserve books a relay for [from, to). The relay's channel is allocated
// immediately (so the customer can advertise it with the event, Section
// 4.1) but relaying only works inside the window.
func (s *Service) Reserve(from, to netsim.Time) (*Lease, error) {
	if to <= from {
		return nil, fmt.Errorf("relay: bad window [%v, %v)", from, to)
	}
	for _, r := range s.relays {
		if r.freeDuring(from, to) {
			s.nextID++
			sr, ch, err := New(r.host, r.policy)
			if err != nil {
				return nil, err
			}
			lease := &Lease{
				ID: s.nextID, Relay: r.host.Addr, Channel: ch,
				From: from, To: to, sr: sr,
			}
			r.leases = append(r.leases, lease)
			sort.Slice(r.leases, func(i, j int) bool { return r.leases[i].From < r.leases[j].From })
			s.sim.At(from, func() { lease.active = true })
			s.sim.At(to, func() {
				lease.active = false
				lease.sr = nil
			})
			// Outside the window the SR refuses to relay: wrap the floor
			// policy check by clearing the lecturer until activation.
			sr.Lecturer = 0
			s.sim.At(from, func() {
				if lease.sr != nil {
					lease.sr.Lecturer = r.host.Addr
				}
			})
			return lease, nil
		}
	}
	return nil, ErrNoCapacity
}

// freeDuring reports whether the relay has no overlapping lease.
func (r *serviceRelay) freeDuring(from, to netsim.Time) bool {
	for _, l := range r.leases {
		if from < l.To && l.From < to {
			return false
		}
	}
	return true
}

// Capacity returns the number of relays in the fleet.
func (s *Service) Capacity() int { return len(s.relays) }

// ActiveLeases counts currently active leases.
func (s *Service) ActiveLeases() int {
	n := 0
	for _, r := range s.relays {
		for _, l := range r.leases {
			if l.active {
				n++
			}
		}
	}
	return n
}
