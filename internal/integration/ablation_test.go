package integration

import (
	"math/rand"
	"testing"

	"repro/internal/addr"
	"repro/internal/ecmp"
	"repro/internal/express"
	"repro/internal/netsim"
	"repro/internal/testutil"
	"repro/internal/workload"
)

// TestTCPModeVsUDPModeRefreshCost is the Section 3.2 mode ablation: "With
// TCP operation, a periodic refresh of each long-lived channel is
// unnecessary — a single per-neighbor keepalive is sufficient", whereas
// UDP mode pays a per-interval query/response cycle that grows with the
// number of channels.
func TestTCPModeVsUDPModeRefreshCost(t *testing.T) {
	const channels = 30
	run := func(routerMode ecmp.Mode) uint64 {
		cfg := ecmp.DefaultConfig()
		cfg.QueryInterval = 2 * netsim.Second
		cfg.HoldTime = 5 * netsim.Second
		cfg.KeepaliveInterval = 2 * netsim.Second
		n := testutil.LineNet(81, 3, cfg)
		defer n.Close()
		// Router-to-router interfaces get the mode under test; host edges
		// stay UDP (hosts answer queries but don't speak keepalives).
		for _, r := range n.Routers {
			for i := 0; i < r.Node().NumIfaces(); i++ {
				r.SetIfaceMode(i, routerMode)
			}
		}
		src := n.AddSource(n.Routers[0])
		sub := n.AddSubscriber(n.Routers[2])
		n.Start()
		cs := make([]addr.Channel, 0, channels)
		for i := 0; i < channels; i++ {
			cs = append(cs, testutil.MustChannel(src))
		}
		n.Sim.At(0, func() {
			for _, ch := range cs {
				sub.Subscribe(ch, nil, nil)
			}
		})
		// Long steady state: all cost beyond setup is refresh traffic.
		n.Sim.RunUntil(120 * netsim.Second)
		// Membership must survive in both modes.
		if got := n.Routers[0].SubscriberCount(cs[0]); got != 1 {
			t.Fatalf("mode %v: membership lost (count=%d)", routerMode, got)
		}
		return n.TotalControlMessages()
	}
	tcp := run(ecmp.ModeTCP)
	udp := run(ecmp.ModeUDP)
	if tcp >= udp {
		t.Errorf("TCP-mode control traffic (%d msgs) not below UDP mode (%d) for %d long-lived channels",
			tcp, udp, channels)
	}
	// TCP cost is per-neighbor keepalives, independent of channel count;
	// UDP cost includes per-channel refreshes. The gap should be large.
	if udp < 2*tcp {
		t.Logf("note: UDP %d vs TCP %d — expected a wider gap", udp, tcp)
	}
}

// TestRandomChurnInvariants drives randomized membership churn and checks
// the protocol's global invariants at quiescence — a property test over
// the whole router network:
//
//  1. the source's first-hop count equals the true membership (eager mode);
//  2. every on-tree router's FIB has a valid incoming interface;
//  3. when everyone has left, no state remains anywhere.
func TestRandomChurnInvariants(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		seed := seed
		t.Run("", func(t *testing.T) {
			cfg := ecmp.DefaultConfig()
			cfg.Propagation = ecmp.PropagateEager
			cfg.QueryInterval = 3600 * netsim.Second
			cfg.KeepaliveInterval = 3600 * netsim.Second
			n := testutil.GridNet(seed, 4, 4, cfg)
			defer n.Close()
			src := n.AddSource(n.Routers[0])
			rng := rand.New(rand.NewSource(seed))
			subs := make([]*express.Subscriber, 12)
			for i := range subs {
				subs[i] = n.AddSubscriber(n.Routers[rng.Intn(len(n.Routers))])
			}
			n.Start()
			ch := testutil.MustChannel(src)

			script := workload.Churn(len(subs), 20, 10*netsim.Second, rng)
			joined := make(map[int]bool)
			for _, ev := range script {
				e := ev
				joined[e.Host] = e.Join
				n.Sim.At(e.At, func() {
					if e.Join {
						subs[e.Host].Subscribe(ch, nil, nil)
					} else {
						subs[e.Host].Unsubscribe(ch)
					}
				})
			}
			n.Sim.RunUntil(15 * netsim.Second)

			want := uint32(0)
			for _, j := range joined {
				if j {
					want++
				}
			}
			if got := n.Routers[0].SubscriberCount(ch); got != want {
				t.Errorf("seed %d: first-hop count = %d, want %d", seed, got, want)
			}

			// Data reaches exactly the current members.
			n.Sim.After(0, func() { _ = src.Send(ch, 200, nil) })
			n.Sim.RunUntil(n.Sim.Now() + netsim.Second)
			for i, s := range subs {
				wantPkts := uint64(0)
				if joined[i] {
					wantPkts = 1
				}
				if s.Delivered != wantPkts {
					t.Errorf("seed %d: host %d delivered %d, want %d", seed, i, s.Delivered, wantPkts)
				}
			}

			// Everyone leaves: zero residue network-wide.
			n.Sim.After(0, func() {
				for i, s := range subs {
					if joined[i] {
						s.Unsubscribe(ch)
					}
				}
			})
			n.Sim.RunUntil(n.Sim.Now() + 5*netsim.Second)
			if got := n.TotalFIBEntries(); got != 0 {
				t.Errorf("seed %d: %d FIB entries after full teardown", seed, got)
			}
			for i, r := range n.Routers {
				if r.NumChannels() != 0 {
					t.Errorf("seed %d: router %d holds %d channels after teardown", seed, i, r.NumChannels())
				}
			}
		})
	}
}

// TestSubscribersOnSharedLAN exercises the broadcast-segment path: several
// hosts and their first-hop router on one LAN, UDP-mode ECMP (the edge
// deployment of Section 3.2).
func TestSubscribersOnSharedLAN(t *testing.T) {
	cfg := ecmp.DefaultConfig()
	cfg.QueryInterval = 2 * netsim.Second
	cfg.HoldTime = 5 * netsim.Second
	n := testutil.LineNet(83, 2, cfg)
	src := n.AddSource(n.Routers[0])

	lan := n.Sim.NewLAN(100*netsim.Microsecond, 100_000_000, 1)
	edgeIf := lan.Attach(n.Routers[1].Node())
	n.Routers[1].SetIfaceMode(edgeIf, ecmp.ModeUDP)
	h1 := n.AddSubscriberOnLAN(lan)
	h2 := n.AddSubscriberOnLAN(lan)
	h3 := n.AddSubscriberOnLAN(lan) // never subscribes
	n.Start()

	ch := testutil.MustChannel(src)
	n.Sim.At(0, func() {
		h1.Subscribe(ch, nil, nil)
		h2.Subscribe(ch, nil, nil)
	})
	n.Sim.RunUntil(netsim.Second)
	n.Sim.After(0, func() { _ = src.Send(ch, 500, nil) })
	n.Sim.RunUntil(2 * netsim.Second)

	if h1.Delivered != 1 || h2.Delivered != 1 {
		t.Errorf("LAN subscribers delivered %d/%d, want 1/1", h1.Delivered, h2.Delivered)
	}
	// LAN broadcast reaches h3's NIC, but its stack filters the
	// unsubscribed channel.
	if h3.Delivered != 0 {
		t.Errorf("non-subscriber delivered %d", h3.Delivered)
	}

	// One member leaving must not tear down the LAN's membership: the
	// group-specific re-query finds the remaining member.
	n.Sim.After(0, func() { h1.Unsubscribe(ch) })
	n.Sim.RunUntil(n.Sim.Now() + 10*netsim.Second)
	n.Sim.After(0, func() { _ = src.Send(ch, 500, nil) })
	n.Sim.RunUntil(n.Sim.Now() + netsim.Second)
	if h2.Delivered != 2 {
		t.Errorf("remaining LAN member delivered %d, want 2", h2.Delivered)
	}
}
