package integration

import (
	"testing"

	"repro/internal/ecmp"
	"repro/internal/netsim"
	"repro/internal/testutil"
)

// TestSubcastOnlyFromSource verifies the single-source property of subcast
// (Section 7.1: "with EXPRESS, only the channel source can subcast on a
// channel"). A third party unicasting an encapsulated channel packet to an
// on-tree router must be rejected.
func TestSubcastOnlyFromSource(t *testing.T) {
	n := testutil.TreeNet(47, 2, ecmp.DefaultConfig())
	src := n.AddSource(n.Routers[0])
	sub := n.AddSubscriber(n.Routers[3])
	attacker := n.AddSource(n.Routers[2])
	n.Start()

	ch := testutil.MustChannel(src)
	n.Sim.At(0, func() { sub.Subscribe(ch, nil, nil) })
	n.Sim.RunUntil(netsim.Second)

	// The attacker forges an encapsulated packet whose *inner* source is
	// the real channel source, unicast to the on-tree router above the
	// subscriber. The outer source is the attacker — the router must
	// refuse to decapsulate.
	onTree := n.Routers[1].Node().Addr
	n.Sim.After(0, func() {
		inner := &netsim.Packet{
			Src: ch.S, Dst: ch.E, Proto: netsim.ProtoData,
			TTL: netsim.DefaultTTL, Size: 800, Payload: "forged",
		}
		attacker.Node().SendAll(-1, &netsim.Packet{
			Src: attacker.Node().Addr, Dst: onTree, Proto: netsim.ProtoEncap,
			TTL: netsim.DefaultTTL, Size: 820, Payload: &netsim.Encap{Inner: inner},
		})
	})
	n.Sim.RunUntil(2 * netsim.Second)
	if sub.Delivered != 0 {
		t.Fatalf("forged subcast delivered %d packets", sub.Delivered)
	}

	// The genuine source's subcast through the same router works.
	n.Sim.After(0, func() {
		if err := src.Subcast(ch, onTree, 800, "real"); err != nil {
			t.Errorf("Subcast: %v", err)
		}
	})
	n.Sim.RunUntil(3 * netsim.Second)
	if sub.Delivered != 1 {
		t.Errorf("genuine subcast delivered %d, want 1", sub.Delivered)
	}
}

// TestSubcastOffTreeRouterDropped verifies that a subcast via a router not
// on the channel's tree is dropped (no FIB entry → nothing to forward to).
func TestSubcastOffTreeRouterDropped(t *testing.T) {
	n := testutil.TreeNet(48, 2, ecmp.DefaultConfig())
	src := n.AddSource(n.Routers[0])
	sub := n.AddSubscriber(n.Routers[3]) // left subtree
	n.Start()

	ch := testutil.MustChannel(src)
	n.Sim.At(0, func() { sub.Subscribe(ch, nil, nil) })
	n.Sim.RunUntil(netsim.Second)

	// Router 2 heads the right subtree: not on this channel's tree.
	offTree := n.Routers[2].Node().Addr
	n.Sim.After(0, func() { _ = src.Subcast(ch, offTree, 800, "misdirected") })
	n.Sim.RunUntil(2 * netsim.Second)
	if sub.Delivered != 0 {
		t.Errorf("off-tree subcast delivered %d packets", sub.Delivered)
	}
}
