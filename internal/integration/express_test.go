// Package integration exercises the full EXPRESS stack end to end: hosts,
// ECMP routers, unicast routing and the simulator together.
package integration

import (
	"testing"

	"repro/internal/ecmp"
	"repro/internal/express"
	"repro/internal/netsim"
	"repro/internal/testutil"
	"repro/internal/wire"
)

// TestSubscribeAndDeliver is the core paper scenario: a source at one edge,
// subscribers at the other, data delivered only to subscribers, along the
// source→subscriber unicast paths.
func TestSubscribeAndDeliver(t *testing.T) {
	cfg := ecmp.DefaultConfig()
	cfg.Propagation = ecmp.PropagateEager // interior routers track exact sums
	n := testutil.LineNet(1, 3, cfg)
	src := n.AddSource(n.Routers[0])
	sub1 := n.AddSubscriber(n.Routers[2])
	sub2 := n.AddSubscriber(n.Routers[2])
	sub3 := n.AddSubscriber(n.Routers[1])
	bystander := n.AddSubscriber(n.Routers[1]) // never subscribes
	n.Start()

	ch := testutil.MustChannel(src)
	n.Sim.At(0, func() {
		sub1.Subscribe(ch, nil, nil)
		sub2.Subscribe(ch, nil, nil)
		sub3.Subscribe(ch, nil, nil)
	})
	n.Sim.RunUntil(1 * netsim.Second)

	for i, r := range n.Routers {
		if r.FIB().Len() != 1 {
			t.Fatalf("router %d: FIB entries = %d, want 1", i, r.FIB().Len())
		}
	}
	if got := n.Routers[0].SubscriberCount(ch); got != 3 {
		t.Errorf("first-hop router subscriber count = %d, want 3", got)
	}

	n.Sim.After(0, func() {
		if err := src.Send(ch, 1000, "frame-1"); err != nil {
			t.Errorf("Send: %v", err)
		}
	})
	n.Sim.RunUntil(2 * netsim.Second)

	for i, s := range []*express.Subscriber{sub1, sub2, sub3} {
		if s.Delivered != 1 {
			t.Errorf("subscriber %d delivered = %d, want 1", i, s.Delivered)
		}
	}
	if bystander.Delivered != 0 {
		t.Errorf("non-subscriber delivered = %d, want 0", bystander.Delivered)
	}
}

// TestCountQuery checks the Section 3.1 aggregation: the source learns the
// exact subscriber count with a single query.
func TestCountQuery(t *testing.T) {
	n := testutil.TreeNet(2, 3, ecmp.DefaultConfig()) // depth-3 tree, 8 leaves
	src := n.AddSource(n.Routers[0])
	leaves := n.Routers[len(n.Routers)-8:]
	var subs []*express.Subscriber
	for _, leaf := range leaves {
		subs = append(subs, n.AddSubscriber(leaf), n.AddSubscriber(leaf))
	}
	n.Start()

	ch := testutil.MustChannel(src)
	n.Sim.At(0, func() {
		for _, s := range subs {
			s.Subscribe(ch, nil, nil)
		}
	})
	n.Sim.RunUntil(1 * netsim.Second)

	var got uint32
	var ok bool
	n.Sim.After(0, func() {
		src.CountQuery(ch, wire.CountSubscribers, 2*netsim.Second, false, func(v uint32, replied bool) {
			got, ok = v, replied
		})
	})
	n.Sim.RunUntil(5 * netsim.Second)

	if !ok {
		t.Fatal("CountQuery timed out with no reply")
	}
	if got != uint32(len(subs)) {
		t.Errorf("CountQuery = %d, want %d", got, len(subs))
	}
}

// TestUnsubscribeTeardown verifies that the last unsubscription tears the
// whole tree down: zero Counts propagate to the source and all FIB and
// channel state is reclaimed.
func TestUnsubscribeTeardown(t *testing.T) {
	n := testutil.LineNet(3, 4, ecmp.DefaultConfig())
	src := n.AddSource(n.Routers[0])
	sub1 := n.AddSubscriber(n.Routers[3])
	sub2 := n.AddSubscriber(n.Routers[3])
	n.Start()

	ch := testutil.MustChannel(src)
	n.Sim.At(0, func() {
		sub1.Subscribe(ch, nil, nil)
		sub2.Subscribe(ch, nil, nil)
	})
	n.Sim.RunUntil(1 * netsim.Second)
	if n.TotalFIBEntries() != 4 {
		t.Fatalf("FIB entries after subscribe = %d, want 4", n.TotalFIBEntries())
	}

	n.Sim.After(0, func() { sub1.Unsubscribe(ch) })
	n.Sim.RunUntil(2 * netsim.Second)
	if n.TotalFIBEntries() != 4 {
		t.Errorf("FIB entries after partial unsubscribe = %d, want 4 (sub2 still on)", n.TotalFIBEntries())
	}

	// Data should still reach the remaining subscriber.
	n.Sim.After(0, func() { src.Send(ch, 100, nil) })
	n.Sim.RunUntil(3 * netsim.Second)
	if sub2.Delivered != 1 {
		t.Errorf("remaining subscriber delivered = %d, want 1", sub2.Delivered)
	}
	if sub1.Delivered != 0 {
		t.Errorf("unsubscribed host delivered = %d, want 0", sub1.Delivered)
	}

	n.Sim.After(0, func() { sub2.Unsubscribe(ch) })
	n.Sim.RunUntil(4 * netsim.Second)
	if n.TotalFIBEntries() != 0 {
		t.Errorf("FIB entries after full unsubscribe = %d, want 0", n.TotalFIBEntries())
	}
	for i, r := range n.Routers {
		if r.NumChannels() != 0 {
			t.Errorf("router %d still holds %d channels", i, r.NumChannels())
		}
	}
}

// TestUnauthorizedSenderDropped verifies the access-control property that
// motivates the paper's Super Bowl example: a third party sending to the
// channel's destination address is counted and dropped at its first-hop
// router (Section 3.4) because (S',E) matches no FIB entry.
func TestUnauthorizedSenderDropped(t *testing.T) {
	n := testutil.LineNet(4, 3, ecmp.DefaultConfig())
	src := n.AddSource(n.Routers[0])
	sub := n.AddSubscriber(n.Routers[2])
	rogue := n.AddSource(n.Routers[1]) // attacker host at a mid-path router
	n.Start()

	ch := testutil.MustChannel(src)
	n.Sim.At(0, func() { sub.Subscribe(ch, nil, nil) })
	n.Sim.RunUntil(1 * netsim.Second)

	// The rogue sends to the victim's channel destination address E with
	// its own source address: the channel (rogue,E) is unrelated to
	// (src,E) — Figure 1's channel-addressing property.
	n.Sim.After(0, func() {
		pkt := &netsim.Packet{
			Src: rogue.Node().Addr, Dst: ch.E, Proto: netsim.ProtoData,
			TTL: netsim.DefaultTTL, Size: 1000,
		}
		rogue.Node().SendAll(-1, pkt)
	})
	n.Sim.RunUntil(2 * netsim.Second)

	if sub.Delivered != 0 {
		t.Fatalf("subscriber received %d rogue packets, want 0", sub.Delivered)
	}
	drops := n.Routers[1].FIB().Stats().UnmatchedDrops
	if drops == 0 {
		t.Error("rogue traffic was not counted-and-dropped at the first-hop router")
	}

	// Spoofing the legitimate source from the wrong place fails the
	// incoming-interface (RPF) check instead.
	n.Sim.After(0, func() {
		pkt := &netsim.Packet{
			Src: ch.S, Dst: ch.E, Proto: netsim.ProtoData,
			TTL: netsim.DefaultTTL, Size: 1000,
		}
		rogue.Node().SendAll(-1, pkt)
	})
	n.Sim.RunUntil(3 * netsim.Second)
	if got := n.Routers[1].FIB().Stats().IIFDrops; got == 0 {
		t.Error("spoofed-source traffic did not fail the RPF incoming-interface check")
	}
	if sub.Delivered != 0 {
		t.Fatalf("subscriber received %d spoofed packets, want 0", sub.Delivered)
	}
}

// TestAuthenticatedSubscription verifies the Section 3.1/3.2 key flow: the
// source installs K(S,E) at its first-hop router; a subscriber with the
// right key joins, one with a wrong key is denied by CountResponse, and the
// denial unwinds the partially built branch.
func TestAuthenticatedSubscription(t *testing.T) {
	n := testutil.LineNet(5, 3, ecmp.DefaultConfig())
	src := n.AddSource(n.Routers[0])
	good := n.AddSubscriber(n.Routers[2])
	bad := n.AddSubscriber(n.Routers[2])
	n.Start()

	ch := testutil.MustChannel(src)
	key := wire.Key{1, 2, 3, 4, 5, 6, 7, 8}
	wrong := wire.Key{9, 9, 9, 9, 9, 9, 9, 9}

	var goodRes, badRes express.SubscribeResult
	var goodDone, badDone bool
	n.Sim.At(0, func() {
		if err := src.ChannelKey(ch, key); err != nil {
			t.Errorf("ChannelKey: %v", err)
		}
	})
	n.Sim.At(100*netsim.Millisecond, func() {
		good.Subscribe(ch, &key, func(r express.SubscribeResult) { goodRes, goodDone = r, true })
	})
	n.Sim.At(5*netsim.Second, func() {
		bad.Subscribe(ch, &wrong, func(r express.SubscribeResult) { badRes, badDone = r, true })
	})
	n.Sim.RunUntil(10 * netsim.Second)

	if !goodDone || goodRes != express.SubscribeOK {
		t.Errorf("good key: done=%v result=%v, want OK", goodDone, goodRes)
	}
	if !badDone || badRes != express.SubscribeDenied {
		t.Errorf("bad key: done=%v result=%v, want Denied", badDone, badRes)
	}

	n.Sim.After(0, func() { src.Send(ch, 500, nil) })
	n.Sim.RunUntil(11 * netsim.Second)
	if good.Delivered != 1 {
		t.Errorf("authorized subscriber delivered = %d, want 1", good.Delivered)
	}
	if bad.Delivered != 0 {
		t.Errorf("denied subscriber delivered = %d, want 0", bad.Delivered)
	}
}

// TestTwoChannelsSameE verifies Figure 1: channels (S,E) and (S',E) are
// unrelated despite the common destination address.
func TestTwoChannelsSameE(t *testing.T) {
	n := testutil.LineNet(6, 3, ecmp.DefaultConfig())
	srcA := n.AddSource(n.Routers[0])
	srcB := n.AddSource(n.Routers[2])
	subA := n.AddSubscriber(n.Routers[1])
	subB := n.AddSubscriber(n.Routers[1])
	n.Start()

	chA, err := srcA.CreateChannelAt(42)
	if err != nil {
		t.Fatal(err)
	}
	chB, err := srcB.CreateChannelAt(42) // same E suffix, different S
	if err != nil {
		t.Fatal(err)
	}
	if chA.E != chB.E {
		t.Fatalf("expected identical destination addresses, got %v vs %v", chA.E, chB.E)
	}

	n.Sim.At(0, func() {
		subA.Subscribe(chA, nil, nil)
		subB.Subscribe(chB, nil, nil)
	})
	n.Sim.RunUntil(1 * netsim.Second)
	n.Sim.After(0, func() {
		srcA.Send(chA, 100, "from-A")
		srcB.Send(chB, 100, "from-B")
	})
	n.Sim.RunUntil(2 * netsim.Second)

	if subA.Delivered != 1 {
		t.Errorf("subA delivered = %d, want 1 (only A's packet)", subA.Delivered)
	}
	if subB.Delivered != 1 {
		t.Errorf("subB delivered = %d, want 1 (only B's packet)", subB.Delivered)
	}
}

// TestSubcast verifies the Section 2.1 subcast: the source relays a packet
// through an internal tree node, and only subscribers below that node
// receive it.
func TestSubcast(t *testing.T) {
	n := testutil.TreeNet(7, 2, ecmp.DefaultConfig()) // 7 routers, leaves 3..6
	src := n.AddSource(n.Routers[0])
	leaves := n.Routers[3:]
	var subs []*express.Subscriber
	for _, leaf := range leaves {
		subs = append(subs, n.AddSubscriber(leaf))
	}
	n.Start()

	ch := testutil.MustChannel(src)
	n.Sim.At(0, func() {
		for _, s := range subs {
			s.Subscribe(ch, nil, nil)
		}
	})
	n.Sim.RunUntil(1 * netsim.Second)

	// Subcast via router 1 (the left child): only the two left-subtree
	// leaves (routers 3 and 4) should receive.
	n.Sim.After(0, func() {
		if err := src.Subcast(ch, n.Routers[1].Node().Addr, 400, "partial"); err != nil {
			t.Errorf("Subcast: %v", err)
		}
	})
	n.Sim.RunUntil(2 * netsim.Second)

	for i, s := range subs {
		want := uint64(0)
		if i < 2 {
			want = 1
		}
		if s.Delivered != want {
			t.Errorf("leaf %d delivered = %d, want %d", i, s.Delivered, want)
		}
	}
}
