package netsim

import (
	"testing"

	"repro/internal/addr"
)

func TestEventOrderingDeterministic(t *testing.T) {
	s := New(1)
	var order []int
	// Same timestamp: insertion order must win, every run.
	for i := 0; i < 10; i++ {
		i := i
		s.At(5*Millisecond, func() { order = append(order, i) })
	}
	s.At(Millisecond, func() { order = append(order, -1) })
	s.Run()
	if order[0] != -1 {
		t.Fatal("earlier event did not run first")
	}
	for i := 0; i < 10; i++ {
		if order[i+1] != i {
			t.Fatalf("tie-break violated insertion order: %v", order)
		}
	}
}

func TestTimerStop(t *testing.T) {
	s := New(1)
	fired := false
	tm := s.After(Second, func() { fired = true })
	if !tm.Stop() {
		t.Error("Stop returned false on a pending timer")
	}
	if tm.Stop() {
		t.Error("second Stop returned true")
	}
	s.Run()
	if fired {
		t.Error("cancelled timer fired")
	}
	var nilTimer *Timer
	if nilTimer.Stop() {
		t.Error("nil timer Stop returned true")
	}
}

func TestRunUntilAdvancesClock(t *testing.T) {
	s := New(1)
	ran := false
	s.At(2*Second, func() { ran = true })
	s.RunUntil(Second)
	if ran {
		t.Error("future event ran early")
	}
	if s.Now() != Second {
		t.Errorf("Now = %v, want 1s", s.Now())
	}
	s.RunUntil(3 * Second)
	if !ran {
		t.Error("event did not run")
	}
}

func TestSchedulingInPastRunsNow(t *testing.T) {
	s := New(1)
	var at Time
	s.At(Second, func() {
		s.At(0, func() { at = s.Now() }) // in the past
	})
	s.Run()
	if at != Second {
		t.Errorf("past-scheduled event ran at %v, want 1s", at)
	}
}

func TestLinkDelayAndBandwidth(t *testing.T) {
	s := New(1)
	a := s.AddNode(addr.MustParse("10.0.0.1"), "a")
	b := s.AddNode(addr.MustParse("10.0.0.2"), "b")
	// 10 ms propagation, 1 Mbit/s: a 1250-byte packet serialises in 10 ms.
	s.Connect(a, b, 10*Millisecond, 1_000_000, 1)

	var arrive []Time
	b.Handler = handlerFunc(func(ifindex int, pkt *Packet) { arrive = append(arrive, s.Now()) })

	s.At(0, func() {
		a.Send(0, &Packet{Src: a.Addr, Dst: b.Addr, Size: 1250, TTL: 4})
		a.Send(0, &Packet{Src: a.Addr, Dst: b.Addr, Size: 1250, TTL: 4})
	})
	s.Run()
	if len(arrive) != 2 {
		t.Fatalf("arrivals = %d, want 2", len(arrive))
	}
	if arrive[0] != 20*Millisecond {
		t.Errorf("first arrival %v, want 20ms (10 tx + 10 prop)", arrive[0])
	}
	// The second packet queues behind the first: 20 ms tx end + 10 ms prop.
	if arrive[1] != 30*Millisecond {
		t.Errorf("second arrival %v, want 30ms (queued)", arrive[1])
	}
}

func TestLinkDownDropsAndNotifies(t *testing.T) {
	s := New(1)
	a := s.AddNode(addr.MustParse("10.0.0.1"), "a")
	b := s.AddNode(addr.MustParse("10.0.0.2"), "b")
	l, _, _ := s.Connect(a, b, Millisecond, 0, 1)

	notified := 0
	b.Handler = &watcher{onLink: func(ifindex int, up bool) { notified++ }}

	l.SetUp(false)
	if notified != 1 {
		t.Fatalf("link-down notifications = %d, want 1", notified)
	}
	a.Send(0, &Packet{Size: 100, TTL: 4})
	s.Run()
	if b.Delivered != 0 {
		t.Error("packet delivered over a down link")
	}
	if l.StatsAtoB().Dropped != 1 {
		t.Errorf("dropped = %d, want 1", l.StatsAtoB().Dropped)
	}
	l.SetUp(true)
	if notified != 2 {
		t.Errorf("link-up notifications = %d, want 2", notified)
	}
}

func TestLinkDiesInFlight(t *testing.T) {
	s := New(1)
	a := s.AddNode(addr.MustParse("10.0.0.1"), "a")
	b := s.AddNode(addr.MustParse("10.0.0.2"), "b")
	l, _, _ := s.Connect(a, b, 10*Millisecond, 0, 1)
	s.At(0, func() { a.Send(0, &Packet{Size: 100, TTL: 4}) })
	s.At(5*Millisecond, func() { l.SetUp(false) }) // mid-flight
	s.Run()
	if b.Delivered != 0 {
		t.Error("packet survived a link that died in flight")
	}
}

func TestLossInjection(t *testing.T) {
	s := New(1)
	a := s.AddNode(addr.MustParse("10.0.0.1"), "a")
	b := s.AddNode(addr.MustParse("10.0.0.2"), "b")
	l, _, _ := s.Connect(a, b, Millisecond, 0, 1)
	l.LossEvery = 3
	s.At(0, func() {
		for i := 0; i < 9; i++ {
			a.Send(0, &Packet{Size: 100, TTL: 4})
		}
	})
	s.Run()
	if b.Delivered != 6 {
		t.Errorf("delivered = %d, want 6 (every 3rd dropped)", b.Delivered)
	}
}

func TestLANBroadcast(t *testing.T) {
	s := New(1)
	lan := s.NewLAN(Millisecond, 0, 1)
	nodes := make([]*Node, 4)
	for i := range nodes {
		nodes[i] = s.AddNode(HostAddr(i), "h")
		lan.Attach(nodes[i])
	}
	s.At(0, func() { nodes[0].Send(0, &Packet{Size: 100, TTL: 4}) })
	s.Run()
	if nodes[0].Delivered != 0 {
		t.Error("LAN echoed the packet to its sender")
	}
	for i := 1; i < 4; i++ {
		if nodes[i].Delivered != 1 {
			t.Errorf("node %d delivered = %d, want 1", i, nodes[i].Delivered)
		}
	}
	if len(lan.Members()) != 4 {
		t.Errorf("members = %d", len(lan.Members()))
	}
}

func TestNeighborsAndPeerInfo(t *testing.T) {
	s := New(1)
	rs := Line(s, 3, DefaultWAN)
	nbrs := rs[1].Neighbors()
	total := 0
	for _, peers := range nbrs {
		total += len(peers)
	}
	if total != 2 {
		t.Fatalf("middle router sees %d neighbors, want 2", total)
	}
	// LAN neighbors exclude self.
	lan := s.NewLAN(Millisecond, 0, 1)
	lan.Attach(rs[0])
	lan.Attach(rs[1])
	lan.Attach(rs[2])
	for _, r := range rs {
		for _, peers := range r.Neighbors() {
			for _, p := range peers {
				if p.Node == r.ID {
					t.Fatal("node lists itself as a neighbor")
				}
			}
		}
	}
}

func TestTopologyBuilders(t *testing.T) {
	s := New(1)
	tree := BinaryTree(s, 3, DefaultWAN)
	if len(tree) != 15 {
		t.Fatalf("depth-3 tree has %d routers, want 15", len(tree))
	}
	leaves := TreeLeaves(tree, 3)
	if len(leaves) != 8 {
		t.Fatalf("leaves = %d, want 8", len(leaves))
	}
	s2 := New(2)
	grid := Grid(s2, 4, 3, DefaultWAN)
	if len(grid) != 12 {
		t.Fatalf("grid = %d routers", len(grid))
	}
	if len(s2.Links()) != 3*3+4*2 {
		t.Fatalf("grid links = %d, want 17", len(s2.Links()))
	}
	s3 := New(3)
	rnd := Random(s3, 20, 3.0, DefaultWAN)
	if len(rnd) != 20 {
		t.Fatal("random size")
	}
	if got := len(s3.Links()); got < 19 || got > 30 {
		t.Fatalf("random links = %d, want ~30", got)
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	run := func() uint64 {
		s := New(7)
		rs := Random(s, 12, 3, DefaultWAN)
		for i, r := range rs {
			rr, d := r, Time(i)*Millisecond
			s.At(d, func() { rr.SendAll(-1, &Packet{Size: 64, TTL: 2}) })
		}
		s.Run()
		return s.EventsExecuted()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("event counts differ across identical runs: %d vs %d", a, b)
	}
}

type handlerFunc func(int, *Packet)

func (f handlerFunc) Receive(ifindex int, pkt *Packet) { f(ifindex, pkt) }

type watcher struct {
	onLink func(int, bool)
}

func (w *watcher) Receive(int, *Packet)      {}
func (w *watcher) LinkChange(i int, up bool) { w.onLink(i, up) }

// TestSilentFailureDropsInFlight is the regression test for the in-flight
// delivery check: packets already serialized onto the wire when
// SetSilentFailure(true) fires must be black-holed like everything else —
// the §3.2 keepalive experiments depend on NOTHING crossing a silent link
// after the failure instant.
func TestSilentFailureDropsInFlight(t *testing.T) {
	s := New(1)
	a := s.AddNode(addr.MustParse("10.0.0.1"), "a")
	b := s.AddNode(addr.MustParse("10.0.0.2"), "b")
	l, _, _ := s.Connect(a, b, 10*Millisecond, 0, 1)
	s.At(0, func() { a.Send(0, &Packet{Size: 100, TTL: 4}) })
	s.At(5*Millisecond, func() { l.SetSilentFailure(true) }) // mid-flight
	s.Run()
	if b.Delivered != 0 {
		t.Error("packet survived a link that went silent in flight")
	}

	// Sanity: once the link is un-silenced, the same flight is delivered.
	l.SetSilentFailure(false)
	s.At(s.Now(), func() { a.Send(0, &Packet{Size: 100, TTL: 4}) })
	s.Run()
	if b.Delivered != 1 {
		t.Errorf("delivered = %d, want 1 after the link recovered", b.Delivered)
	}
}

// TestTimerTombstoneCompaction is the regression test for the event-heap
// leak: cancelled-timer tombstones used to stay queued forever and
// Pending() counted them. Long proactive-counting runs arm and cancel one
// check timer per Count, so the heap must shed tombstones and Pending()
// must report live events only.
func TestTimerTombstoneCompaction(t *testing.T) {
	s := New(1)
	const n = 1000
	timers := make([]*Timer, n)
	for i := 0; i < n; i++ {
		timers[i] = s.After(Time(i+1)*Second, func() {})
	}
	// Cancel 600 of 1000: well past the half-tombstone threshold.
	for i := 0; i < 600; i++ {
		timers[i].Stop()
	}
	if got := s.Pending(); got != 400 {
		t.Errorf("Pending() = %d, want 400 live events", got)
	}
	if got := len(s.events); got >= n {
		t.Errorf("event heap holds %d entries after cancelling 600/1000; tombstones were not compacted", got)
	}

	// The surviving timers still fire, in order, exactly once each.
	fired := 0
	last := Time(-1)
	for i := 600; i < n; i++ {
		s.At(Time(i+1)*Second, func() {})
	}
	s.events = s.events[:0] // rebuild a clean heap for the ordering check
	s.cancelled = 0
	for i := 0; i < 100; i++ {
		i := i
		tm := s.After(Time(100-i)*Millisecond, func() {
			fired++
			if s.Now() <= last {
				t.Errorf("event at %v ran after %v", s.Now(), last)
			}
			last = s.Now()
		})
		if i%2 == 1 {
			tm.Stop()
		}
	}
	s.Run()
	if fired != 50 {
		t.Errorf("fired = %d, want 50 (every odd timer cancelled)", fired)
	}
	if s.Pending() != 0 {
		t.Errorf("Pending() = %d after Run, want 0", s.Pending())
	}
}
