package netsim

// LinkStats counts traffic in one direction of a link (or out of one LAN
// port). Benchmarks use these to compare per-link data and control load
// across protocols (experiment E9).
type LinkStats struct {
	Packets uint64
	Bytes   uint64
	Dropped uint64 // dropped because the link was down or by loss injection
}

// linkEnd is one direction of a point-to-point link.
type linkEnd struct {
	link *Link
	node *Node
	ifc  *Iface
	// nextFree is when the transmitter finishes serialising the previous
	// packet; models output queueing on the link.
	nextFree Time
	stats    LinkStats
}

// Link is a duplex point-to-point link between two nodes.
type Link struct {
	sim   *Sim
	a, b  linkEnd
	Delay Time  // one-way propagation delay
	Bps   int64 // bandwidth in bits per second; 0 means infinite
	Cost  int   // unicast routing metric (>=1)
	up    bool
	// silent makes the link black-hole all traffic WITHOUT notifying the
	// endpoints — the silent failure mode that only keepalives can detect
	// (Section 3.2's TCP connection failure).
	silent bool
	// LossEvery injects a deterministic drop of every k-th packet per
	// direction when >0 (failure injection for tests).
	LossEvery int
}

// Connect joins nodes x and y with a duplex link and returns it along with
// the new interface index on each node.
func (s *Sim) Connect(x, y *Node, delay Time, bps int64, cost int) (*Link, int, int) {
	if cost < 1 {
		cost = 1
	}
	l := &Link{sim: s, Delay: delay, Bps: bps, Cost: cost, up: true}
	l.a = linkEnd{link: l, node: x}
	l.b = linkEnd{link: l, node: y}
	l.a.ifc = x.addIface(&l.a)
	l.b.ifc = y.addIface(&l.b)
	s.links = append(s.links, l)
	return l, l.a.ifc.Index, l.b.ifc.Index
}

// Links returns all links in creation order; the slice must not be modified.
func (s *Sim) Links() []*Link { return s.links }

// Up reports the link's administrative state.
func (l *Link) Up() bool { return l.up }

// SetUp changes the link state and notifies both endpoint handlers.
func (l *Link) SetUp(up bool) {
	if l.up == up {
		return
	}
	l.up = up
	l.a.node.notifyLink(l.a.ifc.Index, up)
	l.b.node.notifyLink(l.b.ifc.Index, up)
}

// SetSilentFailure makes the link drop everything without notifying either
// endpoint (no LinkChange fires). Keepalive-based failure detection is the
// only way the protocol layer can notice.
func (l *Link) SetSilentFailure(on bool) { l.silent = on }

// Ends returns the endpoints as (node, ifindex) pairs.
func (l *Link) Ends() (na *Node, ifa int, nb *Node, ifb int) {
	return l.a.node, l.a.ifc.Index, l.b.node, l.b.ifc.Index
}

// StatsAtoB and StatsBtoA return the per-direction counters.
func (l *Link) StatsAtoB() LinkStats { return l.a.stats }
func (l *Link) StatsBtoA() LinkStats { return l.b.stats }

// TotalPackets returns packets carried in both directions.
func (l *Link) TotalPackets() uint64 { return l.a.stats.Packets + l.b.stats.Packets }

func (e *linkEnd) other() *linkEnd {
	if e == &e.link.a {
		return &e.link.b
	}
	return &e.link.a
}

func (e *linkEnd) isUp() bool { return e.link.up }

func (e *linkEnd) peerInfo() []PeerInfo {
	o := e.other()
	return []PeerInfo{{Node: o.node.ID, Ifindex: o.ifc.Index, Cost: e.link.Cost, Up: e.link.up}}
}

func (e *linkEnd) transmit(from *Node, pkt *Packet) {
	l := e.link
	if !l.up || l.silent {
		e.stats.Dropped++
		return
	}
	e.stats.Packets++
	e.stats.Bytes += uint64(pkt.Size)
	if l.LossEvery > 0 && e.stats.Packets%uint64(l.LossEvery) == 0 {
		e.stats.Dropped++
		return
	}
	now := l.sim.Now()
	start := now
	if e.nextFree > start {
		start = e.nextFree
	}
	txEnd := start
	if l.Bps > 0 {
		txEnd += Time(int64(pkt.Size) * 8 * int64(Second) / l.Bps)
	}
	e.nextFree = txEnd
	arrive := txEnd + l.Delay
	dst := e.other()
	dstIf := dst.ifc.Index
	dstNode := dst.node
	l.sim.At(arrive, func() {
		// A link that died OR went silent while the packet was in flight
		// black-holes it: SetSilentFailure promises "all traffic" is
		// dropped, including packets already serialized onto the wire —
		// the keepalive experiments of Section 3.2 depend on nothing
		// leaking through after the failure instant.
		if !l.up || l.silent {
			return
		}
		dstNode.deliver(dstIf, pkt)
	})
}
