package netsim

import (
	"testing"

	"repro/internal/addr"
)

type sinkHandler struct{ n uint64 }

func (s *sinkHandler) Receive(int, *Packet) { s.n++ }

// BenchmarkLinkTransmit measures one point-to-point packet delivery: a
// schedule, a heap pop, and the handler dispatch.
func BenchmarkLinkTransmit(b *testing.B) {
	s := New(1)
	a := s.AddNode(addr.MustParse("10.0.0.1"), "a")
	c := s.AddNode(addr.MustParse("10.0.0.2"), "b")
	s.Connect(a, c, Millisecond, 0, 1)
	sink := &sinkHandler{}
	c.Handler = sink
	pkt := &Packet{Src: a.Addr, Dst: c.Addr, Size: 1000, TTL: 4}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Send(0, pkt)
		s.Run()
	}
	if sink.n != uint64(b.N) {
		b.Fatalf("delivered %d, want %d", sink.n, b.N)
	}
}

// BenchmarkLANFanout measures broadcasting to a 16-host segment.
func BenchmarkLANFanout(b *testing.B) {
	s := New(1)
	lan := s.NewLAN(Millisecond, 0, 1)
	tx := s.AddNode(addr.MustParse("10.0.0.1"), "tx")
	lan.Attach(tx)
	sink := &sinkHandler{}
	for i := 0; i < 16; i++ {
		n := s.AddNode(HostAddr(i), "h")
		n.Handler = sink
		lan.Attach(n)
	}
	pkt := &Packet{Src: tx.Addr, Dst: addr.WellKnownECMP, Size: 100, TTL: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tx.Send(0, pkt)
		s.Run()
	}
	b.ReportMetric(16, "deliveries/op")
}

// BenchmarkTimerChurn measures schedule+cancel cycles, the pattern the
// proactive-counting re-check timers generate.
func BenchmarkTimerChurn(b *testing.B) {
	s := New(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		t := s.After(Second, func() {})
		t.Stop()
		if i%1024 == 0 {
			s.RunUntil(s.Now()) // drain tombstones
		}
	}
}
