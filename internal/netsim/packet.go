package netsim

import (
	"fmt"

	"repro/internal/addr"
)

// Protocol numbers carried in Packet.Proto. They play the role of the IPv4
// protocol field: nodes dispatch received packets on this value.
const (
	ProtoData  uint8 = 17  // application datagrams (UDP-like)
	ProtoECMP  uint8 = 103 // ECMP control messages (value borrowed from PIM)
	ProtoEncap uint8 = 4   // IP-in-IP encapsulation (subcast, relays, PIM register)
	ProtoIGMP  uint8 = 2   // IGMP host membership messages
	ProtoPIM   uint8 = 104 // PIM-SM baseline control
	ProtoCBT   uint8 = 7   // CBT baseline control
	ProtoDVMRP uint8 = 105 // DVMRP baseline control
)

// Packet is a datagram in flight. Payload is an arbitrary protocol message
// and must be treated as read-only by receivers: a multicast delivery hands
// the same Payload pointer to every receiver.
//
// Size is the simulated on-the-wire size in bytes, used for serialization
// delay and per-link byte counters; it is carried explicitly so protocol
// engines can account for real header formats (internal/wire) without
// serialising on every hop.
type Packet struct {
	Src, Dst addr.Addr
	Proto    uint8
	TTL      uint8
	Size     int
	Payload  any
}

// DefaultTTL is the initial TTL for packets originated by hosts.
const DefaultTTL = 64

// Encap wraps an inner packet for IP-in-IP style delivery (Section 2.1
// subcast, Section 4 relaying, and the PIM-SM register path all use it).
type Encap struct {
	Inner *Packet
}

// String renders a short human-readable form for traces.
func (p *Packet) String() string {
	return fmt.Sprintf("%v->%v proto=%d ttl=%d size=%d", p.Src, p.Dst, p.Proto, p.TTL, p.Size)
}

// Clone returns a shallow copy of the packet (shared Payload) with the same
// TTL; forwarding engines clone before mutating TTL so that other receivers
// of a multicast delivery are unaffected.
func (p *Packet) Clone() *Packet {
	q := *p
	return &q
}
