// Package netsim is a deterministic discrete-event simulator of an
// internetwork: nodes joined by point-to-point links and broadcast LAN
// segments, with propagation delay, serialization (bandwidth) delay, link
// failure, and per-link traffic counters.
//
// It is the substitute for the real Internet topology that the paper's
// protocols run over (see DESIGN.md §2). Determinism is load-bearing: the
// event queue breaks ties by insertion order and all randomness flows
// through a seeded generator, so every experiment in EXPERIMENTS.md is
// reproducible bit-for-bit.
package netsim

import (
	"container/heap"
	"fmt"
	"math/rand"
)

// Time is simulated time in nanoseconds since the start of the run.
type Time int64

// Common durations in simulated time.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// String renders the time as seconds with millisecond precision.
func (t Time) String() string {
	return fmt.Sprintf("%d.%03ds", t/Second, (t%Second)/Millisecond)
}

// Seconds converts the time to floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

type event struct {
	at  Time
	seq uint64 // insertion order, breaks ties deterministically
	fn  func()
	// cancelled events stay in the heap and are skipped when popped; this
	// makes Timer.Stop O(1) instead of O(log n) heap surgery.
	cancelled bool
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() (popped any) {
	old := *h
	n := len(old)
	popped = old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return
}

// Sim is a discrete-event simulation instance.
type Sim struct {
	now    Time
	events eventHeap
	seq    uint64
	rng    *rand.Rand

	// cancelled counts tombstones still in the heap. When they outnumber
	// the live events the heap is compacted, so long runs that arm and
	// cancel many timers (proactive-counting check timers, keepalives) do
	// not accumulate unbounded garbage.
	cancelled int

	nodes []*Node
	links []*Link
	lans  []*LAN

	executed uint64
}

// New returns an empty simulation whose randomness is seeded with seed.
func New(seed int64) *Sim {
	return &Sim{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current simulated time.
func (s *Sim) Now() Time { return s.now }

// Rand returns the simulation's deterministic random source.
func (s *Sim) Rand() *rand.Rand { return s.rng }

// EventsExecuted returns the number of events run so far, a cheap progress
// and cost metric for benchmarks.
func (s *Sim) EventsExecuted() uint64 { return s.executed }

// Timer is a handle to a scheduled event that can be cancelled.
type Timer struct {
	s  *Sim
	ev *event
}

// Stop cancels the timer. It is safe to call on a nil Timer or after the
// event has fired (both are no-ops). It reports whether the event was
// prevented from running.
func (t *Timer) Stop() bool {
	if t == nil || t.ev == nil || t.ev.cancelled {
		return false
	}
	t.ev.cancelled = true
	if t.s != nil {
		t.s.cancelled++
		if t.s.cancelled*2 > len(t.s.events) {
			t.s.compact()
		}
	}
	return true
}

// compact removes cancelled tombstones from the event heap in one O(n)
// pass and re-establishes the heap invariant. Ordering is unaffected: live
// events keep their (at, seq) keys.
func (s *Sim) compact() {
	live := s.events[:0]
	for _, ev := range s.events {
		if !ev.cancelled {
			live = append(live, ev)
		}
	}
	for i := len(live); i < len(s.events); i++ {
		s.events[i] = nil
	}
	s.events = live
	s.cancelled = 0
	heap.Init(&s.events)
}

// At schedules fn to run at absolute time at. Scheduling in the past (or at
// the present instant) runs the event at the current time, after all events
// already queued for that time.
func (s *Sim) At(at Time, fn func()) *Timer {
	if at < s.now {
		at = s.now
	}
	ev := &event{at: at, seq: s.seq, fn: fn}
	s.seq++
	heap.Push(&s.events, ev)
	return &Timer{s: s, ev: ev}
}

// After schedules fn to run d after the current time.
func (s *Sim) After(d Time, fn func()) *Timer { return s.At(s.now+d, fn) }

// Run executes events until the queue is empty.
func (s *Sim) Run() { s.RunUntil(1<<62 - 1) }

// RunUntil executes events with time <= deadline, then sets the clock to
// deadline (or leaves it at the last event if the queue drained later than
// deadline... it cannot: events beyond deadline stay queued).
func (s *Sim) RunUntil(deadline Time) {
	for len(s.events) > 0 {
		ev := s.events[0]
		if ev.at > deadline {
			break
		}
		heap.Pop(&s.events)
		if ev.cancelled {
			s.cancelled--
			continue
		}
		s.now = ev.at
		s.executed++
		ev.fn()
	}
	if s.now < deadline && deadline < 1<<62-1 {
		s.now = deadline
	}
}

// Pending returns the number of live events still queued; cancelled
// tombstones awaiting compaction are not counted.
func (s *Sim) Pending() int { return len(s.events) - s.cancelled }
