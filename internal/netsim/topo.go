package netsim

import (
	"fmt"

	"repro/internal/addr"
)

// Topology builders. Each returns the routers it created; hosts are attached
// separately by the caller (protocol engines differ in how they wire hosts).
// Addresses are assigned sequentially from the 10/8 space for routers.

// RouterAddr returns the conventional address of the i-th router.
func RouterAddr(i int) addr.Addr {
	return addr.Addr(10<<24) + addr.Addr(i+1)
}

// HostAddr returns the conventional address of the i-th host.
func HostAddr(i int) addr.Addr {
	return addr.Addr(172<<24|16<<16) + addr.Addr(i+1)
}

// LinkParams bundles the physical characteristics used by the builders.
type LinkParams struct {
	Delay Time
	Bps   int64
	Cost  int
}

// DefaultWAN models a wide-area link: 5 ms propagation, 155 Mbit/s.
var DefaultWAN = LinkParams{Delay: 5 * Millisecond, Bps: 155_000_000, Cost: 1}

// DefaultLAN models an edge Ethernet: 100 µs, 100 Mbit/s.
var DefaultLAN = LinkParams{Delay: 100 * Microsecond, Bps: 100_000_000, Cost: 1}

// AddRouters creates n routers named r0..r{n-1}.
func AddRouters(s *Sim, n int) []*Node {
	routers := make([]*Node, n)
	for i := range routers {
		routers[i] = s.AddNode(RouterAddr(i), fmt.Sprintf("r%d", i))
	}
	return routers
}

// Line builds r0 - r1 - ... - r{n-1}.
func Line(s *Sim, n int, p LinkParams) []*Node {
	rs := AddRouters(s, n)
	for i := 0; i+1 < n; i++ {
		s.Connect(rs[i], rs[i+1], p.Delay, p.Bps, p.Cost)
	}
	return rs
}

// Star builds a hub router r0 with n spokes r1..rn. This is the paper's
// worst-case "star topology with no fanout in the network except at the
// root" (Section 5.1).
func Star(s *Sim, spokes int, p LinkParams) (hub *Node, leaves []*Node) {
	rs := AddRouters(s, spokes+1)
	for i := 1; i <= spokes; i++ {
		s.Connect(rs[0], rs[i], p.Delay, p.Bps, p.Cost)
	}
	return rs[0], rs[1:]
}

// BinaryTree builds a complete binary tree of the given depth (depth 0 is a
// single root). It returns all routers in breadth-first order; the leaves
// are the last 2^depth entries. The paper's million-member example is "a
// multicast tree 20 hops deep with a fanout of two" (Section 5.3); Figure
// 8's simulation also uses tree aggregation.
func BinaryTree(s *Sim, depth int, p LinkParams) []*Node {
	n := (1 << (depth + 1)) - 1
	rs := AddRouters(s, n)
	for i := 0; i < n; i++ {
		left, right := 2*i+1, 2*i+2
		if left < n {
			s.Connect(rs[i], rs[left], p.Delay, p.Bps, p.Cost)
		}
		if right < n {
			s.Connect(rs[i], rs[right], p.Delay, p.Bps, p.Cost)
		}
	}
	return rs
}

// TreeLeaves returns the leaf routers of a BinaryTree result.
func TreeLeaves(rs []*Node, depth int) []*Node {
	return rs[len(rs)-(1<<depth):]
}

// Grid builds a w×h grid (torus=false) of routers, a stand-in for a
// transit-domain mesh. Router (x,y) is rs[y*w+x].
func Grid(s *Sim, w, h int, p LinkParams) []*Node {
	rs := AddRouters(s, w*h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if x+1 < w {
				s.Connect(rs[y*w+x], rs[y*w+x+1], p.Delay, p.Bps, p.Cost)
			}
			if y+1 < h {
				s.Connect(rs[y*w+x], rs[(y+1)*w+x], p.Delay, p.Bps, p.Cost)
			}
		}
	}
	return rs
}

// Random builds a connected random graph: a spanning chain (guaranteeing
// connectivity) plus extra random edges up to the requested average degree.
// The simulator's seeded generator keeps it deterministic.
func Random(s *Sim, n int, avgDegree float64, p LinkParams) []*Node {
	rs := AddRouters(s, n)
	connected := make(map[[2]NodeID]bool)
	for i := 0; i+1 < n; i++ {
		s.Connect(rs[i], rs[i+1], p.Delay, p.Bps, p.Cost)
		connected[[2]NodeID{rs[i].ID, rs[i+1].ID}] = true
	}
	want := int(avgDegree*float64(n)/2) - (n - 1)
	for added := 0; added < want; {
		i := s.rng.Intn(n)
		j := s.rng.Intn(n)
		if i == j {
			continue
		}
		if i > j {
			i, j = j, i
		}
		key := [2]NodeID{rs[i].ID, rs[j].ID}
		if connected[key] {
			continue
		}
		connected[key] = true
		s.Connect(rs[i], rs[j], p.Delay, p.Bps, p.Cost)
		added++
	}
	return rs
}

// AttachHost creates a host node and connects it to the given router over a
// point-to-point edge link, returning the host and the interface indices
// (host side, router side).
func AttachHost(s *Sim, router *Node, hostIdx int, p LinkParams) (h *Node, hostIf, routerIf int) {
	h = s.AddNode(HostAddr(hostIdx), fmt.Sprintf("h%d", hostIdx))
	_, hIf, rIf := s.Connect(h, router, p.Delay, p.Bps, p.Cost)
	return h, hIf, rIf
}
