package netsim

// LAN is a broadcast segment: every packet transmitted by one attached node
// is delivered to all other attached nodes. It models the shared Ethernet
// between an edge router and its end hosts, which is where ECMP's UDP mode
// and IGMP operate (Sections 3.2–3.3).
type LAN struct {
	sim   *Sim
	Delay Time
	Bps   int64
	Cost  int
	up    bool
	ports []*lanPort
}

type lanPort struct {
	lan      *LAN
	node     *Node
	ifc      *Iface
	nextFree Time
	stats    LinkStats
}

// NewLAN creates an empty broadcast segment.
func (s *Sim) NewLAN(delay Time, bps int64, cost int) *LAN {
	if cost < 1 {
		cost = 1
	}
	l := &LAN{sim: s, Delay: delay, Bps: bps, Cost: cost, up: true}
	s.lans = append(s.lans, l)
	return l
}

// LANs returns all LAN segments in creation order.
func (s *Sim) LANs() []*LAN { return s.lans }

// Attach connects a node to the LAN and returns the new interface index.
func (l *LAN) Attach(n *Node) int {
	p := &lanPort{lan: l, node: n}
	p.ifc = n.addIface(p)
	l.ports = append(l.ports, p)
	return p.ifc.Index
}

// Up reports the segment's state.
func (l *LAN) Up() bool { return l.up }

// SetUp changes the segment state, notifying every attached node.
func (l *LAN) SetUp(up bool) {
	if l.up == up {
		return
	}
	l.up = up
	for _, p := range l.ports {
		p.node.notifyLink(p.ifc.Index, up)
	}
}

// Members returns the attached nodes.
func (l *LAN) Members() []*Node {
	out := make([]*Node, len(l.ports))
	for i, p := range l.ports {
		out[i] = p.node
	}
	return out
}

func (p *lanPort) isUp() bool { return p.lan.up }

func (p *lanPort) peerInfo() []PeerInfo {
	out := make([]PeerInfo, 0, len(p.lan.ports)-1)
	for _, q := range p.lan.ports {
		if q == p {
			continue
		}
		out = append(out, PeerInfo{Node: q.node.ID, Ifindex: q.ifc.Index, Cost: p.lan.Cost, Up: p.lan.up})
	}
	return out
}

func (p *lanPort) transmit(from *Node, pkt *Packet) {
	l := p.lan
	if !l.up {
		p.stats.Dropped++
		return
	}
	p.stats.Packets++
	p.stats.Bytes += uint64(pkt.Size)
	now := l.sim.Now()
	start := now
	if p.nextFree > start {
		start = p.nextFree
	}
	txEnd := start
	if l.Bps > 0 {
		txEnd += Time(int64(pkt.Size) * 8 * int64(Second) / l.Bps)
	}
	p.nextFree = txEnd
	arrive := txEnd + l.Delay
	for _, q := range l.ports {
		if q == p {
			continue
		}
		dstNode, dstIf := q.node, q.ifc.Index
		l.sim.At(arrive, func() {
			if !l.up {
				return
			}
			dstNode.deliver(dstIf, pkt)
		})
	}
}

// Stats returns the transmit counters for the port belonging to node n, or a
// zero value if n is not attached.
func (l *LAN) Stats(n *Node) LinkStats {
	for _, p := range l.ports {
		if p.node == n {
			return p.stats
		}
	}
	return LinkStats{}
}
