package netsim

import (
	"fmt"

	"repro/internal/addr"
)

// NodeID identifies a node within one Sim; it doubles as the vertex id for
// unicast route computation.
type NodeID int

// Handler is the protocol stack attached to a node. Exactly one handler is
// attached per node; composite stacks (e.g. an ECMP router that also speaks
// IGMP on edge LANs) multiplex on Packet.Proto themselves.
type Handler interface {
	// Receive is called for every packet delivered to the node. ifindex is
	// the arrival interface.
	Receive(ifindex int, pkt *Packet)
}

// LinkWatcher is implemented by handlers that want link up/down
// notifications (ECMP uses them to re-select upstream neighbors, unicast
// routing to recompute tables).
type LinkWatcher interface {
	LinkChange(ifindex int, up bool)
}

// attachment is one side of a link or LAN port.
type attachment interface {
	// transmit sends pkt out of this attachment; from is the transmitting
	// node (used by LANs to not loop the packet back).
	transmit(from *Node, pkt *Packet)
	peerInfo() []PeerInfo
	isUp() bool
}

// PeerInfo describes a directly connected neighbor as seen from one
// interface.
type PeerInfo struct {
	Node    NodeID
	Ifindex int  // the neighbor's interface back toward us
	Cost    int  // link metric for unicast routing
	Up      bool // current link state
}

// Iface is a node's port onto a link or LAN.
type Iface struct {
	Index  int
	attach attachment
}

// Node is a router or host in the simulated internetwork.
type Node struct {
	ID      NodeID
	Addr    addr.Addr
	Name    string
	sim     *Sim
	ifaces  []*Iface
	Handler Handler

	// Delivered counts packets handed to the handler, for tests.
	Delivered uint64
}

// AddNode creates a node with the given unicast address and human-readable
// name. Addresses must be unique per Sim if unicast routing is in use.
func (s *Sim) AddNode(a addr.Addr, name string) *Node {
	n := &Node{ID: NodeID(len(s.nodes)), Addr: a, Name: name, sim: s}
	s.nodes = append(s.nodes, n)
	return n
}

// Nodes returns all nodes in creation order; the slice must not be modified.
func (s *Sim) Nodes() []*Node { return s.nodes }

// Node returns the node with the given id.
func (s *Sim) Node(id NodeID) *Node { return s.nodes[id] }

// NodeByAddr finds a node by unicast address, or nil.
func (s *Sim) NodeByAddr(a addr.Addr) *Node {
	for _, n := range s.nodes {
		if n.Addr == a {
			return n
		}
	}
	return nil
}

// Sim returns the simulation the node belongs to.
func (n *Node) Sim() *Sim { return n.sim }

// NumIfaces returns the number of interfaces on the node.
func (n *Node) NumIfaces() int { return len(n.ifaces) }

// Neighbors returns information about every directly connected peer,
// indexed by local interface. A LAN interface contributes one entry per
// attached peer.
func (n *Node) Neighbors() map[int][]PeerInfo {
	out := make(map[int][]PeerInfo, len(n.ifaces))
	for _, ifc := range n.ifaces {
		out[ifc.Index] = ifc.attach.peerInfo()
	}
	// Remove self-entries contributed by shared LANs.
	for idx, peers := range out {
		kept := peers[:0]
		for _, p := range peers {
			if p.Node != n.ID {
				kept = append(kept, p)
			}
		}
		out[idx] = kept
	}
	return out
}

// IfaceUp reports whether the attachment behind ifindex is up.
func (n *Node) IfaceUp(ifindex int) bool {
	return n.ifaces[ifindex].attach.isUp()
}

// Send transmits pkt out of the given interface. The packet is delivered to
// the peer(s) after serialization and propagation delay. Send panics on a
// bad ifindex: that is a protocol-engine bug, not a runtime condition.
func (n *Node) Send(ifindex int, pkt *Packet) {
	if ifindex < 0 || ifindex >= len(n.ifaces) {
		panic(fmt.Sprintf("netsim: node %s sending on bad ifindex %d", n.Name, ifindex))
	}
	n.ifaces[ifindex].attach.transmit(n, pkt)
}

// SendAll transmits pkt out of every interface except skipIfindex (pass -1
// to send on all). Used by flood-style protocols (DVMRP) and LAN queries.
func (n *Node) SendAll(skipIfindex int, pkt *Packet) {
	for _, ifc := range n.ifaces {
		if ifc.Index == skipIfindex {
			continue
		}
		ifc.attach.transmit(n, pkt)
	}
}

// deliver hands a packet to the node's handler at the current sim time.
func (n *Node) deliver(ifindex int, pkt *Packet) {
	n.Delivered++
	if n.Handler != nil {
		n.Handler.Receive(ifindex, pkt)
	}
}

func (n *Node) notifyLink(ifindex int, up bool) {
	if w, ok := n.Handler.(LinkWatcher); ok {
		w.LinkChange(ifindex, up)
	}
}

func (n *Node) addIface(a attachment) *Iface {
	ifc := &Iface{Index: len(n.ifaces), attach: a}
	n.ifaces = append(n.ifaces, ifc)
	return ifc
}
