// Package obs is the observability core of the repo's daemons: atomic
// counters and gauges, lock-free log2-bucketed histograms with a per-CPU
// striped write path, and a registry that exposes everything in a
// plain-text exposition format (Prometheus-compatible) and as a /statsz
// JSON snapshot. It depends only on the standard library and is built so
// instrumentation can sit on allocation-free fast paths: recording a
// counter or histogram observation allocates nothing and takes no lock.
//
// The paper's §5.3 user-level router is where this matters: channel
// maintenance is measured in thousands of cycles per event, so the
// instrumentation watching it must cost tens of cycles, not a mutex.
package obs

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric.
type Counter struct{ v atomic.Uint64 }

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Load returns the current value.
func (c *Counter) Load() uint64 { return c.v.Load() }

// Gauge is a value that can go up and down.
type Gauge struct{ v atomic.Int64 }

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adds n (may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// kind classifies a metric for the text exposition's TYPE line.
type kind uint8

const (
	kindCounter kind = iota
	kindGauge
	kindHistogram
)

func (k kind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// metric is one registered entry. Exactly one of the value fields is set.
type metric struct {
	name string
	help string
	kind kind

	counter     *Counter
	counterFunc func() uint64
	gauge       *Gauge
	gaugeFunc   func() float64
	hist        *Histogram
}

// Registry holds a named set of metrics and renders them for scraping.
// Registration takes a lock; reading registered metrics does not.
type Registry struct {
	mu      sync.Mutex
	metrics []*metric
	names   map[string]bool
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{names: make(map[string]bool)}
}

func (r *Registry) register(m *metric) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.names[m.name] {
		panic(fmt.Sprintf("obs: duplicate metric %q", m.name))
	}
	r.names[m.name] = true
	r.metrics = append(r.metrics, m)
}

// NewCounter registers and returns a counter.
func (r *Registry) NewCounter(name, help string) *Counter {
	c := &Counter{}
	r.register(&metric{name: name, help: help, kind: kindCounter, counter: c})
	return c
}

// NewCounterFunc registers a counter whose value is read from fn at scrape
// time — the bridge to pre-existing atomic counters (router stats).
func (r *Registry) NewCounterFunc(name, help string, fn func() uint64) {
	r.register(&metric{name: name, help: help, kind: kindCounter, counterFunc: fn})
}

// NewGauge registers and returns a gauge.
func (r *Registry) NewGauge(name, help string) *Gauge {
	g := &Gauge{}
	r.register(&metric{name: name, help: help, kind: kindGauge, gauge: g})
	return g
}

// NewGaugeFunc registers a gauge computed by fn at scrape time.
func (r *Registry) NewGaugeFunc(name, help string, fn func() float64) {
	r.register(&metric{name: name, help: help, kind: kindGauge, gaugeFunc: fn})
}

// NewHistogram registers and returns a histogram.
func (r *Registry) NewHistogram(name, help string) *Histogram {
	h := NewHistogram()
	r.register(&metric{name: name, help: help, kind: kindHistogram, hist: h})
	return h
}

// RegisterHistogram registers an existing histogram — for packages that own
// their instrument (a FIB's rebuild timer) and expose it to whichever
// daemon's registry scrapes them.
func (r *Registry) RegisterHistogram(name, help string, h *Histogram) {
	r.register(&metric{name: name, help: help, kind: kindHistogram, hist: h})
}

// snapshotMetrics copies the registered slice so render loops run without
// the lock (scrape-time funcs may themselves take locks, e.g. a channel
// count summing shard maps).
func (r *Registry) snapshotMetrics() []*metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]*metric(nil), r.metrics...)
}

// Snapshot is the /statsz JSON document: flat maps per metric class.
type Snapshot struct {
	Counters   map[string]uint64       `json:"counters"`
	Gauges     map[string]float64      `json:"gauges"`
	Histograms map[string]HistSnapshot `json:"histograms"`
}

// Snapshot reads every metric once.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   make(map[string]uint64),
		Gauges:     make(map[string]float64),
		Histograms: make(map[string]HistSnapshot),
	}
	for _, m := range r.snapshotMetrics() {
		switch {
		case m.counter != nil:
			s.Counters[m.name] = m.counter.Load()
		case m.counterFunc != nil:
			s.Counters[m.name] = m.counterFunc()
		case m.gauge != nil:
			s.Gauges[m.name] = float64(m.gauge.Load())
		case m.gaugeFunc != nil:
			s.Gauges[m.name] = m.gaugeFunc()
		case m.hist != nil:
			s.Histograms[m.name] = m.hist.Snapshot()
		}
	}
	return s
}

// WriteText renders the registry in the plain-text exposition format:
//
//	# HELP name help
//	# TYPE name counter|gauge|histogram
//	name value
//
// Histograms render cumulative le-labeled buckets plus _sum and _count,
// so any Prometheus-format scraper ingests them directly.
func (r *Registry) WriteText(w io.Writer) error {
	ms := r.snapshotMetrics()
	sort.SliceStable(ms, func(i, j int) bool { return ms[i].name < ms[j].name })
	for _, m := range ms {
		if m.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", m.name, m.help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", m.name, m.kind); err != nil {
			return err
		}
		var err error
		switch {
		case m.counter != nil:
			_, err = fmt.Fprintf(w, "%s %d\n", m.name, m.counter.Load())
		case m.counterFunc != nil:
			_, err = fmt.Fprintf(w, "%s %d\n", m.name, m.counterFunc())
		case m.gauge != nil:
			_, err = fmt.Fprintf(w, "%s %d\n", m.name, m.gauge.Load())
		case m.gaugeFunc != nil:
			_, err = fmt.Fprintf(w, "%s %g\n", m.name, m.gaugeFunc())
		case m.hist != nil:
			err = writeTextHist(w, m.name, m.hist.Snapshot())
		}
		if err != nil {
			return err
		}
	}
	return nil
}

func writeTextHist(w io.Writer, name string, s HistSnapshot) error {
	var cum uint64
	for _, b := range s.Buckets {
		cum += b.N
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"%d\"} %d\n", name, b.Le, cum); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, s.Count); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum %d\n", name, s.Sum); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count %d\n", name, s.Count)
	return err
}
