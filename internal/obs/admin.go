package obs

import (
	"encoding/json"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// Admin is the operational HTTP endpoint of a daemon: the scrape surface
// (/metrics text, /statsz JSON), a liveness probe (/healthz), and the
// stdlib profiler (/debug/pprof/). It binds its own listener so the data
// and control sockets of the router stay untouched, and it shuts down
// cleanly — Close unblocks the serve loop and closes the listener.
type Admin struct {
	ln  net.Listener
	srv *http.Server
}

// NewAdmin serves reg on addr (":0" picks an ephemeral port). healthy, if
// non-nil, gates /healthz: a non-nil error reports 503 with the error text.
func NewAdmin(addr string, reg *Registry, healthy func() error) (*Admin, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		reg.WriteText(w)
	})
	mux.HandleFunc("/statsz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(reg.Snapshot())
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		if healthy != nil {
			if err := healthy(); err != nil {
				http.Error(w, err.Error(), http.StatusServiceUnavailable)
				return
			}
		}
		w.Write([]byte("ok\n"))
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	a := &Admin{
		ln: ln,
		srv: &http.Server{
			Handler:           mux,
			ReadHeaderTimeout: 5 * time.Second,
		},
	}
	go a.srv.Serve(ln)
	return a, nil
}

// Addr returns the bound listen address.
func (a *Admin) Addr() string { return a.ln.Addr().String() }

// Close stops the server immediately (in-flight scrapes are cut; a metrics
// endpoint has no request worth draining for).
func (a *Admin) Close() error { return a.srv.Close() }
