package obs

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"strings"
	"time"
)

// DebugHandler is one operational endpoint a daemon mounts under /debug/ —
// the registration surface subsystems use to expose on-demand facilities
// (the data plane's packet-dump arm/drain endpoints, for example) without
// the obs package importing them. The Admin enforces Method and lists every
// registered handler on the /debug/ index, so an operator can discover what
// a running daemon offers with one GET.
type DebugHandler struct {
	// Path is the absolute mount path; it must begin with "/debug/".
	Path string
	// Method is the only HTTP method the handler accepts; any other method
	// on Path is answered 405 with an Allow header. Empty accepts all.
	Method string
	// Help is the one-line description the /debug/ index prints.
	Help string
	// Handle serves the endpoint.
	Handle http.HandlerFunc
}

// Admin is the operational HTTP endpoint of a daemon: the scrape surface
// (/metrics text, /statsz JSON), a liveness probe (/healthz), the stdlib
// profiler (/debug/pprof/), and any subsystem debug handlers registered at
// construction — all enumerated on the /debug/ index. It binds its own
// listener so the data and control sockets of the router stay untouched,
// and it shuts down cleanly — Close unblocks the serve loop and closes the
// listener.
type Admin struct {
	ln  net.Listener
	srv *http.Server
}

// methodGuard wraps h so that only the given method reaches it; everything
// else is answered 405 (Method Not Allowed) with an Allow header — not 404,
// so a wrong-method probe of a live endpoint is distinguishable from a typo
// in the path.
func methodGuard(method string, h http.HandlerFunc) http.HandlerFunc {
	if method == "" {
		return h
	}
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != method {
			w.Header().Set("Allow", method)
			http.Error(w, fmt.Sprintf("method %s not allowed (use %s)", r.Method, method),
				http.StatusMethodNotAllowed)
			return
		}
		h(w, r)
	}
}

// NewAdmin serves reg on addr (":0" picks an ephemeral port). healthy, if
// non-nil, gates /healthz: a non-nil error reports 503 with the error text.
// extra handlers are mounted under /debug/ with their methods enforced and
// appear on the /debug/ index; a handler whose path does not start with
// /debug/ (or collides with a built-in) is rejected.
func NewAdmin(addr string, reg *Registry, healthy func() error, extra ...DebugHandler) (*Admin, error) {
	for _, dh := range extra {
		if !strings.HasPrefix(dh.Path, "/debug/") {
			return nil, fmt.Errorf("obs: debug handler %q must be mounted under /debug/", dh.Path)
		}
		if strings.HasPrefix(dh.Path, "/debug/pprof") {
			return nil, fmt.Errorf("obs: debug handler %q collides with the built-in profiler", dh.Path)
		}
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		reg.WriteText(w)
	})
	mux.HandleFunc("/statsz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(reg.Snapshot())
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		if healthy != nil {
			if err := healthy(); err != nil {
				http.Error(w, err.Error(), http.StatusServiceUnavailable)
				return
			}
		}
		w.Write([]byte("ok\n"))
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	// The index: every debug endpoint this daemon serves, built-ins first.
	index := []DebugHandler{
		{Path: "/debug/pprof/", Method: http.MethodGet, Help: "stdlib profiler index (cmdline, profile, symbol, trace)"},
	}
	index = append(index, extra...)
	sort.SliceStable(index, func(i, j int) bool { return index[i].Path < index[j].Path })
	mux.HandleFunc("/debug/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/debug/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintf(w, "debug endpoints:\n")
		for _, dh := range index {
			method := dh.Method
			if method == "" {
				method = "ANY"
			}
			fmt.Fprintf(w, "%-6s %-24s %s\n", method, dh.Path, dh.Help)
		}
	})
	for _, dh := range extra {
		mux.HandleFunc(dh.Path, methodGuard(dh.Method, dh.Handle))
	}

	a := &Admin{
		ln: ln,
		srv: &http.Server{
			Handler:           mux,
			ReadHeaderTimeout: 5 * time.Second,
		},
	}
	go a.srv.Serve(ln)
	return a, nil
}

// Addr returns the bound listen address.
func (a *Admin) Addr() string { return a.ln.Addr().String() }

// Close stops the server immediately (in-flight scrapes are cut; a metrics
// endpoint has no request worth draining for).
func (a *Admin) Close() error { return a.srv.Close() }
