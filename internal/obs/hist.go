package obs

import (
	"math/bits"
	"runtime"
	"sync"
	"sync/atomic"
)

// numBuckets is one bucket per power of two of a uint64 value, plus the
// zero bucket: bucket 0 holds exactly 0, bucket b (b ≥ 1) holds values in
// [2^(b-1), 2^b). 65 buckets cover the full range, so recording never
// clamps — a 30 s latency in nanoseconds lands in bucket 35.
const numBuckets = 65

// bucketOf maps a value to its log2 bucket.
func bucketOf(v uint64) int { return bits.Len64(v) }

// bucketBounds returns the [lo, hi) value range of bucket b.
func bucketBounds(b int) (lo, hi uint64) {
	if b == 0 {
		return 0, 1
	}
	if b >= 64 {
		return 1 << 63, 1<<64 - 1
	}
	return 1 << (b - 1), 1 << b
}

// histStripe is one writer's slice of a histogram. The leading pad keeps a
// stripe's first counter off the cache line of whatever the allocator
// placed before it; stripes are allocated independently, so two stripes
// never share a line in practice.
type histStripe struct {
	_       [64]byte
	count   atomic.Uint64
	sum     atomic.Uint64
	max     atomic.Uint64
	buckets [numBuckets]atomic.Uint64
}

func (s *histStripe) observe(v uint64) {
	s.buckets[bucketOf(v)].Add(1)
	s.count.Add(1)
	s.sum.Add(v)
	for {
		cur := s.max.Load()
		if v <= cur || s.max.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Histogram is a lock-free log2-bucketed histogram built for hot-path
// writers: observations land on per-CPU stripes (a sync.Pool hands each P
// its last-used stripe back, so steady-state recording is two or three
// uncontended atomic adds and never allocates), and scrapes merge the
// stripes into one snapshot. The stripe set is fixed at construction —
// GC-cleared pools re-route writers onto existing stripes rather than
// growing the set — so a histogram's memory is bounded regardless of run
// length.
type Histogram struct {
	slots []atomic.Pointer[histStripe] // lazily filled, never shrinks
	next  atomic.Uint32                // round-robin slot cursor for pool misses
	pool  sync.Pool                    // routes each P back to its stripe
}

// NewHistogram returns an unregistered histogram; Registry.NewHistogram is
// the usual constructor.
func NewHistogram() *Histogram {
	n := 1
	for n < runtime.NumCPU() && n < 64 {
		n <<= 1
	}
	return &Histogram{slots: make([]atomic.Pointer[histStripe], n)}
}

// stripe returns the calling P's stripe, routing through the pool so
// consecutive observations from one P hit the same cache lines.
func (h *Histogram) stripe() *histStripe {
	if sp, _ := h.pool.Get().(*histStripe); sp != nil {
		return sp
	}
	i := (h.next.Add(1) - 1) % uint32(len(h.slots))
	if sp := h.slots[i].Load(); sp != nil {
		return sp
	}
	sp := &histStripe{}
	if !h.slots[i].CompareAndSwap(nil, sp) {
		sp = h.slots[i].Load()
	}
	return sp
}

// Observe records one value.
func (h *Histogram) Observe(v uint64) {
	sp := h.stripe()
	sp.observe(v)
	h.pool.Put(sp)
}

// ObserveInt records a non-negative int (negatives clamp to 0).
func (h *Histogram) ObserveInt(v int) {
	if v < 0 {
		v = 0
	}
	h.Observe(uint64(v))
}

// HistSnapshot is a merged, read-only view of a histogram.
type HistSnapshot struct {
	Count   uint64        `json:"count"`
	Sum     uint64        `json:"sum"`
	Max     uint64        `json:"max"`
	P50     float64       `json:"p50"`
	P90     float64       `json:"p90"`
	P99     float64       `json:"p99"`
	Buckets []BucketCount `json:"buckets,omitempty"`
}

// BucketCount is one non-empty bucket: N observations with value < Le (and
// ≥ the previous bucket's Le) — the upper bound is exclusive, halved-open
// like the Prometheus "le" convention rounded up to the next power of two.
type BucketCount struct {
	Le uint64 `json:"le"`
	N  uint64 `json:"n"`
}

// Mean returns the arithmetic mean of the recorded values.
func (s *HistSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Snapshot merges every stripe into one view. It runs concurrently with
// writers; counters are read individually, so a snapshot taken mid-update
// may be off by in-flight observations but never corrupt.
func (h *Histogram) Snapshot() HistSnapshot {
	var merged [numBuckets]uint64
	var s HistSnapshot
	for i := range h.slots {
		sp := h.slots[i].Load()
		if sp == nil {
			continue
		}
		s.Count += sp.count.Load()
		s.Sum += sp.sum.Load()
		if m := sp.max.Load(); m > s.Max {
			s.Max = m
		}
		for b := range sp.buckets {
			merged[b] += sp.buckets[b].Load()
		}
	}
	if s.Count == 0 {
		return s
	}
	// Interpolation inside the top bucket can overshoot the largest value
	// actually seen; clamping to it keeps p99 <= max in reports.
	s.P50 = min(quantile(&merged, s.Count, 0.50), float64(s.Max))
	s.P90 = min(quantile(&merged, s.Count, 0.90), float64(s.Max))
	s.P99 = min(quantile(&merged, s.Count, 0.99), float64(s.Max))
	for b, n := range merged {
		if n == 0 {
			continue
		}
		_, hi := bucketBounds(b)
		s.Buckets = append(s.Buckets, BucketCount{Le: hi, N: n})
	}
	return s
}

// quantile estimates the q-quantile from log2 buckets by locating the
// bucket where the cumulative count crosses rank and interpolating
// linearly inside it. Log2 bucketing bounds the relative error at 2×,
// which is what a scrape-time percentile needs: the order of magnitude
// and the trend, not the exact nanosecond.
func quantile(buckets *[numBuckets]uint64, count uint64, q float64) float64 {
	rank := q * float64(count)
	var cum float64
	for b, n := range buckets {
		if n == 0 {
			continue
		}
		prev := cum
		cum += float64(n)
		if cum < rank {
			continue
		}
		lo, hi := bucketBounds(b)
		frac := (rank - prev) / float64(n)
		return float64(lo) + frac*float64(hi-lo)
	}
	return 0
}
