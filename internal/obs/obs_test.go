package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("c_total", "a counter")
	g := r.NewGauge("g", "a gauge")
	c.Inc()
	c.Add(41)
	g.Set(7)
	g.Add(-3)
	if c.Load() != 42 {
		t.Errorf("counter = %d, want 42", c.Load())
	}
	if g.Load() != 4 {
		t.Errorf("gauge = %d, want 4", g.Load())
	}
	s := r.Snapshot()
	if s.Counters["c_total"] != 42 || s.Gauges["g"] != 4 {
		t.Errorf("snapshot = %+v", s)
	}
}

func TestFuncMetrics(t *testing.T) {
	r := NewRegistry()
	r.NewCounterFunc("events_total", "", func() uint64 { return 99 })
	r.NewGaugeFunc("load", "", func() float64 { return 0.5 })
	s := r.Snapshot()
	if s.Counters["events_total"] != 99 || s.Gauges["load"] != 0.5 {
		t.Errorf("snapshot = %+v", s)
	}
}

func TestDuplicateNamePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	r := NewRegistry()
	r.NewCounter("x", "")
	r.NewCounter("x", "")
}

func TestHistogramBuckets(t *testing.T) {
	for _, tc := range []struct {
		v      uint64
		bucket int
	}{{0, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {1023, 10}, {1024, 11}} {
		if got := bucketOf(tc.v); got != tc.bucket {
			t.Errorf("bucketOf(%d) = %d, want %d", tc.v, got, tc.bucket)
		}
	}
	lo, hi := bucketBounds(11)
	if lo != 1024 || hi != 2048 {
		t.Errorf("bucketBounds(11) = [%d, %d), want [1024, 2048)", lo, hi)
	}
}

func TestHistogramSnapshot(t *testing.T) {
	h := NewHistogram()
	// 1000 observations uniform over [0, 1000): percentiles should land
	// within the 2× relative error bound of log2 buckets.
	for i := 0; i < 1000; i++ {
		h.Observe(uint64(i))
	}
	s := h.Snapshot()
	if s.Count != 1000 {
		t.Fatalf("count = %d, want 1000", s.Count)
	}
	if s.Sum != 999*1000/2 {
		t.Errorf("sum = %d, want %d", s.Sum, 999*1000/2)
	}
	if s.Max != 999 {
		t.Errorf("max = %d, want 999", s.Max)
	}
	if s.P50 < 250 || s.P50 > 1000 {
		t.Errorf("p50 = %g, want within 2x of 500", s.P50)
	}
	if s.P99 < 495 || s.P99 > 1980 {
		t.Errorf("p99 = %g, want within 2x of 990", s.P99)
	}
	if s.P50 > s.P90 || s.P90 > s.P99 {
		t.Errorf("quantiles not monotone: p50=%g p90=%g p99=%g", s.P50, s.P90, s.P99)
	}
	var n uint64
	for _, b := range s.Buckets {
		n += b.N
	}
	if n != s.Count {
		t.Errorf("bucket counts sum to %d, want %d", n, s.Count)
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram()
	s := h.Snapshot()
	if s.Count != 0 || s.P50 != 0 || s.Mean() != 0 || len(s.Buckets) != 0 {
		t.Errorf("empty snapshot = %+v", s)
	}
}

func TestHistogramSingleValue(t *testing.T) {
	h := NewHistogram()
	for i := 0; i < 100; i++ {
		h.Observe(1 << 20)
	}
	s := h.Snapshot()
	lo, hi := float64(uint64(1)<<20), float64(uint64(1)<<21)
	for _, q := range []float64{s.P50, s.P90, s.P99} {
		if q < lo || q > hi || math.IsNaN(q) {
			t.Errorf("quantile %g outside the value's bucket [%g, %g)", q, lo, hi)
		}
	}
}

// TestHistogramConcurrent is the race-clean acceptance check: many writers
// against concurrent scrapes, with exact conservation of the total count.
func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram()
	const writers, per = 8, 10000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
				h.Snapshot()
			}
		}
	}()
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(uint64(w*per + i))
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	if s := h.Snapshot(); s.Count != writers*per {
		t.Errorf("count = %d, want %d (lost observations)", s.Count, writers*per)
	}
}

func TestWriteText(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("events_total", "processed events")
	g := r.NewGauge("channels", "")
	h := r.NewHistogram("latency_ns", "flush latency")
	c.Add(3)
	g.Set(2)
	h.Observe(5)
	h.Observe(100)
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP events_total processed events",
		"# TYPE events_total counter",
		"events_total 3",
		"# TYPE channels gauge",
		"channels 2",
		"# TYPE latency_ns histogram",
		`latency_ns_bucket{le="8"} 1`,
		`latency_ns_bucket{le="128"} 2`,
		`latency_ns_bucket{le="+Inf"} 2`,
		"latency_ns_sum 105",
		"latency_ns_count 2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewHistogram()
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		var v uint64
		for pb.Next() {
			h.Observe(v)
			v += 997
		}
	})
}

func BenchmarkCounterInc(b *testing.B) {
	var c Counter
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
}
