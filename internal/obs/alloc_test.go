package obs

import "testing"

// The instrumentation contract: recording must be safe to place on the
// router's allocation-free fast paths. The strict zero assertion is skipped
// under the race detector, whose sync.Pool instrumentation may allocate.

func TestObserveZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("alloc accounting is not meaningful under -race")
	}
	h := NewHistogram()
	h.Observe(1) // warm the stripe and pool
	var v uint64
	if a := testing.AllocsPerRun(1000, func() {
		h.Observe(v)
		v += 4093
	}); a != 0 {
		t.Errorf("Histogram.Observe allocates %.2f/op, want 0", a)
	}
	var c Counter
	if a := testing.AllocsPerRun(1000, func() { c.Inc() }); a != 0 {
		t.Errorf("Counter.Inc allocates %.2f/op, want 0", a)
	}
	var g Gauge
	if a := testing.AllocsPerRun(1000, func() { g.Set(int64(v)) }); a != 0 {
		t.Errorf("Gauge.Set allocates %.2f/op, want 0", a)
	}
}
