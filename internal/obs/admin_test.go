package obs

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"strings"
	"testing"
)

func adminGet(t *testing.T, a *Admin, path string) (int, string) {
	t.Helper()
	resp, err := http.Get("http://" + a.Addr() + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read: %v", path, err)
	}
	return resp.StatusCode, string(body)
}

func TestAdminEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.NewCounter("events_total", "events").Add(5)
	reg.NewHistogram("latency_ns", "").Observe(1000)

	a, err := NewAdmin("127.0.0.1:0", reg, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()

	code, body := adminGet(t, a, "/metrics")
	if code != 200 || !strings.Contains(body, "events_total 5") {
		t.Errorf("/metrics = %d %q", code, body)
	}
	if !strings.Contains(body, "latency_ns_count 1") {
		t.Errorf("/metrics missing histogram:\n%s", body)
	}

	code, body = adminGet(t, a, "/statsz")
	if code != 200 {
		t.Fatalf("/statsz = %d", code)
	}
	var snap Snapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("/statsz not JSON: %v\n%s", err, body)
	}
	if snap.Counters["events_total"] != 5 || snap.Histograms["latency_ns"].Count != 1 {
		t.Errorf("/statsz snapshot = %+v", snap)
	}

	if code, body = adminGet(t, a, "/healthz"); code != 200 || body != "ok\n" {
		t.Errorf("/healthz = %d %q", code, body)
	}

	if code, _ = adminGet(t, a, "/debug/pprof/"); code != 200 {
		t.Errorf("/debug/pprof/ = %d", code)
	}
}

func TestAdminHealthzUnhealthy(t *testing.T) {
	a, err := NewAdmin("127.0.0.1:0", NewRegistry(), func() error {
		return errors.New("router closed")
	})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	code, body := adminGet(t, a, "/healthz")
	if code != http.StatusServiceUnavailable || !strings.Contains(body, "router closed") {
		t.Errorf("/healthz = %d %q, want 503 with reason", code, body)
	}
}

func TestAdminClose(t *testing.T) {
	a, err := NewAdmin("127.0.0.1:0", NewRegistry(), nil)
	if err != nil {
		t.Fatal(err)
	}
	addr := a.Addr()
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := http.Get("http://" + addr + "/healthz"); err == nil {
		t.Error("admin still serving after Close")
	}
}
