package obs

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"strings"
	"testing"
)

func adminGet(t *testing.T, a *Admin, path string) (int, string) {
	t.Helper()
	resp, err := http.Get("http://" + a.Addr() + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read: %v", path, err)
	}
	return resp.StatusCode, string(body)
}

func TestAdminEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.NewCounter("events_total", "events").Add(5)
	reg.NewHistogram("latency_ns", "").Observe(1000)

	a, err := NewAdmin("127.0.0.1:0", reg, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()

	code, body := adminGet(t, a, "/metrics")
	if code != 200 || !strings.Contains(body, "events_total 5") {
		t.Errorf("/metrics = %d %q", code, body)
	}
	if !strings.Contains(body, "latency_ns_count 1") {
		t.Errorf("/metrics missing histogram:\n%s", body)
	}

	code, body = adminGet(t, a, "/statsz")
	if code != 200 {
		t.Fatalf("/statsz = %d", code)
	}
	var snap Snapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("/statsz not JSON: %v\n%s", err, body)
	}
	if snap.Counters["events_total"] != 5 || snap.Histograms["latency_ns"].Count != 1 {
		t.Errorf("/statsz snapshot = %+v", snap)
	}

	if code, body = adminGet(t, a, "/healthz"); code != 200 || body != "ok\n" {
		t.Errorf("/healthz = %d %q", code, body)
	}

	if code, _ = adminGet(t, a, "/debug/pprof/"); code != 200 {
		t.Errorf("/debug/pprof/ = %d", code)
	}
}

func TestAdminHealthzUnhealthy(t *testing.T) {
	a, err := NewAdmin("127.0.0.1:0", NewRegistry(), func() error {
		return errors.New("router closed")
	})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	code, body := adminGet(t, a, "/healthz")
	if code != http.StatusServiceUnavailable || !strings.Contains(body, "router closed") {
		t.Errorf("/healthz = %d %q, want 503 with reason", code, body)
	}
}

func TestAdminClose(t *testing.T) {
	a, err := NewAdmin("127.0.0.1:0", NewRegistry(), nil)
	if err != nil {
		t.Fatal(err)
	}
	addr := a.Addr()
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := http.Get("http://" + addr + "/healthz"); err == nil {
		t.Error("admin still serving after Close")
	}
}

// TestAdminDebugHandlers covers the subsystem debug-handler surface: extra
// handlers mount under /debug/, the index enumerates them, the declared
// method is enforced with 405 (never 404 — a live endpoint probed with the
// wrong verb must be distinguishable from a missing one), and paths outside
// /debug/ or shadowing the profiler are rejected at construction.
func TestAdminDebugHandlers(t *testing.T) {
	var armed bool
	a, err := NewAdmin("127.0.0.1:0", NewRegistry(), nil,
		DebugHandler{
			Path: "/debug/pdump/start", Method: http.MethodPost, Help: "arm the capture ring",
			Handle: func(w http.ResponseWriter, _ *http.Request) { armed = true; w.Write([]byte("armed\n")) },
		},
		DebugHandler{
			Path: "/debug/pdump/fetch", Method: http.MethodGet, Help: "drain captured records",
			Handle: func(w http.ResponseWriter, _ *http.Request) { w.Write([]byte("[]\n")) },
		},
	)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()

	// Index lists both registered handlers and the built-in profiler.
	code, body := adminGet(t, a, "/debug/")
	if code != 200 {
		t.Fatalf("/debug/ = %d", code)
	}
	for _, want := range []string{"/debug/pdump/start", "/debug/pdump/fetch", "/debug/pprof/", "arm the capture ring"} {
		if !strings.Contains(body, want) {
			t.Errorf("/debug/ index missing %q:\n%s", want, body)
		}
	}

	// Wrong method on a registered endpoint: 405 with Allow, not 404.
	resp, err := http.Get("http://" + a.Addr() + "/debug/pdump/start")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /debug/pdump/start = %d, want 405", resp.StatusCode)
	}
	if allow := resp.Header.Get("Allow"); allow != http.MethodPost {
		t.Errorf("Allow = %q, want POST", allow)
	}
	if armed {
		t.Error("wrong-method request reached the handler")
	}

	// Right method goes through.
	resp, err = http.Post("http://"+a.Addr()+"/debug/pdump/start", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || !armed {
		t.Errorf("POST /debug/pdump/start = %d (armed=%v), want 200 and armed", resp.StatusCode, armed)
	}

	// Unknown debug path is still 404 (the index only serves /debug/ itself).
	if code, _ := adminGet(t, a, "/debug/nonesuch"); code != http.StatusNotFound {
		t.Errorf("/debug/nonesuch = %d, want 404", code)
	}
}

func TestAdminDebugHandlerRejections(t *testing.T) {
	h := func(w http.ResponseWriter, _ *http.Request) {}
	if _, err := NewAdmin("127.0.0.1:0", NewRegistry(), nil,
		DebugHandler{Path: "/pdump", Handle: h}); err == nil {
		t.Error("handler outside /debug/ accepted")
	}
	if _, err := NewAdmin("127.0.0.1:0", NewRegistry(), nil,
		DebugHandler{Path: "/debug/pprof/evil", Handle: h}); err == nil {
		t.Error("handler shadowing /debug/pprof accepted")
	}
}
