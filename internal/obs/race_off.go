//go:build !race

package obs

// raceEnabled reports whether the race detector is compiled in; alloc
// regression tests skip their strict zero assertions under -race.
const raceEnabled = false
