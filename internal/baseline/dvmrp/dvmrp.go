// Package dvmrp implements a DVMRP/PIM-DM-style broadcast-and-prune
// multicast routing engine, one of the group-model baselines the paper
// argues against: data for a group is flooded along the reverse-path tree
// to the entire network, and routers with no downstream members prune
// themselves off per (S,G), with prune state that periodically expires and
// re-floods (Sections 3.4, 7.1).
//
// The engine exists to reproduce the paper's structural claim: EXPRESS
// "eliminates the need for non-scalable broadcast-and-prune behavior" — on
// a sparse group, DVMRP touches every link in the domain each prune
// lifetime, EXPRESS only the subscriber paths (experiment E9).
package dvmrp

import (
	"repro/internal/addr"
	"repro/internal/fib"
	"repro/internal/netsim"
	"repro/internal/unicast"
)

// Message types.

// Prune tells the upstream neighbor to stop forwarding (S,G) this way.
type Prune struct {
	S, G     addr.Addr
	Lifetime netsim.Time
}

// Graft undoes a prune after a downstream member appears.
type Graft struct {
	S, G addr.Addr
}

const ctrlSize = 32 // prune/graft on the wire incl. IP header

type sg struct{ s, g addr.Addr }

// Router is a DVMRP router on one simulator node.
type Router struct {
	node *netsim.Node
	rt   *unicast.Routing
	// routerIfs marks interfaces leading to other DVMRP routers (flooding
	// targets); other interfaces are host edges.
	routerIfs map[int]bool

	// members[g] is the set of local host interfaces joined to g.
	members map[addr.Addr]map[int]bool

	// prunedDown[sg][ifindex] is the expiry of a prune received from the
	// downstream neighbor on that interface.
	prunedDown map[sg]map[int]netsim.Time
	// prunedUp[sg] records that we pruned ourselves upstream.
	prunedUp map[sg]bool

	// PruneLifetime bounds prune state; expiry causes re-flood (the
	// periodic broadcast cost inherent to the protocol).
	PruneLifetime netsim.Time

	Metrics Metrics

	// OnLocalDeliver receives data for locally joined groups.
	OnLocalDeliver func(pkt *netsim.Packet)
}

// Metrics counts protocol activity.
type Metrics struct {
	DataForwarded uint64
	DataDropped   uint64 // RPF failures
	PrunesSent    uint64
	PrunesRecv    uint64
	GraftsSent    uint64
	GraftsRecv    uint64
}

// New attaches a DVMRP router to node. routerIfs lists the interfaces that
// face other DVMRP routers.
func New(node *netsim.Node, rt *unicast.Routing, routerIfs []int) *Router {
	r := &Router{
		node:          node,
		rt:            rt,
		routerIfs:     make(map[int]bool, len(routerIfs)),
		members:       make(map[addr.Addr]map[int]bool),
		prunedDown:    make(map[sg]map[int]netsim.Time),
		prunedUp:      make(map[sg]bool),
		PruneLifetime: 120 * netsim.Second,
	}
	for _, i := range routerIfs {
		r.routerIfs[i] = true
	}
	node.Handler = r
	return r
}

// Node returns the underlying simulator node.
func (r *Router) Node() *netsim.Node { return r.node }

// JoinLocal registers a local member host interface for group g and grafts
// any pruned source trees back.
func (r *Router) JoinLocal(g addr.Addr, hostIf int) {
	m := r.members[g]
	if m == nil {
		m = make(map[int]bool)
		r.members[g] = m
	}
	m[hostIf] = true
	// Graft every (S,g) we pruned upstream.
	for key := range r.prunedUp {
		if key.g != g {
			continue
		}
		delete(r.prunedUp, key)
		r.sendUpstream(key.s, &Graft{S: key.s, G: g})
		r.Metrics.GraftsSent++
	}
}

// LeaveLocal removes a local member host interface.
func (r *Router) LeaveLocal(g addr.Addr, hostIf int) {
	if m := r.members[g]; m != nil {
		delete(m, hostIf)
		if len(m) == 0 {
			delete(r.members, g)
		}
	}
}

// StateEntries counts (S,G) prune records plus active membership groups,
// the router-state metric for experiment E9. Unlike EXPRESS, prune state
// exists at routers with no members at all.
func (r *Router) StateEntries() int {
	n := len(r.prunedUp)
	for _, m := range r.prunedDown {
		n += len(m)
	}
	return n + len(r.members)
}

// Receive implements netsim.Handler.
func (r *Router) Receive(ifindex int, pkt *netsim.Packet) {
	switch m := pkt.Payload.(type) {
	case *Prune:
		r.Metrics.PrunesRecv++
		r.handlePrune(ifindex, m)
	case *Graft:
		r.Metrics.GraftsRecv++
		r.handleGraft(ifindex, m)
	default:
		if pkt.Proto == netsim.ProtoData && pkt.Dst.IsMulticast() {
			r.forwardData(ifindex, pkt)
		}
	}
}

// forwardData is reverse-path flooding with prunes: accept on the RPF
// interface toward S, flood to all other router interfaces not pruned, and
// to local member hosts.
func (r *Router) forwardData(ifindex int, pkt *netsim.Packet) {
	route, ok := r.rt.RPFInterface(r.node.ID, pkt.Src)
	if !ok {
		r.Metrics.DataDropped++
		return
	}
	// Packets from a directly attached host arrive on a host interface
	// which is the RPF interface toward that host.
	if route.Ifindex != ifindex {
		r.Metrics.DataDropped++
		// A non-RPF arrival means the sender considers us downstream but we
		// are not: prune (S,G) toward it so the flood converges onto the
		// RPF tree (the PIM-DM/DVMRP dependent-neighbor rule, simplified).
		if r.routerIfs[ifindex] {
			r.Metrics.PrunesSent++
			r.sendVia(ifindex, pkt.Src, &Prune{S: pkt.Src, G: pkt.Dst, Lifetime: r.PruneLifetime})
		}
		return
	}
	key := sg{pkt.Src, pkt.Dst}
	now := r.node.Sim().Now()

	var outs []int
	for i := 0; i < r.node.NumIfaces(); i++ {
		if i == ifindex || !r.routerIfs[i] || !r.node.IfaceUp(i) {
			continue
		}
		if exp, pruned := r.prunedDown[key][i]; pruned && exp > now {
			continue
		}
		outs = append(outs, i)
	}
	for hostIf := range r.members[pkt.Dst] {
		if hostIf != ifindex {
			outs = append(outs, hostIf)
		}
	}
	if r.OnLocalDeliver != nil && len(r.members[pkt.Dst]) > 0 {
		r.OnLocalDeliver(pkt)
	}

	if len(outs) == 0 {
		// Leaf with no members: prune ourselves off this source tree.
		if !r.prunedUp[key] && r.routerIfs[ifindex] {
			r.prunedUp[key] = true
			r.Metrics.PrunesSent++
			r.sendVia(ifindex, pkt.Src, &Prune{S: pkt.Src, G: pkt.Dst, Lifetime: r.PruneLifetime})
			k := key
			r.node.Sim().After(r.PruneLifetime, func() { delete(r.prunedUp, k) })
		}
		r.Metrics.DataDropped++
		return
	}
	if pkt.TTL <= 1 {
		return
	}
	fwd := pkt.Clone()
	fwd.TTL--
	for _, i := range outs {
		r.node.Send(i, fwd)
	}
	r.Metrics.DataForwarded++
}

func (r *Router) handlePrune(ifindex int, m *Prune) {
	key := sg{m.S, m.G}
	pd := r.prunedDown[key]
	if pd == nil {
		pd = make(map[int]netsim.Time)
		r.prunedDown[key] = pd
	}
	pd[ifindex] = r.node.Sim().Now() + m.Lifetime
	k, ifi := key, ifindex
	r.node.Sim().After(m.Lifetime, func() {
		if pd := r.prunedDown[k]; pd != nil {
			if exp, ok := pd[ifi]; ok && exp <= r.node.Sim().Now() {
				delete(pd, ifi)
				if len(pd) == 0 {
					delete(r.prunedDown, k)
				}
			}
		}
	})
}

func (r *Router) handleGraft(ifindex int, m *Graft) {
	key := sg{m.S, m.G}
	if pd := r.prunedDown[key]; pd != nil {
		delete(pd, ifindex)
		if len(pd) == 0 {
			delete(r.prunedDown, key)
		}
	}
	// If we had pruned upstream, graft ourselves back too.
	if r.prunedUp[key] {
		delete(r.prunedUp, key)
		r.Metrics.GraftsSent++
		r.sendUpstream(m.S, &Graft{S: m.S, G: m.G})
	}
}

func (r *Router) sendUpstream(src addr.Addr, payload any) {
	route, ok := r.rt.RPFInterface(r.node.ID, src)
	if !ok || route.Ifindex < 0 {
		return
	}
	r.sendVia(route.Ifindex, src, payload)
}

func (r *Router) sendVia(ifindex int, _ addr.Addr, payload any) {
	r.node.Send(ifindex, &netsim.Packet{
		Src: r.node.Addr, Dst: addr.WellKnownECMP, Proto: netsim.ProtoDVMRP,
		TTL: 1, Size: ctrlSize, Payload: payload,
	})
}

// FIBMemoryBytes reports the fast-path memory this router's forwarding
// state would occupy at the 12-byte entry encoding, for apples-to-apples
// comparison with the EXPRESS FIB (experiment E9).
func (r *Router) FIBMemoryBytes() int { return fib.MemoryFor(r.StateEntries()) }
