package dvmrp

import (
	"testing"

	"repro/internal/addr"
	"repro/internal/netsim"
	"repro/internal/testutil"
	"repro/internal/unicast"
)

// buildY creates the test network:
//
//	src -- r0 -- r1 -- r2 -- member
//	              \
//	               r3 -- offpath
//
// and returns the routers plus the hosts.
func buildY(t *testing.T) (*netsim.Sim, []*Router, *testutil.Host, *testutil.Host, *testutil.Host) {
	t.Helper()
	sim := netsim.New(11)
	rn := netsim.AddRouters(sim, 4)
	sim.Connect(rn[0], rn[1], netsim.DefaultWAN.Delay, netsim.DefaultWAN.Bps, 1)
	sim.Connect(rn[1], rn[2], netsim.DefaultWAN.Delay, netsim.DefaultWAN.Bps, 1)
	sim.Connect(rn[1], rn[3], netsim.DefaultWAN.Delay, netsim.DefaultWAN.Bps, 1)

	src, _ := testutil.AttachCountingHost(sim, rn[0], 0)
	member, memberIf := testutil.AttachCountingHost(sim, rn[2], 1)
	offpath, offIf := testutil.AttachCountingHost(sim, rn[3], 2)

	rt := unicast.Compute(sim)
	routers := make([]*Router, 4)
	routerIfsOf := map[int][]int{0: {0}, 1: {0, 1, 2}, 2: {0}, 3: {0}}
	for i, n := range rn {
		routers[i] = New(n, rt, routerIfsOf[i])
	}
	routers[2].JoinLocal(testGroup, memberIf)
	_ = offIf
	return sim, routers, src, member, offpath
}

var testGroup = addr.MustParse("239.1.2.3")

func TestFloodAndPrune(t *testing.T) {
	sim, routers, src, member, offpath := buildY(t)

	sim.At(0, func() { src.SendMulticast(testGroup, 1000) })
	sim.RunUntil(netsim.Second)

	if member.Delivered != 1 {
		t.Errorf("member delivered = %d, want 1", member.Delivered)
	}
	// Broadcast-and-prune cost: the first packet floods to the off-path
	// branch even though it has no members...
	if got := routers[3].Metrics.DataDropped; got == 0 {
		t.Error("off-path router never saw (and dropped) flooded data")
	}
	if routers[3].Metrics.PrunesSent == 0 {
		t.Error("off-path leaf router sent no prune")
	}
	offpathLinkBefore := sim.Links()[2].TotalPackets()

	// ...but after the prune, subsequent packets stay off that branch.
	sim.After(0, func() { src.SendMulticast(testGroup, 1000) })
	sim.RunUntil(2 * netsim.Second)
	if member.Delivered != 2 {
		t.Errorf("member delivered = %d, want 2", member.Delivered)
	}
	if got := sim.Links()[2].TotalPackets(); got != offpathLinkBefore {
		t.Errorf("pruned branch carried %d new packets, want 0", got-offpathLinkBefore)
	}
	if offpath.Delivered != 0 {
		t.Errorf("non-member host delivered = %d, want 0", offpath.Delivered)
	}
}

func TestGraftRestoresDelivery(t *testing.T) {
	sim, routers, src, _, offpath := buildY(t)

	// Packet 1 floods; r3 prunes.
	sim.At(0, func() { src.SendMulticast(testGroup, 1000) })
	sim.RunUntil(netsim.Second)
	if routers[3].Metrics.PrunesSent == 0 {
		t.Fatal("expected a prune from the off-path router")
	}

	// The off-path host joins: r3 grafts and the next packet arrives.
	// (Host interface on r3 is its second interface, index 1.)
	sim.After(0, func() { routers[3].JoinLocal(testGroup, 1) })
	sim.After(100*netsim.Millisecond, func() { src.SendMulticast(testGroup, 1000) })
	sim.RunUntil(2 * netsim.Second)

	if routers[3].Metrics.GraftsSent == 0 {
		t.Error("joining after a prune sent no graft")
	}
	if offpath.Delivered != 1 {
		t.Errorf("grafted host delivered = %d, want 1", offpath.Delivered)
	}
}

func TestPruneExpiryRefloods(t *testing.T) {
	sim, routers, src, _, _ := buildY(t)
	for _, r := range routers {
		r.PruneLifetime = 500 * netsim.Millisecond
	}

	sim.At(0, func() { src.SendMulticast(testGroup, 1000) })
	sim.RunUntil(netsim.Second) // prune expired by now
	before := routers[3].Metrics.DataDropped

	sim.After(0, func() { src.SendMulticast(testGroup, 1000) })
	sim.RunUntil(2 * netsim.Second)
	if got := routers[3].Metrics.DataDropped; got <= before {
		t.Error("after prune expiry the flood did not resume (the protocol's periodic broadcast cost)")
	}
}

func TestRPFCheckDropsWrongInterface(t *testing.T) {
	sim, routers, _, _, _ := buildY(t)

	// Forge a packet "from" the src host but arriving at r2 from its
	// member-host side: the RPF check must drop it.
	srcAddr := netsim.HostAddr(0)
	sim.At(0, func() {
		routers[2].Receive(1, &netsim.Packet{
			Src: srcAddr, Dst: testGroup, Proto: netsim.ProtoData, TTL: 10, Size: 100,
		})
	})
	before := routers[2].Metrics.DataDropped
	sim.RunUntil(netsim.Second)
	if routers[2].Metrics.DataDropped != before+1 {
		t.Error("spoofed packet passed the RPF check")
	}
}
