// Package cbt implements a Core Based Trees (CBT, RFC 2201-shape)
// bidirectional shared-tree multicast engine, a group-model baseline.
//
// One core router per group anchors a single bidirectional tree: joins
// travel hop-by-hop toward the core creating tree state; data from any
// member flows up and down the tree, with non-member senders tunnelling to
// the core. The paper's comparison points (Section 4.4): "the transmission
// through the core is similar in behavior and cost to relaying via the SR
// but without the application-level control. Moreover, there is no option
// of using a source-specific tree ... if the core introduces excessive
// delay."
package cbt

import (
	"repro/internal/addr"
	"repro/internal/fib"
	"repro/internal/netsim"
	"repro/internal/unicast"
)

// JoinRequest travels hop-by-hop toward the group's core.
type JoinRequest struct {
	G    addr.Addr
	Core addr.Addr
}

// QuitNotification removes a branch with no more members below.
type QuitNotification struct {
	G addr.Addr
}

const ctrlSize = 32

// Router is a CBT router.
type Router struct {
	node *netsim.Node
	rt   *unicast.Routing
	// Cores maps each group to its core router address (statically
	// configured, as CBT requires core placement by network management —
	// exactly the property the paper contrasts with application-selected
	// session relays).
	Cores map[addr.Addr]addr.Addr

	trees   map[addr.Addr]*tree
	members map[addr.Addr]map[int]bool

	Metrics Metrics

	OnLocalDeliver func(pkt *netsim.Packet)
}

// tree is the bidirectional per-group state: the parent interface toward
// the core and the set of child interfaces.
type tree struct {
	parentIf int // -1 at the core itself
	childIfs map[int]bool
}

// Metrics counts protocol activity.
type Metrics struct {
	JoinsSent, JoinsRecv uint64
	QuitsSent, QuitsRecv uint64
	DataForwarded        uint64
	TunnelledToCore      uint64
}

// New attaches a CBT router to node.
func New(node *netsim.Node, rt *unicast.Routing, cores map[addr.Addr]addr.Addr) *Router {
	r := &Router{
		node:    node,
		rt:      rt,
		Cores:   cores,
		trees:   make(map[addr.Addr]*tree),
		members: make(map[addr.Addr]map[int]bool),
	}
	node.Handler = r
	return r
}

// Node returns the underlying simulator node.
func (r *Router) Node() *netsim.Node { return r.node }

// StateEntries counts per-group tree records (E9's state metric).
func (r *Router) StateEntries() int { return len(r.trees) }

// FIBMemoryBytes prices the state at the 12-byte entry encoding.
func (r *Router) FIBMemoryBytes() int { return fib.MemoryFor(len(r.trees)) }

// OnTree reports whether this router is on g's shared tree.
func (r *Router) OnTree(g addr.Addr) bool { return r.trees[g] != nil }

// JoinLocal adds a local member host interface and joins the shared tree.
func (r *Router) JoinLocal(g addr.Addr, hostIf int) {
	m := r.members[g]
	if m == nil {
		m = make(map[int]bool)
		r.members[g] = m
	}
	m[hostIf] = true
	r.joinTree(g)
}

// LeaveLocal removes a local member; the branch quits upward when empty.
func (r *Router) LeaveLocal(g addr.Addr, hostIf int) {
	if m := r.members[g]; m != nil {
		delete(m, hostIf)
		if len(m) == 0 {
			delete(r.members, g)
		}
	}
	r.maybeQuit(g)
}

func (r *Router) joinTree(g addr.Addr) {
	if r.trees[g] != nil {
		return
	}
	core := r.Cores[g]
	t := &tree{parentIf: -1, childIfs: make(map[int]bool)}
	if core != r.node.Addr {
		route, ok := r.rt.NextHop(r.node.ID, core)
		if !ok || route.Ifindex < 0 {
			return
		}
		t.parentIf = route.Ifindex
		r.Metrics.JoinsSent++
		r.node.Send(route.Ifindex, &netsim.Packet{
			Src: r.node.Addr, Dst: core, Proto: netsim.ProtoCBT,
			TTL: 1, Size: ctrlSize, Payload: &JoinRequest{G: g, Core: core},
		})
	}
	r.trees[g] = t
}

func (r *Router) maybeQuit(g addr.Addr) {
	t := r.trees[g]
	if t == nil || len(t.childIfs) > 0 || len(r.members[g]) > 0 {
		return
	}
	if t.parentIf >= 0 {
		r.Metrics.QuitsSent++
		r.node.Send(t.parentIf, &netsim.Packet{
			Src: r.node.Addr, Dst: addr.WellKnownECMP, Proto: netsim.ProtoCBT,
			TTL: 1, Size: ctrlSize, Payload: &QuitNotification{G: g},
		})
	}
	delete(r.trees, g)
}

// Receive implements netsim.Handler.
func (r *Router) Receive(ifindex int, pkt *netsim.Packet) {
	switch m := pkt.Payload.(type) {
	case *JoinRequest:
		r.Metrics.JoinsRecv++
		r.handleJoin(ifindex, m)
	case *QuitNotification:
		r.Metrics.QuitsRecv++
		if t := r.trees[m.G]; t != nil {
			delete(t.childIfs, ifindex)
			r.maybeQuit(m.G)
		}
	case *netsim.Encap:
		r.handleTunnel(pkt, m)
	default:
		if pkt.Proto == netsim.ProtoData && pkt.Dst.IsMulticast() {
			r.forwardData(ifindex, pkt)
		}
	}
}

// handleJoin grafts the requesting branch: the arrival interface becomes a
// child; if we are not on the tree yet the join continues toward the core.
func (r *Router) handleJoin(ifindex int, m *JoinRequest) {
	t := r.trees[m.G]
	if t == nil {
		t = &tree{parentIf: -1, childIfs: make(map[int]bool)}
		r.trees[m.G] = t
		if m.Core != r.node.Addr {
			route, ok := r.rt.NextHop(r.node.ID, m.Core)
			if ok && route.Ifindex >= 0 {
				t.parentIf = route.Ifindex
				r.Metrics.JoinsSent++
				r.node.Send(route.Ifindex, &netsim.Packet{
					Src: r.node.Addr, Dst: m.Core, Proto: netsim.ProtoCBT,
					TTL: 1, Size: ctrlSize, Payload: m,
				})
			}
		}
	}
	t.childIfs[ifindex] = true
}

// forwardData implements bidirectional shared-tree forwarding: a packet
// arriving on any tree interface is forwarded to all other tree interfaces
// (parent and children) and to local members. A packet arriving from a
// local sender host enters the tree the same way. Off-tree packets from
// non-member senders are tunnelled to the core.
func (r *Router) forwardData(ifindex int, pkt *netsim.Packet) {
	g := pkt.Dst
	t := r.trees[g]
	if t == nil {
		// Off-tree first-hop router of a non-member sender: tunnel the
		// packet to the core (CBT's sender model — any host can send).
		core, ok := r.Cores[g]
		if !ok {
			return
		}
		route, ok2 := r.rt.NextHop(r.node.ID, core)
		if !ok2 || route.Ifindex < 0 {
			return
		}
		r.Metrics.TunnelledToCore++
		r.node.Send(route.Ifindex, &netsim.Packet{
			Src: r.node.Addr, Dst: core, Proto: netsim.ProtoEncap,
			TTL: netsim.DefaultTTL, Size: pkt.Size + 20,
			Payload: &netsim.Encap{Inner: pkt},
		})
		return
	}
	r.emitOnTree(t, g, ifindex, pkt)
}

// handleTunnel decapsulates sender traffic at (or en route to) the core.
func (r *Router) handleTunnel(outer *netsim.Packet, enc *netsim.Encap) {
	if outer.Dst != r.node.Addr {
		// Transit: forward the tunnel packet toward the core.
		route, ok := r.rt.NextHop(r.node.ID, outer.Dst)
		if ok && route.Ifindex >= 0 && outer.TTL > 1 {
			fwd := outer.Clone()
			fwd.TTL--
			r.node.Send(route.Ifindex, fwd)
		}
		return
	}
	inner := enc.Inner
	if inner == nil || !inner.Dst.IsMulticast() {
		return
	}
	if t := r.trees[inner.Dst]; t != nil {
		r.emitOnTree(t, inner.Dst, -1, inner)
	}
}

// emitOnTree sends pkt out of every tree interface except the arrival one.
func (r *Router) emitOnTree(t *tree, g addr.Addr, arrivalIf int, pkt *netsim.Packet) {
	if pkt.TTL <= 1 {
		return
	}
	fwd := pkt.Clone()
	fwd.TTL--
	sent := false
	if t.parentIf >= 0 && t.parentIf != arrivalIf {
		r.node.Send(t.parentIf, fwd)
		sent = true
	}
	for c := range t.childIfs {
		if c != arrivalIf {
			r.node.Send(c, fwd)
			sent = true
		}
	}
	for hostIf := range r.members[g] {
		if hostIf != arrivalIf {
			r.node.Send(hostIf, fwd)
			sent = true
		}
	}
	if sent {
		r.Metrics.DataForwarded++
	}
	if r.OnLocalDeliver != nil && len(r.members[g]) > 0 {
		r.OnLocalDeliver(pkt)
	}
}
