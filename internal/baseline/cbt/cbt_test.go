package cbt

import (
	"testing"

	"repro/internal/addr"
	"repro/internal/netsim"
	"repro/internal/testutil"
	"repro/internal/unicast"
)

var group = addr.MustParse("239.5.5.5")

// line builds sender -- r0 -- r1 -- r2 -- memberA, with memberB on r1.
// The core is r1 (the middle).
func line(t *testing.T) (*netsim.Sim, []*Router, *testutil.Host, *testutil.Host, *testutil.Host) {
	t.Helper()
	sim := netsim.New(21)
	rn := netsim.AddRouters(sim, 3)
	sim.Connect(rn[0], rn[1], netsim.DefaultWAN.Delay, netsim.DefaultWAN.Bps, 1)
	sim.Connect(rn[1], rn[2], netsim.DefaultWAN.Delay, netsim.DefaultWAN.Bps, 1)
	sender, _ := testutil.AttachCountingHost(sim, rn[0], 0)
	memberA, aIf := testutil.AttachCountingHost(sim, rn[2], 1)
	memberB, bIf := testutil.AttachCountingHost(sim, rn[1], 2)

	rt := unicast.Compute(sim)
	cores := map[addr.Addr]addr.Addr{group: rn[1].Addr}
	routers := make([]*Router, 3)
	for i, n := range rn {
		routers[i] = New(n, rt, cores)
	}
	routers[2].JoinLocal(group, aIf)
	routers[1].JoinLocal(group, bIf)
	return sim, routers, sender, memberA, memberB
}

func TestNonMemberSenderTunnelsToCore(t *testing.T) {
	sim, routers, sender, memberA, memberB := line(t)
	sim.RunUntil(100 * netsim.Millisecond) // let joins settle

	if !routers[1].OnTree(group) || !routers[2].OnTree(group) {
		t.Fatal("shared tree not built")
	}
	if routers[0].OnTree(group) {
		t.Fatal("non-member branch router should not be on the tree")
	}

	sim.After(0, func() { sender.SendMulticast(group, 800) })
	sim.RunUntil(netsim.Second)

	if routers[0].Metrics.TunnelledToCore != 1 {
		t.Errorf("tunnelled = %d, want 1 (any host can send in the group model)",
			routers[0].Metrics.TunnelledToCore)
	}
	if memberA.Delivered != 1 || memberB.Delivered != 1 {
		t.Errorf("deliveries = %d/%d, want 1/1", memberA.Delivered, memberB.Delivered)
	}
}

func TestBidirectionalMemberSend(t *testing.T) {
	sim, _, _, memberA, memberB := line(t)
	sim.RunUntil(100 * netsim.Millisecond)

	// memberA (on r2, a tree leaf) sends: the packet must flow UP the
	// shared tree through the core and down to memberB — bidirectional
	// forwarding, no tunnel.
	sim.After(0, func() { memberA.SendMulticast(group, 800) })
	sim.RunUntil(netsim.Second)

	if memberB.Delivered != 1 {
		t.Errorf("memberB delivered = %d, want 1", memberB.Delivered)
	}
	if memberA.Delivered != 0 {
		t.Errorf("sender echoed its own packet: delivered = %d", memberA.Delivered)
	}
}

func TestQuitPrunesBranch(t *testing.T) {
	sim, routers, sender, memberA, memberB := line(t)
	sim.RunUntil(100 * netsim.Millisecond)

	// memberA leaves: r2's branch quits; only memberB receives afterwards.
	sim.After(0, func() { routers[2].LeaveLocal(group, 1) })
	sim.After(50*netsim.Millisecond, func() { sender.SendMulticast(group, 800) })
	sim.RunUntil(netsim.Second)

	if routers[2].OnTree(group) {
		t.Error("r2 still on tree after its last member left")
	}
	if memberA.Delivered != 0 {
		t.Errorf("departed member delivered = %d, want 0", memberA.Delivered)
	}
	if memberB.Delivered != 1 {
		t.Errorf("remaining member delivered = %d, want 1", memberB.Delivered)
	}
	if routers[2].StateEntries() != 0 {
		t.Errorf("r2 state entries = %d, want 0", routers[2].StateEntries())
	}
}

func TestCoreDetourDelay(t *testing.T) {
	// Topology where the core is off the direct sender→member path:
	//
	//	r0 ---- r1 (member)
	//	 \
	//	  r2 (core)
	//
	// Sender on r0. Direct path is 1 WAN hop; via the core it is 2.
	sim := netsim.New(22)
	rn := netsim.AddRouters(sim, 3)
	sim.Connect(rn[0], rn[1], netsim.DefaultWAN.Delay, netsim.DefaultWAN.Bps, 1)
	sim.Connect(rn[0], rn[2], netsim.DefaultWAN.Delay, netsim.DefaultWAN.Bps, 1)
	sim.Connect(rn[1], rn[2], netsim.DefaultWAN.Delay, netsim.DefaultWAN.Bps, 1)
	sender, _ := testutil.AttachCountingHost(sim, rn[0], 0)
	member, mIf := testutil.AttachCountingHost(sim, rn[1], 1)

	rt := unicast.Compute(sim)
	cores := map[addr.Addr]addr.Addr{group: rn[2].Addr}
	routers := make([]*Router, 3)
	for i, n := range rn {
		routers[i] = New(n, rt, cores)
	}
	routers[1].JoinLocal(group, mIf)
	sim.RunUntil(100 * netsim.Millisecond)

	start := sim.Now()
	sim.After(0, func() { sender.SendMulticast(group, 800) })
	sim.RunUntil(netsim.Second)

	if member.Delivered != 1 {
		t.Fatalf("member delivered = %d, want 1", member.Delivered)
	}
	delay := member.DeliveredAt[0] - start
	// Via the core: host edge + r0→r2 + r2→r1 + edge ≈ 2 WAN hops; direct
	// would be ≈1. The detour must be visible in the delay.
	if delay < 2*netsim.DefaultWAN.Delay {
		t.Errorf("delay %v too low: packet did not detour via the core", delay)
	}
	_ = routers
}
