package pimsm

import (
	"testing"

	"repro/internal/addr"
	"repro/internal/netsim"
	"repro/internal/testutil"
	"repro/internal/unicast"
)

var group = addr.MustParse("239.7.7.7")

// build constructs the stretch topology of the paper's RP-detour argument:
//
//	src - r0 - r1 - r2 - r3 - r4(RP)
//	                |
//	             member
//
// The member is 2 hops from the source directly, but the shared tree pulls
// data source→RP→member: 4 + 2 = 6 router hops before SPT switchover.
func build(t *testing.T, sptThreshold int) (*netsim.Sim, []*Router, *testutil.Host, *testutil.Host) {
	t.Helper()
	sim := netsim.New(31)
	rn := netsim.AddRouters(sim, 5)
	for i := 0; i < 4; i++ {
		sim.Connect(rn[i], rn[i+1], netsim.DefaultWAN.Delay, netsim.DefaultWAN.Bps, 1)
	}
	src, _ := testutil.AttachCountingHost(sim, rn[0], 0)
	member, mIf := testutil.AttachCountingHost(sim, rn[2], 1)

	rt := unicast.Compute(sim)
	rps := map[addr.Addr]addr.Addr{group: rn[4].Addr}
	routers := make([]*Router, 5)
	for i, n := range rn {
		routers[i] = New(n, rt, rps)
		routers[i].SPTThresholdBytes = sptThreshold
	}
	routers[2].JoinLocal(group, mIf)
	return sim, routers, src, member
}

func TestRegisterPathDelivers(t *testing.T) {
	sim, routers, src, member := build(t, -1) // no SPT switchover
	sim.RunUntil(100 * netsim.Millisecond)    // let (*,G) joins reach the RP

	if routers[4].StateEntries() == 0 {
		t.Fatal("RP has no (*,G) state after member join")
	}

	sim.After(0, func() { src.SendMulticast(group, 1000) })
	sim.RunUntil(netsim.Second)

	if member.Delivered == 0 {
		t.Fatal("member received nothing via the register/shared-tree path")
	}
	if routers[0].Metrics.RegistersSent == 0 {
		t.Error("source DR sent no Register")
	}
	if routers[4].Metrics.RegistersRecv == 0 {
		t.Error("RP received no Register")
	}
}

func TestRegisterStopAfterNativePath(t *testing.T) {
	sim, routers, src, member := build(t, -1)
	sim.RunUntil(100 * netsim.Millisecond)

	// A burst of packets: the RP joins (S,G), native data reaches it, it
	// sends RegisterStop, and the DR stops encapsulating.
	for i := 0; i < 10; i++ {
		d := netsim.Time(i) * 100 * netsim.Millisecond
		sim.At(sim.Now()+d, func() { src.SendMulticast(group, 1000) })
	}
	sim.RunUntil(5 * netsim.Second)

	if routers[4].Metrics.RegisterStops == 0 {
		t.Error("RP never sent RegisterStop")
	}
	regs := routers[0].Metrics.RegistersSent
	if regs >= 10 {
		t.Errorf("DR registered all %d packets; register tunnel never stopped", regs)
	}
	if member.Delivered < 10 {
		t.Errorf("member delivered = %d, want >= 10", member.Delivered)
	}
}

// TestSPTSwitchoverReducesDelay reproduces the delay-stretch story of
// Sections 3.6/4.4: traffic detours via the RP until the last-hop router
// switches to the source tree, after which delay drops to the direct path.
func TestSPTSwitchoverReducesDelay(t *testing.T) {
	sim, routers, src, member := build(t, 0) // switch on first packet
	sim.RunUntil(100 * netsim.Millisecond)

	sendAt := sim.Now()
	sim.After(0, func() { src.SendMulticast(group, 1000) })
	sim.RunUntil(sendAt + 2*netsim.Second)
	if member.Delivered == 0 {
		t.Fatal("first packet not delivered")
	}
	firstDelay := member.DeliveredAt[0] - sendAt

	// Give the (S,G) join time to reach the source's DR, then measure the
	// steady-state path.
	sim.RunUntil(sim.Now() + 3*netsim.Second)
	sendAt2 := sim.Now()
	sim.After(0, func() { src.SendMulticast(group, 1000) })
	sim.RunUntil(sendAt2 + 2*netsim.Second)
	if member.Delivered < 2 {
		t.Fatal("second packet not delivered")
	}
	lastDelay := member.DeliveredAt[len(member.DeliveredAt)-1] - sendAt2

	if routers[2].Metrics.SPTSwitches == 0 {
		t.Error("last-hop router never switched to the SPT")
	}
	// Direct path ≈ 2 WAN hops; register/shared path ≈ 6. Require a clear
	// improvement.
	if lastDelay >= firstDelay {
		t.Errorf("SPT delay %v not lower than shared-tree delay %v", lastDelay, firstDelay)
	}
	if lastDelay > 3*netsim.DefaultWAN.Delay {
		t.Errorf("steady-state delay %v exceeds the direct path bound", lastDelay)
	}
}

func TestNoStateWithoutMembers(t *testing.T) {
	sim, routers, src, _ := build(t, -1)
	// Leave before any traffic: tearing down the only membership must
	// remove all (*,G) state from the path to the RP.
	// r2's interfaces: 0 toward r1, 1 toward r3, 2 the member host edge.
	sim.At(50*netsim.Millisecond, func() { routers[2].LeaveLocal(group, 2) })
	sim.RunUntil(200 * netsim.Millisecond)

	sim.After(0, func() { src.SendMulticast(group, 1000) })
	sim.RunUntil(netsim.Second)

	for i, r := range routers {
		if i == 4 {
			continue // the RP may retain (S,G) state from the register
		}
		if n := r.StateEntries(); n != 0 && i != 0 {
			t.Errorf("router %d holds %d entries after last leave", i, n)
		}
	}
}
