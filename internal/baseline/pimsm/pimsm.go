// Package pimsm implements a PIM Sparse Mode (RFC 2117-shape) multicast
// routing engine, the principal group-model baseline of the paper.
//
// Receivers join a shared tree rooted at a network-selected rendezvous
// point (RP); sources register with the RP by unicast encapsulation; the RP
// joins a source-specific tree back to the source; last-hop routers may
// switch to the shortest-path tree after a data threshold. The paper's
// comparison points: the RP detour inflates delay until switchover
// (Section 4.4), RPs are chosen by network administration rather than the
// application (Section 4.2), and "packets can traverse routes that are
// distant from the expected direct path" (Section 3.6).
package pimsm

import (
	"repro/internal/addr"
	"repro/internal/fib"
	"repro/internal/netsim"
	"repro/internal/unicast"
)

// JoinPrune is the hop-by-hop join/prune message. S == 0 denotes a (*,G)
// shared-tree entry. RPT marks the (S,G,rpt) prune used when a last-hop
// switches to the source tree.
type JoinPrune struct {
	G, S addr.Addr
	Join bool
	RPT  bool
	// Target is the upstream destination the message climbs toward (the RP
	// for (*,G), the source for (S,G)).
	Target addr.Addr
}

// Register carries source data unicast-encapsulated from the source's DR to
// the RP.
type Register struct {
	Inner *netsim.Packet
}

// RegisterStop tells the DR the RP has native (S,G) forwarding and the
// register tunnel may stop.
type RegisterStop struct {
	G, S addr.Addr
}

const ctrlSize = 40

type sg struct{ s, g addr.Addr }

// route is a PIM multicast routing entry: (*,G) when s == 0.
type route struct {
	iif  int // RPF interface toward the RP (shared) or source (SPT)
	oifs map[int]bool
	// rptBits[S] is the set of interfaces pruned off the RP tree for
	// source S — subtrees that switched to S's shortest-path tree.
	rptBits map[addr.Addr]map[int]bool
}

// Router is a PIM-SM router.
type Router struct {
	node *netsim.Node
	rt   *unicast.Routing
	// RPs maps group → rendezvous point address (static RP configuration).
	RPs map[addr.Addr]addr.Addr

	shared  map[addr.Addr]*route // (*,G)
	sources map[sg]*route        // (S,G)
	members map[addr.Addr]map[int]bool

	// registerStopped marks (S,G) register tunnels the RP has stopped.
	registerStopped map[sg]bool
	// rpJoined marks (S,G) trees the RP has joined back toward the source.
	rpJoined map[sg]bool

	// SPTThresholdBytes is the shared-tree byte count at which a last-hop
	// router switches to the source tree. 0 switches on the first packet;
	// a negative value disables switchover.
	SPTThresholdBytes int
	sptBytes          map[sg]int
	sptSwitched       map[sg]bool

	Metrics Metrics

	OnLocalDeliver func(pkt *netsim.Packet)
}

// Metrics counts protocol activity.
type Metrics struct {
	JoinsSent, JoinsRecv   uint64
	PrunesSent, PrunesRecv uint64
	RegistersSent          uint64
	RegistersRecv          uint64
	RegisterStops          uint64
	SPTSwitches            uint64
	DataForwarded          uint64
	DataDropped            uint64
}

// New attaches a PIM-SM router to node.
func New(node *netsim.Node, rt *unicast.Routing, rps map[addr.Addr]addr.Addr) *Router {
	r := &Router{
		node:            node,
		rt:              rt,
		RPs:             rps,
		shared:          make(map[addr.Addr]*route),
		sources:         make(map[sg]*route),
		members:         make(map[addr.Addr]map[int]bool),
		registerStopped: make(map[sg]bool),
		rpJoined:        make(map[sg]bool),
		sptBytes:        make(map[sg]int),
		sptSwitched:     make(map[sg]bool),
	}
	node.Handler = r
	return r
}

// Node returns the underlying simulator node.
func (r *Router) Node() *netsim.Node { return r.node }

// StateEntries counts (*,G) plus (S,G) routing entries (E9's state metric).
func (r *Router) StateEntries() int { return len(r.shared) + len(r.sources) }

// FIBMemoryBytes prices the state at the 12-byte entry encoding.
func (r *Router) FIBMemoryBytes() int { return fib.MemoryFor(r.StateEntries()) }

// isRP reports whether this router is the RP for g.
func (r *Router) isRP(g addr.Addr) bool { return r.RPs[g] == r.node.Addr }

// JoinLocal adds a local member host interface for g and joins the shared
// tree toward the RP.
func (r *Router) JoinLocal(g addr.Addr, hostIf int) {
	m := r.members[g]
	if m == nil {
		m = make(map[int]bool)
		r.members[g] = m
	}
	m[hostIf] = true
	e := r.ensureShared(g)
	e.oifs[hostIf] = true
}

// LeaveLocal removes a local member.
func (r *Router) LeaveLocal(g addr.Addr, hostIf int) {
	if m := r.members[g]; m != nil {
		delete(m, hostIf)
		if len(m) == 0 {
			delete(r.members, g)
		}
	}
	if e := r.shared[g]; e != nil {
		delete(e.oifs, hostIf)
		r.maybePruneShared(g)
	}
}

// ensureShared creates the (*,G) entry and propagates a (*,G) join toward
// the RP if this router is not the RP.
func (r *Router) ensureShared(g addr.Addr) *route {
	e := r.shared[g]
	if e != nil {
		return e
	}
	e = &route{iif: -1, oifs: make(map[int]bool), rptBits: make(map[addr.Addr]map[int]bool)}
	r.shared[g] = e
	rp := r.RPs[g]
	if rp == r.node.Addr {
		return e
	}
	rtq, ok := r.rt.NextHop(r.node.ID, rp)
	if !ok || rtq.Ifindex < 0 {
		return e
	}
	e.iif = rtq.Ifindex
	r.Metrics.JoinsSent++
	r.sendCtrl(rtq.Ifindex, &JoinPrune{G: g, Join: true, Target: rp})
	return e
}

func (r *Router) maybePruneShared(g addr.Addr) {
	e := r.shared[g]
	if e == nil || len(e.oifs) > 0 || len(r.members[g]) > 0 || r.isRP(g) {
		return
	}
	if e.iif >= 0 {
		r.Metrics.PrunesSent++
		r.sendCtrl(e.iif, &JoinPrune{G: g, Join: false, Target: r.RPs[g]})
	}
	delete(r.shared, g)
}

// ensureSource creates an (S,G) entry and joins toward the source.
func (r *Router) ensureSource(s, g addr.Addr) *route {
	key := sg{s, g}
	e := r.sources[key]
	if e != nil {
		return e
	}
	e = &route{iif: -1, oifs: make(map[int]bool)}
	r.sources[key] = e
	rtq, ok := r.rt.NextHop(r.node.ID, s)
	if ok && rtq.Ifindex >= 0 {
		e.iif = rtq.Ifindex
		r.Metrics.JoinsSent++
		r.sendCtrl(rtq.Ifindex, &JoinPrune{G: g, S: s, Join: true, Target: s})
	}
	return e
}

// Receive implements netsim.Handler.
func (r *Router) Receive(ifindex int, pkt *netsim.Packet) {
	switch m := pkt.Payload.(type) {
	case *JoinPrune:
		r.handleJoinPrune(ifindex, m)
	case *Register:
		r.handleRegister(pkt, m)
	case *RegisterStop:
		if pkt.Dst == r.node.Addr {
			r.registerStopped[sg{m.S, m.G}] = true
		} else {
			r.forwardUnicast(pkt)
		}
	default:
		if pkt.Proto == netsim.ProtoData && pkt.Dst.IsMulticast() {
			r.forwardData(ifindex, pkt)
		} else if pkt.Dst != r.node.Addr {
			r.forwardUnicast(pkt)
		}
	}
}

func (r *Router) handleJoinPrune(ifindex int, m *JoinPrune) {
	switch {
	case m.Join && m.S == 0:
		r.Metrics.JoinsRecv++
		e := r.ensureShared(m.G)
		e.oifs[ifindex] = true
	case !m.Join && m.S == 0:
		r.Metrics.PrunesRecv++
		if e := r.shared[m.G]; e != nil {
			delete(e.oifs, ifindex)
			r.maybePruneShared(m.G)
		}
	case m.Join && m.S != 0 && !m.RPT:
		r.Metrics.JoinsRecv++
		e := r.ensureSource(m.S, m.G)
		e.oifs[ifindex] = true
	case !m.Join && m.S != 0 && m.RPT:
		// (S,G,rpt) prune: stop sending S's RP-tree traffic this way.
		r.Metrics.PrunesRecv++
		if e := r.shared[m.G]; e != nil {
			if e.rptBits[m.S] == nil {
				e.rptBits[m.S] = make(map[int]bool)
			}
			e.rptBits[m.S][ifindex] = true
		}
	case !m.Join && m.S != 0:
		r.Metrics.PrunesRecv++
		key := sg{m.S, m.G}
		if e := r.sources[key]; e != nil {
			delete(e.oifs, ifindex)
			if len(e.oifs) == 0 {
				if e.iif >= 0 {
					r.Metrics.PrunesSent++
					r.sendCtrl(e.iif, &JoinPrune{G: m.G, S: m.S, Join: false, Target: m.S})
				}
				delete(r.sources, key)
			}
		}
	}
}

// handleRegister processes the unicast register tunnel at transit routers
// (forward toward the RP) and at the RP (decapsulate onto the shared tree
// and join the source tree).
func (r *Router) handleRegister(outer *netsim.Packet, m *Register) {
	if outer.Dst != r.node.Addr {
		r.forwardUnicast(outer)
		return
	}
	r.Metrics.RegistersRecv++
	inner := m.Inner
	if inner == nil {
		return
	}
	g, s := inner.Dst, inner.Src
	key := sg{s, g}
	e := r.shared[g]
	if e == nil || (len(e.oifs) == 0 && len(r.members[g]) == 0) {
		// RP with no receivers: stop the register tunnel immediately and
		// keep no source-tree state.
		r.sendRegisterStop(s, g)
		return
	}
	// Forward the decapsulated packet down the shared tree.
	r.emit(r.oifUnion(key, nil), g, -1, inner)
	// Join the source tree so traffic arrives natively (then stop the
	// register tunnel).
	if !r.rpJoined[key] {
		r.rpJoined[key] = true
		r.ensureSource(s, g)
	}
}

// oifUnion computes the inherited outgoing interface list for (S,G) data:
// joined(S,G) ∪ joined(*,G) − prune(S,G,rpt) — the PIM inheritance rule
// that lets source-tree data reach shared-tree-only subtrees.
func (r *Router) oifUnion(key sg, srcEntry *route) map[int]bool {
	out := make(map[int]bool)
	if srcEntry == nil {
		srcEntry = r.sources[key]
	}
	if srcEntry != nil {
		for i := range srcEntry.oifs {
			out[i] = true
		}
	}
	if se := r.shared[key.g]; se != nil {
		rpt := se.rptBits[key.s]
		for i := range se.oifs {
			if !rpt[i] {
				out[i] = true
			}
		}
	}
	return out
}

// forwardData forwards a native multicast packet: (S,G) state first, then
// (*,G), per the longest-match rule. DRs of directly attached sources also
// register-encapsulate toward the RP until stopped.
func (r *Router) forwardData(ifindex int, pkt *netsim.Packet) {
	g, s := pkt.Dst, pkt.Src
	key := sg{s, g}

	// DR duty: a packet arriving from a directly attached source host (the
	// RPF interface toward s is the arrival interface and s is one hop
	// away) is registered to the RP until a RegisterStop arrives.
	if r.isDRFor(s, ifindex) && !r.registerStopped[key] {
		if rp, ok := r.RPs[g]; ok && rp != r.node.Addr {
			if rtq, ok2 := r.rt.NextHop(r.node.ID, rp); ok2 && rtq.Ifindex >= 0 {
				r.Metrics.RegistersSent++
				r.node.Send(rtq.Ifindex, &netsim.Packet{
					Src: r.node.Addr, Dst: rp, Proto: netsim.ProtoPIM,
					TTL: netsim.DefaultTTL, Size: pkt.Size + 20,
					Payload: &Register{Inner: pkt},
				})
			}
		}
	}

	if e := r.sources[key]; e != nil {
		if e.iif != -1 && e.iif != ifindex && !r.isDRFor(s, ifindex) {
			r.Metrics.DataDropped++
			return
		}
		// Native (S,G) data at the RP stops the register tunnel.
		if r.isRP(g) && !r.registerStopped[key] && e.iif == ifindex {
			r.registerStopped[key] = true
			r.sendRegisterStop(s, g)
		}
		r.emit(r.oifUnion(key, e), g, ifindex, pkt)
		return
	}
	e := r.shared[g]
	if e == nil {
		r.Metrics.DataDropped++
		return
	}
	if e.iif != -1 && e.iif != ifindex && !r.isRP(g) {
		r.Metrics.DataDropped++
		return
	}
	r.trackSPT(key, pkt, e)
	r.emit(r.oifUnion(key, nil), g, ifindex, pkt)
}

// isDRFor reports whether this router is the designated router for a
// directly attached source host: s is one hop away on ifindex.
func (r *Router) isDRFor(s addr.Addr, ifindex int) bool {
	rtq, ok := r.rt.NextHop(r.node.ID, s)
	return ok && rtq.Ifindex == ifindex && rtq.Cost == 1 && r.nodeAddrOf(rtq.NextHop) == s
}

func (r *Router) nodeAddrOf(id netsim.NodeID) addr.Addr { return r.node.Sim().Node(id).Addr }

// trackSPT implements the shared-tree→source-tree switchover of last-hop
// routers: once bytes received for (S,G) over the shared tree pass the
// threshold, join the SPT and prune S off the RP tree.
func (r *Router) trackSPT(key sg, pkt *netsim.Packet, shared *route) {
	if r.SPTThresholdBytes < 0 || r.sptSwitched[key] || len(r.members[key.g]) == 0 {
		return
	}
	r.sptBytes[key] += pkt.Size
	if r.sptBytes[key] <= r.SPTThresholdBytes {
		return
	}
	r.sptSwitched[key] = true
	r.Metrics.SPTSwitches++
	e := r.ensureSource(key.s, key.g)
	for hostIf := range r.members[key.g] {
		e.oifs[hostIf] = true
	}
	// Prune S off the shared tree upstream.
	if shared.iif >= 0 {
		r.Metrics.PrunesSent++
		r.sendCtrl(shared.iif, &JoinPrune{G: key.g, S: key.s, Join: false, RPT: true, Target: r.RPs[key.g]})
	}
}

// emit forwards a packet out the computed interface set (minus arrival)
// and notifies local delivery.
func (r *Router) emit(oifs map[int]bool, g addr.Addr, arrivalIf int, pkt *netsim.Packet) {
	if pkt.TTL <= 1 {
		return
	}
	fwd := pkt.Clone()
	fwd.TTL--
	sent := false
	for oif := range oifs {
		if oif == arrivalIf {
			continue
		}
		r.node.Send(oif, fwd)
		sent = true
	}
	if sent {
		r.Metrics.DataForwarded++
	}
	if r.OnLocalDeliver != nil && len(r.members[g]) > 0 {
		r.OnLocalDeliver(pkt)
	}
}

func (r *Router) sendRegisterStop(s, g addr.Addr) {
	// The register tunnel's DR is the source's first-hop router; address
	// the stop to it by walking one unicast hop back from the source.
	drAddr := r.drOf(s)
	if drAddr == 0 {
		return
	}
	r.Metrics.RegisterStops++
	rtq, ok := r.rt.NextHop(r.node.ID, drAddr)
	if !ok || rtq.Ifindex < 0 {
		return
	}
	r.node.Send(rtq.Ifindex, &netsim.Packet{
		Src: r.node.Addr, Dst: drAddr, Proto: netsim.ProtoPIM,
		TTL: netsim.DefaultTTL, Size: ctrlSize, Payload: &RegisterStop{G: g, S: s},
	})
}

// drOf finds the designated router of host s: the router adjacent to s on
// s's edge link.
func (r *Router) drOf(s addr.Addr) addr.Addr {
	id, ok := r.rt.NodeByAddr(s)
	if !ok {
		return 0
	}
	host := r.node.Sim().Node(id)
	for _, peers := range host.Neighbors() {
		for _, p := range peers {
			return r.nodeAddrOf(p.Node)
		}
	}
	return 0
}

func (r *Router) sendCtrl(ifindex int, m *JoinPrune) {
	r.node.Send(ifindex, &netsim.Packet{
		Src: r.node.Addr, Dst: addr.WellKnownECMP, Proto: netsim.ProtoPIM,
		TTL: 1, Size: ctrlSize, Payload: m,
	})
}

func (r *Router) forwardUnicast(pkt *netsim.Packet) {
	if pkt.TTL <= 1 {
		return
	}
	rtq, ok := r.rt.NextHop(r.node.ID, pkt.Dst)
	if !ok || rtq.Ifindex < 0 {
		return
	}
	fwd := pkt.Clone()
	fwd.TTL--
	r.node.Send(rtq.Ifindex, fwd)
}
