package igmp

import (
	"testing"

	"repro/internal/addr"
	"repro/internal/netsim"
)

var group = addr.MustParse("239.3.3.3")

// lanWith builds a LAN with one querier router node and n IGMP hosts.
func lanWith(t *testing.T, n int, v Version) (*netsim.Sim, *netsim.LAN, *Querier, []*Host) {
	t.Helper()
	sim := netsim.New(17)
	lan := sim.NewLAN(netsim.Millisecond, 0, 1)
	routerNode := sim.AddNode(netsim.RouterAddr(0), "r0")
	rIf := lan.Attach(routerNode)
	q := NewQuerier(routerNode, rIf, v)
	routerNode.Handler = querierHandler{q}
	hosts := make([]*Host, n)
	for i := range hosts {
		hn := sim.AddNode(netsim.HostAddr(i), "h")
		lan.Attach(hn)
		hosts[i] = NewHost(hn, v)
	}
	return sim, lan, q, hosts
}

type querierHandler struct{ q *Querier }

func (h querierHandler) Receive(ifindex int, pkt *netsim.Packet) {
	if pkt.Proto == netsim.ProtoIGMP {
		h.q.Receive(pkt)
	}
}

// TestV2ReportSuppression verifies the IGMPv2 behaviour ECMP deliberately
// drops: many members, few reports, because hearing another report
// suppresses yours.
func TestV2ReportSuppression(t *testing.T) {
	sim, _, q, hosts := lanWith(t, 20, V2)
	q.QueryInterval = 10 * netsim.Second
	q.MaxRespTime = 2 * netsim.Second
	for _, h := range hosts {
		hh := h
		sim.At(0, func() { hh.Join(group) })
	}
	q.Start()
	sim.RunUntil(60 * netsim.Second)

	if !q.HasMembers(group) {
		t.Fatal("querier lost the membership")
	}
	var sent, suppressed uint64
	for _, h := range hosts {
		sent += h.ReportsSent
		suppressed += h.ReportsSuppressed
	}
	if suppressed == 0 {
		t.Error("no reports were suppressed with 20 members on one LAN")
	}
	// With suppression, reports per query round should be far below the
	// member count (the initial unsolicited joins inflate `sent`).
	perRound := float64(sent-20) / 5 // ~5 query rounds
	if perRound > 10 {
		t.Errorf("reports per round ≈ %.1f with 20 members; suppression ineffective", perRound)
	}
}

// TestV3NoSuppression verifies the IGMPv3/ECMP behaviour: every member
// reports; the querier learns the full membership.
func TestV3NoSuppression(t *testing.T) {
	sim, _, q, hosts := lanWith(t, 20, V3)
	q.QueryInterval = 10 * netsim.Second
	for _, h := range hosts {
		hh := h
		sim.At(0, func() { hh.Join(group) })
	}
	q.Start()
	sim.RunUntil(25 * netsim.Second)

	var suppressed uint64
	for _, h := range hosts {
		suppressed += h.ReportsSuppressed
	}
	if suppressed != 0 {
		t.Errorf("V3 suppressed %d reports; there is no report suppression in v3", suppressed)
	}
	if got := q.ReportsHeard; got < 20 {
		t.Errorf("querier heard %d reports, want >= 20 (one per member)", got)
	}
}

// TestV3SourceFiltering verifies INCLUDE/EXCLUDE semantics — the paper's
// §2.2.2 point: with the group model a receiver must explicitly exclude
// unwanted sources, which EXPRESS makes unnecessary.
func TestV3SourceFiltering(t *testing.T) {
	sim, lan, _, hosts := lanWith(t, 2, V3)
	wanted := addr.MustParse("10.0.0.1")
	unwanted := addr.MustParse("10.0.0.66")

	include, exclude := hosts[0], hosts[1]
	sim.At(0, func() {
		include.JoinSources(group, Include, []addr.Addr{wanted})
		exclude.JoinSources(group, Exclude, []addr.Addr{unwanted})
	})
	sim.RunUntil(netsim.Second)

	inject := func(src addr.Addr) {
		sender := sim.AddNode(src, "sender")
		lan.Attach(sender)
		sim.After(0, func() {
			sender.SendAll(-1, &netsim.Packet{Src: src, Dst: group, Proto: netsim.ProtoData, TTL: 4, Size: 100})
		})
		sim.RunUntil(sim.Now() + netsim.Second)
	}
	inject(wanted)
	inject(unwanted)

	if include.Delivered != 1 {
		t.Errorf("INCLUDE host delivered = %d, want 1 (only the listed source)", include.Delivered)
	}
	if exclude.Delivered != 1 {
		t.Errorf("EXCLUDE host delivered = %d, want 1 (all but the listed source)", exclude.Delivered)
	}
}

// TestV2LeaveTriggersRequery verifies the leave → group-specific query →
// membership timeout sequence.
func TestV2LeaveTriggersRequery(t *testing.T) {
	sim, _, q, hosts := lanWith(t, 2, V2)
	q.QueryInterval = 30 * netsim.Second
	q.MaxRespTime = netsim.Second

	membershipLost := false
	q.OnMembershipChange = func(g addr.Addr, members bool) {
		if g == group && !members {
			membershipLost = true
		}
	}
	sim.At(0, func() {
		hosts[0].Join(group)
		hosts[1].Join(group)
	})
	q.Start()
	sim.RunUntil(2 * netsim.Second)

	queriesBefore := q.QueriesSent
	// First host leaves: a group-specific query goes out; host 1 still
	// answers, so membership survives.
	sim.After(0, func() { hosts[0].Leave(group) })
	sim.RunUntil(sim.Now() + 5*netsim.Second)
	if q.QueriesSent == queriesBefore {
		t.Error("leave did not trigger a group-specific query")
	}
	if membershipLost {
		t.Fatal("membership lost while a member remains")
	}

	// Second host leaves: now the group must expire.
	sim.After(0, func() { hosts[1].Leave(group) })
	sim.RunUntil(sim.Now() + 10*netsim.Second)
	if !membershipLost {
		t.Error("membership survived after the last leave")
	}
}

// TestQuerierExpiryWithoutResponses verifies the hold-time path: hosts
// that vanish silently age out.
func TestQuerierExpiryWithoutResponses(t *testing.T) {
	sim, lan, q, hosts := lanWith(t, 1, V3)
	q.QueryInterval = 2 * netsim.Second
	q.HoldTime = 5 * netsim.Second
	sim.At(0, func() { hosts[0].Join(group) })
	q.Start()
	sim.RunUntil(3 * netsim.Second)
	if !q.HasMembers(group) {
		t.Fatal("membership not established")
	}
	// The host vanishes (LAN partition for it alone is not modelled;
	// simply stop it answering by detaching its handler).
	hosts[0].Node().Handler = nil
	_ = lan
	sim.RunUntil(30 * netsim.Second)
	if q.HasMembers(group) {
		t.Error("silent member never aged out")
	}
}
