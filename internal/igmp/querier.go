package igmp

import (
	"repro/internal/addr"
	"repro/internal/netsim"
)

// Querier is the router side of IGMP on one LAN interface: it issues
// periodic general queries, tracks group membership with hold timers, and
// handles leaves with group-specific re-queries (V2) or relies on
// per-report state (V3).
type Querier struct {
	node    *netsim.Node
	ifindex int
	version Version

	QueryInterval netsim.Time
	MaxRespTime   netsim.Time
	HoldTime      netsim.Time

	groups map[addr.Addr]*querierGroup

	QueriesSent  uint64
	ReportsHeard uint64

	// OnMembershipChange fires when a group gains its first member or
	// loses its last one — the hook a multicast routing protocol (PIM, CBT,
	// DVMRP) uses to join or prune upstream.
	OnMembershipChange func(g addr.Addr, members bool)
}

type querierGroup struct {
	// member expiry per reporting host (V3 / accurate mode). For V2 with
	// suppression the querier only knows "some member exists": we track
	// the latest refresh time instead of per-host state.
	expiry   netsim.Time
	members  map[addr.Addr]netsim.Time
	filterOf map[addr.Addr]*hostGroup
}

// NewQuerier creates the querier state machine for a router's LAN
// interface. The caller's packet dispatch must hand ProtoIGMP packets from
// that interface to Receive.
func NewQuerier(node *netsim.Node, ifindex int, v Version) *Querier {
	q := &Querier{
		node: node, ifindex: ifindex, version: v,
		QueryInterval: 60 * netsim.Second,
		MaxRespTime:   10 * netsim.Second,
		HoldTime:      150 * netsim.Second,
		groups:        make(map[addr.Addr]*querierGroup),
	}
	return q
}

// Start begins the periodic query cycle.
func (q *Querier) Start() {
	q.node.Sim().After(q.QueryInterval/2, q.tick)
}

func (q *Querier) tick() {
	q.sendQuery(0)
	now := q.node.Sim().Now()
	for g, qg := range q.groups {
		for h, dl := range qg.members {
			if dl <= now {
				delete(qg.members, h)
			}
		}
		if qg.expiry <= now && len(qg.members) == 0 {
			delete(q.groups, g)
			if q.OnMembershipChange != nil {
				q.OnMembershipChange(g, false)
			}
		}
	}
	q.node.Sim().After(q.QueryInterval, q.tick)
}

func (q *Querier) sendQuery(group addr.Addr) {
	q.QueriesSent++
	q.node.Send(q.ifindex, &netsim.Packet{
		Src: q.node.Addr, Dst: addr.WellKnownECMP, Proto: netsim.ProtoIGMP,
		TTL: 1, Size: querySize, Payload: &Query{Group: group, MaxRespTime: q.MaxRespTime},
	})
}

// Receive processes an IGMP message heard on the interface.
func (q *Querier) Receive(pkt *netsim.Packet) {
	switch m := pkt.Payload.(type) {
	case *Report:
		q.ReportsHeard++
		q.handleReport(pkt.Src, m)
	case *Leave:
		q.handleLeave(m.Group)
	}
}

func (q *Querier) handleReport(from addr.Addr, m *Report) {
	now := q.node.Sim().Now()
	qg := q.groups[m.Group]
	isNew := qg == nil
	if m.Version == V3 && m.Mode == Include && len(m.Sources) == 0 {
		// INCLUDE {} is a leave.
		if qg != nil {
			delete(qg.members, from)
			if len(qg.members) == 0 {
				delete(q.groups, m.Group)
				if q.OnMembershipChange != nil {
					q.OnMembershipChange(m.Group, false)
				}
			}
		}
		return
	}
	if qg == nil {
		qg = &querierGroup{
			members:  make(map[addr.Addr]netsim.Time),
			filterOf: make(map[addr.Addr]*hostGroup),
		}
		q.groups[m.Group] = qg
	}
	qg.expiry = now + q.HoldTime
	qg.members[from] = now + q.HoldTime
	set := make(map[addr.Addr]bool, len(m.Sources))
	for _, s := range m.Sources {
		set[s] = true
	}
	qg.filterOf[from] = &hostGroup{mode: m.Mode, sources: set}
	if isNew && q.OnMembershipChange != nil {
		q.OnMembershipChange(m.Group, true)
	}
}

func (q *Querier) handleLeave(g addr.Addr) {
	qg := q.groups[g]
	if qg == nil {
		return
	}
	// Group-specific re-query with a short deadline (IGMPv2 leave
	// processing): if no report arrives, membership times out quickly.
	q.sendQuery(g)
	qg.expiry = q.node.Sim().Now() + 2*q.MaxRespTime
	gg := g
	q.node.Sim().After(2*q.MaxRespTime+netsim.Millisecond, func() {
		cur := q.groups[gg]
		if cur == nil {
			return
		}
		if cur.expiry <= q.node.Sim().Now() {
			delete(q.groups, gg)
			if q.OnMembershipChange != nil {
				q.OnMembershipChange(gg, false)
			}
		}
	})
}

// HasMembers reports whether the group currently has members on the LAN.
func (q *Querier) HasMembers(g addr.Addr) bool { _, ok := q.groups[g]; return ok }

// Groups returns the groups with current members.
func (q *Querier) Groups() []addr.Addr {
	out := make([]addr.Addr, 0, len(q.groups))
	for g := range q.groups {
		out = append(out, g)
	}
	return out
}
