// Package igmp implements IGMPv2 and IGMPv3-style host membership on LAN
// segments, the group-model last-hop machinery EXPRESS is compared against.
//
// IGMPv2 (RFC 2236 shape): general and group-specific queries, reports with
// suppression (a host cancels its pending report when it hears another
// member report the same group), and leave → group-specific re-query.
//
// IGMPv3 (the draft cited as [4]): reports carry INCLUDE/EXCLUDE source
// lists and there is no report suppression — the behaviour ECMP's UDP mode
// adopts ("Unlike IGMPv2, but like the proposed IGMPv3, there is no report
// suppression", Section 3.2).
package igmp

import (
	"repro/internal/addr"
	"repro/internal/netsim"
)

// Version selects protocol behaviour.
type Version int

const (
	V2 Version = 2
	V3 Version = 3
)

// FilterMode is the IGMPv3 source-filter mode.
type FilterMode uint8

const (
	Include FilterMode = iota // receive only from listed sources
	Exclude                   // receive from all but listed sources
)

// Query is a membership query from the querier router. Group == 0 is a
// general query.
type Query struct {
	Group       addr.Addr
	MaxRespTime netsim.Time
}

// Report announces membership. V2 reports carry only the group; V3 reports
// carry a filter mode and source list.
type Report struct {
	Version Version
	Group   addr.Addr
	Mode    FilterMode
	Sources []addr.Addr
}

// Leave is the IGMPv2 leave-group message.
type Leave struct {
	Group addr.Addr
}

const (
	querySize  = wireBase
	reportSize = wireBase
	leaveSize  = wireBase
	wireBase   = 8 + 20 // 8-byte IGMP header + IP header
)

// Host is an IGMP host on one LAN interface.
type Host struct {
	node    *netsim.Node
	ifindex int
	version Version

	// groups the host is a member of; for V3, with filter state.
	groups map[addr.Addr]*hostGroup

	// pending report timers per group (V2 suppression machinery).
	pending map[addr.Addr]*netsim.Timer

	// Metrics for the suppression ablation.
	ReportsSent       uint64
	ReportsSuppressed uint64

	// OnDeliver receives multicast data for joined groups (subject to the
	// V3 source filter).
	OnDeliver func(pkt *netsim.Packet)
	Delivered uint64
}

type hostGroup struct {
	mode    FilterMode
	sources map[addr.Addr]bool
}

// NewHost attaches an IGMP host stack to node (single-homed on ifindex 0).
func NewHost(node *netsim.Node, v Version) *Host {
	h := &Host{
		node:    node,
		version: v,
		groups:  make(map[addr.Addr]*hostGroup),
		pending: make(map[addr.Addr]*netsim.Timer),
	}
	node.Handler = h
	return h
}

// Join joins a group (V2 semantics: any-source).
func (h *Host) Join(g addr.Addr) {
	h.groups[g] = &hostGroup{mode: Exclude, sources: map[addr.Addr]bool{}}
	h.sendReport(g)
}

// JoinSources joins with an IGMPv3 source filter.
func (h *Host) JoinSources(g addr.Addr, mode FilterMode, sources []addr.Addr) {
	set := make(map[addr.Addr]bool, len(sources))
	for _, s := range sources {
		set[s] = true
	}
	h.groups[g] = &hostGroup{mode: mode, sources: set}
	h.sendReport(g)
}

// Leave leaves a group. V2 sends a Leave message; V3 sends an
// INCLUDE-nothing report.
func (h *Host) Leave(g addr.Addr) {
	if _, ok := h.groups[g]; !ok {
		return
	}
	delete(h.groups, g)
	if t := h.pending[g]; t != nil {
		t.Stop()
		delete(h.pending, g)
	}
	if h.version == V2 {
		h.send(&Leave{Group: g}, leaveSize)
	} else {
		h.ReportsSent++
		h.send(&Report{Version: V3, Group: g, Mode: Include}, reportSize)
	}
}

// Member reports whether the host is currently joined to g.
func (h *Host) Member(g addr.Addr) bool { _, ok := h.groups[g]; return ok }

func (h *Host) sendReport(g addr.Addr) {
	hg := h.groups[g]
	if hg == nil {
		return
	}
	h.ReportsSent++
	rep := &Report{Version: h.version, Group: g, Mode: hg.mode}
	for s := range hg.sources {
		rep.Sources = append(rep.Sources, s)
	}
	h.send(rep, reportSize+4*len(rep.Sources))
}

func (h *Host) send(payload any, size int) {
	h.node.SendAll(-1, &netsim.Packet{
		Src: h.node.Addr, Dst: addr.WellKnownECMP, Proto: netsim.ProtoIGMP,
		TTL: 1, Size: size, Payload: payload,
	})
}

// Receive implements netsim.Handler.
func (h *Host) Receive(ifindex int, pkt *netsim.Packet) {
	switch m := pkt.Payload.(type) {
	case *Query:
		h.handleQuery(m)
	case *Report:
		// V2 suppression: hearing another member's report for a group we
		// were about to report cancels our pending report.
		if h.version == V2 && m.Version == V2 {
			if t := h.pending[m.Group]; t != nil {
				t.Stop()
				delete(h.pending, m.Group)
				h.ReportsSuppressed++
			}
		}
	case *Leave:
		// hosts ignore leaves
	default:
		if pkt.Proto == netsim.ProtoData && pkt.Dst.IsMulticast() {
			h.deliverData(pkt)
		}
	}
}

func (h *Host) deliverData(pkt *netsim.Packet) {
	hg := h.groups[pkt.Dst]
	if hg == nil {
		return
	}
	inSet := hg.sources[pkt.Src]
	if (hg.mode == Include && !inSet) || (hg.mode == Exclude && inSet) {
		return // filtered by the V3 source filter
	}
	h.Delivered++
	if h.OnDeliver != nil {
		h.OnDeliver(pkt)
	}
}

func (h *Host) handleQuery(q *Query) {
	respond := func(g addr.Addr) {
		if h.version == V2 {
			// Schedule the report at a random delay in [0, MaxRespTime);
			// suppression may cancel it before it fires.
			if h.pending[g] != nil {
				return
			}
			delay := netsim.Time(h.node.Sim().Rand().Int63n(int64(q.MaxRespTime)))
			h.pending[g] = h.node.Sim().After(delay, func() {
				delete(h.pending, g)
				h.sendReport(g)
			})
			return
		}
		// V3: no suppression; respond directly (small fixed delay).
		h.node.Sim().After(netsim.Millisecond, func() { h.sendReport(g) })
	}
	if q.Group == 0 {
		for g := range h.groups {
			respond(g)
		}
		return
	}
	if _, ok := h.groups[q.Group]; ok {
		respond(q.Group)
	}
}

// Node returns the host's underlying simulator node.
func (h *Host) Node() *netsim.Node { return h.node }
