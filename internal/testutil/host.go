package testutil

import (
	"repro/internal/addr"
	"repro/internal/netsim"
)

// Host is a minimal data-plane host for baseline-protocol tests: it counts
// multicast deliveries and can originate multicast sends. (EXPRESS tests
// use the full express.Source/Subscriber stacks instead.)
type Host struct {
	node *netsim.Node
	// Delivered counts data packets received, DeliveredAt records their
	// arrival times (for delay/stretch measurements).
	Delivered   uint64
	DeliveredAt []netsim.Time
	// Accept, when non-zero, only counts packets for this group.
	Accept addr.Addr
}

// NewHost attaches a counting host to an existing node.
func NewHost(node *netsim.Node) *Host {
	h := &Host{node: node}
	node.Handler = h
	return h
}

// AttachCountingHost creates a host node linked to router and returns it
// with the router-side interface index.
func AttachCountingHost(sim *netsim.Sim, router *netsim.Node, idx int) (*Host, int) {
	n, _, rIf := netsim.AttachHost(sim, router, idx, netsim.DefaultLAN)
	return NewHost(n), rIf
}

// Node returns the underlying node.
func (h *Host) Node() *netsim.Node { return h.node }

// Addr returns the host's unicast address.
func (h *Host) Addr() addr.Addr { return h.node.Addr }

// SendMulticast originates a multicast data packet to group g.
func (h *Host) SendMulticast(g addr.Addr, size int) {
	h.node.SendAll(-1, &netsim.Packet{
		Src: h.node.Addr, Dst: g, Proto: netsim.ProtoData,
		TTL: netsim.DefaultTTL, Size: size,
	})
}

// Receive implements netsim.Handler.
func (h *Host) Receive(ifindex int, pkt *netsim.Packet) {
	if pkt.Proto != netsim.ProtoData || !pkt.Dst.IsMulticast() {
		return
	}
	if h.Accept != 0 && pkt.Dst != h.Accept {
		return
	}
	h.Delivered++
	h.DeliveredAt = append(h.DeliveredAt, h.node.Sim().Now())
}
