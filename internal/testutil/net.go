// Package testutil provides ready-made EXPRESS networks for tests and
// benchmarks: topology construction, unicast route computation, ECMP router
// attachment, and host wiring in one call.
package testutil

import (
	"repro/internal/addr"
	"repro/internal/ecmp"
	"repro/internal/express"
	"repro/internal/netsim"
	"repro/internal/unicast"
)

// Net bundles a simulated EXPRESS internetwork.
type Net struct {
	Sim     *netsim.Sim
	Routing *unicast.Routing
	Routers []*ecmp.Router
	// RouterOf maps a node id to its ECMP router (nil for hosts).
	RouterOf map[netsim.NodeID]*ecmp.Router

	hostIdx int
}

// NewNet wraps a sim whose router nodes are already created (by a
// netsim topology builder) and attaches an ECMP router to each.
func NewNet(sim *netsim.Sim, routers []*netsim.Node, cfg ecmp.Config) *Net {
	n := &Net{Sim: sim, RouterOf: make(map[netsim.NodeID]*ecmp.Router)}
	n.Routing = unicast.Compute(sim)
	for _, rn := range routers {
		r := ecmp.NewRouter(rn, n.Routing, cfg)
		n.Routers = append(n.Routers, r)
		n.RouterOf[rn.ID] = r
	}
	return n
}

// Start invalidates routing (to include any hosts attached after NewNet)
// and starts every router's periodic machinery.
func (n *Net) Start() {
	n.Routing.Invalidate()
	for _, r := range n.Routers {
		r.Start()
	}
}

// Close stops every router's periodic machinery and cancels its timers.
// Tests and sweeps that build many networks on long-lived simulators must
// call this (or defer it) so finished routers stop firing queries and
// keepalives into the remainder of the run.
func (n *Net) Close() {
	for _, r := range n.Routers {
		r.Close()
	}
}

// AddSource attaches a source host to router r over an edge link.
func (n *Net) AddSource(r *ecmp.Router) *express.Source {
	h, _, rIf := netsim.AttachHost(n.Sim, r.Node(), n.hostIdx, netsim.DefaultLAN)
	n.hostIdx++
	r.SetIfaceMode(rIf, ecmp.ModeUDP)
	n.Routing.Invalidate()
	return express.NewSource(h)
}

// AddSubscriber attaches a subscriber host to router r over an edge link.
func (n *Net) AddSubscriber(r *ecmp.Router) *express.Subscriber {
	h, _, rIf := netsim.AttachHost(n.Sim, r.Node(), n.hostIdx, netsim.DefaultLAN)
	n.hostIdx++
	r.SetIfaceMode(rIf, ecmp.ModeUDP)
	n.Routing.Invalidate()
	return express.NewSubscriber(h)
}

// AddSubscriberOnLAN attaches a subscriber host to an existing LAN segment.
func (n *Net) AddSubscriberOnLAN(lan *netsim.LAN) *express.Subscriber {
	h := n.Sim.AddNode(netsim.HostAddr(n.hostIdx), "h")
	n.hostIdx++
	lan.Attach(h)
	n.Routing.Invalidate()
	return express.NewSubscriber(h)
}

// LineNet builds a line of n ECMP routers.
func LineNet(seed int64, nRouters int, cfg ecmp.Config) *Net {
	sim := netsim.New(seed)
	routers := netsim.Line(sim, nRouters, netsim.DefaultWAN)
	return NewNet(sim, routers, cfg)
}

// TreeNet builds a complete binary tree of ECMP routers with the given
// depth. Leaves are Net.Routers[len-2^depth:].
func TreeNet(seed int64, depth int, cfg ecmp.Config) *Net {
	sim := netsim.New(seed)
	routers := netsim.BinaryTree(sim, depth, netsim.DefaultWAN)
	return NewNet(sim, routers, cfg)
}

// StarNet builds a hub-and-spoke of ECMP routers; Routers[0] is the hub.
func StarNet(seed int64, spokes int, cfg ecmp.Config) *Net {
	sim := netsim.New(seed)
	hub, leaves := netsim.Star(sim, spokes, netsim.DefaultWAN)
	return NewNet(sim, append([]*netsim.Node{hub}, leaves...), cfg)
}

// GridNet builds a w×h mesh of ECMP routers.
func GridNet(seed int64, w, h int, cfg ecmp.Config) *Net {
	sim := netsim.New(seed)
	routers := netsim.Grid(sim, w, h, netsim.DefaultWAN)
	return NewNet(sim, routers, cfg)
}

// TotalFIBEntries sums multicast FIB entries across all routers.
func (n *Net) TotalFIBEntries() int {
	total := 0
	for _, r := range n.Routers {
		total += r.FIB().Len()
	}
	return total
}

// TotalControlMessages sums ECMP control messages sent by all routers.
func (n *Net) TotalControlMessages() uint64 {
	var total uint64
	for _, r := range n.Routers {
		m := r.Metrics()
		total += m.ControlMessages()
	}
	return total
}

// MustChannel allocates a channel from src, panicking on failure (tests).
func MustChannel(src *express.Source) addr.Channel {
	ch, err := src.CreateChannel()
	if err != nil {
		panic(err)
	}
	return ch
}
