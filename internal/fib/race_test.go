package fib

import (
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/addr"
)

// TestConcurrentForwardDuringChurn locks the RCU contract in: reader
// goroutines hammer ForwardMask while writers add and remove channels (with
// enough volume to force several growth rebuilds and tombstone compactions).
// Run with -race in CI. Every lookup must return a coherent result — a
// disposition from the valid set, a mask that never echoes the arrival
// interface, and for keys outside the churn range, exactly the stable
// entry's interfaces — and the final table must equal the stable set.
func TestConcurrentForwardDuringChurn(t *testing.T) {
	tb := New()
	src := addr.MustParse("171.64.7.9")

	// A stable region writers never touch: lookups there must always hit.
	const stable = 512
	for i := 0; i < stable; i++ {
		tb.Set(Key{S: src, G: addr.ExpressAddr(uint32(i))}, Entry{IIF: 0, OIFs: 1<<2 | 1<<0})
	}

	const (
		writers   = 2
		readers   = 4
		churnOps  = 20_000
		churnSpan = 4_096
	)
	var writerWG, readerWG sync.WaitGroup
	var writersDone atomic.Bool
	errs := make(chan string, readers)

	for w := 0; w < writers; w++ {
		writerWG.Add(1)
		go func(w int) {
			defer writerWG.Done()
			base := uint32(stable + w*churnSpan)
			for i := 0; i < churnOps; i++ {
				g := addr.ExpressAddr(base + uint32(i%churnSpan))
				k := Key{S: src, G: g}
				tb.Set(k, Entry{IIF: 1, OIFs: 1 << 3})
				if i%3 == 0 {
					// Wildcard churn exercises the fallback probe too.
					tb.Set(Key{G: g}, Entry{IIF: -1, OIFs: 1 << 4})
					tb.Delete(Key{G: g})
				}
				tb.Delete(k)
			}
		}(w)
	}

	for r := 0; r < readers; r++ {
		readerWG.Add(1)
		go func() {
			defer readerWG.Done()
			// done is sampled at the bottom so every reader performs at
			// least one lookup even if the writers finish before this
			// goroutine is first scheduled (single-CPU machines under
			// parallel test load) — the stats assertions below need it.
			var i uint32
			for done := false; !done; done = writersDone.Load() {
				// Stable range: must forward with exactly the stable OIFs
				// minus the arrival interface, or IIF-drop on a wrong iif.
				iif := int(i % MaxInterfaces)
				mask, disp := tb.ForwardMask(src, addr.ExpressAddr(i%stable), iif)
				if iif == 0 {
					if disp != Forwarded || mask != 1<<2 {
						errs <- "stable entry lookup returned wrong mask/disposition"
						return
					}
				} else if disp != DropWrongIIF {
					errs <- "stable entry accepted a wrong arrival interface"
					return
				}
				if mask&(1<<uint(iif)) != 0 {
					errs <- "mask echoed the arrival interface"
					return
				}
				// Churn range: any disposition is legal mid-churn, but it
				// must be a member of the valid set.
				_, disp = tb.ForwardMask(src, addr.ExpressAddr(stable+i%(writers*churnSpan)), 1)
				if disp != Forwarded && disp != DropUnmatched && disp != DropWrongIIF {
					errs <- "invalid disposition under churn"
					return
				}
				i++
			}
		}()
	}

	writerWG.Wait()
	writersDone.Store(true)
	readerWG.Wait()
	select {
	case msg := <-errs:
		t.Fatal(msg)
	default:
	}

	if tb.Len() != stable {
		t.Fatalf("Len = %d after balanced churn, want %d", tb.Len(), stable)
	}
	for i := 0; i < stable; i++ {
		e, ok := tb.Get(Key{S: src, G: addr.ExpressAddr(uint32(i))})
		if !ok || e.OIFs != 1<<2|1<<0 {
			t.Fatalf("stable entry %d lost or corrupted: %+v %v", i, e, ok)
		}
	}
	st := tb.Stats()
	if st.Lookups == 0 || st.Matched == 0 {
		t.Fatal("striped stats recorded nothing")
	}
	if st.Lookups < st.Matched+st.UnmatchedDrops+st.IIFDrops {
		t.Fatalf("stats inconsistent: %+v", st)
	}
}

// TestDeleteHeavyChurnUnderReaders is the chunk-publication churn contract:
// writers run a delete-heavy Set/Delete mix — each key is deleted twice as
// often as it is (re)set, so tombstone pressure keeps compacting and
// shrinking chunks from the Delete path while concurrent ForwardMask
// readers probe. Across every chunk republication there must be no lost
// routes (a key the writer left present must hit with the written entry)
// and no stale positives (a key the writer left deleted must miss). Run
// with -race in CI.
func TestDeleteHeavyChurnUnderReaders(t *testing.T) {
	tb := New()
	src := addr.MustParse("171.64.7.9")

	// Stable region: always present, forcing several directory widths as
	// the churn range grows and shrinks around it.
	const stable = 2048
	for i := 0; i < stable; i++ {
		tb.Set(Key{S: src, G: addr.ExpressAddr(uint32(i))}, Entry{IIF: 0, OIFs: 1 << 2})
	}

	const (
		writers = 2
		readers = 4
		rounds  = 10
		span    = 4096 // churn keys per writer per round
	)
	var writerWG, readerWG sync.WaitGroup
	var writersDone atomic.Bool
	errs := make(chan string, readers+writers)

	for w := 0; w < writers; w++ {
		writerWG.Add(1)
		go func(w int) {
			defer writerWG.Done()
			base := uint32(stable + w*span)
			for r := 0; r < rounds; r++ {
				// Flash crowd in...
				for i := uint32(0); i < span; i++ {
					tb.Set(Key{S: src, G: addr.ExpressAddr(base + i)}, Entry{IIF: 1, OIFs: 1 << 3})
				}
				// ...and a delete-heavy flash leave out: every key deleted,
				// half re-set and deleted again (2 deletes per surviving set).
				for i := uint32(0); i < span; i++ {
					tb.Delete(Key{S: src, G: addr.ExpressAddr(base + i)})
				}
				for i := uint32(0); i < span; i += 2 {
					k := Key{S: src, G: addr.ExpressAddr(base + i)}
					tb.Set(k, Entry{IIF: 1, OIFs: 1 << 3})
					tb.Delete(k)
				}
			}
		}(w)
	}

	for r := 0; r < readers; r++ {
		readerWG.Add(1)
		go func() {
			defer readerWG.Done()
			var i uint32
			for done := false; !done; done = writersDone.Load() {
				// Stable range: must hit with exactly the written entry —
				// a chunk republication losing a route would miss here.
				mask, disp := tb.ForwardMask(src, addr.ExpressAddr(i%stable), 0)
				if disp != Forwarded || mask != 1<<2 {
					errs <- "stable route lost or corrupted during delete-heavy churn"
					return
				}
				// Churn range: presence is racy mid-churn but the result
				// must be coherent — a hit carries the churn entry, never
				// a torn or foreign payload.
				cm, cd := tb.ForwardMask(src, addr.ExpressAddr(stable+i%(writers*span)), 0)
				switch cd {
				case Forwarded:
					if cm != 1<<3 {
						errs <- "churn route returned a foreign payload"
						return
					}
				case DropWrongIIF, DropUnmatched:
				default:
					errs <- "invalid disposition under churn"
					return
				}
				i++
			}
		}()
	}

	writerWG.Wait()
	writersDone.Store(true)
	readerWG.Wait()
	select {
	case msg := <-errs:
		t.Fatal(msg)
	default:
	}

	// Quiesced: the table holds exactly the stable set — every churn key
	// ended deleted, so a stale positive anywhere is a leaked tombstone
	// resurrection and a missing stable key is a lost route.
	if tb.Len() != stable {
		t.Fatalf("Len = %d after delete-heavy churn, want %d", tb.Len(), stable)
	}
	for i := 0; i < stable; i++ {
		if e, ok := tb.Get(Key{S: src, G: addr.ExpressAddr(uint32(i))}); !ok || e.OIFs != 1<<2 {
			t.Fatalf("stable entry %d lost or corrupted: %+v %v", i, e, ok)
		}
	}
	for w := 0; w < writers; w++ {
		for i := 0; i < span; i++ {
			k := Key{S: src, G: addr.ExpressAddr(uint32(stable + w*span + i))}
			if _, ok := tb.Get(k); ok {
				t.Fatalf("stale positive: churn key %v survived its final delete", k)
			}
		}
	}
	if tb.ChunkPublishes() == 0 {
		t.Fatal("churn triggered no chunk republication — the test exercised nothing")
	}
}

// TestChurnReaderZeroAlloc pins the reader-path allocation contract under
// churn: ForwardMask stays 0 allocs/op on a table whose chunks have been
// grown, tombstoned, compacted, and shrunk — mixed chunk generations and a
// multi-chunk directory must not push the probe onto an allocating path.
// (AllocsPerRun measures process-wide, so the churn runs in bursts between
// measurements rather than concurrently.)
func TestChurnReaderZeroAlloc(t *testing.T) {
	tb := New()
	src := addr.MustParse("171.64.7.9")
	const stable = 4096
	for i := 0; i < stable; i++ {
		tb.Set(Key{S: src, G: addr.ExpressAddr(uint32(i))}, Entry{IIF: 0, OIFs: 1 << 1})
	}
	churn := func(span int) {
		for i := 0; i < span; i++ {
			k := Key{S: src, G: addr.ExpressAddr(uint32(stable + i))}
			tb.Set(k, Entry{IIF: 0, OIFs: 1 << 4})
		}
		for i := 0; i < span; i++ {
			tb.Delete(Key{S: src, G: addr.ExpressAddr(uint32(stable + i))})
		}
	}
	var sink uint32
	for round, span := range []int{1 << 12, 1 << 14, 1 << 12} {
		churn(span) // grow, mass-leave, shrink between measurements
		if a := testing.AllocsPerRun(1000, func() {
			m, _ := tb.ForwardMask(src, addr.ExpressAddr(sink%stable), 0)
			sink += m
			_, _ = tb.ForwardMask(src, addr.ExpressAddr(stable+sink%uint32(span)), 0) // miss path
		}); a != 0 {
			t.Fatalf("round %d: ForwardMask allocates %.1f/op under churn, want 0", round, a)
		}
	}
	_ = sink
}
