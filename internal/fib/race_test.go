package fib

import (
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/addr"
)

// TestConcurrentForwardDuringChurn locks the RCU contract in: reader
// goroutines hammer ForwardMask while writers add and remove channels (with
// enough volume to force several growth rebuilds and tombstone compactions).
// Run with -race in CI. Every lookup must return a coherent result — a
// disposition from the valid set, a mask that never echoes the arrival
// interface, and for keys outside the churn range, exactly the stable
// entry's interfaces — and the final table must equal the stable set.
func TestConcurrentForwardDuringChurn(t *testing.T) {
	tb := New()
	src := addr.MustParse("171.64.7.9")

	// A stable region writers never touch: lookups there must always hit.
	const stable = 512
	for i := 0; i < stable; i++ {
		tb.Set(Key{S: src, G: addr.ExpressAddr(uint32(i))}, Entry{IIF: 0, OIFs: 1<<2 | 1<<0})
	}

	const (
		writers   = 2
		readers   = 4
		churnOps  = 20_000
		churnSpan = 4_096
	)
	var writerWG, readerWG sync.WaitGroup
	var writersDone atomic.Bool
	errs := make(chan string, readers)

	for w := 0; w < writers; w++ {
		writerWG.Add(1)
		go func(w int) {
			defer writerWG.Done()
			base := uint32(stable + w*churnSpan)
			for i := 0; i < churnOps; i++ {
				g := addr.ExpressAddr(base + uint32(i%churnSpan))
				k := Key{S: src, G: g}
				tb.Set(k, Entry{IIF: 1, OIFs: 1 << 3})
				if i%3 == 0 {
					// Wildcard churn exercises the fallback probe too.
					tb.Set(Key{G: g}, Entry{IIF: -1, OIFs: 1 << 4})
					tb.Delete(Key{G: g})
				}
				tb.Delete(k)
			}
		}(w)
	}

	for r := 0; r < readers; r++ {
		readerWG.Add(1)
		go func() {
			defer readerWG.Done()
			// done is sampled at the bottom so every reader performs at
			// least one lookup even if the writers finish before this
			// goroutine is first scheduled (single-CPU machines under
			// parallel test load) — the stats assertions below need it.
			var i uint32
			for done := false; !done; done = writersDone.Load() {
				// Stable range: must forward with exactly the stable OIFs
				// minus the arrival interface, or IIF-drop on a wrong iif.
				iif := int(i % MaxInterfaces)
				mask, disp := tb.ForwardMask(src, addr.ExpressAddr(i%stable), iif)
				if iif == 0 {
					if disp != Forwarded || mask != 1<<2 {
						errs <- "stable entry lookup returned wrong mask/disposition"
						return
					}
				} else if disp != DropWrongIIF {
					errs <- "stable entry accepted a wrong arrival interface"
					return
				}
				if mask&(1<<uint(iif)) != 0 {
					errs <- "mask echoed the arrival interface"
					return
				}
				// Churn range: any disposition is legal mid-churn, but it
				// must be a member of the valid set.
				_, disp = tb.ForwardMask(src, addr.ExpressAddr(stable+i%(writers*churnSpan)), 1)
				if disp != Forwarded && disp != DropUnmatched && disp != DropWrongIIF {
					errs <- "invalid disposition under churn"
					return
				}
				i++
			}
		}()
	}

	writerWG.Wait()
	writersDone.Store(true)
	readerWG.Wait()
	select {
	case msg := <-errs:
		t.Fatal(msg)
	default:
	}

	if tb.Len() != stable {
		t.Fatalf("Len = %d after balanced churn, want %d", tb.Len(), stable)
	}
	for i := 0; i < stable; i++ {
		e, ok := tb.Get(Key{S: src, G: addr.ExpressAddr(uint32(i))})
		if !ok || e.OIFs != 1<<2|1<<0 {
			t.Fatalf("stable entry %d lost or corrupted: %+v %v", i, e, ok)
		}
	}
	st := tb.Stats()
	if st.Lookups == 0 || st.Matched == 0 {
		t.Fatal("striped stats recorded nothing")
	}
	if st.Lookups < st.Matched+st.UnmatchedDrops+st.IIFDrops {
		t.Fatalf("stats inconsistent: %+v", st)
	}
}
