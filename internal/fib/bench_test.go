package fib

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/addr"
)

// populate fills a table with channels from one source, IIF 0, two OIFs.
func populate(b *testing.B, channels int) (*Table, addr.Addr) {
	b.Helper()
	t := New()
	src := addr.MustParse("171.64.7.9")
	for i := 0; i < channels; i++ {
		t.Set(Key{S: src, G: addr.ExpressAddr(uint32(i))}, Entry{IIF: 0, OIFs: 1<<1 | 1<<3})
	}
	return t, src
}

// BenchmarkForwardHit measures the fast-path lookup the paper prices in
// SRAM terms: exact (S,E) match plus the incoming-interface check.
func BenchmarkForwardHit(b *testing.B) {
	const channels = 1 << 16
	t, src := populate(b, channels)
	var sink uint32
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mask, disp := t.ForwardMask(src, addr.ExpressAddr(uint32(i%channels)), 0)
		if disp != Forwarded {
			b.Fatal("miss on a populated table")
		}
		sink += mask
	}
	_ = sink
	b.ReportMetric(float64(channels), "table-entries")
}

// BenchmarkForwardMiss measures the counted-and-dropped path (Section 3.4).
func BenchmarkForwardMiss(b *testing.B) {
	t, _ := populate(b, 1<<14)
	rogue := addr.MustParse("10.9.9.9")
	var sink uint32
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mask, _ := t.ForwardMask(rogue, addr.ExpressAddr(uint32(i&0x3fff)), 0)
		sink += mask
	}
	_ = sink
}

// BenchmarkForwardParallel is the concurrency claim of this table: lookup
// throughput must scale with reader goroutines instead of plateauing on a
// shared lock. Each goroutine walks its own key range; compare ns/op across
// the 1/4/16 sub-benchmarks (with GOMAXPROCS > 1, more goroutines → lower
// ns/op, since ns/op counts wall time per total lookup).
func BenchmarkForwardParallel(b *testing.B) {
	const channels = 1 << 16
	for _, g := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("goroutines=%d", g), func(b *testing.B) {
			t, src := populate(b, channels)
			var miss atomic.Uint64
			b.ReportAllocs()
			b.ResetTimer()
			per := b.N/g + 1
			var wg sync.WaitGroup
			for w := 0; w < g; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					var sink uint32
					base := w * per
					for i := 0; i < per; i++ {
						mask, disp := t.ForwardMask(src, addr.ExpressAddr(uint32((base+i)%channels)), 0)
						if disp != Forwarded {
							miss.Add(1)
							return
						}
						sink += mask
					}
					_ = sink
				}(w)
			}
			wg.Wait()
			b.StopTimer()
			if miss.Load() != 0 {
				b.Fatal("miss on a populated table")
			}
			b.ReportMetric(float64(g), "goroutines")
		})
	}
}

// BenchmarkForwardParallelWithChurn holds reader throughput while one writer
// continuously adds and removes channels — the RCU contract under load.
func BenchmarkForwardParallelWithChurn(b *testing.B) {
	const channels = 1 << 14
	t, src := populate(b, channels)
	stop := make(chan struct{})
	var churn uint64
	go func() {
		for i := uint32(0); ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			k := Key{S: src, G: addr.ExpressAddr(channels + i%1024)}
			t.Set(k, Entry{IIF: 0, OIFs: 2})
			t.Delete(k)
			churn++
		}
	}()
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		var i uint32
		var sink uint32
		for pb.Next() {
			mask, _ := t.ForwardMask(src, addr.ExpressAddr(i%channels), 0)
			sink += mask
			i++
		}
		_ = sink
	})
	close(stop)
	b.ReportMetric(float64(churn), "writer-ops-total")
}

// BenchmarkSetDelete measures the writer path: copy-on-write publication
// cost amortized over insert+delete pairs.
func BenchmarkSetDelete(b *testing.B) {
	t, src := populate(b, 1<<12)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := Key{S: src, G: addr.ExpressAddr(uint32(1<<12 + i%1024))}
		t.Set(k, Entry{IIF: 0, OIFs: 2})
		t.Delete(k)
	}
}

// BenchmarkChurnPublish is the tentpole claim of the chunked-generation
// scheme: route-change publication cost is O(chunk), not O(table). Each
// sub-benchmark churns Set/Delete pairs against a pre-populated table and
// reports the p99 chunk-republication duration — compare it across the
// 10⁴/10⁵/10⁶ sizes: it must stay flat while table size grows 100×.
func BenchmarkChurnPublish(b *testing.B) {
	for _, routes := range []int{10_000, 100_000, 1_000_000} {
		b.Run(fmt.Sprintf("routes=%d", routes), func(b *testing.B) {
			// The churn window is pre-populated too, so the measured loop
			// oscillates within existing capacity — genuine growth is the
			// directory's job and is asserted not to happen here. Populate
			// can leave chunks just under the growth threshold (a deferred
			// split the first tombstones would trip), so warm-up passes run
			// until a full window of churn causes no rebuild.
			window := routes / 8
			t, src := populate(b, routes+window)
			for pass := 0; pass < 8; pass++ {
				before := t.Rebuilds()
				for i := 0; i < window; i++ {
					k := Key{S: src, G: addr.ExpressAddr(uint32(routes + i))}
					t.Delete(k)
					t.Set(k, Entry{IIF: 0, OIFs: 2})
				}
				if t.Rebuilds() == before {
					break
				}
			}
			baseRebuilds := t.Rebuilds()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				k := Key{S: src, G: addr.ExpressAddr(uint32(routes + i%window))}
				t.Delete(k)
				t.Set(k, Entry{IIF: 0, OIFs: 2})
			}
			b.StopTimer()
			s := t.ChunkPublishSnapshot()
			b.ReportMetric(float64(routes), "table-entries")
			b.ReportMetric(s.P99, "chunk-publish-p99-ns")
			b.ReportMetric(float64(t.ChunkPublishes()), "chunk-publishes")
			if r := t.Rebuilds() - baseRebuilds; r != 0 {
				b.Fatalf("steady churn paid %d whole-table rebuilds, want 0", r)
			}
		})
	}
}

// BenchmarkSnapshot measures packing a full table into line-card format.
func BenchmarkSnapshot(b *testing.B) {
	t := New()
	src := addr.MustParse("171.64.7.9")
	for i := 0; i < 10_000; i++ {
		e := Entry{IIF: i % MaxInterfaces}
		e.SetOIF((i + 1) % MaxInterfaces)
		t.Set(Key{S: src, G: addr.ExpressAddr(uint32(i))}, e)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		packed, _ := t.Snapshot()
		if len(packed) != 10_000*EntrySize {
			b.Fatal("bad snapshot")
		}
	}
}
