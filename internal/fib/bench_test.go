package fib

import (
	"testing"

	"repro/internal/addr"
)

// BenchmarkForwardHit measures the fast-path lookup the paper prices in
// SRAM terms: exact (S,E) match plus the incoming-interface check.
func BenchmarkForwardHit(b *testing.B) {
	t := New()
	src := addr.MustParse("171.64.7.9")
	const channels = 1 << 16
	for i := 0; i < channels; i++ {
		e := t.Ensure(Key{S: src, G: addr.ExpressAddr(uint32(i))})
		e.IIF = 0
		e.SetOIF(1)
		e.SetOIF(3)
	}
	var oifs []int
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var disp Disposition
		oifs, disp = t.Forward(src, addr.ExpressAddr(uint32(i%channels)), 0, oifs[:0])
		if disp != Forwarded {
			b.Fatal("miss on a populated table")
		}
	}
	b.ReportMetric(float64(channels), "table-entries")
}

// BenchmarkForwardMiss measures the counted-and-dropped path (Section 3.4).
func BenchmarkForwardMiss(b *testing.B) {
	t := New()
	src := addr.MustParse("171.64.7.9")
	for i := 0; i < 1<<14; i++ {
		e := t.Ensure(Key{S: src, G: addr.ExpressAddr(uint32(i))})
		e.IIF = 0
		e.SetOIF(1)
	}
	rogue := addr.MustParse("10.9.9.9")
	var oifs []int
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		oifs, _ = t.Forward(rogue, addr.ExpressAddr(uint32(i&0x3fff)), 0, oifs[:0])
	}
	_ = oifs
}

// BenchmarkSnapshot measures packing a full table into line-card format.
func BenchmarkSnapshot(b *testing.B) {
	t := New()
	src := addr.MustParse("171.64.7.9")
	for i := 0; i < 10_000; i++ {
		e := t.Ensure(Key{S: src, G: addr.ExpressAddr(uint32(i))})
		e.IIF = i % MaxInterfaces
		e.SetOIF((i + 1) % MaxInterfaces)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		packed, _ := t.Snapshot()
		if len(packed) != 10_000*EntrySize {
			b.Fatal("bad snapshot")
		}
	}
}
