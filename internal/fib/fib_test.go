package fib

import (
	"testing"
	"testing/quick"

	"repro/internal/addr"
)

var (
	s1 = addr.MustParse("10.0.0.1")
	s2 = addr.MustParse("10.0.0.2")
	e1 = addr.ExpressAddr(100)
)

func TestForwardExactMatch(t *testing.T) {
	tb := New()
	e := tb.Ensure(Key{S: s1, G: e1})
	e.IIF = 0
	e.SetOIF(1)
	e.SetOIF(2)

	oifs, disp := tb.Forward(s1, e1, 0, nil)
	if disp != Forwarded {
		t.Fatalf("disposition = %v, want forwarded", disp)
	}
	if len(oifs) != 2 || oifs[0] != 1 || oifs[1] != 2 {
		t.Fatalf("oifs = %v, want [1 2]", oifs)
	}
}

func TestForwardNeverEchoesArrivalInterface(t *testing.T) {
	tb := New()
	e := tb.Ensure(Key{G: e1}) // wildcard, accept-any
	e.SetOIF(0)
	e.SetOIF(1)
	oifs, disp := tb.Forward(s1, e1, 1, nil)
	if disp != Forwarded {
		t.Fatal("not forwarded")
	}
	for _, o := range oifs {
		if o == 1 {
			t.Fatal("packet echoed out its arrival interface")
		}
	}
}

func TestForwardUnmatchedCountedAndDropped(t *testing.T) {
	tb := New()
	e := tb.Ensure(Key{S: s1, G: e1})
	e.IIF = 0
	e.SetOIF(1)

	// Same E, different S: the unrelated channel (S',E) of Figure 1.
	_, disp := tb.Forward(s2, e1, 0, nil)
	if disp != DropUnmatched {
		t.Fatalf("disposition = %v, want drop-unmatched", disp)
	}
	if tb.Stats().UnmatchedDrops != 1 {
		t.Errorf("UnmatchedDrops = %d, want 1 (counted and dropped)", tb.Stats().UnmatchedDrops)
	}
}

func TestForwardWrongIIF(t *testing.T) {
	tb := New()
	e := tb.Ensure(Key{S: s1, G: e1})
	e.IIF = 0
	e.SetOIF(1)
	_, disp := tb.Forward(s1, e1, 2, nil)
	if disp != DropWrongIIF {
		t.Fatalf("disposition = %v, want drop-wrong-iif", disp)
	}
	if tb.Stats().IIFDrops != 1 {
		t.Errorf("IIFDrops = %d, want 1", tb.Stats().IIFDrops)
	}
}

func TestExactBeatsWildcard(t *testing.T) {
	tb := New()
	wild := tb.Ensure(Key{G: e1})
	wild.IIF = -1
	wild.SetOIF(5)
	exact := tb.Ensure(Key{S: s1, G: e1})
	exact.IIF = 0
	exact.SetOIF(7)

	oifs, disp := tb.Forward(s1, e1, 0, nil)
	if disp != Forwarded || len(oifs) != 1 || oifs[0] != 7 {
		t.Fatalf("exact entry not preferred: %v %v", oifs, disp)
	}
	// A different source falls through to the wildcard.
	oifs, disp = tb.Forward(s2, e1, 3, nil)
	if disp != Forwarded || len(oifs) != 1 || oifs[0] != 5 {
		t.Fatalf("wildcard fallback broken: %v %v", oifs, disp)
	}
}

func TestEntryOIFOps(t *testing.T) {
	var e Entry
	for i := 0; i < MaxInterfaces; i++ {
		e.SetOIF(i)
	}
	if e.NumOIFs() != MaxInterfaces {
		t.Fatalf("NumOIFs = %d", e.NumOIFs())
	}
	e.ClearOIF(7)
	if e.HasOIF(7) || e.NumOIFs() != MaxInterfaces-1 {
		t.Fatal("ClearOIF failed")
	}
	list := e.OIFList(nil)
	if len(list) != MaxInterfaces-1 {
		t.Fatalf("OIFList length %d", len(list))
	}
	for i := 1; i < len(list); i++ {
		if list[i] <= list[i-1] {
			t.Fatal("OIFList not ascending")
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("SetOIF(32) did not panic")
		}
	}()
	e.SetOIF(MaxInterfaces)
}

func TestEncodeDecodeRoundTripProperty(t *testing.T) {
	f := func(s uint32, suffix uint32, iif uint8, oifs uint32, anyIIF bool) bool {
		k := Key{S: addr.Addr(s | 1), G: addr.ExpressAddr(suffix)}
		e := Entry{IIF: int(iif % MaxInterfaces), OIFs: oifs}
		if anyIIF {
			e.IIF = -1
		}
		buf, err := EncodeEntry(k, &e, nil)
		if err != nil || len(buf) != EntrySize {
			return false
		}
		k2, e2, err := DecodeEntry(buf)
		return err == nil && k2 == k && e2 == e
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestEncodeErrors(t *testing.T) {
	e := &Entry{IIF: 0, OIFs: 1}
	if _, err := EncodeEntry(Key{G: e1}, e, nil); err == nil {
		t.Error("wildcard source encoded without error")
	}
	if _, err := EncodeEntry(Key{S: s1, G: addr.MustParse("239.0.0.1")}, e, nil); err == nil {
		t.Error("non-232/8 destination encoded without error")
	}
	bad := &Entry{IIF: MaxInterfaces}
	if _, err := EncodeEntry(Key{S: s1, G: e1}, bad, nil); err == nil {
		t.Error("out-of-range IIF encoded without error")
	}
	if _, _, err := DecodeEntry(make([]byte, EntrySize-1)); err == nil {
		t.Error("short buffer decoded without error")
	}
}

func TestSnapshotAndMemory(t *testing.T) {
	tb := New()
	for i := 0; i < 100; i++ {
		e := tb.Ensure(Key{S: s1, G: addr.ExpressAddr(uint32(i))})
		e.IIF = i % MaxInterfaces
		e.SetOIF((i + 1) % MaxInterfaces)
	}
	tb.Ensure(Key{G: e1}) // wildcard: no fast-path encoding
	packed, skipped := tb.Snapshot()
	if skipped != 1 {
		t.Errorf("skipped = %d, want 1", skipped)
	}
	if len(packed) != 100*EntrySize {
		t.Errorf("packed = %d bytes, want %d", len(packed), 100*EntrySize)
	}
	if tb.MemoryBytes() != 101*EntrySize {
		t.Errorf("MemoryBytes = %d, want %d", tb.MemoryBytes(), 101*EntrySize)
	}
	tb.Delete(Key{G: e1})
	if tb.Len() != 100 {
		t.Errorf("Len = %d after delete, want 100", tb.Len())
	}
}
