package fib

import (
	"testing"
	"testing/quick"

	"repro/internal/addr"
)

var (
	s1 = addr.MustParse("10.0.0.1")
	s2 = addr.MustParse("10.0.0.2")
	e1 = addr.ExpressAddr(100)
)

// entry builds an Entry from an IIF and outgoing interface list.
func entry(iif int, oifs ...int) Entry {
	e := Entry{IIF: iif}
	for _, o := range oifs {
		e.SetOIF(o)
	}
	return e
}

func TestForwardExactMatch(t *testing.T) {
	tb := New()
	tb.Set(Key{S: s1, G: e1}, entry(0, 1, 2))

	oifs, disp := tb.Forward(s1, e1, 0, nil)
	if disp != Forwarded {
		t.Fatalf("disposition = %v, want forwarded", disp)
	}
	if len(oifs) != 2 || oifs[0] != 1 || oifs[1] != 2 {
		t.Fatalf("oifs = %v, want [1 2]", oifs)
	}
	mask, disp := tb.ForwardMask(s1, e1, 0)
	if disp != Forwarded || mask != 1<<1|1<<2 {
		t.Fatalf("ForwardMask = %#x %v, want 0x6 forwarded", mask, disp)
	}
}

func TestForwardNeverEchoesArrivalInterface(t *testing.T) {
	tb := New()
	tb.Set(Key{G: e1}, entry(-1, 0, 1)) // wildcard, accept-any
	oifs, disp := tb.Forward(s1, e1, 1, nil)
	if disp != Forwarded {
		t.Fatal("not forwarded")
	}
	for _, o := range oifs {
		if o == 1 {
			t.Fatal("packet echoed out its arrival interface")
		}
	}
	mask, _ := tb.ForwardMask(s1, e1, 1)
	if mask&(1<<1) != 0 {
		t.Fatal("mask contains the arrival interface")
	}
}

func TestForwardUnmatchedCountedAndDropped(t *testing.T) {
	tb := New()
	tb.Set(Key{S: s1, G: e1}, entry(0, 1))

	// Same E, different S: the unrelated channel (S',E) of Figure 1.
	_, disp := tb.Forward(s2, e1, 0, nil)
	if disp != DropUnmatched {
		t.Fatalf("disposition = %v, want drop-unmatched", disp)
	}
	if tb.Stats().UnmatchedDrops != 1 {
		t.Errorf("UnmatchedDrops = %d, want 1 (counted and dropped)", tb.Stats().UnmatchedDrops)
	}
}

func TestForwardWrongIIF(t *testing.T) {
	tb := New()
	tb.Set(Key{S: s1, G: e1}, entry(0, 1))
	_, disp := tb.Forward(s1, e1, 2, nil)
	if disp != DropWrongIIF {
		t.Fatalf("disposition = %v, want drop-wrong-iif", disp)
	}
	if tb.Stats().IIFDrops != 1 {
		t.Errorf("IIFDrops = %d, want 1", tb.Stats().IIFDrops)
	}
}

func TestExactBeatsWildcard(t *testing.T) {
	tb := New()
	tb.Set(Key{G: e1}, entry(-1, 5))
	tb.Set(Key{S: s1, G: e1}, entry(0, 7))

	oifs, disp := tb.Forward(s1, e1, 0, nil)
	if disp != Forwarded || len(oifs) != 1 || oifs[0] != 7 {
		t.Fatalf("exact entry not preferred: %v %v", oifs, disp)
	}
	// A different source falls through to the wildcard.
	oifs, disp = tb.Forward(s2, e1, 3, nil)
	if disp != Forwarded || len(oifs) != 1 || oifs[0] != 5 {
		t.Fatalf("wildcard fallback broken: %v %v", oifs, disp)
	}
}

// TestPrecedenceAcrossChurn drives precedence through add/remove sequences
// against the packed table: the exact entry wins while present, its removal
// re-exposes the wildcard, and removing the wildcard too yields a counted
// drop — the PIM-SM longest-match rule under deletion (tombstones must not
// break wildcard probes).
func TestPrecedenceAcrossChurn(t *testing.T) {
	tb := New()
	tb.Set(Key{G: e1}, entry(-1, 5))
	tb.Set(Key{S: s1, G: e1}, entry(0, 7))

	if mask, disp := tb.ForwardMask(s1, e1, 0); disp != Forwarded || mask != 1<<7 {
		t.Fatalf("exact lookup = %#x %v, want 0x80 forwarded", mask, disp)
	}
	// Wrong IIF on the exact entry drops: the wildcard must NOT be tried
	// once an exact match exists.
	if _, disp := tb.ForwardMask(s1, e1, 3); disp != DropWrongIIF {
		t.Fatalf("exact entry with wrong iif = %v, want drop-wrong-iif", disp)
	}

	tb.Delete(Key{S: s1, G: e1})
	if mask, disp := tb.ForwardMask(s1, e1, 3); disp != Forwarded || mask != 1<<5 {
		t.Fatalf("post-delete fallback = %#x %v, want wildcard 0x20", mask, disp)
	}

	tb.Delete(Key{G: e1})
	if _, disp := tb.ForwardMask(s1, e1, 3); disp != DropUnmatched {
		t.Fatalf("post-wildcard-delete = %v, want drop-unmatched", disp)
	}

	// Re-adding after tombstoning must behave identically.
	tb.Set(Key{S: s1, G: e1}, entry(0, 9))
	if mask, disp := tb.ForwardMask(s1, e1, 0); disp != Forwarded || mask != 1<<9 {
		t.Fatalf("re-added exact = %#x %v, want 0x200 forwarded", mask, disp)
	}
	if tb.Len() != 1 {
		t.Fatalf("Len = %d, want 1", tb.Len())
	}
}

// TestWildcardManySources: one (*,G) entry serves arbitrary sources, as the
// shared-tree baselines require, while an unrelated exact channel on a
// different destination is unaffected.
func TestWildcardManySources(t *testing.T) {
	tb := New()
	g2 := addr.ExpressAddr(200)
	tb.Set(Key{G: e1}, entry(-1, 3))
	tb.Set(Key{S: s1, G: g2}, entry(1, 4))
	for i := uint32(1); i <= 64; i++ {
		s := addr.Addr(0x0a000000 + i)
		if mask, disp := tb.ForwardMask(s, e1, 0); disp != Forwarded || mask != 1<<3 {
			t.Fatalf("source %v: mask %#x disp %v", s, mask, disp)
		}
	}
	if _, disp := tb.ForwardMask(s2, g2, 1); disp != DropUnmatched {
		t.Fatalf("exact-only destination matched a foreign source: %v", disp)
	}
}

func TestGetSetDelete(t *testing.T) {
	tb := New()
	if _, ok := tb.Get(Key{S: s1, G: e1}); ok {
		t.Fatal("Get on empty table returned an entry")
	}
	tb.Set(Key{S: s1, G: e1}, entry(2, 4))
	e, ok := tb.Get(Key{S: s1, G: e1})
	if !ok || e.IIF != 2 || e.OIFs != 1<<4 {
		t.Fatalf("Get = %+v %v", e, ok)
	}
	// Replace in place.
	tb.Set(Key{S: s1, G: e1}, entry(-1, 6))
	e, ok = tb.Get(Key{S: s1, G: e1})
	if !ok || e.IIF != -1 || e.OIFs != 1<<6 {
		t.Fatalf("Get after replace = %+v %v", e, ok)
	}
	if tb.Len() != 1 {
		t.Fatalf("Len = %d after replace, want 1", tb.Len())
	}
	tb.Delete(Key{S: s1, G: e1})
	if _, ok := tb.Get(Key{S: s1, G: e1}); ok || tb.Len() != 0 {
		t.Fatal("entry survived Delete")
	}
	// Deleting a missing key is a no-op.
	tb.Delete(Key{S: s1, G: e1})
	if tb.Len() != 0 {
		t.Fatal("Len changed on no-op delete")
	}
}

// TestGrowthAndKeys inserts past several growth generations and verifies
// every entry survives the rebuilds.
func TestGrowthAndKeys(t *testing.T) {
	tb := New()
	const n = 10_000
	for i := 0; i < n; i++ {
		tb.Set(Key{S: s1, G: addr.ExpressAddr(uint32(i))}, entry(i%MaxInterfaces, (i+1)%MaxInterfaces))
	}
	if tb.Len() != n {
		t.Fatalf("Len = %d, want %d", tb.Len(), n)
	}
	if len(tb.Keys()) != n {
		t.Fatalf("Keys = %d, want %d", len(tb.Keys()), n)
	}
	for i := 0; i < n; i++ {
		e, ok := tb.Get(Key{S: s1, G: addr.ExpressAddr(uint32(i))})
		if !ok || e.IIF != i%MaxInterfaces {
			t.Fatalf("entry %d lost or corrupted across growth: %+v %v", i, e, ok)
		}
	}
	// Delete every other entry, then verify the survivors again (tombstone
	// pressure forces a same-size rebuild on later inserts).
	for i := 0; i < n; i += 2 {
		tb.Delete(Key{S: s1, G: addr.ExpressAddr(uint32(i))})
	}
	for i := 0; i < n; i++ {
		tb.Set(Key{S: s2, G: addr.ExpressAddr(uint32(n + i))}, entry(0, 1))
	}
	for i := 1; i < n; i += 2 {
		if _, ok := tb.Get(Key{S: s1, G: addr.ExpressAddr(uint32(i))}); !ok {
			t.Fatalf("survivor %d lost after tombstone churn", i)
		}
	}
	if tb.Len() != n/2+n {
		t.Fatalf("Len = %d, want %d", tb.Len(), n/2+n)
	}
}

// TestMassLeaveCompaction is the flash-leave regression: Delete must
// trigger tombstone compaction on its own. Before the fix, compaction only
// ran from the Set path, so a delete-heavy leave wave left occupancy pinned
// near the 3/4 growth threshold and reader probes walking long tombstone
// runs until the next insert happened to rebuild.
func TestMassLeaveCompaction(t *testing.T) {
	tb := New()
	const n = 50_000
	for i := 0; i < n; i++ {
		tb.Set(Key{S: s1, G: addr.ExpressAddr(uint32(i))}, entry(0, 1))
	}
	pubs := tb.ChunkPublishes()
	// Flash leave: 98% of subscribers gone, no interleaved joins.
	for i := 0; i < n-n/50; i++ {
		tb.Delete(Key{S: s1, G: addr.ExpressAddr(uint32(i))})
	}
	if tb.Len() != n/50 {
		t.Fatalf("Len = %d, want %d", tb.Len(), n/50)
	}
	if tb.ChunkPublishes() == pubs {
		t.Fatal("mass leave triggered no compacting republication from Delete")
	}
	// Occupancy recovers: tombstones are reclaimed, not pinned. The
	// delete-side trigger fires at 1/4 tombstones per chunk, so the
	// steady-state fraction stays strictly below the 3/4 threshold.
	if lf := tb.LoadFactor(); lf > 0.5 {
		t.Errorf("load factor = %g after mass leave, want <= 0.5", lf)
	}
	if tombs := int(tb.usedSlots.Load()) - tb.Len(); tombs*4 > int(tb.capSlots.Load()) {
		t.Errorf("%d tombstones pinned across %d slots, want < 1/4", tombs, tb.capSlots.Load())
	}
	// Lookup cost recovers too: no probe run may cross a quarter chunk —
	// with tombstones compacted, survivors sit within short runs.
	d := tb.dir.Load()
	for ci := range d.chunks {
		c := d.chunks[ci].Load()
		run, maxRun := 0, 0
		for i := 0; i < 2*len(c.slots); i++ { // wrap once to catch runs over the boundary
			if c.slots[i%len(c.slots)].key.Load() != emptyKey {
				run++
				if run > maxRun {
					maxRun = run
				}
			} else {
				run = 0
			}
			if run > len(c.slots) {
				break // chunk fully occupied: caught below
			}
		}
		if maxRun*4 > len(c.slots)*3 {
			t.Fatalf("chunk %d: probe run of %d across %d slots after mass leave", ci, maxRun, len(c.slots))
		}
	}
	// Survivors remain reachable.
	for i := n - n/50; i < n; i++ {
		if _, ok := tb.Get(Key{S: s1, G: addr.ExpressAddr(uint32(i))}); !ok {
			t.Fatalf("survivor %d lost after compaction", i)
		}
	}
}

// TestReplaceNeverRebuilds pins the probe-then-grow fix: a Set that replaces
// an existing entry adds nothing to the table and must never pay a
// republication, even with its chunk sitting exactly at the occupancy
// threshold. Before the fix the grow check ran ahead of the existing-key
// probe, so pure-replacement workloads near the threshold paid a spurious
// full rebuild per update.
func TestReplaceNeverRebuilds(t *testing.T) {
	tb := New()
	// minSlots = 8: six inserts put the single chunk at 6/8 occupancy, the
	// exact state where the next *insert* must republish — (6+1)*4 > 8*3.
	for i := 0; i < 6; i++ {
		tb.Set(Key{S: s1, G: addr.ExpressAddr(uint32(i + 1))}, entry(0, 1))
	}
	if pubs, rebuilds := tb.ChunkPublishes(), tb.Rebuilds(); pubs != 0 || rebuilds != 0 {
		t.Fatalf("setup published (%d chunk, %d table), want none", pubs, rebuilds)
	}
	for i := 0; i < 100; i++ {
		tb.Set(Key{S: s1, G: addr.ExpressAddr(uint32(i%6 + 1))}, entry(1, 2))
	}
	if pubs, rebuilds := tb.ChunkPublishes(), tb.Rebuilds(); pubs != 0 || rebuilds != 0 {
		t.Errorf("replacements at the growth threshold published (%d chunk, %d table), want none", pubs, rebuilds)
	}
	if e, ok := tb.Get(Key{S: s1, G: addr.ExpressAddr(3)}); !ok || e.IIF != 1 || e.OIFs != 1<<2 {
		t.Errorf("replacement not applied: %+v %v", e, ok)
	}
	if tb.Len() != 6 {
		t.Errorf("Len = %d, want 6", tb.Len())
	}
	// The deferred growth still happens on the next real insert.
	tb.Set(Key{S: s1, G: addr.ExpressAddr(7)}, entry(0, 1))
	if tb.ChunkPublishes() == 0 {
		t.Error("insert past the threshold did not republish the chunk")
	}
}

// TestChunkPublishBounded locks in the tentpole property: a route change
// republishes one chunk, never the table, so the bytes copied per
// publication are bounded by maxChunkSlots while the table grows without
// bound. Whole-table work survives only as directory growth.
func TestChunkPublishBounded(t *testing.T) {
	tb := New()
	const n = 200_000
	for i := 0; i < n; i++ {
		tb.Set(Key{S: s1, G: addr.ExpressAddr(uint32(i))}, entry(0, 1))
	}
	d := tb.dir.Load()
	for ci := range d.chunks {
		if c := d.chunks[ci].Load(); len(c.slots) > maxChunkSlots {
			t.Fatalf("chunk %d has %d slots, want <= %d", ci, len(c.slots), maxChunkSlots)
		}
	}
	// Steady churn on a full table republishes chunks only.
	rebuilds := tb.Rebuilds()
	for i := 0; i < 50_000; i++ {
		k := Key{S: s2, G: addr.ExpressAddr(uint32(n + i%4096))}
		tb.Set(k, entry(0, 2))
		tb.Delete(k)
	}
	if tb.Rebuilds() != rebuilds {
		t.Errorf("steady churn paid %d whole-table rebuilds, want 0", tb.Rebuilds()-rebuilds)
	}
}

func TestEntryOIFOps(t *testing.T) {
	var e Entry
	for i := 0; i < MaxInterfaces; i++ {
		e.SetOIF(i)
	}
	if e.NumOIFs() != MaxInterfaces {
		t.Fatalf("NumOIFs = %d", e.NumOIFs())
	}
	e.ClearOIF(7)
	if e.HasOIF(7) || e.NumOIFs() != MaxInterfaces-1 {
		t.Fatal("ClearOIF failed")
	}
	list := e.OIFList(nil)
	if len(list) != MaxInterfaces-1 {
		t.Fatalf("OIFList length %d", len(list))
	}
	for i := 1; i < len(list); i++ {
		if list[i] <= list[i-1] {
			t.Fatal("OIFList not ascending")
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("SetOIF(32) did not panic")
		}
	}()
	e.SetOIF(MaxInterfaces)
}

// TestForwardZeroAlloc is the allocation contract of the fast path: neither
// the mask lookup nor the expansion into a warm caller slice may allocate.
func TestForwardZeroAlloc(t *testing.T) {
	tb := New()
	src := addr.MustParse("171.64.7.9")
	for i := 0; i < 1024; i++ {
		tb.Set(Key{S: src, G: addr.ExpressAddr(uint32(i))}, entry(0, 1, 3))
	}
	var sink uint32
	if a := testing.AllocsPerRun(1000, func() {
		m, _ := tb.ForwardMask(src, addr.ExpressAddr(uint32(sink%1024)), 0)
		sink += m
	}); a != 0 {
		t.Errorf("ForwardMask allocates %.1f/op, want 0", a)
	}
	dst := make([]int, 0, MaxInterfaces)
	if a := testing.AllocsPerRun(1000, func() {
		oifs, _ := tb.Forward(src, addr.ExpressAddr(uint32(sink%1024)), 0, dst[:0])
		sink += uint32(len(oifs))
	}); a != 0 {
		t.Errorf("Forward with warm dst allocates %.1f/op, want 0", a)
	}
	// The miss path (counted and dropped) must be equally free.
	rogue := addr.MustParse("10.9.9.9")
	if a := testing.AllocsPerRun(1000, func() {
		_, disp := tb.ForwardMask(rogue, addr.ExpressAddr(7), 0)
		sink += uint32(disp)
	}); a != 0 {
		t.Errorf("miss path allocates %.1f/op, want 0", a)
	}
	_ = sink
}

func TestEncodeDecodeRoundTripProperty(t *testing.T) {
	f := func(s uint32, suffix uint32, iif uint8, oifs uint32, anyIIF bool) bool {
		k := Key{S: addr.Addr(s | 1), G: addr.ExpressAddr(suffix)}
		e := Entry{IIF: int(iif % MaxInterfaces), OIFs: oifs}
		if anyIIF {
			e.IIF = -1
		}
		buf, err := EncodeEntry(k, &e, nil)
		if err != nil || len(buf) != EntrySize {
			return false
		}
		k2, e2, err := DecodeEntry(buf)
		return err == nil && k2 == k && e2 == e
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

// TestPackedSlotRoundTripProperty locks the in-memory slot packing in: any
// storable entry survives the packKey/packVal round trip through the table.
func TestPackedSlotRoundTripProperty(t *testing.T) {
	f := func(s uint32, g uint32, iif uint8, oifs uint32, anyIIF, wild bool) bool {
		if g == 0 {
			g = 1
		}
		k := Key{S: addr.Addr(s), G: addr.Addr(g)}
		if wild {
			k.S = 0
		}
		e := Entry{IIF: int(iif % MaxInterfaces), OIFs: oifs}
		if anyIIF {
			e.IIF = -1
		}
		tb := New()
		tb.Set(k, e)
		got, ok := tb.Get(k)
		return ok && got == e
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestEncodeErrors(t *testing.T) {
	e := &Entry{IIF: 0, OIFs: 1}
	if _, err := EncodeEntry(Key{G: e1}, e, nil); err == nil {
		t.Error("wildcard source encoded without error")
	}
	if _, err := EncodeEntry(Key{S: s1, G: addr.MustParse("239.0.0.1")}, e, nil); err == nil {
		t.Error("non-232/8 destination encoded without error")
	}
	bad := &Entry{IIF: MaxInterfaces}
	if _, err := EncodeEntry(Key{S: s1, G: e1}, bad, nil); err == nil {
		t.Error("out-of-range IIF encoded without error")
	}
	if _, _, err := DecodeEntry(make([]byte, EntrySize-1)); err == nil {
		t.Error("short buffer decoded without error")
	}
}

func TestSnapshotAndMemory(t *testing.T) {
	tb := New()
	for i := 0; i < 100; i++ {
		tb.Set(Key{S: s1, G: addr.ExpressAddr(uint32(i))}, entry(i%MaxInterfaces, (i+1)%MaxInterfaces))
	}
	tb.Set(Key{G: e1}, Entry{IIF: -1}) // wildcard: no fast-path encoding
	packed, skipped := tb.Snapshot()
	if skipped != 1 {
		t.Errorf("skipped = %d, want 1", skipped)
	}
	if len(packed) != 100*EntrySize {
		t.Errorf("packed = %d bytes, want %d", len(packed), 100*EntrySize)
	}
	if tb.MemoryBytes() != 101*EntrySize {
		t.Errorf("MemoryBytes = %d, want %d", tb.MemoryBytes(), 101*EntrySize)
	}
	tb.Delete(Key{G: e1})
	if tb.Len() != 100 {
		t.Errorf("Len = %d after delete, want 100", tb.Len())
	}
}
