package fib

import (
	"testing"
	"time"

	"repro/internal/addr"
	"repro/internal/obs"
)

// TestPublicationMetrics verifies the chunked-publication instrumentation:
// growth from minSlots republishes chunks (counted and timed), a directory
// doubling is counted as a whole-table rebuild, and the load factor stays
// under the 3/4 growth threshold.
func TestPublicationMetrics(t *testing.T) {
	tb := New()
	src := addr.MustParse("171.64.7.9")
	for i := 0; i < 1000; i++ {
		tb.Set(Key{S: src, G: addr.ExpressAddr(uint32(i))}, entry(0, 1))
	}
	if tb.ChunkPublishes() == 0 {
		t.Fatal("1000 inserts from minSlots triggered no chunk republication")
	}
	if s := tb.ChunkPublishSnapshot(); s.Count != tb.ChunkPublishes() {
		t.Errorf("chunk publish histogram count = %d, want %d", s.Count, tb.ChunkPublishes())
	}
	// 1000 entries overflow one maxChunkSlots chunk: the directory must
	// have doubled at least once, and that is the only whole-table path.
	if tb.Rebuilds() == 0 {
		t.Fatal("growth past maxChunkSlots triggered no directory rebuild")
	}
	if s := tb.RebuildSnapshot(); s.Count != tb.Rebuilds() {
		t.Errorf("rebuild histogram count = %d, want %d", s.Count, tb.Rebuilds())
	}
	if tb.NumChunks() < 2 {
		t.Errorf("NumChunks = %d after a directory rebuild, want >= 2", tb.NumChunks())
	}
	if lf := tb.LoadFactor(); lf <= 0 || lf > 0.75 {
		t.Errorf("load factor = %g, want in (0, 0.75]", lf)
	}

	// A mass leave compacts from the Delete path alone: tombstone pressure
	// republishes chunks without any insert, and occupancy recovers.
	pubs, rebuilds := tb.ChunkPublishes(), tb.Rebuilds()
	for i := 0; i < 1000; i++ {
		tb.Delete(Key{S: src, G: addr.ExpressAddr(uint32(i))})
	}
	if tb.ChunkPublishes() == pubs {
		t.Error("delete-side tombstone pressure triggered no compacting republication")
	}
	if tb.Rebuilds() != rebuilds {
		t.Errorf("mass leave paid %d whole-table rebuilds, want 0", tb.Rebuilds()-rebuilds)
	}
	if lf := tb.LoadFactor(); lf > 0.25 {
		t.Errorf("load factor = %g after mass leave, want <= 0.25 (tombstones reclaimed)", lf)
	}
}

func TestRegisterMetrics(t *testing.T) {
	tb := New()
	reg := obs.NewRegistry()
	tb.RegisterMetrics(reg, "fib_")
	src := addr.MustParse("171.64.7.9")
	for i := 0; i < 100; i++ {
		tb.Set(Key{S: src, G: addr.ExpressAddr(uint32(i))}, entry(0, 1))
	}
	tb.ForwardMask(src, addr.ExpressAddr(5), 0)
	tb.ForwardMask(addr.MustParse("10.0.0.1"), addr.ExpressAddr(5), 0)

	s := reg.Snapshot()
	if s.Gauges["fib_entries"] != 100 {
		t.Errorf("fib_entries = %g, want 100", s.Gauges["fib_entries"])
	}
	if s.Counters["fib_lookups_total"] != 2 || s.Counters["fib_matched_total"] != 1 {
		t.Errorf("lookups = %d matched = %d, want 2 and 1",
			s.Counters["fib_lookups_total"], s.Counters["fib_matched_total"])
	}
	if s.Counters["fib_unmatched_drops_total"] != 1 {
		t.Errorf("unmatched drops = %d, want 1", s.Counters["fib_unmatched_drops_total"])
	}
	if s.Counters["fib_chunk_publishes_total"] == 0 || s.Histograms["fib_chunk_publish_ns"].Count == 0 {
		t.Error("chunk publications not visible through the registry")
	}
	if _, ok := s.Histograms["fib_rebuild_ns"]; !ok {
		t.Error("fib_rebuild_ns not registered")
	}
	if lf, ok := s.Gauges["fib_load_factor"]; !ok || lf <= 0 {
		t.Errorf("fib_load_factor = %g, want > 0", lf)
	}
	if nc, ok := s.Gauges["fib_chunks"]; !ok || nc < 1 {
		t.Errorf("fib_chunks = %g, want >= 1", nc)
	}
}

// TestLoadFactorLockFree pins the scrape-during-rebuild contract: LoadFactor
// must not take the writer mutex, so a /statsz or /metrics scrape never
// blocks behind a million-entry rebuild. The writer lock is held for the
// whole test; the scrape must still return.
func TestLoadFactorLockFree(t *testing.T) {
	tb := New()
	src := addr.MustParse("171.64.7.9")
	for i := 0; i < 100; i++ {
		tb.Set(Key{S: src, G: addr.ExpressAddr(uint32(i))}, entry(0, 1))
	}
	tb.mu.Lock() // a writer mid-rebuild
	defer tb.mu.Unlock()
	done := make(chan float64, 1)
	go func() { done <- tb.LoadFactor() }()
	select {
	case lf := <-done:
		if lf <= 0 || lf > 0.75 {
			t.Errorf("load factor = %g, want in (0, 0.75]", lf)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("LoadFactor blocked behind the writer mutex")
	}
}
