package fib

import (
	"testing"

	"repro/internal/addr"
	"repro/internal/obs"
)

// TestRebuildMetrics verifies the generation-rebuild instrumentation: every
// grow/compact is counted and timed, and the load factor stays under the
// 3/4 growth threshold.
func TestRebuildMetrics(t *testing.T) {
	tb := New()
	src := addr.MustParse("171.64.7.9")
	for i := 0; i < 1000; i++ {
		tb.Set(Key{S: src, G: addr.ExpressAddr(uint32(i))}, entry(0, 1))
	}
	if tb.Rebuilds() == 0 {
		t.Fatal("1000 inserts from minSlots triggered no rebuild")
	}
	if s := tb.rebuildNs.Snapshot(); s.Count != tb.Rebuilds() {
		t.Errorf("rebuild histogram count = %d, want %d", s.Count, tb.Rebuilds())
	}
	if lf := tb.LoadFactor(); lf <= 0 || lf > 0.75 {
		t.Errorf("load factor = %g, want in (0, 0.75]", lf)
	}

	// Deleting everything leaves tombstones; the next insert pressure
	// compacts them away in a same-size rebuild.
	before := tb.Rebuilds()
	for i := 0; i < 1000; i++ {
		tb.Delete(Key{S: src, G: addr.ExpressAddr(uint32(i))})
	}
	for i := 2000; i < 3000; i++ {
		tb.Set(Key{S: src, G: addr.ExpressAddr(uint32(i))}, entry(0, 1))
	}
	if tb.Rebuilds() == before {
		t.Error("tombstone pressure triggered no compacting rebuild")
	}
}

func TestRegisterMetrics(t *testing.T) {
	tb := New()
	reg := obs.NewRegistry()
	tb.RegisterMetrics(reg, "fib_")
	src := addr.MustParse("171.64.7.9")
	for i := 0; i < 100; i++ {
		tb.Set(Key{S: src, G: addr.ExpressAddr(uint32(i))}, entry(0, 1))
	}
	tb.ForwardMask(src, addr.ExpressAddr(5), 0)
	tb.ForwardMask(addr.MustParse("10.0.0.1"), addr.ExpressAddr(5), 0)

	s := reg.Snapshot()
	if s.Gauges["fib_entries"] != 100 {
		t.Errorf("fib_entries = %g, want 100", s.Gauges["fib_entries"])
	}
	if s.Counters["fib_lookups_total"] != 2 || s.Counters["fib_matched_total"] != 1 {
		t.Errorf("lookups = %d matched = %d, want 2 and 1",
			s.Counters["fib_lookups_total"], s.Counters["fib_matched_total"])
	}
	if s.Counters["fib_unmatched_drops_total"] != 1 {
		t.Errorf("unmatched drops = %d, want 1", s.Counters["fib_unmatched_drops_total"])
	}
	if s.Counters["fib_rebuilds_total"] == 0 || s.Histograms["fib_rebuild_ns"].Count == 0 {
		t.Error("rebuilds not visible through the registry")
	}
	if lf, ok := s.Gauges["fib_load_factor"]; !ok || lf <= 0 {
		t.Errorf("fib_load_factor = %g, want > 0", lf)
	}
}
