// Package fib implements the multicast Forwarding Information Base.
//
// EXPRESS forwarding (Section 3.4) is an exact (S,E) lookup with an
// incoming-interface check: a matching packet is forwarded to the entry's
// outgoing interface set; a non-matching EXPRESS packet is "simply counted
// and dropped, as opposed to being forwarded to a rendezvous point as in
// PIM-SM, or broadcast, as with PIM-DM and DVMRP".
//
// The same table also serves the group-model baselines via wildcard-source
// (*,G) entries and a bidirectional flag (CBT), so state-size comparisons
// (experiment E9) count entries of identical layout.
package fib

import (
	"fmt"
	"math/bits"

	"repro/internal/addr"
)

// MaxInterfaces is the number of interfaces representable in one entry's
// outgoing-interface bitmask. Figure 5 assumes "32 interfaces per router".
const MaxInterfaces = 32

// Key identifies a forwarding entry. S == 0 denotes a wildcard-source (*,G)
// entry, used only by the group-model baselines.
type Key struct {
	S addr.Addr
	G addr.Addr
}

// Entry is the forwarding state for one channel or group.
type Entry struct {
	// IIF is the expected incoming interface (the RPF interface toward S,
	// or toward the RP/core for shared trees). -1 accepts any interface,
	// which is how CBT's bidirectional shared tree forwards.
	IIF int
	// OIFs is the outgoing interface bitmask.
	OIFs uint32
}

// HasOIF reports whether interface i is in the outgoing set.
func (e *Entry) HasOIF(i int) bool { return e.OIFs&(1<<uint(i)) != 0 }

// SetOIF adds interface i to the outgoing set.
func (e *Entry) SetOIF(i int) {
	if i < 0 || i >= MaxInterfaces {
		panic(fmt.Sprintf("fib: interface %d out of range", i))
	}
	e.OIFs |= 1 << uint(i)
}

// ClearOIF removes interface i from the outgoing set.
func (e *Entry) ClearOIF(i int) { e.OIFs &^= 1 << uint(i) }

// NumOIFs returns the number of outgoing interfaces.
func (e *Entry) NumOIFs() int { return bits.OnesCount32(e.OIFs) }

// OIFList expands the bitmask to interface indices in ascending order,
// appending to dst to avoid allocation on the forwarding path.
func (e *Entry) OIFList(dst []int) []int {
	m := e.OIFs
	for m != 0 {
		i := bits.TrailingZeros32(m)
		dst = append(dst, i)
		m &^= 1 << uint(i)
	}
	return dst
}

// Stats counts forwarding outcomes.
type Stats struct {
	Lookups        uint64
	Matched        uint64
	UnmatchedDrops uint64 // EXPRESS packets with no (S,E) entry: counted and dropped
	IIFDrops       uint64 // arrived on the wrong interface (RPF failure)
}

// Table is one router's multicast FIB.
type Table struct {
	entries map[Key]*Entry
	stats   Stats
}

// New returns an empty FIB.
func New() *Table {
	return &Table{entries: make(map[Key]*Entry)}
}

// Get returns the entry for k, or nil.
func (t *Table) Get(k Key) *Entry { return t.entries[k] }

// Ensure returns the entry for k, creating an empty one (IIF -1, no OIFs)
// if absent.
func (t *Table) Ensure(k Key) *Entry {
	e := t.entries[k]
	if e == nil {
		e = &Entry{IIF: -1}
		t.entries[k] = e
	}
	return e
}

// Delete removes the entry for k.
func (t *Table) Delete(k Key) { delete(t.entries, k) }

// Len returns the number of entries.
func (t *Table) Len() int { return len(t.entries) }

// MemoryBytes returns the fast-path memory the table would occupy at the
// paper's 12-bytes-per-entry encoding (Figure 5) — the quantity the Section
// 5.1 cost model prices.
func (t *Table) MemoryBytes() int { return len(t.entries) * EntrySize }

// Stats returns a copy of the forwarding counters.
func (t *Table) Stats() Stats { return t.stats }

// Forward performs the EXPRESS forwarding procedure of Section 3.4 for a
// packet from s to multicast destination g arriving on iif. It returns the
// outgoing interface set (appended to dst) and a disposition:
//
//   - entry found, iif matches: outgoing interfaces returned;
//   - entry found, iif differs: nil, the packet is dropped (or punted to
//     the CPU — the caller decides) and IIFDrops increments;
//   - no entry: nil, UnmatchedDrops increments (counted and dropped).
//
// Exact (S,G) entries take precedence over wildcard (*,G) entries, the
// PIM-SM longest-match rule, so the same table serves the baselines.
func (t *Table) Forward(s, g addr.Addr, iif int, dst []int) ([]int, Disposition) {
	t.stats.Lookups++
	e := t.entries[Key{S: s, G: g}]
	if e == nil {
		e = t.entries[Key{G: g}]
	}
	if e == nil {
		t.stats.UnmatchedDrops++
		return nil, DropUnmatched
	}
	if e.IIF != -1 && e.IIF != iif {
		t.stats.IIFDrops++
		return nil, DropWrongIIF
	}
	t.stats.Matched++
	out := dst
	m := e.OIFs
	for m != 0 {
		i := bits.TrailingZeros32(m)
		if i != iif { // never forward back out the arrival interface
			out = append(out, i)
		}
		m &^= 1 << uint(i)
	}
	return out, Forwarded
}

// Disposition classifies a forwarding decision.
type Disposition uint8

const (
	Forwarded Disposition = iota
	DropUnmatched
	DropWrongIIF
)

func (d Disposition) String() string {
	switch d {
	case Forwarded:
		return "forwarded"
	case DropUnmatched:
		return "drop-unmatched"
	case DropWrongIIF:
		return "drop-wrong-iif"
	default:
		return "unknown"
	}
}

// Keys returns all entry keys; order is unspecified. For tests and metrics.
func (t *Table) Keys() []Key {
	out := make([]Key, 0, len(t.entries))
	for k := range t.entries {
		out = append(out, k)
	}
	return out
}
