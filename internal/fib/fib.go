// Package fib implements the multicast Forwarding Information Base.
//
// EXPRESS forwarding (Section 3.4) is an exact (S,E) lookup with an
// incoming-interface check: a matching packet is forwarded to the entry's
// outgoing interface set; a non-matching EXPRESS packet is "simply counted
// and dropped, as opposed to being forwarded to a rendezvous point as in
// PIM-SM, or broadcast, as with PIM-DM and DVMRP".
//
// The table is built the way the paper prices it (§5.1, Figure 5): entries
// live in a flat open-addressing array of packed slots, not a pointer-chasing
// map, and the data plane reads it without taking any lock. Readers load the
// current slot array through an atomic.Pointer and probe with atomic loads;
// writers serialize on a mutex and publish changes either in place (an
// atomic slot store, ordered so the payload is visible before the key) or,
// when the array must grow or shed tombstones, by building a fresh array and
// swapping the pointer — RCU-style, so a concurrent lookup always sees a
// consistent table, either pre- or post-update. Forwarding statistics are
// striped across cache-line-padded atomic counters so concurrent lookups do
// not serialize on a shared counter word.
//
// The same table also serves the group-model baselines via wildcard-source
// (*,G) entries and a bidirectional flag (CBT), so state-size comparisons
// (experiment E9) count entries of identical layout.
package fib

import (
	"fmt"
	"math/bits"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/addr"
	"repro/internal/obs"
)

// MaxInterfaces is the number of interfaces representable in one entry's
// outgoing-interface bitmask. Figure 5 assumes "32 interfaces per router".
const MaxInterfaces = 32

// Key identifies a forwarding entry. S == 0 denotes a wildcard-source (*,G)
// entry, used only by the group-model baselines.
type Key struct {
	S addr.Addr
	G addr.Addr
}

// Entry is the forwarding state for one channel or group.
type Entry struct {
	// IIF is the expected incoming interface (the RPF interface toward S,
	// or toward the RP/core for shared trees). -1 accepts any interface,
	// which is how CBT's bidirectional shared tree forwards.
	IIF int
	// OIFs is the outgoing interface bitmask.
	OIFs uint32
}

// HasOIF reports whether interface i is in the outgoing set.
func (e *Entry) HasOIF(i int) bool { return e.OIFs&(1<<uint(i)) != 0 }

// SetOIF adds interface i to the outgoing set.
func (e *Entry) SetOIF(i int) {
	if i < 0 || i >= MaxInterfaces {
		panic(fmt.Sprintf("fib: interface %d out of range", i))
	}
	e.OIFs |= 1 << uint(i)
}

// ClearOIF removes interface i from the outgoing set.
func (e *Entry) ClearOIF(i int) { e.OIFs &^= 1 << uint(i) }

// NumOIFs returns the number of outgoing interfaces.
func (e *Entry) NumOIFs() int { return bits.OnesCount32(e.OIFs) }

// OIFList expands the bitmask to interface indices in ascending order,
// appending to dst to avoid allocation on the forwarding path.
func (e *Entry) OIFList(dst []int) []int { return AppendMask(dst, e.OIFs) }

// AppendMask expands an outgoing-interface bitmask to interface indices in
// ascending order, appending to dst. Callers on the data path should prefer
// iterating the mask directly (for m := mask; m != 0; m &= m - 1 { ... }) —
// this helper exists for control-plane and test code that wants indices.
func AppendMask(dst []int, mask uint32) []int {
	for m := mask; m != 0; m &= m - 1 {
		dst = append(dst, bits.TrailingZeros32(m))
	}
	return dst
}

// Stats counts forwarding outcomes.
type Stats struct {
	Lookups        uint64
	Matched        uint64
	UnmatchedDrops uint64 // EXPRESS packets with no (S,E) entry: counted and dropped
	IIFDrops       uint64 // arrived on the wrong interface (RPF failure)
}

// statStripes is the number of independent forwarding-counter stripes.
// Lookups pick a stripe by key hash, so concurrent forwards of different
// channels land on different cache lines.
const (
	statStripes = 8
	statShift   = 64 - 3 // top bits of the key hash select the stripe
)

// statStripe is one cache line of forwarding counters. The padding keeps
// adjacent stripes on distinct 64-byte lines so per-stripe atomics do not
// false-share.
type statStripe struct {
	lookups        atomic.Uint64
	matched        atomic.Uint64
	unmatchedDrops atomic.Uint64
	iifDrops       atomic.Uint64
	_              [32]byte
}

// slot is one packed FIB entry: the 64-bit key word (S in the high half, the
// destination in the low half) and the 64-bit payload word (OIF bitmask in
// the low half, IIF byte above it). The logical entry is Figure 5's 12
// bytes — S(4) + destination(3+1) + IIF(5 bits) + OIFs(4) — stored in two
// aligned words so readers can load each half atomically; EncodeEntry still
// emits exactly 12 bytes for the line-card image.
type slot struct {
	key atomic.Uint64
	val atomic.Uint64
}

const (
	emptyKey = 0        // never a real key: a real entry's G is non-zero
	tombKey  = 1 << 63  // S = 128/8 host with G == 0: also never real
	iifAny   = 0xff     // IIF byte value meaning "accept any interface"
	minSlots = 8        // initial capacity (power of two)
)

func packKey(k Key) uint64 { return uint64(k.S)<<32 | uint64(k.G) }

func unpackKey(kk uint64) Key {
	return Key{S: addr.Addr(kk >> 32), G: addr.Addr(uint32(kk))}
}

func packVal(e Entry) uint64 {
	iif := uint64(iifAny)
	if e.IIF >= 0 {
		iif = uint64(e.IIF)
	}
	return uint64(e.OIFs) | iif<<32
}

func unpackVal(v uint64) Entry {
	e := Entry{OIFs: uint32(v), IIF: int(v>>32) & 0xff}
	if e.IIF == iifAny {
		e.IIF = -1
	}
	return e
}

// hashKey mixes the packed key so consecutive channel suffixes spread across
// the table (Fibonacci multiplicative hashing, high bits folded down because
// probing masks the low bits).
func hashKey(kk uint64) uint64 {
	h := kk * 0x9e3779b97f4a7c15
	return h ^ h>>29
}

// slotArray is one published generation of the table. Readers treat it as
// immutable structure: slots are only ever written through atomic stores
// that keep every probe sequence valid (empty slots never reappear within a
// generation, so probes terminate).
type slotArray struct {
	slots []slot
	mask  uint64
}

func newSlotArray(n int) *slotArray {
	return &slotArray{slots: make([]slot, n), mask: uint64(n - 1)}
}

// find probes for kk and returns its payload word. It is the lock-free read
// path: atomic key loads, linear probing, stop at the first empty slot.
func (a *slotArray) find(kk, h uint64) (uint64, bool) {
	i := h & a.mask
	for {
		got := a.slots[i].key.Load()
		if got == kk {
			return a.slots[i].val.Load(), true
		}
		if got == emptyKey {
			return 0, false
		}
		i = (i + 1) & a.mask
	}
}

// Table is one router's multicast FIB.
type Table struct {
	p    atomic.Pointer[slotArray]
	live atomic.Int64 // entries currently in the table

	mu   sync.Mutex // serializes writers; readers never take it
	used int        // live entries + tombstones in the current array

	stats [statStripes]statStripe

	// rebuilds and rebuildNs observe the copy-on-write generation
	// rebuilds: how often the table paid a full rebuild and how long each
	// one blocked the writer (readers never block — they keep probing the
	// old generation until the pointer swap).
	rebuilds  atomic.Uint64
	rebuildNs *obs.Histogram
}

// New returns an empty FIB.
func New() *Table {
	t := &Table{rebuildNs: obs.NewHistogram()}
	t.p.Store(newSlotArray(minSlots))
	return t
}

// Get returns the entry for k and whether it exists. Safe for concurrent
// use with writers.
func (t *Table) Get(k Key) (Entry, bool) {
	kk := packKey(k)
	v, ok := t.p.Load().find(kk, hashKey(kk))
	if !ok {
		return Entry{}, false
	}
	return unpackVal(v), true
}

// Set inserts or replaces the entry for k.
func (t *Table) Set(k Key, e Entry) {
	if k.G == 0 {
		panic("fib: zero group/channel destination")
	}
	if e.IIF >= iifAny {
		panic(fmt.Sprintf("fib: incoming interface %d out of range", e.IIF))
	}
	kk, vv := packKey(k), packVal(e)
	t.mu.Lock()
	defer t.mu.Unlock()
	a := t.p.Load()
	// Grow (or compact tombstones away) before the array passes 3/4 full,
	// so reader probes always terminate at an empty slot.
	if (t.used+1)*4 > len(a.slots)*3 {
		a = t.rebuildLocked(a)
	}
	h := hashKey(kk)
	i := h & a.mask
	for {
		got := a.slots[i].key.Load()
		if got == kk {
			a.slots[i].val.Store(vv)
			return
		}
		if got == emptyKey {
			// Insert only into empty slots, never recycle a tombstone in
			// place: a slot's key is written at most once per generation
			// (empty→key, key→tombstone), so a reader that matched a key
			// can never observe another key's payload. Tombstones are
			// reclaimed by rebuildLocked.
			//
			// Publish payload before key: a concurrent reader that observes
			// the new key is guaranteed to read a fully written payload.
			a.slots[i].val.Store(vv)
			a.slots[i].key.Store(kk)
			t.used++
			t.live.Add(1)
			return
		}
		i = (i + 1) & a.mask
	}
}

// Delete removes the entry for k.
func (t *Table) Delete(k Key) {
	kk := packKey(k)
	t.mu.Lock()
	defer t.mu.Unlock()
	a := t.p.Load()
	h := hashKey(kk)
	i := h & a.mask
	for {
		got := a.slots[i].key.Load()
		if got == kk {
			// Tombstone, not empty: probes for keys that hashed past this
			// slot must keep walking.
			a.slots[i].key.Store(tombKey)
			t.live.Add(-1)
			return
		}
		if got == emptyKey {
			return
		}
		i = (i + 1) & a.mask
	}
}

// rebuildLocked builds a fresh array holding only live entries and publishes
// it — the copy-on-write half of the RCU scheme. The array doubles when
// genuinely full and stays the same size when the pressure is tombstones.
// Concurrent readers keep probing the old generation until the pointer swap
// and see a consistent (slightly stale) table. Caller holds t.mu.
func (t *Table) rebuildLocked(a *slotArray) *slotArray {
	start := time.Now()
	live := int(t.live.Load())
	n := len(a.slots)
	if (live+1)*2 > n {
		n *= 2
	}
	if n < minSlots {
		n = minSlots
	}
	na := newSlotArray(n)
	for i := range a.slots {
		kk := a.slots[i].key.Load()
		if kk == emptyKey || kk == tombKey {
			continue
		}
		j := hashKey(kk) & na.mask
		for na.slots[j].key.Load() != emptyKey {
			j = (j + 1) & na.mask
		}
		na.slots[j].val.Store(a.slots[i].val.Load())
		na.slots[j].key.Store(kk)
	}
	t.used = live
	t.p.Store(na)
	t.rebuilds.Add(1)
	t.rebuildNs.Observe(uint64(time.Since(start)))
	return na
}

// Len returns the number of entries.
func (t *Table) Len() int { return int(t.live.Load()) }

// LoadFactor returns the occupied fraction of the current slot array —
// live entries plus tombstones over capacity. Writers grow or compact
// before it passes 3/4, so a healthy table reads below 0.75.
func (t *Table) LoadFactor() float64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return float64(t.used) / float64(len(t.p.Load().slots))
}

// Rebuilds returns how many generation rebuilds the table has performed.
func (t *Table) Rebuilds() uint64 { return t.rebuilds.Load() }

// RegisterMetrics exposes the table's observability surface — forwarding
// counters, size, load factor, and the generation-rebuild duration
// histogram — on reg under the given name prefix.
func (t *Table) RegisterMetrics(reg *obs.Registry, prefix string) {
	reg.RegisterHistogram(prefix+"rebuild_ns", "generation rebuild duration (ns, writer-side)", t.rebuildNs)
	reg.NewCounterFunc(prefix+"rebuilds_total", "copy-on-write generation rebuilds", t.rebuilds.Load)
	reg.NewGaugeFunc(prefix+"entries", "live forwarding entries", func() float64 { return float64(t.Len()) })
	reg.NewGaugeFunc(prefix+"load_factor", "slot-array occupancy (live + tombstones)", t.LoadFactor)
	reg.NewCounterFunc(prefix+"lookups_total", "forwarding lookups", func() uint64 { return t.Stats().Lookups })
	reg.NewCounterFunc(prefix+"matched_total", "lookups that matched and forwarded", func() uint64 { return t.Stats().Matched })
	reg.NewCounterFunc(prefix+"unmatched_drops_total", "EXPRESS packets counted and dropped (no entry)", func() uint64 { return t.Stats().UnmatchedDrops })
	reg.NewCounterFunc(prefix+"iif_drops_total", "packets dropped on the RPF interface check", func() uint64 { return t.Stats().IIFDrops })
}

// MemoryBytes returns the fast-path memory the table would occupy at the
// paper's 12-bytes-per-entry encoding (Figure 5) — the quantity the Section
// 5.1 cost model prices.
func (t *Table) MemoryBytes() int { return MemoryFor(t.Len()) }

// Stats returns the forwarding counters, summed across stripes.
func (t *Table) Stats() Stats {
	var s Stats
	for i := range t.stats {
		st := &t.stats[i]
		s.Lookups += st.lookups.Load()
		s.Matched += st.matched.Load()
		s.UnmatchedDrops += st.unmatchedDrops.Load()
		s.IIFDrops += st.iifDrops.Load()
	}
	return s
}

// ForwardMask performs the EXPRESS forwarding procedure of Section 3.4 for a
// packet from s to multicast destination g arriving on iif, without locking
// and without allocating. It returns the outgoing-interface bitmask (with
// the arrival interface already removed — a packet is never echoed back out
// its arrival interface) and a disposition:
//
//   - entry found, iif matches: outgoing bitmask returned;
//   - entry found, iif differs: 0, the packet is dropped (or punted to the
//     CPU — the caller decides) and IIFDrops increments;
//   - no entry: 0, UnmatchedDrops increments (counted and dropped).
//
// Exact (S,G) entries take precedence over wildcard (*,G) entries, the
// PIM-SM longest-match rule, so the same table serves the baselines.
func (t *Table) ForwardMask(s, g addr.Addr, iif int) (uint32, Disposition) {
	a := t.p.Load()
	kk := packKey(Key{S: s, G: g})
	h := hashKey(kk)
	st := &t.stats[h>>statShift]
	st.lookups.Add(1)
	v, ok := a.find(kk, h)
	if !ok && s != 0 {
		wk := uint64(g) // wildcard (*,G) fallback
		v, ok = a.find(wk, hashKey(wk))
	}
	if !ok {
		st.unmatchedDrops.Add(1)
		return 0, DropUnmatched
	}
	eiif := int(v>>32) & 0xff
	if eiif != iifAny && eiif != iif {
		st.iifDrops.Add(1)
		return 0, DropWrongIIF
	}
	st.matched.Add(1)
	mask := uint32(v)
	if iif >= 0 && iif < MaxInterfaces {
		mask &^= 1 << uint(iif)
	}
	return mask, Forwarded
}

// Forward is ForwardMask with the bitmask expanded to interface indices
// (appended to dst, ascending). Data planes that can iterate a bitmask
// should call ForwardMask directly and skip the expansion.
func (t *Table) Forward(s, g addr.Addr, iif int, dst []int) ([]int, Disposition) {
	mask, disp := t.ForwardMask(s, g, iif)
	if disp != Forwarded {
		return nil, disp
	}
	return AppendMask(dst, mask), Forwarded
}

// Disposition classifies a forwarding decision.
type Disposition uint8

const (
	Forwarded Disposition = iota
	DropUnmatched
	DropWrongIIF
)

func (d Disposition) String() string {
	switch d {
	case Forwarded:
		return "forwarded"
	case DropUnmatched:
		return "drop-unmatched"
	case DropWrongIIF:
		return "drop-wrong-iif"
	default:
		return "unknown"
	}
}

// Keys returns all entry keys; order is unspecified. For tests and metrics.
// Concurrent writers may be reflected partially, as with any RCU reader.
func (t *Table) Keys() []Key {
	a := t.p.Load()
	out := make([]Key, 0, t.Len())
	for i := range a.slots {
		kk := a.slots[i].key.Load()
		if kk == emptyKey || kk == tombKey {
			continue
		}
		out = append(out, unpackKey(kk))
	}
	return out
}
