// Package fib implements the multicast Forwarding Information Base.
//
// EXPRESS forwarding (Section 3.4) is an exact (S,E) lookup with an
// incoming-interface check: a matching packet is forwarded to the entry's
// outgoing interface set; a non-matching EXPRESS packet is "simply counted
// and dropped, as opposed to being forwarded to a rendezvous point as in
// PIM-SM, or broadcast, as with PIM-DM and DVMRP".
//
// The table is built the way the paper prices it (§5.1, Figure 5): entries
// live in flat open-addressing arrays of packed slots, not a pointer-chasing
// map, and the data plane reads it without taking any lock.
//
// Publication is chunked-generation RCU. The hash space is partitioned by a
// directory: the top hash bits select a chunk, each chunk a small packed
// slot array published through its own atomic.Pointer. Readers load the
// directory pointer, then the chunk pointer, and probe with atomic loads —
// two dependent loads plus the probe, no lock, no allocation. Writers
// serialize on a mutex and publish changes either in place (an atomic slot
// store, ordered so the payload is visible before the key) or, when a chunk
// must grow or shed tombstones, by rebuilding and republishing just that
// chunk — O(chunk), bounded by maxChunkSlots, regardless of table size. Only
// genuine capacity growth republishes the whole table: when a chunk would
// outgrow maxChunkSlots the directory doubles and every chunk splits in two,
// which is O(table) but amortizes over a doubling of the route count. A
// concurrent lookup always sees a consistent table, either pre- or
// post-update, because every publication — slot, chunk, or directory — is a
// single atomic store.
//
// Under route churn this is the difference between O(table) and O(1)-ish
// route-change cost: at 10⁶ routes a whole-table rebuild copies a million
// entries while a chunk republication copies at most a few hundred, so the
// §6 proactive-counting machinery can install and withdraw routes
// continuously without the control plane melting (ROADMAP's million-route
// item). Forwarding statistics are striped across cache-line-padded atomic
// counters so concurrent lookups do not serialize on a shared counter word.
//
// The same table also serves the group-model baselines via wildcard-source
// (*,G) entries and a bidirectional flag (CBT), so state-size comparisons
// (experiment E9) count entries of identical layout.
package fib

import (
	"fmt"
	"math/bits"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/addr"
	"repro/internal/obs"
)

// MaxInterfaces is the number of interfaces representable in one entry's
// outgoing-interface bitmask. Figure 5 assumes "32 interfaces per router".
const MaxInterfaces = 32

// Key identifies a forwarding entry. S == 0 denotes a wildcard-source (*,G)
// entry, used only by the group-model baselines.
type Key struct {
	S addr.Addr
	G addr.Addr
}

// Entry is the forwarding state for one channel or group.
type Entry struct {
	// IIF is the expected incoming interface (the RPF interface toward S,
	// or toward the RP/core for shared trees). -1 accepts any interface,
	// which is how CBT's bidirectional shared tree forwards.
	IIF int
	// OIFs is the outgoing interface bitmask.
	OIFs uint32
}

// HasOIF reports whether interface i is in the outgoing set.
func (e *Entry) HasOIF(i int) bool { return e.OIFs&(1<<uint(i)) != 0 }

// SetOIF adds interface i to the outgoing set.
func (e *Entry) SetOIF(i int) {
	if i < 0 || i >= MaxInterfaces {
		panic(fmt.Sprintf("fib: interface %d out of range", i))
	}
	e.OIFs |= 1 << uint(i)
}

// ClearOIF removes interface i from the outgoing set.
func (e *Entry) ClearOIF(i int) { e.OIFs &^= 1 << uint(i) }

// NumOIFs returns the number of outgoing interfaces.
func (e *Entry) NumOIFs() int { return bits.OnesCount32(e.OIFs) }

// OIFList expands the bitmask to interface indices in ascending order,
// appending to dst to avoid allocation on the forwarding path.
func (e *Entry) OIFList(dst []int) []int { return AppendMask(dst, e.OIFs) }

// AppendMask expands an outgoing-interface bitmask to interface indices in
// ascending order, appending to dst. Callers on the data path should prefer
// iterating the mask directly (for m := mask; m != 0; m &= m - 1 { ... }) —
// this helper exists for control-plane and test code that wants indices.
func AppendMask(dst []int, mask uint32) []int {
	for m := mask; m != 0; m &= m - 1 {
		dst = append(dst, bits.TrailingZeros32(m))
	}
	return dst
}

// Stats counts forwarding outcomes.
type Stats struct {
	Lookups        uint64
	Matched        uint64
	UnmatchedDrops uint64 // EXPRESS packets with no (S,E) entry: counted and dropped
	IIFDrops       uint64 // arrived on the wrong interface (RPF failure)
}

// statStripes is the number of independent forwarding-counter stripes.
// Lookups pick a stripe by key hash, so concurrent forwards of different
// channels land on different cache lines.
const (
	statStripes = 8
	statShift   = 64 - 3 // top bits of the key hash select the stripe
)

// statStripe is one cache line of forwarding counters. The padding keeps
// adjacent stripes on distinct 64-byte lines so per-stripe atomics do not
// false-share.
type statStripe struct {
	lookups        atomic.Uint64
	matched        atomic.Uint64
	unmatchedDrops atomic.Uint64
	iifDrops       atomic.Uint64
	_              [32]byte
}

// slot is one packed FIB entry: the 64-bit key word (S in the high half, the
// destination in the low half) and the 64-bit payload word (OIF bitmask in
// the low half, IIF byte above it). The logical entry is Figure 5's 12
// bytes — S(4) + destination(3+1) + IIF(5 bits) + OIFs(4) — stored in two
// aligned words so readers can load each half atomically; EncodeEntry still
// emits exactly 12 bytes for the line-card image.
type slot struct {
	key atomic.Uint64
	val atomic.Uint64
}

const (
	emptyKey = 0       // never a real key: a real entry's G is non-zero
	tombKey  = 1 << 63 // S = 128/8 host with G == 0: also never real
	iifAny   = 0xff    // IIF byte value meaning "accept any interface"
	minSlots = 8       // initial chunk capacity (power of two)

	// maxChunkSlots bounds a chunk's slot array, and with it the cost of
	// one chunk republication — the route-change publication unit. A chunk
	// that would outgrow it splits via a directory doubling instead.
	maxChunkSlots = 1024
	// maxDirBits caps the directory at 2^maxDirBits chunks (a pointer
	// array, ~8 MiB at the cap — enough for ~10⁸ routes). Past it, chunks
	// are allowed to exceed maxChunkSlots rather than split further.
	maxDirBits = 20
)

func packKey(k Key) uint64 { return uint64(k.S)<<32 | uint64(k.G) }

func unpackKey(kk uint64) Key {
	return Key{S: addr.Addr(kk >> 32), G: addr.Addr(uint32(kk))}
}

func packVal(e Entry) uint64 {
	iif := uint64(iifAny)
	if e.IIF >= 0 {
		iif = uint64(e.IIF)
	}
	return uint64(e.OIFs) | iif<<32
}

func unpackVal(v uint64) Entry {
	e := Entry{OIFs: uint32(v), IIF: int(v>>32) & 0xff}
	if e.IIF == iifAny {
		e.IIF = -1
	}
	return e
}

// hashKey mixes the packed key so consecutive channel suffixes spread across
// the table (Fibonacci multiplicative hashing, high bits folded down because
// in-chunk probing masks the low bits while the directory consumes the top).
func hashKey(kk uint64) uint64 {
	h := kk * 0x9e3779b97f4a7c15
	return h ^ h>>29
}

// chunk is one published generation of one directory region. Readers treat
// its slots as immutable structure: slots are only ever written through
// atomic stores that keep every probe sequence valid within the generation
// (a slot's key goes empty→key→tombstone at most once, so empty slots never
// reappear and probes terminate).
//
// used and live are writer-side bookkeeping, guarded by Table.mu: occupied
// slots (live + tombstones) and live entries. Readers never touch them.
type chunk struct {
	slots []slot
	mask  uint64
	used  int
	live  int
}

func newChunk(n int) *chunk {
	return &chunk{slots: make([]slot, n), mask: uint64(n - 1)}
}

// find probes for kk and returns its payload word. It is the lock-free read
// path: atomic key loads, linear probing, stop at the first empty slot.
func (c *chunk) find(kk, h uint64) (uint64, bool) {
	i := h & c.mask
	for {
		got := c.slots[i].key.Load()
		if got == kk {
			return c.slots[i].val.Load(), true
		}
		if got == emptyKey {
			return 0, false
		}
		i = (i + 1) & c.mask
	}
}

// probe is the writer-side walk: it returns the slot holding kk (found) or
// the first empty slot of kk's probe sequence (not found) — the slot a fresh
// insert must use, since tombstones are never recycled within a generation.
func (c *chunk) probe(kk, h uint64) (uint64, bool) {
	i := h & c.mask
	for {
		got := c.slots[i].key.Load()
		if got == kk {
			return i, true
		}
		if got == emptyKey {
			return i, false
		}
		i = (i + 1) & c.mask
	}
}

// directory maps the top hash bits to chunks. It is itself published through
// an atomic.Pointer and never mutated structurally after publication; only
// the chunk pointers inside it are swapped (by writers holding Table.mu).
type directory struct {
	chunks []atomic.Pointer[chunk]
	shift  uint // chunk index = hash >> shift (shift 64 ⇒ single chunk)
}

func (d *directory) chunkFor(h uint64) *chunk {
	return d.chunks[h>>d.shift].Load()
}

// chunkSlotsFor sizes a chunk array so that live entries occupy at most half
// of it after publication — low enough that the next republication is a
// tombstone or growth event, not thrash.
func chunkSlotsFor(live int) int {
	n := minSlots
	for live*2 >= n {
		n <<= 1
	}
	return n
}

// Table is one router's multicast FIB.
type Table struct {
	dir  atomic.Pointer[directory]
	live atomic.Int64 // entries currently in the table

	// usedSlots and capSlots mirror the writer bookkeeping atomically so
	// LoadFactor is a lock-free read: a /metrics scrape must never block
	// behind a writer mid-rebuild.
	usedSlots atomic.Int64 // live entries + tombstones across all chunks
	capSlots  atomic.Int64 // total slots across all chunks

	mu sync.Mutex // serializes writers; readers never take it

	stats [statStripes]statStripe

	// chunkPubs and chunkPubNs observe chunk republications — the per-route
	// publication unit: how often a Set/Delete republished its chunk and how
	// long building the replacement took (readers never block — they keep
	// probing the old generation until the pointer swap).
	chunkPubs  atomic.Uint64
	chunkPubNs *obs.Histogram
	// rebuilds and rebuildNs observe whole-table publications — directory
	// doublings on genuine capacity growth, the only remaining O(table)
	// events.
	rebuilds  atomic.Uint64
	rebuildNs *obs.Histogram
}

// New returns an empty FIB.
func New() *Table {
	t := &Table{
		chunkPubNs: obs.NewHistogram(),
		rebuildNs:  obs.NewHistogram(),
	}
	d := &directory{chunks: make([]atomic.Pointer[chunk], 1), shift: 64}
	d.chunks[0].Store(newChunk(minSlots))
	t.dir.Store(d)
	t.capSlots.Store(minSlots)
	return t
}

// Get returns the entry for k and whether it exists. Safe for concurrent
// use with writers.
func (t *Table) Get(k Key) (Entry, bool) {
	kk := packKey(k)
	h := hashKey(kk)
	v, ok := t.dir.Load().chunkFor(h).find(kk, h)
	if !ok {
		return Entry{}, false
	}
	return unpackVal(v), true
}

// Set inserts or replaces the entry for k. A replacement publishes in place
// (one atomic payload store); an insert publishes in place too unless its
// chunk must grow or compact, in which case only that chunk is rebuilt and
// republished.
func (t *Table) Set(k Key, e Entry) {
	if k.G == 0 {
		panic("fib: zero group/channel destination")
	}
	if e.IIF >= iifAny {
		panic(fmt.Sprintf("fib: incoming interface %d out of range", e.IIF))
	}
	kk, vv := packKey(k), packVal(e)
	h := hashKey(kk)
	t.mu.Lock()
	defer t.mu.Unlock()
	d := t.dir.Load()
	ci := int(h >> d.shift)
	c := d.chunks[ci].Load()
	// Probe before the grow check: replacing an existing key adds no entry,
	// so it must never pay a rebuild — a pure-replacement workload sitting
	// at the occupancy threshold used to trigger a spurious full rebuild on
	// every update.
	if i, ok := c.probe(kk, h); ok {
		c.slots[i].val.Store(vv)
		return
	}
	// Inserting: keep the chunk under 3/4 occupied (live + tombstones) so
	// reader probes always terminate at an empty slot. Growth republishes
	// this chunk alone — unless it would outgrow maxChunkSlots, in which
	// case the directory doubles (the whole-table capacity-growth path).
	for (c.used+1)*4 > len(c.slots)*3 {
		if chunkSlotsFor(c.live+1) > maxChunkSlots && d.shift > 64-maxDirBits {
			d = t.growDirLocked(d)
			ci = int(h >> d.shift)
		} else {
			t.republishChunkLocked(d, ci, c, c.live+1)
		}
		c = d.chunks[ci].Load()
	}
	i := h & c.mask
	for c.slots[i].key.Load() != emptyKey {
		// Insert only into empty slots, never recycle a tombstone in place:
		// a slot's key is written at most once per generation (empty→key,
		// key→tombstone), so a reader that matched a key can never observe
		// another key's payload. Tombstones are reclaimed by republication.
		i = (i + 1) & c.mask
	}
	// Publish payload before key: a concurrent reader that observes the new
	// key is guaranteed to read a fully written payload.
	c.slots[i].val.Store(vv)
	c.slots[i].key.Store(kk)
	c.used++
	c.live++
	t.usedSlots.Add(1)
	t.live.Add(1)
}

// Delete removes the entry for k. When the delete leaves the chunk holding
// tombstones on a quarter or more of its slots, the chunk is compacted and
// republished immediately — a delete-heavy flash-leave must not pin
// occupancy near the growth threshold and leave reader probes walking long
// tombstone runs (compaction used to trigger only from the Set path).
func (t *Table) Delete(k Key) {
	kk := packKey(k)
	h := hashKey(kk)
	t.mu.Lock()
	defer t.mu.Unlock()
	d := t.dir.Load()
	ci := int(h >> d.shift)
	c := d.chunks[ci].Load()
	i, ok := c.probe(kk, h)
	if !ok {
		return
	}
	// Tombstone, not empty: probes for keys that hashed past this slot must
	// keep walking.
	c.slots[i].key.Store(tombKey)
	c.live--
	t.live.Add(-1)
	if tombs := c.used - c.live; tombs*4 >= len(c.slots) {
		t.republishChunkLocked(d, ci, c, c.live)
	}
}

// republishChunkLocked builds a fresh array for one chunk holding only its
// live entries — sized for targetLive, so it grows under insert pressure and
// shrinks back after a mass leave — and publishes it with a single pointer
// store. Concurrent readers keep probing the old generation until the swap.
// Cost is O(chunk), bounded by maxChunkSlots, independent of table size.
// Caller holds t.mu.
func (t *Table) republishChunkLocked(d *directory, ci int, c *chunk, targetLive int) {
	start := time.Now()
	nc := newChunk(chunkSlotsFor(targetLive))
	for i := range c.slots {
		kk := c.slots[i].key.Load()
		if kk == emptyKey || kk == tombKey {
			continue
		}
		j := hashKey(kk) & nc.mask
		for nc.slots[j].key.Load() != emptyKey {
			j = (j + 1) & nc.mask
		}
		nc.slots[j].val.Store(c.slots[i].val.Load())
		nc.slots[j].key.Store(kk)
	}
	nc.used, nc.live = c.live, c.live
	d.chunks[ci].Store(nc)
	t.usedSlots.Add(int64(c.live - c.used))
	t.capSlots.Add(int64(len(nc.slots) - len(c.slots)))
	t.chunkPubs.Add(1)
	t.chunkPubNs.Observe(uint64(time.Since(start)))
}

// growDirLocked doubles the directory, splitting every chunk in two by the
// next hash bit — the whole-table copy-on-write path, paid only for genuine
// capacity growth (a chunk outgrowing maxChunkSlots), so it amortizes over a
// doubling of the route count. Readers keep probing the old directory until
// the single pointer swap. Caller holds t.mu.
func (t *Table) growDirLocked(d *directory) *directory {
	start := time.Now()
	nd := &directory{
		chunks: make([]atomic.Pointer[chunk], len(d.chunks)*2),
		shift:  d.shift - 1,
	}
	var caps int64
	for ci := range d.chunks {
		c := d.chunks[ci].Load()
		// Size each half for its own live count before inserting.
		var halfLive [2]int
		for i := range c.slots {
			kk := c.slots[i].key.Load()
			if kk == emptyKey || kk == tombKey {
				continue
			}
			halfLive[(hashKey(kk)>>nd.shift)&1]++
		}
		var halves [2]*chunk
		for b := range halves {
			halves[b] = newChunk(chunkSlotsFor(halfLive[b]))
			halves[b].used, halves[b].live = halfLive[b], halfLive[b]
			caps += int64(len(halves[b].slots))
		}
		for i := range c.slots {
			kk := c.slots[i].key.Load()
			if kk == emptyKey || kk == tombKey {
				continue
			}
			h := hashKey(kk)
			nc := halves[(h>>nd.shift)&1]
			j := h & nc.mask
			for nc.slots[j].key.Load() != emptyKey {
				j = (j + 1) & nc.mask
			}
			nc.slots[j].val.Store(c.slots[i].val.Load())
			nc.slots[j].key.Store(kk)
		}
		nd.chunks[2*ci].Store(halves[0])
		nd.chunks[2*ci+1].Store(halves[1])
	}
	t.dir.Store(nd)
	t.capSlots.Store(caps)
	t.usedSlots.Store(t.live.Load())
	t.rebuilds.Add(1)
	t.rebuildNs.Observe(uint64(time.Since(start)))
	return nd
}

// Len returns the number of entries.
func (t *Table) Len() int { return int(t.live.Load()) }

// LoadFactor returns the occupied fraction of the table's slot arrays —
// live entries plus tombstones over capacity. Writers grow or compact
// before any chunk passes 3/4, so a healthy table reads below 0.75. The
// read is lock-free (atomic counters maintained by writers), so a /statsz
// or /metrics scrape never blocks behind a rebuild.
func (t *Table) LoadFactor() float64 {
	return float64(t.usedSlots.Load()) / float64(t.capSlots.Load())
}

// Rebuilds returns how many whole-table (directory-growth) rebuilds the
// table has performed.
func (t *Table) Rebuilds() uint64 { return t.rebuilds.Load() }

// ChunkPublishes returns how many chunk republications (growth, tombstone
// compaction, or shrink of a single chunk) the table has performed.
func (t *Table) ChunkPublishes() uint64 { return t.chunkPubs.Load() }

// ChunkPublishSnapshot returns the chunk-republication duration histogram —
// the per-route-change publication cost the churn harness tracks.
func (t *Table) ChunkPublishSnapshot() obs.HistSnapshot { return t.chunkPubNs.Snapshot() }

// RebuildSnapshot returns the whole-table rebuild duration histogram.
func (t *Table) RebuildSnapshot() obs.HistSnapshot { return t.rebuildNs.Snapshot() }

// NumChunks returns the directory width — how many independently published
// regions the hash space is split into.
func (t *Table) NumChunks() int { return len(t.dir.Load().chunks) }

// RegisterMetrics exposes the table's observability surface — forwarding
// counters, size, load factor, and the publication duration histograms
// (chunk republications and whole-table rebuilds) — on reg under the given
// name prefix.
func (t *Table) RegisterMetrics(reg *obs.Registry, prefix string) {
	reg.RegisterHistogram(prefix+"chunk_publish_ns", "chunk republication duration (ns, writer-side; growth, compaction, shrink)", t.chunkPubNs)
	reg.NewCounterFunc(prefix+"chunk_publishes_total", "chunk republications", t.chunkPubs.Load)
	reg.RegisterHistogram(prefix+"rebuild_ns", "whole-table rebuild duration (ns, writer-side; directory growth only)", t.rebuildNs)
	reg.NewCounterFunc(prefix+"rebuilds_total", "whole-table directory-growth rebuilds", t.rebuilds.Load)
	reg.NewGaugeFunc(prefix+"entries", "live forwarding entries", func() float64 { return float64(t.Len()) })
	reg.NewGaugeFunc(prefix+"load_factor", "slot-array occupancy (live + tombstones)", t.LoadFactor)
	reg.NewGaugeFunc(prefix+"chunks", "directory width (independently published regions)", func() float64 { return float64(t.NumChunks()) })
	reg.NewCounterFunc(prefix+"lookups_total", "forwarding lookups", func() uint64 { return t.Stats().Lookups })
	reg.NewCounterFunc(prefix+"matched_total", "lookups that matched and forwarded", func() uint64 { return t.Stats().Matched })
	reg.NewCounterFunc(prefix+"unmatched_drops_total", "EXPRESS packets counted and dropped (no entry)", func() uint64 { return t.Stats().UnmatchedDrops })
	reg.NewCounterFunc(prefix+"iif_drops_total", "packets dropped on the RPF interface check", func() uint64 { return t.Stats().IIFDrops })
}

// MemoryBytes returns the fast-path memory the table would occupy at the
// paper's 12-bytes-per-entry encoding (Figure 5) — the quantity the Section
// 5.1 cost model prices.
func (t *Table) MemoryBytes() int { return MemoryFor(t.Len()) }

// Stats returns the forwarding counters, summed across stripes.
func (t *Table) Stats() Stats {
	var s Stats
	for i := range t.stats {
		st := &t.stats[i]
		s.Lookups += st.lookups.Load()
		s.Matched += st.matched.Load()
		s.UnmatchedDrops += st.unmatchedDrops.Load()
		s.IIFDrops += st.iifDrops.Load()
	}
	return s
}

// ForwardMask performs the EXPRESS forwarding procedure of Section 3.4 for a
// packet from s to multicast destination g arriving on iif, without locking
// and without allocating. It returns the outgoing-interface bitmask (with
// the arrival interface already removed — a packet is never echoed back out
// its arrival interface) and a disposition:
//
//   - entry found, iif matches: outgoing bitmask returned;
//   - entry found, iif differs: 0, the packet is dropped (or punted to the
//     CPU — the caller decides) and IIFDrops increments;
//   - no entry: 0, UnmatchedDrops increments (counted and dropped).
//
// Exact (S,G) entries take precedence over wildcard (*,G) entries, the
// PIM-SM longest-match rule, so the same table serves the baselines.
func (t *Table) ForwardMask(s, g addr.Addr, iif int) (uint32, Disposition) {
	d := t.dir.Load()
	kk := packKey(Key{S: s, G: g})
	h := hashKey(kk)
	st := &t.stats[h>>statShift]
	st.lookups.Add(1)
	v, ok := d.chunkFor(h).find(kk, h)
	if !ok && s != 0 {
		wk := uint64(g) // wildcard (*,G) fallback
		wh := hashKey(wk)
		v, ok = d.chunkFor(wh).find(wk, wh)
	}
	if !ok {
		st.unmatchedDrops.Add(1)
		return 0, DropUnmatched
	}
	eiif := int(v>>32) & 0xff
	if eiif != iifAny && eiif != iif {
		st.iifDrops.Add(1)
		return 0, DropWrongIIF
	}
	st.matched.Add(1)
	mask := uint32(v)
	if iif >= 0 && iif < MaxInterfaces {
		mask &^= 1 << uint(iif)
	}
	return mask, Forwarded
}

// Forward is ForwardMask with the bitmask expanded to interface indices
// (appended to dst, ascending). Data planes that can iterate a bitmask
// should call ForwardMask directly and skip the expansion.
func (t *Table) Forward(s, g addr.Addr, iif int, dst []int) ([]int, Disposition) {
	mask, disp := t.ForwardMask(s, g, iif)
	if disp != Forwarded {
		return nil, disp
	}
	return AppendMask(dst, mask), Forwarded
}

// Disposition classifies a forwarding decision.
type Disposition uint8

const (
	Forwarded Disposition = iota
	DropUnmatched
	DropWrongIIF
)

func (d Disposition) String() string {
	switch d {
	case Forwarded:
		return "forwarded"
	case DropUnmatched:
		return "drop-unmatched"
	case DropWrongIIF:
		return "drop-wrong-iif"
	default:
		return "unknown"
	}
}

// Keys returns all entry keys; order is unspecified. For tests and metrics.
// Concurrent writers may be reflected partially, as with any RCU reader.
func (t *Table) Keys() []Key {
	d := t.dir.Load()
	out := make([]Key, 0, t.Len())
	for ci := range d.chunks {
		c := d.chunks[ci].Load()
		for i := range c.slots {
			kk := c.slots[i].key.Load()
			if kk == emptyKey || kk == tombKey {
				continue
			}
			out = append(out, unpackKey(kk))
		}
	}
	return out
}
