package fib

import (
	"encoding/binary"
	"errors"

	"repro/internal/addr"
)

// EntrySize is the fast-path encoding size of Figure 5: source (32 bits) +
// destination suffix (24 bits) + incoming interface (5 bits) + outgoing
// interface bitmask (32 bits) packs into 12 bytes, assuming 32 interfaces
// per router.
const EntrySize = 12

// MemoryFor prices n forwarding entries at the paper's 12-byte logical
// layout. The baselines and E-series cost tables use it so every protocol's
// state is compared in the same currency, independent of how any particular
// implementation stores entries in memory (the packed RCU table here spends
// 16 aligned bytes per slot for atomic word access).
func MemoryFor(n int) int { return n * EntrySize }

// Packed layout (big endian):
//
//	bytes 0..3   source address S
//	bytes 4..6   24-bit destination suffix (232/8 prefix implicit)
//	byte  7      bits 0..4: incoming interface; bit 5: IIF-any flag
//	bytes 8..11  outgoing interface bitmask
const iifAnyFlag = 1 << 5

var errBadEncoding = errors.New("fib: bad packed entry")

// EncodeEntry packs an EXPRESS channel entry into the 12-byte fast-path
// format. Wildcard-source entries are management-plane constructs for the
// baselines and have no EXPRESS fast-path encoding; encoding one is an
// error.
func EncodeEntry(k Key, e *Entry, dst []byte) ([]byte, error) {
	if k.S == 0 {
		return nil, errors.New("fib: wildcard-source entry has no EXPRESS encoding")
	}
	if !k.G.IsExpress() {
		return nil, errors.New("fib: destination outside 232/8")
	}
	if e.IIF >= MaxInterfaces {
		return nil, errors.New("fib: incoming interface out of range")
	}
	var b [EntrySize]byte
	binary.BigEndian.PutUint32(b[0:4], uint32(k.S))
	suffix := k.G.ExpressSuffix()
	b[4] = byte(suffix >> 16)
	b[5] = byte(suffix >> 8)
	b[6] = byte(suffix)
	if e.IIF < 0 {
		b[7] = iifAnyFlag
	} else {
		b[7] = byte(e.IIF) & 0x1f
	}
	binary.BigEndian.PutUint32(b[8:12], e.OIFs)
	return append(dst, b[:]...), nil
}

// DecodeEntry unpacks a 12-byte fast-path entry.
func DecodeEntry(b []byte) (Key, Entry, error) {
	if len(b) < EntrySize {
		return Key{}, Entry{}, errBadEncoding
	}
	k := Key{
		S: addr.Addr(binary.BigEndian.Uint32(b[0:4])),
		G: addr.ExpressAddr(uint32(b[4])<<16 | uint32(b[5])<<8 | uint32(b[6])),
	}
	e := Entry{OIFs: binary.BigEndian.Uint32(b[8:12])}
	if b[7]&iifAnyFlag != 0 {
		e.IIF = -1
	} else {
		e.IIF = int(b[7] & 0x1f)
	}
	return k, e, nil
}

// Snapshot encodes every EXPRESS entry in the table into the packed format,
// the image a control plane would download to line-card SRAM. Entries that
// have no fast-path encoding (wildcard sources, used only by baselines) are
// skipped and counted in the second return value. Snapshot walks the current
// chunk generations without blocking writers; chunks republished mid-walk
// may be reflected partially, as with any RCU reader.
func (t *Table) Snapshot() (packed []byte, skipped int) {
	d := t.dir.Load()
	packed = make([]byte, 0, t.Len()*EntrySize)
	for ci := range d.chunks {
		c := d.chunks[ci].Load()
		for i := range c.slots {
			kk := c.slots[i].key.Load()
			if kk == emptyKey || kk == tombKey {
				continue
			}
			k, e := unpackKey(kk), unpackVal(c.slots[i].val.Load())
			p, err := EncodeEntry(k, &e, packed)
			if err != nil {
				skipped++
				continue
			}
			packed = p
		}
	}
	return packed, skipped
}
