//go:build linux && (amd64 || arm64)

package dataplane

import (
	"syscall"
	"unsafe"
)

// Batched socket reads: one poller wakeup drains up to ReadBatch datagrams
// with non-blocking recvfrom calls before the worker goes back to sleep.
// The raw syscall is used (src address pointers NULL) so the per-packet
// read allocates nothing — net.UDPConn's ReadFrom variants are one datagram
// per poller round trip, and the syscall package's Recvfrom heap-allocates
// a Sockaddr per call. Falls back to the portable single-read filler if the
// raw connection is unavailable.

// newFiller returns the batch-fill function for this worker.
func (p *Plane) newFiller() func(*readBatch) bool {
	rc, err := p.conn.SyscallConn()
	if err != nil {
		return p.singleFiller()
	}
	return func(b *readBatch) bool {
		b.n = 0
		fatal := false
		err := rc.Read(func(fd uintptr) bool {
			for b.n < b.cap() {
				n, errno := recvfromRaw(fd, b.rawSlot(b.n))
				switch errno {
				case 0:
					b.sizes[b.n] = n
					b.n++
				case syscall.EINTR:
					continue
				case syscall.EAGAIN:
					// Drained. Block in the poller only when the batch is
					// still empty; otherwise hand what we have to the
					// forwarding loop.
					return b.n > 0
				default:
					fatal = true
					return true
				}
			}
			return true
		})
		return err == nil && !fatal
	}
}

// recvfromRaw is recvfrom(fd, p, MSG_DONTWAIT, NULL, NULL): no source
// address is materialized, so nothing escapes to the heap.
func recvfromRaw(fd uintptr, p []byte) (int, syscall.Errno) {
	n, _, errno := syscall.Syscall6(syscall.SYS_RECVFROM,
		fd, uintptr(unsafe.Pointer(&p[0])), uintptr(len(p)),
		uintptr(syscall.MSG_DONTWAIT), 0, 0)
	return int(n), errno
}
