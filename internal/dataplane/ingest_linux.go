//go:build linux && (amd64 || arm64)

package dataplane

import (
	"syscall"
)

// Kernel-batched ingest: one recvmmsg syscall drains up to ReadBatch
// datagrams per poller wakeup into the batch's preallocated mmsghdr/iovec
// scatter array. No source address is materialized (msg_name NULL) and the
// arrays live for the worker's lifetime, so the steady-state read path
// allocates nothing. Falls back to the portable single-read filler if the
// raw connection is unavailable.

// mmsgReader owns the scatter arrays for one queue worker. hdrs carries raw
// pointers into iovs and the batch buffer; holding both slices in one
// reachable struct keeps them live for the garbage collector.
type mmsgReader struct {
	iovs  []syscall.Iovec
	hdrs  []mmsghdr
	fatal bool
}

// newFiller returns the batch-fill function for one queue's worker.
func (p *Plane) newFiller(q *queue, b *readBatch) func() bool {
	if p.opts.forcePortable {
		return p.singleFiller(q, b)
	}
	rc, err := q.conn.SyscallConn()
	if err != nil {
		return p.singleFiller(q, b)
	}
	r := &mmsgReader{
		iovs: make([]syscall.Iovec, b.cap()),
		hdrs: make([]mmsghdr, b.cap()),
	}
	for i := range r.hdrs {
		s := b.rawSlot(i)
		r.iovs[i].Base = &s[0]
		r.iovs[i].SetLen(len(s))
		r.hdrs[i].hdr.Iov = &r.iovs[i]
		r.hdrs[i].hdr.Iovlen = 1
	}
	read := func(fd uintptr) bool {
		n, errno := recvmmsg(fd, r.hdrs, syscall.MSG_DONTWAIT)
		switch errno {
		case 0:
			for i := 0; i < n; i++ {
				b.sizes[i] = int(r.hdrs[i].n)
				if r.hdrs[i].hdr.Flags&syscall.MSG_TRUNC != 0 {
					// The kernel clipped the datagram to the slot; push the
					// recorded size past every valid length so the
					// forwarding loop drops and counts it.
					b.sizes[i] = slotBytes
				}
			}
			b.n = n
			return true
		case syscall.EINTR, syscall.EAGAIN:
			// Nothing delivered: block in the poller until readable.
			return false
		default:
			r.fatal = true
			return true
		}
	}
	return func() bool {
		b.n = 0
		r.fatal = false
		return rc.Read(read) == nil && !r.fatal
	}
}
