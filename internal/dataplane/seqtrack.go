package dataplane

import (
	"sync"

	"repro/internal/wire"
)

// SeqTracker is per-channel gap/loss accounting over the 32-bit wire
// sequence space. All comparisons are serial (wire.SeqAfter and friends),
// so the counter rolling over from 2^32−1 to 0 reads as a distance of one
// packet, not a four-billion-packet gap. Safe for concurrent use.
type SeqTracker struct {
	mu      sync.Mutex
	started bool
	next    uint32 // expected next sequence (highest seen + 1)

	received  uint64
	lost      uint64 // gap slots skipped; shrinks when a late packet lands
	late      uint64 // packets serially behind next (reorders, repairs, dups)
	maxGap    uint32 // largest single forward jump observed
	lastFlags uint8
}

// SeqStats is a snapshot of a tracker's counters. Lost counts gap slots
// that no packet has (yet) filled: a reordered or repaired packet arriving
// late decrements it, so after a repair pass Lost converges to true loss.
type SeqStats struct {
	Received uint64
	Lost     uint64
	Late     uint64
	MaxGap   uint32
	Next     uint32 // next expected sequence number
	Started  bool
}

// Observe accounts one arriving packet. The first packet anchors the
// expected sequence — any StartSeq works, including one about to wrap.
func (t *SeqTracker) Observe(pkt *wire.DataPacket) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.received++
	t.lastFlags = pkt.Flags
	if !t.started {
		t.started = true
		t.next = pkt.Seq + 1
		return
	}
	switch d := wire.SeqDelta(pkt.Seq, t.next); {
	case d == 0:
		t.next++
	case d > 0:
		t.lost += uint64(d)
		if uint32(d) > t.maxGap {
			t.maxGap = uint32(d)
		}
		t.next = pkt.Seq + 1
	default:
		// Serially behind: a reorder, a repair retransmission, or a dup.
		// Count it late and let it repay one previously-counted gap slot.
		t.late++
		if t.lost > 0 {
			t.lost--
		}
	}
}

// Stats returns a snapshot of the tracker's counters.
func (t *SeqTracker) Stats() SeqStats {
	t.mu.Lock()
	defer t.mu.Unlock()
	return SeqStats{
		Received: t.received,
		Lost:     t.lost,
		Late:     t.late,
		MaxGap:   t.maxGap,
		Next:     t.next,
		Started:  t.started,
	}
}
