package dataplane

// Tests for the multi-queue kernel-batched pipeline (ISSUE 7): oversized-
// datagram handling, Options defaulting, the portable fallback paths'
// parity with the raw recvmmsg/sendmmsg paths, the drop vs write-error
// accounting split, and multi-queue delivery.

import (
	"bytes"
	"errors"
	"fmt"
	"net"
	"os"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/wire"
)

// TestOptionsWithDefaults pins the defaulting contract: every zero-value
// field selects its documented default, negatives are treated as unset, and
// explicit values pass through untouched.
func TestOptionsWithDefaults(t *testing.T) {
	cases := []struct {
		name string
		in   Options
		want Options
	}{
		{"zero", Options{}, Options{Listen: "127.0.0.1:0", Queues: 1, QueueLen: 1024, ReadBatch: 32, Burst: 32}},
		{"negative", Options{Queues: -3, QueueLen: -1, ReadBatch: -32, Burst: -8},
			Options{Listen: "127.0.0.1:0", Queues: 1, QueueLen: 1024, ReadBatch: 32, Burst: 32}},
		{"explicit", Options{Listen: "127.0.0.1:4801", Queues: 8, QueueLen: 64, ReadBatch: 16, Burst: 4},
			Options{Listen: "127.0.0.1:4801", Queues: 8, QueueLen: 64, ReadBatch: 16, Burst: 4}},
		{"partial", Options{Queues: 2}, Options{Listen: "127.0.0.1:0", Queues: 2, QueueLen: 1024, ReadBatch: 32, Burst: 32}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.in.withDefaults(); got != tc.want {
				t.Errorf("withDefaults() = %+v, want %+v", got, tc.want)
			}
		})
	}
}

// sendRaw writes one raw datagram of n bytes (a valid header followed by
// padding) at the plane — bypassing Source, which refuses oversized
// payloads by design.
func sendRaw(t *testing.T, p *Plane, n int) {
	t.Helper()
	conn, err := net.Dial("udp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	pkt := wire.DataPacket{Channel: testChannel(9), Seq: 1}
	buf := pkt.AppendTo(nil)
	buf = append(buf, bytes.Repeat([]byte{0xAB}, n-len(buf))...)
	if _, err := conn.Write(buf); err != nil {
		t.Fatal(err)
	}
}

// TestIngestDropsOversized is the truncation regression (ISSUE 7 satellite):
// a datagram longer than the largest valid packet must be counted in
// Truncated and dropped — never forwarded as a silently-truncated payload —
// and the queue worker must keep forwarding afterwards.
func TestIngestDropsOversized(t *testing.T) {
	p := mustPlane(t, Options{})
	r := mustReceiver(t)
	p.SetPort(0, r.addrPort())
	ch := testChannel(9)
	p.SetRoute(ch, 1<<0)

	// An oversized datagram that *starts* with a valid header: the exact
	// shape a naive truncating read would decode and forward corrupt.
	sendRaw(t, p, wire.MaxDataPacket+200)
	waitFor(t, func() bool { return p.Stats().Truncated == 1 }, "truncated account")
	if pkt, err := r.RecvTimeout(100 * time.Millisecond); err == nil {
		t.Fatalf("oversized datagram forwarded (seq %d, %d payload bytes)", pkt.Seq, len(pkt.Payload))
	}
	st := p.Stats()
	if st.Replicated != 0 || st.BadPackets != 0 {
		t.Errorf("stats = %+v, want oversized counted only as Truncated", st)
	}

	// A maximum-size valid packet still flows: the boundary is exact.
	src, err := NewSource(p.Addr(), ch, SourceOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	if err := src.Send(bytes.Repeat([]byte{1}, wire.MaxDataPayload)); err != nil {
		t.Fatal(err)
	}
	pkt, err := r.RecvTimeout(2 * time.Second)
	if err != nil {
		t.Fatalf("max-size packet after oversized drop: %v", err)
	}
	if len(pkt.Payload) != wire.MaxDataPayload {
		t.Errorf("payload = %d bytes, want %d", len(pkt.Payload), wire.MaxDataPayload)
	}
	if st := p.Stats(); st.Truncated != 1 {
		t.Errorf("truncated = %d after valid max-size packet, want 1", st.Truncated)
	}
}

// TestPortWriteErrorSplit pins the drops/write-errors accounting split: a
// dead socket produces WriteErrors (not Drops), and a full queue produces
// Drops (not WriteErrors).
func TestPortWriteErrorSplit(t *testing.T) {
	conn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	dst := conn.LocalAddr().(*net.UDPAddr).AddrPort()

	// Write errors: close the socket under the writer, then send.
	o := newOutPort(conn, dst, Options{}.withDefaults(), obs.NewHistogram())
	conn.Close()
	o.send([]byte("pkt"))
	deadline := time.Now().Add(5 * time.Second)
	for o.writeErrs.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("timed out waiting for a write error")
		}
		time.Sleep(time.Millisecond)
	}
	if d := o.drops.Load(); d != 0 {
		t.Errorf("drops = %d after write error, want 0", d)
	}
	o.stop()

	// Queue-full drops: stopped writer, bounded queue.
	conn2, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	defer conn2.Close()
	o2 := newOutPort(conn2, conn2.LocalAddr().(*net.UDPAddr).AddrPort(),
		Options{QueueLen: 4}.withDefaults(), obs.NewHistogram())
	o2.stop()
	for i := 0; i < 10; i++ {
		o2.send([]byte("pkt"))
	}
	if d := o2.drops.Load(); d < 6 {
		t.Errorf("drops = %d, want >= 6", d)
	}
	if we := o2.writeErrs.Load(); we != 0 {
		t.Errorf("writeErrs = %d on queue-full drops, want 0", we)
	}
}

// TestPortableFallbackParity (ISSUE 7 satellite): the build-tag fallback
// paths — single-datagram reads and per-datagram writes — must deliver and
// account exactly like the recvmmsg/sendmmsg paths: same payloads in order,
// same truncated-drop behaviour. On non-linux builds the forced options are
// no-ops and this simply re-exercises the only path.
func TestPortableFallbackParity(t *testing.T) {
	run := func(t *testing.T, opts Options) {
		p := mustPlane(t, opts)
		r := mustReceiver(t)
		p.SetPort(0, r.addrPort())
		ch := testChannel(9)
		p.SetRoute(ch, 1<<0)

		src, err := NewSource(p.Addr(), ch, SourceOptions{})
		if err != nil {
			t.Fatal(err)
		}
		defer src.Close()
		const n = 10
		for i := 0; i < n; i++ {
			if err := src.Send([]byte(fmt.Sprintf("p-%d", i+1))); err != nil {
				t.Fatal(err)
			}
		}
		for i := 1; i <= n; i++ {
			pkt, err := r.RecvTimeout(2 * time.Second)
			if err != nil {
				t.Fatalf("packet %d: %v", i, err)
			}
			if pkt.Seq != uint32(i) || string(pkt.Payload) != fmt.Sprintf("p-%d", i) {
				t.Fatalf("seq %d payload %q, want seq %d", pkt.Seq, pkt.Payload, i)
			}
		}
		sendRaw(t, p, wire.MaxDataPacket+100)
		waitFor(t, func() bool { return p.Stats().Truncated == 1 }, "truncated account")
		// The minimal oversized datagram — one byte past the largest valid
		// packet, exactly filling a read slot — must also be convicted: it is
		// the boundary where a fallback that shrinks its buffer by even one
		// byte would silently truncate instead of dropping.
		sendRaw(t, p, wire.MaxDataPacket+1)
		waitFor(t, func() bool { return p.Stats().Truncated == 2 }, "boundary truncated account")
		// And the worker keeps forwarding after both drops.
		if err := src.Send([]byte("after-oversized")); err != nil {
			t.Fatal(err)
		}
		if pkt, err := r.RecvTimeout(2 * time.Second); err != nil || string(pkt.Payload) != "after-oversized" {
			t.Fatalf("post-drop delivery = (%q, %v)", pkt.Payload, err)
		}
		st := p.Stats()
		if st.Packets != n+3 || st.Replicated != n+1 || st.BadPackets != 0 {
			t.Errorf("stats = %+v, want %d packets / %d replicated / oversized truncated", st, n+3, n+1)
		}
	}
	t.Run("raw", func(t *testing.T) { run(t, Options{}) })
	t.Run("portable", func(t *testing.T) { run(t, Options{forcePortable: true, forceSerial: true}) })
}

// TestOversizeReadErrClassification pins the portable path's second
// oversized-datagram channel: platforms whose sockets *error* on a
// too-small buffer (winsock WSAEMSGSIZE) rather than silently truncating.
// The classifier must catch the platform's message-size errno — wrapped the
// way the net package wraps it — and nothing else, so real socket failures
// still take the transient-error backoff.
func TestOversizeReadErrClassification(t *testing.T) {
	if !oversizeReadErr(&net.OpError{Op: "read", Err: os.NewSyscallError("recvfrom", oversizeErrno)}) {
		t.Error("wrapped message-size errno not classified as oversized")
	}
	if !oversizeReadErr(oversizeErrno) {
		t.Error("bare message-size errno not classified as oversized")
	}
	for _, err := range []error{nil, net.ErrClosed, errors.New("boom")} {
		if oversizeReadErr(err) {
			t.Errorf("%v misclassified as oversized", err)
		}
	}
}

// TestMultiQueueDelivery exercises the SO_REUSEPORT fan-in: distinct
// sources (distinct 4-tuples) inject through a 4-queue plane and every
// packet is delivered; per-queue counters sum to the total. Per-source
// ordering is asserted per receiver stream via the seq numbers each source
// stamps independently.
func TestMultiQueueDelivery(t *testing.T) {
	p := mustPlane(t, Options{Queues: 4})
	r := mustReceiver(t)
	p.SetPort(0, r.addrPort())

	const nSrc, per = 8, 25
	srcs := make([]*Source, nSrc)
	for i := range srcs {
		ch := testChannel(uint32(100 + i))
		p.SetRoute(ch, 1<<0)
		s, err := NewSource(p.Addr(), ch, SourceOptions{})
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		srcs[i] = s
	}
	for j := 0; j < per; j++ {
		for _, s := range srcs {
			if err := s.Send([]byte("x")); err != nil {
				t.Fatal(err)
			}
		}
	}

	lastSeq := make(map[uint32]uint32) // E suffix -> last seq seen
	for i := 0; i < nSrc*per; i++ {
		pkt, err := r.RecvTimeout(5 * time.Second)
		if err != nil {
			t.Fatalf("packet %d/%d: %v", i+1, nSrc*per, err)
		}
		e := pkt.Channel.E.ExpressSuffix()
		if pkt.Seq != lastSeq[e]+1 {
			t.Fatalf("channel E=%d: seq %d after %d (per-source order broken)", e, pkt.Seq, lastSeq[e])
		}
		lastSeq[e] = pkt.Seq
	}

	st := p.Stats()
	if st.Packets != nSrc*per {
		t.Errorf("packets = %d, want %d", st.Packets, nSrc*per)
	}
	if len(st.QueuePackets) != 4 {
		t.Fatalf("QueuePackets = %v, want 4 queues", st.QueuePackets)
	}
	var qsum uint64
	for _, n := range st.QueuePackets {
		qsum += n
	}
	if qsum != st.Packets {
		t.Errorf("per-queue counters sum to %d, want %d", qsum, st.Packets)
	}
}
