package dataplane

import "repro/internal/obs"

// RegisterMetrics exposes the plane's observability surface on reg: the
// hot-path histograms (forward latency, replication fan-out), the ingest
// and egress counters, and the forwarding table's own metrics under the
// dp_fib_ prefix. Everything feeding these is lock-free and allocation-free
// on the data path, so scraping /statsz never perturbs forwarding.
func (p *Plane) RegisterMetrics(reg *obs.Registry) {
	reg.RegisterHistogram("dp_forward_ns", "per-packet forward latency: decode + FIB lookup + replicate (ns, batch mean)", p.forwardNs)
	reg.RegisterHistogram("dp_fanout", "per-packet replication fan-out (destinations targeted)", p.fanoutH)
	reg.RegisterHistogram("dp_route_install_ns", "per-SetRoute FIB publication latency (ns)", p.installNs)
	reg.NewCounterFunc("dp_packets_total", "data packets ingested", p.pkts.Load)
	reg.NewCounterFunc("dp_bytes_total", "data bytes ingested", p.bytes.Load)
	reg.NewCounterFunc("dp_bad_packets_total", "datagrams that failed to decode", p.badPkts.Load)
	reg.NewCounterFunc("dp_replicated_total", "per-destination replications attempted", p.replicated.Load)
	reg.NewCounterFunc("dp_no_port_total", "OIF bits with no registered destination", p.noPort.Load)
	reg.NewCounterFunc("dp_sent_total", "data packets written downstream", func() uint64 { return p.Stats().Sent })
	reg.NewCounterFunc("dp_drops_total", "data packets dropped (queue full or write error)", func() uint64 { return p.Stats().Drops })
	p.fib.RegisterMetrics(reg, "dp_fib_")
}
