package dataplane

import (
	"fmt"

	"repro/internal/obs"
)

// RegisterMetrics exposes the plane's observability surface on reg: the
// hot-path histograms (forward latency, replication fan-out, ingest batch
// and egress burst widths, per-queue packet rate), the ingest and egress
// counters — queue-full drops and socket write errors split so backpressure
// is distinguishable from a broken destination — and the forwarding table's
// own metrics under the dp_fib_ prefix. Everything feeding these is
// lock-free and allocation-free on the data path, so scraping /statsz never
// perturbs forwarding.
func (p *Plane) RegisterMetrics(reg *obs.Registry) {
	reg.RegisterHistogram("dp_forward_ns", "per-packet forward latency: decode + FIB lookup + replicate (ns, batch mean)", p.forwardNs)
	reg.RegisterHistogram("dp_fanout", "per-packet replication fan-out (destinations targeted)", p.fanoutH)
	reg.RegisterHistogram("dp_route_install_ns", "per-SetRoute FIB publication latency (ns)", p.installNs)
	reg.RegisterHistogram("dp_ingest_batch_size", "datagrams drained per ingest batch (recvmmsg width)", p.batchH)
	reg.RegisterHistogram("dp_egress_burst_size", "datagrams coalesced per egress burst (sendmmsg width)", p.burstH)
	reg.RegisterHistogram("dp_queue_pps", "per-queue ingest packet rate, sampled once per second per queue", p.queuePPS)
	reg.NewCounterFunc("dp_packets_total", "data packets ingested", p.pkts.Load)
	reg.NewCounterFunc("dp_bytes_total", "data bytes ingested", p.bytes.Load)
	reg.NewCounterFunc("dp_bad_packets_total", "datagrams that failed to decode", p.badPkts.Load)
	reg.NewCounterFunc("dp_ingest_truncated_total", "oversized datagrams dropped at ingest instead of forwarding a truncated payload", p.truncated.Load)
	reg.NewCounterFunc("dp_replicated_total", "per-destination replications attempted", p.replicated.Load)
	reg.NewCounterFunc("dp_no_port_total", "OIF bits with no registered destination", p.noPort.Load)
	reg.NewCounterFunc("dp_sr_forwarded_total", "packets forwarded off the source-route header bitmap (zero FIB lookups)", p.srForwarded.Load)
	reg.NewCounterFunc("dp_sr_fallback_total", "source-routed packets forwarded off the packed FIB instead (exhausted stack, foreign hop, or header-unaware plane)", p.srFallback.Load)
	reg.NewCounterFunc("dp_sr_bad_total", "source-routed packets whose extension header failed to parse", p.srBad.Load)
	reg.NewCounterFunc("dp_sent_total", "data packets written downstream", func() uint64 { return p.Stats().Sent })
	reg.NewCounterFunc("dp_port_drops_total", "data packets dropped on a full egress queue (backpressure)", func() uint64 { return p.Stats().Drops })
	reg.NewCounterFunc("dp_port_write_errors_total", "data packets lost to socket write errors", func() uint64 { return p.Stats().WriteErrors })
	for _, q := range p.queues {
		q := q
		reg.NewCounterFunc(fmt.Sprintf("dp_queue_%d_packets_total", q.id),
			fmt.Sprintf("data packets ingested by queue %d", q.id), q.pkts.Load)
	}
	p.fib.RegisterMetrics(reg, "dp_fib_")
}
