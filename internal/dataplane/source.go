package dataplane

import (
	"fmt"
	"net"
	"sync/atomic"
	"time"

	"repro/internal/addr"
	"repro/internal/wire"
)

// SourceOptions tunes a channel source.
type SourceOptions struct {
	// PacePPS, when > 0, paces Send to the target packets-per-second rate:
	// each packet is scheduled on an absolute clock (start + i/rate), so
	// the long-run rate is exact even when individual sleeps overshoot.
	PacePPS int
	// StartSeq is the first sequence number stamped. Default 1, so seq 0
	// never appears on the wire and receivers can use 0 as "nothing yet".
	StartSeq uint32
}

// Source injects packets for one (S,E) channel into a router's data plane.
// It owns the channel's sequence counter — the EXPRESS model has exactly
// one sender per channel (only S may send, Section 2), which is what makes
// a single counter sufficient for receivers to detect loss and ordering.
// The send buffer is reused, so steady-state sending does not allocate.
type Source struct {
	conn *net.UDPConn
	ch   addr.Channel
	seq  atomic.Uint32
	buf  []byte

	// srh, when non-nil, is the source-route extension header inserted
	// after the data header of every packet (DataFlagSrcRoute set). The
	// tree-computation service swaps it atomically on membership change;
	// nil means plain FIB-forwarded packets.
	srh atomic.Pointer[[]byte]

	interval time.Duration
	next     time.Time
}

// NewSource connects a source for ch to the router data plane at target
// ("host:port", the router's -data-port address).
func NewSource(target string, ch addr.Channel, opts SourceOptions) (*Source, error) {
	if !ch.Valid() {
		return nil, fmt.Errorf("dataplane: invalid channel %v", ch)
	}
	ua, err := net.ResolveUDPAddr("udp", target)
	if err != nil {
		return nil, err
	}
	conn, err := net.DialUDP("udp", nil, ua)
	if err != nil {
		return nil, err
	}
	conn.SetWriteBuffer(4 << 20)
	s := &Source{
		conn: conn,
		ch:   ch,
		buf:  make([]byte, 0, wire.MaxDataPacket),
	}
	start := opts.StartSeq
	if start == 0 {
		start = 1
	}
	s.seq.Store(start - 1) // Send pre-increments
	if opts.PacePPS > 0 {
		s.interval = time.Second / time.Duration(opts.PacePPS)
	}
	return s, nil
}

// SetSourceRoute installs hdr (an encoded wire extension header) as the
// source-route stack carried by every subsequent packet; nil or empty
// clears it, returning the source to plain FIB-forwarded packets. The
// header is copied, so callers may reuse their buffer. Safe to call
// concurrently with sends — the tree-computation service pushes new stacks
// on membership change while the application keeps sending.
func (s *Source) SetSourceRoute(hdr []byte) error {
	if len(hdr) == 0 {
		s.srh.Store(nil)
		return nil
	}
	h, rest, err := wire.ParseExtHeader(hdr)
	if err == nil && len(rest) > 0 {
		err = wire.ErrExtHeader
	}
	if err == nil {
		err = h.Validate()
	}
	if err != nil {
		return err
	}
	cp := append([]byte(nil), hdr...)
	s.srh.Store(&cp)
	return nil
}

// SourceRouted reports whether a source-route header is installed.
func (s *Source) SourceRouted() bool { return s.srh.Load() != nil }

// Send stamps the next sequence number and writes one packet.
func (s *Source) Send(payload []byte) error { return s.SendFlags(payload, 0) }

// SendFlags is Send with explicit header flags.
func (s *Source) SendFlags(payload []byte, flags uint8) error {
	return s.send(s.seq.Add(1), payload, flags)
}

// SendSeq writes one packet with an explicit sequence number, leaving the
// source's counter untouched. Reliable transports use it for
// retransmissions (re-sending an old Seq must not consume a new one) and
// for probes whose Seq the caller allocates itself. Like Send, it shares
// the reused buffer: a source is single-sender (only S may send), so
// callers serialize their own sends.
func (s *Source) SendSeq(seq uint32, payload []byte, flags uint8) error {
	return s.send(seq, payload, flags)
}

func (s *Source) send(seq uint32, payload []byte, flags uint8) error {
	var srh []byte
	if hp := s.srh.Load(); hp != nil {
		srh = *hp
		flags |= wire.DataFlagSrcRoute
	}
	if len(payload)+len(srh) > wire.MaxDataPayload {
		return fmt.Errorf("dataplane: payload %d + source-route header %d exceeds %d",
			len(payload), len(srh), wire.MaxDataPayload)
	}
	s.pace()
	b := s.buf[:0]
	var hdr [wire.DataHeaderSize]byte
	wire.PutDataHeader(hdr[:], s.ch, seq, flags)
	b = append(b, hdr[:]...)
	b = append(b, srh...)
	b = append(b, payload...)
	s.buf = b
	_, err := s.conn.Write(b)
	return err
}

// pace sleeps until the packet's slot on the absolute schedule.
func (s *Source) pace() {
	if s.interval <= 0 {
		return
	}
	now := time.Now()
	if s.next.IsZero() {
		s.next = now
	}
	if d := s.next.Sub(now); d > 0 {
		time.Sleep(d)
	}
	s.next = s.next.Add(s.interval)
}

// Seq returns the last sequence number sent (StartSeq-1 before any Send).
func (s *Source) Seq() uint32 { return s.seq.Load() }

// Channel returns the source's channel.
func (s *Source) Channel() addr.Channel { return s.ch }

// Close closes the source's socket.
func (s *Source) Close() error { return s.conn.Close() }
