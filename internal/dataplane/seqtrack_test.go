package dataplane

import (
	"math"
	"testing"
	"time"

	"repro/internal/wire"
)

func observe(t *SeqTracker, seqs ...uint32) {
	for _, s := range seqs {
		t.Observe(&wire.DataPacket{Seq: s})
	}
}

func TestSeqTrackerInOrder(t *testing.T) {
	var tr SeqTracker
	observe(&tr, 10, 11, 12, 13)
	s := tr.Stats()
	if s.Received != 4 || s.Lost != 0 || s.Late != 0 || s.Next != 14 {
		t.Fatalf("stats = %+v, want 4 received, 0 lost, next 14", s)
	}
}

func TestSeqTrackerGapThenRepair(t *testing.T) {
	var tr SeqTracker
	observe(&tr, 1, 2, 5) // 3,4 missing
	if s := tr.Stats(); s.Lost != 2 || s.MaxGap != 2 {
		t.Fatalf("after gap: %+v, want lost 2, maxGap 2", s)
	}
	observe(&tr, 3) // late repair fills one slot
	if s := tr.Stats(); s.Lost != 1 || s.Late != 1 {
		t.Fatalf("after repair: %+v, want lost 1, late 1", s)
	}
	observe(&tr, 4, 6)
	if s := tr.Stats(); s.Lost != 0 || s.Next != 7 {
		t.Fatalf("after full repair: %+v, want lost 0, next 7", s)
	}
}

// TestSeqTrackerWraparound is the uint32-rollover regression: a stream
// crossing 2^32−1 → 0 in order must account zero loss, and a gap spanning
// the rollover must measure its true width.
func TestSeqTrackerWraparound(t *testing.T) {
	var tr SeqTracker
	start := uint32(math.MaxUint32 - 2)
	for i := uint32(0); i < 8; i++ {
		observe(&tr, start+i) // wraps: ...fffe, ffff, 0, 1, ...
	}
	s := tr.Stats()
	if s.Lost != 0 || s.Late != 0 {
		t.Fatalf("in-order rollover: %+v, want no loss", s)
	}
	if s.Next != start+8 {
		t.Fatalf("next = %d, want %d", s.Next, start+8)
	}

	var tr2 SeqTracker
	observe(&tr2, math.MaxUint32-1, math.MaxUint32, 3) // 0,1,2 missing across the wrap
	if s := tr2.Stats(); s.Lost != 3 || s.MaxGap != 3 {
		t.Fatalf("gap across rollover: %+v, want lost 3", s)
	}
	observe(&tr2, 0) // late packet from before the wrap boundary repairs one
	if s := tr2.Stats(); s.Lost != 2 || s.Late != 1 {
		t.Fatalf("repair across rollover: %+v, want lost 2, late 1", s)
	}
}

// TestReceiverSeqStatsAcrossWraparound drives a real plane end to end with
// a source whose StartSeq sits just below the rollover, so the delivered
// stream crosses 2^32−1 → 0 on the wire; the receiver's accounting must
// see an ordered, loss-free stream.
func TestReceiverSeqStatsAcrossWraparound(t *testing.T) {
	p := mustPlane(t, Options{})
	r := mustReceiver(t)
	p.SetPort(0, r.addrPort())
	ch := testChannel(77)
	p.SetRoute(ch, 1<<0)

	start := uint32(math.MaxUint32 - 2)
	src, err := NewSource(p.Addr(), ch, SourceOptions{StartSeq: start})
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()

	const n = 8
	for i := 0; i < n; i++ {
		if err := src.Send([]byte("wrap")); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		pkt, err := r.RecvTimeout(2 * time.Second)
		if err != nil {
			t.Fatalf("packet %d: %v", i, err)
		}
		if want := start + uint32(i); pkt.Seq != want {
			t.Fatalf("seq = %d, want %d", pkt.Seq, want)
		}
	}
	s := r.SeqStats()
	if s.Received != n || s.Lost != 0 || s.Late != 0 {
		t.Fatalf("receiver stats = %+v, want %d received, no loss", s, n)
	}
	if s.Next != start+n {
		t.Fatalf("next = %d, want %d (wrapped)", s.Next, start+n)
	}
}
