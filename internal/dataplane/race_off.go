//go:build !race

package dataplane

// raceEnabled reports whether the race detector is compiled in; alloc
// pins are skipped under -race, whose pool instrumentation allocates.
const raceEnabled = false
