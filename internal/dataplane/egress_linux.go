//go:build linux && (amd64 || arm64)

package dataplane

import (
	"syscall"
	"unsafe"
)

// Kernel-batched egress: the port writer's burst goes out in one sendmmsg
// syscall instead of one sendto per datagram. The mmsghdr/iovec arrays and
// the destination sockaddr are preallocated per port; every message in a
// burst shares the same sockaddr pointer, so a flush only rewrites iovec
// base/len pairs.

// mmsgWriter owns one port's gather arrays. hdrs carries raw pointers into
// iovs and sa; holding them all in one reachable struct keeps them live for
// the garbage collector while the kernel reads through the raw pointers.
type mmsgWriter struct {
	o    *outPort
	rc   syscall.RawConn
	sa   syscall.RawSockaddrInet4
	iovs []syscall.Iovec
	hdrs []mmsghdr
	bufs []*[]byte // burst being flushed
	off  int       // messages already accepted by the kernel
}

// newFlusher returns the burst flush function for this port: sendmmsg when
// the destination is IPv4 and the raw connection is available, else the
// portable per-datagram writer.
func (o *outPort) newFlusher(opts Options) func([]*[]byte) {
	if opts.forceSerial {
		return o.flushSerial
	}
	a := o.dst.Addr()
	if a.Is4In6() {
		a = a.Unmap()
	}
	if !a.Is4() {
		return o.flushSerial
	}
	rc, err := o.conn.SyscallConn()
	if err != nil {
		return o.flushSerial
	}
	w := &mmsgWriter{
		o:    o,
		rc:   rc,
		iovs: make([]syscall.Iovec, cap(o.burst)),
		hdrs: make([]mmsghdr, cap(o.burst)),
	}
	port := o.dst.Port()
	w.sa = syscall.RawSockaddrInet4{
		Family: syscall.AF_INET,
		Port:   port<<8 | port>>8, // sin_port is big-endian in raw sockaddr memory
		Addr:   a.As4(),
	}
	for i := range w.hdrs {
		w.hdrs[i].hdr.Name = (*byte)(unsafe.Pointer(&w.sa))
		w.hdrs[i].hdr.Namelen = syscall.SizeofSockaddrInet4
		w.hdrs[i].hdr.Iov = &w.iovs[i]
		w.hdrs[i].hdr.Iovlen = 1
	}
	return w.flush
}

// write pushes the staged burst from offset w.off onward. Returning false
// parks the writer goroutine in the poller until the socket is writable
// again (a full send buffer), after which the runtime re-invokes it.
func (w *mmsgWriter) write(fd uintptr) bool {
	for w.off < len(w.bufs) {
		m := len(w.bufs) - w.off
		for i := 0; i < m; i++ {
			b := *w.bufs[w.off+i]
			w.iovs[i].Base = &b[0]
			w.iovs[i].SetLen(len(b))
		}
		n, errno := sendmmsg(fd, w.hdrs[:m], syscall.MSG_DONTWAIT)
		switch errno {
		case 0:
			if n <= 0 {
				// Defensive: a zero-progress success would spin forever.
				w.o.writeErrs.Add(1)
				w.off++
				continue
			}
			w.o.sent.Add(uint64(n))
			w.off += n
		case syscall.EINTR:
			continue
		case syscall.EAGAIN:
			return false
		default:
			// sendmmsg reports an error only when the *first* message
			// fails: account that one, skip it, and keep the burst moving.
			w.o.writeErrs.Add(1)
			w.off++
		}
	}
	return true
}

func (w *mmsgWriter) flush(bufs []*[]byte) {
	w.bufs, w.off = bufs, 0
	if err := w.rc.Write(w.write); err != nil && w.off < len(w.bufs) {
		// The raw connection itself failed (socket closed): everything not
		// yet accepted is lost.
		w.o.writeErrs.Add(uint64(len(w.bufs) - w.off))
	}
	w.bufs = nil
}
