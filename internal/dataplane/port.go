package dataplane

import (
	"net"
	"net/netip"
	"sync"
	"sync/atomic"

	"repro/internal/wire"
)

// pktPool recycles egress packet buffers between the ingest workers
// (producers) and the per-port writers (consumers). Capacity is one
// maximum-sized data packet, so replication never grows a pooled buffer.
var pktPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, wire.MaxDataPacket)
		return &b
	},
}

func getPkt() *[]byte  { return pktPool.Get().(*[]byte) }
func putPkt(b *[]byte) { *b = (*b)[:0]; pktPool.Put(b) }

// outPort is one egress destination: a downstream router's ingest socket or
// a locally-subscribed receiver, selected by an OIF bit. It mirrors the
// realnet neighbor queue design — a bounded channel drained by a dedicated
// writer goroutine, with drop accounting instead of blocking — so a slow or
// dead destination sheds its own load and never backpressures the shared
// ingest path. Datagrams are written through the plane's single UDP socket
// (per-datagram sendto is atomic, so concurrent port writers don't
// interleave), which also gives every forwarded packet the router's data
// port as its source address.
type outPort struct {
	conn *net.UDPConn
	dst  netip.AddrPort

	out      chan *[]byte
	quit     chan struct{}
	done     chan struct{}
	stopOnce sync.Once

	sent  atomic.Uint64
	drops atomic.Uint64
}

func newOutPort(conn *net.UDPConn, dst netip.AddrPort, queueLen int) *outPort {
	o := &outPort{
		conn: conn,
		dst:  dst,
		out:  make(chan *[]byte, queueLen),
		quit: make(chan struct{}),
		done: make(chan struct{}),
	}
	go o.writer()
	return o
}

// send copies the datagram into a pooled buffer and offers it to the queue
// without ever blocking; a full queue drops and accounts. The copy keeps
// buffer ownership linear (one producer hand-off per destination), which is
// what lets the whole path run allocation-free out of one pool.
func (o *outPort) send(b []byte) {
	buf := getPkt()
	*buf = append((*buf)[:0], b...)
	select {
	case o.out <- buf:
	default:
		o.drops.Add(1)
		putPkt(buf)
	}
}

// writer drains the queue onto the socket. UDP writes don't block on a slow
// receiver, so there is no deadline machinery here; a write error (port
// unreachable, socket closed) counts as a drop and the port keeps draining
// so enqueues stay cheap until the control plane clears it.
func (o *outPort) writer() {
	defer close(o.done)
	for {
		select {
		case <-o.quit:
			// Drain without sending: the port was unregistered.
			for {
				select {
				case b := <-o.out:
					o.drops.Add(1)
					putPkt(b)
				default:
					return
				}
			}
		case b := <-o.out:
			if _, err := o.conn.WriteToUDPAddrPort(*b, o.dst); err != nil {
				o.drops.Add(1)
			} else {
				o.sent.Add(1)
			}
			putPkt(b)
		}
	}
}

// stop ends the writer and waits for it; packets still queued are dropped.
// A packet enqueued concurrently with stop may be left in the channel — it
// is unreachable afterwards and reclaimed by GC, which is acceptable for a
// datagram plane (the queue is bounded, so the leak is too).
func (o *outPort) stop() {
	o.stopOnce.Do(func() { close(o.quit) })
	<-o.done
}
