package dataplane

import (
	"net"
	"net/netip"
	"sync"
	"sync/atomic"

	"repro/internal/obs"
	"repro/internal/wire"
)

// pktPool recycles egress packet buffers between the ingest workers
// (producers) and the per-port writers (consumers). Capacity is one
// maximum-sized data packet, so replication never grows a pooled buffer.
var pktPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, wire.MaxDataPacket)
		return &b
	},
}

func getPkt() *[]byte  { return pktPool.Get().(*[]byte) }
func putPkt(b *[]byte) { *b = (*b)[:0]; pktPool.Put(b) }

// outPort is one egress destination: a downstream router's ingest socket or
// a locally-subscribed receiver, selected by an OIF bit. It mirrors the
// realnet neighbor queue design — a bounded channel drained by a dedicated
// writer goroutine, with drop accounting instead of blocking — so a slow or
// dead destination sheds its own load and never backpressures the shared
// ingest path. The writer coalesces: every wakeup it collects up to Burst
// queued packets and flushes them together (one sendmmsg on linux, a write
// loop elsewhere), so under load the per-datagram syscall cost amortizes
// across the burst. Datagrams are written through the plane's primary UDP
// socket (per-datagram sends are atomic, so concurrent port writers don't
// interleave), which also gives every forwarded packet the router's data
// port as its source address.
type outPort struct {
	conn *net.UDPConn
	dst  netip.AddrPort

	out      chan *[]byte
	quit     chan struct{}
	done     chan struct{}
	stopOnce sync.Once

	burst  []*[]byte      // writer-local staging, cap = Options.Burst
	burstH *obs.Histogram // plane-wide egress burst-size distribution
	flush  func([]*[]byte)

	sent      atomic.Uint64 // datagrams written
	drops     atomic.Uint64 // lost to a full queue (backpressure)
	writeErrs atomic.Uint64 // lost to a socket write error
}

func newOutPort(conn *net.UDPConn, dst netip.AddrPort, opts Options, burstH *obs.Histogram) *outPort {
	o := &outPort{
		conn:   conn,
		dst:    dst,
		out:    make(chan *[]byte, opts.QueueLen),
		quit:   make(chan struct{}),
		done:   make(chan struct{}),
		burst:  make([]*[]byte, 0, opts.Burst),
		burstH: burstH,
	}
	o.flush = o.newFlusher(opts)
	go o.writer()
	return o
}

// send copies the datagram into a pooled buffer and offers it to the queue
// without ever blocking; a full queue drops and accounts. The copy keeps
// buffer ownership linear (one producer hand-off per destination), which is
// what lets the whole path run allocation-free out of one pool.
func (o *outPort) send(b []byte) {
	buf := getPkt()
	*buf = append((*buf)[:0], b...)
	select {
	case o.out <- buf:
	default:
		o.drops.Add(1)
		putPkt(buf)
	}
}

// writer drains the queue onto the socket in bursts: block for the first
// packet, then opportunistically collect whatever else is already queued
// (up to the burst cap) and flush the lot in one syscall where the platform
// allows. UDP writes don't block on a slow receiver, so there is no
// deadline machinery here; a write error (port unreachable, socket closed)
// is accounted and the port keeps draining so enqueues stay cheap until the
// control plane clears it.
func (o *outPort) writer() {
	defer close(o.done)
	for {
		select {
		case <-o.quit:
			// Drain without sending: the port was unregistered.
			for {
				select {
				case b := <-o.out:
					o.drops.Add(1)
					putPkt(b)
				default:
					return
				}
			}
		case b := <-o.out:
			o.burst = append(o.burst[:0], b)
		collect:
			for len(o.burst) < cap(o.burst) {
				select {
				case b2 := <-o.out:
					o.burst = append(o.burst, b2)
				default:
					break collect
				}
			}
			o.burstH.ObserveInt(len(o.burst))
			o.flush(o.burst)
			for _, pb := range o.burst {
				putPkt(pb)
			}
		}
	}
}

// flushSerial writes one datagram per syscall — the portable egress path
// and the linux fallback.
func (o *outPort) flushSerial(bufs []*[]byte) {
	for _, b := range bufs {
		if _, err := o.conn.WriteToUDPAddrPort(*b, o.dst); err != nil {
			o.writeErrs.Add(1)
		} else {
			o.sent.Add(1)
		}
	}
}

// stop ends the writer and waits for it; packets still queued are dropped.
// A packet enqueued concurrently with stop may be left in the channel — it
// is unreachable afterwards and reclaimed by GC, which is acceptable for a
// datagram plane (the queue is bounded, so the leak is too).
func (o *outPort) stop() {
	o.stopOnce.Do(func() { close(o.quit) })
	<-o.done
}
