//go:build !(linux && (amd64 || arm64))

package dataplane

import "net"

// listenQueues on platforms without the raw-syscall fast path keeps the
// single-socket design regardless of the requested queue count: the plane
// still runs n ingest workers, they just share one socket (the kernel
// load-balances wakeups across blocked readers). SO_REUSEPORT fan-in is a
// linux semantics contract; elsewhere correctness beats parallel ingest.
func listenQueues(listen string, n int) ([]*net.UDPConn, error) {
	c, err := listenOne(listen)
	if err != nil {
		return nil, err
	}
	return []*net.UDPConn{c}, nil
}
