//go:build windows

package dataplane

import (
	"errors"
	"syscall"
)

// oversizeReadErr reports whether a datagram read failed because the
// datagram was longer than the supplied buffer. Winsock is the platform
// that actually takes this path in steady state: recvfrom on a too-small
// buffer fails with WSAEMSGSIZE after discarding the datagram's tail, so
// without this classification the portable ingest loop would misread every
// oversized datagram as a transient socket error (1 ms backoff, no
// dp_ingest_truncated_total accounting) instead of dropping and counting
// it like the linux MSG_TRUNC path.
// oversizeErrno is the platform's message-size errno, exposed for the
// classification test. Winsock's WSAEMSGSIZE (10040); the syscall package
// does not export the WSA constants, and syscall.EMSGSIZE on windows is an
// APPLICATION_ERROR-offset value that never comes back from recvfrom.
const oversizeErrno = syscall.Errno(10040)

func oversizeReadErr(err error) bool {
	return errors.Is(err, oversizeErrno)
}
