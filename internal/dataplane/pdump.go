package dataplane

// On-demand packet capture, modeled on ndn-dpdk's pdump facility: a
// lock-free ring of truncated packet records the forwarding hot path writes
// into only while an operator has armed it. The design constraints are the
// plane's own: the disarmed cost must be one atomic pointer load (the fast
// path is pinned at 0 allocs/op in CI and must stay there), and the armed
// cost must be a fixed-size record write with no locks, no channels and no
// allocations — capture never perturbs the traffic it observes beyond the
// clock read that timestamps it.
//
// Records are truncated by construction: the ring stores the forwarding
// metadata (direction, queue or OIF, channel, sequence, flags, datagram
// length, wall-clock ns), never payload bytes. That is what a chaos harness
// needs to reconstruct "which datagrams moved where around the event"
// without the capture buffer itself becoming a memory or privacy problem.
//
// Concurrency: every ingest worker and the replication path write records,
// so slots are claimed with one atomic fetch-add and sealed with a per-slot
// stamp (a seqlock in miniature): the writer clears the stamp, fills the
// record, then stores claim+1. A reader accepts a slot only when the stamp
// read before and after the copy agree and are non-zero. Two writers can
// collide on one slot only when one of them lags a full ring generation
// behind the other inside a single record write — for a diagnostic ring
// that rare torn record is discarded by the stamp check, not defended
// against with a lock.

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/addr"
	"repro/internal/obs"
	"repro/internal/wire"
)

// Pdump record directions.
const (
	PdumpIn  uint8 = 0 // decoded at ingest, before the forwarding decision
	PdumpOut uint8 = 1 // enqueued to an egress port (Queue = the OIF index)
)

const (
	pdumpDefaultCap = 4096
	pdumpMinCap     = 64
	pdumpMaxCap     = 1 << 20
)

// PdumpRecord is one truncated packet record.
type PdumpRecord struct {
	NS    int64     // wall-clock timestamp, ns since the epoch
	S     addr.Addr // channel source
	E     addr.Addr // channel destination (EXPRESS address)
	Seq   uint32    // source-stamped sequence number
	Len   uint16    // full datagram length, bytes (the part not captured)
	Dir   uint8     // PdumpIn or PdumpOut
	Queue uint8     // ingest queue (Dir in) or OIF index (Dir out)
	Flags uint8     // wire flags byte
}

// pdumpSlot is one sealed ring entry; see the stamp protocol above.
type pdumpSlot struct {
	stamp atomic.Uint64 // 0 = empty/in-progress, else claim index + 1
	rec   PdumpRecord
}

type pdumpRing struct {
	mask   uint64
	cursor atomic.Uint64 // claims issued; slot = claim & mask
	slots  []pdumpSlot
}

func newPdumpRing(capacity int) *pdumpRing {
	if capacity <= 0 {
		capacity = pdumpDefaultCap
	}
	if capacity < pdumpMinCap {
		capacity = pdumpMinCap
	}
	if capacity > pdumpMaxCap {
		capacity = pdumpMaxCap
	}
	n := 1
	for n < capacity {
		n <<= 1
	}
	return &pdumpRing{mask: uint64(n - 1), slots: make([]pdumpSlot, n)}
}

// record writes one sealed record. Zero allocations; called from the
// forwarding hot path only when the ring is armed.
func (r *pdumpRing) record(dir, queue uint8, pkt *wire.DataPacket, dglen int) {
	claim := r.cursor.Add(1) - 1
	s := &r.slots[claim&r.mask]
	s.stamp.Store(0)
	s.rec = PdumpRecord{
		NS:    time.Now().UnixNano(),
		S:     pkt.Channel.S,
		E:     pkt.Channel.E,
		Seq:   pkt.Seq,
		Len:   uint16(dglen),
		Dir:   dir,
		Queue: queue,
		Flags: pkt.Flags,
	}
	s.stamp.Store(claim + 1)
}

// snapshot copies the sealed records oldest-first. Slots mid-write (stamp
// torn across the copy) are skipped rather than waited on.
func (r *pdumpRing) snapshot() []PdumpRecord {
	end := r.cursor.Load()
	n := uint64(len(r.slots))
	start := uint64(0)
	if end > n {
		start = end - n
	}
	out := make([]PdumpRecord, 0, end-start)
	for c := start; c < end; c++ {
		s := &r.slots[c&r.mask]
		s1 := s.stamp.Load()
		if s1 == 0 {
			continue
		}
		rec := s.rec
		if s.stamp.Load() != s1 {
			continue // torn: a writer lapped us mid-copy
		}
		out = append(out, rec)
	}
	return out
}

// PdumpStats describes the capture facility's state.
type PdumpStats struct {
	Armed    bool   `json:"armed"`
	Capacity int    `json:"capacity"` // ring slots (0 when never armed)
	Captured uint64 `json:"captured"` // records written since arming
	Dropped  uint64 `json:"dropped"`  // older records overwritten by ring wrap
}

// PdumpStart arms the capture ring with the given capacity (rounded up to a
// power of two, clamped to [64, 1<<20]; <=0 selects 4096). It fails when a
// capture is already armed — stop and fetch first, so two operators cannot
// silently steal each other's ring.
func (p *Plane) PdumpStart(capacity int) error {
	p.pdMu.Lock()
	defer p.pdMu.Unlock()
	if p.pdArmed.Load() != nil {
		return fmt.Errorf("pdump: already armed")
	}
	r := newPdumpRing(capacity)
	p.pdHeld = r
	p.pdArmed.Store(r)
	return nil
}

// PdumpStop disarms the capture; the ring is retained so PdumpFetch still
// returns everything captured. Stopping an idle facility is a no-op.
func (p *Plane) PdumpStop() PdumpStats {
	p.pdMu.Lock()
	defer p.pdMu.Unlock()
	p.pdArmed.Store(nil)
	return p.pdumpStatsLocked()
}

// PdumpFetch returns the captured records oldest-first, from the armed ring
// or — after PdumpStop — the retained one.
func (p *Plane) PdumpFetch() []PdumpRecord {
	p.pdMu.Lock()
	r := p.pdHeld
	p.pdMu.Unlock()
	if r == nil {
		return nil
	}
	return r.snapshot()
}

// PdumpStats reports the facility's current state.
func (p *Plane) PdumpStats() PdumpStats {
	p.pdMu.Lock()
	defer p.pdMu.Unlock()
	return p.pdumpStatsLocked()
}

func (p *Plane) pdumpStatsLocked() PdumpStats {
	st := PdumpStats{Armed: p.pdArmed.Load() != nil}
	if r := p.pdHeld; r != nil {
		st.Capacity = len(r.slots)
		st.Captured = r.cursor.Load()
		if st.Captured > uint64(st.Capacity) {
			st.Dropped = st.Captured - uint64(st.Capacity)
		}
	}
	return st
}

// pdumpRecordView is the JSON shape /debug/pdump/fetch emits: the record
// with the direction spelled out and addresses dotted, so a captured window
// is readable without the repo's own tooling.
type pdumpRecordView struct {
	NS    int64  `json:"ns"`
	Dir   string `json:"dir"`
	Queue uint8  `json:"queue"`
	S     string `json:"s"`
	E     string `json:"e"`
	Seq   uint32 `json:"seq"`
	Flags uint8  `json:"flags"`
	Len   uint16 `json:"len"`
}

func pdumpView(rec PdumpRecord) pdumpRecordView {
	dir := "in"
	if rec.Dir == PdumpOut {
		dir = "out"
	}
	return pdumpRecordView{
		NS: rec.NS, Dir: dir, Queue: rec.Queue,
		S: rec.S.String(), E: rec.E.String(),
		Seq: rec.Seq, Flags: rec.Flags, Len: rec.Len,
	}
}

// PdumpHandlers returns the admin debug endpoints of the capture facility,
// ready to mount on an obs.Admin:
//
//	POST /debug/pdump/start?cap=N   arm the ring (N slots, default 4096)
//	POST /debug/pdump/stop          disarm, retaining the ring
//	GET  /debug/pdump/fetch         drain the captured records as JSON
func (p *Plane) PdumpHandlers() []obs.DebugHandler {
	writeJSON := func(w http.ResponseWriter, v any) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(v)
	}
	return []obs.DebugHandler{
		{
			Path: "/debug/pdump/start", Method: http.MethodPost,
			Help: "arm the packet-capture ring (?cap=N slots, default 4096)",
			Handle: func(w http.ResponseWriter, r *http.Request) {
				capacity := 0
				if s := r.URL.Query().Get("cap"); s != "" {
					v, err := strconv.Atoi(s)
					if err != nil {
						http.Error(w, "bad cap: "+err.Error(), http.StatusBadRequest)
						return
					}
					capacity = v
				}
				if err := p.PdumpStart(capacity); err != nil {
					http.Error(w, err.Error(), http.StatusConflict)
					return
				}
				writeJSON(w, p.PdumpStats())
			},
		},
		{
			Path: "/debug/pdump/stop", Method: http.MethodPost,
			Help: "disarm the packet-capture ring (records stay fetchable)",
			Handle: func(w http.ResponseWriter, r *http.Request) {
				writeJSON(w, p.PdumpStop())
			},
		},
		{
			Path: "/debug/pdump/fetch", Method: http.MethodGet,
			Help: "drain captured packet records (oldest first)",
			Handle: func(w http.ResponseWriter, r *http.Request) {
				recs := p.PdumpFetch()
				views := make([]pdumpRecordView, len(recs))
				for i, rec := range recs {
					views[i] = pdumpView(rec)
				}
				writeJSON(w, struct {
					PdumpStats
					Records []pdumpRecordView `json:"records"`
				}{p.PdumpStats(), views})
			},
		},
	}
}

// pdMuState is embedded in Plane; kept here so everything pdump lives in
// one file.
type pdMuState struct {
	pdMu    sync.Mutex
	pdHeld  *pdumpRing                // last armed ring, kept for fetch-after-stop
	pdArmed atomic.Pointer[pdumpRing] // non-nil while capturing (the hot-path gate)
}
