package dataplane

import (
	"fmt"
	"net"
	"testing"

	"repro/internal/addr"
	"repro/internal/wire"
)

// benchPlane builds a plane with `fanout` registered ports, all aimed at a
// single sink socket (the kernel discards overflow at the receiver, so the
// writers never block), and one route covering every port.
func benchPlane(tb testing.TB, fanout int) (*Plane, []byte) {
	tb.Helper()
	p, err := NewPlane(Options{})
	if err != nil {
		tb.Fatal(err)
	}
	tb.Cleanup(func() { p.Close() })
	sink, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		tb.Fatal(err)
	}
	tb.Cleanup(func() { sink.Close() })
	dst := sink.LocalAddr().(*net.UDPAddr).AddrPort()
	for i := 0; i < fanout; i++ {
		p.SetPort(i, dst)
	}
	ch := addr.Channel{S: addr.MustParse("171.64.1.1"), E: addr.ExpressAddr(1)}
	p.SetRoute(ch, uint32(1<<fanout)-1)

	pkt := wire.DataPacket{Channel: ch, Seq: 1, Payload: make([]byte, 256)}
	return p, pkt.AppendTo(nil)
}

// BenchmarkReplicate measures the per-packet replication path — decode,
// one ForwardMask lookup, copy into a pooled buffer and enqueue per OIF —
// at the fan-outs of the paper's unicast/multicast comparison. The sends
// that land in full queues are accounted drops, exactly as on an
// overloaded interface; the hot path cost is identical either way.
func BenchmarkReplicate(b *testing.B) {
	for _, fanout := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("fanout=%d", fanout), func(b *testing.B) {
			p, buf := benchPlane(b, fanout)
			b.ReportAllocs()
			b.SetBytes(int64(len(buf)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if p.HandlePacket(buf) != fanout {
					b.Fatal("short fanout")
				}
			}
		})
	}
}

// TestReplicateZeroAlloc pins the steady-state replication path at zero
// allocations per packet: after a warm-up primes the buffer pool and fills
// the egress queues, every HandlePacket — decode, FIB lookup, 16-way copy
// and enqueue-or-drop — must run without touching the heap. Guarded in CI
// next to the fib/realnet alloc pins.
func TestReplicateZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race-mode sync.Pool instrumentation allocates")
	}
	p, buf := benchPlane(t, 16)
	for i := 0; i < 20000; i++ {
		p.HandlePacket(buf)
	}
	if allocs := testing.AllocsPerRun(5000, func() {
		p.HandlePacket(buf)
	}); allocs != 0 {
		t.Errorf("HandlePacket allocates %.1f times per packet, want 0", allocs)
	}
}
