//go:build race

package dataplane

// raceEnabled reports whether the race detector is compiled in.
const raceEnabled = true
