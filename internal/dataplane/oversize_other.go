//go:build !windows

package dataplane

import (
	"errors"
	"syscall"
)

// oversizeReadErr reports whether a datagram read failed because the
// datagram was longer than the supplied buffer. Unix sockets silently
// truncate instead of erroring (the slot's extra stride byte is what
// detects that case), but a kernel can still surface EMSGSIZE, and the
// portable ingest path must count it as an oversized drop rather than
// treating it as a transient socket error.
// oversizeErrno is the platform's message-size errno, exposed for the
// classification test.
const oversizeErrno = syscall.EMSGSIZE

func oversizeReadErr(err error) bool {
	return errors.Is(err, oversizeErrno)
}
