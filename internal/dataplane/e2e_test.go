package dataplane_test

// End-to-end acceptance for the data plane (ISSUE 5): a two-router line
// topology carries real UDP channel data programmed entirely by the ECMP
// Count control plane — subscribe, deliver in order to every receiver, flap
// the inter-router session, and recover after resync.

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/addr"
	"repro/internal/dataplane"
	"repro/internal/realnet"
)

// tap captures the edge router's live upstream connection so the test can
// kill it on demand (latest connection wins across reconnects).
type tap struct {
	mu sync.Mutex
	fc *realnet.FaultConn
}

func (tp *tap) set(fc *realnet.FaultConn) {
	tp.mu.Lock()
	defer tp.mu.Unlock()
	tp.fc = fc
}

func (tp *tap) reset() bool {
	tp.mu.Lock()
	defer tp.mu.Unlock()
	if tp.fc == nil {
		return false
	}
	tp.fc.Reset()
	tp.fc = nil
	return true
}

func waitCond(t *testing.T, d time.Duration, cond func() bool, what string) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// planeProgrammed reports whether p holds a route for ch AND every interface
// in its mask has a registered destination port. Once true, a packet
// injected at the plane will be replicated to live sockets — this is the
// deterministic "delivery will work" predicate the test polls instead of
// sleeping.
func planeProgrammed(p *dataplane.Plane, ch addr.Channel, wantFanout int) bool {
	mask, ok := p.Route(ch)
	if !ok {
		return false
	}
	fanout := 0
	for i := 0; i < 32; i++ {
		if mask&(1<<i) == 0 {
			continue
		}
		if _, ok := p.PortAddr(i); !ok {
			return false
		}
		fanout++
	}
	return fanout == wantFanout
}

// recvOrdered reads n packets and asserts a contiguous sequence starting at
// first, with the payload the source stamped for that seq.
func recvOrdered(t *testing.T, name string, r *dataplane.Receiver, first uint32, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		want := first + uint32(i)
		pkt, err := r.RecvTimeout(5 * time.Second)
		if err != nil {
			t.Fatalf("%s: waiting for seq %d: %v", name, want, err)
		}
		if pkt.Seq != want {
			t.Fatalf("%s: seq = %d, want %d (loss or reordering)", name, pkt.Seq, want)
		}
		if wantPayload := fmt.Sprintf("pkt-%d", want); string(pkt.Payload) != wantPayload {
			t.Fatalf("%s: payload = %q, want %q", name, pkt.Payload, wantPayload)
		}
	}
}

// TestEndToEndFlapRecovery is the acceptance test: three receivers
// subscribe through an edge router whose aggregate Count programs the core;
// a source injects at the core and every receiver sees an ordered stream
// relayed core→edge→receiver. Then the edge↔core session is reset: the
// core's sync.Once withdrawal path clears both the count state and the
// edge's data port, the session resyncs, and delivery resumes intact.
func TestEndToEndFlapRecovery(t *testing.T) {
	core, err := realnet.NewRouterOpts("127.0.0.1:0", realnet.Options{
		DataListen:    "127.0.0.1:0",
		FlushInterval: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer core.Close()

	tp := &tap{}
	edge, err := realnet.NewRouterOpts("127.0.0.1:0", realnet.Options{
		Upstream:   core.Addr(),
		DataListen: "127.0.0.1:0",
		// The upstream keepalive is what turns a silently dead connection
		// into a prompt write failure — without it the flap below would only
		// be noticed on the next count change.
		KeepaliveInterval: 20 * time.Millisecond,
		FlushInterval:     time.Millisecond,
		ReconnectBase:     2 * time.Millisecond,
		ReconnectMax:      50 * time.Millisecond,
		Dial:              realnet.FaultDialer(tp.set),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer edge.Close()

	ch := addr.Channel{S: addr.MustParse("171.64.1.1"), E: addr.ExpressAddr(42)}

	// Three receivers, each a distinct neighbor session at the edge with
	// its own advertised data port.
	const nRecv = 3
	recvs := make([]*dataplane.Receiver, nRecv)
	for i := range recvs {
		r, err := dataplane.NewReceiver()
		if err != nil {
			t.Fatal(err)
		}
		defer r.Close()
		recvs[i] = r
		sess, err := realnet.DialSession(edge.Addr(), realnet.SessionOptions{
			DataPort:          r.Port(),
			KeepaliveInterval: 5 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer sess.Close()
		if err := sess.Subscribe(ch); err != nil {
			t.Fatal(err)
		}
		if err := sess.Flush(); err != nil {
			t.Fatal(err)
		}
	}

	// Control plane converged: counts aggregated up to the core, FIBs and
	// data ports programmed at both hops.
	waitCond(t, 10*time.Second, func() bool {
		return edge.SubscriberCount(ch) == nRecv && core.SubscriberCount(ch) == nRecv &&
			planeProgrammed(edge.DataPlane(), ch, nRecv) &&
			planeProgrammed(core.DataPlane(), ch, 1)
	}, "subscription to converge")

	src, err := dataplane.NewSource(core.DataAddr(), ch, dataplane.SourceOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()

	const batch = 50
	for i := 0; i < batch; i++ {
		if err := src.Send([]byte(fmt.Sprintf("pkt-%d", src.Seq()+1))); err != nil {
			t.Fatal(err)
		}
	}
	for i, r := range recvs {
		recvOrdered(t, fmt.Sprintf("recv%d", i), r, 1, batch)
	}

	// Flap: kill the edge's upstream connection. The core must run the
	// withdrawal path (counts gone, OIF cleared, data port dropped)...
	if !tp.reset() {
		t.Fatal("no live upstream connection to reset")
	}
	waitCond(t, 10*time.Second, func() bool {
		return core.Stats().NeighborFailures >= 1
	}, "core to withdraw the failed neighbor")

	// ...and the edge's resync (new epoch Hello + full count replay) must
	// rebuild exactly the same forwarding state.
	waitCond(t, 10*time.Second, func() bool {
		return core.Stats().SessionResyncs >= 1 && core.SubscriberCount(ch) == nRecv &&
			planeProgrammed(core.DataPlane(), ch, 1)
	}, "resync to restore core state")

	for i := 0; i < batch; i++ {
		if err := src.Send([]byte(fmt.Sprintf("pkt-%d", src.Seq()+1))); err != nil {
			t.Fatal(err)
		}
	}
	for i, r := range recvs {
		recvOrdered(t, fmt.Sprintf("recv%d(post-flap)", i), r, batch+1, batch)
	}

	// The recovery really went through the failure machinery, not luck.
	st := core.Stats()
	if st.NeighborFailures < 1 || st.SessionResyncs < 1 {
		t.Errorf("core stats = %+v, want >=1 failure and >=1 resync", st)
	}
}

// TestLeaveStopsDelivery (satellite 3): when the last subscriber leaves,
// the edge drops its FIB entry immediately and the core's entry disappears
// within one upstream flush window — after which injected packets are
// unmatched drops, not deliveries.
func TestLeaveStopsDelivery(t *testing.T) {
	core, err := realnet.NewRouterOpts("127.0.0.1:0", realnet.Options{
		DataListen:    "127.0.0.1:0",
		FlushInterval: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer core.Close()
	edge, err := realnet.NewRouterOpts("127.0.0.1:0", realnet.Options{
		Upstream:      core.Addr(),
		DataListen:    "127.0.0.1:0",
		FlushInterval: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer edge.Close()

	ch := addr.Channel{S: addr.MustParse("171.64.1.1"), E: addr.ExpressAddr(7)}
	r, err := dataplane.NewReceiver()
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	sess, err := realnet.DialSession(edge.Addr(), realnet.SessionOptions{DataPort: r.Port()})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	if err := sess.Subscribe(ch); err != nil {
		t.Fatal(err)
	}
	if err := sess.Flush(); err != nil {
		t.Fatal(err)
	}
	waitCond(t, 10*time.Second, func() bool {
		return planeProgrammed(edge.DataPlane(), ch, 1) && planeProgrammed(core.DataPlane(), ch, 1)
	}, "join to converge")

	src, err := dataplane.NewSource(core.DataAddr(), ch, dataplane.SourceOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	for i := 0; i < 5; i++ {
		if err := src.Send([]byte(fmt.Sprintf("pkt-%d", i+1))); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 5; i++ {
		if _, err := r.RecvTimeout(5 * time.Second); err != nil {
			t.Fatalf("pre-leave packet %d: %v", i+1, err)
		}
	}

	// Leave. The edge tears its entry down on the spot; the core's follows
	// as soon as the edge's next flush window (1ms here) carries the zero
	// aggregate upstream. Both must be gone well within a second.
	if err := sess.Unsubscribe(ch); err != nil {
		t.Fatal(err)
	}
	if err := sess.Flush(); err != nil {
		t.Fatal(err)
	}
	waitCond(t, time.Second, func() bool {
		_, edgeHas := edge.DataPlane().Route(ch)
		_, coreHas := core.DataPlane().Route(ch)
		return !edgeHas && !coreHas && core.SubscriberCount(ch) == 0
	}, "leave to tear down both FIB entries")

	// Packets injected now die at the core's FIB as unmatched drops.
	before := core.DataPlane().Stats()
	for i := 0; i < 3; i++ {
		if err := src.Send([]byte("late")); err != nil {
			t.Fatal(err)
		}
	}
	waitCond(t, 5*time.Second, func() bool {
		st := core.DataPlane().Stats()
		return st.FIB.UnmatchedDrops >= before.FIB.UnmatchedDrops+3
	}, "late packets to be dropped at the core FIB")
	if pkt, err := r.RecvTimeout(100 * time.Millisecond); err == nil {
		t.Fatalf("received seq %d after leave", pkt.Seq)
	}
	if st := core.DataPlane().Stats(); st.Replicated > 5 {
		t.Errorf("core replicated %d packets, want exactly the 5 pre-leave", st.Replicated)
	}
}
