//go:build !(linux && (amd64 || arm64))

package dataplane

// newFiller returns the portable filler: one blocking read per batch. The
// batch structure is unchanged, so the forwarding loop is identical; only
// the drain width differs.
func (p *Plane) newFiller(q *queue, b *readBatch) func() bool { return p.singleFiller(q, b) }
