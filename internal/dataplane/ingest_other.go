//go:build !(linux && (amd64 || arm64))

package dataplane

// newFiller returns the portable filler: one blocking read per batch. The
// batch structure is unchanged, so the forwarding loop is identical; only
// the drain width differs. Oversized datagrams keep MSG_TRUNC parity in
// singleFiller: silently-truncating platforms overfill the slot stride, and
// erroring platforms (winsock) are classified by oversizeReadErr — both
// land in the same truncated-drop accounting as the linux raw path.
func (p *Plane) newFiller(q *queue, b *readBatch) func() bool { return p.singleFiller(q, b) }
