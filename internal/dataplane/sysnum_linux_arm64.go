package dataplane

// sendmmsg postdates the syscall package's API freeze, so its number is not
// exported there; 269 is __NR_sendmmsg on linux/arm64.
const sysSENDMMSG = 269
