package dataplane

import (
	"bytes"
	"net/netip"
	"sync"
	"testing"
	"time"

	"repro/internal/wire"
)

func planeAddrPort(t *testing.T, p *Plane) netip.AddrPort {
	t.Helper()
	ap, err := netip.ParseAddrPort(p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	return ap
}

func srPacket(t *testing.T, suffix uint32, groups [][]wire.HopEntry, payload []byte) []byte {
	t.Helper()
	srh, err := wire.AppendExtHeader(nil, groups)
	if err != nil {
		t.Fatal(err)
	}
	pkt := wire.DataPacket{
		Channel: testChannel(suffix),
		Seq:     1,
		Flags:   wire.DataFlagSrcRoute,
		Payload: append(srh, payload...),
	}
	return pkt.AppendTo(nil)
}

// TestSrcRouteChainZeroFIB forwards a packet down a two-plane chain (core →
// edge) purely off the extension header: neither plane has any FIB entry,
// the core pops depth 0 and the edge pops depth 1, and the receiver gets
// the application payload with the routing stack stripped.
func TestSrcRouteChainZeroFIB(t *testing.T) {
	edge := mustPlane(t, Options{HopID: 2})
	core := mustPlane(t, Options{HopID: 1})
	sink := mustReceiver(t)
	core.SetPort(3, planeAddrPort(t, edge))
	edge.SetPort(7, sink.addrPort())

	payload := []byte("source routed payload")
	raw := srPacket(t, 42, [][]wire.HopEntry{
		{{Hop: 1, OIFs: 1 << 3}},
		{{Hop: 2, OIFs: 1 << 7}},
	}, payload)

	src, err := NewSource(core.Addr(), testChannel(42), SourceOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	if _, err := src.conn.Write(raw); err != nil {
		t.Fatal(err)
	}

	pkt, err := sink.RecvTimeout(2 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(pkt.Payload, payload) {
		t.Fatalf("payload = %q, want %q", pkt.Payload, payload)
	}
	if pkt.Flags&wire.DataFlagSrcRoute == 0 {
		t.Fatal("delivered packet lost its source-route flag")
	}
	if pkt.Channel != testChannel(42) {
		t.Fatalf("channel = %v", pkt.Channel)
	}
	for name, p := range map[string]*Plane{"core": core, "edge": edge} {
		s := p.Stats()
		if s.SRForwarded != 1 || s.SRFallback != 0 || s.SRBad != 0 {
			t.Errorf("%s: SR stats = %d/%d/%d, want 1/0/0", name, s.SRForwarded, s.SRFallback, s.SRBad)
		}
		if s.FIB.Lookups != 0 {
			t.Errorf("%s: header fast path touched the FIB: %+v", name, s.FIB)
		}
	}
}

// TestSrcRouteFallbacks drives every fallback rule: header-unaware plane,
// exhausted stack, foreign hop, and malformed header all take the packed
// FIB path (and still deliver when a route exists).
func TestSrcRouteFallbacks(t *testing.T) {
	p := mustPlane(t, Options{HopID: 5})
	sink := mustReceiver(t)
	p.SetPort(0, sink.addrPort())
	ch := testChannel(7)
	p.SetRoute(ch, 1<<0)

	recvOne := func(t *testing.T, want []byte) {
		t.Helper()
		pkt, err := sink.RecvTimeout(2 * time.Second)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(pkt.Payload, want) {
			t.Fatalf("payload = %q, want %q", pkt.Payload, want)
		}
	}
	stats := func() (fwd, fb, bad uint64) {
		s := p.Stats()
		return s.SRForwarded, s.SRFallback, s.SRBad
	}

	t.Run("exhausted stack", func(t *testing.T) {
		// A stack for some other hop, already consumed: cursor == length.
		srh, err := wire.AppendExtHeaderPopped(nil, [][]wire.HopEntry{{{Hop: 9, OIFs: 1}}}, 1)
		if err != nil {
			t.Fatal(err)
		}
		payload := []byte("past the tree")
		pkt := wire.DataPacket{Channel: ch, Seq: 1, Flags: wire.DataFlagSrcRoute, Payload: append(srh, payload...)}
		if n := p.HandlePacket(pkt.AppendTo(nil)); n != 1 {
			t.Fatalf("fanout = %d", n)
		}
		recvOne(t, payload)
		if fwd, fb, _ := stats(); fwd != 0 || fb != 1 {
			t.Fatalf("fwd/fb = %d/%d, want 0/1", fwd, fb)
		}
	})
	t.Run("foreign hop", func(t *testing.T) {
		payload := []byte("foreign hop")
		raw := srPacket(t, 7, [][]wire.HopEntry{{{Hop: 6, OIFs: 1 << 9}}}, payload)
		if n := p.HandlePacket(raw); n != 1 {
			t.Fatalf("fanout = %d", n)
		}
		recvOne(t, payload)
		if _, fb, _ := stats(); fb != 2 {
			t.Fatalf("fallback = %d, want 2", fb)
		}
	})
	t.Run("malformed header", func(t *testing.T) {
		pkt := wire.DataPacket{Channel: ch, Seq: 2, Flags: wire.DataFlagSrcRoute, Payload: []byte{0xff}}
		if n := p.HandlePacket(pkt.AppendTo(nil)); n != 1 {
			t.Fatalf("fanout = %d", n)
		}
		// The receiver cannot strip a malformed header; it surfaces the
		// decode error rather than handing up routing bytes as payload.
		if _, err := sink.RecvTimeout(2 * time.Second); err == nil {
			t.Fatal("malformed source-routed packet decoded cleanly at the receiver")
		}
		if _, _, bad := stats(); bad != 1 {
			t.Fatalf("bad = %d, want 1", bad)
		}
	})
	t.Run("header-unaware plane", func(t *testing.T) {
		p.SetHopID(0)
		defer p.SetHopID(5)
		payload := []byte("unaware hop")
		raw := srPacket(t, 7, [][]wire.HopEntry{{{Hop: 5, OIFs: 1 << 9}}}, payload)
		if n := p.HandlePacket(raw); n != 1 {
			t.Fatalf("fanout = %d", n)
		}
		recvOne(t, payload)
		if _, fb, _ := stats(); fb != 3 {
			t.Fatalf("fallback = %d, want 3", fb)
		}
	})
	// Every fallback above went through a real FIB lookup.
	if s := p.Stats(); s.FIB.Matched != 4 {
		t.Fatalf("FIB matched = %d, want 4", s.FIB.Matched)
	}
}

// TestSrcRouteSourceReceiverRoundTrip exercises the Source/Receiver ends:
// SetSourceRoute makes every Send carry the stack, receivers see clean
// payloads, and clearing it returns to plain packets mid-stream.
func TestSrcRouteSourceReceiverRoundTrip(t *testing.T) {
	p := mustPlane(t, Options{HopID: 1})
	sink := mustReceiver(t)
	p.SetPort(2, sink.addrPort())
	ch := testChannel(11)
	p.SetRoute(ch, 1<<2) // fallback route; the header should win while set

	src, err := NewSource(p.Addr(), ch, SourceOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	srh, err := wire.AppendExtHeader(nil, [][]wire.HopEntry{{{Hop: 1, OIFs: 1 << 2}}})
	if err != nil {
		t.Fatal(err)
	}
	if err := src.SetSourceRoute(srh); err != nil {
		t.Fatal(err)
	}
	if !src.SourceRouted() {
		t.Fatal("SourceRouted = false after SetSourceRoute")
	}
	if err := src.Send([]byte("routed")); err != nil {
		t.Fatal(err)
	}
	pkt, err := sink.RecvTimeout(2 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(pkt.Payload, []byte("routed")) || pkt.Flags&wire.DataFlagSrcRoute == 0 {
		t.Fatalf("routed packet = %q flags %#x", pkt.Payload, pkt.Flags)
	}
	if err := src.SetSourceRoute(nil); err != nil {
		t.Fatal(err)
	}
	if err := src.Send([]byte("plain")); err != nil {
		t.Fatal(err)
	}
	pkt, err = sink.RecvTimeout(2 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(pkt.Payload, []byte("plain")) || pkt.Flags&wire.DataFlagSrcRoute != 0 {
		t.Fatalf("plain packet = %q flags %#x", pkt.Payload, pkt.Flags)
	}
	if s := p.Stats(); s.SRForwarded != 1 || s.FIB.Matched != 1 {
		t.Fatalf("SRForwarded/FIB.Matched = %d/%d, want 1/1", s.SRForwarded, s.FIB.Matched)
	}
	// A header budget violation is the source's error, not a silent drop.
	if err := src.SetSourceRoute([]byte{1}); err == nil {
		t.Fatal("SetSourceRoute accepted a malformed header")
	}
	big := make([]byte, wire.MaxDataPayload)
	if err := src.SetSourceRoute(srh); err != nil {
		t.Fatal(err)
	}
	if err := src.Send(big); err == nil {
		t.Fatal("Send accepted payload + header over MaxDataPayload")
	}
}

// TestSrcRouteForwardNoAlloc pins the header fast path — decode, parse,
// pop, replicate — at zero allocations, same bar as the FIB path.
func TestSrcRouteForwardNoAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race-mode sync.Pool instrumentation allocates")
	}
	p := mustPlane(t, Options{HopID: 3})
	sink := mustReceiver(t)
	p.SetPort(1, sink.addrPort())
	raw := srPacket(t, 9, [][]wire.HopEntry{{{Hop: 3, OIFs: 1 << 1}}}, []byte("x"))
	cursorOff := wire.DataHeaderSize + 1
	// Warm-up primes the egress buffer pool and fills the queue to its
	// steady state, as in TestReplicateZeroAlloc.
	for i := 0; i < 20000; i++ {
		p.HandlePacket(raw)
		raw[cursorOff] = wire.ExtHeaderFixed
	}
	allocs := testing.AllocsPerRun(5000, func() {
		if n := p.HandlePacket(raw); n != 1 {
			t.Fatal("not forwarded off the header")
		}
		raw[cursorOff] = wire.ExtHeaderFixed // rewind the popped cursor
	})
	if allocs != 0 {
		t.Errorf("header fast path allocates %.1f/op, want 0", allocs)
	}
	if s := p.Stats(); s.SRForwarded == 0 || s.FIB.Matched != 0 {
		t.Fatalf("SRForwarded = %d, FIB.Matched = %d", s.SRForwarded, s.FIB.Matched)
	}
}

// TestSrcRouteRaceChurn interleaves header-mode forwarding with FIB churn
// and route-mode switches: one goroutine hammers HandlePacket with
// source-routed packets, one churns SetRoute over the same channels, one
// flips the plane between header-aware and unaware, and one flips the
// source between routed and plain. Run under -race.
func TestSrcRouteRaceChurn(t *testing.T) {
	p := mustPlane(t, Options{HopID: 4})
	sink := mustReceiver(t)
	p.SetPort(0, sink.addrPort())
	p.SetPort(1, sink.addrPort())

	const lanes = 8
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(4)
	go func() { // forwarding
		defer wg.Done()
		raw := srPacket(t, 1, [][]wire.HopEntry{{{Hop: 4, OIFs: 0b11}}}, []byte("race"))
		cursorOff := wire.DataHeaderSize + 1
		for {
			select {
			case <-stop:
				return
			default:
			}
			p.HandlePacket(raw)
			raw[cursorOff] = wire.ExtHeaderFixed
		}
	}()
	go func() { // FIB churn over the same channels
		defer wg.Done()
		i := 0
		for {
			select {
			case <-stop:
				return
			default:
			}
			ch := testChannel(uint32(i % lanes))
			if i%2 == 0 {
				p.SetRoute(ch, 0b11)
			} else {
				p.SetRoute(ch, 0)
			}
			i++
		}
	}()
	go func() { // header-aware ↔ unaware
		defer wg.Done()
		on := true
		for {
			select {
			case <-stop:
				return
			default:
			}
			if on {
				p.SetHopID(0)
			} else {
				p.SetHopID(4)
			}
			on = !on
		}
	}()
	go func() { // source route set ↔ cleared
		defer wg.Done()
		src, err := NewSource(p.Addr(), testChannel(1), SourceOptions{})
		if err != nil {
			t.Error(err)
			return
		}
		defer src.Close()
		srh, _ := wire.AppendExtHeader(nil, [][]wire.HopEntry{{{Hop: 4, OIFs: 1}}})
		on := true
		for {
			select {
			case <-stop:
				return
			default:
			}
			if on {
				src.SetSourceRoute(srh)
			} else {
				src.SetSourceRoute(nil)
			}
			src.Send([]byte("churn"))
			on = !on
		}
	}()
	time.Sleep(300 * time.Millisecond)
	close(stop)
	wg.Wait()
	s := p.Stats()
	if s.SRForwarded+s.SRFallback == 0 {
		t.Fatal("no source-routed packets processed")
	}
}
