package dataplane

// sendmmsg postdates the syscall package's API freeze, so its number is not
// exported there; 307 is __NR_sendmmsg on linux/amd64.
const sysSENDMMSG = 307
