//go:build linux && (amd64 || arm64)

package dataplane

import (
	"context"
	"net"
	"syscall"
)

// listenQueues opens the plane's ingest sockets. With n == 1 it is a plain
// ListenUDP, byte-for-byte the portable path. With n > 1 it binds n sockets
// to the same address under SO_REUSEPORT: the kernel hashes each datagram's
// 4-tuple onto one of the sockets, so a given source's packets always land
// on the same queue (per-source ordering holds) while distinct sources
// spread across all of them — receive-side scaling without a user-space
// dispatcher.
func listenQueues(listen string, n int) ([]*net.UDPConn, error) {
	if n <= 1 {
		c, err := listenOne(listen)
		if err != nil {
			return nil, err
		}
		return []*net.UDPConn{c}, nil
	}
	lc := net.ListenConfig{Control: func(network, address string, rc syscall.RawConn) error {
		var serr error
		if err := rc.Control(func(fd uintptr) {
			serr = syscall.SetsockoptInt(int(fd), syscall.SOL_SOCKET, soReusePort, 1)
		}); err != nil {
			return err
		}
		return serr
	}}
	conns := make([]*net.UDPConn, 0, n)
	fail := func(err error) ([]*net.UDPConn, error) {
		for _, c := range conns {
			c.Close()
		}
		return nil, err
	}
	for i := 0; i < n; i++ {
		pc, err := lc.ListenPacket(context.Background(), "udp", listen)
		if err != nil {
			return fail(err)
		}
		conns = append(conns, pc.(*net.UDPConn))
		if i == 0 {
			// A ":0" listen resolves on the first bind; siblings must join
			// that concrete port, not draw their own.
			listen = conns[0].LocalAddr().String()
		}
	}
	return conns, nil
}
