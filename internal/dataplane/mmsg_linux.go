//go:build linux && (amd64 || arm64)

package dataplane

import (
	"syscall"
	"unsafe"
)

// Kernel-batched datagram I/O: recvmmsg drains up to a full read batch per
// syscall and sendmmsg pushes a whole egress burst per syscall, so the
// per-datagram syscall cost — the dominant term in the single-socket plane's
// ~80k pps ceiling — is amortized over the batch. The mmsghdr/iovec arrays
// are preallocated per queue (ingest) and per port (egress) and point into
// long-lived buffers, so steady-state batched I/O allocates nothing.

// soReusePort is SO_REUSEPORT, which the frozen syscall package predates.
const soReusePort = 0xf

// mmsghdr mirrors struct mmsghdr: a Msghdr plus the kernel-written datagram
// length. The trailing pad keeps the array stride at the C layout's 8-byte
// alignment on both supported arches.
type mmsghdr struct {
	hdr syscall.Msghdr
	n   uint32
	_   [4]byte
}

// recvmmsg receives up to len(hdrs) datagrams in one syscall. Each filled
// hdr carries the datagram length in .n and kernel flags (MSG_TRUNC for an
// oversized datagram) in .hdr.Flags.
func recvmmsg(fd uintptr, hdrs []mmsghdr, flags int) (int, syscall.Errno) {
	n, _, errno := syscall.Syscall6(syscall.SYS_RECVMMSG,
		fd, uintptr(unsafe.Pointer(&hdrs[0])), uintptr(len(hdrs)),
		uintptr(flags), 0, 0)
	return int(n), errno
}

// sendmmsg sends up to len(hdrs) datagrams in one syscall and returns how
// many the kernel accepted.
func sendmmsg(fd uintptr, hdrs []mmsghdr, flags int) (int, syscall.Errno) {
	n, _, errno := syscall.Syscall6(sysSENDMMSG,
		fd, uintptr(unsafe.Pointer(&hdrs[0])), uintptr(len(hdrs)),
		uintptr(flags), 0, 0)
	return int(n), errno
}
