//go:build !(linux && (amd64 || arm64))

package dataplane

// newFlusher returns the portable burst flush: the writer still coalesces
// its queue into bursts (the accounting and backpressure are identical),
// it just pays one write syscall per datagram.
func (o *outPort) newFlusher(opts Options) func([]*[]byte) { return o.flushSerial }
