package dataplane

import (
	"bytes"
	"fmt"
	"net"
	"net/netip"
	"os"
	"testing"
	"time"

	"repro/internal/addr"
	"repro/internal/obs"
	"repro/internal/wire"
)

func testChannel(suffix uint32) addr.Channel {
	return addr.Channel{S: addr.MustParse("171.64.1.1"), E: addr.ExpressAddr(suffix)}
}

func mustPlane(t *testing.T, opts Options) *Plane {
	t.Helper()
	p, err := NewPlane(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })
	return p
}

func mustReceiver(t *testing.T) *Receiver {
	t.Helper()
	r, err := NewReceiver()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { r.Close() })
	return r
}

func (r *Receiver) addrPort() netip.AddrPort {
	return r.conn.LocalAddr().(*net.UDPAddr).AddrPort()
}

// TestPlaneReplicates pushes packets through a live plane: two registered
// ports on one route, every packet delivered to both, payload and header
// intact, in order.
func TestPlaneReplicates(t *testing.T) {
	p := mustPlane(t, Options{})
	r1, r2 := mustReceiver(t), mustReceiver(t)
	p.SetPort(0, r1.addrPort())
	p.SetPort(5, r2.addrPort())
	ch := testChannel(9)
	p.SetRoute(ch, 1<<0|1<<5)

	src, err := NewSource(p.Addr(), ch, SourceOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()

	const n = 20
	for i := 0; i < n; i++ {
		if err := src.Send([]byte(fmt.Sprintf("payload-%d", i+1))); err != nil {
			t.Fatal(err)
		}
	}
	for name, r := range map[string]*Receiver{"r1": r1, "r2": r2} {
		for i := 1; i <= n; i++ {
			pkt, err := r.RecvTimeout(2 * time.Second)
			if err != nil {
				t.Fatalf("%s: packet %d: %v", name, i, err)
			}
			if pkt.Channel != ch {
				t.Fatalf("%s: channel = %v, want %v", name, pkt.Channel, ch)
			}
			if pkt.Seq != uint32(i) {
				t.Fatalf("%s: seq = %d, want %d (reordered or lost)", name, pkt.Seq, i)
			}
			if want := fmt.Sprintf("payload-%d", i); string(pkt.Payload) != want {
				t.Fatalf("%s: payload = %q, want %q", name, pkt.Payload, want)
			}
		}
	}
	st := p.Stats()
	if st.Packets != n || st.Replicated != 2*n || st.BadPackets != 0 {
		t.Errorf("stats = %+v, want %d packets / %d replicated", st, n, 2*n)
	}
}

// TestPlaneDropsUnrouted checks the Section 3.4 no-entry behaviour: a
// packet for a channel with no FIB entry is counted and dropped, and an OIF
// bit with no registered port is accounted without delivery.
func TestPlaneDropsUnrouted(t *testing.T) {
	p := mustPlane(t, Options{})
	ch := testChannel(1)
	src, err := NewSource(p.Addr(), ch, SourceOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()

	// No route at all.
	if err := src.Send([]byte("x")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return p.Stats().FIB.UnmatchedDrops == 1 }, "unmatched drop")

	// Route exists, but the interface has no registered destination.
	p.SetRoute(ch, 1<<3)
	if err := src.Send([]byte("y")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return p.Stats().NoPort == 1 }, "no-port account")
	if st := p.Stats(); st.Replicated != 0 || st.Sent != 0 {
		t.Errorf("stats = %+v, want nothing replicated", st)
	}
}

// TestPlaneBadPacket: a datagram shorter than the 12-byte header is counted
// as malformed, not forwarded.
func TestPlaneBadPacket(t *testing.T) {
	p := mustPlane(t, Options{})
	conn, err := net.Dial("udp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return p.Stats().BadPackets == 1 }, "bad-packet account")
}

// TestClearPortStopsDelivery: clearing a port stops replication to it even
// while the route still names its interface.
func TestClearPortStopsDelivery(t *testing.T) {
	p := mustPlane(t, Options{})
	r := mustReceiver(t)
	p.SetPort(2, r.addrPort())
	ch := testChannel(4)
	p.SetRoute(ch, 1<<2)
	src, err := NewSource(p.Addr(), ch, SourceOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()

	if err := src.Send([]byte("before")); err != nil {
		t.Fatal(err)
	}
	if pkt, err := r.RecvTimeout(2 * time.Second); err != nil || string(pkt.Payload) != "before" {
		t.Fatalf("before clear: (%v, %v)", pkt, err)
	}
	p.ClearPort(2)
	if err := src.Send([]byte("after")); err != nil {
		t.Fatal(err)
	}
	if pkt, err := r.RecvTimeout(100 * time.Millisecond); err == nil {
		t.Fatalf("received %q after ClearPort", pkt.Payload)
	} else if !os.IsTimeout(err) {
		t.Fatalf("want timeout, got %v", err)
	}
	waitFor(t, func() bool { return p.Stats().NoPort >= 1 }, "no-port account after clear")
}

// TestOutPortDropAccounting: with the writer stopped, the bounded queue
// fills and further sends drop-and-account instead of blocking.
func TestOutPortDropAccounting(t *testing.T) {
	conn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	o := newOutPort(conn, conn.LocalAddr().(*net.UDPAddr).AddrPort(),
		Options{QueueLen: 4}.withDefaults(), obs.NewHistogram())
	o.stop() // writer gone: nothing drains the queue
	for i := 0; i < 10; i++ {
		o.send([]byte("pkt"))
	}
	if drops := o.drops.Load(); drops < 6 {
		t.Errorf("drops = %d, want >= 6 (queue len 4, 10 sends, no writer)", drops)
	}
}

// TestSourcePacing: a paced source takes at least (n-1)/rate to emit n
// packets.
func TestSourcePacing(t *testing.T) {
	p := mustPlane(t, Options{})
	src, err := NewSource(p.Addr(), testChannel(2), SourceOptions{PacePPS: 1000})
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	start := time.Now()
	for i := 0; i < 50; i++ {
		if err := src.Send(nil); err != nil {
			t.Fatal(err)
		}
	}
	if elapsed := time.Since(start); elapsed < 40*time.Millisecond {
		t.Errorf("50 packets at 1000 pps took %v, want >= ~49ms", elapsed)
	}
}

// TestSetRouteZeroDeletes: mask 0 removes the entry entirely (the FIB miss
// path, not an empty forward).
func TestSetRouteZeroDeletes(t *testing.T) {
	p := mustPlane(t, Options{})
	ch := testChannel(3)
	p.SetRoute(ch, 1)
	if _, ok := p.Route(ch); !ok {
		t.Fatal("route not installed")
	}
	p.SetRoute(ch, 0)
	if _, ok := p.Route(ch); ok {
		t.Fatal("route survived SetRoute(ch, 0)")
	}
	if p.FIB().Len() != 0 {
		t.Errorf("fib len = %d, want 0", p.FIB().Len())
	}
}

// TestPacketTooLarge: the source refuses payloads beyond one datagram.
func TestPacketTooLarge(t *testing.T) {
	p := mustPlane(t, Options{})
	src, err := NewSource(p.Addr(), testChannel(2), SourceOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	if err := src.Send(bytes.Repeat([]byte{0}, wire.MaxDataPayload+1)); err == nil {
		t.Error("oversized payload accepted")
	}
}

func waitFor(t *testing.T, cond func() bool, what string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}
