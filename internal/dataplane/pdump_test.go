package dataplane

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

// TestPdumpDisarmedZeroAlloc pins the disarmed capture gate at zero cost to
// the hot path: with no ring armed, HandlePacket must stay allocation-free
// (the gate is one atomic pointer load). Guarded in CI with the other
// alloc pins.
func TestPdumpDisarmedZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race-mode sync.Pool instrumentation allocates")
	}
	p, buf := benchPlane(t, 4)
	if p.PdumpStats().Armed {
		t.Fatal("plane armed at birth")
	}
	for i := 0; i < 20000; i++ {
		p.HandlePacket(buf)
	}
	if allocs := testing.AllocsPerRun(5000, func() {
		p.HandlePacket(buf)
	}); allocs != 0 {
		t.Errorf("disarmed HandlePacket allocates %.1f times per packet, want 0", allocs)
	}
}

// TestPdumpArmedZeroAlloc pins the armed write path: claiming a slot,
// filling the fixed-size record and sealing the stamp must not touch the
// heap either — capture never perturbs the traffic it observes. Guarded in
// CI with the other alloc pins.
func TestPdumpArmedZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race-mode sync.Pool instrumentation allocates")
	}
	p, buf := benchPlane(t, 4)
	if err := p.PdumpStart(1024); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20000; i++ {
		p.HandlePacket(buf)
	}
	if allocs := testing.AllocsPerRun(5000, func() {
		p.HandlePacket(buf)
	}); allocs != 0 {
		t.Errorf("armed HandlePacket allocates %.1f times per packet, want 0", allocs)
	}
}

// TestPdumpCapture covers the record semantics: one ingress record per
// decoded packet, one egress record per replicated destination (tagged with
// the OIF), records survive PdumpStop, and re-arming while armed is
// refused.
func TestPdumpCapture(t *testing.T) {
	const fanout = 3
	p, buf := benchPlane(t, fanout)
	if err := p.PdumpStart(0); err != nil {
		t.Fatal(err)
	}
	if err := p.PdumpStart(0); err == nil {
		t.Fatal("double arm accepted")
	}

	const pkts = 5
	before := time.Now().UnixNano()
	for i := 0; i < pkts; i++ {
		if got := p.HandlePacket(buf); got != fanout {
			t.Fatalf("fanout = %d, want %d", got, fanout)
		}
	}
	st := p.PdumpStop()
	if st.Armed {
		t.Error("still armed after stop")
	}
	if want := uint64(pkts * (1 + fanout)); st.Captured != want {
		t.Errorf("captured = %d, want %d", st.Captured, want)
	}

	recs := p.PdumpFetch()
	if len(recs) != pkts*(1+fanout) {
		t.Fatalf("fetched %d records, want %d", len(recs), pkts*(1+fanout))
	}
	var ins, outs int
	oifs := map[uint8]int{}
	for i, r := range recs {
		switch r.Dir {
		case PdumpIn:
			ins++
		case PdumpOut:
			outs++
			oifs[r.Queue]++
		default:
			t.Fatalf("record %d: bad dir %d", i, r.Dir)
		}
		if r.Len != uint16(len(buf)) {
			t.Errorf("record %d: len = %d, want %d", i, r.Len, len(buf))
		}
		if r.NS < before || r.NS > time.Now().UnixNano() {
			t.Errorf("record %d: timestamp %d outside the run", i, r.NS)
		}
		if r.S.String() != "171.64.1.1" {
			t.Errorf("record %d: S = %v", i, r.S)
		}
		if i > 0 && r.NS < recs[i-1].NS {
			t.Errorf("record %d older than its predecessor", i)
		}
	}
	if ins != pkts || outs != pkts*fanout {
		t.Errorf("ins/outs = %d/%d, want %d/%d", ins, outs, pkts, pkts*fanout)
	}
	for oif := uint8(0); oif < fanout; oif++ {
		if oifs[oif] != pkts {
			t.Errorf("OIF %d: %d egress records, want %d", oif, oifs[oif], pkts)
		}
	}

	// Stopped: the hot path writes nothing more, the ring stays fetchable.
	p.HandlePacket(buf)
	if got := len(p.PdumpFetch()); got != len(recs) {
		t.Errorf("records grew to %d after stop", got)
	}
	// A fresh arm starts a fresh ring.
	if err := p.PdumpStart(0); err != nil {
		t.Fatal(err)
	}
	if got := len(p.PdumpFetch()); got != 0 {
		t.Errorf("re-armed ring holds %d stale records", got)
	}
}

// TestPdumpRingWrap: a full ring overwrites oldest-first and accounts the
// overwritten records as dropped; the fetch returns exactly the last
// `capacity` records in order.
func TestPdumpRingWrap(t *testing.T) {
	p, buf := benchPlane(t, 1)
	if err := p.PdumpStart(1); err != nil { // clamps up to the 64-slot minimum
		t.Fatal(err)
	}
	const pkts = 100 // 200 records (in+out) through a 64-slot ring
	for i := 0; i < pkts; i++ {
		p.HandlePacket(buf)
	}
	st := p.PdumpStop()
	if st.Capacity != 64 {
		t.Fatalf("capacity = %d, want 64", st.Capacity)
	}
	if st.Captured != 2*pkts {
		t.Errorf("captured = %d, want %d", st.Captured, 2*pkts)
	}
	if want := uint64(2*pkts - 64); st.Dropped != want {
		t.Errorf("dropped = %d, want %d", st.Dropped, want)
	}
	recs := p.PdumpFetch()
	if len(recs) != 64 {
		t.Fatalf("fetched %d records, want 64", len(recs))
	}
	for i := 1; i < len(recs); i++ {
		if recs[i].NS < recs[i-1].NS {
			t.Errorf("record %d out of order after wrap", i)
		}
	}
}

// TestPdumpEndpoints drives the facility end to end over the admin surface:
// arm with POST, capture live packets, drain with GET, disarm with POST —
// and wrong-method hits answer 405, not 404.
func TestPdumpEndpoints(t *testing.T) {
	p, buf := benchPlane(t, 2)
	reg := obs.NewRegistry()
	p.RegisterMetrics(reg)
	a, err := obs.NewAdmin("127.0.0.1:0", reg, nil, p.PdumpHandlers()...)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	base := "http://" + a.Addr()

	post := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Post(base+path, "", nil)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(b)
	}

	if code, body := post("/debug/pdump/start?cap=128"); code != 200 || !strings.Contains(body, `"armed": true`) {
		t.Fatalf("start = %d %q", code, body)
	}
	if code, _ := post("/debug/pdump/start"); code != http.StatusConflict {
		t.Errorf("second start = %d, want 409", code)
	}

	const pkts = 7
	for i := 0; i < pkts; i++ {
		p.HandlePacket(buf)
	}

	resp, err := http.Get(base + "/debug/pdump/fetch")
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Captured uint64 `json:"captured"`
		Records  []struct {
			Dir   string `json:"dir"`
			S     string `json:"s"`
			Seq   uint32 `json:"seq"`
			Len   int    `json:"len"`
			NS    int64  `json:"ns"`
			Queue uint8  `json:"queue"`
		} `json:"records"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatalf("fetch not JSON: %v", err)
	}
	resp.Body.Close()
	if want := pkts * 3; len(doc.Records) != want { // 1 in + 2 out per packet
		t.Fatalf("fetched %d records, want %d", len(doc.Records), want)
	}
	if doc.Records[0].S != "171.64.1.1" || doc.Records[0].NS == 0 {
		t.Errorf("first record = %+v", doc.Records[0])
	}
	dirs := map[string]int{}
	for _, r := range doc.Records {
		dirs[r.Dir]++
	}
	if dirs["in"] != pkts || dirs["out"] != 2*pkts {
		t.Errorf("dirs = %v", dirs)
	}

	// Wrong methods: 405 with Allow, never 404.
	for path, wrong := range map[string]string{
		"/debug/pdump/start": http.MethodGet,
		"/debug/pdump/stop":  http.MethodGet,
		"/debug/pdump/fetch": http.MethodPost,
	} {
		req, _ := http.NewRequest(wrong, base+path, nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("%s %s = %d, want 405", wrong, path, resp.StatusCode)
		}
		if resp.Header.Get("Allow") == "" {
			t.Errorf("%s %s: missing Allow header", wrong, path)
		}
	}

	if code, body := post("/debug/pdump/stop"); code != 200 || !strings.Contains(body, `"armed": false`) {
		t.Errorf("stop = %d %q", code, body)
	}
}

// TestDrainEgress: packets accepted for replication before a graceful stop
// leave through the egress writers before Close tears the ports down.
func TestDrainEgress(t *testing.T) {
	p, buf := benchPlane(t, 4)
	for i := 0; i < 500; i++ {
		p.HandlePacket(buf)
	}
	if !p.DrainEgress(5 * time.Second) {
		t.Fatal("egress queues did not drain")
	}
	// Drained means every accepted packet resolves one way or the other
	// (queue-full drops happened at enqueue time, not in the drain); the
	// writer may still be flushing its final burst, so poll briefly.
	deadline := time.Now().Add(5 * time.Second)
	for {
		st := p.Stats()
		if st.Sent+st.Drops+st.WriteErrors == st.Replicated {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("replicated %d but only %d resolved (sent %d drops %d errs %d)",
				st.Replicated, st.Sent+st.Drops+st.WriteErrors, st.Sent, st.Drops, st.WriteErrors)
		}
		time.Sleep(time.Millisecond)
	}
}
