package dataplane

import (
	"time"

	"repro/internal/wire"
)

// readBatch is one ingest worker's reusable scatter buffer: ReadBatch slots
// of MaxDataPacket bytes in a single contiguous allocation, filled by one
// socket drain and then processed slot by slot. The buffer lives for the
// worker's lifetime, so the steady-state read path allocates nothing.
type readBatch struct {
	buf   []byte // cap slots × MaxDataPacket, contiguous
	sizes []int  // datagram length per filled slot
	n     int    // filled slots
}

func newReadBatch(slots int) *readBatch {
	return &readBatch{
		buf:   make([]byte, slots*wire.MaxDataPacket),
		sizes: make([]int, slots),
	}
}

func (b *readBatch) cap() int { return len(b.sizes) }

// rawSlot returns slot i's full backing array, for the read syscall.
func (b *readBatch) rawSlot(i int) []byte {
	return b.buf[i*wire.MaxDataPacket : (i+1)*wire.MaxDataPacket]
}

// slot returns slot i trimmed to the received datagram.
func (b *readBatch) slot(i int) []byte {
	return b.buf[i*wire.MaxDataPacket : i*wire.MaxDataPacket+b.sizes[i]]
}

// singleFiller reads one datagram per fill with the portable API.
// ReadFromUDPAddrPort returns the source as a value type, so this path is
// also allocation-free — it just pays one poller round trip per packet.
func (p *Plane) singleFiller() func(*readBatch) bool {
	return func(b *readBatch) bool {
		b.n = 0
		n, _, err := p.conn.ReadFromUDPAddrPort(b.rawSlot(0))
		if err != nil {
			return false
		}
		b.sizes[0] = n
		b.n = 1
		return true
	}
}

// ingest is one worker: fill the batch from the socket, then run the
// forwarding procedure on every slot. The forward-latency histogram is fed
// one observation per batch — the per-packet mean of the batch — so the hot
// path pays one clock read per drain, not per packet (the same economy as
// realnet's per-window propagation clock).
func (p *Plane) ingest() {
	defer p.wg.Done()
	batch := newReadBatch(p.opts.ReadBatch)
	fill := p.newFiller()
	for {
		if !fill(batch) {
			if p.closed.Load() {
				return
			}
			// Transient socket error: back off briefly instead of spinning.
			time.Sleep(time.Millisecond)
			continue
		}
		if batch.n == 0 {
			continue
		}
		start := time.Now()
		var nbytes uint64
		for i := 0; i < batch.n; i++ {
			s := batch.slot(i)
			nbytes += uint64(len(s))
			p.HandlePacket(s)
		}
		p.pkts.Add(uint64(batch.n))
		p.bytes.Add(nbytes)
		p.forwardNs.Observe(uint64(time.Since(start)) / uint64(batch.n))
	}
}
