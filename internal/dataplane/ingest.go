package dataplane

import (
	"time"

	"repro/internal/wire"
)

// slotBytes is the stride of one read-batch slot: one byte beyond the
// largest valid packet, so any fill that reports a datagram longer than
// wire.MaxDataPacket — whether the extra byte actually landed (portable
// reads) or the kernel flagged MSG_TRUNC (recvmmsg) — is detectably
// oversized instead of silently truncated to a decodable prefix.
const slotBytes = wire.MaxDataPacket + 1

// readBatch is one ingest worker's reusable scatter buffer: ReadBatch slots
// of slotBytes bytes in a single contiguous allocation, filled by one
// socket drain and then processed slot by slot. The buffer lives for the
// worker's lifetime, so the steady-state read path allocates nothing.
type readBatch struct {
	buf   []byte // cap slots × slotBytes, contiguous
	sizes []int  // datagram length per filled slot (> MaxDataPacket: oversized)
	n     int    // filled slots
}

func newReadBatch(slots int) *readBatch {
	return &readBatch{
		buf:   make([]byte, slots*slotBytes),
		sizes: make([]int, slots),
	}
}

func (b *readBatch) cap() int { return len(b.sizes) }

// rawSlot returns slot i's full backing array, for the read syscall.
func (b *readBatch) rawSlot(i int) []byte {
	return b.buf[i*slotBytes : (i+1)*slotBytes]
}

// slot returns slot i trimmed to the received datagram.
func (b *readBatch) slot(i int) []byte {
	return b.buf[i*slotBytes : i*slotBytes+b.sizes[i]]
}

// singleFiller fills one datagram per call with the portable API — the
// non-linux ingest path and the linux fallback. ReadFromUDPAddrPort returns
// the source as a value type, so this path is also allocation-free — it
// just pays one poller round trip per packet.
//
// Oversized datagrams reach this path two ways, and both must land in the
// same truncated-drop accounting as the linux MSG_TRUNC path: platforms
// that silently truncate fill the slot's whole stride (slotBytes is one
// past the largest valid packet, so the length itself convicts), and
// platforms that error (winsock's WSAEMSGSIZE, after discarding the tail)
// are classified by oversizeReadErr and recorded as a full-stride slot so
// the forwarding loop drops and counts them identically.
func (p *Plane) singleFiller(q *queue, b *readBatch) func() bool {
	return func() bool {
		b.n = 0
		n, _, err := q.conn.ReadFromUDPAddrPort(b.rawSlot(0))
		if err != nil {
			if !oversizeReadErr(err) {
				return false
			}
			n = slotBytes
		}
		b.sizes[0] = n
		b.n = 1
		return true
	}
}

// ingest is one queue's worker: fill the batch from the socket, then run
// the forwarding procedure on every slot. The forward-latency histogram is
// fed one observation per batch — the per-packet mean of the batch — so the
// hot path pays one clock read per drain, not per packet (the same economy
// as realnet's per-window propagation clock). The same clock read closes
// the queue's once-per-second rate window feeding dp_queue_pps.
func (p *Plane) ingest(q *queue) {
	defer p.wg.Done()
	batch := newReadBatch(p.opts.ReadBatch)
	fill := p.newFiller(q, batch)
	var winStart time.Time
	var winPkts uint64
	for {
		if !fill() {
			if p.closed.Load() {
				return
			}
			// Transient socket error: back off briefly instead of spinning.
			time.Sleep(time.Millisecond)
			continue
		}
		if batch.n == 0 {
			continue
		}
		start := time.Now()
		var nbytes uint64
		for i := 0; i < batch.n; i++ {
			if batch.sizes[i] > wire.MaxDataPacket {
				// Oversized datagram: no valid packet is this long, and a
				// truncated prefix may still decode — drop it here rather
				// than forward a corrupt payload.
				p.truncated.Add(1)
				continue
			}
			s := batch.slot(i)
			nbytes += uint64(len(s))
			p.handlePacket(s, q.id)
		}
		q.pkts.Add(uint64(batch.n))
		p.pkts.Add(uint64(batch.n))
		p.bytes.Add(nbytes)
		p.batchH.ObserveInt(batch.n)
		p.forwardNs.Observe(uint64(time.Since(start)) / uint64(batch.n))

		winPkts += uint64(batch.n)
		if winStart.IsZero() {
			winStart = start
		} else if el := start.Sub(winStart); el >= time.Second {
			p.queuePPS.Observe(winPkts * uint64(time.Second) / uint64(el))
			winPkts, winStart = 0, start
		}
	}
}
