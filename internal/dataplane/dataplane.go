// Package dataplane is the EXPRESS forwarding fast path over real UDP
// sockets: the part of the system a line card would implement, grown from
// the paper's observation (Sections 2, 5) that the (S,E) channel model
// makes forwarding an exact-match lookup with no rendezvous, flooding, or
// shared-tree logic.
//
// Each router runs a Plane: a multi-queue ingest pipeline over UDP. On
// linux the plane binds Options.Queues sockets to one address under
// SO_REUSEPORT — the kernel's 4-tuple hash spreads sources across queues —
// and each queue's dedicated worker drains up to ReadBatch datagrams per
// recvmmsg syscall into a preallocated scatter array. Per packet the worker
// decodes the 12-byte wire.DataPacket framing (borrowing the read buffer),
// resolves the outgoing-interface set with a single lock-free
// fib.Table.ForwardMask lookup, and replicates the datagram to the
// registered egress port of every interface in the mask. Egress coalesces:
// each port's writer drains up to Burst queued packets per wakeup and
// pushes them in one sendmmsg. The steady-state hot path — decode, lookup,
// replicate — performs zero heap allocations: decoding borrows, the lookup
// is the packed FIB's atomic probe, and replication copies into pooled
// buffers handed to bounded per-port queues (the same backpressure design
// as realnet's per-neighbor control-plane queues: a slow or dead
// destination drops and accounts, it never stalls ingest).
//
// The plane holds no membership logic of its own. The control plane
// (realnet.Router) programs it through two tables:
//
//   - SetRoute(ch, mask): the (S,E) → OIF-bitmask FIB, updated on every
//     membership change and cleared by the neighbor-withdrawal path;
//   - SetPort(i, addr): interface index → downstream UDP address, learned
//     from the Hello handshake's DataPort and cleared when the session's
//     counts are withdrawn.
package dataplane

import (
	"math/bits"
	"net"
	"net/netip"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/addr"
	"repro/internal/fib"
	"repro/internal/obs"
	"repro/internal/wire"
)

// Options tunes a Plane. The zero value of every field selects a sensible
// default.
type Options struct {
	// Listen is the UDP address the plane ingests channel packets on.
	// Default "127.0.0.1:0".
	Listen string
	// Queues is the number of ingest queues. On linux each queue beyond the
	// first is its own SO_REUSEPORT socket drained by a dedicated worker;
	// the kernel hashes each source's 4-tuple onto one queue, so a single
	// source's packets stay ordered end to end while distinct sources scale
	// across cores. Elsewhere the workers share one socket (packets from
	// one source may then interleave across workers). Default 1, which
	// preserves strict arrival order on every platform.
	Queues int
	// QueueLen is the per-port bounded egress queue length, in packets.
	// When a destination's queue is full the packet is dropped and
	// accounted, never blocking ingest. Default 1024.
	QueueLen int
	// ReadBatch caps how many datagrams one ingest worker drains per
	// recvmmsg syscall (per socket wakeup on platforms without it).
	// Default 32.
	ReadBatch int
	// Burst caps how many queued packets one egress writer coalesces into
	// a single sendmmsg burst per wakeup. Default 32.
	Burst int
	// HopID is this plane's identity in source-routed extension headers
	// (wire.DataFlagSrcRoute): packets carrying a bitmap stack are forwarded
	// off the entry keyed by this ID with zero FIB lookups. 0 (the default)
	// means header-unaware — source-routed packets take the FIB path like
	// any other. Changeable at runtime with SetHopID.
	HopID uint16

	// forcePortable routes ingest through the portable one-datagram filler
	// even where the recvmmsg path is available; forceSerial does the same
	// for egress (per-datagram writes instead of sendmmsg bursts). Test
	// hooks for the fallback paths — unexported on purpose.
	forcePortable bool
	forceSerial   bool
}

func (o Options) withDefaults() Options {
	if o.Listen == "" {
		o.Listen = "127.0.0.1:0"
	}
	if o.Queues <= 0 {
		o.Queues = 1
	}
	if o.QueueLen <= 0 {
		o.QueueLen = 1024
	}
	if o.ReadBatch <= 0 {
		o.ReadBatch = 32
	}
	if o.Burst <= 0 {
		o.Burst = 32
	}
	return o
}

// Stats is a snapshot of the plane's counters.
type Stats struct {
	Packets     uint64 // datagrams ingested
	Bytes       uint64 // datagram bytes ingested
	BadPackets  uint64 // datagrams that failed to decode
	Truncated   uint64 // oversized datagrams dropped at ingest
	Replicated  uint64 // per-destination enqueues attempted
	NoPort      uint64 // OIF bits with no registered destination
	Sent        uint64 // datagrams written to downstream destinations
	Drops       uint64 // datagrams dropped on a full egress queue
	WriteErrors uint64 // datagrams lost to socket write errors

	SRForwarded uint64 // packets forwarded off the source-route header (no FIB lookup)
	SRFallback  uint64 // source-routed packets sent down the FIB path (exhausted stack, foreign hop, unaware plane)
	SRBad       uint64 // source-routed packets with a malformed extension header

	QueuePackets []uint64 // datagrams ingested per queue

	FIB fib.Stats // lookup outcomes (matched / unmatched / wrong-IIF)
}

// queue is one ingest lane: a socket (its own under SO_REUSEPORT on linux,
// shared elsewhere) plus the counters its worker maintains.
type queue struct {
	id   int
	conn *net.UDPConn
	pkts atomic.Uint64
}

// Plane is one router's UDP data plane.
type Plane struct {
	opts   Options
	conns  []*net.UDPConn // ingest sockets; conns[0] doubles as the egress socket
	queues []*queue
	fib    *fib.Table

	ports [fib.MaxInterfaces]atomic.Pointer[outPort]

	hopID atomic.Uint32 // uint16 hop identity; 0 = header-unaware

	pkts          atomic.Uint64
	bytes         atomic.Uint64
	badPkts       atomic.Uint64
	truncated     atomic.Uint64
	replicated    atomic.Uint64
	noPort        atomic.Uint64
	srForwarded   atomic.Uint64
	srFallback    atomic.Uint64
	srBad         atomic.Uint64
	sentPrev      atomic.Uint64 // sends accounted on retired ports
	dropsPrev     atomic.Uint64 // queue-full drops accounted on retired ports
	writeErrsPrev atomic.Uint64 // write errors accounted on retired ports

	forwardNs *obs.Histogram // per-packet forward latency (batch mean)
	fanoutH   *obs.Histogram // per-packet replication fan-out
	installNs *obs.Histogram // per-SetRoute FIB publication latency
	batchH    *obs.Histogram // datagrams drained per ingest batch
	burstH    *obs.Histogram // datagrams coalesced per egress burst
	queuePPS  *obs.Histogram // per-queue packet rate, sampled per second

	pdMuState // on-demand packet capture (pdump.go)

	closed atomic.Bool
	wg     sync.WaitGroup
}

// listenOne is the shared single-socket bind, used directly by the portable
// path and for queue 0 everywhere.
func listenOne(listen string) (*net.UDPConn, error) {
	ua, err := net.ResolveUDPAddr("udp", listen)
	if err != nil {
		return nil, err
	}
	return net.ListenUDP("udp", ua)
}

// NewPlane opens the ingest socket(s) and starts one worker per queue.
func NewPlane(opts Options) (*Plane, error) {
	opts = opts.withDefaults()
	conns, err := listenQueues(opts.Listen, opts.Queues)
	if err != nil {
		return nil, err
	}
	for _, c := range conns {
		// Deep socket buffers: ingest is one goroutine per queue, so bursts
		// ride in the kernel queue instead of dropping.
		c.SetReadBuffer(4 << 20)
		c.SetWriteBuffer(4 << 20)
	}
	p := &Plane{
		opts:      opts,
		conns:     conns,
		fib:       fib.New(),
		forwardNs: obs.NewHistogram(),
		fanoutH:   obs.NewHistogram(),
		installNs: obs.NewHistogram(),
		batchH:    obs.NewHistogram(),
		burstH:    obs.NewHistogram(),
		queuePPS:  obs.NewHistogram(),
	}
	p.hopID.Store(uint32(opts.HopID))
	for i := 0; i < opts.Queues; i++ {
		q := &queue{id: i, conn: conns[i%len(conns)]}
		p.queues = append(p.queues, q)
		p.wg.Add(1)
		go p.ingest(q)
	}
	return p, nil
}

// Addr returns the plane's UDP listen address (shared by every queue).
func (p *Plane) Addr() string { return p.conns[0].LocalAddr().String() }

// Port returns the plane's UDP listen port — what the router advertises in
// its upstream Hello so the parent can replicate to it.
func (p *Plane) Port() uint16 {
	return uint16(p.conns[0].LocalAddr().(*net.UDPAddr).Port)
}

// Queues returns the number of ingest queues the plane runs.
func (p *Plane) Queues() int { return len(p.queues) }

// FIB returns the plane's forwarding table (shared with the control plane
// that programs it; reads are lock-free).
func (p *Plane) FIB() *fib.Table { return p.fib }

// SetRoute programs the (S,E) route: mask is the OIF bitmask to replicate
// to, 0 deletes the route. Entries accept any incoming interface — in this
// overlay each plane has a single ingest address and only the source's
// upstream path feeds it, so the paper's RPF check degenerates to the
// exact-match itself.
func (p *Plane) SetRoute(ch addr.Channel, mask uint32) {
	start := time.Now()
	k := fib.Key{S: ch.S, G: ch.E}
	if mask == 0 {
		p.fib.Delete(k)
	} else {
		p.fib.Set(k, fib.Entry{IIF: -1, OIFs: mask})
	}
	p.installNs.Observe(uint64(time.Since(start)))
}

// RouteInstallSnapshot reports the distribution of SetRoute publication
// latency — the control-plane half of route-install→first-packet delay that
// the churn experiment (E14) tracks. Under the chunked-generation FIB this
// stays O(chunk) regardless of table size.
func (p *Plane) RouteInstallSnapshot() obs.HistSnapshot { return p.installNs.Snapshot() }

// Route returns the programmed OIF mask for ch (0, false when absent).
func (p *Plane) Route(ch addr.Channel) (uint32, bool) {
	e, ok := p.fib.Get(fib.Key{S: ch.S, G: ch.E})
	if !ok {
		return 0, false
	}
	return e.OIFs, true
}

// SetPort registers dst as the data-plane destination for interface i,
// replacing (and draining) any previous registration. Interfaces outside
// the FIB's 32-bit mask cannot carry data and are ignored.
func (p *Plane) SetPort(i int, dst netip.AddrPort) {
	if i < 0 || i >= fib.MaxInterfaces {
		return
	}
	port := newOutPort(p.conns[0], dst, p.opts, p.burstH)
	if old := p.ports[i].Swap(port); old != nil {
		p.retirePort(old)
	}
}

// ClearPort removes interface i's destination; in-flight packets for it are
// drained and dropped. Called by the control plane's withdrawal path, so a
// failed neighbor stops receiving data the moment its counts are withdrawn.
func (p *Plane) ClearPort(i int) {
	if i < 0 || i >= fib.MaxInterfaces {
		return
	}
	if old := p.ports[i].Swap(nil); old != nil {
		p.retirePort(old)
	}
}

// PortAddr returns interface i's registered destination, if any.
func (p *Plane) PortAddr(i int) (netip.AddrPort, bool) {
	if i < 0 || i >= fib.MaxInterfaces {
		return netip.AddrPort{}, false
	}
	if port := p.ports[i].Load(); port != nil {
		return port.dst, true
	}
	return netip.AddrPort{}, false
}

// retirePort stops a port's writer and folds its final counters into the
// plane-wide totals, so Stats stays monotonic across reprogramming.
func (p *Plane) retirePort(o *outPort) {
	o.stop()
	p.sentPrev.Add(o.sent.Load())
	p.dropsPrev.Add(o.drops.Load())
	p.writeErrsPrev.Add(o.writeErrs.Load())
}

// SetHopID changes the plane's source-route hop identity at runtime; 0
// turns the header fast path off (header-unaware). The control plane uses
// it when a router joins or leaves a source-routed domain.
func (p *Plane) SetHopID(hop uint16) { p.hopID.Store(uint32(hop)) }

// HopID returns the plane's source-route hop identity (0 = unaware).
func (p *Plane) HopID() uint16 { return uint16(p.hopID.Load()) }

// HandlePacket runs the forwarding procedure for one already-read datagram:
// decode the 12-byte header (borrowing, no copy), then either the
// source-route fast path (the packet carries its own OIF bitmap — zero FIB
// lookups) or one lock-free ForwardMask lookup, and replicate to every
// registered port in the mask. It returns the number of destinations
// targeted. This is the measured hot path — zero allocations in steady
// state; the ingest workers call it per slot of each read batch, and
// benchmarks call it directly.
func (p *Plane) HandlePacket(b []byte) int { return p.handlePacket(b, 0) }

// handlePacket is HandlePacket with the ingest queue id threaded through,
// so armed packet captures can attribute each record to its queue.
func (p *Plane) handlePacket(b []byte, qid int) int {
	var pkt wire.DataPacket
	if _, err := pkt.DecodeFromBytes(b); err != nil {
		p.badPkts.Add(1)
		return 0
	}
	if ring := p.pdArmed.Load(); ring != nil {
		ring.record(PdumpIn, uint8(qid), &pkt, len(b))
	}
	if pkt.Flags&wire.DataFlagSrcRoute != 0 {
		if fanout, done := p.forwardSrcRouted(&pkt, b); done {
			return fanout
		}
	}
	mask, disp := p.fib.ForwardMask(pkt.Channel.S, pkt.Channel.E, -1)
	if disp != fib.Forwarded {
		// Counted and dropped by the FIB's own counters — the EXPRESS
		// no-entry behaviour of Section 3.4.
		return 0
	}
	return p.replicate(&pkt, b, mask)
}

// forwardSrcRouted is the header fast path: parse the extension header in
// place, look this hop up in the current bitmap group, pop the group (a
// one-byte cursor write in the borrowed ingest buffer — per-destination
// copies happen downstream in outPort.send, so children receive the popped
// stack), and replicate off the header's bitmap with zero FIB lookups and
// zero allocations. done=false sends the packet down the packed-FIB path:
// the stack is exhausted (the packet is past its encoded tree), this hop is
// not in the group (rerouted path), this plane is header-unaware (HopID 0),
// or the header is malformed. Fallback keeps delivery correct whenever the
// tree computation and the actual topology disagree; it only costs the FIB
// state the header was meant to save.
func (p *Plane) forwardSrcRouted(pkt *wire.DataPacket, b []byte) (fanout int, done bool) {
	hop := uint16(p.hopID.Load())
	if hop == 0 {
		p.srFallback.Add(1)
		return 0, false
	}
	h, _, err := wire.ParseExtHeader(pkt.Payload)
	if err != nil {
		p.srBad.Add(1)
		return 0, false
	}
	mask, st := h.PopMask(hop)
	switch st {
	case wire.SRFound:
	case wire.SRMalformed:
		p.srBad.Add(1)
		return 0, false
	default: // SRExhausted, SRNotFound
		p.srFallback.Add(1)
		return 0, false
	}
	p.srForwarded.Add(1)
	return p.replicate(pkt, b, mask), true
}

// replicate fans the datagram out to every registered port in mask.
func (p *Plane) replicate(pkt *wire.DataPacket, b []byte, mask uint32) int {
	ring := p.pdArmed.Load()
	fanout := 0
	for m := mask; m != 0; m &= m - 1 {
		oif := bits.TrailingZeros32(m)
		port := p.ports[oif].Load()
		if port == nil {
			p.noPort.Add(1)
			continue
		}
		port.send(b)
		if ring != nil {
			ring.record(PdumpOut, uint8(oif), pkt, len(b))
		}
		fanout++
	}
	p.replicated.Add(uint64(fanout))
	p.fanoutH.ObserveInt(fanout)
	return fanout
}

// Stats returns a snapshot of the plane's counters.
func (p *Plane) Stats() Stats {
	s := Stats{
		Packets:      p.pkts.Load(),
		Bytes:        p.bytes.Load(),
		BadPackets:   p.badPkts.Load(),
		Truncated:    p.truncated.Load(),
		Replicated:   p.replicated.Load(),
		NoPort:       p.noPort.Load(),
		Sent:         p.sentPrev.Load(),
		Drops:        p.dropsPrev.Load(),
		WriteErrors:  p.writeErrsPrev.Load(),
		SRForwarded:  p.srForwarded.Load(),
		SRFallback:   p.srFallback.Load(),
		SRBad:        p.srBad.Load(),
		QueuePackets: make([]uint64, len(p.queues)),
		FIB:          p.fib.Stats(),
	}
	for i, q := range p.queues {
		s.QueuePackets[i] = q.pkts.Load()
	}
	for i := range p.ports {
		if port := p.ports[i].Load(); port != nil {
			s.Sent += port.sent.Load()
			s.Drops += port.drops.Load()
			s.WriteErrors += port.writeErrs.Load()
		}
	}
	return s
}

// DrainEgress waits until every registered port's egress queue is empty, or
// the timeout elapses, and reports whether the drain completed. A graceful
// daemon shutdown calls this before Close so packets already accepted for
// replication leave the box instead of being dropped by the port teardown —
// the difference between a clean SIGTERM stop and a crash, as seen by a
// downstream receiver.
func (p *Plane) DrainEgress(timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for {
		empty := true
		for i := range p.ports {
			if port := p.ports[i].Load(); port != nil && len(port.out) > 0 {
				empty = false
				break
			}
		}
		if empty {
			return true
		}
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(time.Millisecond)
	}
}

// Close shuts the plane down: the sockets close (unblocking the ingest
// workers), the workers are joined, then every port writer is drained.
func (p *Plane) Close() error {
	if p.closed.Swap(true) {
		return nil
	}
	var err error
	for _, c := range p.conns {
		if cerr := c.Close(); err == nil {
			err = cerr
		}
	}
	p.wg.Wait()
	for i := range p.ports {
		if old := p.ports[i].Swap(nil); old != nil {
			p.retirePort(old)
		}
	}
	return err
}
