// Package dataplane is the EXPRESS forwarding fast path over real UDP
// sockets: the part of the system a line card would implement, grown from
// the paper's observation (Sections 2, 5) that the (S,E) channel model
// makes forwarding an exact-match lookup with no rendezvous, flooding, or
// shared-tree logic.
//
// Each router runs a Plane: a UDP socket whose ingest workers read channel
// data packets (the 12-byte wire.DataPacket framing) in batches into a
// reusable scatter buffer, resolve the outgoing-interface set with a single
// lock-free fib.Table.ForwardMask lookup, and replicate the datagram to the
// registered egress port of every interface in the mask. The steady-state
// hot path — decode, lookup, replicate — performs zero heap allocations:
// decoding borrows from the read buffer, the lookup is the packed FIB's
// atomic probe, and replication copies into pooled buffers handed to
// bounded per-port queues (the same backpressure design as realnet's
// per-neighbor control-plane queues: a slow or dead destination drops and
// accounts, it never stalls ingest).
//
// The plane holds no membership logic of its own. The control plane
// (realnet.Router) programs it through two tables:
//
//   - SetRoute(ch, mask): the (S,E) → OIF-bitmask FIB, updated on every
//     membership change and cleared by the neighbor-withdrawal path;
//   - SetPort(i, addr): interface index → downstream UDP address, learned
//     from the Hello handshake's DataPort and cleared when the session's
//     counts are withdrawn.
package dataplane

import (
	"math/bits"
	"net"
	"net/netip"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/addr"
	"repro/internal/fib"
	"repro/internal/obs"
	"repro/internal/wire"
)

// Options tunes a Plane. The zero value of every field selects a sensible
// default.
type Options struct {
	// Listen is the UDP address the plane ingests channel packets on.
	// Default "127.0.0.1:0".
	Listen string
	// Workers is the number of ingest workers draining the socket. The
	// default 1 preserves datagram order end to end (one reader, FIFO
	// per-port queues, one writer per port); more workers raise throughput
	// but may reorder packets that arrive back to back.
	Workers int
	// QueueLen is the per-port bounded egress queue length, in packets.
	// When a destination's queue is full the packet is dropped and
	// accounted, never blocking ingest. Default 1024.
	QueueLen int
	// ReadBatch caps how many datagrams one ingest worker drains per socket
	// wakeup on platforms with batched reads. Default 32.
	ReadBatch int
}

func (o Options) withDefaults() Options {
	if o.Listen == "" {
		o.Listen = "127.0.0.1:0"
	}
	if o.Workers <= 0 {
		o.Workers = 1
	}
	if o.QueueLen <= 0 {
		o.QueueLen = 1024
	}
	if o.ReadBatch <= 0 {
		o.ReadBatch = 32
	}
	return o
}

// Stats is a snapshot of the plane's counters.
type Stats struct {
	Packets    uint64 // datagrams ingested
	Bytes      uint64 // datagram bytes ingested
	BadPackets uint64 // datagrams that failed to decode
	Replicated uint64 // per-destination enqueues attempted
	NoPort     uint64 // OIF bits with no registered destination
	Sent       uint64 // datagrams written to downstream destinations
	Drops      uint64 // datagrams dropped (queue full or write error)

	FIB fib.Stats // lookup outcomes (matched / unmatched / wrong-IIF)
}

// Plane is one router's UDP data plane.
type Plane struct {
	opts Options
	conn *net.UDPConn
	fib  *fib.Table

	ports [fib.MaxInterfaces]atomic.Pointer[outPort]

	pkts       atomic.Uint64
	bytes      atomic.Uint64
	badPkts    atomic.Uint64
	replicated atomic.Uint64
	noPort     atomic.Uint64
	sentPrev   atomic.Uint64 // sends accounted on retired ports
	dropsPrev  atomic.Uint64 // drops accounted on retired ports

	forwardNs *obs.Histogram // per-packet forward latency (batch mean)
	fanoutH   *obs.Histogram // per-packet replication fan-out
	installNs *obs.Histogram // per-SetRoute FIB publication latency

	closed atomic.Bool
	wg     sync.WaitGroup
}

// NewPlane opens the ingest socket and starts the ingest workers.
func NewPlane(opts Options) (*Plane, error) {
	opts = opts.withDefaults()
	ua, err := net.ResolveUDPAddr("udp", opts.Listen)
	if err != nil {
		return nil, err
	}
	conn, err := net.ListenUDP("udp", ua)
	if err != nil {
		return nil, err
	}
	// Deep socket buffers: ingest is one goroutine per worker, so bursts
	// ride in the kernel queue instead of dropping.
	conn.SetReadBuffer(4 << 20)
	conn.SetWriteBuffer(4 << 20)
	p := &Plane{
		opts:      opts,
		conn:      conn,
		fib:       fib.New(),
		forwardNs: obs.NewHistogram(),
		fanoutH:   obs.NewHistogram(),
		installNs: obs.NewHistogram(),
	}
	for i := 0; i < opts.Workers; i++ {
		p.wg.Add(1)
		go p.ingest()
	}
	return p, nil
}

// Addr returns the plane's UDP listen address.
func (p *Plane) Addr() string { return p.conn.LocalAddr().String() }

// Port returns the plane's UDP listen port — what the router advertises in
// its upstream Hello so the parent can replicate to it.
func (p *Plane) Port() uint16 {
	return uint16(p.conn.LocalAddr().(*net.UDPAddr).Port)
}

// FIB returns the plane's forwarding table (shared with the control plane
// that programs it; reads are lock-free).
func (p *Plane) FIB() *fib.Table { return p.fib }

// SetRoute programs the (S,E) route: mask is the OIF bitmask to replicate
// to, 0 deletes the route. Entries accept any incoming interface — in this
// overlay each plane has a single ingest socket and only the source's
// upstream path feeds it, so the paper's RPF check degenerates to the
// exact-match itself.
func (p *Plane) SetRoute(ch addr.Channel, mask uint32) {
	start := time.Now()
	k := fib.Key{S: ch.S, G: ch.E}
	if mask == 0 {
		p.fib.Delete(k)
	} else {
		p.fib.Set(k, fib.Entry{IIF: -1, OIFs: mask})
	}
	p.installNs.Observe(uint64(time.Since(start)))
}

// RouteInstallSnapshot reports the distribution of SetRoute publication
// latency — the control-plane half of route-install→first-packet delay that
// the churn experiment (E14) tracks. Under the chunked-generation FIB this
// stays O(chunk) regardless of table size.
func (p *Plane) RouteInstallSnapshot() obs.HistSnapshot { return p.installNs.Snapshot() }

// Route returns the programmed OIF mask for ch (0, false when absent).
func (p *Plane) Route(ch addr.Channel) (uint32, bool) {
	e, ok := p.fib.Get(fib.Key{S: ch.S, G: ch.E})
	if !ok {
		return 0, false
	}
	return e.OIFs, true
}

// SetPort registers dst as the data-plane destination for interface i,
// replacing (and draining) any previous registration. Interfaces outside
// the FIB's 32-bit mask cannot carry data and are ignored.
func (p *Plane) SetPort(i int, dst netip.AddrPort) {
	if i < 0 || i >= fib.MaxInterfaces {
		return
	}
	port := newOutPort(p.conn, dst, p.opts.QueueLen)
	if old := p.ports[i].Swap(port); old != nil {
		p.retirePort(old)
	}
}

// ClearPort removes interface i's destination; in-flight packets for it are
// drained and dropped. Called by the control plane's withdrawal path, so a
// failed neighbor stops receiving data the moment its counts are withdrawn.
func (p *Plane) ClearPort(i int) {
	if i < 0 || i >= fib.MaxInterfaces {
		return
	}
	if old := p.ports[i].Swap(nil); old != nil {
		p.retirePort(old)
	}
}

// PortAddr returns interface i's registered destination, if any.
func (p *Plane) PortAddr(i int) (netip.AddrPort, bool) {
	if i < 0 || i >= fib.MaxInterfaces {
		return netip.AddrPort{}, false
	}
	if port := p.ports[i].Load(); port != nil {
		return port.dst, true
	}
	return netip.AddrPort{}, false
}

// retirePort stops a port's writer and folds its final counters into the
// plane-wide totals, so Stats stays monotonic across reprogramming.
func (p *Plane) retirePort(o *outPort) {
	o.stop()
	p.sentPrev.Add(o.sent.Load())
	p.dropsPrev.Add(o.drops.Load())
}

// HandlePacket runs the forwarding procedure for one already-read datagram:
// decode the 12-byte header (borrowing, no copy), one lock-free ForwardMask
// lookup, then replicate to every registered port in the mask. It returns
// the number of destinations targeted. This is the measured hot path —
// zero allocations in steady state; the ingest workers call it per slot of
// each read batch, and benchmarks call it directly.
func (p *Plane) HandlePacket(b []byte) int {
	var pkt wire.DataPacket
	if _, err := pkt.DecodeFromBytes(b); err != nil {
		p.badPkts.Add(1)
		return 0
	}
	mask, disp := p.fib.ForwardMask(pkt.Channel.S, pkt.Channel.E, -1)
	if disp != fib.Forwarded {
		// Counted and dropped by the FIB's own counters — the EXPRESS
		// no-entry behaviour of Section 3.4.
		return 0
	}
	fanout := 0
	for m := mask; m != 0; m &= m - 1 {
		port := p.ports[bits.TrailingZeros32(m)].Load()
		if port == nil {
			p.noPort.Add(1)
			continue
		}
		port.send(b)
		fanout++
	}
	p.replicated.Add(uint64(fanout))
	p.fanoutH.ObserveInt(fanout)
	return fanout
}

// Stats returns a snapshot of the plane's counters.
func (p *Plane) Stats() Stats {
	s := Stats{
		Packets:    p.pkts.Load(),
		Bytes:      p.bytes.Load(),
		BadPackets: p.badPkts.Load(),
		Replicated: p.replicated.Load(),
		NoPort:     p.noPort.Load(),
		Sent:       p.sentPrev.Load(),
		Drops:      p.dropsPrev.Load(),
		FIB:        p.fib.Stats(),
	}
	for i := range p.ports {
		if port := p.ports[i].Load(); port != nil {
			s.Sent += port.sent.Load()
			s.Drops += port.drops.Load()
		}
	}
	return s
}

// Close shuts the plane down: the socket closes (unblocking the ingest
// workers), the workers are joined, then every port writer is drained.
func (p *Plane) Close() error {
	if p.closed.Swap(true) {
		return nil
	}
	err := p.conn.Close()
	p.wg.Wait()
	for i := range p.ports {
		if old := p.ports[i].Swap(nil); old != nil {
			p.retirePort(old)
		}
	}
	return err
}
