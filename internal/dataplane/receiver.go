package dataplane

import (
	"net"
	"time"

	"repro/internal/wire"
)

// Receiver is a subscriber's data endpoint: a UDP socket whose port the
// subscriber advertises in its session Hello (SessionOptions.DataPort), so
// the edge router replicates its subscribed channels' packets here. One
// receiver can serve any number of subscribed channels — packets carry
// their full (S,E) identity, so demultiplexing is the caller's Recv loop.
type Receiver struct {
	conn *net.UDPConn
	buf  []byte
	// track accounts every decoded packet's sequence number with serial
	// (wraparound-safe) arithmetic; see SeqTracker. It aggregates across
	// channels — per-channel accounting belongs to the caller's demux.
	track SeqTracker
}

// NewReceiver opens a receiver on an ephemeral localhost port. Use
// NewReceiverAddr to bind elsewhere.
func NewReceiver() (*Receiver, error) { return NewReceiverAddr("127.0.0.1:0") }

// NewReceiverAddr opens a receiver on the given UDP address.
func NewReceiverAddr(listen string) (*Receiver, error) {
	ua, err := net.ResolveUDPAddr("udp", listen)
	if err != nil {
		return nil, err
	}
	conn, err := net.ListenUDP("udp", ua)
	if err != nil {
		return nil, err
	}
	conn.SetReadBuffer(4 << 20)
	return &Receiver{conn: conn, buf: make([]byte, wire.MaxDataPacket)}, nil
}

// Port returns the receiver's UDP port — the value to carry in the session
// Hello's DataPort.
func (r *Receiver) Port() uint16 {
	return uint16(r.conn.LocalAddr().(*net.UDPAddr).Port)
}

// Addr returns the receiver's UDP listen address.
func (r *Receiver) Addr() string { return r.conn.LocalAddr().String() }

// Recv blocks for the next data packet. The returned packet's payload
// borrows the receiver's internal buffer and is valid until the next Recv.
func (r *Receiver) Recv() (wire.DataPacket, error) {
	var pkt wire.DataPacket
	n, _, err := r.conn.ReadFromUDPAddrPort(r.buf)
	if err != nil {
		return pkt, err
	}
	if _, err := pkt.DecodeFromBytes(r.buf[:n]); err != nil {
		return pkt, err
	}
	if pkt.Flags&wire.DataFlagSrcRoute != 0 {
		// Strip the source-route extension header: it is routing state, not
		// application payload. Length-prefixed, so unaware middle hops and
		// end hosts skip it without understanding the groups inside.
		_, rest, err := wire.ParseExtHeader(pkt.Payload)
		if err != nil {
			return pkt, err
		}
		pkt.Payload = rest
	}
	r.track.Observe(&pkt)
	return pkt, nil
}

// SeqStats returns the receiver's sequence-gap accounting: packets
// received, gap slots currently unfilled (lost), and late arrivals.
func (r *Receiver) SeqStats() SeqStats { return r.track.Stats() }

// RecvTimeout is Recv bounded by d; it returns a timeout error when no
// packet arrives in time (check with os.IsTimeout / net.Error.Timeout).
func (r *Receiver) RecvTimeout(d time.Duration) (wire.DataPacket, error) {
	r.conn.SetReadDeadline(time.Now().Add(d))
	defer r.conn.SetReadDeadline(time.Time{})
	return r.Recv()
}

// Drain reads and discards everything already queued on the socket and
// returns how many datagrams it threw away — the way to separate warm-up
// traffic from a measured window.
func (r *Receiver) Drain() int {
	n := 0
	for {
		_, err := r.RecvTimeout(time.Millisecond)
		if err != nil {
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				return n
			}
			// A malformed datagram still occupied a queue slot: drained.
		}
		n++
	}
}

// Close closes the receiver's socket, unblocking any Recv.
func (r *Receiver) Close() error { return r.conn.Close() }
