package experiments

import (
	"fmt"

	"repro/internal/addr"
	"repro/internal/costmodel"
	"repro/internal/counting"
	"repro/internal/wire"
)

// E5ControlBandwidth regenerates the Section 5.3 control-traffic
// arithmetic, and verifies the 92-Counts-per-segment packing with the real
// codec.
func E5ControlBandwidth() *Table {
	m := costmodel.PaperMaintenance()
	recv, sent, total := m.EventRates()
	segs, bps := m.ControlBandwidth()

	// Verify the packing claim by actually batching encoded Counts.
	b := wire.NewBatch()
	n := 0
	for {
		c := &wire.Count{
			Channel: addr.Channel{S: addr.MustParse("10.0.0.1"), E: addr.ExpressAddr(uint32(n))},
			CountID: wire.CountSubscribers, Value: 1,
		}
		if !b.Add(c) {
			break
		}
		n++
	}

	t := &Table{
		ID:     "E5",
		Title:  "§5.3 — control traffic for one million 20-minute channels, fanout 2",
		Header: []string{"quantity", "computed", "paper"},
	}
	t.AddRow("Counts received/s", f2(recv), "3,333")
	t.AddRow("Counts sent/s", f2(sent), "≈1,667 (\"half as many\")")
	t.AddRow("total Count events/s", f2(total), "≈5,000")
	t.AddRow("Counts per 1480-B segment (measured packing)", itoa(n), "≈92")
	t.AddRow("segments received/s", f2(segs), "36")
	t.AddRow("control bandwidth received", fmt.Sprintf("%.0f kbit/s", bps/1000), "424 kbit/s")
	t.Note("packing measured with the real 16-byte Count codec: %d messages in %d bytes", b.Len(), b.Size())
	return t
}

// E6ToleranceCurves regenerates Figure 7: the error tolerance curve family
// over dt ∈ [0, 70] for the τ and α values the Section 6 simulation uses.
func E6ToleranceCurves() *Table {
	t := &Table{
		ID:     "E6",
		Title:  "Figure 7 — proactive-counting error tolerance curves e(dt), EMax=1, τ=120 (reconstructed form)",
		Header: []string{"dt (s)", "e, α=4.0", "e, α=2.5"},
	}
	c4 := counting.Curve{EMax: 1, Alpha: 4, Tau: 120}
	c25 := counting.Curve{EMax: 1, Alpha: 2.5, Tau: 120}
	for dt := 0.0; dt <= 70; dt += 10 {
		t.AddRow(f2(dt), f4(c4.Eval(dt)), f4(c25.Eval(dt)))
	}
	t.Note("properties verified: e(0)=EMax; x-intercept at τ (any change propagates within τ=%v s); "+
		"larger α → tighter tolerance → more updates (Figure 8's α=4 tracks closer than α=2.5)",
		c4.XIntercept())
	t.Note("the printed formula in the paper is OCR-mangled; e(dt)=clamp(EMax·(−ln(dt/τ))/α, 0, EMax) " +
		"reproduces every stated property (see DESIGN.md §2)")
	return t
}
