package experiments

import (
	"strings"
	"testing"
)

// These tests pin the *shape* claims of the paper — who wins, by roughly
// what factor, where the crossovers fall — so a regression in any protocol
// engine that would change the reproduced story fails CI.

func TestE9Shapes(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy simulation")
	}
	express := RunE9Express()
	shared := RunE9PIM(-1, "PIM-SM shared")
	spt := RunE9PIM(0, "PIM-SM +SPT")
	cbtRow := RunE9CBT()
	dv := RunE9DVMRP()

	// EXPRESS delivers to everyone along shortest paths.
	if express.DeliveredPerPkt != 1.0 {
		t.Errorf("EXPRESS delivery = %v, want 1.0", express.DeliveredPerPkt)
	}
	// The RP detour: shared-tree delay exceeds EXPRESS delay.
	if shared.MeanDelayMs <= express.MeanDelayMs {
		t.Errorf("PIM shared delay %.2f not above EXPRESS %.2f (no RP detour?)",
			shared.MeanDelayMs, express.MeanDelayMs)
	}
	if cbtRow.MeanDelayMs <= express.MeanDelayMs {
		t.Errorf("CBT delay %.2f not above EXPRESS %.2f (no core detour?)",
			cbtRow.MeanDelayMs, express.MeanDelayMs)
	}
	// SPT switchover trades state for delay: delay ≈ EXPRESS, state ≈ 2×.
	if spt.MeanDelayMs > express.MeanDelayMs*1.1 {
		t.Errorf("PIM+SPT delay %.2f did not converge to the direct path %.2f",
			spt.MeanDelayMs, express.MeanDelayMs)
	}
	if spt.StateEntries <= shared.StateEntries {
		t.Errorf("PIM+SPT state %d not above shared-tree state %d (the delay-state tradeoff)",
			spt.StateEntries, shared.StateEntries)
	}
	// Broadcast-and-prune: the first packet floods far beyond the
	// steady-state tree.
	if dv.FirstPktLinkTx < 2*dv.SteadyLinkTx {
		t.Errorf("DVMRP first packet (%d link tx) did not flood vs steady state (%d)",
			dv.FirstPktLinkTx, dv.SteadyLinkTx)
	}
	// ...and leaves state at member-less routers: more entries than
	// EXPRESS needs for the same members.
	if dv.StateEntries <= express.StateEntries {
		t.Errorf("DVMRP state %d not above EXPRESS %d (prune state at member-less routers)",
			dv.StateEntries, express.StateEntries)
	}
	// EXPRESS steady-state link cost is essentially minimal. A shared tree
	// can shave a link or two of total transmissions (that is the
	// state-vs-delay trade the paper discusses), so allow small slack —
	// what must never happen is EXPRESS costing meaningfully more.
	for _, r := range []E9Row{shared, spt, cbtRow, dv} {
		if express.SteadyLinkTx > r.SteadyLinkTx+2 {
			t.Errorf("EXPRESS steady link tx %d above %s's %d",
				express.SteadyLinkTx, r.Protocol, r.SteadyLinkTx)
		}
	}
}

func TestE7Shapes(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy simulation")
	}
	eager := RunE7(0, 99)
	a4 := RunE7(4, 99)
	a25 := RunE7(2.5, 99)

	// Eager is the accuracy ceiling and bandwidth worst case.
	if eager.MeanAbsErr > 1 {
		t.Errorf("eager mean error %.2f, want ≈0", eager.MeanAbsErr)
	}
	if a4.FinalCounts >= eager.FinalCounts {
		t.Errorf("proactive α=4 (%d msgs) not cheaper than eager (%d)", a4.FinalCounts, eager.FinalCounts)
	}
	// "α=4 tracks very closely; α=2.5 lags behind."
	if a4.MeanAbsErr >= a25.MeanAbsErr {
		t.Errorf("α=4 error %.2f not below α=2.5 error %.2f", a4.MeanAbsErr, a25.MeanAbsErr)
	}
	// Tracking quality: α=4 keeps the mean error a small fraction of the
	// 250-subscriber peak.
	if a4.MeanAbsErr > 12 {
		t.Errorf("α=4 mean error %.2f too large to call 'tracks very closely'", a4.MeanAbsErr)
	}
	// The final advertisement drains to zero after the mass leave.
	if n := len(a4.Estimate); n == 0 || a4.Estimate[n-1].Size != 0 {
		t.Error("final estimate did not reach zero after the mass unsubscribe")
	}
}

func TestE2AndE3TablesCarryPaperNumbers(t *testing.T) {
	e2 := E2FIBCost().String()
	for _, want := range []string{"$0.00066", "2500"} {
		if !strings.Contains(e2, want) {
			t.Errorf("E2 table missing %q:\n%s", want, e2)
		}
	}
	e3 := E3MgmtState().String()
	if !strings.Contains(e3, "200 B") {
		t.Errorf("E3 table missing the 200-byte budget:\n%s", e3)
	}
}

func TestE5PackingMatchesPaper(t *testing.T) {
	s := E5ControlBandwidth().String()
	for _, want := range []string{"92", "3333", "5000"} {
		if !strings.Contains(s, want) {
			t.Errorf("E5 table missing %q:\n%s", want, s)
		}
	}
}

func TestE6CurveTable(t *testing.T) {
	tab := E6ToleranceCurves()
	if len(tab.Rows) != 8 {
		t.Fatalf("rows = %d, want 8 (dt 0..70 step 10)", len(tab.Rows))
	}
	// First row: both curves at EMax; last row: both at 0 (past... 70 < τ
	// so not zero — check monotone decrease instead).
	if tab.Rows[0][1] != "1.0000" || tab.Rows[0][2] != "1.0000" {
		t.Errorf("curves at dt=0 not at EMax: %v", tab.Rows[0])
	}
}

func TestE8AllAttacksBlocked(t *testing.T) {
	tab := E8AccessControl()
	for _, row := range tab.Rows {
		if strings.Contains(row[2], "FAILED") {
			t.Errorf("attack not blocked: %v", row)
		}
		if row[0] != "legitimate keyed subscriber" && row[1] != "0" {
			t.Errorf("attack leaked packets: %v", row)
		}
	}
	for _, n := range tab.Notes {
		if strings.Contains(n, "WARNING") {
			t.Error(n)
		}
	}
}

func TestE10BoundHolds(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy simulation")
	}
	tab := E10Relay()
	for _, row := range tab.Rows {
		if strings.Contains(row[1], "VIOLATED") {
			t.Errorf("relay delay bound violated: %v", row)
		}
	}
	for _, n := range tab.Notes {
		if strings.Contains(n, "WARNING") {
			t.Error(n)
		}
	}
}

func TestE12NoCollisions(t *testing.T) {
	tab := E12AddrAllocation()
	found := false
	for _, row := range tab.Rows {
		if strings.Contains(row[0], "collisions") {
			found = true
			if row[1] != "0" {
				t.Errorf("cross-host collisions = %s, want 0", row[1])
			}
		}
	}
	if !found {
		t.Error("collision row missing")
	}
}

func TestTableRendering(t *testing.T) {
	tab := &Table{ID: "X", Title: "t", Header: []string{"a", "bb"}}
	tab.AddRow("1", "2")
	tab.Note("n=%d", 5)
	s := tab.String()
	for _, want := range []string{"== X: t ==", "a", "bb", "note: n=5"} {
		if !strings.Contains(s, want) {
			t.Errorf("rendered table missing %q:\n%s", want, s)
		}
	}
}
