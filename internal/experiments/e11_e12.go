package experiments

import (
	"fmt"
	"math/rand"

	"repro/internal/addr"
	"repro/internal/counting"
)

// E11CountingSchemes compares ECMP's router-supported counting with the
// application-layer schemes of Section 7.3 across group sizes.
func E11CountingSchemes() *Table {
	t := &Table{
		ID:     "E11",
		Title:  "§7.3 — counting: ECMP aggregation vs application-layer schemes",
		Header: []string{"subscribers", "scheme", "total msgs", "msgs at source", "rounds", "implosion risk"},
	}
	rng := rand.New(rand.NewSource(7))
	for _, nSubs := range []int{10_000, 100_000, 1_000_000} {
		routers := nSubs / 8 // edge aggregation: ~8 hosts per leaf router

		msgs, fanIn := counting.ECMPCountCost(routers, nSubs, 2)
		t.AddRow(itoa(nSubs), "ECMP CountQuery (exact)", itoa(msgs), itoa(fanIn), "1",
			"none (per-hop aggregation)")

		// Suppression scheme, healthy: p tuned for ~1 reply per branch.
		sup := counting.SuppressionParams{
			N: nSubs, P: 0.001, Branches: 64,
			SuppressionLossProb: 0, ImplosionThreshold: 1000,
		}
		res := counting.RunSuppression(sup, rng)
		t.AddRow(itoa(nSubs), "suppression (healthy)", itoa(res.Responses), itoa(res.Responses), "1", "low")

		// Suppression with lost suppressors and misbehaving clients — the
		// paper's failure case. p here is tuned for a 10k group; applying
		// it to a larger group (the Super Bowl channel grew overnight)
		// multiplies the raw responder pool.
		sup.P = 0.005
		sup.SuppressionLossProb = 0.3
		sup.MisbehavingFrac = 0.01
		res = counting.RunSuppression(sup, rng)
		risk := "IMPLOSION"
		if !res.Imploded {
			risk = "elevated"
		}
		t.AddRow(itoa(nSubs), "suppression (lossy+misbehaving)", itoa(res.Responses), itoa(res.Responses), "1", risk)

		mr := counting.RunMultiRound(nSubs, 50, rng)
		t.AddRow(itoa(nSubs), "multi-round polling", itoa(mr.Responses), itoa(mr.Responses),
			itoa(mr.Rounds), fmt.Sprintf("none (est %.0f)", mr.Estimate))
	}
	t.Note("\"total msgs\" for ECMP is network-wide, one per tree edge each way, never concentrated: " +
		"only fan-out-many arrive at any node including the source; application-layer schemes " +
		"concentrate every reply at the source's access link")
	t.Note("paper: suppression schemes risk \"serious feedback implosion ... if the suppressing reply " +
		"is lost on any large branch of the tree or if misbehaving clients respond\"; multi-round " +
		"schemes \"avoid the implosion risk, but are slower\"; ECMP bounds fan-in at every node by its " +
		"tree fan-out")
	return t
}

// E12AddrAllocation demonstrates the Section 2.2.1 address-allocation
// claim: 2^24 channels per source allocated with no global coordination,
// versus the globally shared class-D space of the group model.
func E12AddrAllocation() *Table {
	t := &Table{
		ID:     "E12",
		Title:  "§2.2.1 — channel address allocation (local, uncoordinated)",
		Header: []string{"quantity", "value"},
	}
	t.AddRow("channels per source host", itoa(addr.ChannelsPerHost))
	t.AddRow("class-D addresses shared by ALL hosts (group model)", itoa(1<<28))

	// Two hosts allocating the same suffixes produce unrelated channels.
	a := addr.NewAllocator(addr.MustParse("10.1.1.1"))
	b := addr.NewAllocator(addr.MustParse("10.2.2.2"))
	const n = 100_000
	seen := make(map[addr.Channel]bool, 2*n)
	collisions := 0
	for i := 0; i < n; i++ {
		ca, err1 := a.Allocate()
		cb, err2 := b.Allocate()
		if err1 != nil || err2 != nil {
			panic("allocator exhausted prematurely")
		}
		if seen[ca] || seen[cb] {
			collisions++
		}
		seen[ca], seen[cb] = true, true
	}
	t.AddRow(fmt.Sprintf("cross-host collisions over %d allocations each", n), itoa(collisions))
	t.Note("same destination suffixes on different hosts are distinct channels (Figure 1); no " +
		"IANA/MASC-style global allocation service is needed (paper contrasts with [11])")
	return t
}

// AllTables runs every experiment in order. Heavy experiments (E4, E7, E9)
// can be skipped for a quick pass.
func AllTables(includeHeavy bool) []*Table {
	ts := []*Table{E1FIBEntry(), E2FIBCost(), E3MgmtState()}
	if includeHeavy {
		ts = append(ts, E4Maintenance())
	}
	ts = append(ts, E5ControlBandwidth(), E6ToleranceCurves())
	if includeHeavy {
		ts = append(ts, E7Proactive())
	}
	ts = append(ts, E8AccessControl())
	if includeHeavy {
		ts = append(ts, E9Comparison(), E10Relay())
	}
	ts = append(ts, E11CountingSchemes(), E12AddrAllocation())
	if includeHeavy {
		ts = append(ts, E14Churn())
	}
	ts = append(ts, E15Scaling())
	if includeHeavy {
		ts = append(ts, E16Failover(), E17State(), E18Scenario())
	}
	return ts
}
