package experiments

import (
	"math/rand"

	"fmt"
	"math"
	"repro/internal/counting"

	"repro/internal/addr"
	"repro/internal/ecmp"
	"repro/internal/express"
	"repro/internal/netsim"
	"repro/internal/testutil"
	"repro/internal/workload"
)

// E7Series is one proactive-counting run of the Figure 8 scenario.
type E7Series struct {
	Label string
	// Estimate is the subscriber-count estimate at the tree root (the
	// source) over time — Figure 8's upper graph.
	Estimate []workload.SizePoint
	// Actual is the true membership step function.
	Actual []workload.SizePoint
	// CountsToSource is the cumulative number of Count messages delivered
	// to the source — Figure 8's lower graph.
	CountsToSource []workload.SizePoint
	// MeanAbsErr is the time-averaged |estimate − actual| sampled on a 1 s
	// grid over the run.
	MeanAbsErr float64
	// FinalCounts is the total Counts the source received.
	FinalCounts int
	// TotalCounts is the network-wide number of membership/count Count
	// messages sent by all routers — the aggregate control bandwidth the
	// tolerance curve trades against accuracy.
	TotalCounts uint64
}

// RunE7 replays the Figure 8 script over a full ECMP network (binary tree
// of routers, hosts on the leaves) with the given propagation mode.
// alpha <= 0 selects eager propagation (the accuracy/bandwidth ceiling).
// e7Depth is the router-tree depth of the Figure 8 reproduction; the paper
// does not print its simulated topology, and convergence time "grows
// approximately linearly with the depth of the tree" (Section 6).
var e7Depth = 4

// e7EMax is the maximum tolerated relative error. The paper fixes e_max per
// run but does not print its value; 0.05 places the Figure 8 workload in
// the regime where the curves for α=4 and α=2.5 visibly separate, as in
// the paper's plot.
var e7EMax = 0.05

func RunE7(alpha float64, seed int64) E7Series {
	cfg := ecmp.DefaultConfig()
	label := fmt.Sprintf("alpha=%.1f", alpha)
	if alpha > 0 {
		cfg.Propagation = ecmp.PropagateProactive
		cfg.Proactive = ecmp.ProactiveParams{EMax: e7EMax, Alpha: alpha, Tau: 120 * netsim.Second}
	} else {
		cfg.Propagation = ecmp.PropagateEager
		label = "eager"
	}
	// Keep periodic machinery out of the measurement window.
	cfg.QueryInterval = 3600 * netsim.Second
	cfg.HoldTime = 3 * 3600 * netsim.Second
	cfg.KeepaliveInterval = 3600 * netsim.Second

	depth := e7Depth // routers = 2^(depth+1)-1
	n := testutil.TreeNet(seed, depth, cfg)
	src := n.AddSource(n.Routers[0])
	leaves := n.Routers[len(n.Routers)-(1<<depth):]

	params := workload.DefaultFigure8()
	script := workload.Figure8Script(params, n.Sim.Rand())
	subs := make([]*express.Subscriber, params.Total())
	for i := range subs {
		subs[i] = n.AddSubscriber(leaves[i%len(leaves)])
	}
	n.Start()

	ch := testutil.MustChannel(src)
	series := E7Series{Label: label, Actual: workload.ActualSize(script)}
	counts := 0
	src.OnEstimate = func(c addr.Channel, est uint32, at netsim.Time) {
		if c != ch {
			return
		}
		counts++
		series.Estimate = append(series.Estimate, workload.SizePoint{At: at, Size: int(est)})
		series.CountsToSource = append(series.CountsToSource, workload.SizePoint{At: at, Size: counts})
	}

	for _, ev := range script {
		e := ev
		n.Sim.At(e.At, func() {
			if e.Join {
				subs[e.Host].Subscribe(ch, nil, nil)
			} else {
				subs[e.Host].Unsubscribe(ch)
			}
		})
	}
	end := params.QuietEnd + params.LeaveLen + 130*netsim.Second // past τ so the final zero propagates
	n.Sim.RunUntil(end)

	series.FinalCounts = counts
	for _, r := range n.Routers {
		series.TotalCounts += r.Metrics().CountsSent
	}
	series.MeanAbsErr = meanAbsError(series.Actual, series.Estimate, end)
	return series
}

// meanAbsError samples both step functions on a 1 s grid.
func meanAbsError(actual, estimate []workload.SizePoint, end netsim.Time) float64 {
	sample := func(pts []workload.SizePoint, at netsim.Time) int {
		v := 0
		for _, p := range pts {
			if p.At > at {
				break
			}
			v = p.Size
		}
		return v
	}
	var sum float64
	steps := 0
	for at := netsim.Time(0); at <= end; at += netsim.Second {
		sum += math.Abs(float64(sample(actual, at) - sample(estimate, at)))
		steps++
	}
	return sum / float64(steps)
}

// E7Proactive renders the Figure 8 comparison: eager vs α=4 vs α=2.5 over
// the full router tree, plus a single-aggregator analysis isolating the
// regime where the tolerance curve binds every send decision.
func E7Proactive() *Table {
	t := &Table{
		ID:     "E7",
		Title:  "Figure 8 — proactive counting, 250-subscriber join/leave scenario, τ=120 s",
		Header: []string{"mode", "Counts to source", "network Counts", "mean |est−actual|"},
	}
	eager := RunE7(0, 99)
	a4 := RunE7(4, 99)
	a25 := RunE7(2.5, 99)
	for _, s := range []E7Series{eager, a4, a25} {
		t.AddRow(s.Label, itoa(s.FinalCounts), u64(s.TotalCounts), f2(s.MeanAbsErr))
	}
	t.Note("accuracy claim reproduced: α=4 tracks closely (mean error %.1f); α=2.5 lags after bursts "+
		"(mean error %.1f) — paper: \"When α = 4, the estimated size tracks the actual size very "+
		"closely. When α = 2.5, the estimated size lags behind\"", a4.MeanAbsErr, a25.MeanAbsErr)

	// Single-aggregator analysis for the bandwidth ratio.
	rng := randForE7()
	script := workload.Figure8Script(workload.DefaultFigure8(), rng)
	end := 420 * netsim.Second
	s4, m4 := counting.Figure8Single(counting.Curve{EMax: e7EMax, Alpha: 4, Tau: 120}, script, end, 100*netsim.Millisecond)
	s25, m25 := counting.Figure8Single(counting.Curve{EMax: e7EMax, Alpha: 2.5, Tau: 120}, script, end, 100*netsim.Millisecond)
	slow := func(pts []workload.SizePoint) int {
		n := 0
		for _, p := range pts {
			if sec := p.At.Seconds(); sec > 10 && sec <= 200 {
				n++
			}
		}
		return n
	}
	sl4, sl25 := slow(s4), slow(s25)
	t.Note("single-aggregator totals: α=4 → %d msgs, α=2.5 → %d msgs; slow-drift phase (10–200 s) "+
		"%d vs %d, ratio %.2f (paper: total bandwidth of α=2.5 \"approximately 2/3 that of the α=4 "+
		"case\"); during bursts both curves are clamped at e_max so they send identically — the α "+
		"trade-off appears exactly where the tolerance curve binds", m4, m25, sl4, sl25,
		float64(sl25)/float64(max(sl4, 1)))
	return t
}

func randForE7() *rand.Rand { return rand.New(rand.NewSource(99)) }
