package experiments

import (
	"strconv"
	"strings"
	"testing"
)

func TestFigure7CSV(t *testing.T) {
	csv := Figure7CSV()
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if lines[0] != "dt_seconds,e_alpha_4,e_alpha_2.5" {
		t.Fatalf("header = %q", lines[0])
	}
	if len(lines) != 1+141 { // dt 0..70 step 0.5
		t.Fatalf("rows = %d, want 142", len(lines))
	}
	prev4 := 2.0
	for _, line := range lines[1:] {
		f := strings.Split(line, ",")
		if len(f) != 3 {
			t.Fatalf("bad row %q", line)
		}
		e4, err := strconv.ParseFloat(f[1], 64)
		if err != nil {
			t.Fatal(err)
		}
		if e4 > prev4+1e-12 {
			t.Fatalf("α=4 curve not monotone at %q", line)
		}
		prev4 = e4
	}
}

func TestFigure8CSV(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy simulation")
	}
	csv := Figure8CSV()
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if lines[0] != "time_s,actual,est_alpha4,est_alpha2.5,counts_alpha4,counts_alpha2.5" {
		t.Fatalf("header = %q", lines[0])
	}
	if len(lines) < 400 {
		t.Fatalf("rows = %d, want >= 400", len(lines))
	}
	// Last row: everyone left, estimates drained, message counters final.
	last := strings.Split(lines[len(lines)-1], ",")
	for i := 1; i <= 3; i++ {
		if last[i] != "0" {
			t.Errorf("final column %d = %s, want 0 (group empty)", i, last[i])
		}
	}
	// Cumulative message columns are non-decreasing.
	prev := [2]int{}
	for _, line := range lines[1:] {
		f := strings.Split(line, ",")
		c4, _ := strconv.Atoi(f[4])
		c25, _ := strconv.Atoi(f[5])
		if c4 < prev[0] || c25 < prev[1] {
			t.Fatalf("cumulative counts decreased at %q", line)
		}
		prev = [2]int{c4, c25}
	}
}
