package experiments

import (
	"fmt"
	"time"

	"repro/internal/addr"
	"repro/internal/dataplane"
	"repro/internal/realnet"
	"repro/internal/reliable"
	"repro/internal/relaynet"
)

// E16: the Section 4 session-relay tier measured on real sockets — the
// production counterpart of E10's netsim relay study. Two questions:
//
//  1. Fail-over gap (Section 4.2): a primary relay dies mid-session; how
//     long until participants receive from the promoted standby? The gap
//     is FirstBackupData − LastPrimaryData per participant, reported in
//     flush windows (beacon intervals) — the tier's native time unit —
//     for hot vs cold participant standby.
//  2. Repair under loss (Section 2.2.1): the NACK-count reliable transport
//     over the real ECMP counting path, with a deterministic loss proxy on
//     the router→receiver hop. How many repair rounds until every datagram
//     is delivered in order?

// FailoverOptions tunes RunE16Failover. Zero values pick a quick loopback
// configuration.
type FailoverOptions struct {
	// Mode is the participants' standby flavour (Hot or Cold).
	Mode relaynet.StandbyMode
	// Participants is the session size. Default 3.
	Participants int
	// Beacon is the relay liveness interval — the flush window. Default 20ms.
	Beacon time.Duration
	// Watchdog is the silence budget for both the standby relay and the
	// participants. Default 5×Beacon.
	Watchdog time.Duration
}

func (o FailoverOptions) withDefaults() FailoverOptions {
	if o.Participants <= 0 {
		o.Participants = 3
	}
	if o.Beacon <= 0 {
		o.Beacon = 20 * time.Millisecond
	}
	if o.Watchdog <= 0 {
		o.Watchdog = 5 * o.Beacon
	}
	return o
}

// FailoverResult is one fail-over measurement.
type FailoverResult struct {
	Mode         relaynet.StandbyMode
	Participants int
	Beacon       time.Duration
	Watchdog     time.Duration

	// Gap is the mean per-participant outage FirstBackupData −
	// LastPrimaryData; GapFlushWindows is the same in beacon intervals.
	Gap             time.Duration
	GapFlushWindows float64
	// Promotions is the standby relay's promotion count (1 on success).
	Promotions uint64
	// Received is total content packets delivered across participants,
	// before and after fail-over.
	Received uint64
}

func waitUntil(timeout time.Duration, cond func() bool) bool {
	deadline := time.Now().Add(timeout)
	for !cond() {
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(time.Millisecond)
	}
	return true
}

// RunE16Failover stands up a router, a primary relay, a standby relay, and
// opts.Participants session members, streams content, kills the primary,
// and measures the outage until the promoted standby's channel delivers.
func RunE16Failover(opts FailoverOptions) (FailoverResult, error) {
	opts = opts.withDefaults()
	res := FailoverResult{
		Mode:         opts.Mode,
		Participants: opts.Participants,
		Beacon:       opts.Beacon,
		Watchdog:     opts.Watchdog,
	}

	router, err := realnet.NewRouterOpts("127.0.0.1:0", realnet.Options{
		DataListen:    "127.0.0.1:0",
		FlushInterval: time.Millisecond,
	})
	if err != nil {
		return res, err
	}
	defer router.Close()

	chPrimary := addr.Channel{S: addr.MustParse("171.64.16.1"), E: addr.ExpressAddr(0x161)}
	chBackup := addr.Channel{S: addr.MustParse("171.64.16.2"), E: addr.ExpressAddr(0x162)}

	pri, err := relaynet.New(relaynet.Options{
		Router:     router.Addr(),
		DataTarget: router.DataAddr(),
		Channel:    chPrimary,
		Beacon:     opts.Beacon,
	})
	if err != nil {
		return res, err
	}
	defer pri.Close()
	bak, err := relaynet.New(relaynet.Options{
		Router:     router.Addr(),
		DataTarget: router.DataAddr(),
		Channel:    chBackup,
		Beacon:     opts.Beacon,
		Standby:    &relaynet.StandbyOptions{PrimaryChannel: chPrimary, Watchdog: opts.Watchdog},
	})
	if err != nil {
		return res, err
	}
	defer bak.Close()

	parts := make([]*relaynet.Participant, 0, opts.Participants)
	defer func() {
		for _, p := range parts {
			p.Close()
		}
	}()
	for i := 0; i < opts.Participants; i++ {
		p, err := relaynet.Join(relaynet.ParticipantOptions{
			Router:  router.Addr(),
			Channel: chPrimary,
			Standby: &relaynet.ParticipantStandby{
				Mode:          opts.Mode,
				BackupChannel: chBackup,
				Control:       bak.ControlAddr(),
				Watchdog:      opts.Watchdog,
			},
		})
		if err != nil {
			return res, err
		}
		parts = append(parts, p)
		if err := p.WaitJoined(5 * time.Second); err != nil {
			return res, err
		}
	}

	// Stream lecturer content through the primary so the gap measures a
	// live session, not an idle one.
	for i := 0; i < 5; i++ {
		pri.Send([]byte(fmt.Sprintf("pre-%d", i)))
		time.Sleep(opts.Beacon / 2)
	}

	pri.Close() // the failure: source, session, and beacons all stop

	if !waitUntil(10*time.Second, bak.Active) {
		return res, fmt.Errorf("standby never promoted")
	}
	if !waitUntil(10*time.Second, func() bool {
		for _, p := range parts {
			if !p.FailedOver() {
				return false
			}
		}
		return true
	}) {
		return res, fmt.Errorf("participants never failed over")
	}
	// The promoted standby's beacons stamp FirstBackupData; content proves
	// the session is fully live again.
	bak.Send([]byte("post-failover"))
	if !waitUntil(10*time.Second, func() bool {
		for _, p := range parts {
			if p.Stats().FirstBackupData.IsZero() {
				return false
			}
		}
		return true
	}) {
		return res, fmt.Errorf("backup channel never delivered")
	}

	var totalGap time.Duration
	for _, p := range parts {
		st := p.Stats()
		totalGap += st.FirstBackupData.Sub(st.LastPrimaryData)
		res.Received += st.Received
	}
	res.Gap = totalGap / time.Duration(len(parts))
	res.GapFlushWindows = float64(res.Gap) / float64(opts.Beacon)
	res.Promotions = bak.Stats().Promotions
	return res, nil
}

// RepairOptions tunes RunE16Reliable.
type RepairOptions struct {
	// Datagrams is the burst size. Default 40.
	Datagrams int
	// DropEvery drops every Nth datagram on the router→receiver hop.
	// Default 4.
	DropEvery int
}

func (o RepairOptions) withDefaults() RepairOptions {
	if o.Datagrams <= 0 {
		o.Datagrams = 40
	}
	if o.DropEvery <= 0 {
		o.DropEvery = 4
	}
	return o
}

// RepairResult is one reliable-repair measurement.
type RepairResult struct {
	Datagrams int
	DropEvery int

	Dropped       uint64 // datagrams the loss proxy discarded
	Retransmitted uint64
	Probes        uint64
	Rounds        int // repair rounds until the window drained
	NACKsSent     uint64
	Delivered     uint64 // in-order deliveries at the receiver
}

// RunE16Reliable drives the real-socket NACK-count transport through a
// deterministic loss proxy until repair converges.
func RunE16Reliable(opts RepairOptions) (RepairResult, error) {
	opts = opts.withDefaults()
	res := RepairResult{Datagrams: opts.Datagrams, DropEvery: opts.DropEvery}

	router, err := realnet.NewRouterOpts("127.0.0.1:0", realnet.Options{
		DataListen:    "127.0.0.1:0",
		FlushInterval: time.Millisecond,
	})
	if err != nil {
		return res, err
	}
	defer router.Close()
	ch := addr.Channel{S: addr.MustParse("171.64.16.3"), E: addr.ExpressAddr(0x163)}

	recv, err := dataplane.NewReceiver()
	if err != nil {
		return res, err
	}
	proxy, err := relaynet.NewLossProxy(recv.Addr(), opts.DropEvery)
	if err != nil {
		recv.Close()
		return res, err
	}
	defer proxy.Close()
	rsess, err := realnet.DialSession(router.Addr(), realnet.SessionOptions{DataPort: proxy.Port()})
	if err != nil {
		recv.Close()
		return res, err
	}
	defer rsess.Close()
	rr := reliable.NewRealReceiver(recv, rsess, ch, nil)
	defer rr.Close()

	if !waitUntil(10*time.Second, func() bool {
		_, ok := router.DataPlane().Route(ch)
		return ok
	}) {
		return res, fmt.Errorf("subscription never programmed the data plane")
	}

	src, err := dataplane.NewSource(router.DataAddr(), ch, dataplane.SourceOptions{})
	if err != nil {
		return res, err
	}
	defer src.Close()
	ssess, err := realnet.DialSession(router.Addr(), realnet.SessionOptions{})
	if err != nil {
		return res, err
	}
	defer ssess.Close()
	s := reliable.NewRealSender(src, ssess)

	for i := 0; i < opts.Datagrams; i++ {
		if _, err := s.Send([]byte(fmt.Sprintf("d-%d", i))); err != nil {
			return res, err
		}
	}
	for ; res.Rounds < 3*opts.Datagrams && s.Outstanding() > 0; res.Rounds++ {
		if _, err := s.RepairRound(30*time.Millisecond, 2*time.Second); err != nil {
			return res, err
		}
	}
	if out := s.Outstanding(); out != 0 {
		return res, fmt.Errorf("%d sequences unrepaired after %d rounds", out, res.Rounds)
	}
	if !waitUntil(10*time.Second, func() bool {
		return rr.Stats().Delivered >= uint64(opts.Datagrams)
	}) {
		return res, fmt.Errorf("repaired datagrams never all delivered")
	}

	res.Dropped = proxy.Dropped()
	res.Retransmitted = s.Metrics.Retransmitted
	res.Probes = s.Metrics.Probes
	st := rr.Stats()
	res.NACKsSent = st.NACKsSent
	res.Delivered = st.Delivered
	return res, nil
}

// E16Failover renders the session-relay measurements as a paperbench table:
// hot vs cold fail-over gap in flush windows, plus reliable repair under
// deterministic loss.
func E16Failover() *Table {
	t := &Table{
		ID:    "E16",
		Title: "§4: session-relay fail-over and reliable repair on the real data plane",
		Header: []string{"scenario", "beacon", "watchdog", "gap", "gap (flush windows)",
			"promotions", "received"},
	}
	for _, mode := range []relaynet.StandbyMode{relaynet.Hot, relaynet.Cold} {
		res, err := RunE16Failover(FailoverOptions{Mode: mode})
		if err != nil {
			t.Note("failover %v failed: %v", mode, err)
			continue
		}
		t.AddRow("failover/"+mode.String(),
			res.Beacon.String(), res.Watchdog.String(),
			res.Gap.Round(time.Millisecond).String(), f2(res.GapFlushWindows),
			itoa(int(res.Promotions)), itoa(int(res.Received)))
	}
	rep, err := RunE16Reliable(RepairOptions{})
	if err != nil {
		t.Note("repair failed: %v", err)
	} else {
		t.AddRow(fmt.Sprintf("repair/drop-every-%d", rep.DropEvery), "-", "-", "-", "-", "-",
			itoa(int(rep.Delivered)))
		t.Note("repair: %d datagrams, %d dropped by the proxy, %d retransmitted over %d rounds "+
			"(%d probes, %d NACK counts raised); all delivered in order",
			rep.Datagrams, rep.Dropped, rep.Retransmitted, rep.Rounds, rep.Probes, rep.NACKsSent)
	}
	t.Note("gap = FirstBackupData − LastPrimaryData per participant, averaged; the standby's " +
		"watchdog spends up to one watchdog of silence before promoting, so the floor is " +
		"watchdog/beacon flush windows; hot and cold differ in when the backup subscription " +
		"is built, not in the promotion path")
	return t
}
