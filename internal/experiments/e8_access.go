package experiments

import (
	"repro/internal/ecmp"
	"repro/internal/express"
	"repro/internal/netsim"
	"repro/internal/testutil"
	"repro/internal/wire"
)

// E8AccessControl reproduces the access-control properties that motivate
// the paper's Super Bowl example (Sections 1, 2.2, 3.4): an unauthorized
// sender's traffic is counted-and-dropped at its first-hop router, a
// spoofed source fails the RPF incoming-interface check, and authenticated
// subscriptions are denied on a bad key.
func E8AccessControl() *Table {
	t := &Table{
		ID:     "E8",
		Title:  "§2.2/§3.4 — access control: unauthorized senders and subscribers",
		Header: []string{"attack", "packets delivered to subscribers", "router action"},
	}

	n := testutil.LineNet(8, 4, ecmp.DefaultConfig())
	src := n.AddSource(n.Routers[0])
	sub := n.AddSubscriber(n.Routers[3])
	rogue := n.AddSource(n.Routers[1])
	badSub := n.AddSubscriber(n.Routers[2])
	n.Start()

	ch := testutil.MustChannel(src)
	key := wire.Key{0xde, 0xad, 0xbe, 0xef, 1, 2, 3, 4}
	wrong := wire.Key{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0}

	n.Sim.At(0, func() {
		if err := src.ChannelKey(ch, key); err != nil {
			panic(err)
		}
	})
	n.Sim.At(100*netsim.Millisecond, func() { sub.Subscribe(ch, &key, nil) })
	n.Sim.RunUntil(2 * netsim.Second)

	// Attack 1: rogue sender to the victim's E with its own source.
	n.Sim.After(0, func() {
		rogue.Node().SendAll(-1, &netsim.Packet{
			Src: rogue.Node().Addr, Dst: ch.E, Proto: netsim.ProtoData,
			TTL: netsim.DefaultTTL, Size: 1000,
		})
	})
	n.Sim.RunUntil(3 * netsim.Second)
	drops := n.Routers[1].FIB().Stats().UnmatchedDrops
	t.AddRow("unauthorized sender (S',E)", u64(sub.Delivered), "counted and dropped: "+u64(drops)+" unmatched drops")

	// Attack 2: spoof the legitimate source from the wrong place.
	n.Sim.After(0, func() {
		rogue.Node().SendAll(-1, &netsim.Packet{
			Src: ch.S, Dst: ch.E, Proto: netsim.ProtoData,
			TTL: netsim.DefaultTTL, Size: 1000,
		})
	})
	n.Sim.RunUntil(4 * netsim.Second)
	iifDrops := n.Routers[1].FIB().Stats().IIFDrops
	t.AddRow("spoofed source, wrong interface", u64(sub.Delivered), "RPF check: "+u64(iifDrops)+" wrong-iif drops")

	// Attack 3: subscription with a wrong key.
	var denied bool
	n.Sim.After(0, func() {
		badSub.Subscribe(ch, &wrong, func(r express.SubscribeResult) { denied = r == express.SubscribeDenied })
	})
	n.Sim.RunUntil(8 * netsim.Second)
	n.Sim.After(0, func() { _ = src.Send(ch, 1000, nil) })
	n.Sim.RunUntil(9 * netsim.Second)
	deniedStr := "CountResponse BadKey, branch unwound"
	if !denied {
		deniedStr = "FAILED: subscription not denied"
	}
	t.AddRow("subscribe with wrong K(S,E)", u64(badSub.Delivered), deniedStr)

	if sub.Delivered != 1 {
		t.Note("WARNING: legitimate subscriber delivered %d, want exactly 1 (the real packet)", sub.Delivered)
	} else {
		t.AddRow("legitimate keyed subscriber", "1 (the real packet)", "validated via cached key chain")
	}
	return t
}
