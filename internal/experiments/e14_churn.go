package experiments

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"repro/internal/addr"
	"repro/internal/dataplane"
	"repro/internal/obs"
	"repro/internal/realnet"
	"repro/internal/workload"
)

// E14: million-route churn. The EXPRESS FIB is only as good as its behaviour
// under membership churn — flash crowds join and leave in bursts (Section
// 4.2's subscription dynamics), and every count transition reprograms a
// route. This experiment drives real routers end to end: Zipf-popular
// subscribe/unsubscribe toggles flow through TCP sessions into processCount,
// which programs dataplane.Plane.SetRoute, which publishes into the
// chunked-generation FIB — all while a paced UDP stream keeps the forwarding
// hot path live. Alongside throughput it samples the user-visible latency
// that matters: route-install→first-packet-delivered, measured by
// subscribing a receiver to a fresh channel and probing until the first
// datagram arrives.

// ChurnOptions tunes RunChurn. Zero values select defaults sized for a
// laptop-class run.
type ChurnOptions struct {
	// Routes is the steady-state channel count installed before churn.
	Routes int
	// Events is the number of membership toggles driven through sessions.
	Events int
	// Sessions is the number of concurrent subscriber sessions.
	Sessions int
	// Samples is the number of install→first-delivery probes taken while
	// the churn runs.
	Samples int
	// ZipfS is the popularity exponent of the churn key draw (> 1).
	ZipfS float64
	// Seed makes the key sequence reproducible.
	Seed int64
}

func (o ChurnOptions) withDefaults() ChurnOptions {
	if o.Routes <= 0 {
		o.Routes = 100_000
	}
	if o.Events <= 0 {
		o.Events = 20_000
	}
	if o.Sessions <= 0 {
		o.Sessions = 4
	}
	if o.Samples < 0 {
		o.Samples = 0
	} else if o.Samples == 0 {
		o.Samples = 40
	}
	if o.ZipfS <= 1 {
		o.ZipfS = 1.2
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// ChurnResult is one churn run's measurements.
type ChurnResult struct {
	Routes       int
	Events       int
	Wall         time.Duration
	EventsPerSec float64

	// Install is the dp_route_install_ns distribution: SetRoute publication
	// latency, cumulative over populate + churn (so directory growth during
	// populate is included — the conservative read).
	Install obs.HistSnapshot
	// Deliver* are the sampled install→first-packet-delivered latencies in
	// nanoseconds: subscribe Flush to first matching datagram at the
	// receiver, taken while churn runs.
	DeliverP50Ns float64
	DeliverP99Ns float64
	DeliverMaxNs float64
	Samples      int

	// FIB publication accounting after the run.
	ChunkPublishes    uint64
	ChunkPublishP99Ns float64
	Rebuilds          uint64
}

func churnChannel(src addr.Addr, i int) addr.Channel {
	return addr.Channel{S: src, E: addr.ExpressAddr(uint32(i + 1))}
}

// RunChurn populates a real router with opts.Routes channels through TCP
// sessions, then drives opts.Events Zipf-popular membership toggles while a
// paced UDP stream forwards and a sampler measures install→first-delivery
// latency. See ChurnResult for what comes back.
func RunChurn(opts ChurnOptions) (ChurnResult, error) {
	opts = opts.withDefaults()
	res := ChurnResult{Routes: opts.Routes, Events: opts.Events}
	src := addr.MustParse("171.64.7.9")

	r, err := realnet.NewRouterOpts("127.0.0.1:0", realnet.Options{
		Shards:     64,
		DataListen: "127.0.0.1:0",
	})
	if err != nil {
		return res, err
	}
	defer r.Close()

	recv, err := dataplane.NewReceiver()
	if err != nil {
		return res, err
	}
	defer recv.Close()

	// Session 0 advertises the receiver's data port; it owns the stable
	// stream channel and takes the delivery samples.
	sessions := make([]*realnet.Session, opts.Sessions)
	for i := range sessions {
		so := realnet.SessionOptions{SessionID: uint64(opts.Seed)<<8 + uint64(i) + 1}
		if i == 0 {
			so.DataPort = recv.Port()
		}
		s, err := realnet.DialSession(r.Addr(), so)
		if err != nil {
			return res, err
		}
		defer s.Close()
		sessions[i] = s
	}

	// Populate: every channel subscribed by exactly one session.
	for i := 0; i < opts.Routes; i++ {
		if err := sessions[i%opts.Sessions].Subscribe(churnChannel(src, i)); err != nil {
			return res, err
		}
	}
	for _, s := range sessions {
		if err := s.Flush(); err != nil {
			return res, err
		}
	}
	if err := waitFor(30*time.Second, func() bool { return r.Channels() >= opts.Routes }); err != nil {
		return res, fmt.Errorf("populate: %d/%d channels installed: %w", r.Channels(), opts.Routes, err)
	}

	// Stable stream: channel 0 belongs to session 0, so the receiver gets
	// every packet; the forwarding hot path stays live during churn.
	stable := churnChannel(src, 0)
	stream, err := dataplane.NewSource(r.DataAddr(), stable, dataplane.SourceOptions{PacePPS: 2000})
	if err != nil {
		return res, err
	}
	defer stream.Close()
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		payload := make([]byte, 64)
		for {
			select {
			case <-stop:
				return
			default:
				stream.Send(payload)
			}
		}
	}()

	// Churn: each session toggles membership on Zipf-popular channels it
	// owns. A toggle is one event (one Count through processCount, one
	// SetRoute). Channel 0 is excluded so the stable stream never drops.
	baseEvents := r.Events()
	start := time.Now()
	churnErr := make(chan error, opts.Sessions)
	per := opts.Events / opts.Sessions
	for w := 0; w < opts.Sessions; w++ {
		go func(w int) {
			rng := rand.New(rand.NewSource(opts.Seed + int64(w)))
			zipf := workload.Zipf(rng, opts.ZipfS, opts.Routes)
			s := sessions[w]
			subscribed := make(map[addr.Channel]bool)
			for i := 0; i < per; i++ {
				// Draw in [0, Routes), remap onto this session's stripe.
				idx := int(zipf.Uint64())
				idx = idx - idx%opts.Sessions + w
				if idx >= opts.Routes {
					idx -= opts.Sessions
				}
				if idx < 0 || (w == 0 && idx == 0) {
					idx = w + opts.Sessions // never channel 0
				}
				ch := churnChannel(src, idx)
				var err error
				if subscribed[ch] {
					err = s.Subscribe(ch) // flash crowd back in
					delete(subscribed, ch)
				} else {
					err = s.Unsubscribe(ch) // flash leave
					subscribed[ch] = true
				}
				if err != nil {
					churnErr <- err
					return
				}
			}
			// Restore the steady state so the table ends where it began.
			for ch := range subscribed {
				if err := s.Subscribe(ch); err != nil {
					churnErr <- err
					return
				}
			}
			churnErr <- s.Flush()
		}(w)
	}

	// Sample install→first-delivery latency while the churn runs: subscribe
	// a fresh channel on the receiver's session, then probe with a source
	// until the first matching datagram lands.
	var deliver []float64
	probePayload := make([]byte, 32)
	for j := 0; j < opts.Samples; j++ {
		chj := churnChannel(src, opts.Routes+1+j)
		probe, err := dataplane.NewSource(r.DataAddr(), chj, dataplane.SourceOptions{})
		if err != nil {
			return res, err
		}
		recv.Drain()
		t0 := time.Now()
		if err := sessions[0].Subscribe(chj); err != nil {
			return res, err
		}
		if err := sessions[0].Flush(); err != nil {
			return res, err
		}
		deadline := t0.Add(5 * time.Second)
		for {
			probe.Send(probePayload)
			pkt, err := recv.RecvTimeout(500 * time.Microsecond)
			if err == nil && pkt.Channel == chj {
				deliver = append(deliver, float64(time.Since(t0).Nanoseconds()))
				break
			}
			if time.Now().After(deadline) {
				probe.Close()
				return res, fmt.Errorf("sample %d: no delivery within 5s", j)
			}
		}
		probe.Close()
		sessions[0].Unsubscribe(chj)
		sessions[0].Flush()
	}

	for w := 0; w < opts.Sessions; w++ {
		if err := <-churnErr; err != nil {
			return res, err
		}
	}
	// The toggles are acknowledged when the router has processed at least
	// the driven event count (sampling adds a few more on top).
	if err := waitFor(30*time.Second, func() bool {
		return r.Events()-baseEvents >= uint64(per*opts.Sessions)
	}); err != nil {
		return res, fmt.Errorf("churn events not all processed: %w", err)
	}
	res.Wall = time.Since(start)
	if res.Wall > 0 {
		res.EventsPerSec = float64(r.Events()-baseEvents) / res.Wall.Seconds()
	}

	sort.Float64s(deliver)
	res.Samples = len(deliver)
	if n := len(deliver); n > 0 {
		res.DeliverP50Ns = deliver[n/2]
		res.DeliverP99Ns = deliver[min(n-1, n*99/100)]
		res.DeliverMaxNs = deliver[n-1]
	}

	dp := r.DataPlane()
	res.Install = dp.RouteInstallSnapshot()
	ft := dp.FIB()
	res.ChunkPublishes = ft.ChunkPublishes()
	res.ChunkPublishP99Ns = ft.ChunkPublishSnapshot().P99
	res.Rebuilds = ft.Rebuilds()
	return res, nil
}

func waitFor(d time.Duration, cond func() bool) error {
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			return fmt.Errorf("timeout after %v", d)
		}
		time.Sleep(time.Millisecond)
	}
	return nil
}

// E14Churn renders the churn run as a paperbench table: route-change
// throughput, install latency, and delivery latency at two table sizes, the
// before/after evidence that publication cost no longer scales with the
// table.
func E14Churn() *Table {
	t := &Table{
		ID:    "E14",
		Title: "§4.2/§5.1: FIB churn — flash-crowd joins/leaves on a live router",
		Header: []string{"routes", "events", "events/s", "install p50", "install p99",
			"deliver p50", "deliver p99", "chunk pubs", "pub p99", "dir rebuilds"},
	}
	for _, routes := range []int{10_000, 100_000} {
		res, err := RunChurn(ChurnOptions{Routes: routes, Events: 20_000, Samples: 20})
		if err != nil {
			t.Note("routes=%d failed: %v", routes, err)
			continue
		}
		t.AddRow(itoa(res.Routes), itoa(res.Events), f2(res.EventsPerSec),
			durNs(res.Install.P50), durNs(res.Install.P99),
			durNs(res.DeliverP50Ns), durNs(res.DeliverP99Ns),
			u64(res.ChunkPublishes), durNs(res.ChunkPublishP99Ns), u64(res.Rebuilds))
	}
	t.Note("install = dp_route_install_ns (SetRoute → FIB publication, cumulative incl. populate); " +
		"deliver = subscribe-flush → first datagram at the receiver, sampled during churn")
	t.Note("chunked-generation FIB: publication republishes one ≤1024-slot chunk; directory " +
		"rebuilds happen only on genuine capacity growth, so p99 stays flat as routes grow")
	return t
}

func durNs(ns float64) string {
	switch {
	case ns >= 1e6:
		return fmt.Sprintf("%.2fms", ns/1e6)
	case ns >= 1e3:
		return fmt.Sprintf("%.1fµs", ns/1e3)
	default:
		return fmt.Sprintf("%.0fns", ns)
	}
}
