package experiments

import (
	"testing"
	"time"
)

func TestPctSorted(t *testing.T) {
	if v := pctSorted(nil, 50); v != 0 {
		t.Errorf("empty p50 = %v", v)
	}
	s := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	cases := []struct {
		p    float64
		want float64
	}{{50, 6}, {90, 10}, {99, 10}, {0, 1}}
	for _, tc := range cases {
		if v := pctSorted(s, tc.p); v != tc.want {
			t.Errorf("p%v = %v, want %v", tc.p, v, tc.want)
		}
	}
}

// TestRunPPSMP: the multi-process offered-load measurement stands up a
// real expressd, installs a route through a genuine session, and reads
// non-zero ingest and egress rates from its /statsz.
func TestRunPPSMP(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns an expressd process")
	}
	bins, cleanup, err := e18Binaries(nil)
	if err != nil {
		t.Fatal(err)
	}
	if cleanup != nil {
		defer cleanup()
	}
	res, err := RunPPSMP(MPPPSOptions{Bins: bins, Queues: 2, Window: 150 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if res.OfferedPPS <= 0 || res.IngestPPS <= 0 || res.EgressPPS <= 0 {
		t.Errorf("rates not all positive: %+v", res)
	}
	if res.IngestPPS > res.OfferedPPS*1.5 {
		t.Errorf("ingest %v implausibly above offered %v", res.IngestPPS, res.OfferedPPS)
	}
}

// TestRunE18PresetChaos: one replay of the smoke3 schedule through the
// RunE18 aggregation path yields samples within budget and no failures.
func TestRunE18PresetChaos(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process scenario run")
	}
	res, err := RunE18(E18Options{Preset: "smoke3", Runs: 1, PresetChaos: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failures != 0 {
		t.Errorf("failures = %d: %+v", res.Failures, res.Runs)
	}
	if len(res.SamplesMS) == 0 {
		t.Fatal("no recovery samples")
	}
	if res.MaxMS <= 0 || res.MaxMS > res.BudgetMS {
		t.Errorf("max recovery %vms outside (0, %v]ms", res.MaxMS, res.BudgetMS)
	}
	if res.P50MS > res.P99MS || res.P99MS > res.MaxMS {
		t.Errorf("percentiles not monotone: p50=%v p99=%v max=%v", res.P50MS, res.P99MS, res.MaxMS)
	}
}
