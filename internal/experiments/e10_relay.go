package experiments

import (
	"repro/internal/ecmp"
	"repro/internal/netsim"
	"repro/internal/relay"
	"repro/internal/testutil"
)

// E10Relay measures the session-relay delay bound of Section 4.5: "the
// maximum relayed delay from a sender to the most distant subscriber is at
// most twice the distance from the most distant subscriber to the session
// relay itself, assuming symmetric paths" — plus hot vs cold standby
// fail-over.
func E10Relay() *Table {
	t := &Table{
		ID:     "E10",
		Title:  "§4.5 — session relay delay bound and standby fail-over",
		Header: []string{"quantity", "measured", "claim"},
	}

	// Star of 6 spoke routers; SR on the hub; the speaking participant and
	// listeners on spokes — every relay crosses participant→hub→participant.
	cfg := ecmp.DefaultConfig()
	n := testutil.StarNet(55, 6, cfg)
	srHost, _, hubIf := netsim.AttachHost(n.Sim, n.Routers[0].Node(), 90, netsim.DefaultLAN)
	n.Routers[0].SetIfaceMode(hubIf, ecmp.ModeUDP)
	sr, ch, err := relay.New(srHost, relay.FloorPolicy{})
	if err != nil {
		panic(err)
	}
	var parts []*relay.Participant
	for i := 1; i <= 6; i++ {
		h, _, rIf := netsim.AttachHost(n.Sim, n.Routers[i].Node(), 100+i, netsim.DefaultLAN)
		n.Routers[i].SetIfaceMode(rIf, ecmp.ModeUDP)
		parts = append(parts, relay.Join(h, srHost.Addr, ch))
	}
	n.Start()
	n.Sim.RunUntil(500 * netsim.Millisecond)

	// Direct SR→subscriber delay (the "distance to the session relay").
	var srToSub netsim.Time
	recvAt := make([]netsim.Time, len(parts))
	for i, p := range parts {
		pp, ii := p, i
		pp.OnContent = func(_ *relay.RelayedPacket) { recvAt[ii] = n.Sim.Now() }
	}
	sendAt := n.Sim.Now()
	n.Sim.After(0, func() { sr.SendPrimary(800, "probe") })
	n.Sim.RunUntil(sendAt + netsim.Second)
	for _, at := range recvAt {
		if d := at - sendAt; d > srToSub {
			srToSub = d
		}
	}

	// Relayed delay: the speaker (participant 0, granted the floor) sends;
	// measure to the most distant *other* subscriber.
	n.Sim.After(0, func() { parts[0].RequestFloor() })
	n.Sim.RunUntil(n.Sim.Now() + netsim.Second)
	sendAt = n.Sim.Now()
	n.Sim.After(0, func() { parts[0].Say(800, "question") })
	n.Sim.RunUntil(sendAt + netsim.Second)
	var relayed netsim.Time
	for i := 1; i < len(parts); i++ {
		if d := recvAt[i] - sendAt; d > relayed {
			relayed = d
		}
	}

	// The paper's bound assumes pure propagation on symmetric paths; allow
	// the per-hop serialization time of the probe packets on top.
	epsilon := netsim.Millisecond
	bound := 2*srToSub + epsilon
	t.AddRow("max SR→subscriber delay", srToSub.String(), "—")
	t.AddRow("max relayed sender→subscriber delay", relayed.String(), "≤ 2× SR distance = "+(2*srToSub).String())
	holds := "holds"
	if relayed > bound {
		holds = "VIOLATED"
	}
	t.AddRow("2× bound (+1 ms serialization allowance)", holds,
		"paper: \"at most twice the distance ... assuming symmetric paths\"")

	hotGap, coldGap := runStandby(relay.Hot), runStandby(relay.Cold)
	t.AddRow("hot-standby fail-over gap", hotGap.String(), "pre-subscribed backup channel: fastest")
	t.AddRow("cold-standby fail-over gap", coldGap.String(), "join-after-failure: slower, saves channel cost")
	if coldGap < hotGap {
		t.Note("WARNING: cold standby beat hot standby; expected hot <= cold")
	}
	t.Note("§4.5 throughput claim (\"each low-cost PC today is capable of forwarding ... dozens of " +
		"compressed broadcast-quality video streams\") is exercised by BenchmarkE10_RelayThroughput")
	return t
}

// runStandby measures the data gap a participant sees when the primary SR
// dies and the standby takes over: hot standby pays only one backup-stream
// interval; cold standby adds the time to build the backup channel's branch
// after fail-over.
func runStandby(mode relay.StandbyMode) netsim.Time {
	cfg := ecmp.DefaultConfig()
	n := testutil.LineNet(56, 6, cfg)
	priHost, _, i0 := netsim.AttachHost(n.Sim, n.Routers[0].Node(), 90, netsim.DefaultLAN)
	n.Routers[0].SetIfaceMode(i0, ecmp.ModeUDP)
	bakHost, _, i1 := netsim.AttachHost(n.Sim, n.Routers[1].Node(), 91, netsim.DefaultLAN)
	n.Routers[1].SetIfaceMode(i1, ecmp.ModeUDP)

	pri, priCh, err := relay.New(priHost, relay.FloorPolicy{})
	if err != nil {
		panic(err)
	}
	bak, bakCh, err := relay.New(bakHost, relay.FloorPolicy{})
	if err != nil {
		panic(err)
	}

	subHost, _, i2 := netsim.AttachHost(n.Sim, n.Routers[5].Node(), 92, netsim.DefaultLAN)
	n.Routers[5].SetIfaceMode(i2, ecmp.ModeUDP)
	sp := relay.JoinWithStandby(subHost, priHost.Addr, priCh, relay.StandbyConfig{
		Mode: mode, BackupAddr: bakHost.Addr, BackupChannel: bakCh,
		Watchdog: 2 * netsim.Second,
	})
	n.Start()
	n.Sim.RunUntil(500 * netsim.Millisecond)

	// Primary streams for a while, then dies; the backup streams at a fast
	// 20 ms cadence so the measured gap isolates fail-over cost rather
	// than stream spacing.
	for i := 0; i < 5; i++ {
		n.Sim.At(netsim.Time(i)*500*netsim.Millisecond+netsim.Second, func() { pri.SendPrimary(500, "tick") })
	}
	for i := 0; i < 2000; i++ {
		n.Sim.At(netsim.Time(i)*20*netsim.Millisecond+netsim.Second, func() { bak.SendPrimary(500, "tick") })
	}
	// Primary silent after t=3.5 s; watchdog fires ~2 s later; the gap is
	// fail-over time until backup data flows.
	n.Sim.RunUntil(60 * netsim.Second)
	if !sp.FailedOver() || sp.FirstBackupData == 0 {
		return -1
	}
	return sp.FirstBackupData - sp.FailedOverAt
}
