package experiments

import (
	"fmt"
	"strings"

	"repro/internal/counting"
	"repro/internal/netsim"
	"repro/internal/workload"
)

// Figure7CSV renders the Figure 7 curve family as CSV (dt, e per α) for
// plotting.
func Figure7CSV() string {
	var sb strings.Builder
	alphas := []float64{4, 2.5}
	sb.WriteString("dt_seconds")
	for _, a := range alphas {
		fmt.Fprintf(&sb, ",e_alpha_%g", a)
	}
	sb.WriteByte('\n')
	curves := make([]counting.Curve, len(alphas))
	for i, a := range alphas {
		curves[i] = counting.Curve{EMax: 1, Alpha: a, Tau: 120}
	}
	for dt := 0.0; dt <= 70; dt += 0.5 {
		fmt.Fprintf(&sb, "%.1f", dt)
		for _, c := range curves {
			fmt.Fprintf(&sb, ",%.6f", c.Eval(dt))
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// Figure8CSV renders the Figure 8 reproduction as CSV: time, actual group
// size, estimated size and cumulative Counts for α=4 and α=2.5 — the two
// stacked plots of the paper, sampled on a 1-second grid.
func Figure8CSV() string {
	a4 := RunE7(4, 99)
	a25 := RunE7(2.5, 99)

	sample := func(pts []workload.SizePoint, at netsim.Time) int {
		v := 0
		for _, p := range pts {
			if p.At > at {
				break
			}
			v = p.Size
		}
		return v
	}
	end := 420 * netsim.Second
	var sb strings.Builder
	sb.WriteString("time_s,actual,est_alpha4,est_alpha2.5,counts_alpha4,counts_alpha2.5\n")
	for at := netsim.Time(0); at <= end; at += netsim.Second {
		fmt.Fprintf(&sb, "%d,%d,%d,%d,%d,%d\n",
			at/netsim.Second,
			sample(a4.Actual, at),
			sample(a4.Estimate, at),
			sample(a25.Estimate, at),
			sample(a4.CountsToSource, at),
			sample(a25.CountsToSource, at),
		)
	}
	return sb.String()
}
