package experiments

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/addr"
	"repro/internal/costmodel"
	"repro/internal/realnet"
)

// E4Result is the measured state-maintenance cost (Section 5.3).
type E4Result struct {
	Neighbors    int
	Shards       int // channel-table shards (0 = router default)
	Events       uint64
	Elapsed      time.Duration
	EventsPerSec float64
	NsPerEvent   float64
	// CyclesPII is the per-event cost expressed in 400 MHz Pentium-II
	// cycles (ns × 0.4 cycles/ns), the unit the paper reports.
	CyclesPII float64
}

// RunE4Maintenance drives a real user-level ECMP router over loopback TCP
// with the paper's workload shape: eight neighbors continuously sending
// subscribe and unsubscribe events. Reproduces the Section 5.3 measurement
// ("approximately 4,500 incoming events per second ... four percent of the
// CPU on a 400 megahertz Pentium-II, or approximately 3500 cycles per
// event"; at 33,000 events/s, ~5200 cycles/event).
func RunE4Maintenance(neighbors, channelsPerNeighbor, rounds int) (E4Result, error) {
	r, err := realnet.NewRouter("127.0.0.1:0", "")
	if err != nil {
		return E4Result{}, err
	}
	defer r.Close()

	clients := make([]*realnet.Client, neighbors)
	for i := range clients {
		c, err := realnet.Dial(r.Addr())
		if err != nil {
			return E4Result{}, err
		}
		defer c.Close()
		clients[i] = c
	}

	src := addr.MustParse("171.64.1.1")
	want := uint64(neighbors*channelsPerNeighbor*rounds) * 2
	start := time.Now()
	for round := 0; round < rounds; round++ {
		for i, c := range clients {
			for j := 0; j < channelsPerNeighbor; j++ {
				ch := addr.Channel{S: src, E: addr.ExpressAddr(uint32(i*channelsPerNeighbor + j))}
				if err := c.Subscribe(ch); err != nil {
					return E4Result{}, err
				}
				if err := c.Unsubscribe(ch); err != nil {
					return E4Result{}, err
				}
			}
			if err := c.Flush(); err != nil {
				return E4Result{}, err
			}
		}
	}
	for r.Events() < want {
		if time.Since(start) > 60*time.Second {
			return E4Result{}, fmt.Errorf("router processed %d/%d events before timeout", r.Events(), want)
		}
		time.Sleep(100 * time.Microsecond)
	}
	elapsed := time.Since(start)

	res := E4Result{
		Neighbors:    neighbors,
		Events:       r.Events(),
		Elapsed:      elapsed,
		EventsPerSec: float64(r.Events()) / elapsed.Seconds(),
		NsPerEvent:   float64(elapsed.Nanoseconds()) / float64(r.Events()),
	}
	res.CyclesPII = costmodel.CyclesPerEvent(res.NsPerEvent, 0.4)
	return res, nil
}

// RunE4ShardChurn is the scaling form of E4: conns concurrent neighbor
// connections churn disjoint channel spaces against one router with the
// given channel-table shard count. With one shard every connection
// serializes on a single lock (the original implementation's behaviour);
// with more shards the per-connection read loops process events in
// parallel on multicore hardware.
func RunE4ShardChurn(shards, conns, channelsPerConn, rounds int) (E4Result, error) {
	r, err := realnet.NewRouterOpts("127.0.0.1:0", realnet.Options{Shards: shards})
	if err != nil {
		return E4Result{}, err
	}
	defer r.Close()

	clients := make([]*realnet.Client, conns)
	for i := range clients {
		c, err := realnet.Dial(r.Addr())
		if err != nil {
			return E4Result{}, err
		}
		defer c.Close()
		clients[i] = c
	}

	src := addr.MustParse("171.64.1.1")
	want := uint64(conns*channelsPerConn*rounds) * 2
	start := time.Now()
	var wg sync.WaitGroup
	for i, c := range clients {
		wg.Add(1)
		go func(i int, c *realnet.Client) {
			defer wg.Done()
			for round := 0; round < rounds; round++ {
				for j := 0; j < channelsPerConn; j++ {
					ch := addr.Channel{S: src, E: addr.ExpressAddr(uint32(i*channelsPerConn + j))}
					if c.Subscribe(ch) != nil || c.Unsubscribe(ch) != nil {
						return
					}
				}
				if c.Flush() != nil {
					return
				}
			}
		}(i, c)
	}
	wg.Wait()
	for r.Events() < want {
		if time.Since(start) > 60*time.Second {
			return E4Result{}, fmt.Errorf("router processed %d/%d events before timeout", r.Events(), want)
		}
		time.Sleep(100 * time.Microsecond)
	}
	elapsed := time.Since(start)

	res := E4Result{
		Neighbors:    conns,
		Shards:       shards,
		Events:       r.Events(),
		Elapsed:      elapsed,
		EventsPerSec: float64(r.Events()) / elapsed.Seconds(),
		NsPerEvent:   float64(elapsed.Nanoseconds()) / float64(r.Events()),
	}
	res.CyclesPII = costmodel.CyclesPerEvent(res.NsPerEvent, 0.4)
	return res, nil
}

// E4Maintenance renders the measurement as a table.
func E4Maintenance() *Table {
	t := &Table{
		ID:     "E4",
		Title:  "§5.3 — state-maintenance CPU cost (real user-level TCP ECMP router, 8 neighbors)",
		Header: []string{"metric", "measured", "paper (400 MHz Pentium-II)"},
	}
	res, err := RunE4Maintenance(8, 2000, 4)
	if err != nil {
		t.Note("measurement failed: %v", err)
		return t
	}
	t.AddRow("neighbors", itoa(res.Neighbors), "8")
	t.AddRow("events processed", u64(res.Events), "—")
	t.AddRow("events/second", f2(res.EventsPerSec), "4,500 @4% CPU; 33,000 @43% CPU")
	t.AddRow("ns/event (wall)", f2(res.NsPerEvent), "—")
	t.AddRow("equivalent PII-400 cycles/event", f2(res.CyclesPII), "≈3,500–5,200 (median 2,700 subscribe / 3,300 unsubscribe)")
	for _, shards := range []int{1, 4, 16} {
		sr, err := RunE4ShardChurn(shards, 8, 1000, 2)
		if err != nil {
			t.Note("shard-churn @%d shards failed: %v", shards, err)
			continue
		}
		t.AddRow(fmt.Sprintf("events/second @%d shard(s), concurrent churn", shards), f2(sr.EventsPerSec), "—")
	}
	t.Note("same code path as the paper's experiment (hashed channel lookup, allocation, interface " +
		"determination, FIB manipulation, upstream send, recorded route, simulated ~400-cycle RPF); " +
		"absolute numbers differ with hardware — the claim that per-event cost is a few thousand " +
		"cycles and throughput is tens of thousands of events/s holds. The shard rows are the " +
		"scaling curve of the sharded channel table under concurrent multi-connection churn; the " +
		"curve separates only when GOMAXPROCS > 1 (see EXPERIMENTS.md E4 and cmd/loadgen)")
	return t
}
