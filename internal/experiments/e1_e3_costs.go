package experiments

import (
	"fmt"

	"repro/internal/addr"
	"repro/internal/costmodel"
	"repro/internal/fib"
)

// E1FIBEntry regenerates Figure 5: the 12-byte FIB entry format, verified
// by an encode/decode round trip.
func E1FIBEntry() *Table {
	t := &Table{
		ID:     "E1",
		Title:  "Figure 5 — EXPRESS FIB entry format (12 bytes, 32 interfaces/router)",
		Header: []string{"field", "bits", "example"},
	}
	k := fib.Key{S: addr.MustParse("171.64.7.9"), G: addr.ExpressAddr(0x00beef)}
	e := &fib.Entry{IIF: 3}
	e.SetOIF(0)
	e.SetOIF(7)
	e.SetOIF(31)
	packed, err := fib.EncodeEntry(k, e, nil)
	if err != nil {
		panic(err)
	}
	k2, e2, err := fib.DecodeEntry(packed)
	if err != nil || k2 != k || e2.IIF != e.IIF || e2.OIFs != e.OIFs {
		panic(fmt.Sprintf("E1: round trip failed: %v %v %v", err, k2, e2))
	}
	t.AddRow("source S", "32", k.S.String())
	t.AddRow("dest suffix (232/8 implicit)", "24", fmt.Sprintf("%#06x", k.G.ExpressSuffix()))
	t.AddRow("incoming interface", "5", itoa(e.IIF))
	t.AddRow("outgoing interfaces (bitmask)", "32", fmt.Sprintf("%#08x", e.OIFs))
	t.AddRow("total", itoa(fib.EntrySize*8), fmt.Sprintf("%d bytes packed", len(packed)))
	t.Note("paper: \"An EXPRESS FIB entry can be represented in 12 bytes\" — reproduced: %d bytes, round-trip verified", len(packed))
	return t
}

// E2FIBCost regenerates the Section 5.1 FIB-memory cost model and its two
// worked scenarios.
func E2FIBCost() *Table {
	m := costmodel.Paper()
	t := &Table{
		ID:     "E2",
		Title:  "Figure 6 / §5.1 — FIB memory cost model (paper constants: $55/MB, 12 B, 1 yr, 1% util)",
		Header: []string{"quantity", "computed", "paper"},
	}
	t.AddRow("per-entry memory cost", dollars(m.EntryCostDollars()), "$0.00066 (0.066 cents)")
	conf := m.Conference()
	t.AddRow("conference: FIB entries (bound)", itoa(conf.Entries), "2500 (10×10×25)")
	t.AddRow("conference: session FIB cost", dollars(conf.TotalDollars), "≈$0.0075 printed; \"less than eight cents\"")
	t.AddRow("conference: per participant", fmt.Sprintf("%.3f cents", conf.PerMemberCents), "\"about one cent\"")
	tick := m.StockTicker()
	t.AddRow("ticker: tree links", itoa(tick.Entries), "≈200,000")
	t.AddRow("ticker: yearly FIB cost", dollars(tick.TotalDollars), "$18,200 printed (= $13,200 by the printed formula)")
	t.AddRow("ticker: per subscriber-year", fmt.Sprintf("%.3f cents", tick.PerMemberCents), "\"0.18 cents\" printed")
	lease, sale := costmodel.CableTVComparison()
	t.AddRow("cable-TV comparison", fmt.Sprintf("$%.2f/viewer/month lease; $%.2f/viewer sale", lease, sale), "same")
	t.Note("the paper's printed conference/ticker figures are internally inconsistent with its own formula " +
		"(likely OCR/typesetting); this table evaluates the formula exactly as printed — conclusions " +
		"(costs orders of magnitude below media value) hold either way")
	return t
}

// E3MgmtState regenerates the Section 5.2 management-state budget.
func E3MgmtState() *Table {
	m := costmodel.PaperMgmt()
	t := &Table{
		ID:     "E3",
		Title:  "§5.2 — per-channel management-level state",
		Header: []string{"quantity", "computed", "paper"},
	}
	t.AddRow("record size (with impl fields)", itoa(m.RecordBytes)+" B", "32 B")
	t.AddRow("records/channel (fanout 2 + upstream, 2 outstanding)", itoa(m.Records*m.OutstandingCounts), "6")
	t.AddRow("key storage", itoa(m.KeyBytes)+" B", "8 B")
	t.AddRow("bytes/channel", itoa(m.BytesPerChannel())+" B", "200 B")
	t.AddRow("cost/channel ($1/MB DRAM, router life)", dollars(m.DollarsPerChannel()), "\"less than 1/50-th of a cent\"")
	ok := m.DollarsPerChannel() < 0.01/50*2
	t.Note("computed %.6f$ <= 1/50 cent bound holds: %v", m.DollarsPerChannel(), ok)
	return t
}
