package experiments

import (
	"time"

	"repro/internal/ecmp"
	"repro/internal/netsim"
	"repro/internal/relay"
	"repro/internal/testutil"
)

// ThroughputResult is the SR forwarding-capacity measurement of Section
// 4.5: "Each low-cost PC today is capable of forwarding data at a rate in
// excess of 100 Mbps, fast enough to serve dozens of compressed
// broadcast-quality video streams (3-6 Mbps)".
type ThroughputResult struct {
	Relays       int
	Wall         time.Duration
	RelaysPerSec float64
	MbitPerSec   float64 // at the SR's egress (packet size × relays)
}

// RelayThroughput drives the session-relay engine with n relayed packets
// (1316-byte video-sized payloads) through a hub-and-spoke network and
// wall-clocks the whole pipeline: request ingestion, floor check, sequence
// stamping, channel send, and FIB forwarding to every subscriber.
func RelayThroughput(n int) ThroughputResult {
	if n < 1 {
		n = 1
	}
	const pktSize = 1316
	net := testutil.StarNet(66, 4, ecmp.DefaultConfig())
	srHost, _, hubIf := netsim.AttachHost(net.Sim, net.Routers[0].Node(), 90, netsim.DefaultLAN)
	net.Routers[0].SetIfaceMode(hubIf, ecmp.ModeUDP)
	sr, ch, err := relay.New(srHost, relay.FloorPolicy{})
	if err != nil {
		panic(err)
	}
	speakerHost, _, sIf := netsim.AttachHost(net.Sim, net.Routers[1].Node(), 91, netsim.DefaultLAN)
	net.Routers[1].SetIfaceMode(sIf, ecmp.ModeUDP)
	speaker := relay.Join(speakerHost, srHost.Addr, ch)
	for i := 2; i <= 4; i++ {
		h, _, rIf := netsim.AttachHost(net.Sim, net.Routers[i].Node(), 90+i, netsim.DefaultLAN)
		net.Routers[i].SetIfaceMode(rIf, ecmp.ModeUDP)
		relay.Join(h, srHost.Addr, ch)
	}
	net.Start()
	net.Sim.RunUntil(500 * netsim.Millisecond)
	net.Sim.After(0, func() { speaker.RequestFloor() })
	net.Sim.RunUntil(netsim.Second)

	for i := 0; i < n; i++ {
		at := netsim.Second + netsim.Time(i)*100*netsim.Microsecond
		net.Sim.At(at, func() { speaker.Say(pktSize, nil) })
	}
	start := time.Now()
	net.Sim.RunUntil(netsim.Second + netsim.Time(n+1)*100*netsim.Microsecond + netsim.Second)
	wall := time.Since(start)

	res := ThroughputResult{Relays: int(sr.Metrics.Relayed), Wall: wall}
	if wall > 0 {
		res.RelaysPerSec = float64(res.Relays) / wall.Seconds()
		res.MbitPerSec = res.RelaysPerSec * pktSize * 8 / 1e6
	}
	return res
}
