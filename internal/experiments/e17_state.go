package experiments

import (
	"math/rand"
	"net"
	"testing"

	"repro/internal/addr"
	"repro/internal/dataplane"
	"repro/internal/fib"
	"repro/internal/wire"
)

// E17: source-routed forwarding state. The EXPRESS cost model (Section 5)
// prices a channel at one FIB entry per on-tree router; the source-routed
// mode moves the replication tree into the packet — a per-hop bitmap stack
// bounded at wire.MaxExtHeader — so fabric routers hold state only for
// channels whose stack overflows the budget. This experiment quantifies the
// trade on a Clos fabric: total fabric state in both modes at 10⁴–10⁶
// channels, and the per-packet forwarding cost of the header pop against
// the packed-FIB lookup it replaces.

// The modeled fabric: a 4-pod Clos with 4 cores, 2 aggregation routers per
// pod, and 4 edge routers per pod (4 core + 8 agg + 16 edge). A channel
// enters at one core, fans out to the aggregation layer of each subscribed
// pod, and from there to its subscribed edges.
const (
	e17Pods         = 4
	e17Cores        = 4
	e17AggsPerPod   = 2
	e17EdgesPerPod  = 4
	e17Edges        = e17Pods * e17EdgesPerPod
	e17BudgetLoose  = wire.MaxExtHeader // the wire format's cap
	e17BudgetTight  = 64                // conservative per-packet overhead budget
	e17MedianSample = 4096              // channels sampled for the parse benchmark's representative header
)

// Nonzero hop IDs per layer: cores 1..4, aggs 5..12, edges 13..28.
func e17CoreHop(c int) uint16 { return uint16(1 + c) }
func e17AggHop(a int) uint16  { return uint16(1 + e17Cores + a) }
func e17EdgeHop(e int) uint16 { return uint16(1 + e17Cores + e17Pods*e17AggsPerPod + e) }

// e17Tree draws channel i's subscription deterministically from rng and
// returns its depth-ordered bitmap stack plus the on-tree router count
// (ingress core + one agg per subscribed pod + subscribed edges).
func e17Tree(rng *rand.Rand, i int) (groups [][]wire.HopEntry, nodes int) {
	// Low egress diversity (the P³FA observation): most channels reach few
	// edges — min-of-three uniforms skews the draw small — while the heavy
	// tail (flash crowds) still produces fabric-wide trees that exercise
	// the header-budget overflow.
	nEdges := 1 + min(rng.Intn(e17Edges), min(rng.Intn(e17Edges), rng.Intn(e17Edges)))
	perm := rng.Perm(e17Edges)[:nEdges]

	core := i % e17Cores
	var podEdges [e17Pods]uint32 // edge OIF mask at the pod's agg
	for _, e := range perm {
		podEdges[e/e17EdgesPerPod] |= 1 << (e % e17EdgesPerPod)
	}
	var coreMask uint32
	aggGroup := make([]wire.HopEntry, 0, e17Pods)
	edgeGroup := make([]wire.HopEntry, 0, nEdges)
	for p := 0; p < e17Pods; p++ {
		if podEdges[p] == 0 {
			continue
		}
		coreMask |= 1 << p
		agg := p*e17AggsPerPod + i%e17AggsPerPod
		aggGroup = append(aggGroup, wire.HopEntry{Hop: e17AggHop(agg), OIFs: podEdges[p]})
		nodes++
	}
	for _, e := range perm {
		hosts := uint32(rng.Intn(255) + 1) // nonzero subscriber-facing port mask
		edgeGroup = append(edgeGroup, wire.HopEntry{Hop: e17EdgeHop(e), OIFs: hosts})
		nodes++
	}
	nodes++ // the ingress core
	groups = [][]wire.HopEntry{
		{{Hop: e17CoreHop(core), OIFs: coreMask}},
		aggGroup,
		edgeGroup,
	}
	return groups, nodes
}

// E17Result is one scale point of the state comparison.
type E17Result struct {
	Channels int

	// FIB mode: one packed entry per on-tree router.
	FIBFabricEntries int64
	FIBFabricBytes   int64
	Core0Entries     int     // channels ingressing at core 0 (the real table built below)
	FIBLookupNs      float64 // ForwardMask on that real table
	AvgHeaderBytes   float64 // mean encoded stack size (loose budget)
	HeaderParseNs    float64 // ParseExtHeader + PopMask on a representative header

	// Header mode, per budget: only overflowed channels keep fabric entries.
	Overflows         map[int]int
	HeaderFabricBytes map[int]int64
}

// RunE17State models channels deterministically (seeded) on the Clos fabric,
// builds core 0's real FIB table for the FIB-mode lookup benchmark, and
// totals fabric state under both forwarding modes.
func RunE17State(channels int, seed int64) E17Result {
	rng := rand.New(rand.NewSource(seed))
	res := E17Result{
		Channels:          channels,
		Overflows:         map[int]int{},
		HeaderFabricBytes: map[int]int64{},
	}
	budgets := []int{e17BudgetLoose, e17BudgetTight}

	core0 := fib.New()
	src := addr.MustParse("171.64.17.1")
	var headerBytes int64
	var repr []byte // representative mid-run header for the parse bench
	for i := 0; i < channels; i++ {
		groups, nodes := e17Tree(rng, i)
		res.FIBFabricEntries += int64(nodes)
		size := wire.ExtHeaderSize(groups)
		headerBytes += int64(size)
		for _, budget := range budgets {
			if size > budget {
				res.Overflows[budget]++
				res.HeaderFabricBytes[budget] += int64(nodes * fib.EntrySize)
			}
		}
		if i%e17Cores == 0 {
			// Core 0 is this channel's ingress: a real packed-FIB entry.
			core0.Set(fib.Key{S: src, G: addr.ExpressAddr(uint32(i))},
				fib.Entry{IIF: 0, OIFs: groups[0][0].OIFs})
			res.Core0Entries++
		}
		if repr == nil && i >= e17MedianSample/2 {
			repr, _ = wire.AppendExtHeader(nil, groups)
		}
	}
	res.FIBFabricBytes = int64(fib.MemoryFor(int(res.FIBFabricEntries)))
	res.AvgHeaderBytes = float64(headerBytes) / float64(channels)

	// FIB-mode forwarding cost: ForwardMask against core 0's real table at
	// this scale — the lookup the header pop eliminates.
	lookup := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		n := res.Core0Entries
		for i := 0; i < b.N; i++ {
			g := addr.ExpressAddr(uint32((i % n) * e17Cores))
			if _, disp := core0.ForwardMask(src, g, 0); disp != fib.Forwarded {
				b.Fatal("miss")
			}
		}
	})
	res.FIBLookupNs = float64(lookup.T.Nanoseconds()) / float64(lookup.N)

	// Header-mode forwarding cost: parse + pop at the ingress hop. PopMask
	// advances the cursor in place, so each iteration rewinds it.
	hop := repr // captured: a real mid-run header
	parse := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			hop[1] = wire.ExtHeaderFixed
			h, _, err := wire.ParseExtHeader(hop)
			if err != nil {
				b.Fatal(err)
			}
			if _, st := h.PopMask(e17CoreHop(0)); st != wire.SRFound {
				b.Fatal("pop missed")
			}
		}
	})
	res.HeaderParseNs = float64(parse.T.Nanoseconds()) / float64(parse.N)
	return res
}

// benchSRForward measures the full data-plane forwarding path per mode at
// the given fan-out: HandlePacket on a source-routed packet (header pop,
// zero FIB lookups) against the same packet forwarded off the packed FIB.
// Both paths must run allocation-free.
func benchSRForward(fanout int, header bool) (BenchResult, error) {
	p, err := dataplane.NewPlane(dataplane.Options{HopID: 1})
	if err != nil {
		return BenchResult{}, err
	}
	defer p.Close()
	sink, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		return BenchResult{}, err
	}
	defer sink.Close()
	dst := sink.LocalAddr().(*net.UDPAddr).AddrPort()
	for i := 0; i < fanout; i++ {
		p.SetPort(i, dst)
	}
	ch := addr.Channel{S: addr.Addr(0x0a110001), E: addr.ExpressAddr(1)}
	mask := uint32(1<<fanout) - 1

	pkt := wire.DataPacket{Channel: ch, Seq: 1, Payload: make([]byte, 256)}
	name := "dataplane/srforward"
	mode := "fib"
	if header {
		mode = "header"
		hdr, err := wire.AppendExtHeader(nil, [][]wire.HopEntry{{{Hop: 1, OIFs: mask}}})
		if err != nil {
			return BenchResult{}, err
		}
		pkt.Flags = wire.DataFlagSrcRoute
		pkt.Payload = append(hdr, pkt.Payload...)
	} else {
		p.SetRoute(ch, mask)
	}
	buf := pkt.AppendTo(nil)
	cursor := wire.DataHeaderSize + 1

	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		b.SetBytes(int64(len(buf)))
		for i := 0; i < b.N; i++ {
			if header {
				buf[cursor] = wire.ExtHeaderFixed
			}
			if p.HandlePacket(buf) != fanout {
				b.Fatal("short fanout")
			}
		}
	})
	out := toResult(name, 0, res)
	out.Mode = mode
	out.Fanout = fanout
	st := p.Stats()
	if header && (st.SRForwarded == 0 || st.FIB.Lookups != 0) {
		out.Mode = "header-fellback" // should never happen; make it visible in the JSON
	}
	return out, nil
}

// benchE17State folds one scale point into fib/state series rows: a "fib"
// row (fabric bytes, real-table lookup ns) and one "header" row per budget
// (residual overflow state, header parse ns).
func benchE17State(channels int, seed int64) []BenchResult {
	res := RunE17State(channels, seed)
	rows := []BenchResult{{
		Name:       "fib/state",
		Mode:       "fib",
		Channels:   res.Channels,
		Iterations: res.Channels,
		NsPerOp:    res.FIBLookupNs,
		StateBytes: res.FIBFabricBytes,
	}}
	for _, budget := range []int{e17BudgetLoose, e17BudgetTight} {
		rows = append(rows, BenchResult{
			Name:           "fib/state",
			Mode:           "header",
			Channels:       res.Channels,
			Iterations:     res.Channels,
			NsPerOp:        res.HeaderParseNs,
			StateBytes:     res.HeaderFabricBytes[budget],
			HeaderBudget:   budget,
			HeaderBytesAvg: res.AvgHeaderBytes,
			SROverflows:    res.Overflows[budget],
		})
	}
	return rows
}

// E17State renders the state comparison as a paperbench table.
func E17State() *Table {
	t := &Table{
		ID:    "E17",
		Title: "§5/Elmo: source-routed forwarding — fabric state and per-packet cost vs the packed FIB",
		Header: []string{"channels", "fib entries", "fib bytes", "lookup ns", "hdr avg B",
			"parse ns", "ovfl@255", "hdr bytes@255", "ovfl@64", "hdr bytes@64"},
	}
	for _, channels := range []int{10_000, 100_000, 1_000_000} {
		res := RunE17State(channels, 17)
		t.AddRow(itoa(res.Channels), itoa(int(res.FIBFabricEntries)), itoa(int(res.FIBFabricBytes)),
			f2(res.FIBLookupNs), f2(res.AvgHeaderBytes), f2(res.HeaderParseNs),
			itoa(res.Overflows[e17BudgetLoose]), itoa(int(res.HeaderFabricBytes[e17BudgetLoose])),
			itoa(res.Overflows[e17BudgetTight]), itoa(int(res.HeaderFabricBytes[e17BudgetTight])))
	}
	t.Note("4-core/8-agg/16-edge Clos, seeded subscriptions (1-16 edges/channel); fib mode prices "+
		"one %d-byte packed entry per on-tree router, header mode holds fabric state only for "+
		"channels whose bitmap stack overflows the budget", fib.EntrySize)
	t.Note("lookup ns = ForwardMask on core 0's real table at that scale; parse ns = " +
		"ParseExtHeader+PopMask on a representative header — constant in the channel count")
	return t
}
