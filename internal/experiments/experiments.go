// Package experiments contains one runner per paper artifact (see
// DESIGN.md §4 for the experiment index E1–E12). Each runner returns a
// Table whose rows regenerate the corresponding figure or worked scenario;
// cmd/paperbench prints them all and the repository-root benchmarks wrap
// them for `go test -bench`.
package experiments

import (
	"fmt"
	"io"
	"strings"
)

// Table is a printable experiment result.
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Note appends a free-form footnote (paper-vs-measured commentary).
func (t *Table) Note(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// WriteTo renders the table as aligned text.
func (t *Table) WriteTo(w io.Writer) (int64, error) {
	var sb strings.Builder
	fmt.Fprintf(&sb, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], c)
		}
		sb.WriteByte('\n')
	}
	writeRow(t.Header)
	for i, w := range widths {
		if i > 0 {
			sb.WriteString("  ")
		}
		sb.WriteString(strings.Repeat("-", w))
	}
	sb.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&sb, "note: %s\n", n)
	}
	sb.WriteByte('\n')
	n, err := io.WriteString(w, sb.String())
	return int64(n), err
}

// String renders the table.
func (t *Table) String() string {
	var sb strings.Builder
	t.WriteTo(&sb)
	return sb.String()
}

func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func f4(v float64) string { return fmt.Sprintf("%.4f", v) }
func f6(v float64) string { return fmt.Sprintf("%.6f", v) }
func itoa(v int) string   { return fmt.Sprintf("%d", v) }
func u64(v uint64) string { return fmt.Sprintf("%d", v) }
func dollars(v float64) string {
	if v < 0.01 {
		return fmt.Sprintf("$%.6f", v)
	}
	return fmt.Sprintf("$%.2f", v)
}
