package experiments

import "testing"

// TestChurnSmall runs the E14 churn pipeline end to end at a size small
// enough for CI: real router, real sessions, Zipf toggles, paced stream,
// and delivery sampling. Run with -race in CI — the churn drivers, the
// stream, the sampler, and the router's shards all interleave here.
func TestChurnSmall(t *testing.T) {
	res, err := RunChurn(ChurnOptions{
		Routes:   2000,
		Events:   2000,
		Sessions: 2,
		Samples:  3,
		Seed:     42,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.EventsPerSec <= 0 {
		t.Errorf("events/sec = %g, want > 0", res.EventsPerSec)
	}
	if res.Install.Count == 0 {
		t.Error("dp_route_install_ns recorded nothing")
	}
	if res.Samples != 3 || res.DeliverP99Ns <= 0 {
		t.Errorf("delivery sampling: %d samples p99=%g, want 3 and > 0", res.Samples, res.DeliverP99Ns)
	}
	if res.DeliverP50Ns > res.DeliverMaxNs {
		t.Errorf("p50 %g > max %g", res.DeliverP50Ns, res.DeliverMaxNs)
	}
	if res.ChunkPublishes == 0 {
		t.Error("churn published no chunks")
	}
}
